package slim

import (
	"sort"
	"time"

	"slim/internal/matching"
	"slim/internal/threshold"
)

// EdgeDelta describes one edge-store update at the granularity the
// incremental publish tail consumes: the edges that entered the store or
// changed score (with their fresh scores) and the edges that left it
// (with the scores they held — a score change contributes one of each).
type EdgeDelta struct {
	// Full marks an update that was a full rescore (epoch rebuild) or is
	// otherwise not describable incrementally; the tail must rebuild from
	// the complete edge set.
	Full bool
	// Seq is the producing edge store's update counter, letting a consumer
	// detect that it missed an intermediate update (and must treat the
	// delta as Full).
	Seq uint64
	// Changed and Removed may alias the producer's reused buffers; they
	// are only valid until that store's next update.
	Changed []Link
	Removed []Link
}

// PublishTailStats reports the incremental publish tail's state and the
// work profile of its most recent Publish. The headline is
// ReusedPrefixLen vs SuffixWalked: reused matched links were adopted from
// the previous run without re-examining any edge above the first changed
// position, and ThresholdReuses counts runs that skipped the GMM refit
// entirely because the matched score list was bit-unchanged.
type PublishTailStats struct {
	// Edges is the size of the maintained sorted edge list; Matched the
	// size of the current matching.
	Edges   int64
	Matched int64
	// ReusedPrefixLen / SuffixWalked describe the last matcher update:
	// matched links reused verbatim, and sorted-order entries re-walked
	// below the first changed position.
	ReusedPrefixLen int64
	SuffixWalked    int64
	// FullRebuilds counts full sort+walk rebuilds (first build, epoch
	// invalidations, missed deltas); Applies counts delta updates.
	FullRebuilds uint64
	Applies      uint64
	// ThresholdFits / ThresholdReuses count threshold selections that ran
	// the detector vs reused the cached fit (bit-identical score list).
	ThresholdFits   uint64
	ThresholdReuses uint64
	// LastFull reports whether the last Publish was a full rebuild.
	LastFull bool
	// LastUpdate is the wall-clock duration of the last Publish;
	// LastMatch and LastThreshold split out the matching and threshold
	// stages (LastUpdate additionally covers delta conversion and link
	// materialization).
	LastUpdate    time.Duration
	LastMatch     time.Duration
	LastThreshold time.Duration
}

// PublishTail maintains the merge→match→threshold pipeline of a linkage
// across runs, turning the publish tail from O(n log n) per run into
// O(delta log n): a globally sorted edge list updated by splice, a
// prefix-reusing greedy matcher (see matching.Incremental), and a
// threshold fit cache keyed on the matched score list (see
// threshold.Cache). Its published output is bit-identical to the
// from-scratch MatchLinks → SelectStopThreshold → FilterLinks pipeline
// over the same edge set.
//
// The tail only supports the greedy matcher — Hungarian has no prefix
// structure to reuse — and callers keep using the from-scratch path for
// it. Not safe for concurrent use.
type PublishTail struct {
	method ThresholdMethod
	fit    func([]float64) threshold.Result
	m      matching.Incremental
	thr    threshold.Cache

	// Pooled conversion buffers: Link→matching.Edge for deltas and full
	// rebuilds, and the matched score column. They make the steady-state
	// Publish allocate only the returned matched slice (which callers
	// retain), and not even that when the matching is unchanged.
	removeBuf, insertBuf []matching.Edge
	edgesBuf             []matching.Edge
	scoresBuf            []float64
	// lastMatched is the previous Publish's returned matching; its prefix
	// is reused verbatim instead of reconverting reused matched edges.
	lastMatched []Link

	lastFull                             bool
	lastUpdate, lastMatch, lastThreshold time.Duration
}

// NewPublishTail returns a tail publishing with the given stop-threshold
// method (greedy matching is implied).
func NewPublishTail(method ThresholdMethod) *PublishTail {
	return &PublishTail{
		method: method,
		fit: func(scores []float64) threshold.Result {
			return selectThresholdResult(method, scores)
		},
	}
}

// Publish folds the given edge-store deltas into the maintained pipeline
// and returns the updated matching (descending score), the links above
// the selected stop threshold, and the threshold decision. all is called
// only when a full rebuild is needed (any delta marked Full, a missed
// update, or the first Publish) and must return the complete current edge
// set. Deltas from different producers must be pair-disjoint (true for
// partition shards). The returned matched/links slices are immutable;
// links aliases a prefix of matched.
func (t *PublishTail) Publish(deltas []EdgeDelta, all func() []Link) (matched, links []Link, thr StopThreshold) {
	start := time.Now()
	full := !t.built()
	for _, d := range deltas {
		if d.Full {
			full = true
			break
		}
	}
	var me []matching.Edge
	if !full {
		t.removeBuf = t.removeBuf[:0]
		t.insertBuf = t.insertBuf[:0]
		for _, d := range deltas {
			for _, l := range d.Removed {
				t.removeBuf = append(t.removeBuf, matching.Edge{U: l.U, V: l.V, W: l.Score})
			}
			for _, l := range d.Changed {
				t.insertBuf = append(t.insertBuf, matching.Edge{U: l.U, V: l.V, W: l.Score})
			}
		}
		var ok bool
		me, ok = t.m.Apply(t.removeBuf, t.insertBuf)
		// An inconsistent delta (producer out of sync) degrades to a full
		// rebuild rather than failing: exactness first, speed second.
		full = !ok
	}
	if full {
		t.edgesBuf = t.edgesBuf[:0]
		for _, l := range all() {
			t.edgesBuf = append(t.edgesBuf, matching.Edge{U: l.U, V: l.V, W: l.Score})
		}
		me = t.m.Rebuild(t.edgesBuf)
	}
	t.lastMatch = time.Since(start)

	// Materialize the matching, reusing the reused prefix's Link values
	// verbatim (and the whole previous slice when nothing changed).
	ms := t.m.Stats()
	reused := min(ms.ReusedPrefix, len(t.lastMatched))
	if reused == len(me) && len(t.lastMatched) == len(me) {
		matched = t.lastMatched
	} else {
		matched = make([]Link, len(me))
		copy(matched, t.lastMatched[:reused])
		for i := reused; i < len(me); i++ {
			matched[i] = Link{U: me[i].U, V: me[i].V, Score: me[i].W}
		}
	}
	t.lastMatched = matched

	thrStart := time.Now()
	t.scoresBuf = t.scoresBuf[:0]
	for _, l := range matched {
		t.scoresBuf = append(t.scoresBuf, l.Score)
	}
	r := t.thr.Select(t.scoresBuf, t.fit)
	thr = StopThreshold{Threshold: r.Threshold, Method: string(r.Method)}
	t.lastThreshold = time.Since(thrStart)

	// matched is in greedy order — descending score — so the links above
	// the threshold are exactly a prefix; nil when empty, matching
	// FilterLinks.
	k := sort.Search(len(matched), func(i int) bool { return !(matched[i].Score > thr.Threshold) })
	if k > 0 {
		links = matched[:k:k]
	}
	t.lastFull = full
	t.lastUpdate = time.Since(start)
	return matched, links, thr
}

// built reports whether the tail has published at least once (the matcher
// holds a maintained order).
func (t *PublishTail) built() bool {
	return t.m.Stats().Rebuilds > 0
}

// Stats returns the tail's state and last-Publish work profile.
func (t *PublishTail) Stats() PublishTailStats {
	ms := t.m.Stats()
	cs := t.thr.Stats()
	return PublishTailStats{
		Edges:           int64(ms.Edges),
		Matched:         int64(ms.Matched),
		ReusedPrefixLen: int64(ms.ReusedPrefix),
		SuffixWalked:    int64(ms.SuffixWalked),
		FullRebuilds:    ms.Rebuilds,
		Applies:         ms.Applies,
		ThresholdFits:   cs.Fits,
		ThresholdReuses: cs.Reuses,
		LastFull:        t.lastFull,
		LastUpdate:      t.lastUpdate,
		LastMatch:       t.lastMatch,
		LastThreshold:   t.lastThreshold,
	}
}
