package slim

import (
	"slim/internal/tuning"
)

// TuneCurve is the spatial-level probe curve of one dataset: the average
// pair/self-similarity ratio per candidate level and the detected elbow.
type TuneCurve struct {
	Levels []int
	Ratios []float64
	Elbow  int
	Level  int
}

// AutoTuneSpatialLevel runs the Sec. 3.3 probe on both datasets and
// returns the level SLIM should use (the higher of the two elbows),
// along with both curves for inspection.
func AutoTuneSpatialLevel(dsE, dsI Dataset, cfg Config) (int, TuneCurve, TuneCurve, error) {
	if err := cfg.normalize(); err != nil {
		return 0, TuneCurve{}, TuneCurve{}, err
	}
	opt := tuning.DefaultOptions()
	opt.WindowSeconds = int64(cfg.WindowMinutes * 60)
	opt.MaxSpeedKmPerMin = cfg.MaxSpeedKmPerMin
	opt.B = cfg.B
	level, c1, c2 := tuning.AutoSpatialLevelPair(&dsE, &dsI, opt)
	return level, toTuneCurve(c1), toTuneCurve(c2), nil
}

func toTuneCurve(c tuning.Curve) TuneCurve {
	return TuneCurve{
		Levels: c.Levels,
		Ratios: c.Ratio,
		Elbow:  c.Elbow,
		Level:  c.Level(),
	}
}
