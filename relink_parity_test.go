package slim

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"testing"
)

// sameLinksBits reports whether two link lists are bit-identical:
// same pairs in the same order with Float64bits-equal scores.
func sameLinksBits(a, b []Link) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].U != b[i].U || a[i].V != b[i].V ||
			math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
			return false
		}
	}
	return true
}

// requireSameResult asserts two Run results are bit-identical in
// everything the edge store and publish tail are responsible for: the
// retained/rescored edge set (via Matched, which is the full
// positive-edge matching), the published links, and the thresholding
// derived from them — scores and threshold compared via Float64bits, so
// even a last-ulp divergence between the incremental and from-scratch
// pipelines fails. Work counters (bin/record comparisons) are
// deliberately excluded — saving that work is the whole point of the
// incremental path.
func requireSameResult(t *testing.T, step string, got, want Result) {
	t.Helper()
	if got.Stats.CandidatePairs != want.Stats.CandidatePairs {
		t.Fatalf("%s: candidate pairs %d, want %d", step, got.Stats.CandidatePairs, want.Stats.CandidatePairs)
	}
	if got.Stats.PositiveEdges != want.Stats.PositiveEdges {
		t.Fatalf("%s: positive edges %d, want %d", step, got.Stats.PositiveEdges, want.Stats.PositiveEdges)
	}
	if !sameLinksBits(got.Matched, want.Matched) {
		t.Fatalf("%s: matched links diverged (%d vs %d)", step, len(got.Matched), len(want.Matched))
	}
	if math.Float64bits(got.Threshold) != math.Float64bits(want.Threshold) || got.ThresholdMethod != want.ThresholdMethod {
		t.Fatalf("%s: threshold %g (%s), want %g (%s)",
			step, got.Threshold, got.ThresholdMethod, want.Threshold, want.ThresholdMethod)
	}
	if !sameLinksBits(got.Links, want.Links) {
		t.Fatalf("%s: links diverged (%d vs %d)", step, len(got.Links), len(want.Links))
	}
}

// TestRelinkParityIncrementalVsFromScratch is the edge store's exactness
// gate: an incrementally maintained Linker fed interleaved E/I ingest
// bursts must produce Run output bit-identical to a from-scratch Linker
// built over the union records on the same pinned grid — across
// weight-only churn (the pair-level delta path), new-bin and new-entity
// bursts (IDF-epoch full rescores), window-range growth in both
// directions (candidate-grid epoch rebuilds), point and region records,
// and SetTotalEntitiesE changes. It also asserts that both the delta path
// and the full-rescore path actually ran, so parity cannot pass by
// rescoring everything every time.
func TestRelinkParityIncrementalVsFromScratch(t *testing.T) {
	scenarios := []struct {
		name string
		lsh  *LSHConfig
	}{
		{"brute", nil},
		// Signature level 13 != history level 12 exercises the separate
		// signature stores.
		{"lsh", &LSHConfig{Threshold: 0.2, StepWindows: 48, SpatialLevel: 13, NumBuckets: 1 << 14}},
	}
	for _, sc := range scenarios {
		for _, seed := range []int64{3, 19} {
			t.Run(fmt.Sprintf("%s/seed%d", sc.name, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				cfg := Defaults()
				cfg.LSH = sc.lsh

				ground := GenerateCab(CabOptions{NumTaxis: 14, Days: 2, MeanRecordIntervalSec: 420, Seed: seed})
				w := SampleWorkload(&ground, SampleOptions{
					IntersectionRatio: 0.5, InclusionProbE: 0.7, InclusionProbI: 0.7, Seed: seed + 1,
				})
				p, err := PrepareLinkage(w.E, w.I, cfg)
				if err != nil {
					t.Fatal(err)
				}
				// Pin the grid for both linkers so union rebuilds live on the
				// same windows even after backward range growth.
				opt := ShardOptions{EpochUnix: p.EpochUnix, SpatialLevel: p.Config.SpatialLevel}
				inc, err := NewShardLinker(p.E, p.I, p.Config, opt)
				if err != nil {
					t.Fatal(err)
				}
				unionE := slices.Clone(p.E.Records)
				unionI := slices.Clone(p.I.Records)
				lo, hi, _ := p.E.TimeRange()

				// mutate applies one burst to the incremental linker and the
				// union records. Kinds: 0 = weight-only re-observations
				// (records duplicated into existing bins: the only churn that
				// leaves both IDF epochs untouched), 1 = new cells inside the
				// time range, 2/3 = range growth right/left, 4 = brand-new
				// entity pair. (Score changes without an epoch move cannot be
				// provoked from ingest — scores are pure functions of bin
				// sets, and any bin-set change moves an IDF epoch — so the
				// publish tail's partial-reuse path is covered by the
				// synthetic-delta parity suite in tail_test.go instead.)
				mutate := func(kind int) {
					switch kind {
					case 0:
						for k := 0; k < 6; k++ {
							r := unionE[rng.Intn(len(unionE))]
							inc.AddE(r)
							unionE = append(unionE, r)
							r = unionI[rng.Intn(len(unionI))]
							inc.AddI(r)
							unionI = append(unionI, r)
						}
					case 1:
						r := unionE[rng.Intn(len(unionE))]
						r.LatLng.Lat += 0.3 + rng.Float64()
						if rng.Intn(2) == 0 {
							r.RadiusKm = 0.5 + rng.Float64()
						}
						inc.AddE(r)
						unionE = append(unionE, r)
					case 2:
						r := unionI[rng.Intn(len(unionI))]
						hi += 86400
						r.Unix = hi
						inc.AddI(r)
						unionI = append(unionI, r)
					case 3:
						r := unionE[rng.Intn(len(unionE))]
						lo -= 86400
						r.Unix = lo
						inc.AddE(r)
						unionE = append(unionE, r)
					case 4:
						for k := 0; k < 8; k++ {
							unix := lo + rng.Int63n(hi-lo)
							re := NewRecord("fresh-e", 37.2+float64(k%3)*0.05, -121.9, unix)
							ri := NewRecord("fresh-i", 37.2+float64(k%3)*0.05, -121.9, unix+40)
							inc.AddE(re)
							inc.AddI(ri)
							unionE = append(unionE, re)
							unionI = append(unionI, ri)
						}
					}
				}

				sawDelta, sawFull := false, false
				sawTailReuse := false
				kinds := []int{0, 0, 2, 0, 1, 3, 4, 0}
				for burst, kind := range kinds {
					mutate(kind)
					if rng.Intn(2) == 0 {
						// Force a mid-cycle candidate refresh so the edge
						// store's pending delta survives being merged across
						// several refreshes before one Run consumes it.
						_ = inc.NumCandidatePairs()
						mutate(0)
					}
					got := inc.Run()
					es := got.Stats.EdgeStore
					if es == nil {
						t.Fatal("run stats carry no edge-store block")
					}
					if es.FullRescore {
						sawFull = true
					} else if es.Retained > 0 {
						sawDelta = true
						if es.Rescored+es.Retained < got.Stats.CandidatePairs {
							t.Fatalf("burst %d: rescored %d + retained %d < candidates %d",
								burst, es.Rescored, es.Retained, got.Stats.CandidatePairs)
						}
					}
					if ts := inc.PublishTailStats(); ts != nil &&
						!ts.LastFull && ts.ReusedPrefixLen > 0 {
						sawTailReuse = true
					}
					fresh, err := NewShardLinker(
						Dataset{Name: "E", Records: unionE},
						Dataset{Name: "I", Records: unionI},
						p.Config, opt,
					)
					if err != nil {
						t.Fatal(err)
					}
					requireSameResult(t, fmt.Sprintf("burst %d (kind %d)", burst, kind), got, fresh.Run())
				}
				if !sawDelta || !sawFull {
					t.Fatalf("workload must exercise both paths: delta=%v full=%v", sawDelta, sawFull)
				}
				if !sawTailReuse {
					t.Fatal("no delta burst reused the tail's matched prefix")
				}

				// SetTotalEntitiesE moves the E-side IDF epoch: the next run
				// must full-rescore and still match a from-scratch linker
				// under the same override.
				total := len(inc.EntitiesE()) + 16
				inc.SetTotalEntitiesE(total)
				got := inc.Run()
				if !got.Stats.EdgeStore.FullRescore {
					t.Fatal("SetTotalEntitiesE did not force a full rescore")
				}
				fresh, err := NewShardLinker(
					Dataset{Name: "E", Records: unionE},
					Dataset{Name: "I", Records: unionI},
					p.Config, opt,
				)
				if err != nil {
					t.Fatal(err)
				}
				fresh.SetTotalEntitiesE(total)
				requireSameResult(t, "idf-total override", got, fresh.Run())

				// A run with no ingest at all retains everything — and the
				// publish tail must reuse the entire matched prefix and the
				// cached threshold fit rather than redoing either.
				clean := inc.Run()
				es := clean.Stats.EdgeStore
				if es.Rescored != 0 || es.FullRescore || es.Retained != clean.Stats.CandidatePairs {
					t.Fatalf("clean run rescored work: %+v", es)
				}
				requireSameResult(t, "clean rerun", clean, got)
				ts := inc.PublishTailStats()
				if ts == nil {
					t.Fatal("greedy runs must maintain a publish tail")
				}
				if ts.Applies == 0 || ts.FullRebuilds == 0 {
					t.Fatalf("workload must exercise both tail paths: %+v", ts)
				}
				if int(ts.ReusedPrefixLen) != len(clean.Matched) || ts.SuffixWalked != 0 {
					t.Fatalf("clean rerun must reuse the whole matched prefix: %+v (matched %d)",
						ts, len(clean.Matched))
				}
				if ts.ThresholdReuses == 0 {
					t.Fatalf("clean rerun must reuse the cached threshold fit: %+v", ts)
				}
			})
		}
	}
}
