package slim

import (
	"slices"
	"time"

	"slim/internal/candidates"
	"slim/internal/lsh"
)

// EdgeStoreStats reports the state of a Linker's incremental edge store
// and the work profile of its most recent update. The headline ratio is
// Retained vs Rescored: retained pairs kept their cached score without
// touching the scorer, which is exactly the work an incremental relink
// saves over the full rescan it replaced.
type EdgeStoreStats struct {
	// Pairs is the number of retained scored edges (candidate pairs with a
	// positive score) — the store's state size.
	Pairs int64
	// Epoch counts full rescores: 1 after the first run, bumped every time
	// an IDF-epoch or grid change invalidated every cached score.
	Epoch uint64
	// Retained / Rescored / Dropped describe the last update: candidate
	// pairs kept with their cached score, pairs (re)scored, and edges
	// removed from the store (candidate-set removals plus pairs whose
	// fresh score was no longer positive).
	Retained int64
	Rescored int64
	Dropped  int64
	// FullRescore reports whether the last update was an epoch rebuild.
	FullRescore bool
	// LastUpdate is the wall-clock duration of the last update (scoring,
	// store maintenance and edge materialization; excludes matching).
	LastUpdate time.Duration
	// ResidentBytes estimates the store's resident memory: per retained
	// pair, a fixed map/cache overhead plus the entity id bytes. It is an
	// estimate (Go map internals are not directly measurable), maintained
	// incrementally so reading it costs nothing.
	ResidentBytes int64
}

// EdgeLineage is the provenance of one pair in the edge store: whether it
// is currently a retained edge, its score, and which runs produced it.
// Run sequence numbers are the ones stamped by RunEdges — inside a
// partitioned engine they are the engine's published result versions, so
// a lineage seq can be joined against the engine's run journal.
type EdgeLineage struct {
	// Linked reports whether the pair is currently a retained (positive
	// scored) edge; the remaining fields are zero when it is not.
	Linked bool
	// Score is the retained score.
	Score float64
	// RescoredSeq is the run that last actually scored this pair (every
	// later run retained the cached value).
	RescoredSeq uint64
	// RetainedSinceSeq is the run the pair first entered the store in its
	// current tenure (dropping and re-adding a pair restarts it).
	RetainedSinceSeq uint64
	// LastFullSeq / ScoreAtLastFull are the most recent full (epoch)
	// rescore that scored this pair and the score it produced then — the
	// anchor for "has this edge drifted since the last global rescore".
	// Both are zero for pairs added after the last full rescore.
	LastFullSeq     uint64
	ScoreAtLastFull float64
	// StoreEpoch counts the store's full rescores (see EdgeStoreStats).
	StoreEpoch uint64
}

// edgeMeta is the per-pair provenance behind EdgeLineage, stamped by
// resetFull/apply as scores are installed.
type edgeMeta struct {
	rescoredSeq uint64
	sinceSeq    uint64
	fullSeq     uint64
	fullScore   float64
}

// edgePairOverheadBytes is the estimated fixed per-pair cost of one
// retained edge: the scores map entry (two string headers + float64),
// the meta map entry, a links-cache slot, and amortized map bucket
// overhead. Entity id bytes are counted separately (once — the map keys
// and cache entries share the same string backing).
const edgePairOverheadBytes = 176

func pairBytes(p lsh.Pair) int64 {
	return edgePairOverheadBytes + int64(len(p.U)) + int64(len(p.V))
}

// edgeStore is the maintained pair→score state behind Linker.RunEdges.
// Where scoring used to be per-run output (every candidate rescanned on
// every run), the store keeps the scored edges alive between runs and
// updates them by delta: rescore the added/dirty pairs, drop the removed
// ones, keep the rest untouched.
//
// Soundness mirrors the epoch discipline of the compiled scoring views
// (history/compiled.go) and the candidate index (internal/candidates):
// a pair's score is a pure function of its two histories, the similarity
// parameters, and the stores' dataset-level statistics (IDF weights and
// the average history size). The latter are versioned by history.Store's
// IDF epoch — new bin, new entity, SetIDFTotalEntities change — so while
// both epochs stand still, a retained edge's score is bit-identical to
// what a rescore would produce, and any epoch movement forces a full
// rescore (amortized exactly like candidate-index rebuilds: dataset-level
// shifts grow ever rarer as a feed ages, while per-entity churn never
// stops).
type edgeStore struct {
	built bool
	// epochE / epochI are the history-store IDF epochs the retained scores
	// were computed under; any movement invalidates them all.
	epochE, epochI uint64

	// scores holds every candidate pair with a positive score; meta holds
	// the matching per-pair provenance (same key set as scores), and bytes
	// is the incrementally maintained resident-size estimate.
	scores map[lsh.Pair]float64
	meta   map[lsh.Pair]edgeMeta
	bytes  int64
	// seq is the run sequence of the last update (see Linker.RunEdges for
	// how it is assigned).
	seq uint64
	// links caches the sorted materialization of scores; linksStale marks
	// it outdated.
	links      []Link
	linksStale bool

	// Pending work accumulated between runs: pairs to (re)score, pairs to
	// drop, and a forced-full flag (set on candidate-index rebuilds as
	// defense in depth — the epoch check already catches every known
	// score-shifting change).
	pendFull    bool
	pendRescore map[lsh.Pair]struct{}
	pendRemoved map[lsh.Pair]struct{}

	fullRescores                            uint64
	lastRetained, lastRescored, lastDropped int64
	lastFull                                bool
	lastUpdate                              time.Duration

	// deltaChanged / deltaRemoved record the exact edge-level delta of the
	// last update for the incremental publish tail: edges that entered the
	// store or changed score (with their fresh scores) and edges that left
	// it (with the scores they held). A score change records both. The
	// buffers are reused across updates — consumers must not retain them —
	// and updates counts every resetFull/apply so a consumer can detect a
	// missed delta and fall back to a full rebuild.
	deltaChanged []Link
	deltaRemoved []Link
	updates      uint64
}

func newEdgeStore() edgeStore {
	return edgeStore{
		scores:      make(map[lsh.Pair]float64),
		meta:        make(map[lsh.Pair]edgeMeta),
		pendRescore: make(map[lsh.Pair]struct{}),
		pendRemoved: make(map[lsh.Pair]struct{}),
	}
}

// mergeDelta folds one candidate-index Delta into the pending work set.
// Later deltas win: a pair removed after being queued for rescore is
// dropped, and vice versa, so the pending sets always describe the net
// transition from the store's last synced state to the current one.
func (es *edgeStore) mergeDelta(d candidates.Delta) {
	if d.Rebuilt {
		es.pendFull = true
	}
	for _, p := range d.Removed {
		delete(es.pendRescore, p)
		es.pendRemoved[p] = struct{}{}
	}
	for _, p := range d.Added {
		delete(es.pendRemoved, p)
		es.pendRescore[p] = struct{}{}
	}
	for _, p := range d.Dirty {
		delete(es.pendRemoved, p)
		es.pendRescore[p] = struct{}{}
	}
}

// resetFull replaces the whole store with a freshly scored edge set (the
// full-rescore path), stamped with the given run seq. edges must be
// sorted in canonical (U, V) order; the links cache adopts it directly.
// Pairs that were already retained keep their RetainedSinceSeq tenure;
// everything is (by definition) rescored, so every pair's rescored-seq,
// last-full-seq and score-at-last-full move to this run.
func (es *edgeStore) resetFull(edges []Link, seq uint64) {
	clear(es.scores)
	old := es.meta
	es.meta = make(map[lsh.Pair]edgeMeta, len(edges))
	es.bytes = 0
	for _, e := range edges {
		p := lsh.Pair{U: e.U, V: e.V}
		es.scores[p] = e.Score
		m := edgeMeta{rescoredSeq: seq, sinceSeq: seq, fullSeq: seq, fullScore: e.Score}
		if prev, ok := old[p]; ok {
			m.sinceSeq = prev.sinceSeq
		}
		es.meta[p] = m
		es.bytes += pairBytes(p)
	}
	es.links = edges
	es.linksStale = false
	es.pendFull = false
	clear(es.pendRescore)
	clear(es.pendRemoved)
	es.fullRescores++
	es.lastFull = true
	es.seq = seq
	es.deltaChanged = es.deltaChanged[:0]
	es.deltaRemoved = es.deltaRemoved[:0]
	es.updates++
}

// apply performs one delta update stamped with the given run seq: drop
// the pending removals, then install the fresh scores of the rescored
// pairs (deleting pairs that scored non-positive). It returns how many
// edges were dropped from the store.
func (es *edgeStore) apply(pairs []lsh.Pair, scores []float64, seq uint64) (dropped int64) {
	es.deltaChanged = es.deltaChanged[:0]
	es.deltaRemoved = es.deltaRemoved[:0]
	for p := range es.pendRemoved {
		if old, ok := es.scores[p]; ok {
			delete(es.scores, p)
			delete(es.meta, p)
			es.bytes -= pairBytes(p)
			es.linksStale = true
			es.deltaRemoved = append(es.deltaRemoved, Link{U: p.U, V: p.V, Score: old})
			dropped++
		}
	}
	for i, p := range pairs {
		s := scores[i]
		old, had := es.scores[p]
		if s > 0 {
			if !had || old != s {
				es.scores[p] = s
				es.linksStale = true
				if had {
					es.deltaRemoved = append(es.deltaRemoved, Link{U: p.U, V: p.V, Score: old})
				}
				es.deltaChanged = append(es.deltaChanged, Link{U: p.U, V: p.V, Score: s})
			}
			m, hadMeta := es.meta[p]
			if !hadMeta {
				m.sinceSeq = seq
				es.bytes += pairBytes(p)
			}
			m.rescoredSeq = seq
			es.meta[p] = m
		} else if had {
			delete(es.scores, p)
			delete(es.meta, p)
			es.bytes -= pairBytes(p)
			es.linksStale = true
			es.deltaRemoved = append(es.deltaRemoved, Link{U: p.U, V: p.V, Score: old})
			dropped++
		}
	}
	clear(es.pendRescore)
	clear(es.pendRemoved)
	es.lastFull = false
	es.seq = seq
	es.updates++
	return dropped
}

// lineage returns the provenance of one pair (zero-valued, Linked=false,
// when the pair is not a retained edge).
func (es *edgeStore) lineage(p lsh.Pair) EdgeLineage {
	s, ok := es.scores[p]
	if !ok {
		return EdgeLineage{StoreEpoch: es.fullRescores}
	}
	m := es.meta[p]
	return EdgeLineage{
		Linked:           true,
		Score:            s,
		RescoredSeq:      m.rescoredSeq,
		RetainedSinceSeq: m.sinceSeq,
		LastFullSeq:      m.fullSeq,
		ScoreAtLastFull:  m.fullScore,
		StoreEpoch:       es.fullRescores,
	}
}

// materialize returns the retained edges sorted by (U, V) — the exact
// order the per-run scoring path used to produce — rebuilding the cache
// only when the edge set changed. The returned slice is shared across
// runs until the next change; callers must not modify it.
func (es *edgeStore) materialize() []Link {
	if es.linksStale {
		links := make([]Link, 0, len(es.scores))
		for p, s := range es.scores {
			links = append(links, Link{U: p.U, V: p.V, Score: s})
		}
		slices.SortFunc(links, func(a, b Link) int {
			if a.U != b.U {
				if a.U < b.U {
					return -1
				}
				return 1
			}
			if a.V < b.V {
				return -1
			}
			if a.V > b.V {
				return 1
			}
			return 0
		})
		es.links = links
		es.linksStale = false
	}
	if es.links == nil {
		es.links = []Link{}
	}
	return es.links
}

// delta returns the edge-level delta of the last update, for the
// incremental publish tail. The slices alias the store's reused buffers:
// consumers must fold them in before the next update.
func (es *edgeStore) delta() EdgeDelta {
	return EdgeDelta{
		Full:    es.lastFull,
		Seq:     es.updates,
		Changed: es.deltaChanged,
		Removed: es.deltaRemoved,
	}
}

// statsSnapshot returns a fresh stats copy (safe for callers to retain
// across later runs).
func (es *edgeStore) statsSnapshot() *EdgeStoreStats {
	return &EdgeStoreStats{
		Pairs:         int64(len(es.scores)),
		Epoch:         es.fullRescores,
		Retained:      es.lastRetained,
		Rescored:      es.lastRescored,
		Dropped:       es.lastDropped,
		FullRescore:   es.lastFull,
		LastUpdate:    es.lastUpdate,
		ResidentBytes: es.bytes,
	}
}
