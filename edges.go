package slim

import (
	"slices"
	"time"

	"slim/internal/candidates"
	"slim/internal/lsh"
)

// EdgeStoreStats reports the state of a Linker's incremental edge store
// and the work profile of its most recent update. The headline ratio is
// Retained vs Rescored: retained pairs kept their cached score without
// touching the scorer, which is exactly the work an incremental relink
// saves over the full rescan it replaced.
type EdgeStoreStats struct {
	// Pairs is the number of retained scored edges (candidate pairs with a
	// positive score) — the store's state size.
	Pairs int64
	// Epoch counts full rescores: 1 after the first run, bumped every time
	// an IDF-epoch or grid change invalidated every cached score.
	Epoch uint64
	// Retained / Rescored / Dropped describe the last update: candidate
	// pairs kept with their cached score, pairs (re)scored, and edges
	// removed from the store (candidate-set removals plus pairs whose
	// fresh score was no longer positive).
	Retained int64
	Rescored int64
	Dropped  int64
	// FullRescore reports whether the last update was an epoch rebuild.
	FullRescore bool
	// LastUpdate is the wall-clock duration of the last update (scoring,
	// store maintenance and edge materialization; excludes matching).
	LastUpdate time.Duration
}

// edgeStore is the maintained pair→score state behind Linker.RunEdges.
// Where scoring used to be per-run output (every candidate rescanned on
// every run), the store keeps the scored edges alive between runs and
// updates them by delta: rescore the added/dirty pairs, drop the removed
// ones, keep the rest untouched.
//
// Soundness mirrors the epoch discipline of the compiled scoring views
// (history/compiled.go) and the candidate index (internal/candidates):
// a pair's score is a pure function of its two histories, the similarity
// parameters, and the stores' dataset-level statistics (IDF weights and
// the average history size). The latter are versioned by history.Store's
// IDF epoch — new bin, new entity, SetIDFTotalEntities change — so while
// both epochs stand still, a retained edge's score is bit-identical to
// what a rescore would produce, and any epoch movement forces a full
// rescore (amortized exactly like candidate-index rebuilds: dataset-level
// shifts grow ever rarer as a feed ages, while per-entity churn never
// stops).
type edgeStore struct {
	built bool
	// epochE / epochI are the history-store IDF epochs the retained scores
	// were computed under; any movement invalidates them all.
	epochE, epochI uint64

	// scores holds every candidate pair with a positive score.
	scores map[lsh.Pair]float64
	// links caches the sorted materialization of scores; linksStale marks
	// it outdated.
	links      []Link
	linksStale bool

	// Pending work accumulated between runs: pairs to (re)score, pairs to
	// drop, and a forced-full flag (set on candidate-index rebuilds as
	// defense in depth — the epoch check already catches every known
	// score-shifting change).
	pendFull    bool
	pendRescore map[lsh.Pair]struct{}
	pendRemoved map[lsh.Pair]struct{}

	fullRescores                            uint64
	lastRetained, lastRescored, lastDropped int64
	lastFull                                bool
	lastUpdate                              time.Duration
}

func newEdgeStore() edgeStore {
	return edgeStore{
		scores:      make(map[lsh.Pair]float64),
		pendRescore: make(map[lsh.Pair]struct{}),
		pendRemoved: make(map[lsh.Pair]struct{}),
	}
}

// mergeDelta folds one candidate-index Delta into the pending work set.
// Later deltas win: a pair removed after being queued for rescore is
// dropped, and vice versa, so the pending sets always describe the net
// transition from the store's last synced state to the current one.
func (es *edgeStore) mergeDelta(d candidates.Delta) {
	if d.Rebuilt {
		es.pendFull = true
	}
	for _, p := range d.Removed {
		delete(es.pendRescore, p)
		es.pendRemoved[p] = struct{}{}
	}
	for _, p := range d.Added {
		delete(es.pendRemoved, p)
		es.pendRescore[p] = struct{}{}
	}
	for _, p := range d.Dirty {
		delete(es.pendRemoved, p)
		es.pendRescore[p] = struct{}{}
	}
}

// resetFull replaces the whole store with a freshly scored edge set (the
// full-rescore path). edges must be sorted in canonical (U, V) order; the
// links cache adopts it directly.
func (es *edgeStore) resetFull(edges []Link) {
	clear(es.scores)
	for _, e := range edges {
		es.scores[lsh.Pair{U: e.U, V: e.V}] = e.Score
	}
	es.links = edges
	es.linksStale = false
	es.pendFull = false
	clear(es.pendRescore)
	clear(es.pendRemoved)
	es.fullRescores++
	es.lastFull = true
}

// apply performs one delta update: drop the pending removals, then install
// the fresh scores of the rescored pairs (deleting pairs that scored
// non-positive). It returns how many edges were dropped from the store.
func (es *edgeStore) apply(pairs []lsh.Pair, scores []float64) (dropped int64) {
	for p := range es.pendRemoved {
		if _, ok := es.scores[p]; ok {
			delete(es.scores, p)
			es.linksStale = true
			dropped++
		}
	}
	for i, p := range pairs {
		s := scores[i]
		old, had := es.scores[p]
		if s > 0 {
			if !had || old != s {
				es.scores[p] = s
				es.linksStale = true
			}
		} else if had {
			delete(es.scores, p)
			es.linksStale = true
			dropped++
		}
	}
	clear(es.pendRescore)
	clear(es.pendRemoved)
	es.lastFull = false
	return dropped
}

// materialize returns the retained edges sorted by (U, V) — the exact
// order the per-run scoring path used to produce — rebuilding the cache
// only when the edge set changed. The returned slice is shared across
// runs until the next change; callers must not modify it.
func (es *edgeStore) materialize() []Link {
	if es.linksStale {
		links := make([]Link, 0, len(es.scores))
		for p, s := range es.scores {
			links = append(links, Link{U: p.U, V: p.V, Score: s})
		}
		slices.SortFunc(links, func(a, b Link) int {
			if a.U != b.U {
				if a.U < b.U {
					return -1
				}
				return 1
			}
			if a.V < b.V {
				return -1
			}
			if a.V > b.V {
				return 1
			}
			return 0
		})
		es.links = links
		es.linksStale = false
	}
	if es.links == nil {
		es.links = []Link{}
	}
	return es.links
}

// statsSnapshot returns a fresh stats copy (safe for callers to retain
// across later runs).
func (es *edgeStore) statsSnapshot() *EdgeStoreStats {
	return &EdgeStoreStats{
		Pairs:       int64(len(es.scores)),
		Epoch:       es.fullRescores,
		Retained:    es.lastRetained,
		Rescored:    es.lastRescored,
		Dropped:     es.lastDropped,
		FullRescore: es.lastFull,
		LastUpdate:  es.lastUpdate,
	}
}
