package slim

import (
	"sort"
	"testing"
)

// splitByTime divides a dataset's records at a unix timestamp.
func splitByTime(d Dataset, cut int64) (before, after []Record) {
	for _, r := range d.Records {
		if r.Unix < cut {
			before = append(before, r)
		} else {
			after = append(after, r)
		}
	}
	return before, after
}

// TestIncrementalRunMatchesBatch streams the tail of a workload into a
// prepared linker and verifies the re-link result is identical to linking
// the full data in one batch.
func TestIncrementalRunMatchesBatch(t *testing.T) {
	ground := GenerateCab(CabOptions{NumTaxis: 20, Days: 2, MeanRecordIntervalSec: 420, Seed: 61})
	w := SampleWorkload(&ground, SampleOptions{
		IntersectionRatio: 0.5, InclusionProbE: 0.7, InclusionProbI: 0.7, Seed: 62,
	})
	lo, _, _ := w.E.TimeRange()
	cut := lo + 130000 // ~1.5 days in: every entity already has many records

	beforeE, afterE := splitByTime(w.E, cut)
	beforeI, afterI := splitByTime(w.I, cut)

	cfg := Defaults()
	lk, err := NewLinker(
		Dataset{Name: "E", Records: beforeE},
		Dataset{Name: "I", Records: beforeI},
		cfg,
	)
	if err != nil {
		t.Fatal(err)
	}
	first := lk.Run()

	lk.AddE(afterE...)
	lk.AddI(afterI...)
	second := lk.Run()

	batch, err := LinkDatasets(w.E, w.I, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Links) != len(batch.Links) {
		t.Fatalf("incremental links = %d, batch links = %d", len(second.Links), len(batch.Links))
	}
	sortLinks := func(ls []Link) {
		sort.Slice(ls, func(i, j int) bool { return ls[i].U < ls[j].U })
	}
	sortLinks(second.Links)
	sortLinks(batch.Links)
	for i := range batch.Links {
		if second.Links[i] != batch.Links[i] {
			t.Fatalf("link %d differs: %+v vs %+v", i, second.Links[i], batch.Links[i])
		}
	}
	// More evidence should not have made the linkage worse.
	mFirst := Evaluate(first.Links, w.Truth)
	mSecond := Evaluate(second.Links, w.Truth)
	if mSecond.F1+0.1 < mFirst.F1 {
		t.Errorf("F1 dropped after streaming more data: %.3f -> %.3f", mFirst.F1, mSecond.F1)
	}
	// Per-run stats: the second run must report its own work, not the
	// cumulative counters.
	if second.Stats.RecordComparisons <= 0 {
		t.Error("second run reported no work")
	}
}

// TestIncrementalRunWithLSH verifies that streamed records invalidate and
// refresh the LSH candidate set.
func TestIncrementalRunWithLSH(t *testing.T) {
	ground := GenerateCab(CabOptions{NumTaxis: 20, Days: 2, MeanRecordIntervalSec: 420, Seed: 63})
	w := SampleWorkload(&ground, SampleOptions{
		IntersectionRatio: 0.5, InclusionProbE: 0.7, InclusionProbI: 0.7, Seed: 64,
	})
	lo, _, _ := w.E.TimeRange()
	// Cut at one day: 96 windows → 2 signature queries; the streamed tail
	// extends this to 4.
	beforeE, afterE := splitByTime(w.E, lo+86400)
	beforeI, afterI := splitByTime(w.I, lo+86400)

	cfg := Defaults()
	cfg.LSH = &LSHConfig{Threshold: 0.2, StepWindows: 48, SpatialLevel: 12, NumBuckets: 1 << 14}
	lk, err := NewLinker(
		Dataset{Name: "E", Records: beforeE},
		Dataset{Name: "I", Records: beforeI},
		cfg,
	)
	if err != nil {
		t.Fatal(err)
	}
	first := lk.Run()
	if first.Stats.LSH == nil {
		t.Fatal("LSH stats missing on first run")
	}
	sigLenBefore := first.Stats.LSH.SignatureLen

	lk.AddE(afterE...)
	lk.AddI(afterI...)
	second := lk.Run()
	if second.Stats.LSH == nil {
		t.Fatal("LSH stats missing on second run")
	}
	// The streamed tail extends the time range, so signatures must have
	// been rebuilt with more query windows.
	if second.Stats.LSH.SignatureLen <= sigLenBefore {
		t.Errorf("signature length did not grow after streaming: %d -> %d",
			sigLenBefore, second.Stats.LSH.SignatureLen)
	}
	batch, err := LinkDatasets(w.E, w.I, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Links) != len(batch.Links) {
		t.Fatalf("incremental LSH links = %d, batch = %d", len(second.Links), len(batch.Links))
	}
}

// TestIncrementalNewEntityAppears streams records of a brand-new entity
// and verifies it becomes linkable.
func TestIncrementalNewEntityAppears(t *testing.T) {
	// Base: two established pairs; then a third pair arrives as a stream.
	mk := func(e string, latOff float64, n int, startUnix int64) []Record {
		var out []Record
		for k := 0; k < n; k++ {
			out = append(out, NewRecord(EntityID(e), 37.5+latOff+float64(k%4)*0.06, -122.3, startUnix+int64(k)*900))
		}
		return out
	}
	var eRecs, iRecs []Record
	eRecs = append(eRecs, mk("e1", 0, 20, 0)...)
	eRecs = append(eRecs, mk("e2", 0.8, 20, 0)...)
	iRecs = append(iRecs, mk("i1", 0, 20, 30)...)
	iRecs = append(iRecs, mk("i2", 0.8, 20, 30)...)

	cfg := Defaults()
	cfg.Threshold = ThresholdNone // tiny instance: keep the full matching
	lk, err := NewLinker(Dataset{Name: "E", Records: eRecs}, Dataset{Name: "I", Records: iRecs}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := lk.Run()

	lk.AddE(mk("e3", 1.6, 20, 0)...)
	lk.AddI(mk("i3", 1.6, 20, 30)...)
	second := lk.Run()

	if len(second.Links) != len(first.Links)+1 {
		t.Fatalf("links after new pair: %d, want %d", len(second.Links), len(first.Links)+1)
	}
	found := false
	for _, l := range second.Links {
		if l.U == "e3" && l.V == "i3" {
			found = true
		}
	}
	if !found {
		t.Errorf("streamed pair e3-i3 not linked: %v", second.Links)
	}
}

// TestCandidateIndexIncrementalOnLinker verifies the Linker maintains its
// LSH candidate set through the incremental index: in-grid churn takes the
// delta path (epoch stable, only touched entities re-signed), range growth
// rebuilds, and LSH-disabled linkers report no index at all.
func TestCandidateIndexIncrementalOnLinker(t *testing.T) {
	ground := GenerateCab(CabOptions{NumTaxis: 20, Days: 2, MeanRecordIntervalSec: 420, Seed: 65})
	w := SampleWorkload(&ground, SampleOptions{
		IntersectionRatio: 0.5, InclusionProbE: 0.7, InclusionProbI: 0.7, Seed: 66,
	})
	cfg := Defaults()
	cfg.LSH = &LSHConfig{Threshold: 0.2, StepWindows: 48, SpatialLevel: 12, NumBuckets: 1 << 14}
	lk, err := NewLinker(w.E, w.I, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lk.Run()
	ix := lk.CandidateIndexStats()
	if ix == nil {
		t.Fatal("no candidate-index stats with LSH enabled")
	}
	if ix.Epoch != 1 || ix.SignaturesE == 0 || ix.SignaturesI == 0 {
		t.Fatalf("index after construction: %+v", ix)
	}

	// Re-observe one entity inside the existing time range: a delta update.
	target := w.E.Records[len(w.E.Records)/2]
	target.Unix += 30
	lk.AddE(target)
	lk.Run()
	ix = lk.CandidateIndexStats()
	if ix.Epoch != 1 || ix.LastRebuild {
		t.Fatalf("in-range ingest forced an epoch rebuild: %+v", ix)
	}
	if ix.LastDirty != 1 {
		t.Fatalf("LastDirty = %d after a one-entity burst, want 1", ix.LastDirty)
	}

	// A record far past the range grows the signature grid: epoch rebuild.
	_, hi, _ := w.E.TimeRange()
	late := w.E.Records[0]
	late.Unix = hi + 6*86400
	lk.AddE(late)
	lk.Run()
	ix = lk.CandidateIndexStats()
	if ix.Epoch != 2 || !ix.LastRebuild {
		t.Fatalf("range growth did not rebuild the index: %+v", ix)
	}

	plain, err := NewLinker(w.E, w.I, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if plain.CandidateIndexStats() != nil {
		t.Fatal("LSH-disabled linker reported candidate-index stats")
	}
}
