// Benchmarks regenerating every table and figure of the paper's evaluation
// (Sec. 5), one Benchmark per artifact, plus micro-benchmarks of the
// pipeline stages. Each figure bench runs its experiment at smoke scale
// and reports the headline quantity of that figure via b.ReportMetric, so
// `go test -bench=. -benchmem` doubles as a reproduction summary. Use
// cmd/slim-experiments for full-scale tables.
package slim_test

import (
	"testing"

	"slim"
	"slim/internal/experiments"
)

func benchScale() experiments.Scale {
	sc := experiments.TinyScale()
	sc.Workers = 0
	return sc
}

// BenchmarkFig2GMMFit regenerates Fig. 2: GMM fit over matched similarity
// scores with the automated stop threshold. Reports the threshold's
// TP/FP separation accuracy.
func BenchmarkFig2GMMFit(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2GMMFit(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		acc = r.ThresholdAccuracy()
	}
	b.ReportMetric(acc, "sep-accuracy")
}

// BenchmarkFig4SpatioTemporalCab regenerates Fig. 4 (Cab precision/recall/
// alibis/comparisons vs spatio-temporal level). Reports F1 at the paper's
// default operating point (level 12, 15-minute windows).
func BenchmarkFig4SpatioTemporalCab(b *testing.B) {
	opt := experiments.SpatioTemporalOptions{Levels: []int{4, 12, 20}, WindowsMin: []float64{15, 180}}
	var f1 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4SpatioTemporalCab(benchScale(), opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range r.Cells {
			if c.Level == 12 && c.WindowMin == 15 {
				f1 = c.F1
			}
		}
	}
	b.ReportMetric(f1, "F1@12/15min")
}

// BenchmarkFig5SpatioTemporalSM regenerates Fig. 5 (same sweep on SM).
func BenchmarkFig5SpatioTemporalSM(b *testing.B) {
	opt := experiments.SpatioTemporalOptions{Levels: []int{4, 12, 20}, WindowsMin: []float64{15, 180}}
	var f1 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5SpatioTemporalSM(benchScale(), opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range r.Cells {
			if c.Level == 12 && c.WindowMin == 15 {
				f1 = c.F1
			}
		}
	}
	b.ReportMetric(f1, "F1@12/15min")
}

// BenchmarkFig6ScoreHistograms regenerates Fig. 6 (score histograms + GMM
// fits across spatial details at 90-minute windows). Reports the threshold
// accuracy at the finest detail.
func BenchmarkFig6ScoreHistograms(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Fig6ScoreHistograms(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		acc = rs[len(rs)-1].ThresholdAccuracy()
	}
	b.ReportMetric(acc, "sep-accuracy@16")
}

// BenchmarkFig7WorkloadCab regenerates Fig. 7a/b (F1 and runtime vs record
// inclusion probability on Cab). Reports F1 at the default (.5, .5) point.
func BenchmarkFig7WorkloadCab(b *testing.B) {
	opt := experiments.WorkloadOptions{InclusionProbs: []float64{0.3, 0.5, 0.9}, Ratios: []float64{0.5}}
	var f1 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7WorkloadCab(benchScale(), opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range r.Cells {
			if c.InclusionProb == 0.5 {
				f1 = c.F1
			}
		}
	}
	b.ReportMetric(f1, "F1@.5/.5")
}

// BenchmarkFig7WorkloadSM regenerates Fig. 7c/d on SM.
func BenchmarkFig7WorkloadSM(b *testing.B) {
	opt := experiments.WorkloadOptions{InclusionProbs: []float64{0.3, 0.9}, Ratios: []float64{0.5}}
	var f1 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7WorkloadSM(benchScale(), opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range r.Cells {
			if c.InclusionProb == 0.9 {
				f1 = c.F1
			}
		}
	}
	b.ReportMetric(f1, "F1@.9")
}

// BenchmarkFig8LSHLevelsCab regenerates Fig. 8a/b (LSH relative F1 and
// speed-up vs signature level x temporal step on Cab). Reports the
// speed-up at the best-quality operating point found.
func BenchmarkFig8LSHLevelsCab(b *testing.B) {
	opt := experiments.LSHLevelOptions{
		SigLevels: []int{4, 12},
		Steps:     []int{48},
		Threshold: 0.2,
		Buckets:   1 << 14,
	}
	var speedup, rel float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8LSHLevelsCab(benchScale(), opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range r.Cells {
			if c.SigLevel == 12 {
				speedup, rel = c.SpeedUp, c.RelativeF1
			}
		}
	}
	b.ReportMetric(speedup, "speedup@12")
	b.ReportMetric(rel, "relF1@12")
}

// BenchmarkFig8LSHLevelsSM regenerates Fig. 8c/d on SM.
func BenchmarkFig8LSHLevelsSM(b *testing.B) {
	opt := experiments.LSHLevelOptions{
		SigLevels: []int{4, 12},
		Steps:     []int{16},
		Threshold: 0.6,
		Buckets:   1 << 14,
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8LSHLevelsSM(benchScale(), opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range r.Cells {
			if c.SigLevel == 12 {
				speedup = c.SpeedUp
			}
		}
	}
	b.ReportMetric(speedup, "speedup@12")
}

// BenchmarkFig9LSHBucketsCab regenerates Fig. 9a (speed-up vs bucket-array
// size on Cab). Reports the large-array speed-up.
func BenchmarkFig9LSHBucketsCab(b *testing.B) {
	opt := experiments.LSHBucketOptions{
		BucketExponents: []int{8, 18},
		Thresholds:      []float64{0.2},
		SigLevel:        12,
		Step:            48,
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9LSHBucketsCab(benchScale(), opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range r.Cells {
			if c.BucketExp == 18 {
				speedup = c.SpeedUp
			}
		}
	}
	b.ReportMetric(speedup, "speedup@2^18")
}

// BenchmarkFig9LSHBucketsSM regenerates Fig. 9b on SM.
func BenchmarkFig9LSHBucketsSM(b *testing.B) {
	opt := experiments.LSHBucketOptions{
		BucketExponents: []int{8, 18},
		Thresholds:      []float64{0.6},
		SigLevel:        16,
		Step:            16,
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9LSHBucketsSM(benchScale(), opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range r.Cells {
			if c.BucketExp == 18 {
				speedup = c.SpeedUp
			}
		}
	}
	b.ReportMetric(speedup, "speedup@2^18")
}

// BenchmarkFig10Ablation regenerates Fig. 10 (component ablations).
// Reports the F1 gap between full SLIM and the all-pairs variant at the
// widest window — the paper's headline ablation finding.
func BenchmarkFig10Ablation(b *testing.B) {
	opt := experiments.AblationOptions{WindowsMin: []float64{15, 360}}
	var gap float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10AblationWindow(benchScale(), opt)
		if err != nil {
			b.Fatal(err)
		}
		orig, _ := r.F1("original", 360)
		all, _ := r.F1("all-pairs", 360)
		gap = orig - all
	}
	b.ReportMetric(gap, "F1gap@360min")
}

// BenchmarkFig11Comparison regenerates Fig. 11 (SLIM vs ST-Link vs GM).
// Reports SLIM's F1 advantage over ST-Link and the comparison-count ratio.
func BenchmarkFig11Comparison(b *testing.B) {
	opt := experiments.DefaultComparisonOptions()
	opt.TargetAvgRecords = []float64{120}
	opt.Ratios = []float64{0.5}
	opt.IncludeGM = true
	opt.GMMaxAvgRecords = 0
	var f1Gap, cmpRatio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11Comparison(benchScale(), opt)
		if err != nil {
			b.Fatal(err)
		}
		c := r.Cells[0]
		slimM, _ := c.Method("slim-nolsh")
		lshM, _ := c.Method("st-link")
		f1Gap = slimM.F1 - lshM.F1
		slimLSH, _ := c.Method("slim")
		if slimLSH.RecordComparisons > 0 {
			cmpRatio = float64(lshM.RecordComparisons) / float64(slimLSH.RecordComparisons)
		}
	}
	b.ReportMetric(f1Gap, "F1-vs-stlink")
	b.ReportMetric(cmpRatio, "cmp-ratio-stlink/slim")
}

// BenchmarkTuningElbow regenerates the Sec. 3.3 auto-tuning experiment.
// Reports the chosen Cab spatial level (paper: ~12 at 15-minute windows).
func BenchmarkTuningElbow(b *testing.B) {
	var level float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.TuningCab(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		level = float64(r.ChosenLevel)
	}
	b.ReportMetric(level, "chosen-level")
}

// BenchmarkThresholdMethods regenerates the Sec. 5.2.1 remark that GMM,
// Otsu and 2-means stop thresholds behave similarly. Reports the F1 spread
// across methods on Cab (paper: "similar results").
func BenchmarkThresholdMethods(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.ThresholdMethods(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		spread = r.F1Spread("cab")
	}
	b.ReportMetric(spread, "F1-spread")
}

// ---- pipeline micro-benchmarks ----

func benchWorkload(b *testing.B, taxis int) slim.SampledWorkload {
	b.Helper()
	ground := slim.GenerateCab(slim.CabOptions{
		NumTaxis: taxis, Days: 2, MeanRecordIntervalSec: 360, Seed: 99,
	})
	return slim.SampleWorkload(&ground, slim.SampleOptions{
		IntersectionRatio: 0.5, InclusionProbE: 0.5, InclusionProbI: 0.5, Seed: 100,
	})
}

// BenchmarkPipelineBruteForce measures the full pipeline without LSH.
func BenchmarkPipelineBruteForce(b *testing.B) {
	w := benchWorkload(b, 24)
	cfg := slim.Defaults()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := slim.LinkDatasets(w.E, w.I, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineLSH measures the full pipeline with the LSH filter.
func BenchmarkPipelineLSH(b *testing.B) {
	w := benchWorkload(b, 24)
	cfg := slim.Defaults()
	cfg.LSH = &slim.LSHConfig{Threshold: 0.2, StepWindows: 48, SpatialLevel: 12, NumBuckets: 1 << 14}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := slim.LinkDatasets(w.E, w.I, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinkerScorePair measures one similarity evaluation.
func BenchmarkLinkerScorePair(b *testing.B) {
	w := benchWorkload(b, 24)
	lk, err := slim.NewLinker(w.E, w.I, slim.Defaults())
	if err != nil {
		b.Fatal(err)
	}
	es, is := lk.EntitiesE(), lk.EntitiesI()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = lk.Score(es[i%len(es)], is[i%len(is)])
	}
}

// BenchmarkRunEdgesLSH measures repeated RunEdges over a prepared, clean
// linker with the LSH filter enabled — the hot loop of a relinking service
// shard (no matching/thresholding, no history builds). Since the edge
// store landed, a clean rerun retains every scored pair, so this measures
// the fixed per-run overhead of the incremental path; see
// BenchmarkRelinkIncrementalDirtyBurst / BenchmarkRelinkFullRescore
// (relink_bench_test.go) for the dirty-burst scoring costs.
func BenchmarkRunEdgesLSH(b *testing.B) {
	w := benchWorkload(b, 24)
	cfg := slim.Defaults()
	cfg.LSH = &slim.LSHConfig{Threshold: 0.2, StepWindows: 48, SpatialLevel: 12, NumBuckets: 1 << 14}
	lk, err := slim.NewLinker(w.E, w.I, cfg)
	if err != nil {
		b.Fatal(err)
	}
	lk.RunEdges() // warm caches and compiled state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = lk.RunEdges()
	}
}

// BenchmarkAutoTune measures the spatial-level elbow probe.
func BenchmarkAutoTune(b *testing.B) {
	w := benchWorkload(b, 20)
	cfg := slim.Defaults()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := slim.AutoTuneSpatialLevel(w.E, w.I, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
