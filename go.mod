module slim

go 1.24
