package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLambertW0KnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0},
		{math.E, 1},                // W(e) = 1
		{2 * math.E * math.E, 2},   // W(2e^2) = 2
		{-1 / math.E, -1},          // branch point
		{1, 0.5671432904097838730}, // omega constant
		{10, 1.7455280027406994},
		{100, 3.3856301402900502},
	}
	for _, c := range cases {
		got, err := LambertW0(c.x)
		if err != nil {
			t.Fatalf("W(%g): %v", c.x, err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("W(%g) = %.15g, want %.15g", c.x, got, c.want)
		}
	}
}

func TestLambertW0InverseProperty(t *testing.T) {
	f := func(seed uint32) bool {
		x := float64(seed%1000000)/1000 + 0.001 // (0, 1000]
		w, err := LambertW0(x)
		if err != nil {
			return false
		}
		return math.Abs(w*math.Exp(w)-x) < 1e-8*(1+x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLambertW0OutOfDomain(t *testing.T) {
	if _, err := LambertW0(-1); err == nil {
		t.Error("expected error for x < -1/e")
	}
	if _, err := LambertW0(math.NaN()); err == nil {
		t.Error("expected error for NaN")
	}
}

func TestNormalCDF(t *testing.T) {
	if got := NormalCDF(0, 0, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Phi(0) = %g, want 0.5", got)
	}
	if got := NormalCDF(1.96, 0, 1); math.Abs(got-0.975) > 1e-3 {
		t.Errorf("Phi(1.96) = %g, want ~0.975", got)
	}
	if got := NormalCDF(5, 10, 2); got >= 0.5 {
		t.Errorf("CDF below the mean should be < 0.5, got %g", got)
	}
	// Degenerate std behaves like a step function.
	if NormalCDF(1, 2, 0) != 0 || NormalCDF(3, 2, 0) != 1 {
		t.Error("zero-std CDF should be a step at the mean")
	}
}

func TestNormalPDFSymmetry(t *testing.T) {
	for _, d := range []float64{0.1, 0.5, 1, 2} {
		if math.Abs(NormalPDF(3+d, 3, 1.5)-NormalPDF(3-d, 3, 1.5)) > 1e-12 {
			t.Errorf("pdf not symmetric at +/- %g", d)
		}
	}
	if NormalPDF(0, 0, 0) != 0 {
		t.Error("zero-std pdf should be 0")
	}
	if NormalPDF(0, 0, 1) <= NormalPDF(1, 0, 1) {
		t.Error("pdf must peak at the mean")
	}
}

func TestKMeans1DTwoClusters(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var values []float64
	for i := 0; i < 100; i++ {
		values = append(values, 10+r.NormFloat64())
	}
	for i := 0; i < 100; i++ {
		values = append(values, 50+r.NormFloat64())
	}
	centers, assign := KMeans1D(values, 2, 50)
	if len(centers) != 2 {
		t.Fatalf("got %d centers", len(centers))
	}
	if math.Abs(centers[0]-10) > 1 || math.Abs(centers[1]-50) > 1 {
		t.Errorf("centers = %v, want ~[10, 50]", centers)
	}
	for i, v := range values {
		want := 0
		if v > 30 {
			want = 1
		}
		if assign[i] != want {
			t.Fatalf("value %g assigned to cluster %d", v, assign[i])
		}
	}
}

func TestKMeans1DEdgeCases(t *testing.T) {
	if c, a := KMeans1D(nil, 2, 10); c != nil || a != nil {
		t.Error("empty input should return nil")
	}
	c, a := KMeans1D([]float64{5}, 3, 10)
	if len(c) != 1 || a[0] != 0 {
		t.Errorf("k>n should clamp: centers=%v assign=%v", c, a)
	}
	// Identical values must not panic and must produce one effective center.
	c, _ = KMeans1D([]float64{7, 7, 7, 7}, 2, 10)
	for _, v := range c {
		if v != 7 {
			t.Errorf("degenerate centers = %v", c)
		}
	}
}

func TestOtsuSeparatesBimodal(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var values []float64
	for i := 0; i < 500; i++ {
		values = append(values, 5+r.NormFloat64())
	}
	for i := 0; i < 500; i++ {
		values = append(values, 20+r.NormFloat64())
	}
	thr := Otsu(values, 64)
	if thr < 8 || thr > 17 {
		t.Errorf("Otsu threshold = %g, want between the modes (8..17)", thr)
	}
}

func TestOtsuEdgeCases(t *testing.T) {
	if Otsu(nil, 10) != 0 {
		t.Error("empty input should give 0")
	}
	if Otsu([]float64{3, 3, 3}, 10) != 3 {
		t.Error("constant input should return that constant")
	}
	// bins < 2 must not panic.
	_ = Otsu([]float64{1, 2, 3}, 1)
}

func TestKneedleFindsElbow(t *testing.T) {
	// A decreasing curve with a clear elbow at x=4: steep drop then flat.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ys := []float64{100, 60, 30, 12, 10, 9, 8.5, 8}
	idx := Kneedle(xs, ys, true)
	if idx < 2 || idx > 4 {
		t.Errorf("elbow index = %d (x=%g), want near 3", idx, xs[idx])
	}
	// Increasing curve with a knee.
	ys2 := []float64{0, 40, 70, 88, 90, 91, 92, 92.5}
	idx2 := Kneedle(xs, ys2, false)
	if idx2 < 1 || idx2 > 4 {
		t.Errorf("knee index = %d, want near 2-3", idx2)
	}
}

func TestKneedleDegenerate(t *testing.T) {
	if Kneedle(nil, nil, true) != -1 {
		t.Error("empty input should return -1")
	}
	if Kneedle([]float64{1}, []float64{5}, true) != 0 {
		t.Error("single point should return index 0")
	}
	if Kneedle([]float64{1, 2}, []float64{5, 4}, true) != 1 {
		t.Error("two points should return last index")
	}
	// Flat curve: no elbow, expect last index.
	xs := []float64{1, 2, 3, 4}
	flat := []float64{5, 5, 5, 5}
	if Kneedle(xs, flat, true) != 3 {
		t.Error("flat curve should return last index")
	}
	if Kneedle(xs, []float64{1, 2}, true) != -1 {
		t.Error("mismatched lengths should return -1")
	}
}

func TestMinMaxMeanVariance(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5}
	lo, hi := MinMax(vals)
	if lo != 1 || hi != 5 {
		t.Errorf("MinMax = (%g, %g)", lo, hi)
	}
	if lo, hi := MinMax(nil); lo != 0 || hi != 0 {
		t.Error("MinMax(nil) should be (0,0)")
	}
	if m := Mean(vals); math.Abs(m-2.8) > 1e-12 {
		t.Errorf("Mean = %g", m)
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	v := Variance(vals, 2.8)
	if math.Abs(v-2.56) > 1e-12 {
		t.Errorf("Variance = %g, want 2.56", v)
	}
	if Variance(nil, 0) != 0 {
		t.Error("Variance(nil) should be 0")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
}

func TestKneedleQuickNeverPanicsAndInRange(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(i)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			ys[i] = v
		}
		idx := Kneedle(xs, ys, true)
		return idx >= 0 && idx < len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLambertW0(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = LambertW0(float64(i%1000) + 0.5)
	}
}
