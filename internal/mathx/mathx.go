// Package mathx provides the numeric building blocks SLIM needs beyond the
// standard library: the Lambert W function (LSH band-count solve), kneedle
// elbow detection (spatial-level auto-tuning and ST-Link's k/l selection),
// 1-D k-means and Otsu thresholding (alternative stop-threshold detectors),
// and Gaussian distribution helpers (GMM-based threshold selection).
package mathx

import (
	"errors"
	"math"
	"sort"
)

// LambertW0 evaluates the principal branch of the Lambert W function,
// the inverse of f(w) = w·e^w, for x >= -1/e. It is used to solve
// b = exp(W(-s·ln t)) for the LSH band count (Sec. 4 of the paper).
//
// Implemented with Halley's iteration from a piecewise initial guess;
// converges to ~1e-12 in a handful of steps for all arguments SLIM uses.
func LambertW0(x float64) (float64, error) {
	const minArg = -1.0 / math.E
	if x < minArg-1e-12 || math.IsNaN(x) {
		return 0, errors.New("mathx: LambertW0 argument below -1/e")
	}
	if x < minArg {
		x = minArg
	}
	if x == 0 {
		return 0, nil
	}
	// Initial guess.
	var w float64
	switch {
	case x < -0.25:
		// Series around the branch point -1/e.
		p := math.Sqrt(2 * (math.E*x + 1))
		w = -1 + p - p*p/3
	case x < 3:
		w = x * (1 - x) // crude, fixed by iteration
		if w < -0.9 {
			w = -0.9
		}
	default:
		lx := math.Log(x)
		w = lx - math.Log(lx)
	}
	for i := 0; i < 64; i++ {
		ew := math.Exp(w)
		f := w*ew - x
		denom := ew*(w+1) - (w+2)*f/(2*w+2)
		if denom == 0 {
			break
		}
		d := f / denom
		w -= d
		if math.Abs(d) < 1e-13*(1+math.Abs(w)) {
			break
		}
	}
	return w, nil
}

// NormalCDF returns the cumulative distribution function of the normal
// distribution with the given mean and standard deviation.
func NormalCDF(x, mean, std float64) float64 {
	if std <= 0 {
		if x < mean {
			return 0
		}
		return 1
	}
	return 0.5 * (1 + math.Erf((x-mean)/(std*math.Sqrt2)))
}

// NormalPDF returns the density of the normal distribution at x.
func NormalPDF(x, mean, std float64) float64 {
	if std <= 0 {
		return 0
	}
	z := (x - mean) / std
	return math.Exp(-0.5*z*z) / (std * math.Sqrt(2*math.Pi))
}

// KMeans1D clusters values into k clusters by Lloyd's algorithm on a line.
// It returns the sorted cluster centers and the per-value assignment
// indices (into the sorted centers). The input is not modified.
func KMeans1D(values []float64, k, maxIter int) (centers []float64, assign []int) {
	n := len(values)
	if n == 0 || k <= 0 {
		return nil, nil
	}
	if k > n {
		k = n
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	// Initialize centers at evenly spaced quantiles.
	centers = make([]float64, k)
	for i := 0; i < k; i++ {
		q := (float64(i) + 0.5) / float64(k)
		centers[i] = sorted[int(q*float64(n-1))]
	}
	assign = make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		sums := make([]float64, k)
		counts := make([]int, k)
		for i, v := range values {
			best, bestD := 0, math.Inf(1)
			for c, m := range centers {
				if d := math.Abs(v - m); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			sums[best] += v
			counts[best]++
		}
		for c := range centers {
			if counts[c] > 0 {
				centers[c] = sums[c] / float64(counts[c])
			}
		}
		if !changed && iter > 0 {
			break
		}
	}
	// Sort centers and remap assignments.
	type cidx struct {
		center float64
		old    int
	}
	cs := make([]cidx, k)
	for i, c := range centers {
		cs[i] = cidx{c, i}
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].center < cs[j].center })
	remap := make([]int, k)
	for newIdx, c := range cs {
		centers[newIdx] = c.center
		remap[c.old] = newIdx
	}
	for i := range assign {
		assign[i] = remap[assign[i]]
	}
	return centers, assign
}

// Otsu computes Otsu's threshold over continuous values by histogramming
// them into the given number of bins and maximizing between-class variance.
// The paper cites Otsu as an alternative stop-threshold detector (Sec. 5.2).
func Otsu(values []float64, bins int) float64 {
	if len(values) == 0 {
		return 0
	}
	if bins < 2 {
		bins = 2
	}
	lo, hi := MinMax(values)
	if hi == lo {
		return lo
	}
	hist := make([]int, bins)
	width := (hi - lo) / float64(bins)
	for _, v := range values {
		b := int((v - lo) / width)
		if b >= bins {
			b = bins - 1
		}
		hist[b]++
	}
	total := len(values)
	var sumAll float64
	for i, c := range hist {
		sumAll += (lo + (float64(i)+0.5)*width) * float64(c)
	}
	// Maximize between-class variance. With well-separated clusters every
	// cut through the empty gap achieves the same variance, so track the
	// whole argmax plateau and return its midpoint (the classic Otsu
	// refinement), which keeps the threshold centered in the gap.
	var wB, sumB, bestVar float64
	firstBest, lastBest := -1, -1
	for i := 0; i < bins-1; i++ {
		mid := lo + (float64(i)+0.5)*width
		wB += float64(hist[i])
		if wB == 0 {
			continue
		}
		wF := float64(total) - wB
		if wF == 0 {
			break
		}
		sumB += mid * float64(hist[i])
		mB := sumB / wB
		mF := (sumAll - sumB) / wF
		between := wB * wF * (mB - mF) * (mB - mF)
		switch {
		case between > bestVar*(1+1e-12):
			bestVar = between
			firstBest, lastBest = i, i
		case between >= bestVar*(1-1e-12) && firstBest >= 0:
			lastBest = i
		}
	}
	if firstBest < 0 {
		return lo + (hi-lo)/2
	}
	cut := float64(firstBest+lastBest)/2 + 1
	return lo + cut*width
}

// Kneedle finds the index of the knee/elbow point of a curve y(x) using the
// normalized-difference method of Satopaa et al. ("Finding a 'Kneedle' in a
// Haystack", ICDCS 2011), which the paper uses for both spatial-level
// auto-tuning (Sec. 3.3) and, in our ST-Link baseline, k/l selection.
//
// The xs must be strictly increasing. decreasing indicates whether the curve
// decreases with x (an "elbow" of diminishing returns) or increases (a
// "knee"). Returns the index into xs of the detected point; if the curve is
// degenerate the last index is returned (no elbow: take the max detail).
func Kneedle(xs, ys []float64, decreasing bool) int {
	n := len(xs)
	if n != len(ys) || n == 0 {
		return -1
	}
	if n <= 2 {
		return n - 1
	}
	minX, maxX := xs[0], xs[n-1]
	minY, maxY := MinMax(ys)
	if maxX == minX || maxY == minY {
		return n - 1
	}
	// Normalize to the unit square; for decreasing curves flip y so the
	// problem is always "find the knee of an increasing concave curve".
	diff := make([]float64, n)
	for i := 0; i < n; i++ {
		xn := (xs[i] - minX) / (maxX - minX)
		yn := (ys[i] - minY) / (maxY - minY)
		if decreasing {
			yn = 1 - yn
		}
		diff[i] = yn - xn
	}
	best, bestVal := n-1, math.Inf(-1)
	for i := 1; i < n-1; i++ {
		if diff[i] > bestVal {
			best, bestVal = i, diff[i]
		}
	}
	return best
}

// MinMax returns the minimum and maximum of a non-empty slice; it returns
// (0, 0) for an empty slice.
func MinMax(values []float64) (lo, hi float64) {
	if len(values) == 0 {
		return 0, 0
	}
	lo, hi = values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Mean returns the arithmetic mean of values (0 for an empty slice).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var s float64
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// Variance returns the population variance of values around the given mean.
func Variance(values []float64, mean float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var s float64
	for _, v := range values {
		d := v - mean
		s += d * d
	}
	return s / float64(len(values))
}

// Clamp limits v to the interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
