// Package server exposes an engine.Engine as a JSON-over-HTTP linkage
// service — the network surface of cmd/slimd.
//
// API (all bodies are JSON unless noted):
//
//	POST /v1/datasets/{e|i}/records   batched record ingest
//	POST /v1/ingest/batch             binary batch ingest (application/
//	                                  x-slim-frame: CRC-framed wire
//	                                  batches, appended to the WAL with
//	                                  zero re-encode; see internal/ingest)
//	POST /v1/link                     trigger a synchronous relink
//	POST /v1/snapshot                 manual storage checkpoint (503 without a data dir)
//	GET  /v1/links                    current links (?limit=&offset=&min_score=)
//	GET  /v1/links/{entity}           links involving one entity (either side)
//	GET  /v1/stats                    engine + candidate-index + storage statistics
//	GET  /v1/explain?e=&i=            full provenance of one pair: score
//	                                  decomposition, candidate (LSH) lineage,
//	                                  edge lineage, and the run that produced it
//	GET  /v1/runs                     relink flight recorder (?limit=&offset=)
//	GET  /healthz                     liveness probe; always 200, the JSON body
//	                                  names any degraded failure domain, its
//	                                  cause, and since when
//	GET  /readyz                      readiness probe: 503 until recovery and
//	                                  the initial seed link have completed
//
// Ingested records are buffered per shard and applied by the next relink
// (debounced in the background when the engine's scheduler is started, or
// forced via POST /v1/link), so ingest responds quickly even while a
// linkage run is in flight.
//
// Both ingest paths share one backpressure policy (the ingest.Plane):
// when the plane's queue-depth or latency budget is exceeded — WAL fsync
// or relink lagging — requests are shed with 429 Too Many Requests and a
// Retry-After hint instead of buffering unboundedly. A body larger than
// the configured ingest limit is refused with 413.
//
// Degraded mode is different from overload: when the storage layer has
// quarantined its WAL after a persistent write/fsync failure
// (storage.ErrDegraded), accepting ingest would mean acknowledging
// records that cannot be made durable, so both ingest paths answer 503
// Service Unavailable + Retry-After (not 429 — the client must not
// interpret a disk failure as its own send rate). Reads — /v1/links,
// /v1/stats, /metrics, /healthz — keep serving throughout.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"slim"
	"slim/internal/engine"
	"slim/internal/ingest"
	"slim/internal/obs"
	"slim/internal/storage"
)

// MaxIngestBody is the default bound on one ingest request body (16
// MiB); override per server with WithMaxIngestBody / slimd
// -max-ingest-body.
const MaxIngestBody = 16 << 20

// Server routes HTTP requests onto an engine.
type Server struct {
	eng     *engine.Engine
	store   *storage.Store // nil when running without a data directory
	plane   *ingest.Plane  // shared ingest admission + binary pipeline
	maxBody int64
	mux     *http.ServeMux
	log     *slog.Logger
	reg     *obs.Registry
	httpm   *httpMetrics
	ready   atomic.Bool
}

// Option customizes a Server at construction.
type Option func(*Server)

// WithMaxIngestBody overrides the per-request ingest body limit
// (MaxIngestBody). Oversized bodies are refused with 413.
func WithMaxIngestBody(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBody = n
		}
	}
}

// WithIngestPlane installs a caller-built ingest plane (custom queue
// depth / shed budgets, or one the process also exports over expvar).
// Without this option the server builds a plane with default budgets.
func WithIngestPlane(p *ingest.Plane) Option {
	return func(s *Server) { s.plane = p }
}

// WithRegistry installs the process-wide metrics registry: the server
// records per-route request latency/status/byte metrics into it and
// serves its Prometheus exposition on GET /metrics. Without this option
// the server uses a private registry (instrumentation stays on and
// /metrics still serves, but only the server's own metrics appear).
func WithRegistry(reg *obs.Registry) Option {
	return func(s *Server) { s.reg = reg }
}

// New builds a server over the engine. logger may be nil to disable
// request logging. The server starts not-ready: the process must call
// SetReady once recovery and the initial seed link are done, so load
// balancers watching /readyz never route to a node that is still
// replaying its WAL.
func New(eng *engine.Engine, logger *slog.Logger, opts ...Option) *Server {
	s := &Server{eng: eng, maxBody: MaxIngestBody, mux: http.NewServeMux(), log: logger}
	for _, o := range opts {
		o(s)
	}
	if s.plane == nil {
		s.plane = ingest.NewPlane(eng, ingest.Config{})
	}
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	s.httpm = newHTTPMetrics(s.reg)
	s.mux.HandleFunc("POST /v1/datasets/{dataset}/records", s.handleIngest)
	s.mux.HandleFunc("POST /v1/ingest/batch", s.handleIngestBinary)
	s.mux.HandleFunc("POST /v1/link", s.handleLink)
	s.mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /v1/links", s.handleLinks)
	s.mux.HandleFunc("GET /v1/links/{entity}", s.handleLinksFor)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/explain", s.handleExplain)
	s.mux.HandleFunc("GET /v1/runs", s.handleRuns)
	s.mux.Handle("GET /metrics", s.reg.Handler())
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s
}

// AttachStore wires the durable storage layer in: /v1/snapshot becomes
// operational, /v1/stats grows storage counters, and binary ingest is
// logged to the WAL before it is acknowledged. Call before serving.
func (s *Server) AttachStore(st *storage.Store) {
	s.store = st
	s.plane.AttachLogger(st)
}

// SetReady marks the node ready for traffic (see New).
func (s *Server) SetReady() { s.ready.Store(true) }

// Handler returns the root handler (request-ID propagation, per-route
// metrics, and request logging included).
func (s *Server) Handler() http.Handler {
	return s.middleware(s.mux)
}

// statusRecorder captures the response status and body size for the
// request log and the per-route metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// reqInfo is the middleware's per-request state, reachable from handlers
// through the request context: the propagated request id and the ingest
// admission outcome (accepted, shed_depth, shed_latency, too_large) the
// handler settled on.
type reqInfo struct {
	id      string
	outcome string
}

type ctxKey int

const reqInfoKey ctxKey = 0

// requestInfo returns the middleware state for req, or nil when the
// handler is exercised without the middleware (direct mux tests).
func requestInfo(req *http.Request) *reqInfo {
	ri, _ := req.Context().Value(reqInfoKey).(*reqInfo)
	return ri
}

func (s *Server) setOutcome(req *http.Request, outcome string) {
	if ri := requestInfo(req); ri != nil {
		ri.outcome = outcome
	}
}

// requestID returns the propagated request id (empty without the
// middleware).
func requestID(req *http.Request) string {
	if ri := requestInfo(req); ri != nil {
		return ri.id
	}
	return ""
}

// maxRequestIDLen bounds an honored client-supplied X-Request-Id so a
// hostile header cannot bloat logs.
const maxRequestIDLen = 64

// sanitizeRequestID reports whether a client-supplied id is safe to
// propagate verbatim: bounded, printable ASCII, no spaces or quotes.
func sanitizeRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}

func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unavailable"
	}
	return hex.EncodeToString(b[:])
}

// middleware wraps the mux with the cross-cutting request plumbing:
// it honors (or generates) X-Request-Id and echoes it on the response,
// records per-route latency/status/byte metrics, and emits one
// structured log line per request including the ingest admission
// outcome handlers report via setOutcome.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		id := req.Header.Get("X-Request-Id")
		if !sanitizeRequestID(id) {
			id = newRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		ri := &reqInfo{id: id}
		req = req.WithContext(context.WithValue(req.Context(), reqInfoKey, ri))

		// Resolve the route pattern before serving: the mux sets Pattern
		// only on the clone it passes to the handler, not on our req.
		_, route := s.mux.Handler(req)
		if route == "" {
			route = "unmatched"
		}

		s.httpm.inflight.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, req)
		s.httpm.inflight.Add(-1)

		elapsed := time.Since(start)
		s.httpm.observe(route, rec.status, req.ContentLength, rec.bytes, elapsed)
		if s.log != nil {
			attrs := []any{
				"method", req.Method,
				"path", req.URL.Path,
				"route", route,
				"status", rec.status,
				"bytes", rec.bytes,
				"duration", elapsed.Round(time.Microsecond),
				"request_id", id,
			}
			if ri.outcome != "" {
				attrs = append(attrs, "outcome", ri.outcome)
			}
			s.log.Info("request", attrs...)
		}
	})
}

// httpMetrics records the server's per-route request metrics. Series are
// created lazily per route (and route×status) and cached, so steady-state
// requests update existing atomics without re-rendering labels.
type httpMetrics struct {
	reg      *obs.Registry
	inflight *obs.Gauge
	bytesIn  *obs.Counter
	bytesOut *obs.Counter

	mu     sync.Mutex
	hists  map[string]*obs.Histogram // route → latency histogram
	counts map[string]*obs.Counter   // route "\x00" status → counter
}

func newHTTPMetrics(reg *obs.Registry) *httpMetrics {
	return &httpMetrics{
		reg: reg,
		inflight: reg.Gauge("slim_http_inflight_requests",
			"Requests currently being served."),
		bytesIn: reg.Counter("slim_http_request_bytes_total",
			"Request body bytes received (per declared Content-Length)."),
		bytesOut: reg.Counter("slim_http_response_bytes_total",
			"Response body bytes written."),
		hists:  make(map[string]*obs.Histogram),
		counts: make(map[string]*obs.Counter),
	}
}

func (m *httpMetrics) observe(route string, status int, reqBytes, respBytes int64, elapsed time.Duration) {
	code := strconv.Itoa(status)
	m.mu.Lock()
	h, ok := m.hists[route]
	if !ok {
		h = m.reg.Histogram("slim_http_request_seconds",
			"Request latency by route pattern.", nil, obs.L("route", route))
		m.hists[route] = h
	}
	ck := route + "\x00" + code
	c, ok := m.counts[ck]
	if !ok {
		c = m.reg.Counter("slim_http_requests_total",
			"Requests served, by route pattern and status code.",
			obs.L("route", route), obs.L("status", code))
		m.counts[ck] = c
	}
	m.mu.Unlock()
	h.Observe(elapsed.Seconds())
	c.Inc()
	if reqBytes > 0 {
		m.bytesIn.Add(uint64(reqBytes))
	}
	if respBytes > 0 {
		m.bytesOut.Add(uint64(respBytes))
	}
}

// recordJSON is the wire form of one mobility record.
type recordJSON struct {
	Entity   string  `json:"entity"`
	Lat      float64 `json:"lat"`
	Lng      float64 `json:"lng"`
	Unix     int64   `json:"unix"`
	RadiusKm float64 `json:"radius_km,omitempty"`
}

type ingestRequest struct {
	Records []recordJSON `json:"records"`
}

type ingestResponse struct {
	Accepted int    `json:"accepted"`
	Dataset  string `json:"dataset"`
	// Pending counts buffered records awaiting the next relink.
	Pending int `json:"pending"`
}

func (s *Server) handleIngest(w http.ResponseWriter, req *http.Request) {
	ds := req.PathValue("dataset")
	if ds != "e" && ds != "i" {
		s.error(w, req, http.StatusNotFound, fmt.Sprintf("unknown dataset %q (want e or i)", ds))
		return
	}
	var body ingestRequest
	if err := s.decodeJSON(w, req, &body); err != nil {
		s.requestError(w, req, err)
		return
	}
	if len(body.Records) == 0 {
		s.error(w, req, http.StatusBadRequest, "no records in request")
		return
	}
	recs := make([]slim.Record, len(body.Records))
	for i, r := range body.Records {
		if err := r.validate(); err != nil {
			s.error(w, req, http.StatusBadRequest, fmt.Sprintf("record %d: %v", i, err))
			return
		}
		rec := slim.NewRecord(slim.EntityID(r.Entity), r.Lat, r.Lng, r.Unix)
		rec.RadiusKm = r.RadiusKm
		recs[i] = rec
	}
	if s.degraded(w, req) {
		return
	}
	// Same backpressure policy as the binary plane: shed before anything
	// is logged or buffered, so a 429'd batch is cleanly rejected.
	release, err := s.plane.Admit(len(recs))
	if err != nil {
		s.shed(w, req, err)
		return
	}
	defer release()
	if ds == "e" {
		err = s.eng.AddE(recs...)
	} else {
		err = s.eng.AddI(recs...)
	}
	if errors.Is(err, storage.ErrDegraded) {
		// Storage quarantined its WAL between the check above and the
		// append: same answer, the batch was not acknowledged.
		s.serveDegraded(w, req, err)
		return
	}
	if err != nil {
		// The batch was not durably logged and was not buffered: the
		// client must not treat it as accepted.
		s.error(w, req, http.StatusInternalServerError, fmt.Sprintf("persisting batch: %v", err))
		return
	}
	s.plane.NoteAccepted(1, len(recs))
	s.setOutcome(req, "accepted")
	s.json(w, http.StatusAccepted, ingestResponse{
		Accepted: len(recs),
		Dataset:  ds,
		Pending:  s.eng.Pending(),
	})
}

// binaryIngestResponse acknowledges one binary ingest request: every
// record in every batch is durable (when a data directory is configured)
// and buffered toward the next relink.
type binaryIngestResponse struct {
	Accepted int `json:"accepted"`
	Batches  int `json:"batches"`
	Pending  int `json:"pending"`
}

// handleIngestBinary is the high-throughput plane: CRC-framed wire
// batches, checked once at the edge and appended to the WAL with zero
// re-encode. The whole request is admitted or shed atomically.
func (s *Server) handleIngestBinary(w http.ResponseWriter, req *http.Request) {
	if ct := req.Header.Get("Content-Type"); ct != "" && ct != ingest.ContentType {
		s.error(w, req, http.StatusUnsupportedMediaType, fmt.Sprintf("content type %q, want %s", ct, ingest.ContentType))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, s.maxBody))
	if err != nil {
		s.requestError(w, req, err)
		return
	}
	batches, records, err := ingest.ParseRequest(body)
	if err != nil {
		s.error(w, req, http.StatusBadRequest, err.Error())
		return
	}
	if s.degraded(w, req) {
		return
	}
	release, err := s.plane.Admit(records)
	if err != nil {
		s.shed(w, req, err)
		return
	}
	defer release()
	applied, err := s.plane.Submit(batches)
	if errors.Is(err, storage.ErrDegraded) && applied == 0 {
		s.serveDegraded(w, req, err)
		return
	}
	if err != nil {
		// The applied prefix is durable and buffered; the failed tail is
		// neither logged nor visible and must be retried by the client.
		s.error(w, req, http.StatusInternalServerError,
			fmt.Sprintf("persisting: %v (%d of %d batches applied)", err, applied, len(batches)))
		return
	}
	s.setOutcome(req, "accepted")
	s.json(w, http.StatusAccepted, binaryIngestResponse{
		Accepted: records,
		Batches:  len(batches),
		Pending:  s.eng.Pending(),
	})
}

// degradedRetryAfter is the client retry hint while storage is
// quarantined: the reopen loop's capped backoff means recovery is
// usually either sub-second or not imminent, so a short fixed hint
// keeps well-behaved clients probing without hammering.
const degradedRetryAfter = 1 // seconds

// degraded answers the request with 503 when the storage layer is in
// degraded read-only mode, reporting whether it did. Checked before
// admission on both ingest paths so a disk failure reads as "service
// unavailable, retry", never as client-rate 429.
func (s *Server) degraded(w http.ResponseWriter, req *http.Request) bool {
	if s.store == nil || !s.store.Degraded() {
		return false
	}
	s.serveDegraded(w, req, storage.ErrDegraded)
	return true
}

// serveDegraded is the degraded-mode rejection: 503 + Retry-After with
// a JSON body naming the failing domain. Distinct from shed (429): the
// client's send rate is not the problem, the node's disk is.
func (s *Server) serveDegraded(w http.ResponseWriter, req *http.Request, err error) {
	s.setOutcome(req, "degraded")
	w.Header().Set("Retry-After", strconv.Itoa(degradedRetryAfter))
	body := map[string]any{
		"error":               err.Error(),
		"domain":              "storage",
		"retry_after_seconds": degradedRetryAfter,
	}
	if id := requestID(req); id != "" {
		body["request_id"] = id
	}
	s.json(w, http.StatusServiceUnavailable, body)
}

// shed answers a load-shed rejection: 429 with a Retry-After header and
// a JSON body naming the exceeded budget and the request id.
func (s *Server) shed(w http.ResponseWriter, req *http.Request, err error) {
	var se *ingest.ShedError
	if !errors.As(err, &se) {
		s.error(w, req, http.StatusInternalServerError, err.Error())
		return
	}
	switch se.Cause {
	case "queue-depth":
		s.setOutcome(req, "shed_depth")
	case "latency":
		s.setOutcome(req, "shed_latency")
	}
	secs := int(math.Ceil(se.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	body := map[string]any{
		"error":               se.Error(),
		"cause":               se.Cause,
		"retry_after_seconds": secs,
	}
	if id := requestID(req); id != "" {
		body["request_id"] = id
	}
	s.json(w, http.StatusTooManyRequests, body)
}

// requestError maps a body-read failure to its status: 413 when the
// configured ingest body limit was exceeded, 400 otherwise.
func (s *Server) requestError(w http.ResponseWriter, req *http.Request, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		s.setOutcome(req, "too_large")
		s.error(w, req, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds the %d-byte ingest limit", tooLarge.Limit))
		return
	}
	s.error(w, req, http.StatusBadRequest, err.Error())
}

// validate rejects records an attacker could use to poison the stores:
// ingest bypasses Dataset.Validate (which only guards seed loads), so the
// wire layer is where untrusted coordinates are stopped.
func (r recordJSON) validate() error {
	if r.Entity == "" {
		return errors.New("empty entity id")
	}
	if math.IsNaN(r.Lat) || math.IsInf(r.Lat, 0) || r.Lat < -90 || r.Lat > 90 {
		return fmt.Errorf("latitude %g outside [-90, 90]", r.Lat)
	}
	if math.IsNaN(r.Lng) || math.IsInf(r.Lng, 0) || r.Lng < -180 || r.Lng > 180 {
		return fmt.Errorf("longitude %g outside [-180, 180]", r.Lng)
	}
	if math.IsNaN(r.RadiusKm) || math.IsInf(r.RadiusKm, 0) || r.RadiusKm < 0 {
		return fmt.Errorf("radius_km %g must be a finite non-negative number", r.RadiusKm)
	}
	return nil
}

type linkJSON struct {
	U     string  `json:"u"`
	V     string  `json:"v"`
	Score float64 `json:"score"`
}

func toLinkJSON(ls []slim.Link) []linkJSON {
	out := make([]linkJSON, len(ls))
	for i, l := range ls {
		out[i] = linkJSON{U: string(l.U), V: string(l.V), Score: l.Score}
	}
	return out
}

type runResponse struct {
	Version         uint64  `json:"version"`
	Links           int     `json:"links"`
	Matched         int     `json:"matched"`
	Threshold       float64 `json:"threshold"`
	ThresholdMethod string  `json:"threshold_method"`
	SpatialLevel    int     `json:"spatial_level"`
	CandidatePairs  int64   `json:"candidate_pairs"`
	ElapsedMs       float64 `json:"elapsed_ms"`
}

func (s *Server) handleLink(w http.ResponseWriter, req *http.Request) {
	res := s.eng.Run()
	_, version, _ := s.eng.Result()
	s.json(w, http.StatusOK, runResponse{
		Version:         version,
		Links:           len(res.Links),
		Matched:         len(res.Matched),
		Threshold:       res.Threshold,
		ThresholdMethod: res.ThresholdMethod,
		SpatialLevel:    res.SpatialLevel,
		CandidatePairs:  res.Stats.CandidatePairs,
		ElapsedMs:       float64(res.Elapsed.Microseconds()) / 1000,
	})
}

type linksResponse struct {
	Version   uint64     `json:"version"`
	Threshold float64    `json:"threshold"`
	Total     int        `json:"total"`
	Links     []linkJSON `json:"links"`
}

func (s *Server) handleLinks(w http.ResponseWriter, req *http.Request) {
	res, version, ok := s.eng.Result()
	if !ok {
		s.error(w, req, http.StatusConflict, "no linkage run yet; POST /v1/link or wait for the background relink")
		return
	}
	links := res.Links
	q := req.URL.Query()
	if v := q.Get("min_score"); v != "" {
		minScore, err := strconv.ParseFloat(v, 64)
		if err != nil {
			s.error(w, req, http.StatusBadRequest, "bad min_score")
			return
		}
		links = slim.FilterLinks(links, minScore)
	}
	total := len(links)
	offset, err := intParam(q.Get("offset"), 0)
	if err != nil {
		s.error(w, req, http.StatusBadRequest, "bad offset")
		return
	}
	limit, err := intParam(q.Get("limit"), total)
	if err != nil {
		s.error(w, req, http.StatusBadRequest, "bad limit")
		return
	}
	if offset > len(links) {
		offset = len(links)
	}
	links = links[offset:]
	if limit < len(links) {
		links = links[:limit]
	}
	s.json(w, http.StatusOK, linksResponse{
		Version:   version,
		Threshold: res.Threshold,
		Total:     total,
		Links:     toLinkJSON(links),
	})
}

func (s *Server) handleLinksFor(w http.ResponseWriter, req *http.Request) {
	if _, _, ok := s.eng.Result(); !ok {
		s.error(w, req, http.StatusConflict, "no linkage run yet; POST /v1/link or wait for the background relink")
		return
	}
	entity := req.PathValue("entity")
	links := s.eng.LinksFor(slim.EntityID(entity))
	s.json(w, http.StatusOK, struct {
		Entity string     `json:"entity"`
		Links  []linkJSON `json:"links"`
	}{Entity: entity, Links: toLinkJSON(links)})
}

type storageStatsJSON struct {
	Dir                string  `json:"dir"`
	FsyncIntervalMs    float64 `json:"fsync_interval_ms"`
	BatchesLogged      uint64  `json:"batches_logged"`
	RecordsLogged      uint64  `json:"records_logged"`
	WALBytesAppended   int64   `json:"wal_bytes_appended"`
	WALSegments        int     `json:"wal_segments"`
	WALDiskBytes       int64   `json:"wal_disk_bytes"`
	Snapshots          uint64  `json:"snapshots"`
	LastSnapshotSeq    uint64  `json:"last_snapshot_seq"`
	LastSnapshotUnixMs int64   `json:"last_snapshot_unix_ms,omitempty"`
	NextSeq            uint64  `json:"next_seq"`
}

// candidateIndexJSON is the wire form of the aggregated incremental LSH
// candidate-index statistics (omitted when LSH is disabled).
type candidateIndexJSON struct {
	SignatureLen      int     `json:"signature_len"`
	Bands             int     `json:"bands"`
	Rows              int     `json:"rows"`
	NumBuckets        int     `json:"num_buckets"`
	Epoch             uint64  `json:"epoch"`
	SignaturesE       int     `json:"signatures_e"`
	SignaturesI       int     `json:"signatures_i"`
	Buckets           int     `json:"buckets"`
	Memberships       int     `json:"memberships"`
	Occupancy         float64 `json:"occupancy"`
	Candidates        int64   `json:"candidates"`
	DirtyEntitiesLast int     `json:"dirty_entities_last"`
	LastRebuild       bool    `json:"last_rebuild"`
	LastUpdateMs      float64 `json:"last_update_ms"`
}

// edgeStoreJSON is the wire form of the aggregated incremental edge-store
// statistics: retained/rescored/dropped describe the latest relink, the
// *_total counters accumulate since boot, and pairs/epoch describe the
// maintained state (see slim.EdgeStoreStats).
type edgeStoreJSON struct {
	Pairs           int64   `json:"pairs"`
	Epoch           uint64  `json:"epoch"`
	RetainedLast    int64   `json:"retained_last"`
	RescoredLast    int64   `json:"rescored_last"`
	DroppedLast     int64   `json:"dropped_last"`
	FullRescoreLast bool    `json:"full_rescore_last"`
	LastUpdateMs    float64 `json:"last_update_ms"`
	RetainedTotal   uint64  `json:"retained_total"`
	RescoredTotal   uint64  `json:"rescored_total"`
	DroppedTotal    uint64  `json:"dropped_total"`
	ResidentBytes   int64   `json:"resident_bytes"`
}

// publishTailJSON is the wire form of the incremental publish-tail
// statistics: edges/matched describe the maintained state,
// reused_prefix_len / suffix_walked / last_full_rebuild the latest
// publish, and the *_total counters accumulate since boot (see
// slim.PublishTailStats). Omitted with the Hungarian matcher or before
// the first published run.
type publishTailJSON struct {
	Edges                int64   `json:"edges"`
	Matched              int64   `json:"matched"`
	ReusedPrefixLen      int64   `json:"reused_prefix_len"`
	SuffixWalked         int64   `json:"suffix_walked"`
	FullRebuildsTotal    uint64  `json:"full_rebuilds_total"`
	AppliesTotal         uint64  `json:"applies_total"`
	ThresholdFitsTotal   uint64  `json:"threshold_fits_total"`
	ThresholdReusesTotal uint64  `json:"threshold_reuses_total"`
	LastFullRebuild      bool    `json:"last_full_rebuild"`
	LastUpdateMs         float64 `json:"last_update_ms"`
	LastMatchMs          float64 `json:"last_match_ms"`
	LastThresholdMs      float64 `json:"last_threshold_ms"`
}

// runJournalJSON summarizes the relink flight recorder on /v1/stats
// (page through the entries themselves on /v1/runs).
type runJournalJSON struct {
	Capacity  int    `json:"capacity"`
	Records   int    `json:"records"`
	TotalRuns uint64 `json:"total_runs"`
}

type statsResponse struct {
	Shards         int    `json:"shards"`
	SpatialLevel   int    `json:"spatial_level"`
	EntitiesE      int    `json:"entities_e"`
	EntitiesI      int    `json:"entities_i"`
	IngestedE      uint64 `json:"ingested_e"`
	IngestedI      uint64 `json:"ingested_i"`
	PendingRecords int    `json:"pending_records"`
	DirtyShards    int    `json:"dirty_shards"`
	// DirtyShardsLastRun counts shards the latest relink re-scored;
	// CandidateIndex reports the incremental LSH index behind them and
	// EdgeStore the incremental scored-edge state; RunsShortCircuited
	// counts fully-clean relinks that republished the cached result.
	DirtyShardsLastRun int    `json:"dirty_shards_last_run"`
	RunsShortCircuited uint64 `json:"runs_short_circuited"`
	Runs               uint64 `json:"runs"`
	// RelinkPanics counts contained relink-run panics (failed runs that
	// republished the previous result); LoopRestarts counts supervisor
	// restarts of the background scheduler after it died.
	RelinkPanics   uint64              `json:"relink_panics"`
	LoopRestarts   uint64              `json:"loop_restarts"`
	Version        uint64              `json:"version"`
	LastRunUnixMs  int64               `json:"last_run_unix_ms,omitempty"`
	Links          int                 `json:"links"`
	Threshold      float64             `json:"threshold"`
	CandidateIndex *candidateIndexJSON `json:"candidate_index,omitempty"`
	EdgeStore      *edgeStoreJSON      `json:"edge_store,omitempty"`
	PublishTail    *publishTailJSON    `json:"publish_tail,omitempty"`
	RunJournal     *runJournalJSON     `json:"run_journal,omitempty"`
	Storage        *storageStatsJSON   `json:"storage,omitempty"`
	Ingest         *ingestStatsJSON    `json:"ingest,omitempty"`
}

// ingestStatsJSON is the wire form of the shared ingest-plane state:
// configured budgets, instantaneous queue occupancy, and accept/shed
// counters since boot (see ingest.Plane).
type ingestStatsJSON struct {
	QueueDepth      int     `json:"queue_depth"`
	ShedAfterMs     float64 `json:"shed_after_ms"`
	RetryAfterMs    float64 `json:"retry_after_ms"`
	InflightRecords int     `json:"inflight_records"`
	PendingRecords  int     `json:"pending_records"`
	OldestWaitMs    float64 `json:"oldest_wait_ms"`
	AcceptedBatches uint64  `json:"accepted_batches"`
	AcceptedRecords uint64  `json:"accepted_records"`
	ShedRequests    uint64  `json:"shed_requests"`
	ShedRecords     uint64  `json:"shed_records"`
	ShedQueueDepth  uint64  `json:"shed_queue_depth"`
	ShedLatency     uint64  `json:"shed_latency"`
}

func (s *Server) handleStats(w http.ResponseWriter, req *http.Request) {
	st := s.eng.Stats()
	resp := statsResponse{
		Shards:             st.Shards,
		SpatialLevel:       st.SpatialLevel,
		EntitiesE:          st.EntitiesE,
		EntitiesI:          st.EntitiesI,
		IngestedE:          st.IngestedE,
		IngestedI:          st.IngestedI,
		PendingRecords:     st.PendingRecords,
		DirtyShards:        st.DirtyShards,
		DirtyShardsLastRun: st.DirtyShardsLastRun,
		RunsShortCircuited: st.RunsShortCircuited,
		Runs:               st.Runs,
		RelinkPanics:       st.RelinkPanics,
		LoopRestarts:       st.LoopRestarts,
		Version:            st.Version,
		Links:              st.Links,
		Threshold:          st.Threshold,
	}
	if !st.LastRun.IsZero() {
		resp.LastRunUnixMs = st.LastRun.UnixMilli()
	}
	if ci := st.CandidateIndex; ci != nil {
		resp.CandidateIndex = &candidateIndexJSON{
			SignatureLen:      ci.SignatureLen,
			Bands:             ci.Bands,
			Rows:              ci.Rows,
			NumBuckets:        ci.NumBuckets,
			Epoch:             ci.Epoch,
			SignaturesE:       ci.SignaturesE,
			SignaturesI:       ci.SignaturesI,
			Buckets:           ci.Buckets,
			Memberships:       ci.Memberships,
			Occupancy:         ci.Occupancy,
			Candidates:        ci.Candidates,
			DirtyEntitiesLast: ci.LastDirty,
			LastRebuild:       ci.LastRebuild,
			LastUpdateMs:      float64(ci.LastUpdate.Microseconds()) / 1000,
		}
	}
	if es := st.EdgeStore; es != nil {
		resp.EdgeStore = &edgeStoreJSON{
			Pairs:           es.Pairs,
			Epoch:           es.Epoch,
			RetainedLast:    es.Retained,
			RescoredLast:    es.Rescored,
			DroppedLast:     es.Dropped,
			FullRescoreLast: es.FullRescore,
			LastUpdateMs:    float64(es.LastUpdate.Microseconds()) / 1000,
			RetainedTotal:   st.EdgeRetainedTotal,
			RescoredTotal:   st.EdgeRescoredTotal,
			DroppedTotal:    st.EdgeDroppedTotal,
			ResidentBytes:   es.ResidentBytes,
		}
	}
	if pt := st.PublishTail; pt != nil {
		resp.PublishTail = &publishTailJSON{
			Edges:                pt.Edges,
			Matched:              pt.Matched,
			ReusedPrefixLen:      pt.ReusedPrefixLen,
			SuffixWalked:         pt.SuffixWalked,
			FullRebuildsTotal:    pt.FullRebuilds,
			AppliesTotal:         pt.Applies,
			ThresholdFitsTotal:   pt.ThresholdFits,
			ThresholdReusesTotal: pt.ThresholdReuses,
			LastFullRebuild:      pt.LastFull,
			LastUpdateMs:         float64(pt.LastUpdate.Microseconds()) / 1000,
			LastMatchMs:          float64(pt.LastMatch.Microseconds()) / 1000,
			LastThresholdMs:      float64(pt.LastThreshold.Microseconds()) / 1000,
		}
	}
	_, totalRuns := s.eng.Runs(1, 0)
	resp.RunJournal = &runJournalJSON{
		Capacity:  s.eng.RunJournalCap(),
		Records:   s.eng.RunJournalLen(),
		TotalRuns: totalRuns,
	}
	ist := s.plane.Stats()
	resp.Ingest = &ingestStatsJSON{
		QueueDepth:      ist.QueueDepth,
		ShedAfterMs:     float64(ist.ShedAfter.Microseconds()) / 1000,
		RetryAfterMs:    float64(ist.RetryAfter.Microseconds()) / 1000,
		InflightRecords: ist.InflightRecords,
		PendingRecords:  ist.PendingRecords,
		OldestWaitMs:    float64(ist.OldestWait.Microseconds()) / 1000,
		AcceptedBatches: ist.AcceptedBatches,
		AcceptedRecords: ist.AcceptedRecords,
		ShedRequests:    ist.ShedRequests,
		ShedRecords:     ist.ShedRecords,
		ShedQueueDepth:  ist.ShedQueueDepth,
		ShedLatency:     ist.ShedLatency,
	}
	if s.store != nil {
		sst := s.store.Stats()
		resp.Storage = &storageStatsJSON{
			Dir:                sst.Dir,
			FsyncIntervalMs:    sst.FsyncIntervalMs,
			BatchesLogged:      sst.BatchesLogged,
			RecordsLogged:      sst.RecordsLogged,
			WALBytesAppended:   sst.WALBytesAppended,
			WALSegments:        sst.WALSegments,
			WALDiskBytes:       sst.WALDiskBytes,
			Snapshots:          sst.Snapshots,
			LastSnapshotSeq:    sst.LastSnapshotSeq,
			LastSnapshotUnixMs: sst.LastSnapshotUnixMs,
			NextSeq:            sst.NextSeq,
		}
	}
	s.json(w, http.StatusOK, resp)
}

type snapshotResponse struct {
	Path            string `json:"path"`
	LastSeq         uint64 `json:"last_seq"`
	SeedRecords     int    `json:"seed_records"`
	StreamedRecords int    `json:"streamed_records"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, req *http.Request) {
	if s.store == nil {
		s.error(w, req, http.StatusServiceUnavailable, "no data directory configured (-data-dir)")
		return
	}
	info, err := s.store.Checkpoint()
	if errors.Is(err, storage.ErrDegraded) {
		s.serveDegraded(w, req, err)
		return
	}
	if err != nil {
		s.error(w, req, http.StatusInternalServerError, fmt.Sprintf("checkpoint: %v", err))
		return
	}
	s.json(w, http.StatusOK, snapshotResponse{
		Path:            info.Path,
		LastSeq:         info.LastSeq,
		SeedRecords:     info.SeedRecords,
		StreamedRecords: info.StreamedRecords,
	})
}

// healthDomainJSON is one failure domain's state on /healthz.
type healthDomainJSON struct {
	Domain string `json:"domain"`
	Status string `json:"status"`
	// Cause and SinceUnixMs are set while the domain is degraded: the
	// recorded failure and when it was first observed.
	Cause       string `json:"cause,omitempty"`
	SinceUnixMs int64  `json:"since_unix_ms,omitempty"`
}

type healthzResponse struct {
	// Status is "ok" when every domain is healthy, "degraded" otherwise.
	// The HTTP status stays 200 either way: /healthz is liveness, and a
	// node in degraded read-only mode is alive and serving reads —
	// restarting it would only lose the quarantined-batch re-log. Load
	// balancers act on /readyz; operators and probes that understand
	// degraded mode act on this body (or the slim_health_state gauge).
	Status  string             `json:"status"`
	Domains []healthDomainJSON `json:"domains,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, req *http.Request) {
	resp := healthzResponse{Status: "ok"}
	report := func(domain string, state obs.HealthState, cause string, since time.Time) {
		d := healthDomainJSON{Domain: domain, Status: state.String()}
		if state != obs.Healthy {
			resp.Status = "degraded"
			d.Cause = cause
			d.SinceUnixMs = since.UnixMilli()
		}
		resp.Domains = append(resp.Domains, d)
	}
	if s.store != nil {
		state, cause, since := s.store.Health()
		report("storage", state, cause, since)
	}
	state, cause, since := s.eng.Health()
	report("relink", state, cause, since)
	s.json(w, http.StatusOK, resp)
}

func (s *Server) handleReadyz(w http.ResponseWriter, req *http.Request) {
	if !s.ready.Load() {
		s.error(w, req, http.StatusServiceUnavailable, "recovering")
		return
	}
	s.json(w, http.StatusOK, map[string]string{"status": "ready"})
}

// decodeJSON strictly decodes one JSON body into v, honoring the
// configured ingest body limit (the caller maps *http.MaxBytesError to
// 413 via requestError).
func (s *Server) decodeJSON(w http.ResponseWriter, req *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return tooLarge
		}
		return fmt.Errorf("bad json: %w", err)
	}
	if dec.More() {
		return errors.New("bad json: trailing data")
	}
	return nil
}

func intParam(v string, def int) (int, error) {
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad integer %q", v)
	}
	return n, nil
}

func (s *Server) json(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) error(w http.ResponseWriter, req *http.Request, code int, msg string) {
	body := map[string]string{"error": msg}
	if id := requestID(req); id != "" {
		body["request_id"] = id
	}
	s.json(w, code, body)
}
