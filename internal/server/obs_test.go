package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"slim"
	"slim/internal/engine"
	"slim/internal/ingest"
	"slim/internal/obs"
)

// newObsServer boots an empty engine and server over one shared registry,
// mirroring how cmd/slimd wires the process.
func newObsServer(t *testing.T, logger *slog.Logger, opts ...Option) (*httptest.Server, *engine.Engine, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	eng, err := engine.New(slim.Dataset{Name: "E"}, slim.Dataset{Name: "I"},
		engine.Config{Shards: 2, Link: slim.Defaults(), Debounce: time.Hour, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	plane := ingest.NewPlane(eng, ingest.Config{Registry: reg})
	opts = append([]Option{WithRegistry(reg), WithIngestPlane(plane)}, opts...)
	ts := httptest.NewServer(New(eng, logger, opts...).Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(eng.Close)
	return ts, eng, reg
}

// metricValue extracts one sample (exact name, including any label set)
// from a Prometheus text exposition; ok is false when absent.
func metricValue(body, sample string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if rest, found := strings.CutPrefix(line, sample+" "); found {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				return 0, false
			}
			return v, true
		}
	}
	return 0, false
}

// TestMetricsEndpoint scrapes GET /metrics after real traffic and checks
// the exposition carries every subsystem, the freshness pipeline moved,
// and the numbers agree with /v1/stats (one source of truth).
func TestMetricsEndpoint(t *testing.T) {
	ts, _, _ := newObsServer(t, nil)

	recs := []map[string]any{
		{"entity": "u1", "lat": 40.0, "lng": -74.0, "unix": int64(1000)},
		{"entity": "u1", "lat": 40.1, "lng": -74.1, "unix": int64(2000)},
	}
	resp, _ := postJSON(t, ts.URL+"/v1/datasets/e/records", map[string]any{"records": recs})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/link", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("link status %d", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); ct != obs.TextContentType {
		t.Fatalf("content type %q, want %q", ct, obs.TextContentType)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()

	// One family per instrumented subsystem must be present.
	for _, name := range []string{
		"slim_relink_seconds",
		"slim_relink_stage_seconds",
		"slim_ingest_to_visible_seconds",
		"slim_link_staleness_seconds",
		"slim_ingest_accepted_records_total",
		"slim_http_request_seconds",
		"slim_http_requests_total",
	} {
		if !strings.Contains(body, "# TYPE "+name+" ") {
			t.Errorf("exposition missing family %s", name)
		}
	}

	// The acknowledged batch became link-visible through the relink.
	if v, ok := metricValue(body, "slim_ingest_to_visible_seconds_count"); !ok || v < 1 {
		t.Errorf("slim_ingest_to_visible_seconds_count = %v (present=%v), want >= 1", v, ok)
	}
	if v, ok := metricValue(body, "slim_link_staleness_seconds"); !ok || v > 1 {
		t.Errorf("post-relink staleness = %v (present=%v), want ~0", v, ok)
	}
	if v, ok := metricValue(body, `slim_http_requests_total{route="POST /v1/link",status="200"}`); !ok || v != 1 {
		t.Errorf("per-route counter = %v (present=%v), want 1", v, ok)
	}

	// Bit-compatibility: /v1/stats and /metrics read the same atomics.
	var stats struct {
		IngestedE uint64 `json:"ingested_e"`
		Runs      uint64 `json:"runs"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if v, _ := metricValue(body, `slim_ingested_records_total{dataset="e"}`); uint64(v) != stats.IngestedE {
		t.Errorf("ingested_e: metrics=%v stats=%d", v, stats.IngestedE)
	}
	if v, _ := metricValue(body, "slim_relink_runs_total"); uint64(v) != stats.Runs {
		t.Errorf("runs: metrics=%v stats=%d", v, stats.Runs)
	}
}

// TestRequestIDPropagation: a valid client X-Request-Id is honored and
// echoed; a missing or hostile one is replaced; error bodies carry it.
func TestRequestIDPropagation(t *testing.T) {
	ts, _, _ := newObsServer(t, nil)

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "client-id-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-id-42" {
		t.Errorf("echoed id = %q, want client-id-42", got)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); len(got) != 16 {
		t.Errorf("generated id = %q, want 16 hex chars", got)
	}

	hostile := strings.Repeat("x", maxRequestIDLen+1)
	req, _ = http.NewRequest("GET", ts.URL+"/v1/links", nil)
	req.Header.Set("X-Request-Id", hostile)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got == hostile || got == "" {
		t.Errorf("oversized id must be replaced, got %q", got)
	}
	var errBody map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want 409", resp.StatusCode)
	}
	if errBody["request_id"] != resp.Header.Get("X-Request-Id") {
		t.Errorf("error body request_id %q != header %q", errBody["request_id"], resp.Header.Get("X-Request-Id"))
	}
}

// syncBuffer is a goroutine-safe log sink: the middleware logs after the
// response is underway, so assertions must not race the writer.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitForLog polls until the log contains want (the request log line is
// written after the handler returns, which can trail the client's read).
func waitForLog(t *testing.T, buf *syncBuffer, want string) string {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		s := buf.String()
		if strings.Contains(s, want) {
			return s
		}
		if time.Now().After(deadline) {
			t.Fatalf("log never contained %q:\n%s", want, s)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRequestLogOutcome is the regression test for the request log: every
// ingest request must be logged with its admission outcome — accepted,
// shed (by cause), or too_large — alongside route, status, and bytes.
func TestRequestLogOutcome(t *testing.T) {
	buf := &syncBuffer{}
	logger := slog.New(slog.NewTextHandler(buf, nil))

	// A one-record queue budget: the first single-record batch is
	// accepted, a two-record batch can never be admitted.
	reg := obs.NewRegistry()
	eng, err := engine.New(slim.Dataset{Name: "E"}, slim.Dataset{Name: "I"},
		engine.Config{Shards: 2, Link: slim.Defaults(), Debounce: time.Hour, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	plane := ingest.NewPlane(eng, ingest.Config{QueueDepth: 1, Registry: reg})
	ts := httptest.NewServer(New(eng, logger,
		WithRegistry(reg), WithIngestPlane(plane), WithMaxIngestBody(256)).Handler())
	t.Cleanup(ts.Close)

	one := []map[string]any{{"entity": "u1", "lat": 40.0, "lng": -74.0, "unix": int64(1000)}}
	if resp, _ := postJSON(t, ts.URL+"/v1/datasets/e/records", map[string]any{"records": one}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d, want 202", resp.StatusCode)
	}
	log := waitForLog(t, buf, "outcome=accepted")
	if !strings.Contains(log, `route="POST /v1/datasets/{dataset}/records"`) || !strings.Contains(log, "status=202") {
		t.Errorf("accepted line missing route/status:\n%s", log)
	}

	// Two records exceed the one-record budget: shed by queue depth.
	two := []map[string]any{
		{"entity": "u2", "lat": 40.0, "lng": -74.0, "unix": int64(1000)},
		{"entity": "u2", "lat": 40.1, "lng": -74.1, "unix": int64(2000)},
	}
	resp, body := postJSON(t, ts.URL+"/v1/datasets/e/records", map[string]any{"records": two})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status %d, want 429: %s", resp.StatusCode, body)
	}
	var shedBody map[string]any
	if err := json.Unmarshal(body, &shedBody); err != nil {
		t.Fatal(err)
	}
	if id, _ := shedBody["request_id"].(string); id == "" {
		t.Errorf("429 body missing request_id: %s", body)
	}
	waitForLog(t, buf, "outcome=shed_depth")

	// A body over the 256-byte limit: refused with 413 and logged as
	// too_large.
	big := make([]map[string]any, 16)
	for i := range big {
		big[i] = map[string]any{"entity": "u3", "lat": 40.0, "lng": -74.0, "unix": int64(1000 + i)}
	}
	resp, body = postJSON(t, ts.URL+"/v1/datasets/e/records", map[string]any{"records": big})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized status %d, want 413: %s", resp.StatusCode, body)
	}
	var largeBody map[string]string
	if err := json.Unmarshal(body, &largeBody); err != nil {
		t.Fatal(err)
	}
	if largeBody["request_id"] == "" {
		t.Errorf("413 body missing request_id: %s", body)
	}
	waitForLog(t, buf, "outcome=too_large")
}
