package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"slim"
	"slim/internal/engine"
	"slim/internal/fault"
	"slim/internal/storage"
)

// newFaultedServer boots a durable server whose storage runs on a
// fault-injectable filesystem.
func newFaultedServer(t *testing.T) (*httptest.Server, *storage.Store, *fault.Injector) {
	t.Helper()
	inj := fault.New()
	eng, store, _, err := storage.Recover(t.TempDir(),
		slim.Dataset{Name: "E"}, slim.Dataset{Name: "I"},
		engine.Config{Shards: 2, Link: slim.Defaults(), Debounce: time.Hour},
		storage.Options{
			FS:                storage.NewFaultFS(storage.OSFS, inj),
			SnapshotEveryRuns: -1,
			SnapshotBytes:     -1,
			ReopenBackoff:     time.Millisecond,
			ReopenMaxBackoff:  5 * time.Millisecond,
		})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, nil)
	srv.AttachStore(store)
	srv.SetReady()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(eng.Close)
	t.Cleanup(func() { store.Close() })
	return ts, store, inj
}

func ingestBody(entity string, n int) map[string]any {
	recs := make([]map[string]any, n)
	for i := range recs {
		recs[i] = map[string]any{
			"entity": entity, "lat": 40.7 + float64(i)*0.001, "lng": -74.0,
			"unix": int64(1_000_000 + i*600),
		}
	}
	return map[string]any{"records": recs}
}

// TestServerDegradedMode drives the full degraded-mode contract through
// HTTP: a WAL fsync failure flips the node into degraded read-only mode,
// both ingest paths answer 503 + Retry-After (distinct from 429),
// /v1/snapshot refuses, reads and /healthz keep serving (healthz naming
// the failing domain), and once the fault clears the node heals and
// accepts ingest again.
func TestServerDegradedMode(t *testing.T) {
	ts, store, inj := newFaultedServer(t)

	resp, _ := postJSON(t, ts.URL+"/v1/datasets/e/records", ingestBody("d-ok", 4))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("healthy ingest status = %d", resp.StatusCode)
	}

	// Fail the next WAL fsync, and keep segment reopening failing so the
	// node stays degraded while we probe it.
	inj.Arm(storage.SiteFSSync, fault.Rule{Count: 1})
	inj.Arm(storage.SiteFSOpenFile, fault.Rule{Count: 1 << 20})

	resp, body := postJSON(t, ts.URL+"/v1/datasets/e/records", ingestBody("d-fail", 4))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest during fsync failure: status = %d body=%s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 missing Retry-After")
	}
	var deg struct {
		Domain string `json:"domain"`
	}
	if err := json.Unmarshal(body, &deg); err != nil || deg.Domain != "storage" {
		t.Fatalf("degraded body = %s", body)
	}
	if !store.Degraded() {
		t.Fatal("store not degraded after failed append")
	}

	// Both planes refuse while degraded — JSON pre-check and binary.
	resp, _ = postJSON(t, ts.URL+"/v1/datasets/i/records", ingestBody("d-i", 2))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("JSON ingest while degraded: status = %d", resp.StatusCode)
	}
	wire := frameBatches(storage.TagE, []slim.Record{
		slim.NewRecord("d-bin", 40.7, -74.0, 1_000_000),
	}, 1)
	resp, _ = postBinary(t, ts.URL, wire)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("binary ingest while degraded: status = %d", resp.StatusCode)
	}

	// Checkpoints cannot be durable either.
	resp, err := http.Post(ts.URL+"/v1/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/v1/snapshot while degraded: status = %d", resp.StatusCode)
	}

	// Reads keep serving: stats, metrics, and healthz all answer 200,
	// healthz naming the failing domain with cause and since-when.
	for _, path := range []string{"/v1/stats", "/metrics", "/healthz", "/readyz"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s while degraded: status = %d", path, r.StatusCode)
		}
	}
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status  string `json:"status"`
		Domains []struct {
			Domain      string `json:"domain"`
			Status      string `json:"status"`
			Cause       string `json:"cause"`
			SinceUnixMs int64  `json:"since_unix_ms"`
		} `json:"domains"`
	}
	if err := json.NewDecoder(r.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if hz.Status != "degraded" {
		t.Fatalf("healthz status = %q, want degraded", hz.Status)
	}
	foundStorage := false
	for _, d := range hz.Domains {
		if d.Domain == "storage" {
			foundStorage = true
			if d.Status != "degraded" || d.Cause == "" || d.SinceUnixMs == 0 {
				t.Fatalf("healthz storage domain = %+v", d)
			}
		}
	}
	if !foundStorage {
		t.Fatalf("healthz missing storage domain: %+v", hz.Domains)
	}

	// Heal the disk: the reopen loop recovers, ingest resumes, healthz
	// returns to ok.
	inj.DisarmAll()
	deadline := time.Now().Add(5 * time.Second)
	for store.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("store never recovered after fault cleared")
		}
		time.Sleep(time.Millisecond)
	}
	resp, body = postJSON(t, ts.URL+"/v1/datasets/e/records", ingestBody("d-after", 4))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest after recovery: status = %d body=%s", resp.StatusCode, body)
	}
	r, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Domains = nil
	if err := json.NewDecoder(r.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if hz.Status != "ok" {
		t.Fatalf("healthz after recovery = %q, want ok", hz.Status)
	}
}
