package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"slim"
	"slim/internal/engine"
	"slim/internal/storage"
)

// newTestServer boots an empty 4-shard engine behind an httptest server.
func newTestServer(t *testing.T) (*httptest.Server, *engine.Engine) {
	t.Helper()
	eng, err := engine.New(slim.Dataset{Name: "E"}, slim.Dataset{Name: "I"},
		engine.Config{Shards: 4, Link: slim.Defaults(), Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, nil).Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(eng.Close)
	return ts, eng
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func toWire(recs []slim.Record) []map[string]any {
	out := make([]map[string]any, len(recs))
	for i, r := range recs {
		lat, lng := r.LatLng.Lat, r.LatLng.Lng
		out[i] = map[string]any{"entity": string(r.Entity), "lat": lat, "lng": lng, "unix": r.Unix}
	}
	return out
}

// TestServerIngestLinkQuery is the full HTTP round trip: stream a sampled
// datagen workload into an empty service in batches, trigger a link run,
// and query the links back — globally and per entity.
func TestServerIngestLinkQuery(t *testing.T) {
	ts, _ := newTestServer(t)

	ground := slim.GenerateCab(slim.CabOptions{
		NumTaxis: 16, Days: 2, MeanRecordIntervalSec: 420, Seed: 7,
	})
	w := slim.SampleWorkload(&ground, slim.SampleOptions{
		IntersectionRatio: 0.5, InclusionProbE: 0.6, InclusionProbI: 0.6, Seed: 8,
	})

	// Links are unavailable before the first run.
	if resp := getJSON(t, ts.URL+"/v1/links", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("GET /v1/links before run: %d, want 409", resp.StatusCode)
	}

	const batch = 500
	ingest := func(ds string, recs []slim.Record) {
		for i := 0; i < len(recs); i += batch {
			hi := min(i+batch, len(recs))
			resp, body := postJSON(t, ts.URL+"/v1/datasets/"+ds+"/records",
				map[string]any{"records": toWire(recs[i:hi])})
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("ingest %s: %d %s", ds, resp.StatusCode, body)
			}
		}
	}
	ingest("e", w.E.Records)
	ingest("i", w.I.Records)

	var stats struct {
		PendingRecords int `json:"pending_records"`
		DirtyShards    int `json:"dirty_shards"`
		IngestedE      int `json:"ingested_e"`
		PublishTail    *struct {
			Matched      int64  `json:"matched"`
			FullRebuilds uint64 `json:"full_rebuilds_total"`
		} `json:"publish_tail"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.IngestedE != len(w.E.Records) {
		t.Fatalf("ingested_e = %d, want %d", stats.IngestedE, len(w.E.Records))
	}
	if stats.PendingRecords == 0 || stats.DirtyShards != 4 {
		t.Fatalf("expected pending ingest on all shards, got %+v", stats)
	}

	var run struct {
		Version int     `json:"version"`
		Links   int     `json:"links"`
		Matched int     `json:"matched"`
		Elapsed float64 `json:"elapsed_ms"`
	}
	resp, body := postJSON(t, ts.URL+"/v1/link", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/link: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &run); err != nil {
		t.Fatal(err)
	}
	if run.Links == 0 || run.Version != 1 {
		t.Fatalf("run produced no links: %+v", run)
	}

	var links struct {
		Version int `json:"version"`
		Total   int `json:"total"`
		Links   []struct {
			U     string  `json:"u"`
			V     string  `json:"v"`
			Score float64 `json:"score"`
		} `json:"links"`
	}
	getJSON(t, ts.URL+"/v1/links", &links)
	if links.Total != run.Links || len(links.Links) != run.Links {
		t.Fatalf("GET /v1/links total %d, want %d", links.Total, run.Links)
	}

	// The served links must be real linkage output, not noise.
	var asLinks []slim.Link
	for _, l := range links.Links {
		asLinks = append(asLinks, slim.Link{U: slim.EntityID(l.U), V: slim.EntityID(l.V), Score: l.Score})
	}
	m := slim.Evaluate(asLinks, w.Truth)
	if m.F1 < 0.5 {
		t.Errorf("served links F1 = %.3f, expected a real linkage", m.F1)
	}

	// Pagination.
	var page struct {
		Total int `json:"total"`
		Links []struct {
			U string `json:"u"`
		} `json:"links"`
	}
	getJSON(t, fmt.Sprintf("%s/v1/links?limit=1&offset=1", ts.URL), &page)
	if page.Total != run.Links || len(page.Links) != 1 {
		t.Fatalf("paginated links: total %d, page %d", page.Total, len(page.Links))
	}

	// Per-entity query, both sides.
	first := links.Links[0]
	for _, id := range []string{first.U, first.V} {
		var one struct {
			Entity string `json:"entity"`
			Links  []struct {
				U string `json:"u"`
				V string `json:"v"`
			} `json:"links"`
		}
		getJSON(t, ts.URL+"/v1/links/"+id, &one)
		if len(one.Links) != 1 || one.Links[0].U != first.U || one.Links[0].V != first.V {
			t.Errorf("GET /v1/links/%s = %+v, want the %s-%s link", id, one.Links, first.U, first.V)
		}
	}

	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.PendingRecords != 0 || stats.DirtyShards != 0 {
		t.Errorf("stats after run not clean: %+v", stats)
	}
	if stats.PublishTail == nil || stats.PublishTail.FullRebuilds == 0 ||
		stats.PublishTail.Matched != int64(run.Matched) {
		t.Errorf("publish_tail block missing or inconsistent: %+v (matched %d)",
			stats.PublishTail, run.Matched)
	}
}

// TestServerErrors exercises the failure surface: bad dataset names,
// malformed bodies, invalid records and parameters, and liveness.
func TestServerErrors(t *testing.T) {
	ts, _ := newTestServer(t)

	var health struct {
		Status string `json:"status"`
	}
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != 200 || health.Status != "ok" {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, health)
	}

	cases := []struct {
		name string
		url  string
		body any
		want int
	}{
		{"unknown dataset", "/v1/datasets/x/records", map[string]any{"records": toWire([]slim.Record{slim.NewRecord("a", 0, 0, 0)})}, http.StatusNotFound},
		{"empty batch", "/v1/datasets/e/records", map[string]any{"records": []any{}}, http.StatusBadRequest},
		{"empty entity", "/v1/datasets/e/records", map[string]any{"records": []map[string]any{{"entity": "", "lat": 1.0, "lng": 2.0, "unix": 3}}}, http.StatusBadRequest},
		{"unknown field", "/v1/datasets/e/records", map[string]any{"rows": []any{}}, http.StatusBadRequest},
		// A huge longitude used to hang the wrap-into-range loop forever;
		// the wire layer must reject out-of-range coordinates outright.
		{"huge longitude", "/v1/datasets/e/records", map[string]any{"records": []map[string]any{{"entity": "a", "lat": 0.0, "lng": 1e308, "unix": 0}}}, http.StatusBadRequest},
		{"out-of-range latitude", "/v1/datasets/e/records", map[string]any{"records": []map[string]any{{"entity": "a", "lat": 91.0, "lng": 0.0, "unix": 0}}}, http.StatusBadRequest},
		{"negative radius", "/v1/datasets/e/records", map[string]any{"records": []map[string]any{{"entity": "a", "lat": 0.0, "lng": 0.0, "unix": 0, "radius_km": -1.0}}}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+c.url, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.want, body)
		}
	}

	if resp, _ := http.Post(ts.URL+"/v1/datasets/e/records", "application/json",
		bytes.NewBufferString("{not json")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed json: status %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/links?limit=-1", nil); resp.StatusCode != http.StatusConflict {
		// Before any run the no-result check fires first; after ingesting
		// nothing we cannot run, so just confirm the route responds.
		t.Errorf("GET /v1/links?limit=-1 = %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/links/nobody", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("GET /v1/links/nobody before run = %d, want 409", resp.StatusCode)
	}
}

// TestServerBackgroundRelink verifies the service links ingested data on
// its own once the engine scheduler is started — no POST /v1/link needed.
func TestServerBackgroundRelink(t *testing.T) {
	eng, err := engine.New(slim.Dataset{Name: "E"}, slim.Dataset{Name: "I"},
		engine.Config{Shards: 2, Link: func() slim.Config {
			c := slim.Defaults()
			c.Threshold = slim.ThresholdNone
			return c
		}(), Debounce: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	ts := httptest.NewServer(New(eng, nil).Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(eng.Close)

	mk := func(e string, n int, off float64) []slim.Record {
		var out []slim.Record
		for k := 0; k < n; k++ {
			out = append(out, slim.NewRecord(slim.EntityID(e), 37.5+off+float64(k%4)*0.06, -122.3, 1_000_000+int64(k)*900))
		}
		return out
	}
	for i, e := range []string{"a", "b"} {
		postJSON(t, ts.URL+"/v1/datasets/e/records", map[string]any{"records": toWire(mk("e-"+e, 20, float64(i)))})
		postJSON(t, ts.URL+"/v1/datasets/i/records", map[string]any{"records": toWire(mk("i-"+e, 20, float64(i)))})
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		var links struct {
			Links []struct{ U, V string } `json:"links"`
		}
		if resp := getJSON(t, ts.URL+"/v1/links", &links); resp.StatusCode == 200 && len(links.Links) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background relink never served links")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerReadiness: /readyz must gate traffic until the process marks
// recovery + seed linkage done; /healthz stays live throughout.
func TestServerReadiness(t *testing.T) {
	eng, err := engine.New(slim.Dataset{Name: "E"}, slim.Dataset{Name: "I"},
		engine.Config{Shards: 2, Link: slim.Defaults(), Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(eng.Close)

	if resp := getJSON(t, ts.URL+"/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before SetReady = %d, want 503", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while not ready = %d, want 200", resp.StatusCode)
	}
	srv.SetReady()
	var ready struct {
		Status string `json:"status"`
	}
	if resp := getJSON(t, ts.URL+"/readyz", &ready); resp.StatusCode != http.StatusOK || ready.Status != "ready" {
		t.Fatalf("readyz after SetReady = %d %+v", resp.StatusCode, ready)
	}
}

// TestServerSnapshotEndpoint: without a data directory the manual
// checkpoint reports 503; with one it checkpoints and the storage
// counters appear in /v1/stats.
func TestServerSnapshotEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	if resp, body := postJSON(t, ts.URL+"/v1/snapshot", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("snapshot without store = %d %s, want 503", resp.StatusCode, body)
	}

	dir := t.TempDir()
	eng, store, _, err := storage.Recover(dir, slim.Dataset{Name: "E"}, slim.Dataset{Name: "I"},
		engine.Config{Shards: 2, Link: slim.Defaults(), Debounce: time.Hour}, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, nil)
	srv.AttachStore(store)
	srv.SetReady()
	ts2 := httptest.NewServer(srv.Handler())
	t.Cleanup(ts2.Close)
	t.Cleanup(func() { store.Close() })
	t.Cleanup(eng.Close)

	mk := func(e string, n int, off float64) []slim.Record {
		var out []slim.Record
		for k := 0; k < n; k++ {
			out = append(out, slim.NewRecord(slim.EntityID(e), 37.5+off+float64(k%4)*0.06, -122.3, 1_000_000+int64(k)*900))
		}
		return out
	}
	if resp, body := postJSON(t, ts2.URL+"/v1/datasets/e/records",
		map[string]any{"records": toWire(mk("e-a", 20, 0))}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: %d %s", resp.StatusCode, body)
	}

	var snap struct {
		Path            string `json:"path"`
		LastSeq         uint64 `json:"last_seq"`
		StreamedRecords int    `json:"streamed_records"`
	}
	resp, body := postJSON(t, ts2.URL+"/v1/snapshot", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot = %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.LastSeq != 1 || snap.StreamedRecords != 20 || snap.Path == "" {
		t.Fatalf("snapshot response %+v", snap)
	}

	var stats struct {
		Storage *struct {
			BatchesLogged int    `json:"batches_logged"`
			RecordsLogged int    `json:"records_logged"`
			Snapshots     uint64 `json:"snapshots"`
			WALSegments   int    `json:"wal_segments"`
			Dir           string `json:"dir"`
		} `json:"storage"`
	}
	getJSON(t, ts2.URL+"/v1/stats", &stats)
	if stats.Storage == nil {
		t.Fatal("stats missing storage section")
	}
	// Snapshots: 1 initial (fresh dir) + 1 manual.
	if stats.Storage.BatchesLogged != 1 || stats.Storage.RecordsLogged != 20 ||
		stats.Storage.Snapshots != 2 || stats.Storage.Dir != dir {
		t.Fatalf("storage stats %+v", stats.Storage)
	}
}

// TestServerIngestFailsClosed: when the persister cannot log a batch the
// ingest request must fail and nothing may be buffered.
func TestServerIngestFailsClosed(t *testing.T) {
	dir := t.TempDir()
	eng, store, _, err := storage.Recover(dir, slim.Dataset{Name: "E"}, slim.Dataset{Name: "I"},
		engine.Config{Shards: 2, Link: slim.Defaults(), Debounce: time.Hour}, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, nil)
	srv.AttachStore(store)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(eng.Close)

	store.Close() // storage gone: the service must stop acknowledging ingest
	rec := slim.NewRecord("e-x", 37.5, -122.3, 1_000_000)
	resp, body := postJSON(t, ts.URL+"/v1/datasets/e/records",
		map[string]any{"records": toWire([]slim.Record{rec})})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("ingest with dead store = %d %s, want 500", resp.StatusCode, body)
	}
	if eng.Pending() != 0 {
		t.Fatalf("failed batch buffered: pending=%d", eng.Pending())
	}
}

// TestServerLinksPaginationStableAcrossRelinks: paging through /v1/links
// must be deterministic — identical relinks (including the fully-clean
// short-circuit path) keep the link order stable, so a client walking
// pages while relinks fire sees no duplicates and no gaps, and the
// concatenated pages equal the unpaged listing exactly.
func TestServerLinksPaginationStableAcrossRelinks(t *testing.T) {
	ts, _ := newTestServer(t)

	ground := slim.GenerateCab(slim.CabOptions{
		NumTaxis: 16, Days: 2, MeanRecordIntervalSec: 420, Seed: 31,
	})
	w := slim.SampleWorkload(&ground, slim.SampleOptions{
		IntersectionRatio: 0.5, InclusionProbE: 0.6, InclusionProbI: 0.6, Seed: 32,
	})
	const batch = 500
	for _, d := range []struct {
		ds   string
		recs []slim.Record
	}{{"e", w.E.Records}, {"i", w.I.Records}} {
		for i := 0; i < len(d.recs); i += batch {
			postJSON(t, ts.URL+"/v1/datasets/"+d.ds+"/records",
				map[string]any{"records": toWire(d.recs[i:min(i+batch, len(d.recs))])})
		}
	}
	postJSON(t, ts.URL+"/v1/link", nil)

	type page struct {
		Version uint64     `json:"version"`
		Total   int        `json:"total"`
		Links   []linkJSON `json:"links"`
	}
	var all page
	getJSON(t, ts.URL+"/v1/links", &all)
	if all.Total < 4 {
		t.Fatalf("workload produced only %d links; pagination needs a few pages", all.Total)
	}

	// Walk the pages twice, firing an identical relink before every fetch
	// on the second pass.
	walk := func(relinkBetween bool) []linkJSON {
		var out []linkJSON
		const limit = 3
		for offset := 0; ; offset += limit {
			if relinkBetween {
				postJSON(t, ts.URL+"/v1/link", nil)
			}
			var p page
			getJSON(t, fmt.Sprintf("%s/v1/links?limit=%d&offset=%d", ts.URL, limit, offset), &p)
			if p.Total != all.Total {
				t.Fatalf("total changed mid-walk: %d -> %d", all.Total, p.Total)
			}
			out = append(out, p.Links...)
			if len(p.Links) < limit {
				return out
			}
		}
	}
	for pass, links := range [][]linkJSON{walk(false), walk(true)} {
		if len(links) != all.Total {
			t.Fatalf("pass %d: pages concatenated to %d links, want %d (duplicates or gaps)", pass, len(links), all.Total)
		}
		for i, l := range links {
			if l != all.Links[i] {
				t.Fatalf("pass %d: page item %d = %+v, want %+v", pass, i, l, all.Links[i])
			}
		}
	}

	// The interleaved identical relinks were fully clean: they must have
	// short-circuited, left the version alone, and surfaced the edge-store
	// block with retained pairs.
	var st statsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.RunsShortCircuited == 0 {
		t.Error("no-op relinks did not short-circuit")
	}
	if st.Version != all.Version {
		t.Errorf("clean relinks bumped the version: %d -> %d", all.Version, st.Version)
	}
	if st.EdgeStore == nil || st.EdgeStore.Pairs == 0 || st.EdgeStore.Epoch == 0 {
		t.Fatalf("edge_store block missing or empty: %+v", st.EdgeStore)
	}
	if st.EdgeStore.RescoredTotal == 0 {
		t.Errorf("edge_store totals not accumulated: %+v", st.EdgeStore)
	}
}

// TestServerCandidateIndexStats boots an LSH-enabled engine, streams a
// burst, and verifies /v1/stats surfaces the aggregated candidate-index
// metrics (signatures, buckets, dirty entities, last-update time) plus the
// last relink's dirty-shard count.
func TestServerCandidateIndexStats(t *testing.T) {
	cfg := slim.Defaults()
	cfg.LSH = &slim.LSHConfig{Threshold: 0.2, StepWindows: 8, SpatialLevel: 12, NumBuckets: 1 << 10}
	eng, err := engine.New(slim.Dataset{Name: "E"}, slim.Dataset{Name: "I"},
		engine.Config{Shards: 2, Link: cfg, Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, nil).Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(eng.Close)

	var recs []map[string]any
	for e := 0; e < 6; e++ {
		for k := 0; k < 8; k++ {
			recs = append(recs, map[string]any{
				"entity": fmt.Sprintf("u%d", e),
				"lat":    37.6 + float64(e)*0.01, "lng": -122.4,
				"unix": int64(900 * k),
			})
		}
	}
	postJSON(t, ts.URL+"/v1/datasets/e/records", map[string]any{"records": recs})
	for i := range recs {
		recs[i]["entity"] = fmt.Sprintf("v%d", i%6)
	}
	postJSON(t, ts.URL+"/v1/datasets/i/records", map[string]any{"records": recs})
	postJSON(t, ts.URL+"/v1/link", nil)

	var st statsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	ci := st.CandidateIndex
	if ci == nil {
		t.Fatal("stats response has no candidate_index despite LSH being enabled")
	}
	if ci.SignaturesE != 6 || ci.SignaturesI != 6*eng.NumShards() {
		t.Errorf("signatures %d/%d, want 6 E and %d replicated I", ci.SignaturesE, ci.SignaturesI, 6*eng.NumShards())
	}
	if ci.Epoch == 0 || ci.Buckets == 0 || ci.Occupancy <= 0 {
		t.Errorf("index looks unbuilt: %+v", ci)
	}
	if st.DirtyShardsLastRun == 0 {
		t.Error("dirty_shards_last_run = 0 after the first relink")
	}

	// A second relink with nothing pending re-scores nothing.
	postJSON(t, ts.URL+"/v1/link", nil)
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.DirtyShardsLastRun != 0 {
		t.Errorf("dirty_shards_last_run = %d after a no-op relink, want 0", st.DirtyShardsLastRun)
	}

	// Disabled LSH must omit the block entirely.
	eng2, err := engine.New(slim.Dataset{Name: "E"}, slim.Dataset{Name: "I"},
		engine.Config{Shards: 2, Link: slim.Defaults(), Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(New(eng2, nil).Handler())
	t.Cleanup(ts2.Close)
	t.Cleanup(eng2.Close)
	var st2 statsResponse
	getJSON(t, ts2.URL+"/v1/stats", &st2)
	if st2.CandidateIndex != nil {
		t.Error("candidate_index present with LSH disabled")
	}
}
