package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"testing"
	"time"

	"slim"
	"slim/internal/engine"
	"slim/internal/ingest"
	"slim/internal/storage"
)

// newDurableServer boots an empty engine over a fresh data directory.
func newDurableServer(t *testing.T, shards int, opts ...Option) (*httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	eng, store, _, err := storage.Recover(dir, slim.Dataset{Name: "E"}, slim.Dataset{Name: "I"},
		engine.Config{Shards: shards, Link: slim.Defaults(), Debounce: time.Hour}, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, nil, opts...)
	srv.AttachStore(store)
	srv.SetReady()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(eng.Close)
	t.Cleanup(func() { store.Close() })
	return ts, dir
}

func postBinary(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/ingest/batch", ingest.ContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// frameBatches encodes records into CRC-framed wire batches of batchLen.
func frameBatches(tag byte, recs []slim.Record, batchLen int) []byte {
	var body []byte
	for i := 0; i < len(recs); i += batchLen {
		hi := min(i+batchLen, len(recs))
		body = storage.AppendFrame(body, storage.AppendWireBatch(nil, tag, recs[i:hi]))
	}
	return body
}

// TestBinaryJSONIngestParity is the cross-plane equivalence proof: the
// same workload ingested over JSON and over the binary wire must produce
// byte-identical /v1/links output AND an identical WAL modulo framing —
// the same sequence of (tag, records) batches on disk.
func TestBinaryJSONIngestParity(t *testing.T) {
	ground := slim.GenerateCab(slim.CabOptions{
		NumTaxis: 12, Days: 2, MeanRecordIntervalSec: 420, Seed: 21,
	})
	w := slim.SampleWorkload(&ground, slim.SampleOptions{
		IntersectionRatio: 0.5, InclusionProbE: 0.6, InclusionProbI: 0.6, Seed: 22,
	})

	tsJSON, dirJSON := newDurableServer(t, 2)
	tsBin, dirBin := newDurableServer(t, 2)

	const batch = 500
	for i := 0; i < len(w.E.Records); i += batch {
		hi := min(i+batch, len(w.E.Records))
		resp, body := postJSON(t, tsJSON.URL+"/v1/datasets/e/records",
			map[string]any{"records": toWire(w.E.Records[i:hi])})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("json ingest: %d %s", resp.StatusCode, body)
		}
	}
	for i := 0; i < len(w.I.Records); i += batch {
		hi := min(i+batch, len(w.I.Records))
		resp, body := postJSON(t, tsJSON.URL+"/v1/datasets/i/records",
			map[string]any{"records": toWire(w.I.Records[i:hi])})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("json ingest: %d %s", resp.StatusCode, body)
		}
	}

	// Same records, same batch boundaries, over the binary wire (several
	// frames per request — request framing must not affect the log).
	var accepted int
	for _, req := range [][]byte{
		frameBatches(storage.TagE, w.E.Records, batch),
		frameBatches(storage.TagI, w.I.Records, batch),
	} {
		resp, body := postBinary(t, tsBin.URL, req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("binary ingest: %d %s", resp.StatusCode, body)
		}
		var ack binaryIngestResponse
		if err := json.Unmarshal(body, &ack); err != nil {
			t.Fatal(err)
		}
		accepted += ack.Accepted
	}
	if accepted != len(w.E.Records)+len(w.I.Records) {
		t.Fatalf("binary plane accepted %d records, want %d", accepted, len(w.E.Records)+len(w.I.Records))
	}

	// Identical linkage output.
	type linksPage struct {
		Total int        `json:"total"`
		Links []linkJSON `json:"links"`
	}
	var a, b linksPage
	postJSON(t, tsJSON.URL+"/v1/link", nil)
	postJSON(t, tsBin.URL+"/v1/link", nil)
	getJSON(t, tsJSON.URL+"/v1/links", &a)
	getJSON(t, tsBin.URL+"/v1/links", &b)
	if a.Total == 0 {
		t.Fatal("workload produced no links; parity test is vacuous")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("links diverge between planes: %d vs %d links", a.Total, b.Total)
	}

	// Identical WAL modulo framing: same (tag, records) batch sequence.
	type walBatch struct {
		Tag  byte
		Recs []slim.Record
	}
	replay := func(dir string) []walBatch {
		var out []walBatch
		if _, _, err := storage.ReplayWAL(dir, 0, func(bt storage.Batch) error {
			out = append(out, walBatch{Tag: bt.Tag, Recs: bt.Recs})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	wa, wb := replay(dirJSON), replay(dirBin)
	if len(wa) == 0 {
		t.Fatal("JSON plane logged nothing")
	}
	if !reflect.DeepEqual(wa, wb) {
		t.Fatalf("WAL content diverges between planes: %d vs %d batches", len(wa), len(wb))
	}
}

// TestBinaryIngestErrorSurface: the binary endpoint's full rejection
// matrix, plus the shared 413 limit on the JSON path.
func TestBinaryIngestErrorSurface(t *testing.T) {
	ts, _ := newDurableServer(t, 2, WithMaxIngestBody(2048))

	good := frameBatches(storage.TagE, mkBurst("e-a", 10), 10)

	if resp, err := http.Post(ts.URL+"/v1/ingest/batch", "text/plain", bytes.NewReader(good)); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("wrong content type = %d, want 415", resp.StatusCode)
	}

	badTag := append([]byte{'Q'}, storage.AppendWireBatch(nil, storage.TagE, mkBurst("e-a", 3))[1:]...)
	for name, body := range map[string][]byte{
		"empty body": nil,
		"garbage":    []byte("this is not a frame"),
		"torn frame": good[:len(good)-2],
		"bad tag":    storage.AppendFrame(nil, badTag),
	} {
		if resp, respBody := postBinary(t, ts.URL, body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s = %d %s, want 400", name, resp.StatusCode, respBody)
		}
	}

	// Oversized bodies: 413 on both planes.
	huge := frameBatches(storage.TagE, mkBurst("e-big", 200), 200)
	if len(huge) <= 2048 {
		t.Fatalf("test burst only %d bytes, need > 2048", len(huge))
	}
	if resp, body := postBinary(t, ts.URL, huge); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized binary body = %d %s, want 413", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/datasets/e/records",
		map[string]any{"records": toWire(mkBurst("e-big", 200))}); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized json body = %d %s, want 413", resp.StatusCode, body)
	}

	// Nothing above may have reached the log or the queues.
	var st statsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.PendingRecords != 0 || st.Storage.RecordsLogged != 0 {
		t.Fatalf("rejected requests leaked records: %+v %+v", st.PendingRecords, st.Storage)
	}
}

// mkBurst builds n records for one entity.
func mkBurst(e string, n int) []slim.Record {
	out := make([]slim.Record, 0, n)
	for k := 0; k < n; k++ {
		out = append(out, slim.NewRecord(slim.EntityID(e),
			37.5+float64(k%4)*0.06, -122.3, 1_000_000+int64(k)*900))
	}
	return out
}

// TestIngestShedLosslessOrRejected: with a tiny queue budget, overload
// must shed with 429 + Retry-After on BOTH planes, and replay-count
// accounting must prove every record was either fully applied (in the
// WAL and the queues) or fully rejected — never half-applied.
func TestIngestShedLosslessOrRejected(t *testing.T) {
	dir := t.TempDir()
	eng, store, _, err := storage.Recover(dir, slim.Dataset{Name: "E"}, slim.Dataset{Name: "I"},
		engine.Config{Shards: 2, Link: slim.Defaults(), Debounce: time.Hour}, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plane := ingest.NewPlane(eng, ingest.Config{QueueDepth: 600, RetryAfter: 3 * time.Second})
	srv := New(eng, nil, WithIngestPlane(plane))
	srv.AttachStore(store)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(eng.Close)
	t.Cleanup(func() { store.Close() })

	// No background relink (huge debounce): accepted records accumulate in
	// the pending queues until the depth budget sheds the next request.
	acceptedRecords := 0
	sheds := 0
	for i := 0; i < 4; i++ {
		burst := mkBurst("e-"+strconv.Itoa(i), 500)
		resp, body := postBinary(t, ts.URL, frameBatches(storage.TagE, burst, 500))
		switch resp.StatusCode {
		case http.StatusAccepted:
			acceptedRecords += 500
		case http.StatusTooManyRequests:
			sheds++
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
				t.Fatalf("429 Retry-After header = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
			}
			var shed struct {
				Cause string `json:"cause"`
			}
			if err := json.Unmarshal(body, &shed); err != nil || shed.Cause != "queue-depth" {
				t.Fatalf("shed body %s (err %v), want cause queue-depth", body, err)
			}
		default:
			t.Fatalf("burst %d: %d %s", i, resp.StatusCode, body)
		}
	}
	if acceptedRecords == 0 || sheds == 0 {
		t.Fatalf("test needs both outcomes: accepted %d records, %d sheds", acceptedRecords, sheds)
	}

	// The JSON plane sheds under the same policy.
	if resp, _ := postJSON(t, ts.URL+"/v1/datasets/e/records",
		map[string]any{"records": toWire(mkBurst("e-json", 500))}); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("json ingest while overloaded = %d, want 429", resp.StatusCode)
	}

	// Replay-count accounting: the WAL holds exactly the acknowledged
	// records — shed requests left no partial batches behind.
	walRecords := 0
	if _, _, err := storage.ReplayWAL(dir, 0, func(b storage.Batch) error {
		walRecords += len(b.Recs)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if walRecords != acceptedRecords {
		t.Fatalf("WAL holds %d records, acknowledged %d — shed ingest was half-applied", walRecords, acceptedRecords)
	}
	if eng.Pending() != acceptedRecords {
		t.Fatalf("queues hold %d records, acknowledged %d", eng.Pending(), acceptedRecords)
	}

	// The stats block tells the same story.
	var st statsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Ingest == nil {
		t.Fatal("stats response has no ingest block")
	}
	if st.Ingest.QueueDepth != 600 || st.Ingest.AcceptedRecords != uint64(acceptedRecords) ||
		st.Ingest.ShedRequests != uint64(sheds)+1 || st.Ingest.ShedQueueDepth != uint64(sheds)+1 {
		t.Fatalf("ingest stats %+v, want %d accepted / %d sheds", st.Ingest, acceptedRecords, sheds+1)
	}
	if st.Ingest.PendingRecords != acceptedRecords || st.Ingest.InflightRecords != 0 {
		t.Fatalf("ingest queue state %+v", st.Ingest)
	}

	// Backpressure recovers: a relink drains the queues and ingest resumes.
	postJSON(t, ts.URL+"/v1/link", nil)
	if resp, body := postBinary(t, ts.URL,
		frameBatches(storage.TagE, mkBurst("e-after", 500), 500)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest after relink = %d %s, want 202", resp.StatusCode, body)
	}

	// And the accepted records survive a crash: recovery replays exactly
	// the acknowledged set.
	var replayed int
	if _, _, err := storage.ReplayWAL(dir, 0, func(b storage.Batch) error {
		replayed += len(b.Recs)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if replayed != acceptedRecords+500 {
		t.Fatalf("post-recovery WAL holds %d records, want %d", replayed, acceptedRecords+500)
	}
}
