package server

// This file holds the provenance endpoints: GET /v1/explain joins the
// three explainability layers (score decomposition, candidate lineage,
// edge lineage) plus the journal entry of the run that produced the edge
// into one document; GET /v1/runs pages through the relink flight
// recorder.

import (
	"fmt"
	"net/http"
	"time"

	"slim"
	"slim/internal/engine"
)

// cellHex renders a 64-bit cell or bucket hash as a hex string: the
// values exceed 2^53, so emitting them as JSON numbers would silently
// lose precision in JavaScript consumers.
func cellHex(v uint64) string { return fmt.Sprintf("%016x", v) }

// pairContributionJSON is one bin pair's term in a window's score.
type pairContributionJSON struct {
	CellU        string  `json:"cell_u"`
	CellV        string  `json:"cell_v"`
	DistanceKm   float64 `json:"distance_km"`
	Proximity    float64 `json:"proximity"`
	IDFWeight    float64 `json:"idf_weight"`
	Contribution float64 `json:"contribution"`
	Alibi        bool    `json:"alibi,omitempty"`
	MFN          bool    `json:"mfn,omitempty"`
}

type windowBreakdownJSON struct {
	Window int64                  `json:"window"`
	BinsU  int                    `json:"bins_u"`
	BinsV  int                    `json:"bins_v"`
	Sum    float64                `json:"sum"`
	Pairs  []pairContributionJSON `json:"pairs,omitempty"`
}

type breakdownJSON struct {
	Known   bool                  `json:"known"`
	NormU   float64               `json:"norm_u"`
	NormV   float64               `json:"norm_v"`
	Norm    float64               `json:"norm"`
	Total   float64               `json:"total"`
	Windows []windowBreakdownJSON `json:"windows,omitempty"`
}

type bandCollisionJSON struct {
	Band    int    `json:"band"`
	Hash    string `json:"hash"`
	BucketE int    `json:"bucket_e"`
	BucketI int    `json:"bucket_i"`
}

type candidateExplainJSON struct {
	HasU         bool                `json:"has_u"`
	HasV         bool                `json:"has_v"`
	Candidate    bool                `json:"candidate"`
	BandCount    int32               `json:"band_count"`
	Collisions   []bandCollisionJSON `json:"collisions,omitempty"`
	Epoch        uint64              `json:"epoch"`
	SignatureLen int                 `json:"signature_len"`
	Bands        int                 `json:"bands"`
	Rows         int                 `json:"rows"`
	SigVersionU  uint64              `json:"sig_version_u,omitempty"`
	SigVersionV  uint64              `json:"sig_version_v,omitempty"`
}

type edgeLineageJSON struct {
	Linked           bool    `json:"linked"`
	Score            float64 `json:"score,omitempty"`
	RescoredSeq      uint64  `json:"rescored_seq,omitempty"`
	RetainedSinceSeq uint64  `json:"retained_since_seq,omitempty"`
	LastFullSeq      uint64  `json:"last_full_seq,omitempty"`
	ScoreAtLastFull  float64 `json:"score_at_last_full,omitempty"`
	StoreEpoch       uint64  `json:"store_epoch"`
}

// stageDurationsJSON carries one run's per-stage wall times (the same
// stages as the slim_relink_stage_seconds histograms).
type stageDurationsJSON struct {
	ApplyMs          float64 `json:"apply_ms"`
	CandidateIndexMs float64 `json:"candidate_index_ms"`
	RescoreMs        float64 `json:"rescore_ms"`
	MergeMs          float64 `json:"merge_ms"`
	MatchMs          float64 `json:"match_ms"`
	ThresholdMs      float64 `json:"threshold_ms"`
}

type runRecordJSON struct {
	Seq            uint64             `json:"seq"`
	Version        uint64             `json:"version"`
	Trigger        string             `json:"trigger"`
	StartUnixMs    int64              `json:"start_unix_ms"`
	DurationMs     float64            `json:"duration_ms"`
	DirtyShards    int                `json:"dirty_shards"`
	ShortCircuit   bool               `json:"short_circuit"`
	FullRescore    bool               `json:"full_rescore"`
	Panicked       bool               `json:"panicked"`
	PanicMsg       string             `json:"panic_msg,omitempty"`
	Rescored       int64              `json:"rescored"`
	Retained       int64              `json:"retained"`
	Dropped        int64              `json:"dropped"`
	CandidatePairs int64              `json:"candidate_pairs"`
	Links          int64              `json:"links"`
	// TailReusedPrefix / TailFullRebuild describe the publish tail's work
	// for this run (zero / false on the from-scratch Hungarian path).
	TailReusedPrefix int64              `json:"tail_reused_prefix"`
	TailFullRebuild  bool               `json:"tail_full_rebuild"`
	Stages           stageDurationsJSON `json:"stages"`
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func toRunRecordJSON(r engine.RunRecord) runRecordJSON {
	return runRecordJSON{
		Seq:            r.Seq,
		Version:        r.Version,
		Trigger:        r.Trigger,
		StartUnixMs:    r.Start.UnixMilli(),
		DurationMs:     ms(r.Duration),
		DirtyShards:    r.DirtyShards,
		ShortCircuit:   r.ShortCircuit,
		FullRescore:    r.FullRescore,
		Panicked:       r.Panicked,
		PanicMsg:       r.PanicMsg,
		Rescored:       r.Rescored,
		Retained:       r.Retained,
		Dropped:        r.Dropped,
		CandidatePairs:   r.CandidatePairs,
		Links:            r.Links,
		TailReusedPrefix: r.TailReusedPrefix,
		TailFullRebuild:  r.TailFullRebuild,
		Stages: stageDurationsJSON{
			ApplyMs:          ms(r.ApplyDur),
			CandidateIndexMs: ms(r.IndexDur),
			RescoreMs:        ms(r.RescoreDur),
			MergeMs:          ms(r.MergeDur),
			MatchMs:          ms(r.MatchDur),
			ThresholdMs:      ms(r.ThresholdDur),
		},
	}
}

// explainResponse is the one-stop provenance document for a pair.
type explainResponse struct {
	E       string        `json:"e"`
	I       string        `json:"i"`
	Shard   int           `json:"shard"`
	Version uint64        `json:"version"`
	Score   breakdownJSON `json:"score"`
	// Candidates is omitted when the engine runs brute force (every pair
	// is a candidate; there is no filter lineage to report).
	Candidates *candidateExplainJSON `json:"candidates,omitempty"`
	Edge       edgeLineageJSON       `json:"edge"`
	// Run is the flight-recorder entry of the run that last rescored the
	// pair, when it is still in the ring.
	Run *runRecordJSON `json:"run,omitempty"`
}

func (s *Server) handleExplain(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	u, v := q.Get("e"), q.Get("i")
	if u == "" || v == "" {
		s.error(w, req, http.StatusBadRequest, "both e and i query parameters are required")
		return
	}
	ex := s.eng.Explain(slim.EntityID(u), slim.EntityID(v))
	resp := explainResponse{
		E:       u,
		I:       v,
		Shard:   ex.Shard,
		Version: ex.Version,
		Edge: edgeLineageJSON{
			Linked:           ex.Edge.Linked,
			Score:            ex.Edge.Score,
			RescoredSeq:      ex.Edge.RescoredSeq,
			RetainedSinceSeq: ex.Edge.RetainedSinceSeq,
			LastFullSeq:      ex.Edge.LastFullSeq,
			ScoreAtLastFull:  ex.Edge.ScoreAtLastFull,
			StoreEpoch:       ex.Edge.StoreEpoch,
		},
	}
	if bd := ex.Breakdown; bd != nil {
		resp.Score = breakdownJSON{
			Known: bd.Known,
			NormU: bd.NormU,
			NormV: bd.NormV,
			Norm:  bd.Norm,
			Total: bd.Total,
		}
		for _, wb := range bd.Windows {
			wj := windowBreakdownJSON{
				Window: wb.Window,
				BinsU:  wb.BinsU,
				BinsV:  wb.BinsV,
				Sum:    wb.Sum,
			}
			for _, pc := range wb.Pairs {
				wj.Pairs = append(wj.Pairs, pairContributionJSON{
					CellU:        cellHex(uint64(pc.CellU)),
					CellV:        cellHex(uint64(pc.CellV)),
					DistanceKm:   pc.DistanceKm,
					Proximity:    pc.Proximity,
					IDFWeight:    pc.IDFWeight,
					Contribution: pc.Contribution,
					Alibi:        pc.Alibi,
					MFN:          pc.MFN,
				})
			}
			resp.Score.Windows = append(resp.Score.Windows, wj)
		}
	}
	if ce := ex.Candidates; ce != nil {
		cj := &candidateExplainJSON{
			HasU:         ce.HasU,
			HasV:         ce.HasV,
			Candidate:    ce.Candidate,
			BandCount:    ce.BandCount,
			Epoch:        ce.Epoch,
			SignatureLen: ce.SignatureLen,
			Bands:        ce.Bands,
			Rows:         ce.Rows,
			SigVersionU:  ce.SigVersionU,
			SigVersionV:  ce.SigVersionV,
		}
		for _, bc := range ce.Collisions {
			cj.Collisions = append(cj.Collisions, bandCollisionJSON{
				Band:    bc.Band,
				Hash:    cellHex(bc.Hash),
				BucketE: bc.BucketE,
				BucketI: bc.BucketI,
			})
		}
		resp.Candidates = cj
	}
	if ex.Run != nil {
		rj := toRunRecordJSON(*ex.Run)
		resp.Run = &rj
	}
	s.json(w, http.StatusOK, resp)
}

// defaultRunsLimit caps an unpaginated /v1/runs answer.
const defaultRunsLimit = 50

type runsResponse struct {
	// TotalRuns counts runs ever recorded (including entries the ring has
	// already overwritten); Capacity is the ring size.
	TotalRuns uint64          `json:"total_runs"`
	Capacity  int             `json:"capacity"`
	Count     int             `json:"count"`
	Runs      []runRecordJSON `json:"runs"`
}

func (s *Server) handleRuns(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	limit, err := intParam(q.Get("limit"), defaultRunsLimit)
	if err != nil {
		s.error(w, req, http.StatusBadRequest, "bad limit")
		return
	}
	offset, err := intParam(q.Get("offset"), 0)
	if err != nil {
		s.error(w, req, http.StatusBadRequest, "bad offset")
		return
	}
	recs, total := s.eng.Runs(limit, offset)
	resp := runsResponse{
		TotalRuns: total,
		Capacity:  s.eng.RunJournalCap(),
		Count:     len(recs),
		Runs:      make([]runRecordJSON, 0, len(recs)),
	}
	for _, r := range recs {
		resp.Runs = append(resp.Runs, toRunRecordJSON(r))
	}
	s.json(w, http.StatusOK, resp)
}

// ExplainHandler returns the /v1/explain handler for mounting on an
// auxiliary mux (slimd re-exports it on -debug-addr next to pprof).
func (s *Server) ExplainHandler() http.Handler { return http.HandlerFunc(s.handleExplain) }

// RunsHandler returns the /v1/runs handler for mounting on an auxiliary
// mux.
func (s *Server) RunsHandler() http.Handler { return http.HandlerFunc(s.handleRuns) }
