package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"slim"
	"slim/internal/engine"
	"slim/internal/fault"
	"slim/internal/storage"
)

// TestServerChaos runs a fixed-seed randomized fault schedule — disk
// errors, write delays, and relink panics — against a live node while
// concurrent JSON and binary ingest races the background relink loop.
// Invariants checked:
//
//   - the process never crashes and /healthz answers 200 throughout;
//   - every request resolves to an explicit verdict (202 acked, or
//     429/503/500 rejected) — never a hang or a connection error;
//   - after the faults clear the node heals on its own, and the WAL
//     holds exactly the acked batches: every acked record is durable,
//     every rejected batch is wholly absent (inline-fsync policy, so a
//     nacked append never survives quarantine).
//
// The schedule derives from a fixed seed so a failure replays exactly.
func TestServerChaos(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	inj := fault.New()
	dir := t.TempDir()
	eng, store, _, err := storage.Recover(dir,
		slim.Dataset{Name: "E"}, slim.Dataset{Name: "I"},
		engine.Config{Shards: 4, Link: slim.Defaults(), Debounce: 2 * time.Millisecond, Fault: inj},
		storage.Options{
			FS:            storage.NewFaultFS(storage.OSFS, inj),
			FsyncInterval: 0, // inline: a nacked append is never re-logged,
			// so "rejected => absent from the WAL" is exact.
			SnapshotEveryRuns: -1, // no checkpoints: the WAL retains every
			SnapshotBytes:     -1, // batch, so replay accounts for all of them.
			ReopenBackoff:     time.Millisecond,
			ReopenMaxBackoff:  5 * time.Millisecond,
		})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	srv := New(eng, nil)
	srv.AttachStore(store)
	srv.SetReady()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(eng.Close)
	t.Cleanup(func() { store.Close() })

	// Shared verdict ledger: entity -> record count for acked batches,
	// entity -> true for rejected ones. One unique entity per batch makes
	// the WAL audit exact.
	var (
		mu       sync.Mutex
		acked    = map[string]int{}
		rejected = map[string]bool{}
	)
	verdict := func(entity string, n, status int) {
		mu.Lock()
		defer mu.Unlock()
		switch status {
		case http.StatusAccepted:
			acked[entity] = n
		case http.StatusTooManyRequests, http.StatusServiceUnavailable,
			http.StatusInternalServerError:
			rejected[entity] = true
		default:
			t.Errorf("entity %s: unexpected ingest status %d", entity, status)
		}
	}
	recsFor := func(entity string, n int) []slim.Record {
		recs := make([]slim.Record, n)
		for i := range recs {
			recs[i] = slim.NewRecord(slim.EntityID(entity),
				40.0+float64(i%7)*0.01, -74.0, int64(1_000_000+i*600))
		}
		return recs
	}

	const (
		workers          = 3
		batchesPerWorker = 60
		recsPerBatch     = 4
	)
	var wg sync.WaitGroup
	// JSON ingest workers, alternating datasets.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ds := "e"
			if w%2 == 1 {
				ds = "i"
			}
			for b := 0; b < batchesPerWorker; b++ {
				entity := fmt.Sprintf("c-j%d-%d", w, b)
				recs := make([]map[string]any, recsPerBatch)
				for i, r := range recsFor(entity, recsPerBatch) {
					recs[i] = map[string]any{
						"entity": r.Entity, "lat": r.LatLng.Lat,
						"lng": r.LatLng.Lng, "unix": r.Unix,
					}
				}
				resp, _ := postJSON(t, ts.URL+"/v1/datasets/"+ds+"/records",
					map[string]any{"records": recs})
				verdict(entity, recsPerBatch, resp.StatusCode)
				time.Sleep(time.Millisecond)
			}
		}(w)
	}
	// Binary ingest worker: one batch per frame so a request's verdict is
	// the batch's verdict (no partial-prefix ambiguity).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < batchesPerWorker; b++ {
			entity := fmt.Sprintf("c-bin-%d", b)
			wire := frameBatches(storage.TagI, recsFor(entity, recsPerBatch), recsPerBatch)
			resp, _ := postBinary(t, ts.URL, wire)
			verdict(entity, recsPerBatch, resp.StatusCode)
			time.Sleep(time.Millisecond)
		}
	}()

	// Liveness monitor: /healthz must answer 200 for the whole run, even
	// mid-quarantine.
	monitorStop := make(chan struct{})
	var monitorWG sync.WaitGroup
	monitorWG.Add(1)
	go func() {
		defer monitorWG.Done()
		for {
			select {
			case <-monitorStop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			r, err := http.Get(ts.URL + "/healthz")
			if err != nil {
				t.Errorf("healthz during chaos: %v", err)
				return
			}
			r.Body.Close()
			if r.StatusCode != http.StatusOK {
				t.Errorf("healthz during chaos: status %d", r.StatusCode)
			}
		}
	}()

	// The chaos schedule: random storage faults, write delays, and engine
	// panics, armed and cleared on a fixed-seed timeline.
	engineSites := []string{
		engine.FaultApply, engine.FaultRescore, engine.FaultRelink, engine.FaultLoop,
	}
	for i := 0; i < 50; i++ {
		time.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
		switch rng.Intn(6) {
		case 0, 1:
			site := storage.FaultSites[rng.Intn(len(storage.FaultSites))]
			inj.Arm(site, fault.Rule{After: rng.Intn(3), Count: 1 + rng.Intn(3)})
		case 2:
			site := engineSites[rng.Intn(len(engineSites))]
			inj.Arm(site, fault.Rule{Panic: "chaos " + site, Count: 1})
		case 3:
			inj.Arm(storage.SiteFSWrite,
				fault.Rule{Delay: time.Duration(rng.Intn(2000)) * time.Microsecond, Count: 2})
		default:
			inj.DisarmAll()
		}
	}
	inj.DisarmAll()

	wg.Wait()
	close(monitorStop)
	monitorWG.Wait()

	// Heal: with every fault cleared the reopen loop must converge.
	deadline := time.Now().Add(10 * time.Second)
	for store.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("store never healed after faults cleared")
		}
		time.Sleep(time.Millisecond)
	}
	// Force a clean relink so everything buffered is applied and the
	// relink domain recovers too.
	for _, path := range []string{"/v1/link", "/v1/link"} {
		r, err := http.Post(ts.URL+path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("POST %s after heal: status %d", path, r.StatusCode)
		}
	}
	if st := eng.Stats(); st.PendingRecords != 0 {
		t.Fatalf("records still pending after healed relink: %d", st.PendingRecords)
	}

	// Audit the quiesced WAL: exactly the acked batches, nothing else.
	walCount := map[string]int{}
	if _, _, err := storage.ReplayWAL(dir, 0, func(b storage.Batch) error {
		for _, r := range b.Recs {
			walCount[string(r.Entity)]++
		}
		return nil
	}); err != nil {
		t.Fatalf("WAL replay after chaos: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	t.Logf("chaos verdicts: %d acked, %d rejected", len(acked), len(rejected))
	if len(acked) == 0 {
		t.Fatal("chaos run acked nothing — schedule starved ingest entirely")
	}
	if len(rejected) == 0 {
		t.Fatal("chaos run rejected nothing — no fault ever landed")
	}
	for entity, n := range acked {
		if walCount[entity] != n {
			t.Errorf("acked entity %s: %d records in WAL, want %d",
				entity, walCount[entity], n)
		}
	}
	for entity := range rejected {
		if walCount[entity] != 0 {
			t.Errorf("rejected entity %s leaked %d records into the WAL",
				entity, walCount[entity])
		}
	}
	for entity := range walCount {
		if _, ok := acked[entity]; !ok {
			t.Errorf("WAL holds unacked entity %s", entity)
		}
	}
}
