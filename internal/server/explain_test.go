package server

import (
	"fmt"
	"math"
	"net/http"
	"net/url"
	"testing"

	"slim"
)

// TestExplainConsistentWithStats is the HTTP-level consistency gate:
// after ingest and a relink, every published link's /v1/explain document
// must carry an edge lineage whose run seq is at most the /v1/stats
// version, a score breakdown that recomposes to the link's score bit for
// bit, and a joined run record from /v1/runs.
func TestExplainConsistentWithStats(t *testing.T) {
	ts, _ := newTestServer(t)

	ground := slim.GenerateCab(slim.CabOptions{
		NumTaxis: 12, Days: 2, MeanRecordIntervalSec: 420, Seed: 31,
	})
	w := slim.SampleWorkload(&ground, slim.SampleOptions{
		IntersectionRatio: 0.6, InclusionProbE: 0.6, InclusionProbI: 0.6, Seed: 32,
	})
	for _, in := range []struct {
		ds   string
		recs []slim.Record
	}{{"e", w.E.Records}, {"i", w.I.Records}} {
		resp, body := postJSON(t, ts.URL+"/v1/datasets/"+in.ds+"/records",
			map[string]any{"records": toWire(in.recs)})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest %s: %d %s", in.ds, resp.StatusCode, body)
		}
	}
	postJSON(t, ts.URL+"/v1/link", nil)
	postJSON(t, ts.URL+"/v1/link", nil) // clean short circuit, journaled too

	var stats struct {
		Version    uint64 `json:"version"`
		RunJournal struct {
			Capacity  int    `json:"capacity"`
			Records   int    `json:"records"`
			TotalRuns uint64 `json:"total_runs"`
		} `json:"run_journal"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Version == 0 {
		t.Fatal("no published version after POST /v1/link")
	}
	if stats.RunJournal.Capacity == 0 || stats.RunJournal.TotalRuns < 2 {
		t.Fatalf("run_journal block %+v, want capacity and >= 2 runs", stats.RunJournal)
	}

	var links struct {
		Links []struct {
			U     string  `json:"u"`
			V     string  `json:"v"`
			Score float64 `json:"score"`
		} `json:"links"`
	}
	getJSON(t, ts.URL+"/v1/links", &links)
	if len(links.Links) == 0 {
		t.Fatal("no links to explain")
	}

	for _, l := range links.Links {
		var ex struct {
			E     string `json:"e"`
			I     string `json:"i"`
			Score struct {
				Known   bool    `json:"known"`
				Total   float64 `json:"total"`
				Windows []struct {
					Sum   float64 `json:"sum"`
					Pairs []struct {
						CellU        string  `json:"cell_u"`
						Contribution float64 `json:"contribution"`
					} `json:"pairs"`
				} `json:"windows"`
			} `json:"score"`
			Edge struct {
				Linked      bool    `json:"linked"`
				Score       float64 `json:"score"`
				RescoredSeq uint64  `json:"rescored_seq"`
			} `json:"edge"`
			Version uint64 `json:"version"`
			Run     *struct {
				Version  uint64 `json:"version"`
				Trigger  string `json:"trigger"`
				Panicked bool   `json:"panicked"`
			} `json:"run"`
		}
		u := fmt.Sprintf("%s/v1/explain?e=%s&i=%s",
			ts.URL, url.QueryEscape(l.U), url.QueryEscape(l.V))
		if resp := getJSON(t, u, &ex); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/explain (%s, %s): %d", l.U, l.V, resp.StatusCode)
		}
		if !ex.Score.Known || !ex.Edge.Linked {
			t.Fatalf("explain (%s, %s): known=%v linked=%v", l.U, l.V, ex.Score.Known, ex.Edge.Linked)
		}
		if math.Float64bits(ex.Score.Total) != math.Float64bits(l.Score) {
			t.Fatalf("explain (%s, %s): breakdown total %v != link score %v",
				l.U, l.V, ex.Score.Total, l.Score)
		}
		if ex.Edge.RescoredSeq == 0 || ex.Edge.RescoredSeq > stats.Version {
			t.Fatalf("explain (%s, %s): lineage seq %d outside (0, version %d]",
				l.U, l.V, ex.Edge.RescoredSeq, stats.Version)
		}
		if ex.Run == nil || ex.Run.Version != ex.Edge.RescoredSeq || ex.Run.Panicked {
			t.Fatalf("explain (%s, %s): run join %+v, want the non-panicked run of seq %d",
				l.U, l.V, ex.Run, ex.Edge.RescoredSeq)
		}
		if len(ex.Score.Windows) == 0 {
			t.Fatalf("explain (%s, %s): positive score with no window decomposition", l.U, l.V)
		}
	}

	// Missing parameters are a client error.
	if resp := getJSON(t, ts.URL+"/v1/explain?e=only", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET /v1/explain without i: %d, want 400", resp.StatusCode)
	}
}

// TestRunsEndpoint checks /v1/runs shape and pagination: newest first,
// short-circuit and full-rescore decisions visible, limit/offset honored.
func TestRunsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)

	recs := []slim.Record{
		slim.NewRecord("a", 37.2, -121.9, 1000),
		slim.NewRecord("a", 37.2, -121.9, 2000),
	}
	postJSON(t, ts.URL+"/v1/datasets/e/records", map[string]any{"records": toWire(recs)})
	postJSON(t, ts.URL+"/v1/link", nil)
	postJSON(t, ts.URL+"/v1/link", nil)
	postJSON(t, ts.URL+"/v1/link", nil)

	var runs struct {
		TotalRuns uint64 `json:"total_runs"`
		Capacity  int    `json:"capacity"`
		Count     int    `json:"count"`
		Runs      []struct {
			Seq          uint64 `json:"seq"`
			Version      uint64 `json:"version"`
			Trigger      string `json:"trigger"`
			ShortCircuit bool   `json:"short_circuit"`
			FullRescore  bool   `json:"full_rescore"`
			StartUnixMs  int64  `json:"start_unix_ms"`
		} `json:"runs"`
	}
	getJSON(t, ts.URL+"/v1/runs", &runs)
	if runs.TotalRuns != 3 || runs.Count != 3 || len(runs.Runs) != 3 {
		t.Fatalf("runs = %+v, want 3 journaled runs", runs)
	}
	for i, r := range runs.Runs {
		if r.Trigger != "manual" || r.StartUnixMs == 0 {
			t.Fatalf("run %d: %+v, want a manual run with a start time", i, r)
		}
		if i > 0 && runs.Runs[i-1].Seq <= r.Seq {
			t.Fatal("runs not newest first")
		}
	}
	if !runs.Runs[2].FullRescore || runs.Runs[2].ShortCircuit {
		t.Fatalf("oldest run %+v, want the initial full rescore", runs.Runs[2])
	}
	if !runs.Runs[0].ShortCircuit {
		t.Fatalf("newest run %+v, want a fully-clean short circuit", runs.Runs[0])
	}

	var page struct {
		Count int `json:"count"`
		Runs  []struct {
			Seq uint64 `json:"seq"`
		} `json:"runs"`
	}
	getJSON(t, ts.URL+"/v1/runs?limit=1&offset=1", &page)
	if page.Count != 1 || len(page.Runs) != 1 || page.Runs[0].Seq != runs.Runs[1].Seq {
		t.Fatalf("paged runs = %+v, want the second-newest record", page)
	}

	if resp := getJSON(t, ts.URL+"/v1/runs?limit=x", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET /v1/runs?limit=x: %d, want 400", resp.StatusCode)
	}
}
