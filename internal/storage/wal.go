package storage

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"slim/internal/obs"
)

// DefaultSegmentBytes is the WAL segment rotation size (16 MiB).
const DefaultSegmentBytes = 16 << 20

// DefaultFsyncInterval is the default group-commit window: appends
// block until the next batched fsync, at most this long after the write.
const DefaultFsyncInterval = 2 * time.Millisecond

// Fsync policy, selected by the FsyncInterval option:
//
//	interval == 0   fsync inline on every append (strongest, slowest)
//	interval > 0    group commit: appends return once a batched fsync
//	                covering their write completes (at most one interval
//	                of added latency; many appends share one fsync)
//	interval < 0    never fsync (OS page cache only; survives process
//	                crashes but not host crashes — benchmarks and tests)

// ErrClosed is returned by operations on a closed WAL or Store.
var ErrClosed = errors.New("storage: closed")

const segPrefix, segSuffix = "wal-", ".seg"

func segName(index uint64) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, index, segSuffix)
}

// wal is an append-only segmented log of CRC-framed payloads. Appends
// are written in call order; durability is governed by the fsync policy
// above. A wal never reopens old segments: each process generation
// starts a fresh segment, so a torn tail from a crash is always at the
// end of a dead segment.
//
// All file I/O goes through the FS seam, so tests can fail any write,
// fsync, rename, or close at any call (see faultfs.go).
// walMetrics are the log's latency histograms (always non-nil; the
// store wires them to its registry).
type walMetrics struct {
	appendSeconds *obs.Histogram // one Append call: framed write (+ inline fsync)
	fsyncSeconds  *obs.Histogram // every fsync, whichever path issued it
}

func (m walMetrics) sync(f File) error {
	start := time.Now()
	err := f.Sync()
	m.fsyncSeconds.ObserveSince(start)
	return err
}

type wal struct {
	fs       FS
	dir      string
	segBytes int64
	interval time.Duration
	metrics  walMetrics

	mu         sync.Mutex
	f          File
	segIndex   uint64
	segWritten int64
	ioErr      error         // sticky: first write/sync failure poisons the log
	gen        chan struct{} // closed when all bytes written so far are durable
	closed     bool

	// Quarantine bookkeeping for degraded-mode recovery (see
	// Store.reopenLoop): syncedBytes is how much of the active segment
	// the last successful fsync covered, and unsynced holds the payloads
	// of every acknowledged-to-the-store append not yet covered by one.
	// After a sticky ioErr these freeze: the segment tail past
	// syncedBytes is non-durable (fsyncgate — a failed fsync says
	// nothing about what reached disk) and unsynced is exactly what a
	// fresh segment must re-log.
	syncedBytes int64
	unsynced    [][]byte

	wantSync   chan struct{}
	stop       chan struct{}
	syncerDone chan struct{}
}

// openWAL starts a fresh segment with the given index and, for group
// commit, the background syncer.
func openWAL(fs FS, dir string, segIndex uint64, segBytes int64, interval time.Duration, metrics walMetrics) (*wal, error) {
	if fs == nil {
		fs = OSFS
	}
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	if metrics.appendSeconds == nil || metrics.fsyncSeconds == nil {
		metrics = newWALMetrics(obs.NewRegistry())
	}
	w := &wal{
		fs:         fs,
		dir:        dir,
		segBytes:   segBytes,
		interval:   interval,
		metrics:    metrics,
		segIndex:   segIndex,
		gen:        make(chan struct{}),
		wantSync:   make(chan struct{}, 1),
		stop:       make(chan struct{}),
		syncerDone: make(chan struct{}),
	}
	if err := w.openSegment(segIndex); err != nil {
		return nil, err
	}
	if interval > 0 {
		go w.syncer()
	} else {
		close(w.syncerDone)
	}
	return w, nil
}

// openSegment creates the segment file and syncs the directory entry so
// the segment itself survives a crash. Callers hold mu (or own w).
func (w *wal) openSegment(index uint64) error {
	f, err := w.fs.OpenFile(filepath.Join(w.dir, segName(index)),
		createFlags, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	w.segIndex = index
	w.segWritten = 0
	w.syncedBytes = 0
	return w.fs.SyncDir(w.dir)
}

// Append writes one framed payload. The returned wait function blocks
// until the payload is durable per the fsync policy (a no-op for the
// inline and never policies) and reports any sticky I/O error.
func (w *wal) Append(payload []byte) (wait func() error, err error) {
	start := time.Now()
	defer w.metrics.appendSeconds.ObserveSince(start)
	frame := appendFrame(make([]byte, 0, frameHeaderLen+len(payload)), payload)

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, ErrClosed
	}
	if w.ioErr != nil {
		err := w.ioErr
		w.mu.Unlock()
		return nil, err
	}
	if w.segWritten >= w.segBytes {
		if err := w.rotateLocked(); err != nil {
			w.mu.Unlock()
			return nil, err
		}
	}
	if _, err := w.f.Write(frame); err != nil {
		w.ioErr = err
		w.mu.Unlock()
		return nil, err
	}
	w.segWritten += int64(len(frame))

	if w.interval == 0 { // fsync inline
		if err := w.metrics.sync(w.f); err != nil {
			// The frame is written but its fsync failed: the caller will
			// reject the batch (nothing consumed the sequence number), so
			// the bytes must NOT be re-logged — quarantine truncation cuts
			// them off at syncedBytes.
			w.ioErr = err
			w.mu.Unlock()
			return nil, err
		}
		w.syncedBytes = w.segWritten
		w.mu.Unlock()
		return noWait, nil
	}
	// Group-commit and never-fsync policies: the append is acknowledged
	// to the store (it consumes the sequence and buffers the batch), so
	// its payload joins the re-log quarantine until an fsync covers it.
	w.unsynced = append(w.unsynced, payload)
	if w.interval < 0 { // never fsync
		w.mu.Unlock()
		return noWait, nil
	}
	// Group commit: wait for the generation covering this write.
	ch := w.gen
	w.mu.Unlock()
	select {
	case w.wantSync <- struct{}{}:
	default:
	}
	return func() error {
		<-ch
		w.mu.Lock()
		defer w.mu.Unlock()
		return w.ioErr
	}, nil
}

func noWait() error { return nil }

// syncer batches fsyncs: after a nudge it sleeps one interval (letting
// concurrent appends pile onto the same fsync), then syncs and releases
// the covered waiters.
func (w *wal) syncer() {
	defer close(w.syncerDone)
	for {
		select {
		case <-w.stop:
			return
		case <-w.wantSync:
		}
		select {
		case <-w.stop:
			return
		case <-time.After(w.interval):
		}
		w.syncNow()
	}
}

// syncNow fsyncs the active segment and releases the current generation
// of group-commit waiters. Once the log is closed it does nothing:
// Close owns the final fsync and the last waiter release, so a waiter
// can never be released without its covering fsync having been
// attempted (and any failure recorded in ioErr).
func (w *wal) syncNow() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	if w.ioErr == nil && w.f != nil {
		if err := w.metrics.sync(w.f); err != nil {
			w.ioErr = err
		} else {
			w.markDurableLocked()
		}
	}
	ch := w.gen
	w.gen = make(chan struct{})
	w.mu.Unlock()
	close(ch)
}

// markDurableLocked retires the quarantine bookkeeping after a
// successful fsync: everything written so far is durable. Callers hold
// mu.
func (w *wal) markDurableLocked() {
	w.syncedBytes = w.segWritten
	w.unsynced = nil
}

// rotateLocked seals the active segment (fsync + close, so rotation is
// always a durability point) and opens the next one. Callers hold mu.
func (w *wal) rotateLocked() error {
	if err := w.metrics.sync(w.f); err != nil {
		w.ioErr = err
		return err
	}
	w.markDurableLocked()
	if err := w.f.Close(); err != nil {
		w.ioErr = err
		return err
	}
	if err := w.openSegment(w.segIndex + 1); err != nil {
		w.ioErr = err
		return err
	}
	// Everything before the rotation is durable: release waiters.
	ch := w.gen
	w.gen = make(chan struct{})
	close(ch)
	return nil
}

// Rotate seals the active segment and returns the new segment's index:
// every payload appended before the call lives in a segment with a
// smaller index (the snapshot truncation boundary).
func (w *wal) Rotate() (newIndex uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if w.ioErr != nil {
		return 0, w.ioErr
	}
	if err := w.rotateLocked(); err != nil {
		return 0, err
	}
	return w.segIndex, nil
}

// Close seals the log: stops the syncer, fsyncs and closes the active
// segment, and releases any waiters. Idempotent.
func (w *wal) Close() error {
	w.mu.Lock()
	if w.closed {
		err := w.ioErr
		w.mu.Unlock()
		return err
	}
	w.closed = true
	w.mu.Unlock()

	close(w.stop)
	<-w.syncerDone

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil {
		if w.ioErr == nil {
			// Record a failed final fsync in ioErr BEFORE releasing the
			// waiters below: group-commit callers still blocked in wait()
			// must see the failure, not a silent success.
			if err := w.metrics.sync(w.f); err != nil {
				w.ioErr = err
			} else {
				w.markDurableLocked()
			}
		}
		if cerr := w.f.Close(); cerr != nil && w.ioErr == nil {
			w.ioErr = cerr
		}
		w.f = nil
	}
	ch := w.gen
	w.gen = make(chan struct{})
	close(ch)
	return w.ioErr
}

// failState snapshots the quarantine bookkeeping of a poisoned log: the
// segment it died in, how much of it the last successful fsync covered
// (durable; everything past it is not), and the payloads of every
// append the store consumed whose durability the failure voided. Call
// after Close; the state is frozen once ioErr is sticky.
func (w *wal) failState() (segIndex uint64, syncedBytes int64, unsynced [][]byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.segIndex, w.syncedBytes, w.unsynced
}

// segmentFile is one WAL segment found on disk.
type segmentFile struct {
	index uint64
	path  string
}

// listSegments returns the data directory's WAL segments in index order.
func listSegments(fs FS, dir string) ([]segmentFile, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentFile
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		idx, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segmentFile{index: idx, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	return segs, nil
}

// ReplayWAL walks every committed batch in dir's write-ahead log with
// Seq > fromSeq, in sequence order. Exported for audit tooling and
// cross-package tests that account for exactly which records the log
// holds (e.g. proving shed ingest was never half-applied).
func ReplayWAL(dir string, fromSeq uint64, fn func(Batch) error) (lastSeq uint64, batches int, err error) {
	return replayWAL(OSFS, dir, fromSeq, fn)
}

// replayWAL scans every segment in order and calls fn for each decoded
// batch with Seq > fromSeq. A torn frame ends a segment's replay (the
// expected crash artifact — appends are sequential, so nothing committed
// can follow it within that segment); replay continues with the next
// segment, which a healthy process only starts after a clean rotation.
// Decoded sequence numbers must be strictly increasing; a violation
// means real corruption and fails the replay.
func replayWAL(fs FS, dir string, fromSeq uint64, fn func(Batch) error) (lastSeq uint64, batches int, err error) {
	segs, err := listSegments(fs, dir)
	if err != nil {
		return 0, 0, err
	}
	lastSeq = fromSeq
	sawAny := false
	for _, seg := range segs {
		buf, err := fs.ReadFile(seg.path)
		if err != nil {
			return lastSeq, batches, err
		}
		for len(buf) > 0 {
			payload, rest, err := nextFrame(buf)
			if err != nil {
				// Torn tail: stop this segment, continue with the next.
				break
			}
			buf = rest
			b, err := decodeBatch(payload)
			if err != nil {
				return lastSeq, batches, fmt.Errorf("%s: %w", seg.path, err)
			}
			if sawAny && b.Seq <= lastSeq {
				return lastSeq, batches, fmt.Errorf("%s: %w: sequence %d after %d",
					seg.path, errCorrupt, b.Seq, lastSeq)
			}
			if b.Seq <= fromSeq && !sawAny {
				// Covered by the snapshot; skip.
				continue
			}
			sawAny = true
			lastSeq = b.Seq
			if fn != nil {
				if err := fn(b); err != nil {
					return lastSeq, batches, err
				}
			}
			batches++
		}
	}
	return lastSeq, batches, nil
}

// removeSegmentsBefore deletes every segment with index < keepIndex —
// the snapshot truncation step, called only after the covering snapshot
// is durably on disk.
func removeSegmentsBefore(fs FS, dir string, keepIndex uint64) error {
	segs, err := listSegments(fs, dir)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if seg.index >= keepIndex {
			break
		}
		if err := fs.Remove(seg.path); err != nil {
			return err
		}
	}
	return fs.SyncDir(dir)
}
