package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"slim"
	"slim/internal/geo"
)

// mkBatch builds a deterministic batch of n records for entity base.
func mkBatch(seq uint64, tag byte, base string, n int) Batch {
	recs := make([]slim.Record, n)
	for i := range recs {
		recs[i] = QuantizeRecord(slim.Record{
			Entity: slim.EntityID(base),
			LatLng: geo.LatLng{Lat: 37.5 + float64(i%4)*0.06, Lng: -122.3},
			Unix:   1_000_000 + int64(seq)*10_000 + int64(i)*900,
		})
	}
	return Batch{Seq: seq, Tag: tag, Recs: recs}
}

func appendBatches(t *testing.T, w *wal, batches []Batch) {
	t.Helper()
	for _, b := range batches {
		wait, err := w.Append(appendBatch(nil, b))
		if err != nil {
			t.Fatalf("append seq %d: %v", b.Seq, err)
		}
		if err := wait(); err != nil {
			t.Fatalf("wait seq %d: %v", b.Seq, err)
		}
	}
}

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(OSFS, dir, 1, 0, -1, walMetrics{})
	if err != nil {
		t.Fatal(err)
	}
	var in []Batch
	for seq := uint64(1); seq <= 20; seq++ {
		tag := byte(TagE)
		if seq%3 == 0 {
			tag = TagI
		}
		in = append(in, mkBatch(seq, tag, fmt.Sprintf("ent-%d", seq), int(seq%5)+1))
	}
	appendBatches(t, w, in)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var out []Batch
	lastSeq, n, err := replayWAL(OSFS, dir, 0, func(b Batch) error {
		out = append(out, b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(in) || lastSeq != 20 {
		t.Fatalf("replayed %d batches through seq %d, want %d through 20", n, lastSeq, len(in))
	}
	for i, b := range out {
		if b.Seq != in[i].Seq || b.Tag != in[i].Tag || len(b.Recs) != len(in[i].Recs) {
			t.Fatalf("batch %d: got %+v", i, b)
		}
		for j := range b.Recs {
			if b.Recs[j] != in[i].Recs[j] {
				t.Fatalf("batch %d record %d mismatch", i, j)
			}
		}
	}

	// Replay from a snapshot boundary skips covered batches.
	_, n, err = replayWAL(OSFS, dir, 15, nil)
	if err != nil || n != 5 {
		t.Fatalf("tail replay = %d batches, %v; want 5", n, err)
	}
}

func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(OSFS, dir, 1, 256, -1, walMetrics{}) // tiny segments force rotation
	if err != nil {
		t.Fatal(err)
	}
	var in []Batch
	for seq := uint64(1); seq <= 40; seq++ {
		in = append(in, mkBatch(seq, TagE, fmt.Sprintf("e%d", seq), 3))
	}
	appendBatches(t, w, in)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(OSFS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	_, n, err := replayWAL(OSFS, dir, 0, nil)
	if err != nil || n != 40 {
		t.Fatalf("replay across segments = %d, %v; want 40", n, err)
	}
}

func TestWALRotateAndTruncate(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(OSFS, dir, 1, 0, -1, walMetrics{})
	if err != nil {
		t.Fatal(err)
	}
	appendBatches(t, w, []Batch{mkBatch(1, TagE, "a", 2), mkBatch(2, TagE, "b", 2)})
	keep, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	appendBatches(t, w, []Batch{mkBatch(3, TagI, "c", 2)})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := removeSegmentsBefore(OSFS, dir, keep); err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	_, _, err = replayWAL(OSFS, dir, 0, func(b Batch) error {
		seqs = append(seqs, b.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || seqs[0] != 3 {
		t.Fatalf("after truncation replay saw %v, want [3]", seqs)
	}
}

// TestWALGroupCommit hammers a group-commit WAL from many goroutines:
// every acknowledged append must be durable and replayable, in sequence
// order, sharing far fewer fsyncs than appends.
func TestWALGroupCommit(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(OSFS, dir, 1, 0, time.Millisecond, walMetrics{})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 25
	var mu sync.Mutex
	seq := uint64(0)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perWriter; k++ {
				mu.Lock()
				seq++
				b := mkBatch(seq, TagE, fmt.Sprintf("w%d-%d", g, k), 1)
				wait, err := w.Append(appendBatch(nil, b))
				mu.Unlock()
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if err := wait(); err != nil {
					t.Errorf("wait: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, n, err := replayWAL(OSFS, dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != writers*perWriter {
		t.Fatalf("replayed %d, want %d", n, writers*perWriter)
	}
}

func TestWALClosedRejectsAppends(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(OSFS, dir, 1, 0, -1, walMetrics{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // idempotent
		t.Fatalf("second close: %v", err)
	}
	if _, err := w.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
}

// TestReplayThroughputFloor enforces the subsystem's replay performance
// contract: at least 100k records/s (real hardware does orders of
// magnitude better; this catches only catastrophic regressions).
func TestReplayThroughputFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement; skipped in -short")
	}
	dir := t.TempDir()
	w, err := openWAL(OSFS, dir, 1, 0, -1, walMetrics{})
	if err != nil {
		t.Fatal(err)
	}
	const batches, perBatch = 100, 1000
	rng := rand.New(rand.NewSource(3))
	for seq := uint64(1); seq <= batches; seq++ {
		b := Batch{Seq: seq, Tag: TagE, Recs: quantizeAll(randRecords(rng, perBatch))}
		wait, err := w.Append(appendBatch(nil, b))
		if err != nil {
			t.Fatal(err)
		}
		_ = wait
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	total := 0
	if _, _, err := replayWAL(OSFS, dir, 0, func(b Batch) error {
		total += len(b.Recs)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if total != batches*perBatch {
		t.Fatalf("replayed %d records, want %d", total, batches*perBatch)
	}
	rate := float64(total) / elapsed.Seconds()
	t.Logf("replayed %d records in %v (%.0f records/s)", total, elapsed, rate)
	if rate < 100_000 {
		t.Errorf("replay throughput %.0f records/s below the 100k floor", rate)
	}
}

// benchRecords returns one reusable batch payload of n records.
func benchPayload(seq uint64, n int) []byte {
	rng := rand.New(rand.NewSource(int64(seq)))
	return appendBatch(nil, Batch{Seq: seq, Tag: TagE, Recs: randRecords(rng, n)})
}

// BenchmarkWALAppend measures the append path (codec framing + write)
// without fsync, 100-record batches.
func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	w, err := openWAL(OSFS, dir, 1, 0, -1, walMetrics{})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	const perBatch = 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload := benchPayload(uint64(i)+1, perBatch)
		if _, err := w.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*perBatch)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkWALAppendGroupCommit measures acknowledged durable appends
// under group commit from a single writer.
func BenchmarkWALAppendGroupCommit(b *testing.B) {
	dir := b.TempDir()
	w, err := openWAL(OSFS, dir, 1, 0, 100*time.Microsecond, walMetrics{})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	const perBatch = 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload := benchPayload(uint64(i)+1, perBatch)
		wait, err := w.Append(payload)
		if err != nil {
			b.Fatal(err)
		}
		if err := wait(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*perBatch)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkWALReplay measures recovery replay throughput.
func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	w, err := openWAL(OSFS, dir, 1, 0, -1, walMetrics{})
	if err != nil {
		b.Fatal(err)
	}
	const batches, perBatch = 200, 100
	for seq := uint64(1); seq <= batches; seq++ {
		if _, err := w.Append(benchPayload(seq, perBatch)); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total = 0
		if _, _, err := replayWAL(OSFS, dir, 0, func(bt Batch) error {
			total += len(bt.Recs)
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if total != batches*perBatch {
		b.Fatalf("replayed %d", total)
	}
	b.ReportMetric(float64(b.N*total)/b.Elapsed().Seconds(), "records/s")
}
