package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"slim"
	"slim/internal/engine"
)

func testEngineCfg() engine.Config {
	cfg := slim.Defaults()
	cfg.Threshold = slim.ThresholdNone // tiny instances: keep the full matching
	return engine.Config{Shards: 2, Link: cfg, Debounce: time.Hour}
}

// mkRecs builds n clustered records for one entity (same shape as the
// engine tests, so e-x/i-x pairs link deterministically).
func mkRecs(e string, latOff float64, n int, start int64) []slim.Record {
	var out []slim.Record
	for k := 0; k < n; k++ {
		out = append(out, slim.NewRecord(slim.EntityID(e),
			37.5+latOff+float64(k%4)*0.06, -122.3, start+int64(k)*900))
	}
	return out
}

func emptyDS(name string) slim.Dataset { return slim.Dataset{Name: name} }

func copyDirInto(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		buf, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoverRoundTripAfterCrash: ingest without any checkpoint, crash,
// recover from the WAL alone, and get the identical linkage.
func TestRecoverRoundTripAfterCrash(t *testing.T) {
	dir := t.TempDir()
	eng, st, info, err := Recover(dir, emptyDS("E"), emptyDS("I"), testEngineCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Recovered {
		t.Fatal("fresh directory reported as recovered")
	}
	for i, off := range []float64{0, 0.8, 1.6} {
		e := string(rune('a' + i))
		if err := eng.AddE(mkRecs("e-"+e, off, 20, 1_000_000)...); err != nil {
			t.Fatal(err)
		}
		if err := eng.AddI(mkRecs("i-"+e, off, 20, 1_000_030)...); err != nil {
			t.Fatal(err)
		}
	}
	res := eng.Run()
	if len(res.Links) != 3 {
		t.Fatalf("pre-crash links = %d, want 3", len(res.Links))
	}
	st.crashClose() // no final checkpoint: recovery leans on the WAL
	eng.Close()

	eng2, st2, info2, err := Recover(dir, emptyDS("E"), emptyDS("I"), testEngineCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.crashClose()
	if !info2.Recovered || info2.ReplayedBatches != 6 || info2.ReplayedRecords != 120 {
		t.Fatalf("recover info = %+v, want 6 batches / 120 records replayed", info2)
	}
	res2 := eng2.Run()
	if !reflect.DeepEqual(res2.Links, res.Links) {
		t.Fatalf("recovered links differ:\n got %v\nwant %v", res2.Links, res.Links)
	}
	est := eng2.Stats()
	if est.IngestedE != 60 || est.IngestedI != 60 {
		t.Errorf("recovered ingest counters %d/%d, want 60/60", est.IngestedE, est.IngestedI)
	}
}

// TestRecoverSeedsPersisted: the initial checkpoint makes the seed
// datasets durable at boot — a recovery with no seed flags still has
// them, even when the process crashed before ever checkpointing again.
func TestRecoverSeedsPersisted(t *testing.T) {
	dir := t.TempDir()
	seedE := slim.Dataset{Name: "E", Records: append(
		mkRecs("e-seed", 0, 20, 1_000_000), mkRecs("e-seed2", 0.8, 20, 1_000_000)...)}
	seedI := slim.Dataset{Name: "I", Records: append(
		mkRecs("i-seed", 0, 20, 1_000_030), mkRecs("i-seed2", 0.8, 20, 1_000_030)...)}
	_, st, _, err := Recover(dir, seedE, seedI, testEngineCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.crashClose()
	// An orphaned snapshot temp file (crash mid-checkpoint) must be swept
	// by recovery, not accumulated.
	orphan := filepath.Join(dir, snapPrefix+"1234.tmp")
	if err := os.WriteFile(orphan, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	eng2, st2, info, err := Recover(dir, emptyDS("E"), emptyDS("I"), testEngineCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.crashClose()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Errorf("orphaned temp file survived recovery: %v", err)
	}
	if !info.Recovered || info.SeedRecords != 80 {
		t.Fatalf("info = %+v, want recovered with 80 seed records", info)
	}
	res := eng2.Run()
	if len(res.Links) != 2 {
		t.Fatalf("seed pairs not recovered: %v", res.Links)
	}
}

// TestRecoverAfterCheckpoint: snapshot + WAL tail compose, and the
// checkpoint truncates the segments it covers.
func TestRecoverAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	eng, st, _, err := Recover(dir, emptyDS("E"), emptyDS("I"), testEngineCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddE(mkRecs("e-a", 0, 20, 1_000_000)...); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddI(mkRecs("i-a", 0, 20, 1_000_030)...); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	before, err := st.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if before.StreamedRecords != 40 {
		t.Fatalf("checkpoint covers %d streamed records, want 40", before.StreamedRecords)
	}
	// The WAL tail after the snapshot.
	if err := eng.AddE(mkRecs("e-b", 0.8, 20, 1_000_000)...); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddI(mkRecs("i-b", 0.8, 20, 1_000_030)...); err != nil {
		t.Fatal(err)
	}
	st.crashClose()
	eng.Close()

	// The checkpoint truncated the segments it covers: replay from zero
	// must see only the two tail batches.
	if _, n, err := replayWAL(OSFS, dir, 0, nil); err != nil || n != 2 {
		t.Fatalf("post-checkpoint WAL holds %d batches (%v), want 2", n, err)
	}

	eng2, st2, info, err := Recover(dir, emptyDS("E"), emptyDS("I"), testEngineCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.crashClose()
	if info.SnapshotSeq != before.LastSeq || info.ReplayedBatches != 2 {
		t.Fatalf("info = %+v, want snapshot seq %d + 2 replayed batches", info, before.LastSeq)
	}
	res := eng2.Run()
	if len(res.Links) != 2 {
		t.Fatalf("links after recovery = %v, want both pairs", res.Links)
	}
}

// TestRecoverInstallsResult: after a clean shutdown the persisted result
// serves queries immediately, before any fresh relink.
func TestRecoverInstallsResult(t *testing.T) {
	dir := t.TempDir()
	eng, st, _, err := Recover(dir, emptyDS("E"), emptyDS("I"), testEngineCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, off := range []float64{0, 0.8} {
		e := string(rune('a' + i))
		if err := eng.AddE(mkRecs("e-"+e, off, 20, 1_000_000)...); err != nil {
			t.Fatal(err)
		}
		if err := eng.AddI(mkRecs("i-"+e, off, 20, 1_000_030)...); err != nil {
			t.Fatal(err)
		}
	}
	res := eng.Run()
	if len(res.Links) != 2 {
		t.Fatalf("pre-shutdown links = %v, want 2", res.Links)
	}
	eng.Close()
	if err := st.Close(); err != nil { // clean close: final checkpoint captures the result
		t.Fatal(err)
	}
	if err := st.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	eng2, st2, info, err := Recover(dir, emptyDS("E"), emptyDS("I"), testEngineCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.crashClose()
	if !info.HasResult || info.ReplayedBatches != 0 {
		t.Fatalf("info = %+v, want installed result and empty WAL tail", info)
	}
	got, _, ok := eng2.Result()
	if !ok || !reflect.DeepEqual(got.Links, res.Links) {
		t.Fatalf("installed result = %v, %v; want %v", got.Links, ok, res.Links)
	}
}

// TestRecoverTornWAL truncates the log mid-entry at every byte offset of
// the final frame: recovery must never fail and never lose a committed
// (fully written) batch.
func TestRecoverTornWAL(t *testing.T) {
	dir := t.TempDir()
	eng, st, _, err := Recover(dir, emptyDS("E"), emptyDS("I"), testEngineCfg(), Options{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	const batches, perBatch = 10, 4
	for i := 0; i < batches; i++ {
		recs := mkRecs(fmt.Sprintf("e-%d", i), float64(i)*0.5, perBatch, 1_000_000)
		if i%2 == 0 {
			err = eng.AddE(recs...)
		} else {
			err = eng.AddI(recs...)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	st.crashClose()
	eng.Close()

	segs, err := listSegments(OSFS, dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v, %v", segs, err)
	}
	last := segs[len(segs)-1]
	buf, err := os.ReadFile(last.path)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the final frame's start offset by walking the frames.
	var offsets []int
	for off, rest := 0, buf; len(rest) > 0; {
		payload, r, err := nextFrame(rest)
		if err != nil {
			t.Fatalf("healthy log has torn frame at %d", off)
		}
		offsets = append(offsets, off)
		off += frameHeaderLen + len(payload)
		rest = r
	}
	if len(offsets) != batches {
		t.Fatalf("found %d frames, want %d", len(offsets), batches)
	}
	lastStart := offsets[batches-1]

	for cut := lastStart; cut < len(buf); cut++ {
		tdir := t.TempDir()
		copyDirInto(t, dir, tdir)
		if err := os.WriteFile(filepath.Join(tdir, filepath.Base(last.path)), buf[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		eng2, st2, info, err := Recover(tdir, emptyDS("E"), emptyDS("I"), testEngineCfg(), Options{FsyncInterval: -1})
		if err != nil {
			t.Fatalf("cut=%d: recover failed: %v", cut, err)
		}
		if info.ReplayedBatches != batches-1 || info.ReplayedRecords != (batches-1)*perBatch {
			t.Fatalf("cut=%d: replayed %d batches / %d records, want %d / %d (committed prefix)",
				cut, info.ReplayedBatches, info.ReplayedRecords, batches-1, (batches-1)*perBatch)
		}
		st2.crashClose()
		eng2.Close()
	}

	// The untruncated log replays every batch.
	eng3, st3, info, err := Recover(dir, emptyDS("E"), emptyDS("I"), testEngineCfg(), Options{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if info.ReplayedBatches != batches {
		t.Fatalf("full replay = %d batches, want %d", info.ReplayedBatches, batches)
	}
	st3.crashClose()
	eng3.Close()
}

// TestStoreAutoCheckpoint: the post-relink trigger checkpoints without
// any manual call.
func TestStoreAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	eng, st, _, err := Recover(dir, emptyDS("E"), emptyDS("I"), testEngineCfg(),
		Options{SnapshotEveryRuns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.crashClose()
	if got := st.Stats().Snapshots; got != 1 { // the initial checkpoint
		t.Fatalf("snapshots after init = %d, want 1", got)
	}
	if err := eng.AddE(mkRecs("e-a", 0, 20, 1_000_000)...); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddI(mkRecs("i-a", 0, 20, 1_000_030)...); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// The auto-checkpoint is asynchronous (it must not stall the relink
	// publish path): poll for it.
	deadline := time.Now().Add(5 * time.Second)
	for st.Stats().Snapshots != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("snapshots after run = %d, want 2 (auto trigger)", st.Stats().Snapshots)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if seq := st.Stats().LastSnapshotSeq; seq != 2 {
		t.Fatalf("last snapshot seq = %d, want 2", seq)
	}
	// Ingest after the store is closed must be rejected, not silently
	// dropped, and must not reach the engine buffers.
	st.crashClose()
	if err := eng.AddE(mkRecs("e-late", 1, 5, 1_000_000)...); err == nil {
		t.Fatal("AddE after store close succeeded")
	}
	if eng.Pending() != 0 {
		t.Fatalf("rejected batch was buffered: pending=%d", eng.Pending())
	}
}
