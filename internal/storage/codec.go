// Package storage is slimd's durability layer: a compact binary codec
// for mobility records, an append-only segmented write-ahead log with
// group-commit fsync, atomic engine snapshots, and crash recovery that
// rebuilds a ready engine.Engine from the newest valid snapshot plus the
// WAL tail.
//
// Layering: the engine calls the Store through the narrow
// engine.Persister interface (log-before-buffer on ingest, a snapshot
// trigger after each relink); Recover composes the loaded state back
// into an engine. Nothing in the scoring pipeline knows storage exists.
//
// On-disk layout of a data directory:
//
//	wal-00000001.seg     CRC32C-framed record batches (see Frame format)
//	wal-00000002.seg     ... one file per segment, strictly ordered
//	snapshot-<seq>.snap  full engine state through WAL sequence <seq>
//
// Frame format (shared by WAL segments and snapshot sections):
//
//	u32le payload length | u32le CRC32C(payload) | payload
//
// A torn final frame (short header, short payload, or CRC mismatch at a
// segment tail) marks the end of the committed log; it is tolerated on
// replay and never acknowledged to a client, because Append only returns
// after the frame's fsync policy is satisfied.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"slim"
	"slim/internal/geo"
)

// maxFramePayload bounds a single frame so a corrupt length field cannot
// drive a giant allocation on replay (64 MiB).
const maxFramePayload = 64 << 20

// frameHeaderLen is the fixed frame header: u32 length + u32 CRC32C.
const frameHeaderLen = 8

// castagnoli is the CRC32C table used for every frame checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends one CRC-framed payload to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// AppendFrame appends one CRC-framed payload to dst — the frame format
// shared by WAL segments, snapshot sections, and the binary ingest wire
// (application/x-slim-frame request bodies are a sequence of these).
func AppendFrame(dst, payload []byte) []byte { return appendFrame(dst, payload) }

// ErrTornFrame reports an incomplete or corrupt frame — the expected
// shape of a crash mid-append at a log tail, or of a truncated ingest
// request body.
var ErrTornFrame = errors.New("storage: torn frame")

// errTornFrame is the internal alias (predates the export).
var errTornFrame = ErrTornFrame

// NextFrame slices one frame off buf, returning the payload and the
// rest. It returns ErrTornFrame when buf ends mid-frame or the checksum
// does not match: replay treats that as end-of-log, the ingest edge as a
// malformed request.
func NextFrame(buf []byte) (payload, rest []byte, err error) { return nextFrame(buf) }

// nextFrame slices one frame off buf, returning the payload and the rest.
// It returns errTornFrame when buf ends mid-frame or the checksum does
// not match: callers replaying a log tail treat that as end-of-log.
func nextFrame(buf []byte) (payload, rest []byte, err error) {
	if len(buf) < frameHeaderLen {
		return nil, nil, errTornFrame
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	if n > maxFramePayload {
		return nil, nil, errTornFrame
	}
	want := binary.LittleEndian.Uint32(buf[4:8])
	body := buf[frameHeaderLen:]
	if uint32(len(body)) < n {
		return nil, nil, errTornFrame
	}
	payload = body[:n]
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, nil, errTornFrame
	}
	return payload, body[n:], nil
}

// Dataset tags carried in every WAL batch frame.
const (
	TagE = 'E' // first dataset (hash-partitioned side)
	TagI = 'I' // second dataset (replicated side)
)

// latLngScale is the fixed-point coordinate scale: 1e-7 degrees (the
// conventional "E7" representation, ~1.1 cm at the equator). Encoding is
// deliberately lossy at that resolution; history grid cells are multiple
// orders of magnitude coarser, so linkage output is unaffected.
const latLngScale = 1e7

// e7 quantizes one coordinate to fixed point.
func e7(deg float64) int64 { return int64(math.Round(deg * latLngScale)) }

// QuantizeRecord returns the record as the codec will reproduce it: the
// position rounded to E7 fixed point. Tests compare against this.
func QuantizeRecord(r slim.Record) slim.Record {
	r.LatLng = geo.LatLng{
		Lat: float64(e7(r.LatLng.Lat)) / latLngScale,
		Lng: float64(e7(r.LatLng.Lng)) / latLngScale,
	}
	return r
}

// zigzag / unzigzag map signed integers onto unsigned varint space.
func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendRecords appends the compact wire form of a record batch:
//
//	uvarint count
//	per record:
//	  uvarint len(entity) | entity bytes
//	  varint  delta(unix) from the previous record (zigzag)
//	  varint  lat, lng as E7 fixed point (zigzag)
//	  uvarint IEEE-754 bits of RadiusKm (0 for point records)
//
// Timestamps are delta-coded against the previous record in the batch:
// ingest batches arrive roughly time-ordered, so deltas are small.
func appendRecords(dst []byte, recs []slim.Record) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(recs)))
	prevUnix := int64(0)
	for _, r := range recs {
		dst = binary.AppendUvarint(dst, uint64(len(r.Entity)))
		dst = append(dst, r.Entity...)
		dst = binary.AppendUvarint(dst, zigzag(r.Unix-prevUnix))
		prevUnix = r.Unix
		dst = binary.AppendUvarint(dst, zigzag(e7(r.LatLng.Lat)))
		dst = binary.AppendUvarint(dst, zigzag(e7(r.LatLng.Lng)))
		dst = binary.AppendUvarint(dst, math.Float64bits(r.RadiusKm))
	}
	return dst
}

// errCorrupt reports a structurally invalid payload (a frame whose CRC
// passed but whose contents do not decode — always a bug or disk fault,
// never an expected crash artifact).
var errCorrupt = errors.New("storage: corrupt payload")

// byteReader walks a payload with varint helpers.
type byteReader struct {
	buf []byte
	err error
}

func (b *byteReader) uvarint() uint64 {
	if b.err != nil {
		return 0
	}
	v, n := binary.Uvarint(b.buf)
	if n <= 0 {
		b.err = errCorrupt
		return 0
	}
	b.buf = b.buf[n:]
	return v
}

func (b *byteReader) bytes(n uint64) []byte {
	if b.err != nil {
		return nil
	}
	if n > uint64(len(b.buf)) {
		b.err = errCorrupt
		return nil
	}
	out := b.buf[:n]
	b.buf = b.buf[n:]
	return out
}

// readRecords decodes a batch written by appendRecords.
func (b *byteReader) readRecords() []slim.Record {
	n := b.uvarint()
	if b.err != nil {
		return nil
	}
	// Guard the allocation: each record costs at least 5 payload bytes.
	if n > uint64(len(b.buf)) {
		b.err = errCorrupt
		return nil
	}
	recs := make([]slim.Record, 0, n)
	prevUnix := int64(0)
	for i := uint64(0); i < n; i++ {
		entity := string(b.bytes(b.uvarint()))
		unix := prevUnix + unzigzag(b.uvarint())
		prevUnix = unix
		lat := float64(unzigzag(b.uvarint())) / latLngScale
		lng := float64(unzigzag(b.uvarint())) / latLngScale
		radius := math.Float64frombits(b.uvarint())
		if b.err != nil {
			return nil
		}
		recs = append(recs, slim.Record{
			Entity:   slim.EntityID(entity),
			LatLng:   geo.LatLng{Lat: lat, Lng: lng},
			Unix:     unix,
			RadiusKm: radius,
		})
	}
	return recs
}

// Batch is one WAL entry: a sequenced record batch bound for one dataset.
type Batch struct {
	Seq  uint64
	Tag  byte // TagE or TagI
	Recs []slim.Record
}

// appendBatch appends the payload form of one WAL batch (framing is the
// WAL's job): uvarint seq | tag byte | records.
func appendBatch(dst []byte, b Batch) []byte {
	dst = binary.AppendUvarint(dst, b.Seq)
	dst = append(dst, b.Tag)
	return appendRecords(dst, b.Recs)
}

// WireBatch is one batch of the binary ingest wire format: the dataset
// tag plus the records, with RecordBytes holding the records' encoded
// form exactly as it will be appended to the WAL (Store.LogEncoded).
type WireBatch struct {
	Tag         byte // TagE or TagI
	RecordBytes []byte
	Recs        []slim.Record
}

// AppendWireBatch appends the binary-ingest wire form of one batch to
// dst: the dataset tag byte followed by the appendRecords encoding. This
// is exactly the WAL batch payload minus its sequence prefix, which is
// what lets the server turn an accepted wire batch into a WAL append
// without re-encoding a single record. Encoding quantizes coordinates to
// the codec's E7 fixed point, so a decoded wire batch is already on the
// QuantizeRecord grid — binary and JSON ingest of the same records
// converge on identical engine state.
func AppendWireBatch(dst []byte, tag byte, recs []slim.Record) []byte {
	dst = append(dst, tag)
	return appendRecords(dst, recs)
}

// DecodeWireBatch decodes one binary-ingest wire batch payload (the
// contents of one request frame). The returned RecordBytes aliases
// payload.
func DecodeWireBatch(payload []byte) (WireBatch, error) {
	if len(payload) == 0 {
		return WireBatch{}, fmt.Errorf("%w: empty batch", errCorrupt)
	}
	b := WireBatch{Tag: payload[0], RecordBytes: payload[1:]}
	if b.Tag != TagE && b.Tag != TagI {
		return WireBatch{}, fmt.Errorf("%w: unknown dataset tag %q", errCorrupt, b.Tag)
	}
	r := &byteReader{buf: b.RecordBytes}
	b.Recs = r.readRecords()
	if r.err != nil {
		return WireBatch{}, r.err
	}
	if len(r.buf) != 0 {
		return WireBatch{}, fmt.Errorf("%w: %d trailing bytes", errCorrupt, len(r.buf))
	}
	return b, nil
}

// decodeBatch decodes a WAL batch payload.
func decodeBatch(payload []byte) (Batch, error) {
	r := &byteReader{buf: payload}
	var b Batch
	b.Seq = r.uvarint()
	tag := r.bytes(1)
	if r.err != nil {
		return Batch{}, r.err
	}
	b.Tag = tag[0]
	if b.Tag != TagE && b.Tag != TagI {
		return Batch{}, fmt.Errorf("%w: unknown dataset tag %q", errCorrupt, b.Tag)
	}
	b.Recs = r.readRecords()
	if r.err != nil {
		return Batch{}, r.err
	}
	if len(r.buf) != 0 {
		return Batch{}, fmt.Errorf("%w: %d trailing bytes", errCorrupt, len(r.buf))
	}
	return b, nil
}
