package storage

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"slim"
)

// TestWireBatchRoundTrip: the binary-ingest wire form must decode back
// to the records the codec reproduces (the QuantizeRecord grid), through
// the same CRC framing the WAL uses.
func TestWireBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	recs := randRecords(rng, 200)

	var body []byte
	body = AppendFrame(body, AppendWireBatch(nil, TagE, recs[:120]))
	body = AppendFrame(body, AppendWireBatch(nil, TagI, recs[120:]))

	var got []slim.Record
	tags := []byte{}
	for len(body) > 0 {
		payload, rest, err := NextFrame(body)
		if err != nil {
			t.Fatal(err)
		}
		body = rest
		b, err := DecodeWireBatch(payload)
		if err != nil {
			t.Fatal(err)
		}
		tags = append(tags, b.Tag)
		got = append(got, b.Recs...)
	}
	if string(tags) != "EI" {
		t.Fatalf("tags = %q, want EI", tags)
	}
	if !reflect.DeepEqual(got, quantizeAll(recs)) {
		t.Fatal("wire round trip did not reproduce the quantized records")
	}
}

func TestDecodeWireBatchErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	good := AppendWireBatch(nil, TagE, randRecords(rng, 3))

	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty payload", nil},
		{"unknown tag", append([]byte{'X'}, good[1:]...)},
		{"trailing bytes", append(append([]byte{}, good...), 0xFF)},
		{"truncated records", good[:len(good)-2]},
	}
	for _, c := range cases {
		if _, err := DecodeWireBatch(c.payload); err == nil {
			t.Errorf("%s: decoded without error", c.name)
		}
	}

	// A frame whose bytes were torn in transit must surface ErrTornFrame.
	framed := AppendFrame(nil, good)
	if _, _, err := NextFrame(framed[:len(framed)-1]); !errors.Is(err, ErrTornFrame) {
		t.Fatalf("torn frame error = %v, want ErrTornFrame", err)
	}
	framed[len(framed)-1] ^= 0xFF
	if _, _, err := NextFrame(framed); !errors.Is(err, ErrTornFrame) {
		t.Fatalf("corrupt frame error = %v, want ErrTornFrame", err)
	}
}

// TestLogEncodedMatchesLog: appending a pre-encoded wire batch
// (LogEncoded, the zero re-encode ingest path) must leave exactly the
// log the record-level API (LogE/LogI) writes — identical replayed
// batches, sequence numbers, tags, and records.
func TestLogEncodedMatchesLog(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	batchesIn := [][]slim.Record{
		randRecords(rng, 50),
		randRecords(rng, 1),
		randRecords(rng, 200),
	}

	replayAll := func(dir string) []Batch {
		var out []Batch
		if _, _, err := ReplayWAL(dir, 0, func(b Batch) error {
			out = append(out, b)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}

	dirA := t.TempDir()
	_, stA, _, err := Recover(dirA, emptyDS("E"), emptyDS("I"), testEngineCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, recs := range batchesIn {
		tag := byte(TagE)
		if i%2 == 1 {
			tag = TagI
		}
		if tag == TagE {
			err = stA.LogE(recs)
		} else {
			err = stA.LogI(recs)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	stA.crashClose() // a clean Close would checkpoint and truncate the WAL

	dirB := t.TempDir()
	_, stB, _, err := Recover(dirB, emptyDS("E"), emptyDS("I"), testEngineCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, recs := range batchesIn {
		tag := byte(TagE)
		if i%2 == 1 {
			tag = TagI
		}
		wire, err := DecodeWireBatch(AppendWireBatch(nil, tag, recs))
		if err != nil {
			t.Fatal(err)
		}
		wait, err := stB.LogEncoded(wire.Tag, wire.RecordBytes, wire.Recs)
		if err != nil {
			t.Fatal(err)
		}
		if err := wait(); err != nil {
			t.Fatal(err)
		}
	}
	stB.crashClose()

	a, b := replayAll(dirA), replayAll(dirB)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("LogEncoded log diverges from LogE/LogI log:\n  %d vs %d batches", len(a), len(b))
	}
	if len(a) != len(batchesIn) {
		t.Fatalf("replayed %d batches, want %d", len(a), len(batchesIn))
	}
}

// TestLogEncodedWaitIsDurable: the wait returned by LogEncoded must not
// resolve before the group-commit window fsyncs the frame.
func TestLogEncodedWaitIsDurable(t *testing.T) {
	dir := t.TempDir()
	_, st, _, err := Recover(dir, emptyDS("E"), emptyDS("I"), testEngineCfg(),
		Options{FsyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	wire, err := DecodeWireBatch(AppendWireBatch(nil, TagE, randRecords(rng, 10)))
	if err != nil {
		t.Fatal(err)
	}
	wait, err := st.LogEncoded(wire.Tag, wire.RecordBytes, wire.Recs)
	if err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	st.crashClose() // durable means surviving a crash right here

	var total int
	if _, _, err := ReplayWAL(dir, 0, func(b Batch) error {
		total += len(b.Recs)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if total != 10 {
		t.Fatalf("replayed %d records after crash, want 10", total)
	}
}
