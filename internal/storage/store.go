package storage

import (
	"encoding/binary"
	"errors"
	"log/slog"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"slim"
	"slim/internal/obs"
)

// DefaultSnapshotEveryRuns is the auto-checkpoint relink cadence.
const DefaultSnapshotEveryRuns = 8

// DefaultSnapshotBytes is the auto-checkpoint WAL-growth trigger (64 MiB
// appended since the last snapshot).
const DefaultSnapshotBytes = 64 << 20

// Options parameterizes a data directory.
type Options struct {
	// FsyncInterval selects the WAL durability policy: 0 fsyncs inline on
	// every append, >0 group-commits on that interval, <0 never fsyncs
	// (see the policy comment in wal.go).
	FsyncInterval time.Duration
	// SegmentBytes is the WAL rotation size (0 = DefaultSegmentBytes).
	SegmentBytes int64
	// SnapshotEveryRuns checkpoints after this many relinks (0 =
	// DefaultSnapshotEveryRuns, <0 = never on run count).
	SnapshotEveryRuns int
	// SnapshotBytes checkpoints once this many WAL bytes were appended
	// since the last snapshot (0 = DefaultSnapshotBytes, <0 = never on
	// bytes).
	SnapshotBytes int64
	// Logger, when set, receives auto-checkpoint failures (which have no
	// caller to report to).
	Logger *slog.Logger
	// Registry, when set, receives the storage metrics (WAL append/fsync
	// latency, logged batch/record/byte counters, snapshot duration and
	// size). A nil Registry wires the metrics to a private, unscraped
	// registry, so instrumentation is always on.
	Registry *obs.Registry
}

func (o Options) snapshotEveryRuns() int {
	if o.SnapshotEveryRuns == 0 {
		return DefaultSnapshotEveryRuns
	}
	return o.SnapshotEveryRuns
}

func (o Options) snapshotBytes() int64 {
	if o.SnapshotBytes == 0 {
		return DefaultSnapshotBytes
	}
	return o.SnapshotBytes
}

// Store is the durable home of one engine's state: it logs every ingest
// batch to the WAL before the engine buffers it, keeps the authoritative
// in-memory copy of the seed datasets and all streamed records, and
// periodically compacts WAL history into an atomic snapshot. It
// implements engine.Persister.
type Store struct {
	dir  string
	opts Options

	mu               sync.Mutex
	wal              *wal
	seedE, seedI     slim.Dataset
	streamE, streamI []slim.Record
	nextSeq          uint64
	lastResult       *resultData
	runsSinceSnap    int
	bytesSinceSnap   int64
	closed           bool

	// snapMu serializes whole checkpoints (auto trigger vs. the manual
	// /v1/snapshot endpoint vs. Close).
	snapMu sync.Mutex
	// autoCP coalesces async auto-checkpoints: at most one in flight.
	autoCP atomic.Bool

	batchesLogged  atomic.Uint64
	recordsLogged  atomic.Uint64
	walBytes       atomic.Int64
	snapshots      atomic.Uint64
	lastSnapSeq    atomic.Uint64
	lastSnapUnixMs atomic.Int64

	snapshotSeconds *obs.Histogram
	snapshotBytes   *obs.Gauge
}

// newWALMetrics registers the WAL latency histograms on reg.
func newWALMetrics(reg *obs.Registry) walMetrics {
	return walMetrics{
		appendSeconds: reg.Histogram("slim_wal_append_seconds",
			"Latency of one WAL append call (framed write, plus the fsync under the inline policy).", nil),
		fsyncSeconds: reg.Histogram("slim_wal_fsync_seconds",
			"Latency of each WAL fsync, whichever policy issued it.", nil),
	}
}

// registerMetrics wires the store's counters into reg. The counter and
// gauge closures read the same atomics /v1/stats reports, so the two
// surfaces can never disagree.
func (s *Store) registerMetrics(reg *obs.Registry) {
	reg.CounterFunc("slim_wal_batches_total",
		"Record batches appended to the WAL since this process opened the directory.",
		s.batchesLogged.Load)
	reg.CounterFunc("slim_wal_records_total",
		"Records appended to the WAL since this process opened the directory.",
		s.recordsLogged.Load)
	reg.CounterFunc("slim_wal_appended_bytes_total",
		"WAL bytes appended since this process opened the directory.",
		func() uint64 { return uint64(s.walBytes.Load()) })
	reg.GaugeFunc("slim_wal_next_seq",
		"Sequence number the next logged batch will carry.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.nextSeq)
		})
	reg.CounterFunc("slim_storage_snapshots_total",
		"Checkpoints completed by this process.", s.snapshots.Load)
	reg.GaugeFunc("slim_storage_last_snapshot_seq",
		"Last WAL sequence covered by the newest checkpoint.",
		func() float64 { return float64(s.lastSnapSeq.Load()) })
	s.snapshotSeconds = reg.Histogram("slim_storage_snapshot_seconds",
		"Duration of one checkpoint: state capture, snapshot write, and WAL truncation.", nil)
	s.snapshotBytes = reg.Gauge("slim_storage_snapshot_bytes",
		"Size of the newest snapshot file.")
}

// LogE durably logs a first-dataset batch (engine.Persister).
func (s *Store) LogE(recs []slim.Record) error { return s.log(TagE, recs) }

// LogI durably logs a second-dataset batch (engine.Persister).
func (s *Store) LogI(recs []slim.Record) error { return s.log(TagI, recs) }

// log appends one batch frame and blocks until it is durable per the
// fsync policy. Records are quantized in place to the codec's fixed
// point first, so the engine's live state is bit-identical to what a
// crash recovery would rebuild.
//
// The in-memory buffers and nextSeq advance before the group-commit
// wait: under fsync-interval > 0 a failed batched fsync therefore
// leaves the store holding a batch the engine rejected. That divergence
// can never reach disk — a failed fsync poisons the WAL (sticky ioErr),
// so every later Append and Checkpoint/Rotate fails and the store is
// effectively dead until restart. Whether the nacked frame survives in
// the OS page cache and replays after restart is the inherent ambiguity
// of a failed fsync; replaying it is the safe side (at-least-once).
func (s *Store) log(tag byte, recs []slim.Record) error {
	for i := range recs {
		recs[i] = QuantizeRecord(recs[i])
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	payload := appendBatch(nil, Batch{Seq: s.nextSeq, Tag: tag, Recs: recs})
	wait, err := s.appendLocked(payload, tag, recs)
	if err != nil {
		return err
	}
	return wait()
}

// LogEncoded durably logs one pre-encoded record batch — the binary
// ingest plane's zero re-encode path. recordBytes is a wire batch's
// record section (storage.WireBatch.RecordBytes), appended to the WAL
// verbatim under a fresh sequence prefix; recs must be its decoded form
// (the codec quantizes at encode time, so they are already on the
// QuantizeRecord grid — see AppendWireBatch). The returned wait blocks
// until the batch is durable per the fsync policy, letting a caller
// append several batches under one group-commit window before waiting.
func (s *Store) LogEncoded(tag byte, recordBytes []byte, recs []slim.Record) (wait func() error, err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	payload := make([]byte, 0, binary.MaxVarintLen64+1+len(recordBytes))
	payload = binary.AppendUvarint(payload, s.nextSeq)
	payload = append(payload, tag)
	payload = append(payload, recordBytes...)
	return s.appendLocked(payload, tag, recs)
}

// appendLocked appends one already-sequenced batch payload to the WAL
// and advances the in-memory state (stream buffers, sequence, counters).
// Called with mu held; unlocks it on every path.
func (s *Store) appendLocked(payload []byte, tag byte, recs []slim.Record) (wait func() error, err error) {
	wait, err = s.wal.Append(payload)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.nextSeq++
	if tag == TagE {
		s.streamE = append(s.streamE, recs...)
	} else {
		s.streamI = append(s.streamI, recs...)
	}
	s.bytesSinceSnap += int64(len(payload)) + frameHeaderLen
	s.mu.Unlock()

	s.batchesLogged.Add(1)
	s.recordsLogged.Add(uint64(len(recs)))
	s.walBytes.Add(int64(len(payload)) + frameHeaderLen)
	return wait, nil
}

// AfterRun captures the published result and auto-checkpoints when the
// relink-count or WAL-growth trigger fires (engine.Persister).
func (s *Store) AfterRun(res slim.Result, version uint64) {
	s.mu.Lock()
	s.lastResult = &resultData{
		links:        res.Links,
		threshold:    res.Threshold,
		method:       res.ThresholdMethod,
		spatialLevel: res.SpatialLevel,
		version:      version,
	}
	s.runsSinceSnap++
	need := false
	if every := s.opts.snapshotEveryRuns(); every > 0 && s.runsSinceSnap >= every {
		need = true
	}
	if maxBytes := s.opts.snapshotBytes(); maxBytes > 0 && s.bytesSinceSnap >= maxBytes {
		need = true
	}
	s.mu.Unlock()
	if !need {
		return
	}
	// Checkpoint asynchronously: AfterRun is called from Engine.Run under
	// its run lock, and a full-state snapshot write must not stall the
	// relink publish path. At most one auto-checkpoint runs at a time;
	// growth during it stays counted (Checkpoint retires only what it
	// captured), so the next relink re-triggers if needed. Store.Close's
	// final checkpoint serializes behind an in-flight one via snapMu.
	if !s.autoCP.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.autoCP.Store(false)
		if _, err := s.Checkpoint(); err != nil && !errors.Is(err, ErrClosed) && s.opts.Logger != nil {
			s.opts.Logger.Error("auto checkpoint failed", "component", "storage", "error", err)
		}
	}()
}

// CheckpointInfo describes one completed checkpoint.
type CheckpointInfo struct {
	Path            string
	LastSeq         uint64
	SeedRecords     int
	StreamedRecords int
}

// Checkpoint writes a snapshot of the current state and truncates WAL
// segments it covers. Safe for concurrent use; checkpoints serialize.
func (s *Store) Checkpoint() (CheckpointInfo, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	start := time.Now()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return CheckpointInfo{}, ErrClosed
	}
	d := &snapshotData{
		lastSeq: s.nextSeq - 1,
		seedE:   s.seedE,
		seedI:   s.seedI,
		streamE: append([]slim.Record(nil), s.streamE...),
		streamI: append([]slim.Record(nil), s.streamI...),
		result:  s.lastResult,
	}
	// Rotate so every covered frame lives in a segment below keepIdx;
	// rotation is atomic with the state capture (both under mu), so the
	// new segment holds only batches the snapshot does not cover.
	keepIdx, err := s.wal.Rotate()
	if err != nil {
		s.mu.Unlock()
		return CheckpointInfo{}, err
	}
	coveredRuns, coveredBytes := s.runsSinceSnap, s.bytesSinceSnap
	s.mu.Unlock()

	path, err := writeSnapshot(s.dir, d)
	if err != nil {
		return CheckpointInfo{}, err
	}
	// Retire the covered trigger amounts only now that the snapshot is
	// durable: a failed attempt keeps them armed so the next relink
	// retries instead of waiting out another full trigger window, and
	// anything logged while the snapshot was being written still counts
	// toward the next one.
	s.mu.Lock()
	s.runsSinceSnap -= coveredRuns
	s.bytesSinceSnap -= coveredBytes
	s.mu.Unlock()
	// Truncate history only after the covering snapshot is durable.
	if err := removeSnapshotsBefore(s.dir, d.lastSeq); err != nil {
		return CheckpointInfo{}, err
	}
	if err := removeSegmentsBefore(s.dir, keepIdx); err != nil {
		return CheckpointInfo{}, err
	}
	s.snapshots.Add(1)
	s.lastSnapSeq.Store(d.lastSeq)
	s.lastSnapUnixMs.Store(time.Now().UnixMilli())
	if s.snapshotSeconds != nil {
		s.snapshotSeconds.ObserveSince(start)
		if fi, err := os.Stat(path); err == nil {
			s.snapshotBytes.Set(float64(fi.Size()))
		}
	}
	return CheckpointInfo{
		Path:            path,
		LastSeq:         d.lastSeq,
		SeedRecords:     len(d.seedE.Records) + len(d.seedI.Records),
		StreamedRecords: len(d.streamE) + len(d.streamI),
	}, nil
}

// Stats is a point-in-time snapshot of the storage layer's state.
type Stats struct {
	Dir string
	// FsyncIntervalMs reflects the WAL durability policy (see Options).
	FsyncIntervalMs float64
	// BatchesLogged / RecordsLogged / WALBytesAppended count WAL appends
	// since this process opened the directory.
	BatchesLogged    uint64
	RecordsLogged    uint64
	WALBytesAppended int64
	// WALSegments / WALDiskBytes describe the on-disk log right now.
	WALSegments  int
	WALDiskBytes int64
	// Snapshots counts checkpoints completed by this process;
	// LastSnapshotSeq / LastSnapshotUnixMs describe the newest one.
	Snapshots          uint64
	LastSnapshotSeq    uint64
	LastSnapshotUnixMs int64
	// NextSeq is the sequence number the next logged batch will carry.
	NextSeq uint64
}

// Stats reports storage counters plus a directory scan of live segments.
func (s *Store) Stats() Stats {
	st := Stats{
		Dir:                s.dir,
		FsyncIntervalMs:    float64(s.opts.FsyncInterval.Microseconds()) / 1000,
		BatchesLogged:      s.batchesLogged.Load(),
		RecordsLogged:      s.recordsLogged.Load(),
		WALBytesAppended:   s.walBytes.Load(),
		Snapshots:          s.snapshots.Load(),
		LastSnapshotSeq:    s.lastSnapSeq.Load(),
		LastSnapshotUnixMs: s.lastSnapUnixMs.Load(),
	}
	s.mu.Lock()
	st.NextSeq = s.nextSeq
	s.mu.Unlock()
	if segs, err := listSegments(s.dir); err == nil {
		st.WALSegments = len(segs)
		for _, seg := range segs {
			if fi, err := os.Stat(seg.path); err == nil {
				st.WALDiskBytes += fi.Size()
			}
		}
	}
	return st
}

// Close takes a final checkpoint (so a clean restart replays nothing)
// and seals the WAL. Idempotent.
func (s *Store) Close() error {
	_, cpErr := s.Checkpoint()
	if errors.Is(cpErr, ErrClosed) {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return cpErr
	}
	s.closed = true
	s.mu.Unlock()
	err := s.wal.Close()
	if cpErr != nil {
		return cpErr
	}
	return err
}

// crashClose abandons the store without a final checkpoint — test
// helper simulating a crash (the WAL file is closed so tests on
// platforms with mandatory locks can truncate it, but no snapshot is
// taken and no segment is truncated).
func (s *Store) crashClose() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	_ = s.wal.Close()
}
