package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"slim"
	"slim/internal/obs"
)

// ErrDegraded is returned by write operations while the store is in
// degraded read-only mode: a WAL append or fsync failed persistently,
// the active segment is quarantined, and a background loop is retrying
// to reopen a fresh segment with capped exponential backoff. Reads
// (links, stats, metrics) keep serving; writers should surface 503 +
// Retry-After, distinct from admission-control shedding (429).
var ErrDegraded = errors.New("storage: degraded (WAL write path down, reopen in progress)")

// DefaultReopenBackoff is the initial degraded-mode reopen retry delay.
const DefaultReopenBackoff = 50 * time.Millisecond

// DefaultReopenMaxBackoff caps the degraded-mode reopen retry delay.
const DefaultReopenMaxBackoff = 5 * time.Second

// DefaultSnapshotEveryRuns is the auto-checkpoint relink cadence.
const DefaultSnapshotEveryRuns = 8

// DefaultSnapshotBytes is the auto-checkpoint WAL-growth trigger (64 MiB
// appended since the last snapshot).
const DefaultSnapshotBytes = 64 << 20

// Options parameterizes a data directory.
type Options struct {
	// FsyncInterval selects the WAL durability policy: 0 fsyncs inline on
	// every append, >0 group-commits on that interval, <0 never fsyncs
	// (see the policy comment in wal.go).
	FsyncInterval time.Duration
	// SegmentBytes is the WAL rotation size (0 = DefaultSegmentBytes).
	SegmentBytes int64
	// SnapshotEveryRuns checkpoints after this many relinks (0 =
	// DefaultSnapshotEveryRuns, <0 = never on run count).
	SnapshotEveryRuns int
	// SnapshotBytes checkpoints once this many WAL bytes were appended
	// since the last snapshot (0 = DefaultSnapshotBytes, <0 = never on
	// bytes).
	SnapshotBytes int64
	// Logger, when set, receives auto-checkpoint failures (which have no
	// caller to report to).
	Logger *slog.Logger
	// Registry, when set, receives the storage metrics (WAL append/fsync
	// latency, logged batch/record/byte counters, snapshot duration and
	// size). A nil Registry wires the metrics to a private, unscraped
	// registry, so instrumentation is always on.
	Registry *obs.Registry
	// FS overrides the filesystem implementation (nil = OSFS). Tests use
	// NewFaultFS to fail any Write/Sync/Rename/Close at any call index.
	FS FS
	// OnRelog, when set, is called once per quarantined batch that a
	// successful degraded-mode reopen re-logged into the fresh segment.
	// These are batches the store buffered but whose group-commit fsync
	// failed — the engine rejected them at ingest time, so the serving
	// layer uses this hook to re-buffer them and keep engine state
	// converged with the store (at-least-once; see reopenLoop).
	OnRelog func(tag byte, recs []slim.Record)
	// ReopenBackoff is the initial degraded-mode reopen retry delay
	// (0 = DefaultReopenBackoff); it doubles per attempt up to
	// ReopenMaxBackoff (0 = DefaultReopenMaxBackoff).
	ReopenBackoff    time.Duration
	ReopenMaxBackoff time.Duration
}

func (o Options) snapshotEveryRuns() int {
	if o.SnapshotEveryRuns == 0 {
		return DefaultSnapshotEveryRuns
	}
	return o.SnapshotEveryRuns
}

func (o Options) snapshotBytes() int64 {
	if o.SnapshotBytes == 0 {
		return DefaultSnapshotBytes
	}
	return o.SnapshotBytes
}

func (o Options) fs() FS {
	if o.FS == nil {
		return OSFS
	}
	return o.FS
}

func (o Options) reopenBackoff() time.Duration {
	if o.ReopenBackoff <= 0 {
		return DefaultReopenBackoff
	}
	return o.ReopenBackoff
}

func (o Options) reopenMaxBackoff() time.Duration {
	if o.ReopenMaxBackoff <= 0 {
		return DefaultReopenMaxBackoff
	}
	return o.ReopenMaxBackoff
}

// Store is the durable home of one engine's state: it logs every ingest
// batch to the WAL before the engine buffers it, keeps the authoritative
// in-memory copy of the seed datasets and all streamed records, and
// periodically compacts WAL history into an atomic snapshot. It
// implements engine.Persister.
type Store struct {
	dir  string
	opts Options
	fs   FS
	walm walMetrics

	mu               sync.Mutex
	wal              *wal
	seedE, seedI     slim.Dataset
	streamE, streamI []slim.Record
	nextSeq          uint64
	lastResult       *resultData
	runsSinceSnap    int
	bytesSinceSnap   int64
	closed           bool

	// Degraded read-only mode: set by the first persistent WAL failure,
	// cleared when the supervised reopen loop brings a fresh segment up.
	// The health tracker carries the cause and since-when for /healthz.
	degraded      atomic.Bool
	health        *obs.Health
	reopenRetries atomic.Uint64
	stopReopen    chan struct{}
	stopOnce      sync.Once

	// snapMu serializes whole checkpoints (auto trigger vs. the manual
	// /v1/snapshot endpoint vs. Close).
	snapMu sync.Mutex
	// autoCP coalesces async auto-checkpoints: at most one in flight.
	autoCP atomic.Bool

	batchesLogged  atomic.Uint64
	recordsLogged  atomic.Uint64
	walBytes       atomic.Int64
	snapshots      atomic.Uint64
	lastSnapSeq    atomic.Uint64
	lastSnapUnixMs atomic.Int64

	snapshotSeconds *obs.Histogram
	snapshotBytes   *obs.Gauge
}

// newWALMetrics registers the WAL latency histograms on reg.
func newWALMetrics(reg *obs.Registry) walMetrics {
	return walMetrics{
		appendSeconds: reg.Histogram("slim_wal_append_seconds",
			"Latency of one WAL append call (framed write, plus the fsync under the inline policy).", nil),
		fsyncSeconds: reg.Histogram("slim_wal_fsync_seconds",
			"Latency of each WAL fsync, whichever policy issued it.", nil),
	}
}

// registerMetrics wires the store's counters into reg. The counter and
// gauge closures read the same atomics /v1/stats reports, so the two
// surfaces can never disagree.
func (s *Store) registerMetrics(reg *obs.Registry) {
	reg.CounterFunc("slim_wal_batches_total",
		"Record batches appended to the WAL since this process opened the directory.",
		s.batchesLogged.Load)
	reg.CounterFunc("slim_wal_records_total",
		"Records appended to the WAL since this process opened the directory.",
		s.recordsLogged.Load)
	reg.CounterFunc("slim_wal_appended_bytes_total",
		"WAL bytes appended since this process opened the directory.",
		func() uint64 { return uint64(s.walBytes.Load()) })
	reg.GaugeFunc("slim_wal_next_seq",
		"Sequence number the next logged batch will carry.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.nextSeq)
		})
	reg.CounterFunc("slim_storage_reopen_retries_total",
		"Degraded-mode WAL reopen attempts (successful or not) since this process started.",
		s.reopenRetries.Load)
	reg.CounterFunc("slim_storage_snapshots_total",
		"Checkpoints completed by this process.", s.snapshots.Load)
	reg.GaugeFunc("slim_storage_last_snapshot_seq",
		"Last WAL sequence covered by the newest checkpoint.",
		func() float64 { return float64(s.lastSnapSeq.Load()) })
	s.snapshotSeconds = reg.Histogram("slim_storage_snapshot_seconds",
		"Duration of one checkpoint: state capture, snapshot write, and WAL truncation.", nil)
	s.snapshotBytes = reg.Gauge("slim_storage_snapshot_bytes",
		"Size of the newest snapshot file.")
}

// LogE durably logs a first-dataset batch (engine.Persister).
func (s *Store) LogE(recs []slim.Record) error { return s.log(TagE, recs) }

// LogI durably logs a second-dataset batch (engine.Persister).
func (s *Store) LogI(recs []slim.Record) error { return s.log(TagI, recs) }

// log appends one batch frame and blocks until it is durable per the
// fsync policy. Records are quantized in place to the codec's fixed
// point first, so the engine's live state is bit-identical to what a
// crash recovery would rebuild.
//
// The in-memory buffers and nextSeq advance before the group-commit
// wait: under fsync-interval > 0 a failed batched fsync therefore
// leaves the store holding a batch the engine rejected. That divergence
// can never reach disk — a failed fsync poisons the WAL (sticky ioErr),
// so every later Append and Checkpoint/Rotate on it fails; the store
// flips to degraded read-only mode and a background loop quarantines
// the poisoned segment and reopens a fresh one, re-logging exactly
// these buffered-but-nacked batches so the divergence heals instead of
// persisting (at-least-once — never trust a failed fsync).
func (s *Store) log(tag byte, recs []slim.Record) error {
	for i := range recs {
		recs[i] = QuantizeRecord(recs[i])
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.degraded.Load() {
		s.mu.Unlock()
		return ErrDegraded
	}
	payload := appendBatch(nil, Batch{Seq: s.nextSeq, Tag: tag, Recs: recs})
	wait, err := s.appendLocked(payload, tag, recs)
	if err != nil {
		return err
	}
	return wait()
}

// LogEncoded durably logs one pre-encoded record batch — the binary
// ingest plane's zero re-encode path. recordBytes is a wire batch's
// record section (storage.WireBatch.RecordBytes), appended to the WAL
// verbatim under a fresh sequence prefix; recs must be its decoded form
// (the codec quantizes at encode time, so they are already on the
// QuantizeRecord grid — see AppendWireBatch). The returned wait blocks
// until the batch is durable per the fsync policy, letting a caller
// append several batches under one group-commit window before waiting.
func (s *Store) LogEncoded(tag byte, recordBytes []byte, recs []slim.Record) (wait func() error, err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.degraded.Load() {
		s.mu.Unlock()
		return nil, ErrDegraded
	}
	payload := make([]byte, 0, binary.MaxVarintLen64+1+len(recordBytes))
	payload = binary.AppendUvarint(payload, s.nextSeq)
	payload = append(payload, tag)
	payload = append(payload, recordBytes...)
	return s.appendLocked(payload, tag, recs)
}

// appendLocked appends one already-sequenced batch payload to the WAL
// and advances the in-memory state (stream buffers, sequence, counters).
// Called with mu held; unlocks it on every path. Any WAL failure — at
// the append itself or later at the group-commit wait — triggers the
// degraded-mode transition, and the error the caller sees is marked
// ErrDegraded so the serving layer can answer 503 + Retry-After.
func (s *Store) appendLocked(payload []byte, tag byte, recs []slim.Record) (wait func() error, err error) {
	wait, err = s.wal.Append(payload)
	if err != nil {
		s.mu.Unlock()
		return nil, s.failWrite(err)
	}
	s.nextSeq++
	if tag == TagE {
		s.streamE = append(s.streamE, recs...)
	} else {
		s.streamI = append(s.streamI, recs...)
	}
	s.bytesSinceSnap += int64(len(payload)) + frameHeaderLen
	s.mu.Unlock()

	s.batchesLogged.Add(1)
	s.recordsLogged.Add(uint64(len(recs)))
	s.walBytes.Add(int64(len(payload)) + frameHeaderLen)
	walWait := wait
	return func() error {
		if err := walWait(); err != nil {
			return s.failWrite(err)
		}
		return nil
	}, nil
}

// failWrite reacts to a WAL write-path error: it starts the degraded
// episode (idempotent) and tags the returned error with ErrDegraded so
// errors.Is(err, ErrDegraded) holds for the caller. A plain ErrClosed
// (clean shutdown) passes through untouched.
func (s *Store) failWrite(cause error) error {
	if cause == nil {
		return nil
	}
	s.degrade(cause)
	if s.degraded.Load() {
		return fmt.Errorf("%w: %v", ErrDegraded, cause)
	}
	return cause
}

// degrade flips the store into degraded read-only mode and starts the
// supervised reopen loop. Idempotent; a clean-shutdown ErrClosed never
// degrades.
func (s *Store) degrade(cause error) {
	if cause == nil || errors.Is(cause, ErrClosed) {
		return
	}
	if !s.degraded.CompareAndSwap(false, true) {
		return
	}
	s.health.Degrade(cause.Error())
	if s.opts.Logger != nil {
		s.opts.Logger.Error("storage degraded: WAL write path failed; quarantining segment and reopening",
			"component", "storage", "error", cause)
	}
	go s.reopenLoop()
}

// reopenLoop is the degraded-mode supervisor: it seals the poisoned
// WAL, captures its quarantine state once, and retries tryReopen with
// capped exponential backoff until the store is healthy again (or
// closed). The quarantine state is immutable after the sticky ioErr, so
// capturing it once is safe across retries.
func (s *Store) reopenLoop() {
	s.mu.Lock()
	old := s.wal
	s.mu.Unlock()
	_ = old.Close()
	segIdx, synced, quarantined := old.failState()

	backoff := s.opts.reopenBackoff()
	maxBackoff := s.opts.reopenMaxBackoff()
	for {
		select {
		case <-s.stopReopen:
			return
		case <-time.After(backoff):
		}
		if s.tryReopen(segIdx, synced, quarantined) {
			return
		}
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// tryReopen is one degraded-mode repair attempt. Reports true when the
// loop should stop (healthy again, or the store closed underneath it).
//
// The repair protocol:
//
//  1. Remove segments above the quarantined one — they can only be
//     partial fresh segments left by earlier failed attempts, and their
//     re-logged frames would collide with this attempt's on replay.
//  2. Truncate the quarantined segment to its last fsync-covered byte:
//     everything past it is non-durable (the fsyncgate rule — a failed
//     fsync says nothing about what reached the platter), so replay
//     must never see those bytes.
//  3. Open a fresh segment one index up and re-log the quarantined
//     batches — appends the store acknowledged in memory whose covering
//     fsync failed — from our own buffers, verbatim with their original
//     sequence numbers, then wait for their durability.
//  4. Swap the WAL in, flip healthy, and hand the re-logged batches to
//     Options.OnRelog so the engine re-buffers what it nacked.
func (s *Store) tryReopen(segIdx uint64, synced int64, quarantined [][]byte) bool {
	s.reopenRetries.Add(1)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return true
	}
	s.mu.Unlock()

	fail := func(step string, err error) bool {
		if s.opts.Logger != nil {
			s.opts.Logger.Warn("storage reopen attempt failed",
				"component", "storage", "step", step, "error", err,
				"retries", s.reopenRetries.Load())
		}
		return false
	}

	segs, err := listSegments(s.fs, s.dir)
	if err != nil {
		return fail("list segments", err)
	}
	for _, seg := range segs {
		if seg.index > segIdx {
			if err := s.fs.Remove(seg.path); err != nil {
				return fail("remove partial segment", err)
			}
		}
	}
	segPath := filepath.Join(s.dir, segName(segIdx))
	if err := s.fs.Truncate(segPath, synced); err != nil && !os.IsNotExist(err) {
		return fail("truncate quarantined segment", err)
	}
	w, err := openWAL(s.fs, s.dir, segIdx+1, s.opts.SegmentBytes, s.opts.FsyncInterval, s.walm)
	if err != nil {
		return fail("open fresh segment", err)
	}
	waits := make([]func() error, 0, len(quarantined))
	for _, payload := range quarantined {
		wait, err := w.Append(payload)
		if err != nil {
			_ = w.Close()
			return fail("re-log quarantined batch", err)
		}
		waits = append(waits, wait)
	}
	for _, wait := range waits {
		if err := wait(); err != nil {
			_ = w.Close()
			return fail("fsync re-logged batches", err)
		}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = w.Close()
		return true
	}
	s.wal = w
	s.mu.Unlock()
	// Order matters: the fresh WAL must be visible before writers stop
	// seeing ErrDegraded.
	s.degraded.Store(false)
	s.health.Recover()
	if s.opts.Logger != nil {
		s.opts.Logger.Info("storage recovered: fresh WAL segment open",
			"component", "storage", "segment", segIdx+1,
			"relogged_batches", len(quarantined), "retries", s.reopenRetries.Load())
	}
	if cb := s.opts.OnRelog; cb != nil {
		for _, payload := range quarantined {
			if b, err := decodeBatch(payload); err == nil {
				cb(b.Tag, b.Recs)
			}
		}
	}
	return true
}

// Degraded reports whether the store is in degraded read-only mode.
func (s *Store) Degraded() bool { return s.degraded.Load() }

// Health returns the storage failure domain's state plus the active
// episode's cause and start time (zero values when healthy).
func (s *Store) Health() (state obs.HealthState, cause string, since time.Time) {
	return s.health.State()
}

// AfterRun captures the published result and auto-checkpoints when the
// relink-count or WAL-growth trigger fires (engine.Persister).
func (s *Store) AfterRun(res slim.Result, version uint64) {
	s.mu.Lock()
	s.lastResult = &resultData{
		links:        res.Links,
		threshold:    res.Threshold,
		method:       res.ThresholdMethod,
		spatialLevel: res.SpatialLevel,
		version:      version,
	}
	s.runsSinceSnap++
	need := false
	if every := s.opts.snapshotEveryRuns(); every > 0 && s.runsSinceSnap >= every {
		need = true
	}
	if maxBytes := s.opts.snapshotBytes(); maxBytes > 0 && s.bytesSinceSnap >= maxBytes {
		need = true
	}
	s.mu.Unlock()
	if s.degraded.Load() {
		// The WAL is down; a checkpoint would only fail. The trigger
		// amounts stay armed, so the next relink after recovery retries.
		return
	}
	if !need {
		return
	}
	// Checkpoint asynchronously: AfterRun is called from Engine.Run under
	// its run lock, and a full-state snapshot write must not stall the
	// relink publish path. At most one auto-checkpoint runs at a time;
	// growth during it stays counted (Checkpoint retires only what it
	// captured), so the next relink re-triggers if needed. Store.Close's
	// final checkpoint serializes behind an in-flight one via snapMu.
	if !s.autoCP.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.autoCP.Store(false)
		if _, err := s.Checkpoint(); err != nil && !errors.Is(err, ErrClosed) && s.opts.Logger != nil {
			s.opts.Logger.Error("auto checkpoint failed", "component", "storage", "error", err)
		}
	}()
}

// CheckpointInfo describes one completed checkpoint.
type CheckpointInfo struct {
	Path            string
	LastSeq         uint64
	SeedRecords     int
	StreamedRecords int
}

// Checkpoint writes a snapshot of the current state and truncates WAL
// segments it covers. Safe for concurrent use; checkpoints serialize.
func (s *Store) Checkpoint() (CheckpointInfo, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	start := time.Now()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return CheckpointInfo{}, ErrClosed
	}
	if s.degraded.Load() {
		s.mu.Unlock()
		return CheckpointInfo{}, ErrDegraded
	}
	d := &snapshotData{
		lastSeq: s.nextSeq - 1,
		seedE:   s.seedE,
		seedI:   s.seedI,
		streamE: append([]slim.Record(nil), s.streamE...),
		streamI: append([]slim.Record(nil), s.streamI...),
		result:  s.lastResult,
	}
	// Rotate so every covered frame lives in a segment below keepIdx;
	// rotation is atomic with the state capture (both under mu), so the
	// new segment holds only batches the snapshot does not cover.
	keepIdx, err := s.wal.Rotate()
	if err != nil {
		s.mu.Unlock()
		return CheckpointInfo{}, s.failWrite(err)
	}
	coveredRuns, coveredBytes := s.runsSinceSnap, s.bytesSinceSnap
	s.mu.Unlock()

	path, err := writeSnapshot(s.fs, s.dir, d)
	if err != nil {
		return CheckpointInfo{}, err
	}
	// Retire the covered trigger amounts only now that the snapshot is
	// durable: a failed attempt keeps them armed so the next relink
	// retries instead of waiting out another full trigger window, and
	// anything logged while the snapshot was being written still counts
	// toward the next one.
	s.mu.Lock()
	s.runsSinceSnap -= coveredRuns
	s.bytesSinceSnap -= coveredBytes
	s.mu.Unlock()
	// Truncate history only after the covering snapshot is durable.
	if err := removeSnapshotsBefore(s.fs, s.dir, d.lastSeq); err != nil {
		return CheckpointInfo{}, err
	}
	if err := removeSegmentsBefore(s.fs, s.dir, keepIdx); err != nil {
		return CheckpointInfo{}, err
	}
	s.snapshots.Add(1)
	s.lastSnapSeq.Store(d.lastSeq)
	s.lastSnapUnixMs.Store(time.Now().UnixMilli())
	if s.snapshotSeconds != nil {
		s.snapshotSeconds.ObserveSince(start)
		if fi, err := s.fs.Stat(path); err == nil {
			s.snapshotBytes.Set(float64(fi.Size()))
		}
	}
	return CheckpointInfo{
		Path:            path,
		LastSeq:         d.lastSeq,
		SeedRecords:     len(d.seedE.Records) + len(d.seedI.Records),
		StreamedRecords: len(d.streamE) + len(d.streamI),
	}, nil
}

// Stats is a point-in-time snapshot of the storage layer's state.
type Stats struct {
	Dir string
	// FsyncIntervalMs reflects the WAL durability policy (see Options).
	FsyncIntervalMs float64
	// BatchesLogged / RecordsLogged / WALBytesAppended count WAL appends
	// since this process opened the directory.
	BatchesLogged    uint64
	RecordsLogged    uint64
	WALBytesAppended int64
	// WALSegments / WALDiskBytes describe the on-disk log right now.
	WALSegments  int
	WALDiskBytes int64
	// Snapshots counts checkpoints completed by this process;
	// LastSnapshotSeq / LastSnapshotUnixMs describe the newest one.
	Snapshots          uint64
	LastSnapshotSeq    uint64
	LastSnapshotUnixMs int64
	// NextSeq is the sequence number the next logged batch will carry.
	NextSeq uint64
	// Health is the storage failure domain's state ("healthy" or
	// "degraded"); DegradedSinceUnixMs and DegradedCause describe the
	// active episode (zero/empty when healthy). ReopenRetries counts
	// degraded-mode WAL reopen attempts since this process started.
	Health              string
	DegradedCause       string
	DegradedSinceUnixMs int64
	ReopenRetries       uint64
}

// Stats reports storage counters plus a directory scan of live segments.
func (s *Store) Stats() Stats {
	st := Stats{
		Dir:                s.dir,
		FsyncIntervalMs:    float64(s.opts.FsyncInterval.Microseconds()) / 1000,
		BatchesLogged:      s.batchesLogged.Load(),
		RecordsLogged:      s.recordsLogged.Load(),
		WALBytesAppended:   s.walBytes.Load(),
		Snapshots:          s.snapshots.Load(),
		LastSnapshotSeq:    s.lastSnapSeq.Load(),
		LastSnapshotUnixMs: s.lastSnapUnixMs.Load(),
		ReopenRetries:      s.reopenRetries.Load(),
	}
	state, cause, since := s.health.State()
	st.Health = state.String()
	st.DegradedCause = cause
	if !since.IsZero() {
		st.DegradedSinceUnixMs = since.UnixMilli()
	}
	s.mu.Lock()
	st.NextSeq = s.nextSeq
	s.mu.Unlock()
	if segs, err := listSegments(s.fs, s.dir); err == nil {
		st.WALSegments = len(segs)
		for _, seg := range segs {
			if fi, err := s.fs.Stat(seg.path); err == nil {
				st.WALDiskBytes += fi.Size()
			}
		}
	}
	return st
}

// Close takes a final checkpoint (so a clean restart replays nothing)
// and seals the WAL. A store closed while degraded returns ErrDegraded:
// the final checkpoint could not be taken, so the next boot replays the
// WAL (including any re-logged quarantine). Idempotent.
func (s *Store) Close() error {
	_, cpErr := s.Checkpoint()
	if errors.Is(cpErr, ErrClosed) {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return cpErr
	}
	s.closed = true
	w := s.wal
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stopReopen) })
	err := w.Close()
	if cpErr != nil {
		return cpErr
	}
	return err
}

// crashClose abandons the store without a final checkpoint — test
// helper simulating a crash (the WAL file is closed so tests on
// platforms with mandatory locks can truncate it, but no snapshot is
// taken and no segment is truncated).
func (s *Store) crashClose() {
	s.mu.Lock()
	s.closed = true
	w := s.wal
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stopReopen) })
	_ = w.Close()
}
