package storage

import (
	"os"

	"slim/internal/fault"
)

// Fault-injection site names of the FS seam. Every FS method hits its
// site once per call (before delegating), and every File method hits
// its site once per call on any file the FS opened — so a Rule with
// After=k fails exactly the k+1-th call of that kind, which is how the
// failure sweeps enumerate the whole I/O footprint.
const (
	SiteFSOpenFile   = "fs.openfile"
	SiteFSCreateTemp = "fs.createtemp"
	SiteFSRename     = "fs.rename"
	SiteFSRemove     = "fs.remove"
	SiteFSTruncate   = "fs.truncate"
	SiteFSReadDir    = "fs.readdir"
	SiteFSReadFile   = "fs.readfile"
	SiteFSStat       = "fs.stat"
	SiteFSMkdirAll   = "fs.mkdirall"
	SiteFSSyncDir    = "fs.syncdir"
	SiteFSWrite      = "fs.write"
	SiteFSSync       = "fs.sync"
	SiteFSClose      = "fs.close"
)

// FaultSites lists every FS-seam site (sweep enumeration).
var FaultSites = []string{
	SiteFSOpenFile, SiteFSCreateTemp, SiteFSRename, SiteFSRemove,
	SiteFSTruncate, SiteFSReadDir, SiteFSReadFile, SiteFSStat,
	SiteFSMkdirAll, SiteFSSyncDir, SiteFSWrite, SiteFSSync, SiteFSClose,
}

// NewFaultFS wraps inner so every operation first consults the
// injector. With a nil or unarmed injector it is a passthrough; armed
// rules make the wrapped call fail (or stall, or panic) without
// touching the real filesystem on error injection — the byte stream
// reaching disk through a quiet FaultFS is identical to OSFS's, which
// the parity test pins.
func NewFaultFS(inner FS, inj *fault.Injector) FS {
	return &faultFS{inner: inner, inj: inj}
}

type faultFS struct {
	inner FS
	inj   *fault.Injector
}

func (f *faultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := f.inj.Hit(SiteFSOpenFile); err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, inj: f.inj}, nil
}

func (f *faultFS) CreateTemp(dir, pattern string) (File, error) {
	if err := f.inj.Hit(SiteFSCreateTemp); err != nil {
		return nil, &os.PathError{Op: "createtemp", Path: dir, Err: err}
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, inj: f.inj}, nil
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	if err := f.inj.Hit(SiteFSRename); err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *faultFS) Remove(name string) error {
	if err := f.inj.Hit(SiteFSRemove); err != nil {
		return &os.PathError{Op: "remove", Path: name, Err: err}
	}
	return f.inner.Remove(name)
}

func (f *faultFS) Truncate(name string, size int64) error {
	if err := f.inj.Hit(SiteFSTruncate); err != nil {
		return &os.PathError{Op: "truncate", Path: name, Err: err}
	}
	return f.inner.Truncate(name, size)
}

func (f *faultFS) ReadDir(name string) ([]os.DirEntry, error) {
	if err := f.inj.Hit(SiteFSReadDir); err != nil {
		return nil, &os.PathError{Op: "readdir", Path: name, Err: err}
	}
	return f.inner.ReadDir(name)
}

func (f *faultFS) ReadFile(name string) ([]byte, error) {
	if err := f.inj.Hit(SiteFSReadFile); err != nil {
		return nil, &os.PathError{Op: "read", Path: name, Err: err}
	}
	return f.inner.ReadFile(name)
}

func (f *faultFS) Stat(name string) (os.FileInfo, error) {
	if err := f.inj.Hit(SiteFSStat); err != nil {
		return nil, &os.PathError{Op: "stat", Path: name, Err: err}
	}
	return f.inner.Stat(name)
}

func (f *faultFS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.inj.Hit(SiteFSMkdirAll); err != nil {
		return &os.PathError{Op: "mkdir", Path: path, Err: err}
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *faultFS) SyncDir(dir string) error {
	if err := f.inj.Hit(SiteFSSyncDir); err != nil {
		return &os.PathError{Op: "syncdir", Path: dir, Err: err}
	}
	return f.inner.SyncDir(dir)
}

type faultFile struct {
	inner File
	inj   *fault.Injector
}

func (f *faultFile) Write(p []byte) (int, error) {
	if err := f.inj.Hit(SiteFSWrite); err != nil {
		return 0, &os.PathError{Op: "write", Path: f.inner.Name(), Err: err}
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if err := f.inj.Hit(SiteFSSync); err != nil {
		return &os.PathError{Op: "sync", Path: f.inner.Name(), Err: err}
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error {
	if err := f.inj.Hit(SiteFSClose); err != nil {
		// The real file is still closed: an injected close failure models
		// close(2) reporting a deferred write error, after which the
		// descriptor is gone either way.
		_ = f.inner.Close()
		return &os.PathError{Op: "close", Path: f.inner.Name(), Err: err}
	}
	return f.inner.Close()
}

func (f *faultFile) Name() string { return f.inner.Name() }
