package storage

import (
	"fmt"

	"slim"
	"slim/internal/engine"
	"slim/internal/obs"
)

// RecoverInfo describes what recovery found in a data directory.
type RecoverInfo struct {
	// Recovered is true when the directory held prior state (a snapshot
	// and/or WAL batches); the caller's seed datasets were ignored then.
	Recovered bool
	// SnapshotSeq is the last WAL sequence covered by the loaded
	// snapshot (0 when none was found).
	SnapshotSeq uint64
	// ReplayedBatches / ReplayedRecords count the WAL tail replayed on
	// top of the snapshot.
	ReplayedBatches int
	ReplayedRecords int
	// SeedRecords / StreamedRecords describe the recovered engine state.
	SeedRecords     int
	StreamedRecords int
	// HasResult is true when a persisted linkage result was installed,
	// so queries can be served before the first fresh relink.
	HasResult bool
}

// Recover opens (or initializes) a data directory and returns a ready
// engine wired to its Store.
//
// On an empty directory the caller's seed datasets become the persistent
// seeds. On a directory with prior state the persisted seeds win (the
// caller's are ignored — flags cannot silently fork a data directory),
// the newest valid snapshot is loaded, the WAL tail is replayed on top
// of it (tolerating a torn final entry, the expected artifact of a
// crash mid-append), and the last published result is installed.
//
// The returned engine has the Store attached as its persister: every
// subsequent AddE/AddI is logged before it is acknowledged. The caller
// owns both lifetimes: Engine.Close first, then Store.Close (which
// takes a final checkpoint). The engine configuration is not persisted;
// callers must boot with the same linkage configuration across restarts.
func Recover(dir string, seedE, seedI slim.Dataset, cfg engine.Config, opts Options) (*engine.Engine, *Store, RecoverInfo, error) {
	var info RecoverInfo
	fs := opts.fs()
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, info, err
	}
	// Sweep snapshot temp files orphaned by a crash mid-write, so a
	// process crash-looping during checkpoints cannot fill the disk with
	// full-state-sized leftovers.
	if err := removeOrphanTemps(fs, dir); err != nil {
		return nil, nil, info, err
	}

	snap, err := loadNewestSnapshot(fs, dir)
	if err != nil {
		return nil, nil, info, err
	}
	fresh := snap == nil
	if !fresh {
		info.Recovered = true
		info.SnapshotSeq = snap.lastSeq
	} else {
		// Fresh directory: the caller's seeds are quantized exactly like
		// every other persisted record so that state is restart-stable.
		snap = &snapshotData{
			seedE: quantizeDataset(seedE),
			seedI: quantizeDataset(seedI),
		}
	}

	lastSeq, batches, err := replayWAL(fs, dir, snap.lastSeq, func(b Batch) error {
		if b.Tag == TagE {
			snap.streamE = append(snap.streamE, b.Recs...)
		} else {
			snap.streamI = append(snap.streamI, b.Recs...)
		}
		info.ReplayedRecords += len(b.Recs)
		return nil
	})
	if err != nil {
		return nil, nil, info, fmt.Errorf("storage: wal replay: %w", err)
	}
	info.ReplayedBatches = batches
	if batches > 0 {
		info.Recovered = true
		// Replayed batches invalidate the snapshot's result: it predates
		// them, and serving it would un-acknowledge recovered ingest.
		snap.result = nil
	}

	// Each process generation appends to a fresh segment, past any torn
	// tail left by a crash.
	nextIdx := uint64(1)
	if segs, err := listSegments(fs, dir); err != nil {
		return nil, nil, info, err
	} else if len(segs) > 0 {
		nextIdx = segs[len(segs)-1].index + 1
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	walm := newWALMetrics(reg)
	w, err := openWAL(fs, dir, nextIdx, opts.SegmentBytes, opts.FsyncInterval, walm)
	if err != nil {
		return nil, nil, info, err
	}

	st := &Store{
		dir:        dir,
		opts:       opts,
		fs:         fs,
		walm:       walm,
		wal:        w,
		seedE:      snap.seedE,
		seedI:      snap.seedI,
		streamE:    snap.streamE,
		streamI:    snap.streamI,
		nextSeq:    lastSeq + 1,
		health:     obs.NewHealth(reg, "storage"),
		stopReopen: make(chan struct{}),
	}
	st.registerMetrics(reg)
	info.SeedRecords = len(st.seedE.Records) + len(st.seedI.Records)
	info.StreamedRecords = len(st.streamE) + len(st.streamI)

	eng, err := engine.New(st.seedE, st.seedI, cfg)
	if err != nil {
		_ = w.Close()
		return nil, nil, info, err
	}
	// Re-feed the streamed records before attaching the persister, so
	// they are buffered without being logged a second time.
	_ = eng.AddE(st.streamE...)
	_ = eng.AddI(st.streamI...)
	if snap.result != nil {
		eng.RestoreResult(slim.Result{
			Links:           snap.result.links,
			Matched:         snap.result.links,
			Threshold:       snap.result.threshold,
			ThresholdMethod: snap.result.method,
			SpatialLevel:    snap.result.spatialLevel,
		}, snap.result.version)
		st.mu.Lock()
		st.lastResult = snap.result
		st.mu.Unlock()
		info.HasResult = true
	}
	eng.SetPersister(st)

	// A fresh directory gets an initial checkpoint immediately, so the
	// seed datasets are durable from boot: every later recovery finds a
	// snapshot and the caller's seed flags are never needed again.
	if fresh {
		if _, err := st.Checkpoint(); err != nil {
			_ = w.Close()
			return nil, nil, info, err
		}
	}
	return eng, st, info, nil
}

func quantizeDataset(d slim.Dataset) slim.Dataset {
	out := slim.Dataset{Name: d.Name, Records: make([]slim.Record, len(d.Records))}
	for i, r := range d.Records {
		out.Records[i] = QuantizeRecord(r)
	}
	return out
}

// ensure Store satisfies the engine hook at compile time.
var _ engine.Persister = (*Store)(nil)
