package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"slim"
	"slim/internal/fault"
)

// faultOpts is the baseline Options for the fault tests: inline fsync
// (an ack is a durability promise the tests can hold the store to), a
// fast reopen loop, and no automatic checkpoints (the tests place their
// own so call counts stay deterministic).
func faultOpts(fs FS) Options {
	return Options{
		FsyncInterval:     0,
		SnapshotEveryRuns: -1,
		SnapshotBytes:     -1,
		ReopenBackoff:     time.Millisecond,
		ReopenMaxBackoff:  20 * time.Millisecond,
		FS:                fs,
	}
}

func waitHealthy(t *testing.T, st *Store) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for st.Degraded() {
		if time.Now().After(deadline) {
			_, cause, _ := st.Health()
			t.Fatalf("store did not recover from degraded mode (cause: %s)", cause)
		}
		time.Sleep(time.Millisecond)
	}
}

// streamEntities collects the entity ids in a recovered store's stream
// buffers (both datasets).
func streamEntities(st *Store) map[string]int {
	out := map[string]int{}
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, r := range st.streamE {
		out[string(r.Entity)]++
	}
	for _, r := range st.streamI {
		out[string(r.Entity)]++
	}
	return out
}

// TestFaultFSQuietParity pins the seam refactor: the byte stream an
// unarmed FaultFS lets through is identical to OSFS's — same file
// names, same contents, for a workload covering appends, rotation, a
// mid-cycle checkpoint, and a clean close.
func TestFaultFSQuietParity(t *testing.T) {
	run := func(dir string, fs FS) {
		t.Helper()
		opts := faultOpts(fs)
		opts.SegmentBytes = 4 << 10 // tiny segments force rotation
		eng, st, _, err := Recover(dir, emptyDS("E"), emptyDS("I"), testEngineCfg(), opts)
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		for i := 0; i < 24; i++ {
			recs := mkRecs(fmt.Sprintf("e-%d", i), float64(i)*0.2, 8, 1_000_000)
			if err := st.LogE(recs); err != nil {
				t.Fatal(err)
			}
			if i == 11 {
				if _, err := st.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	run(dirA, OSFS)
	run(dirB, NewFaultFS(OSFS, fault.New()))

	entriesA, err := os.ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	entriesB, err := os.ReadDir(dirB)
	if err != nil {
		t.Fatal(err)
	}
	if len(entriesA) != len(entriesB) {
		t.Fatalf("file counts differ: OSFS %d vs FaultFS %d", len(entriesA), len(entriesB))
	}
	for i, ea := range entriesA {
		eb := entriesB[i]
		if ea.Name() != eb.Name() {
			t.Fatalf("file %d: name %q vs %q", i, ea.Name(), eb.Name())
		}
		bufA, err := os.ReadFile(filepath.Join(dirA, ea.Name()))
		if err != nil {
			t.Fatal(err)
		}
		bufB, err := os.ReadFile(filepath.Join(dirB, eb.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if string(bufA) != string(bufB) {
			t.Fatalf("%s: contents differ (%d vs %d bytes)", ea.Name(), len(bufA), len(bufB))
		}
	}
}

// TestDegradedInlineFailedAppendNotRelogged is the duplicate-sequence
// hazard check: under inline fsync a failed append never consumed its
// sequence number, so its bytes must be truncated away — not re-logged —
// or the next acknowledged batch (which reuses the sequence) would
// collide with it on replay.
func TestDegradedInlineFailedAppendNotRelogged(t *testing.T) {
	inj := fault.New()
	dir := t.TempDir()
	eng, st, _, err := Recover(dir, emptyDS("E"), emptyDS("I"), testEngineCfg(), faultOpts(NewFaultFS(OSFS, inj)))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	if err := st.LogE(mkRecs("e-acked", 0, 4, 1_000_000)); err != nil {
		t.Fatal(err)
	}
	inj.Arm(SiteFSSync, fault.Rule{Count: 1})
	err = st.LogE(mkRecs("e-failed", 0.5, 4, 1_000_000))
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("failed-fsync append error = %v, want ErrDegraded", err)
	}
	if !st.Degraded() {
		t.Fatal("store not degraded after fsync failure")
	}
	if _, err := st.Checkpoint(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded checkpoint error = %v, want ErrDegraded", err)
	}
	if err := st.LogE(mkRecs("e-while-degraded", 1, 4, 1_000_000)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded append error = %v, want ErrDegraded", err)
	}
	waitHealthy(t, st)
	if err := st.LogE(mkRecs("e-post", 1.5, 4, 1_000_000)); err != nil {
		t.Fatalf("post-recovery append failed: %v", err)
	}
	st.crashClose()

	_, st2, _, err := Recover(dir, emptyDS("E"), emptyDS("I"), testEngineCfg(), Options{})
	if err != nil {
		t.Fatalf("recovery after degraded episode failed: %v", err)
	}
	defer st2.crashClose()
	have := streamEntities(st2)
	if have["e-acked"] != 4 || have["e-post"] != 4 {
		t.Fatalf("acked batches lost: %v", have)
	}
	if have["e-failed"] != 0 || have["e-while-degraded"] != 0 {
		t.Fatalf("nacked batches surfaced after recovery: %v", have)
	}
}

// TestDegradedGroupCommitRelogsNackedBatch: under group commit a failed
// batched fsync nacks the client but the store already buffered the
// batch. The reopen must re-log it exactly once (old copy truncated
// away, one fresh copy) and hand it to OnRelog so the serving layer can
// re-buffer what the engine rejected.
func TestDegradedGroupCommitRelogsNackedBatch(t *testing.T) {
	inj := fault.New()
	// OnRelog fires on the reopen goroutine; guard the capture.
	var (
		relogMu  sync.Mutex
		relogged []slim.Record
	)
	opts := faultOpts(NewFaultFS(OSFS, inj))
	opts.FsyncInterval = time.Millisecond
	opts.OnRelog = func(tag byte, recs []slim.Record) {
		if tag == TagE {
			relogMu.Lock()
			relogged = append(relogged, recs...)
			relogMu.Unlock()
		}
	}
	dir := t.TempDir()
	eng, st, _, err := Recover(dir, emptyDS("E"), emptyDS("I"), testEngineCfg(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	if err := st.LogE(mkRecs("e-acked", 0, 4, 1_000_000)); err != nil {
		t.Fatal(err)
	}
	inj.Arm(SiteFSSync, fault.Rule{Count: 1})
	err = st.LogE(mkRecs("e-nacked", 0.5, 4, 1_000_000))
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("failed group-commit error = %v, want ErrDegraded", err)
	}
	waitHealthy(t, st)
	relogMu.Lock()
	if len(relogged) != 4 || string(relogged[0].Entity) != "e-nacked" {
		t.Fatalf("OnRelog saw %d records (%v), want the 4 nacked ones", len(relogged), relogged)
	}
	relogMu.Unlock()
	if err := st.LogE(mkRecs("e-post", 1, 4, 1_000_000)); err != nil {
		t.Fatalf("post-recovery append failed: %v", err)
	}
	st.crashClose()

	_, st2, _, err := Recover(dir, emptyDS("E"), emptyDS("I"), testEngineCfg(), Options{})
	if err != nil {
		t.Fatalf("recovery after degraded episode failed: %v", err)
	}
	defer st2.crashClose()
	have := streamEntities(st2)
	for _, id := range []string{"e-acked", "e-nacked", "e-post"} {
		if have[id] != 4 {
			t.Errorf("%s recovered %d times, want exactly 4 records once", id, have[id])
		}
	}
}

// TestReopenRetriesUntilFaultClears: the reopen loop must survive its
// own failures — each attempt that dies (here: the fresh segment's
// create fails three times) is counted, backed off from, and retried
// until the fault clears.
func TestReopenRetriesUntilFaultClears(t *testing.T) {
	inj := fault.New()
	dir := t.TempDir()
	eng, st, _, err := Recover(dir, emptyDS("E"), emptyDS("I"), testEngineCfg(), faultOpts(NewFaultFS(OSFS, inj)))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// The next three OpenFile calls are the reopen attempts' fresh
	// segments; the fsync fault below triggers the degraded episode.
	inj.Arm(SiteFSOpenFile, fault.Rule{Count: 3})
	inj.Arm(SiteFSSync, fault.Rule{Count: 1})
	if err := st.LogE(mkRecs("e-x", 0, 4, 1_000_000)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("append error = %v, want ErrDegraded", err)
	}
	waitHealthy(t, st)
	if got := st.Stats().ReopenRetries; got < 4 {
		t.Fatalf("reopen retries = %d, want >= 4 (three failed attempts + success)", got)
	}
	if stats := st.Stats(); stats.Health != "healthy" || stats.DegradedCause != "" {
		t.Fatalf("post-recovery stats health = %q cause %q", stats.Health, stats.DegradedCause)
	}
	if err := st.LogE(mkRecs("e-y", 0.5, 4, 1_000_000)); err != nil {
		t.Fatalf("post-recovery append failed: %v", err)
	}
	st.crashClose()
}

// TestFSFailureSweep fails every FS call site at every call index of a
// fixed workload and asserts the two invariants the storage layer
// promises under arbitrary single I/O faults: the process never panics,
// and a later fault-free recovery of the directory succeeds and holds
// every batch the workload acked.
//
// The workload covers the whole I/O footprint: it boots against a
// pre-seeded directory (snapshot load + WAL replay reads), appends with
// a mid-cycle checkpoint and segment rotation, provokes one degraded
// episode via a separate always-armed episode injector (so the
// quarantine truncate + reopen path is part of the swept surface), and
// closes cleanly.
func TestFSFailureSweep(t *testing.T) {
	// seed populates dir fault-free so the workload's boot replays real
	// state (snapshot + WAL tail).
	seed := func(dir string) {
		eng, st, _, err := Recover(dir, emptyDS("E"), emptyDS("I"), testEngineCfg(), faultOpts(OSFS))
		if err != nil {
			t.Fatal(err)
		}
		if err := st.LogE(mkRecs("e-seed", 2.4, 6, 1_000_000)); err != nil {
			t.Fatal(err)
		}
		st.crashClose()
		eng.Close()
	}

	// workload runs the probe against dir; acked collects the entity ids
	// of batches LogE acknowledged. The episode injector (fresh per run,
	// outermost) fails the 7th fsync — deterministically a WAL append
	// fsync after the mid-cycle checkpoint — forcing a degraded episode
	// whose repair hits the truncate/reopen sites on the swept fs.
	workload := func(dir string, fs FS) (acked []string) {
		episode := fault.New()
		episode.Arm(SiteFSSync, fault.Rule{After: 6, Count: 1})
		opts := faultOpts(NewFaultFS(fs, episode))
		opts.SegmentBytes = 2 << 10 // rotation mid-workload
		eng, st, _, err := Recover(dir, emptyDS("E"), emptyDS("I"), testEngineCfg(), opts)
		if err != nil {
			return nil // boot-time fail-stop: a legal outcome under injection
		}
		defer eng.Close()
		for i := 0; i < 8; i++ {
			id := fmt.Sprintf("e-%d", i)
			if err := st.LogE(mkRecs(id, float64(i)*0.3, 6, 1_000_000)); err == nil {
				acked = append(acked, id)
			} else if errors.Is(err, ErrDegraded) {
				// Wait out the reopen so later batches exercise the recovered
				// path too.
				deadline := time.Now().Add(5 * time.Second)
				for st.Degraded() && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
			}
			if i == 3 {
				_, _ = st.Checkpoint()
			}
		}
		_ = st.Close()
		return acked
	}

	// Baseline pass: count how often each site is hit so the sweep can
	// enumerate every call index. The workload is deterministic under
	// inline fsync (no background syncer).
	baseline := fault.New()
	baseDir := t.TempDir()
	seed(baseDir)
	ackedBase := workload(baseDir, NewFaultFS(OSFS, baseline))
	if len(ackedBase) != 7 { // one batch is nacked by the provoked episode
		t.Fatalf("baseline acked %d/7 batches: %v", len(ackedBase), ackedBase)
	}

	verify := func(name, dir string, acked []string) {
		t.Helper()
		eng2, st2, _, err := Recover(dir, emptyDS("E"), emptyDS("I"), testEngineCfg(), Options{})
		if err != nil {
			t.Errorf("%s: recovery after fault failed: %v", name, err)
			return
		}
		have := streamEntities(st2)
		for _, id := range append([]string{"e-seed"}, acked...) {
			if have[id] != 6 {
				t.Errorf("%s: acked batch %s recovered %d records, want 6", name, id, have[id])
			}
		}
		st2.crashClose()
		eng2.Close()
	}
	verify("baseline", baseDir, ackedBase)

	for _, site := range FaultSites {
		hits := baseline.Hits(site)
		if hits == 0 {
			t.Errorf("site %s never hit by the probe workload", site)
			continue
		}
		for idx := 0; idx < hits; idx++ {
			name := fmt.Sprintf("%s@%d", site, idx)
			inj := fault.New()
			inj.Arm(site, fault.Rule{After: idx, Count: 1})
			dir := t.TempDir()
			seed(dir)
			acked := workload(dir, NewFaultFS(OSFS, inj)) // must not panic
			// Fault-free recovery must succeed and hold every acked batch.
			verify(name, dir, acked)
		}
	}
}
