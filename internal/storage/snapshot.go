package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"slim"
)

// Snapshot file layout: a sequence of CRC frames (same framing as the
// WAL) — header, seedE, seedI, streamE, streamI, result, footer. The
// footer frame proves the snapshot was written to completion; a snapshot
// missing it (crash mid-write before the atomic rename could even
// happen) is ignored by the loader. Files are written to a temp name and
// renamed into place, so a data directory never holds a partially
// visible snapshot under the real name.

const (
	snapMagic  = "slimsnap1"
	snapFooter = "slimsnapend"
	snapPrefix = "snapshot-"
	snapSuffix = ".snap"
)

func snapName(lastSeq uint64) string {
	return fmt.Sprintf("%s%016d%s", snapPrefix, lastSeq, snapSuffix)
}

// resultData is the persisted slice of a slim.Result: enough to serve
// /v1/links immediately after recovery, before the first fresh relink.
type resultData struct {
	links        []slim.Link
	threshold    float64
	method       string
	spatialLevel int
	version      uint64
}

// snapshotData is the full persisted engine state: the immutable seed
// datasets, every streamed (WAL-logged) record through lastSeq, and the
// last published result.
type snapshotData struct {
	lastSeq          uint64
	seedE, seedI     slim.Dataset
	streamE, streamI []slim.Record
	result           *resultData
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func (b *byteReader) readString() string {
	return string(b.bytes(b.uvarint()))
}

func appendDataset(dst []byte, d slim.Dataset) []byte {
	dst = appendString(dst, d.Name)
	return appendRecords(dst, d.Records)
}

func (b *byteReader) readDataset() slim.Dataset {
	name := b.readString()
	return slim.Dataset{Name: name, Records: b.readRecords()}
}

// encodeSnapshot serializes the snapshot as framed sections.
func encodeSnapshot(d *snapshotData) []byte {
	hdr := appendString(nil, snapMagic)
	hdr = binary.AppendUvarint(hdr, d.lastSeq)

	var res []byte
	if d.result != nil {
		res = append(res, 1)
		res = binary.AppendUvarint(res, uint64(len(d.result.links)))
		for _, l := range d.result.links {
			res = appendString(res, string(l.U))
			res = appendString(res, string(l.V))
			res = binary.AppendUvarint(res, math.Float64bits(l.Score))
		}
		res = binary.AppendUvarint(res, math.Float64bits(d.result.threshold))
		res = appendString(res, d.result.method)
		res = binary.AppendUvarint(res, uint64(d.result.spatialLevel))
		res = binary.AppendUvarint(res, d.result.version)
	} else {
		res = append(res, 0)
	}

	out := appendFrame(nil, hdr)
	out = appendFrame(out, appendDataset(nil, d.seedE))
	out = appendFrame(out, appendDataset(nil, d.seedI))
	out = appendFrame(out, appendRecords(nil, d.streamE))
	out = appendFrame(out, appendRecords(nil, d.streamI))
	out = appendFrame(out, res)
	return appendFrame(out, []byte(snapFooter))
}

// decodeSnapshot parses a snapshot file; any framing, checksum, or
// structural fault is an error (the loader then falls back to an older
// snapshot).
func decodeSnapshot(buf []byte) (*snapshotData, error) {
	frames := make([][]byte, 0, 7)
	for len(buf) > 0 && len(frames) < 7 {
		payload, rest, err := nextFrame(buf)
		if err != nil {
			return nil, err
		}
		frames = append(frames, payload)
		buf = rest
	}
	if len(frames) != 7 || len(buf) != 0 {
		return nil, errCorrupt
	}
	if string(frames[6]) != snapFooter {
		return nil, fmt.Errorf("%w: missing footer", errCorrupt)
	}

	h := &byteReader{buf: frames[0]}
	if h.readString() != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", errCorrupt)
	}
	d := &snapshotData{lastSeq: h.uvarint()}
	if h.err != nil {
		return nil, h.err
	}

	rE := &byteReader{buf: frames[1]}
	d.seedE = rE.readDataset()
	rI := &byteReader{buf: frames[2]}
	d.seedI = rI.readDataset()
	sE := &byteReader{buf: frames[3]}
	d.streamE = sE.readRecords()
	sI := &byteReader{buf: frames[4]}
	d.streamI = sI.readRecords()
	for _, r := range []*byteReader{rE, rI, sE, sI} {
		if r.err != nil {
			return nil, r.err
		}
	}

	rr := &byteReader{buf: frames[5]}
	present := rr.bytes(1)
	if rr.err != nil {
		return nil, rr.err
	}
	if present[0] == 1 {
		n := rr.uvarint()
		if rr.err != nil || n > uint64(len(rr.buf)) {
			return nil, errCorrupt
		}
		res := &resultData{links: make([]slim.Link, 0, n)}
		for i := uint64(0); i < n; i++ {
			u := rr.readString()
			v := rr.readString()
			score := math.Float64frombits(rr.uvarint())
			res.links = append(res.links, slim.Link{U: slim.EntityID(u), V: slim.EntityID(v), Score: score})
		}
		res.threshold = math.Float64frombits(rr.uvarint())
		res.method = rr.readString()
		res.spatialLevel = int(rr.uvarint())
		res.version = rr.uvarint()
		if rr.err != nil {
			return nil, rr.err
		}
		d.result = res
	}
	return d, nil
}

// writeSnapshot durably writes the snapshot: temp file, fsync, atomic
// rename, directory fsync. Returns the final path.
func writeSnapshot(fs FS, dir string, d *snapshotData) (string, error) {
	buf := encodeSnapshot(d)
	final := filepath.Join(dir, snapName(d.lastSeq))
	tmp, err := fs.CreateTemp(dir, snapPrefix+"*.tmp")
	if err != nil {
		return "", err
	}
	tmpName := tmp.Name()
	cleanup := func() { fs.Remove(tmpName) }
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		cleanup()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return "", err
	}
	if err := fs.Rename(tmpName, final); err != nil {
		cleanup()
		return "", err
	}
	return final, fs.SyncDir(dir)
}

// snapshotFile is one snapshot found on disk.
type snapshotFile struct {
	lastSeq uint64
	path    string
}

// listSnapshots returns the directory's snapshots, newest (highest
// lastSeq) first. Leftover temp files are ignored.
func listSnapshots(fs FS, dir string) ([]snapshotFile, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snaps []snapshotFile
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 10, 64)
		if err != nil {
			continue
		}
		snaps = append(snaps, snapshotFile{lastSeq: seq, path: filepath.Join(dir, name)})
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].lastSeq > snaps[j].lastSeq })
	return snaps, nil
}

// loadNewestSnapshot returns the newest snapshot (nil if the directory
// has none). It fails stop rather than fail open: the temp-rename write
// protocol means a *.snap that does not read and decode cleanly is real
// corruption, never a crash artifact, and silently falling back — to an
// older snapshot or to nothing — would serve time-traveled state and
// then permanently destroy the damaged history at the next checkpoint
// truncation. The operator must remove the named file to accept that
// loss explicitly.
func loadNewestSnapshot(fs FS, dir string) (*snapshotData, error) {
	snaps, err := listSnapshots(fs, dir)
	if err != nil {
		return nil, err
	}
	if len(snaps) == 0 {
		return nil, nil
	}
	sf := snaps[0]
	buf, err := fs.ReadFile(sf.path)
	if err != nil {
		return nil, fmt.Errorf("storage: reading %s: %w", sf.path, err)
	}
	d, err := decodeSnapshot(buf)
	if err != nil {
		return nil, fmt.Errorf("storage: %s is corrupt (%w); remove it to recover from an older snapshot or the WAL alone, accepting the loss it covered", sf.path, err)
	}
	return d, nil
}

// removeOrphanTemps deletes snapshot temp files left by a crash between
// CreateTemp and the atomic rename. Called from Recover, before any
// concurrent checkpoint can be writing a live temp file.
func removeOrphanTemps(fs FS, dir string) error {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, ".tmp") {
			if err := fs.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// removeSnapshotsBefore deletes snapshots older than keepSeq (called
// after a newer snapshot is durable).
func removeSnapshotsBefore(fs FS, dir string, keepSeq uint64) error {
	snaps, err := listSnapshots(fs, dir)
	if err != nil {
		return err
	}
	for _, sf := range snaps {
		if sf.lastSeq < keepSeq {
			if err := fs.Remove(sf.path); err != nil {
				return err
			}
		}
	}
	return fs.SyncDir(dir)
}
