package storage

import (
	"math"
	"math/rand"
	"testing"

	"slim"
	"slim/internal/geo"
)

func randRecords(rng *rand.Rand, n int) []slim.Record {
	recs := make([]slim.Record, n)
	t := int64(1_500_000_000)
	for i := range recs {
		t += rng.Int63n(3600) - 600 // deltas of both signs
		r := slim.Record{
			Entity: slim.EntityID("entity-" + string(rune('a'+rng.Intn(26)))),
			LatLng: geo.LatLng{
				Lat: rng.Float64()*180 - 90,
				Lng: rng.Float64()*360 - 180,
			},
			Unix: t,
		}
		if rng.Intn(4) == 0 {
			r.RadiusKm = rng.Float64() * 5
		}
		recs[i] = r
	}
	return recs
}

func quantizeAll(recs []slim.Record) []slim.Record {
	out := make([]slim.Record, len(recs))
	for i, r := range recs {
		out[i] = QuantizeRecord(r)
	}
	return out
}

func TestBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 7, 500} {
		in := Batch{Seq: uint64(n) + 3, Tag: TagE, Recs: randRecords(rng, n)}
		payload := appendBatch(nil, in)
		out, err := decodeBatch(payload)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if out.Seq != in.Seq || out.Tag != in.Tag || len(out.Recs) != n {
			t.Fatalf("n=%d: header mismatch: %+v", n, out)
		}
		want := quantizeAll(in.Recs)
		for i := range want {
			if out.Recs[i] != want[i] {
				t.Fatalf("n=%d record %d: got %+v want %+v", n, i, out.Recs[i], want[i])
			}
		}
	}
}

// TestQuantizeIdempotent: a record that already went through the codec
// must survive a second round trip bit-identically — the property that
// makes recovered engine state equal to the pre-crash engine state.
func TestQuantizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	recs := quantizeAll(randRecords(rng, 200))
	payload := appendBatch(nil, Batch{Seq: 1, Tag: TagI, Recs: recs})
	out, err := decodeBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if out.Recs[i] != recs[i] {
			t.Fatalf("record %d drifted: got %+v want %+v", i, out.Recs[i], recs[i])
		}
	}
}

func TestQuantizeResolution(t *testing.T) {
	r := slim.Record{Entity: "x", LatLng: geo.LatLng{Lat: 37.123456789, Lng: -122.987654321}, Unix: 1}
	q := QuantizeRecord(r)
	if math.Abs(q.LatLng.Lat-r.LatLng.Lat) > 0.5/latLngScale ||
		math.Abs(q.LatLng.Lng-r.LatLng.Lng) > 0.5/latLngScale {
		t.Fatalf("quantization error too large: %+v vs %+v", q.LatLng, r.LatLng)
	}
}

func TestDecodeBatchRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	payload := appendBatch(nil, Batch{Seq: 5, Tag: TagE, Recs: randRecords(rng, 20)})
	cases := map[string][]byte{
		"empty":     {},
		"bad tag":   append(append([]byte{5}, 'X'), payload[2:]...),
		"truncated": payload[:len(payload)/2],
		"trailing":  append(append([]byte{}, payload...), 0xFF),
		"count overrun": func() []byte {
			p := append([]byte{}, payload...)
			p[2] = 0xFF // explode the record count varint region
			return p
		}(),
	}
	for name, p := range cases {
		if _, err := decodeBatch(p); err == nil {
			t.Errorf("%s: decode accepted corrupt payload", name)
		}
	}
}

func TestFrameRoundTripAndTearing(t *testing.T) {
	payload := []byte("hello frames")
	buf := appendFrame(nil, payload)
	buf = appendFrame(buf, []byte{})

	got, rest, err := nextFrame(buf)
	if err != nil || string(got) != string(payload) {
		t.Fatalf("first frame: %q, %v", got, err)
	}
	got, rest, err = nextFrame(rest)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty frame: %q, %v", got, err)
	}
	if len(rest) != 0 {
		t.Fatalf("leftover bytes: %d", len(rest))
	}

	full := appendFrame(nil, payload)
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := nextFrame(full[:cut]); err == nil {
			t.Fatalf("cut=%d: torn frame accepted", cut)
		}
	}
	// Flip one payload byte: CRC must catch it.
	bad := append([]byte{}, full...)
	bad[frameHeaderLen] ^= 0x01
	if _, _, err := nextFrame(bad); err == nil {
		t.Fatal("bit flip accepted")
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, math.MaxInt64, math.MinInt64} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag(%d) round trip = %d", v, got)
		}
	}
}
