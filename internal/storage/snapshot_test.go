package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"slim"
)

func testSnapshotData(rng *rand.Rand) *snapshotData {
	return &snapshotData{
		lastSeq: 42,
		seedE:   slim.Dataset{Name: "E", Records: quantizeAll(randRecords(rng, 30))},
		seedI:   slim.Dataset{Name: "I", Records: quantizeAll(randRecords(rng, 25))},
		streamE: quantizeAll(randRecords(rng, 12)),
		streamI: quantizeAll(randRecords(rng, 0)),
		result: &resultData{
			links:        []slim.Link{{U: "e-a", V: "i-a", Score: 3.25}, {U: "e-b", V: "i-b", Score: 1.5}},
			threshold:    0.75,
			method:       "gmm",
			spatialLevel: 12,
			version:      7,
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dir := t.TempDir()
	in := testSnapshotData(rng)
	path, err := writeSnapshot(OSFS, dir, in)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != snapName(42) {
		t.Fatalf("snapshot path %s", path)
	}
	out, err := loadNewestSnapshot(OSFS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if out == nil {
		t.Fatal("no snapshot loaded")
	}
	if out.lastSeq != in.lastSeq ||
		!reflect.DeepEqual(out.seedE, in.seedE) ||
		!reflect.DeepEqual(out.seedI, in.seedI) ||
		!reflect.DeepEqual(out.streamE, in.streamE) ||
		len(out.streamI) != 0 ||
		!reflect.DeepEqual(out.result, in.result) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", out, in)
	}
}

func TestSnapshotNoResult(t *testing.T) {
	dir := t.TempDir()
	in := &snapshotData{lastSeq: 1, seedE: slim.Dataset{Name: "E"}, seedI: slim.Dataset{Name: "I"}}
	if _, err := writeSnapshot(OSFS, dir, in); err != nil {
		t.Fatal(err)
	}
	out, err := loadNewestSnapshot(OSFS, dir)
	if err != nil || out == nil || out.result != nil {
		t.Fatalf("out=%+v err=%v", out, err)
	}
}

// TestSnapshotLoaderFailsStopOnCorruption: the loader serves the newest
// snapshot, and a corrupt newest is a hard error (never a silent
// fallback that would time-travel state and destroy the damaged history
// at the next truncation); removing the corrupt file is the explicit
// operator action that re-enables recovery from the older snapshot.
func TestSnapshotLoaderFailsStopOnCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dir := t.TempDir()
	old := testSnapshotData(rng)
	old.lastSeq = 10
	if _, err := writeSnapshot(OSFS, dir, old); err != nil {
		t.Fatal(err)
	}
	newer := testSnapshotData(rng)
	newer.lastSeq = 20
	path, err := writeSnapshot(OSFS, dir, newer)
	if err != nil {
		t.Fatal(err)
	}

	// Sanity: with both valid, the newest wins.
	got, err := loadNewestSnapshot(OSFS, dir)
	if err != nil || got == nil || got.lastSeq != 20 {
		t.Fatalf("got %+v, %v", got, err)
	}

	// Corrupt the newest (bitrot / non-atomic filesystem): loading must
	// fail stop, naming the damaged file.
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf[:len(buf)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadNewestSnapshot(OSFS, dir); err == nil {
		t.Fatal("corrupt newest snapshot loaded (or silently skipped)")
	}

	// Removing the corrupt file is the explicit path back to the older
	// snapshot.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	got, err = loadNewestSnapshot(OSFS, dir)
	if err != nil || got == nil || got.lastSeq != 10 {
		t.Fatalf("after removal: got %+v, %v", got, err)
	}
}

func TestSnapshotIgnoresTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapPrefix+"12345.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadNewestSnapshot(OSFS, dir)
	if err != nil || got != nil {
		t.Fatalf("temp file treated as snapshot: %+v, %v", got, err)
	}
}

func TestRemoveSnapshotsBefore(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dir := t.TempDir()
	for _, seq := range []uint64{5, 10, 15} {
		d := testSnapshotData(rng)
		d.lastSeq = seq
		if _, err := writeSnapshot(OSFS, dir, d); err != nil {
			t.Fatal(err)
		}
	}
	if err := removeSnapshotsBefore(OSFS, dir, 15); err != nil {
		t.Fatal(err)
	}
	snaps, err := listSnapshots(OSFS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].lastSeq != 15 {
		t.Fatalf("kept %+v, want only seq 15", snaps)
	}
}
