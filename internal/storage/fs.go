package storage

import (
	"os"
)

// FS is the storage layer's filesystem seam: every file operation the
// WAL and snapshot code perform goes through this interface instead of
// calling os.* directly, so tests can fail any Write/Sync/Rename/Close
// at any call index (NewFaultFS) while production uses the passthrough
// OSFS. The surface is exactly what the durability protocol needs — no
// more — so a reviewer can audit the whole I/O footprint here.
type FS interface {
	// OpenFile opens a file for the WAL's segment writer (the only
	// consumer; flags are O_CREATE|O_EXCL|O_WRONLY).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates the snapshot temp file (os.CreateTemp semantics).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically publishes a snapshot temp file.
	Rename(oldpath, newpath string) error
	// Remove deletes retired segments, superseded snapshots, and orphan
	// temp files.
	Remove(name string) error
	// Truncate cuts a quarantined segment back to its last durable byte.
	Truncate(name string, size int64) error
	// ReadDir lists a data directory (segment and snapshot discovery).
	ReadDir(name string) ([]os.DirEntry, error)
	// ReadFile slurps one segment or snapshot for replay.
	ReadFile(name string) ([]byte, error)
	// Stat sizes live segments and snapshots for Stats reporting.
	Stat(name string) (os.FileInfo, error)
	// MkdirAll creates the data directory on first open.
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs a directory so entry creations/renames/removals in
	// it are durable.
	SyncDir(dir string) error
}

// File is the writable-file subset the WAL and snapshot writers use.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	// Name returns the path the file was opened with (snapshot temp
	// files learn their generated name through it).
	Name() string
}

// createFlags is how the WAL opens segment files: exclusive creation,
// write-only. O_EXCL makes accidentally reopening (and clobbering) an
// existing segment a hard error.
const createFlags = os.O_CREATE | os.O_EXCL | os.O_WRONLY

// OSFS is the production FS: direct passthrough to the os package.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
