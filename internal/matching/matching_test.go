package matching

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"slim/internal/model"
)

func edge(u, v string, w float64) Edge {
	return Edge{U: model.EntityID(u), V: model.EntityID(v), W: w}
}

func TestGreedyPicksHighestFirst(t *testing.T) {
	edges := []Edge{
		edge("u1", "v1", 10),
		edge("u1", "v2", 9),
		edge("u2", "v1", 8),
		edge("u2", "v2", 1),
	}
	got := Greedy(edges)
	if len(got) != 2 {
		t.Fatalf("matched %d edges, want 2", len(got))
	}
	if got[0] != edge("u1", "v1", 10) || got[1] != edge("u2", "v2", 1) {
		t.Errorf("greedy result = %v", got)
	}
	if !Valid(got) {
		t.Error("greedy produced an invalid matching")
	}
}

func TestGreedyDeterministicTies(t *testing.T) {
	edges := []Edge{
		edge("u2", "v2", 5),
		edge("u1", "v1", 5),
		edge("u1", "v2", 5),
		edge("u2", "v1", 5),
	}
	first := Greedy(edges)
	for i := 0; i < 10; i++ {
		// Shuffle the input: result must not change.
		r := rand.New(rand.NewSource(int64(i)))
		shuffled := append([]Edge(nil), edges...)
		r.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		got := Greedy(shuffled)
		if len(got) != len(first) {
			t.Fatal("tie handling not deterministic (length)")
		}
		for j := range got {
			if got[j] != first[j] {
				t.Fatalf("tie handling not deterministic: %v vs %v", got, first)
			}
		}
	}
}

func TestGreedyDoesNotMutateInput(t *testing.T) {
	edges := []Edge{edge("b", "y", 1), edge("a", "x", 2)}
	_ = Greedy(edges)
	if edges[0] != edge("b", "y", 1) || edges[1] != edge("a", "x", 2) {
		t.Error("input slice was reordered")
	}
}

func TestGreedyEmptyAndSingle(t *testing.T) {
	if got := Greedy(nil); len(got) != 0 {
		t.Error("empty input should give empty matching")
	}
	got := Greedy([]Edge{edge("u", "v", 3)})
	if len(got) != 1 || got[0].W != 3 {
		t.Errorf("single edge mishandled: %v", got)
	}
}

func TestFilterThreshold(t *testing.T) {
	edges := []Edge{edge("a", "x", 5), edge("b", "y", 2), edge("c", "z", 8)}
	got := FilterThreshold(edges, 4)
	if len(got) != 2 {
		t.Fatalf("kept %d, want 2", len(got))
	}
	// Strictly above: an edge exactly at the threshold is dropped.
	got = FilterThreshold(edges, 5)
	if len(got) != 1 || got[0].U != "c" {
		t.Errorf("strict threshold misbehaves: %v", got)
	}
}

func TestValidDetectsConflicts(t *testing.T) {
	if !Valid([]Edge{edge("a", "x", 1), edge("b", "y", 1)}) {
		t.Error("disjoint edges should be valid")
	}
	if Valid([]Edge{edge("a", "x", 1), edge("a", "y", 1)}) {
		t.Error("shared U endpoint should be invalid")
	}
	if Valid([]Edge{edge("a", "x", 1), edge("b", "x", 1)}) {
		t.Error("shared V endpoint should be invalid")
	}
}

func TestHungarianBeatsGreedyWhenGreedyIsSuboptimal(t *testing.T) {
	// Classic greedy trap: greedy takes (u1,v1,10) and is left with
	// (u2,v2,1): total 11. Optimal is (u1,v2,9)+(u2,v1,8) = 17.
	edges := []Edge{
		edge("u1", "v1", 10),
		edge("u1", "v2", 9),
		edge("u2", "v1", 8),
		edge("u2", "v2", 1),
	}
	greedy := Greedy(edges)
	exact := Hungarian(edges)
	if !Valid(exact) {
		t.Fatal("hungarian produced invalid matching")
	}
	gw, ew := TotalWeight(greedy), TotalWeight(exact)
	if math.Abs(ew-17) > 1e-9 {
		t.Errorf("hungarian total = %g, want 17", ew)
	}
	if ew < gw {
		t.Errorf("exact matching %g worse than greedy %g", ew, gw)
	}
}

func TestHungarianRectangular(t *testing.T) {
	// More U entities than V: only |V| links possible.
	edges := []Edge{
		edge("u1", "v1", 4),
		edge("u2", "v1", 6),
		edge("u3", "v1", 5),
	}
	got := Hungarian(edges)
	if len(got) != 1 || got[0].U != "u2" {
		t.Errorf("hungarian rectangular = %v, want single edge u2-v1", got)
	}
}

func TestHungarianEmpty(t *testing.T) {
	if got := Hungarian(nil); got != nil {
		t.Errorf("empty input should give nil, got %v", got)
	}
}

func TestHungarianNeverWorseThanGreedyQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		m := 2 + r.Intn(6)
		var edges []Edge
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				if r.Float64() < 0.7 {
					edges = append(edges, edge(
						fmt.Sprintf("u%d", i), fmt.Sprintf("v%d", j),
						math.Round(r.Float64()*100)/10))
				}
			}
		}
		g := Greedy(edges)
		h := Hungarian(edges)
		return Valid(h) && TotalWeight(h) >= TotalWeight(g)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGreedyMatchingPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var edges []Edge
		n := r.Intn(20)
		for k := 0; k < n; k++ {
			edges = append(edges, edge(
				fmt.Sprintf("u%d", r.Intn(8)), fmt.Sprintf("v%d", r.Intn(8)),
				r.Float64()*100))
		}
		m := Greedy(edges)
		if !Valid(m) {
			return false
		}
		// Greedy must at least match the single best edge.
		if len(edges) > 0 {
			best := edges[0].W
			for _, e := range edges {
				if e.W > best {
					best = e.W
				}
			}
			if len(m) == 0 || m[0].W != best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTotalWeight(t *testing.T) {
	if TotalWeight(nil) != 0 {
		t.Error("empty total should be 0")
	}
	if got := TotalWeight([]Edge{edge("a", "x", 1.5), edge("b", "y", 2.5)}); got != 4 {
		t.Errorf("TotalWeight = %g", got)
	}
}

func BenchmarkGreedy(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var edges []Edge
	for i := 0; i < 200; i++ {
		for j := 0; j < 200; j++ {
			if r.Float64() < 0.1 {
				edges = append(edges, edge(fmt.Sprintf("u%d", i), fmt.Sprintf("v%d", j), r.Float64()))
			}
		}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		_ = Greedy(edges)
	}
}

func BenchmarkHungarian(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	var edges []Edge
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			edges = append(edges, edge(fmt.Sprintf("u%d", i), fmt.Sprintf("v%d", j), r.Float64()))
		}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		_ = Hungarian(edges)
	}
}
