package matching

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"testing"

	"slim/internal/model"
)

// edgeKey identifies an edge by its pair (each pair appears at most once
// in an edge set).
type edgeKey struct{ u, v model.EntityID }

// edgeSet is the reference model the incremental matcher is checked
// against: a plain pair→weight map, matched from scratch with Greedy.
type edgeSet map[edgeKey]float64

func (s edgeSet) slice() []Edge {
	out := make([]Edge, 0, len(s))
	for k, w := range s {
		out = append(out, Edge{U: k.u, V: k.v, W: w})
	}
	return out
}

// requireSameMatching fails unless got and want are identical edge for
// edge, weights compared bitwise.
func requireSameMatching(t *testing.T, got, want []Edge) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("matching size mismatch: got %d want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].U != want[i].U || got[i].V != want[i].V ||
			math.Float64bits(got[i].W) != math.Float64bits(want[i].W) {
			t.Fatalf("matching diverges at %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// quantWeight returns a weight from a small quantized palette, so equal
// weights — including equal weights at the reuse boundary — occur
// constantly and tie-breaking is exercised on every delta.
func quantWeight(rng *rand.Rand) float64 {
	return float64(1+rng.Intn(8)) / 8
}

func entity(side string, i int) model.EntityID {
	return model.EntityID(fmt.Sprintf("%s%03d", side, i))
}

// TestIncrementalMatchesGreedyRandomized drives an Incremental matcher
// through random delta bursts over a heavily tied weight distribution and
// checks every matching against a from-scratch Greedy over the same edge
// set. Quantized weights force ties at reuse boundaries, and the small
// entity universe forces same-U/same-V cascades (one changed edge
// flipping a chain of downstream decisions).
func TestIncrementalMatchesGreedyRandomized(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			nU, nV := 24, 20
			set := edgeSet{}
			for i := 0; i < 160; i++ {
				k := edgeKey{entity("u", rng.Intn(nU)), entity("v", rng.Intn(nV))}
				set[k] = quantWeight(rng)
			}
			var m Incremental
			got := m.Rebuild(set.slice())
			requireSameMatching(t, got, Greedy(set.slice()))

			keys := make([]edgeKey, 0, len(set))
			for burst := 0; burst < 60; burst++ {
				keys = keys[:0]
				for k := range set {
					keys = append(keys, k)
				}
				slices.SortFunc(keys, func(a, b edgeKey) int {
					if a.u != b.u {
						if a.u < b.u {
							return -1
						}
						return 1
					}
					if a.v < b.v {
						return -1
					}
					if a.v > b.v {
						return 1
					}
					return 0
				})
				var remove, insert []Edge
				// Weight changes on existing pairs (remove old + insert new);
				// touch each pair at most once per burst so the delta stays
				// consistent.
				for i := 0; i < 1+rng.Intn(4); i++ {
					k := keys[rng.Intn(len(keys))]
					old := set[k]
					nw := quantWeight(rng)
					if nw == old || slices.ContainsFunc(remove, func(e Edge) bool { return e.U == k.u && e.V == k.v }) {
						continue
					}
					remove = append(remove, Edge{U: k.u, V: k.v, W: old})
					insert = append(insert, Edge{U: k.u, V: k.v, W: nw})
					set[k] = nw
				}
				// Pure removals.
				for i := 0; i < rng.Intn(3); i++ {
					k := keys[rng.Intn(len(keys))]
					if w, ok := set[k]; ok {
						if slices.ContainsFunc(remove, func(e Edge) bool { return e.U == k.u && e.V == k.v }) {
							continue
						}
						remove = append(remove, Edge{U: k.u, V: k.v, W: w})
						delete(set, k)
					}
				}
				// Pure inserts (fresh pairs only).
				for i := 0; i < rng.Intn(4); i++ {
					k := edgeKey{entity("u", rng.Intn(nU)), entity("v", rng.Intn(nV))}
					if _, ok := set[k]; ok {
						continue
					}
					if slices.ContainsFunc(insert, func(e Edge) bool { return e.U == k.u && e.V == k.v }) {
						continue
					}
					w := quantWeight(rng)
					insert = append(insert, Edge{U: k.u, V: k.v, W: w})
					set[k] = w
				}
				got, ok := m.Apply(remove, insert)
				if !ok {
					t.Fatalf("burst %d: Apply rejected a consistent delta (remove=%v insert=%v)", burst, remove, insert)
				}
				requireSameMatching(t, got, Greedy(set.slice()))
				if !Valid(got) {
					t.Fatalf("burst %d: incremental output is not a matching", burst)
				}
			}
			st := m.Stats()
			if st.Applies == 0 {
				t.Fatalf("no delta applies recorded: %+v", st)
			}
		})
	}
}

// TestIncrementalRemovesMatchedEdgeHighInOrder removes the top matched
// edge — the worst case for reuse: the entire suffix below it re-walks
// and its endpoints cascade into different downstream decisions.
func TestIncrementalRemovesMatchedEdgeHighInOrder(t *testing.T) {
	edges := []Edge{
		{U: "u1", V: "v1", W: 0.9},
		{U: "u1", V: "v2", W: 0.8},
		{U: "u2", V: "v1", W: 0.7},
		{U: "u2", V: "v2", W: 0.6},
		{U: "u3", V: "v3", W: 0.5},
	}
	var m Incremental
	got := m.Rebuild(edges)
	requireSameMatching(t, got, Greedy(edges))
	if got[0].W != 0.9 {
		t.Fatalf("expected top edge matched first, got %+v", got[0])
	}

	// Removing (u1, v1) frees both endpoints: u1 falls to v2, which evicts
	// u2 from v2 back onto v1 — a same-U/same-V cascade through the whole
	// order.
	after := []Edge{edges[1], edges[2], edges[4]}
	want := Greedy(append(append([]Edge(nil), after...), edges[3]))
	got, ok := m.Apply([]Edge{{U: "u1", V: "v1", W: 0.9}}, nil)
	if !ok {
		t.Fatal("Apply rejected a consistent removal")
	}
	requireSameMatching(t, got, want)
	st := m.Stats()
	if st.ReusedPrefix != 0 {
		t.Fatalf("removal of the top edge must reuse nothing, got ReusedPrefix=%d", st.ReusedPrefix)
	}
}

// TestIncrementalTiesAtReuseBoundary plants a block of equal-weight edges
// and perturbs inside it, so the reuse boundary lands amid ties and the
// (U, V) tie-break must keep incremental and from-scratch walks aligned.
func TestIncrementalTiesAtReuseBoundary(t *testing.T) {
	set := edgeSet{}
	// High block: distinct weights, untouched (the reusable prefix).
	for i := 0; i < 6; i++ {
		set[edgeKey{entity("u", i), entity("v", i)}] = 0.9 + float64(i)/1000
	}
	// Tied block: every edge weight 0.5, dense same-U/same-V conflicts.
	for i := 0; i < 8; i++ {
		for j := 0; j < 3; j++ {
			set[edgeKey{entity("u", 10+i), entity("v", 10+(i+j)%8)}] = 0.5
		}
	}
	var m Incremental
	requireSameMatching(t, m.Rebuild(set.slice()), Greedy(set.slice()))

	// Remove one tied edge that is in the matching (the (U, V)-smallest
	// tied edge always is: everything before it in the order has distinct
	// higher weights on disjoint endpoints).
	k := edgeKey{entity("u", 10), entity("v", 10)}
	delete(set, k)
	got, ok := m.Apply([]Edge{{U: k.u, V: k.v, W: 0.5}}, nil)
	if !ok {
		t.Fatal("Apply rejected a consistent removal")
	}
	requireSameMatching(t, got, Greedy(set.slice()))
	st := m.Stats()
	if st.ReusedPrefix != 6 {
		t.Fatalf("expected the 6 high-block matches reused, got %d", st.ReusedPrefix)
	}

	// Insert a new edge tied at 0.5 that sorts into the middle of the tied
	// block; the boundary is the insertion point, amid equal weights.
	k = edgeKey{entity("u", 14), entity("v", 19)}
	set[k] = 0.5
	got, ok = m.Apply(nil, []Edge{{U: k.u, V: k.v, W: 0.5}})
	if !ok {
		t.Fatal("Apply rejected a consistent insert")
	}
	requireSameMatching(t, got, Greedy(set.slice()))
}

// TestIncrementalApplyRejectsInconsistentDeltas exercises the full-
// rebuild fallback contract: removals naming absent edges (wrong pair or
// wrong weight) and inserts duplicating retained pairs must be rejected
// with the state unchanged.
func TestIncrementalApplyRejectsInconsistentDeltas(t *testing.T) {
	edges := []Edge{{U: "u1", V: "v1", W: 0.9}, {U: "u2", V: "v2", W: 0.5}}
	var m Incremental
	m.Rebuild(edges)

	if _, ok := m.Apply([]Edge{{U: "u9", V: "v9", W: 0.4}}, nil); ok {
		t.Fatal("Apply accepted a removal of an absent pair")
	}
	if _, ok := m.Apply([]Edge{{U: "u1", V: "v1", W: 0.8}}, nil); ok {
		t.Fatal("Apply accepted a removal with the wrong weight")
	}
	if _, ok := m.Apply(nil, []Edge{{U: "u2", V: "v2", W: 0.5}}); ok {
		t.Fatal("Apply accepted an insert duplicating a retained pair")
	}
	// State must be intact after the rejections.
	got, ok := m.Apply(nil, []Edge{{U: "u3", V: "v3", W: 0.7}})
	if !ok {
		t.Fatal("Apply rejected a consistent insert after failed deltas")
	}
	want := Greedy([]Edge{edges[0], edges[1], {U: "u3", V: "v3", W: 0.7}})
	requireSameMatching(t, got, want)

	var unbuilt Incremental
	if _, ok := unbuilt.Apply(nil, []Edge{{U: "u1", V: "v1", W: 0.9}}); ok {
		t.Fatal("Apply before Rebuild must be rejected")
	}
}

// TestGreedyInPlaceMatchesGreedy pins the satellite refactor: the pooled
// in-place variant must produce the identical matching, and Greedy must
// still leave its input untouched.
func TestGreedyInPlaceMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	edges := make([]Edge, 0, 64)
	for i := 0; i < 64; i++ {
		edges = append(edges, Edge{
			U: entity("u", rng.Intn(12)), V: entity("v", rng.Intn(12)), W: quantWeight(rng),
		})
	}
	orig := append([]Edge(nil), edges...)
	want := Greedy(edges)
	if !slices.Equal(edges, orig) {
		t.Fatal("Greedy modified its input")
	}
	scratch := append([]Edge(nil), edges...)
	requireSameMatching(t, GreedyInPlace(scratch), want)
}
