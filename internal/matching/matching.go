// Package matching implements the maximum-sum bipartite matching step of
// SLIM's final linkage (Sec. 3.2). The paper adopts a simple greedy
// heuristic, which we implement as the default; an exact Hungarian solver
// is provided for small instances as a validation oracle and extension.
package matching

import (
	"math"
	"slices"
	"sync"

	"slim/internal/model"
)

// Edge is a weighted candidate link between an entity of dataset E and one
// of dataset I.
type Edge struct {
	U model.EntityID // entity from the first dataset
	V model.EntityID // entity from the second dataset
	W float64        // similarity score
}

// Greedy performs the paper's greedy maximum-sum matching: repeatedly link
// the highest-weight remaining edge whose endpoints are both unmatched.
// Ties are broken by (U, V) id order so the result is deterministic. The
// input slice is not modified. The returned edges are sorted by descending
// weight.
func Greedy(edges []Edge) []Edge {
	sorted := append([]Edge(nil), edges...)
	return GreedyInPlace(sorted)
}

// FilterThreshold returns the edges with weight strictly above thr,
// preserving order.
func FilterThreshold(edges []Edge, thr float64) []Edge {
	var out []Edge
	for _, e := range edges {
		if e.W > thr {
			out = append(out, e)
		}
	}
	return out
}

// TotalWeight sums the weights of a matching.
func TotalWeight(edges []Edge) float64 {
	var s float64
	for _, e := range edges {
		s += e.W
	}
	return s
}

// validScratch pools the id scratch slices of Valid so parity gates can
// call it in hot loops without per-call allocations.
var validScratch = sync.Pool{New: func() any { return new([]model.EntityID) }}

// Valid reports whether the edge set is a matching: no entity appears on
// more than one edge (per side). Allocation-free: duplicate detection is
// sort + adjacent-scan over a pooled scratch slice rather than map
// membership.
func Valid(edges []Edge) bool {
	if len(edges) < 2 {
		return true
	}
	p := validScratch.Get().(*[]model.EntityID)
	ids := (*p)[:0]
	ok := true
	for side := 0; side < 2 && ok; side++ {
		ids = ids[:0]
		for _, e := range edges {
			if side == 0 {
				ids = append(ids, e.U)
			} else {
				ids = append(ids, e.V)
			}
		}
		slices.Sort(ids)
		for i := 1; i < len(ids); i++ {
			if ids[i] == ids[i-1] {
				ok = false
				break
			}
		}
	}
	*p = ids
	validScratch.Put(p)
	return ok
}

// Hungarian computes an exact maximum-weight bipartite matching using the
// O(n³) Jonker-style shortest augmenting path formulation. Only edges with
// positive weight participate (matching a non-edge is never beneficial for
// SLIM). Intended for small instances (validation, exact-mode linkage);
// cost grows cubically.
func Hungarian(edges []Edge) []Edge {
	if len(edges) == 0 {
		return nil
	}
	uIDs, vIDs := collectIDs(edges)
	n, m := len(uIDs), len(vIDs)
	uIdx := make(map[model.EntityID]int, n)
	vIdx := make(map[model.EntityID]int, m)
	for i, id := range uIDs {
		uIdx[id] = i
	}
	for j, id := range vIDs {
		vIdx[id] = j
	}
	// Cost matrix: we minimize cost = maxW - w; absent edges get cost maxW
	// (equivalent to weight 0) so they are never preferred over real edges.
	var maxW float64
	for _, e := range edges {
		if e.W > maxW {
			maxW = e.W
		}
	}
	// Square the matrix by padding with dummy rows/columns of weight 0.
	size := n
	if m > size {
		size = m
	}
	cost := make([][]float64, size)
	for i := range cost {
		cost[i] = make([]float64, size)
		for j := range cost[i] {
			cost[i][j] = maxW // weight-0 default
		}
	}
	weight := make(map[[2]int]float64, len(edges))
	for _, e := range edges {
		i, j := uIdx[e.U], vIdx[e.V]
		w := e.W
		if w < 0 {
			w = 0
		}
		if maxW-w < cost[i][j] {
			cost[i][j] = maxW - w
			weight[[2]int{i, j}] = e.W
		}
	}

	assignment := solveAssignment(cost)
	var out []Edge
	for i, j := range assignment {
		if i >= n || j >= m {
			continue
		}
		if w, ok := weight[[2]int{i, j}]; ok && w > 0 {
			out = append(out, Edge{U: uIDs[i], V: vIDs[j], W: w})
		}
	}
	slices.SortFunc(out, func(a, b Edge) int {
		switch {
		case a.W > b.W:
			return -1
		case a.W < b.W:
			return 1
		}
		return 0
	})
	return out
}

func collectIDs(edges []Edge) (us, vs []model.EntityID) {
	su := make(map[model.EntityID]bool)
	sv := make(map[model.EntityID]bool)
	for _, e := range edges {
		su[e.U] = true
		sv[e.V] = true
	}
	for id := range su {
		us = append(us, id)
	}
	for id := range sv {
		vs = append(vs, id)
	}
	slices.Sort(us)
	slices.Sort(vs)
	return us, vs
}

// solveAssignment is the classic Hungarian algorithm with potentials on a
// square cost matrix; returns for each row the assigned column.
func solveAssignment(cost [][]float64) []int {
	n := len(cost)
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row matched to column j (1-based)
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}
	out := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			out[p[j]-1] = j - 1
		}
	}
	return out
}
