package matching

import (
	"slices"
	"sync"

	"slim/internal/model"
)

// cmpGreedy is the total greedy scan order: descending weight, ties
// broken by ascending (U, V). Two distinct edges never compare equal —
// an edge set holds each (U, V) pair at most once — so the order is
// unique regardless of sort stability, which is what makes the greedy
// outcome a pure function of the edge SET (and the incremental matcher's
// prefix reuse sound).
func cmpGreedy(a, b Edge) int {
	if a.W != b.W {
		if a.W > b.W {
			return -1
		}
		return 1
	}
	if a.U != b.U {
		if a.U < b.U {
			return -1
		}
		return 1
	}
	if a.V < b.V {
		return -1
	}
	if a.V > b.V {
		return 1
	}
	return 0
}

// denseSet is an interned entity-id bitset: ids are assigned dense int
// indices on first sight (append-only across runs, in the style of the
// compiled-history cell interner) and membership is one bit, so clearing
// a used-set between greedy walks is a word-wise memclr instead of a
// fresh map[EntityID]bool allocation.
type denseSet struct {
	idx  map[model.EntityID]int32
	bits []uint64
}

// intern returns the dense index of id, assigning the next free one on
// first sight.
func (s *denseSet) intern(id model.EntityID) int {
	i, ok := s.idx[id]
	if !ok {
		if s.idx == nil {
			s.idx = make(map[model.EntityID]int32)
		}
		i = int32(len(s.idx))
		s.idx[id] = i
	}
	return int(i)
}

// clear resets membership without forgetting interned ids.
func (s *denseSet) clear() {
	clear(s.bits)
}

// has reports membership of dense index i.
func (s *denseSet) has(i int) bool {
	w := i >> 6
	if w >= len(s.bits) {
		return false
	}
	return s.bits[w]&(1<<(uint(i)&63)) != 0
}

// set marks dense index i, growing the bit array as the interner grows.
func (s *denseSet) set(i int) {
	w := i >> 6
	for w >= len(s.bits) {
		s.bits = append(s.bits, 0)
	}
	s.bits[w] |= 1 << (uint(i) & 63)
}

// IncrementalStats describes an Incremental matcher's state and the work
// profile of its most recent update. ReusedPrefix vs SuffixWalked is the
// headline: reused matched edges were adopted verbatim from the previous
// run without touching the used-sets or the edge order above them.
type IncrementalStats struct {
	// Edges is the size of the maintained sorted edge list.
	Edges int
	// Matched is the size of the current greedy matching.
	Matched int
	// ReusedPrefix is how many matched edges the last update reused
	// verbatim; SuffixWalked is how many sorted-order entries it
	// re-walked below the first changed position.
	ReusedPrefix int
	SuffixWalked int
	// Rebuilds counts full sort+walk rebuilds (first build, epoch
	// invalidations, inconsistent deltas); Applies counts delta updates.
	Rebuilds uint64
	Applies  uint64
}

// Incremental maintains the greedy maximum-sum matching of an edge set
// across delta updates. The greedy outcome is a deterministic function of
// the edges in cmpGreedy order: scanning from the top, an edge is matched
// iff both endpoints are unused, and the used-sets after scanning any
// prefix depend only on that prefix. So when a delta touches the order no
// higher than position b, every decision above b is reusable verbatim —
// identical prefix ⇒ identical used-sets ⇒ identical decisions — and only
// the suffix [b:] needs re-walking, against used-sets reseeded from the
// reused matched prefix. Apply is O(delta·log delta) sort + one linear
// splice of the order + the suffix walk; a from-scratch Greedy pays the
// full O(n log n) sort and a whole-order walk with fresh map used-sets.
//
// The result is bit-identical to Greedy over the same edge set: both
// walks visit the same unique order with the same used-set semantics.
// The zero value is ready to use; not safe for concurrent use.
type Incremental struct {
	built bool
	// order is the maintained edge list in cmpGreedy order; scratch is
	// the double buffer Apply splices into (the two swap every apply).
	order   []Edge
	scratch []Edge
	// matched is the greedy matching over order (returned to callers and
	// treated as immutable once returned: every update allocates a fresh
	// slice unless the matching is provably unchanged). matchedPos[k] is
	// the position in order that produced matched[k]; it is strictly
	// increasing, so the reusable prefix for a boundary b is found by
	// binary search.
	matched    []Edge
	matchedPos []int
	u, v       denseSet

	lastReused, lastWalked int
	rebuilds, applies      uint64
}

// Rebuild replaces the maintained state with a from-scratch sort and
// greedy walk over edges (the input is copied, not adopted). It returns
// the matching, sorted by descending weight; callers may retain it.
func (m *Incremental) Rebuild(edges []Edge) []Edge {
	m.order = append(m.order[:0], edges...)
	slices.SortFunc(m.order, cmpGreedy)
	m.built = true
	m.rebuilds++
	return m.walk(0, 0)
}

// Apply folds one delta into the maintained order and returns the
// updated matching. remove must name edges currently present (exact U,
// V, W — score changes are a remove of the old value plus an insert of
// the new); insert must name pairs absent after the removals. Both
// slices are sorted in place. ok is false when the delta is inconsistent
// with the maintained state (or Rebuild was never called): the matcher
// state is left unchanged and the caller must Rebuild from the full edge
// set.
func (m *Incremental) Apply(remove, insert []Edge) (matched []Edge, ok bool) {
	if !m.built {
		return nil, false
	}
	slices.SortFunc(remove, cmpGreedy)
	slices.SortFunc(insert, cmpGreedy)

	// Splice the sorted delta into the sorted order in one linear merge,
	// tracking b — the first output position where the new order diverges
	// from the old one. Everything above b is untouched by construction.
	out := m.scratch[:0]
	b := -1
	i, r, a := 0, 0, 0
	for i < len(m.order) {
		if r < len(remove) {
			c := cmpGreedy(remove[r], m.order[i])
			if c < 0 {
				return nil, false // removal names an edge not in the order
			}
			if c == 0 {
				if b < 0 {
					b = len(out)
				}
				r++
				i++
				continue
			}
		}
		if a < len(insert) {
			c := cmpGreedy(insert[a], m.order[i])
			if c == 0 {
				return nil, false // insert duplicates a retained pair
			}
			if c < 0 {
				if b < 0 {
					b = len(out)
				}
				out = append(out, insert[a])
				a++
				continue
			}
		}
		out = append(out, m.order[i])
		i++
	}
	if r < len(remove) {
		return nil, false // removal past the end of the order
	}
	if a < len(insert) && b < 0 {
		b = len(out)
	}
	out = append(out, insert[a:]...)

	m.scratch = m.order[:0]
	m.order = out
	m.applies++
	if b < 0 {
		// Empty delta: the order — and therefore the matching — is
		// unchanged.
		m.lastReused = len(m.matched)
		m.lastWalked = 0
		return m.matched, true
	}
	keep, _ := slices.BinarySearch(m.matchedPos, b)
	return m.walk(b, keep), true
}

// walk re-runs the greedy scan over order[from:], reusing matched[:keep]
// verbatim (every reused edge came from a position < from). The used-set
// state at position from is exactly the endpoints of the reused prefix,
// so the suffix decisions match a from-scratch walk bit for bit.
func (m *Incremental) walk(from, keep int) []Edge {
	m.u.clear()
	m.v.clear()
	capHint := len(m.matched)
	if capHint < keep {
		capHint = keep
	}
	out := make([]Edge, keep, capHint+8)
	copy(out, m.matched[:keep])
	m.matchedPos = m.matchedPos[:keep]
	for _, e := range out {
		m.u.set(m.u.intern(e.U))
		m.v.set(m.v.intern(e.V))
	}
	for k := from; k < len(m.order); k++ {
		e := m.order[k]
		ui := m.u.intern(e.U)
		vi := m.v.intern(e.V)
		if m.u.has(ui) || m.v.has(vi) {
			continue
		}
		m.u.set(ui)
		m.v.set(vi)
		out = append(out, e)
		m.matchedPos = append(m.matchedPos, k)
	}
	m.lastReused = keep
	m.lastWalked = len(m.order) - from
	m.matched = out
	return out
}

// Len returns the size of the maintained edge list.
func (m *Incremental) Len() int { return len(m.order) }

// Stats returns the matcher's state and last-update work profile.
func (m *Incremental) Stats() IncrementalStats {
	return IncrementalStats{
		Edges:        len(m.order),
		Matched:      len(m.matched),
		ReusedPrefix: m.lastReused,
		SuffixWalked: m.lastWalked,
		Rebuilds:     m.rebuilds,
		Applies:      m.applies,
	}
}

// greedyScratch pools the dense used-sets of GreedyInPlace so the
// from-scratch path pays no per-call map allocations either.
var greedyScratch = sync.Pool{New: func() any { return new(struct{ u, v denseSet }) }}

// GreedyInPlace is Greedy without the defensive copy: it sorts edges in
// place and runs the greedy scan over pooled dense used-sets. The
// returned matching is freshly allocated (callers retain it); the input
// slice is left in cmpGreedy order.
func GreedyInPlace(edges []Edge) []Edge {
	slices.SortFunc(edges, cmpGreedy)
	s := greedyScratch.Get().(*struct{ u, v denseSet })
	s.u.clear()
	s.v.clear()
	// Matched size is bounded by the smaller endpoint set; len/4 matches
	// the density heuristic of the scoring fan-out's result slots.
	out := make([]Edge, 0, len(edges)/4+4)
	for _, e := range edges {
		ui := s.u.intern(e.U)
		vi := s.v.intern(e.V)
		if s.u.has(ui) || s.v.has(vi) {
			continue
		}
		s.u.set(ui)
		s.v.set(vi)
		out = append(out, e)
	}
	greedyScratch.Put(s)
	return out
}
