package candidates

import "slim/internal/lsh"

// BandCollision names one band in which a pair's two entities currently
// hash into the same bucket, with the bucket's occupancy on both sides —
// the "why is this pair a candidate" evidence (a collision in a crowded
// bucket is weaker evidence of similarity than one in a tight bucket).
type BandCollision struct {
	// Band is the band index in [0, Bands).
	Band int
	// Hash is the shared bucket hash within the band.
	Hash uint64
	// BucketE / BucketI are the bucket's current member counts per side
	// (both include the pair's own endpoints).
	BucketE, BucketI int
}

// PairExplain is the lineage of one pair through the incremental LSH
// filter: whether each endpoint has a maintained signature, whether the
// pair is currently a candidate, which bands collide (with bucket sizes),
// and the index geometry/epoch the answer is valid under. It is a pure
// read over the maintained band-bucket maps — Explain adds no state to
// the index and costs O(Bands).
type PairExplain struct {
	// HasU / HasV report whether the index maintains a signature for each
	// endpoint (false for unknown or never-signed entities).
	HasU, HasV bool
	// Candidate reports whether the pair is currently in the candidate
	// set; BandCount is its current band-collision count (the index
	// invariant: Candidate == BandCount > 0 == len(Collisions) > 0).
	Candidate bool
	BandCount int32
	// Collisions lists the currently colliding bands in band order.
	Collisions []BandCollision
	// Epoch / SignatureLen / Bands / Rows describe the index grid the
	// lineage was read under (see Stats).
	Epoch        uint64
	SignatureLen int
	Bands        int
	Rows         int
	// SigVersionU / SigVersionV are the history versions the endpoints'
	// signatures were computed from (0 when the endpoint has none).
	SigVersionU, SigVersionV uint64
}

// Explain reports the candidate lineage of one pair. Like every other
// index read it is not safe concurrently with Update; callers serialize
// it with linker mutations.
func (x *Index) Explain(p lsh.Pair) PairExplain {
	ex := PairExplain{
		Epoch:        x.epoch,
		SignatureLen: x.banding.SigLen,
		Bands:        x.banding.Bands,
		Rows:         x.banding.Rows,
		BandCount:    x.paircount[p],
	}
	ex.Candidate = ex.BandCount > 0
	eu, ev := x.sigE[p.U], x.sigI[p.V]
	if eu != nil {
		ex.HasU, ex.SigVersionU = true, eu.version
	}
	if ev != nil {
		ex.HasV, ex.SigVersionV = true, ev.version
	}
	if eu == nil || ev == nil {
		return ex
	}
	for band := 0; band < x.banding.Bands && band < len(eu.hasBand) && band < len(ev.hasBand); band++ {
		if !eu.hasBand[band] || !ev.hasBand[band] || eu.bandHash[band] != ev.bandHash[band] {
			continue
		}
		bc := BandCollision{Band: band, Hash: eu.bandHash[band]}
		if bkt := x.buckets[band][bc.Hash]; bkt != nil {
			bc.BucketE, bc.BucketI = len(bkt.e), len(bkt.i)
		}
		ex.Collisions = append(ex.Collisions, bc)
	}
	return ex
}
