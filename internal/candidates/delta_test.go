package candidates

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"slim/internal/history"
	"slim/internal/lsh"
	"slim/internal/model"
)

// pairSet builds a membership set from a pair slice.
func pairSet(ps []lsh.Pair) map[lsh.Pair]struct{} {
	s := make(map[lsh.Pair]struct{}, len(ps))
	for _, p := range ps {
		s[p] = struct{}{}
	}
	return s
}

// diffPairs returns the sorted members of a that are absent from b.
func diffPairs(a []lsh.Pair, b map[lsh.Pair]struct{}) []lsh.Pair {
	var out []lsh.Pair
	for _, p := range a {
		if _, ok := b[p]; !ok {
			out = append(out, p)
		}
	}
	lsh.SortPairs(out)
	return out
}

// requireDeltaExact checks one Update's Delta against the ground truth:
// Added/Removed must equal the set difference of the before/after Pairs()
// snapshots, and Dirty must equal exactly the kept pairs with an endpoint
// among the entities whose histories changed this burst.
func requireDeltaExact(t *testing.T, step string, d Delta, before, after []lsh.Pair,
	burstE, burstI map[model.EntityID]struct{}) {
	t.Helper()
	beforeSet, afterSet := pairSet(before), pairSet(after)
	if wantAdded := diffPairs(after, beforeSet); !slices.Equal(d.Added, wantAdded) {
		t.Fatalf("%s: Added = %v, want set-difference %v", step, d.Added, wantAdded)
	}
	if wantRemoved := diffPairs(before, afterSet); !slices.Equal(d.Removed, wantRemoved) {
		t.Fatalf("%s: Removed = %v, want set-difference %v", step, d.Removed, wantRemoved)
	}
	var wantDirty []lsh.Pair
	for _, p := range after {
		if _, kept := beforeSet[p]; !kept {
			continue
		}
		_, eChanged := burstE[p.U]
		_, iChanged := burstI[p.V]
		if eChanged || iChanged {
			wantDirty = append(wantDirty, p)
		}
	}
	lsh.SortPairs(wantDirty)
	if !slices.Equal(d.Dirty, wantDirty) {
		t.Fatalf("%s: Dirty = %v, want kept-pairs-of-changed-entities %v", step, d.Dirty, wantDirty)
	}
	for _, p := range d.Dirty {
		if _, ok := afterSet[p]; !ok {
			t.Fatalf("%s: Dirty pair %v is not a current candidate", step, p)
		}
	}
}

// TestIndexDeltaExactSetDifference is the Delta API's exactness suite:
// under randomized interleaved E/I bursts of point and region records —
// including in-grid churn (delta updates), range growth in both directions
// (epoch rebuilds), and over-reported dirty entities — every Update's
// Delta must equal the set difference of the before/after candidate sets,
// with Dirty naming exactly the kept pairs of changed entities.
func TestIndexDeltaExactSetDifference(t *testing.T) {
	for _, seed := range []int64{5, 23, 77} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			p := lsh.Params{Threshold: 0.3, StepWindows: 4, SpatialLevel: level, NumBuckets: 256}

			se := history.Build(&model.Dataset{Name: "E"}, wnd, level)
			si := history.Build(&model.Dataset{Name: "I"}, wnd, level)
			x := New(se, si, p)
			if d := x.Update(nil, nil); !d.Empty() {
				t.Fatalf("empty-store update produced a delta: %+v", d)
			}

			base := int64(900 * 100)
			span := int64(900 * 40)
			rebuilds := 0
			for burst := 0; burst < 30; burst++ {
				before := slices.Clone(x.Pairs())
				epochBefore := x.Stats().Epoch
				dirtyE := map[model.EntityID]struct{}{}
				dirtyI := map[model.EntityID]struct{}{}
				nRecs := 1 + rng.Intn(8)
				for k := 0; k < nRecs; k++ {
					side := rng.Intn(2)
					id := fmt.Sprintf("%c%d", "ei"[side], rng.Intn(12))
					unix := base + rng.Int63n(span)
					switch rng.Intn(8) {
					case 0: // stretch the range forward: sigLen grows
						unix = base + span + rng.Int63n(span)
						span += 900 * 10
					case 1: // stretch backward: the grid anchor shifts
						unix = base - rng.Int63n(900*20) - 1
						base -= 900 * 5
					}
					r := rec(id, 37.6+float64(rng.Intn(50))*0.01, -122.4+float64(rng.Intn(50))*0.01, unix)
					if rng.Intn(4) == 0 {
						r.RadiusKm = 0.2 + rng.Float64()*2
					}
					if side == 0 {
						se.Add(r)
						dirtyE[r.Entity] = struct{}{}
					} else {
						si.Add(r)
						dirtyI[r.Entity] = struct{}{}
					}
				}
				// Over-report: an unchanged (or unknown) entity in the dirty
				// set must not surface in the Delta.
				if rng.Intn(3) == 0 {
					if ents := se.Entities(); len(ents) > 0 {
						dirtyE[ents[rng.Intn(len(ents))]] = struct{}{}
					}
					dirtyI["ghost"] = struct{}{}
				}
				burstE, burstI := changedOnly(se, x.sigE, dirtyE), changedOnly(si, x.sigI, dirtyI)
				d := x.Update(dirtyE, dirtyI)
				after := x.Pairs()
				if wantRebuilt := x.Stats().Epoch != epochBefore; d.Rebuilt != wantRebuilt {
					t.Fatalf("burst %d: Rebuilt = %v, epoch moved = %v", burst, d.Rebuilt, wantRebuilt)
				}
				if d.Rebuilt {
					rebuilds++
				}
				requireDeltaExact(t, fmt.Sprintf("burst %d", burst), d, before, after, burstE, burstI)
				requireParity(t, x, se, si, p, fmt.Sprintf("burst %d", burst))
			}
			if rebuilds == 0 {
				t.Fatal("workload never forced an epoch rebuild; the suite must exercise both paths")
			}
		})
	}
}

// changedOnly filters a dirty set down to the entities whose history
// version actually moved since their maintained signature — the ground
// truth for Delta.Dirty membership (over-reported entities are skipped by
// the index's version check).
func changedOnly(store *history.Store, sigs map[model.EntityID]*entitySig, dirty map[model.EntityID]struct{}) map[model.EntityID]struct{} {
	out := make(map[model.EntityID]struct{}, len(dirty))
	for id := range dirty {
		h := store.History(id)
		if h == nil {
			continue
		}
		es := sigs[id]
		if es == nil || es.version != h.Version() {
			out[id] = struct{}{}
		}
	}
	return out
}

// TestIndexDeltaAcrossOneSideEmpty pins the empty-store transitions: no
// delta while one side is empty, and the first build reports the full
// candidate set as Added.
func TestIndexDeltaAcrossOneSideEmpty(t *testing.T) {
	p := lsh.Params{Threshold: 0.3, StepWindows: 4, SpatialLevel: level, NumBuckets: 256}
	se := history.Build(&model.Dataset{Name: "E"}, wnd, level)
	si := history.Build(&model.Dataset{Name: "I"}, wnd, level)
	x := New(se, si, p)

	for k := 0; k < 8; k++ {
		se.Add(rec("e0", 37.6, -122.4, int64(900*k)))
	}
	if d := x.Update(map[model.EntityID]struct{}{"e0": {}}, nil); !d.Empty() {
		t.Fatalf("one-side-empty update produced a delta: %+v", d)
	}
	for k := 0; k < 8; k++ {
		si.Add(rec("i0", 37.6, -122.4, int64(900*k+30)))
	}
	d := x.Update(nil, map[model.EntityID]struct{}{"i0": {}})
	if !d.Rebuilt {
		t.Fatal("first build must report Rebuilt")
	}
	if !slices.Equal(d.Added, x.Pairs()) || len(d.Removed) != 0 || len(d.Dirty) != 0 {
		t.Fatalf("first build delta: %+v, want Added == Pairs() only", d)
	}
}
