// Package candidates maintains SLIM's banded-LSH candidate pair set
// incrementally. The batch path (internal/lsh.CandidatePairs) rebuilds
// every signature and re-enumerates every band-bucket collision on each
// call — an O(|E|+|I|) cost even when a single entity's history changed.
// This package keeps the filter state alive between relinks: per-entity
// signatures with history-version counters (mirroring the stale-entity
// recompile discipline of internal/history's compiled views), band→bucket
// hash maps, and a per-pair collision count. A dirty entity removes its
// old band hashes and inserts its new ones, touching only the buckets it
// left or entered, so a relink after a small ingest burst costs O(dirty)
// instead of O(everything).
//
// The contract is exactness, not approximation: after any interleaving of
// ingest, Pairs() equals a from-scratch lsh.CandidatePairs rebuild
// pair-for-pair (see the parity suite). The invariant that delivers this
// is simple: paircount[{u,v}] always equals the number of bands in which
// u and v currently share a bucket, and every bucket insert/remove updates
// it against the opposite side's current membership. The candidate set is
// the keys with positive count — exactly the batch path's "share a bucket
// in at least one band".
//
// Signature-geometry changes cannot be handled by delta: when the union
// window range grows past the current grid (a new minimum window shifts
// every query window; a signature-length change re-solves the Lambert-W
// banding and re-partitions every band), the index bumps its epoch and
// performs a full rebuild. Rebuilds are amortized — the range of a
// mobility feed grows ever more rarely as it ages, while per-entity churn
// never stops, which is exactly the case delta maintenance wins.
package candidates

import (
	"time"

	"slim/internal/history"
	"slim/internal/lsh"
	"slim/internal/model"
)

// Stats is a point-in-time snapshot of the index.
type Stats struct {
	// SignatureLen / Bands / Rows / NumBuckets describe the current
	// epoch's grid geometry (all zero while either store is empty).
	SignatureLen int
	Bands        int
	Rows         int
	NumBuckets   int
	// Epoch counts full rebuilds: 1 after the initial build, bumped every
	// time signature geometry forces the index to start over.
	Epoch uint64
	// SignaturesE / SignaturesI count maintained per-entity signatures.
	SignaturesE int
	SignaturesI int
	// Buckets counts non-empty (band, hash) buckets; Memberships counts
	// (entity, band) bucket entries; Occupancy is Memberships/Buckets.
	Buckets     int
	Memberships int
	Occupancy   float64
	// Candidates is the number of distinct cross-dataset candidate pairs.
	Candidates int64
	// LastDirty is how many entity signatures the last Update actually
	// recomputed; LastRebuild reports whether it was a full rebuild;
	// LastUpdate is its wall-clock duration.
	LastDirty   int
	LastRebuild bool
	LastUpdate  time.Duration
}

// Delta reports how one Update changed the candidate set, in the exact
// set-difference sense: Added/Removed are the pairs that entered/left the
// set (Pairs() after == Pairs() before − Removed + Added), and Dirty are
// the pairs that stayed candidates but have at least one endpoint whose
// signature was actually recomputed this Update — i.e. an endpoint whose
// history changed, so any score derived from the pair is stale. The three
// slices are disjoint, sorted in canonical (U, V) order, and freshly
// allocated per Update (callers may retain them).
//
// Delta is what makes scored edges maintainable as state rather than
// per-run output: a caller holding pair→score only has to rescore
// Added ∪ Dirty and drop Removed; every other pair's endpoints are
// untouched histories, so its score is unchanged by construction (see the
// root package's edge store). Rebuilt marks an epoch rebuild; the delta is
// still exact (computed by diffing the old and new candidate sets).
type Delta struct {
	Added   []lsh.Pair
	Removed []lsh.Pair
	Dirty   []lsh.Pair
	Rebuilt bool
}

// Empty reports whether the delta carries no work at all.
func (d Delta) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.Dirty) == 0 && !d.Rebuilt
}

// entitySig is the maintained filter state of one entity: its signature
// over the current grid, the bucket hash of each band (hasBand false for
// placeholder-only bands, which are never hashed or bucketed), and the
// history version the signature was computed from.
type entitySig struct {
	version  uint64
	sig      lsh.Signature
	bandHash []uint64
	hasBand  []bool
}

// bucket holds one band bucket's members from each side.
type bucket struct {
	e []model.EntityID
	i []model.EntityID
}

// Index is an incrementally maintained banded-LSH candidate index over two
// history stores (built at the signature spatial level). It is not safe
// for concurrent use; callers serialize Update/Pairs/Stats like any other
// linker mutation.
type Index struct {
	params         lsh.Params
	storeE, storeI *history.Store

	// Grid of the current epoch: query window q covers leaf windows
	// [gridMin + q·step, …) and the final window clamps to gridMax+1.
	// banding.SigLen == 0 is the ungridded state (either store empty, or
	// a degenerate step): no signatures, no pairs.
	gridMin int64
	gridMax int64
	banding lsh.Banding
	epoch   uint64

	sigE, sigI map[model.EntityID]*entitySig

	// buckets[band] maps bucket hash → members. memberships counts all
	// (entity, band) entries for the occupancy stat.
	buckets     []map[uint64]*bucket
	memberships int

	// paircount[p] = number of bands in which p currently collides; keys
	// with positive count are the candidate set. pairs caches the sorted
	// materialization; pairsStale marks it outdated.
	paircount  map[lsh.Pair]int32
	pairs      []lsh.Pair
	pairsStale bool

	// Scratch buffers so delta updates allocate nothing per entity.
	scratchSig  lsh.Signature
	scratchHash []uint64
	scratchOK   []bool

	// Per-Update delta tracking (cleared at the start of every Update).
	// touched records, for every pair whose collision count moved this
	// Update, whether it was a candidate before the Update; changedE and
	// changedI record the entities whose signatures were actually
	// recomputed; dirtySeen dedupes Dirty pairs reached through several
	// bands or both endpoints.
	touched            map[lsh.Pair]bool
	changedE, changedI map[model.EntityID]struct{}
	dirtySeen          map[lsh.Pair]struct{}

	lastDirty   int
	lastRebuild bool
	lastUpdate  time.Duration
}

// New creates an empty index over the two signature stores. Call Update
// once to perform the initial build.
func New(storeE, storeI *history.Store, p lsh.Params) *Index {
	return &Index{
		params:    p,
		storeE:    storeE,
		storeI:    storeI,
		sigE:      make(map[model.EntityID]*entitySig),
		sigI:      make(map[model.EntityID]*entitySig),
		paircount: make(map[lsh.Pair]int32),
		touched:   make(map[lsh.Pair]bool),
		changedE:  make(map[model.EntityID]struct{}),
		changedI:  make(map[model.EntityID]struct{}),
		dirtySeen: make(map[lsh.Pair]struct{}),
	}
}

// Update brings the index up to date with its stores and returns the
// exact Delta of the candidate set (see Delta). dirtyE and dirtyI name the
// entities whose histories may have changed since the previous Update
// (nil on the first call; entities whose history version is unchanged are
// skipped, so over-reporting is harmless — under-reporting is not). When
// the union window range still fits the current grid the index applies
// per-entity deltas; otherwise it bumps the epoch and rebuilds from
// scratch (Delta.Rebuilt, with Added/Removed diffed against the previous
// candidate set so the delta stays exact).
func (x *Index) Update(dirtyE, dirtyI map[model.EntityID]struct{}) Delta {
	start := time.Now()
	clear(x.touched)
	clear(x.changedE)
	clear(x.changedI)
	var d Delta
	minE, maxE, okE := x.storeE.WindowRange()
	minI, maxI, okI := x.storeI.WindowRange()
	if !okE || !okI {
		// Batch semantics: no candidates until both sides hold data. Both
		// stores only ever grow, so nothing can have been built yet.
		x.lastDirty, x.lastRebuild, x.lastUpdate = 0, false, time.Since(start)
		return d
	}
	minW, maxW := minE, maxE
	if minI < minW {
		minW = minI
	}
	if maxI > maxW {
		maxW = maxI
	}
	sigLen := lsh.SignatureLength(minW, maxW, x.params.StepWindows)
	if sigLen != x.banding.SigLen || minW != x.gridMin {
		d = x.rebuild(minW, maxW, sigLen)
	} else {
		// The grid anchor and length are unchanged; a larger gridMax only
		// moves the (semantically inert) clamp of the final query window,
		// so clean entities' signatures remain exact. See the
		// AppendSignature doc comment for the argument.
		x.gridMax = maxW
		n := 0
		n += x.applySide(dirtyE, true)
		n += x.applySide(dirtyI, false)
		x.lastDirty, x.lastRebuild = n, false
		d = x.deltaFromTouches()
	}
	x.lastUpdate = time.Since(start)
	return d
}

// deltaFromTouches classifies this Update's pair-count movements (recorded
// by bumpPair in x.touched) into Added/Removed, then walks the recomputed
// entities' current band buckets to collect the kept-but-dirty pairs. The
// walk costs O(current collisions of the recomputed entities) — the same
// order of work the bucket updates themselves just paid.
func (x *Index) deltaFromTouches() Delta {
	var d Delta
	for p, was := range x.touched {
		is := x.paircount[p] > 0
		switch {
		case !was && is:
			d.Added = append(d.Added, p)
		case was && !is:
			d.Removed = append(d.Removed, p)
		}
	}
	clear(x.dirtySeen)
	addDirty := func(p lsh.Pair) {
		// Kept pairs only: currently a candidate and not newly added
		// (a touched pair whose pre-Update membership was false is Added).
		if x.paircount[p] <= 0 {
			return
		}
		if was, ok := x.touched[p]; ok && !was {
			return
		}
		if _, ok := x.dirtySeen[p]; ok {
			return
		}
		x.dirtySeen[p] = struct{}{}
		d.Dirty = append(d.Dirty, p)
	}
	for id := range x.changedE {
		x.visitPartners(id, true, func(v model.EntityID) { addDirty(lsh.Pair{U: id, V: v}) })
	}
	for id := range x.changedI {
		x.visitPartners(id, false, func(u model.EntityID) { addDirty(lsh.Pair{U: u, V: id}) })
	}
	lsh.SortPairs(d.Added)
	lsh.SortPairs(d.Removed)
	lsh.SortPairs(d.Dirty)
	return d
}

// visitPartners calls fn for every opposite-side member currently sharing
// a band bucket with id (with repeats across bands; callers dedupe).
func (x *Index) visitPartners(id model.EntityID, isE bool, fn func(model.EntityID)) {
	sigs := x.sigE
	if !isE {
		sigs = x.sigI
	}
	es := sigs[id]
	if es == nil {
		return
	}
	for band := 0; band < x.banding.Bands && band < len(es.hasBand); band++ {
		if !es.hasBand[band] {
			continue
		}
		bkt := x.buckets[band][es.bandHash[band]]
		if bkt == nil {
			continue
		}
		members := bkt.i
		if !isE {
			members = bkt.e
		}
		for _, other := range members {
			fn(other)
		}
	}
}

// rebuild starts a new epoch: fresh buckets and pair counts, every
// signature recomputed over the new grid. The returned Delta diffs the new
// candidate set against the pre-rebuild one (an O(P) pass — rebuilds are
// already O(everything)), with Dirty restricted to kept pairs that have an
// endpoint whose history version moved since its previous signature.
func (x *Index) rebuild(minW, maxW int64, sigLen int) Delta {
	old := make(map[lsh.Pair]struct{}, len(x.paircount))
	for p := range x.paircount {
		old[p] = struct{}{}
	}
	x.epoch++
	x.gridMin, x.gridMax = minW, maxW
	x.banding = lsh.NewBanding(sigLen, x.params)
	x.buckets = make([]map[uint64]*bucket, x.banding.Bands)
	for band := range x.buckets {
		x.buckets[band] = make(map[uint64]*bucket)
	}
	x.memberships = 0
	clear(x.paircount)
	x.pairsStale = true
	x.lastRebuild = true
	x.lastDirty = 0
	d := Delta{Rebuilt: true}
	if x.banding.Bands == 0 {
		// Degenerate geometry (zero-length signatures): mirror the batch
		// path, which enumerates nothing.
		clear(x.sigE)
		clear(x.sigI)
		for p := range old {
			d.Removed = append(d.Removed, p)
		}
		lsh.SortPairs(d.Removed)
		return d
	}

	// Insert every entity's band hashes. Membership lists are built first
	// and pair counts accumulated per bucket afterwards, which is the same
	// O(Σ|bucket_E|·|bucket_I|) enumeration the batch path performs.
	fill := func(store *history.Store, sigs map[model.EntityID]*entitySig, changed map[model.EntityID]struct{}, isE bool) {
		for _, id := range store.Entities() {
			es := sigs[id]
			h := store.History(id)
			if es == nil {
				es = &entitySig{}
				sigs[id] = es
				changed[id] = struct{}{}
			} else if es.version != h.Version() {
				changed[id] = struct{}{}
			}
			es.version = h.Version()
			es.sig = lsh.AppendSignature(es.sig, h, x.params.StepWindows, x.gridMin, x.gridMax, sigLen)
			es.bandHash = resize(es.bandHash, x.banding.Bands)
			es.hasBand = resize(es.hasBand, x.banding.Bands)
			for band := 0; band < x.banding.Bands; band++ {
				hv, ok := x.banding.BandHash(es.sig, band)
				es.bandHash[band], es.hasBand[band] = hv, ok
				if !ok {
					continue
				}
				bkt := x.buckets[band][hv]
				if bkt == nil {
					bkt = &bucket{}
					x.buckets[band][hv] = bkt
				}
				if isE {
					bkt.e = append(bkt.e, id)
				} else {
					bkt.i = append(bkt.i, id)
				}
				x.memberships++
			}
			x.lastDirty++
		}
	}
	fill(x.storeE, x.sigE, x.changedE, true)
	fill(x.storeI, x.sigI, x.changedI, false)

	for _, byHash := range x.buckets {
		for _, bkt := range byHash {
			for _, u := range bkt.e {
				for _, v := range bkt.i {
					x.paircount[lsh.Pair{U: u, V: v}]++
				}
			}
		}
	}

	for p := range x.paircount {
		if _, was := old[p]; !was {
			d.Added = append(d.Added, p)
			continue
		}
		delete(old, p)
		_, cu := x.changedE[p.U]
		_, cv := x.changedI[p.V]
		if cu || cv {
			d.Dirty = append(d.Dirty, p)
		}
	}
	for p := range old {
		d.Removed = append(d.Removed, p)
	}
	lsh.SortPairs(d.Added)
	lsh.SortPairs(d.Removed)
	lsh.SortPairs(d.Dirty)
	return d
}

// applySide delta-updates one side's dirty entities and returns how many
// signatures were actually recomputed.
func (x *Index) applySide(dirty map[model.EntityID]struct{}, isE bool) int {
	if len(dirty) == 0 || x.banding.Bands == 0 {
		return 0
	}
	store, sigs := x.storeE, x.sigE
	if !isE {
		store, sigs = x.storeI, x.sigI
	}
	changed := x.changedE
	if !isE {
		changed = x.changedI
	}
	n := 0
	for id := range dirty {
		h := store.History(id)
		if h == nil {
			continue
		}
		es := sigs[id]
		if es != nil && es.version == h.Version() {
			continue // marked dirty but unchanged since its last compute
		}
		changed[id] = struct{}{}
		fresh := es == nil
		if fresh {
			es = &entitySig{
				bandHash: make([]uint64, x.banding.Bands),
				hasBand:  make([]bool, x.banding.Bands),
			}
			sigs[id] = es
		}
		x.scratchSig = lsh.AppendSignature(x.scratchSig, h, x.params.StepWindows, x.gridMin, x.gridMax, x.banding.SigLen)
		x.scratchHash = resize(x.scratchHash, x.banding.Bands)
		x.scratchOK = resize(x.scratchOK, x.banding.Bands)
		for band := 0; band < x.banding.Bands; band++ {
			x.scratchHash[band], x.scratchOK[band] = x.banding.BandHash(x.scratchSig, band)
		}
		for band := 0; band < x.banding.Bands; band++ {
			oldOK, newOK := !fresh && es.hasBand[band], x.scratchOK[band]
			oldH, newH := es.bandHash[band], x.scratchHash[band]
			if oldOK == newOK && (!oldOK || oldH == newH) {
				continue // this band's bucket did not change
			}
			if oldOK {
				x.removeBand(band, oldH, id, isE)
			}
			if newOK {
				x.insertBand(band, newH, id, isE)
			}
		}
		copy(es.bandHash, x.scratchHash)
		copy(es.hasBand, x.scratchOK)
		es.sig = append(es.sig[:0], x.scratchSig...)
		es.version = h.Version()
		n++
	}
	return n
}

// insertBand adds id to one band bucket, counting the new collisions
// against the opposite side's current members.
func (x *Index) insertBand(band int, hash uint64, id model.EntityID, isE bool) {
	bkt := x.buckets[band][hash]
	if bkt == nil {
		bkt = &bucket{}
		x.buckets[band][hash] = bkt
	}
	if isE {
		for _, v := range bkt.i {
			x.bumpPair(lsh.Pair{U: id, V: v}, 1)
		}
		bkt.e = append(bkt.e, id)
	} else {
		for _, u := range bkt.e {
			x.bumpPair(lsh.Pair{U: u, V: id}, 1)
		}
		bkt.i = append(bkt.i, id)
	}
	x.memberships++
}

// removeBand removes id from one band bucket, releasing its collisions
// against the opposite side's current members.
func (x *Index) removeBand(band int, hash uint64, id model.EntityID, isE bool) {
	bkt := x.buckets[band][hash]
	if bkt == nil {
		return
	}
	if isE {
		bkt.e = cut(bkt.e, id)
		for _, v := range bkt.i {
			x.bumpPair(lsh.Pair{U: id, V: v}, -1)
		}
	} else {
		bkt.i = cut(bkt.i, id)
		for _, u := range bkt.e {
			x.bumpPair(lsh.Pair{U: u, V: id}, -1)
		}
	}
	x.memberships--
	if len(bkt.e) == 0 && len(bkt.i) == 0 {
		delete(x.buckets[band], hash)
	}
}

// bumpPair adjusts one pair's band-collision count, dropping the key at
// zero so len(paircount) stays the candidate count. Only membership
// changes (a count moving from or to zero) stale the sorted pair cache:
// count-only churn — an entity hopping between buckets it already shares
// with a counterpart in other bands — leaves the candidate set untouched
// and must not trigger an O(P log P) re-materialization. The first touch
// of a pair per Update records its pre-Update membership, the raw material
// of Delta.Added/Removed.
func (x *Index) bumpPair(p lsh.Pair, d int32) {
	old := x.paircount[p]
	if _, seen := x.touched[p]; !seen {
		x.touched[p] = old > 0
	}
	c := old + d
	if c <= 0 {
		if old > 0 {
			delete(x.paircount, p)
			x.pairsStale = true
		}
		return
	}
	x.paircount[p] = c
	if old == 0 {
		x.pairsStale = true
	}
}

// cut removes the first occurrence of id (each entity appears at most once
// per bucket) with an order-destroying swap-delete; bucket member order is
// irrelevant to the pair set.
func cut(s []model.EntityID, id model.EntityID) []model.EntityID {
	for k, v := range s {
		if v == id {
			s[k] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// resize returns a slice of exactly n elements, reusing s's backing array
// when it is large enough (contents are unspecified).
func resize[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// Pairs returns the current candidate set sorted by (U, V) — the same
// order as lsh.CandidatePairs. The slice is freshly allocated whenever the
// set changed, so callers may hold a previous return value across later
// Updates; they must not modify it.
func (x *Index) Pairs() []lsh.Pair {
	if x.pairsStale {
		pairs := make([]lsh.Pair, 0, len(x.paircount))
		for p := range x.paircount {
			pairs = append(pairs, p)
		}
		lsh.SortPairs(pairs)
		x.pairs = pairs
		x.pairsStale = false
	}
	if x.pairs == nil {
		x.pairs = []lsh.Pair{}
	}
	return x.pairs
}

// NumCandidates returns the candidate count without materializing Pairs.
func (x *Index) NumCandidates() int64 { return int64(len(x.paircount)) }

// Stats returns an observability snapshot of the index.
func (x *Index) Stats() Stats {
	nonEmpty := 0
	for _, byHash := range x.buckets {
		nonEmpty += len(byHash)
	}
	st := Stats{
		SignatureLen: x.banding.SigLen,
		Bands:        x.banding.Bands,
		Rows:         x.banding.Rows,
		NumBuckets:   x.banding.NumBuckets,
		Epoch:        x.epoch,
		SignaturesE:  len(x.sigE),
		SignaturesI:  len(x.sigI),
		Buckets:      nonEmpty,
		Memberships:  x.memberships,
		Candidates:   int64(len(x.paircount)),
		LastDirty:    x.lastDirty,
		LastRebuild:  x.lastRebuild,
		LastUpdate:   x.lastUpdate,
	}
	if nonEmpty > 0 {
		st.Occupancy = float64(x.memberships) / float64(nonEmpty)
	}
	return st
}
