// Package candidates maintains SLIM's banded-LSH candidate pair set
// incrementally. The batch path (internal/lsh.CandidatePairs) rebuilds
// every signature and re-enumerates every band-bucket collision on each
// call — an O(|E|+|I|) cost even when a single entity's history changed.
// This package keeps the filter state alive between relinks: per-entity
// signatures with history-version counters (mirroring the stale-entity
// recompile discipline of internal/history's compiled views), band→bucket
// hash maps, and a per-pair collision count. A dirty entity removes its
// old band hashes and inserts its new ones, touching only the buckets it
// left or entered, so a relink after a small ingest burst costs O(dirty)
// instead of O(everything).
//
// The contract is exactness, not approximation: after any interleaving of
// ingest, Pairs() equals a from-scratch lsh.CandidatePairs rebuild
// pair-for-pair (see the parity suite). The invariant that delivers this
// is simple: paircount[{u,v}] always equals the number of bands in which
// u and v currently share a bucket, and every bucket insert/remove updates
// it against the opposite side's current membership. The candidate set is
// the keys with positive count — exactly the batch path's "share a bucket
// in at least one band".
//
// Signature-geometry changes cannot be handled by delta: when the union
// window range grows past the current grid (a new minimum window shifts
// every query window; a signature-length change re-solves the Lambert-W
// banding and re-partitions every band), the index bumps its epoch and
// performs a full rebuild. Rebuilds are amortized — the range of a
// mobility feed grows ever more rarely as it ages, while per-entity churn
// never stops, which is exactly the case delta maintenance wins.
package candidates

import (
	"time"

	"slim/internal/history"
	"slim/internal/lsh"
	"slim/internal/model"
)

// Stats is a point-in-time snapshot of the index.
type Stats struct {
	// SignatureLen / Bands / Rows / NumBuckets describe the current
	// epoch's grid geometry (all zero while either store is empty).
	SignatureLen int
	Bands        int
	Rows         int
	NumBuckets   int
	// Epoch counts full rebuilds: 1 after the initial build, bumped every
	// time signature geometry forces the index to start over.
	Epoch uint64
	// SignaturesE / SignaturesI count maintained per-entity signatures.
	SignaturesE int
	SignaturesI int
	// Buckets counts non-empty (band, hash) buckets; Memberships counts
	// (entity, band) bucket entries; Occupancy is Memberships/Buckets.
	Buckets     int
	Memberships int
	Occupancy   float64
	// Candidates is the number of distinct cross-dataset candidate pairs.
	Candidates int64
	// LastDirty is how many entity signatures the last Update actually
	// recomputed; LastRebuild reports whether it was a full rebuild;
	// LastUpdate is its wall-clock duration.
	LastDirty   int
	LastRebuild bool
	LastUpdate  time.Duration
}

// entitySig is the maintained filter state of one entity: its signature
// over the current grid, the bucket hash of each band (hasBand false for
// placeholder-only bands, which are never hashed or bucketed), and the
// history version the signature was computed from.
type entitySig struct {
	version  uint64
	sig      lsh.Signature
	bandHash []uint64
	hasBand  []bool
}

// bucket holds one band bucket's members from each side.
type bucket struct {
	e []model.EntityID
	i []model.EntityID
}

// Index is an incrementally maintained banded-LSH candidate index over two
// history stores (built at the signature spatial level). It is not safe
// for concurrent use; callers serialize Update/Pairs/Stats like any other
// linker mutation.
type Index struct {
	params         lsh.Params
	storeE, storeI *history.Store

	// Grid of the current epoch: query window q covers leaf windows
	// [gridMin + q·step, …) and the final window clamps to gridMax+1.
	// banding.SigLen == 0 is the ungridded state (either store empty, or
	// a degenerate step): no signatures, no pairs.
	gridMin int64
	gridMax int64
	banding lsh.Banding
	epoch   uint64

	sigE, sigI map[model.EntityID]*entitySig

	// buckets[band] maps bucket hash → members. memberships counts all
	// (entity, band) entries for the occupancy stat.
	buckets     []map[uint64]*bucket
	memberships int

	// paircount[p] = number of bands in which p currently collides; keys
	// with positive count are the candidate set. pairs caches the sorted
	// materialization; pairsStale marks it outdated.
	paircount  map[lsh.Pair]int32
	pairs      []lsh.Pair
	pairsStale bool

	// Scratch buffers so delta updates allocate nothing per entity.
	scratchSig  lsh.Signature
	scratchHash []uint64
	scratchOK   []bool

	lastDirty   int
	lastRebuild bool
	lastUpdate  time.Duration
}

// New creates an empty index over the two signature stores. Call Update
// once to perform the initial build.
func New(storeE, storeI *history.Store, p lsh.Params) *Index {
	return &Index{
		params:    p,
		storeE:    storeE,
		storeI:    storeI,
		sigE:      make(map[model.EntityID]*entitySig),
		sigI:      make(map[model.EntityID]*entitySig),
		paircount: make(map[lsh.Pair]int32),
	}
}

// Update brings the index up to date with its stores. dirtyE and dirtyI
// name the entities whose histories may have changed since the previous
// Update (nil on the first call; entities whose history version is
// unchanged are skipped, so over-reporting is harmless — under-reporting
// is not). When the union window range still fits the current grid the
// index applies per-entity deltas; otherwise it bumps the epoch and
// rebuilds from scratch.
func (x *Index) Update(dirtyE, dirtyI map[model.EntityID]struct{}) {
	start := time.Now()
	minE, maxE, okE := x.storeE.WindowRange()
	minI, maxI, okI := x.storeI.WindowRange()
	if !okE || !okI {
		// Batch semantics: no candidates until both sides hold data. Both
		// stores only ever grow, so nothing can have been built yet.
		x.lastDirty, x.lastRebuild, x.lastUpdate = 0, false, time.Since(start)
		return
	}
	minW, maxW := minE, maxE
	if minI < minW {
		minW = minI
	}
	if maxI > maxW {
		maxW = maxI
	}
	sigLen := lsh.SignatureLength(minW, maxW, x.params.StepWindows)
	if sigLen != x.banding.SigLen || minW != x.gridMin {
		x.rebuild(minW, maxW, sigLen)
	} else {
		// The grid anchor and length are unchanged; a larger gridMax only
		// moves the (semantically inert) clamp of the final query window,
		// so clean entities' signatures remain exact. See the
		// AppendSignature doc comment for the argument.
		x.gridMax = maxW
		n := 0
		n += x.applySide(dirtyE, true)
		n += x.applySide(dirtyI, false)
		x.lastDirty, x.lastRebuild = n, false
	}
	x.lastUpdate = time.Since(start)
}

// rebuild starts a new epoch: fresh buckets and pair counts, every
// signature recomputed over the new grid.
func (x *Index) rebuild(minW, maxW int64, sigLen int) {
	x.epoch++
	x.gridMin, x.gridMax = minW, maxW
	x.banding = lsh.NewBanding(sigLen, x.params)
	x.buckets = make([]map[uint64]*bucket, x.banding.Bands)
	for band := range x.buckets {
		x.buckets[band] = make(map[uint64]*bucket)
	}
	x.memberships = 0
	clear(x.paircount)
	x.pairsStale = true
	x.lastRebuild = true
	x.lastDirty = 0
	if x.banding.Bands == 0 {
		// Degenerate geometry (zero-length signatures): mirror the batch
		// path, which enumerates nothing.
		clear(x.sigE)
		clear(x.sigI)
		return
	}

	// Insert every entity's band hashes. Membership lists are built first
	// and pair counts accumulated per bucket afterwards, which is the same
	// O(Σ|bucket_E|·|bucket_I|) enumeration the batch path performs.
	fill := func(store *history.Store, sigs map[model.EntityID]*entitySig, isE bool) {
		for _, id := range store.Entities() {
			es := sigs[id]
			if es == nil {
				es = &entitySig{}
				sigs[id] = es
			}
			h := store.History(id)
			es.version = h.Version()
			es.sig = lsh.AppendSignature(es.sig, h, x.params.StepWindows, x.gridMin, x.gridMax, sigLen)
			es.bandHash = resize(es.bandHash, x.banding.Bands)
			es.hasBand = resize(es.hasBand, x.banding.Bands)
			for band := 0; band < x.banding.Bands; band++ {
				hv, ok := x.banding.BandHash(es.sig, band)
				es.bandHash[band], es.hasBand[band] = hv, ok
				if !ok {
					continue
				}
				bkt := x.buckets[band][hv]
				if bkt == nil {
					bkt = &bucket{}
					x.buckets[band][hv] = bkt
				}
				if isE {
					bkt.e = append(bkt.e, id)
				} else {
					bkt.i = append(bkt.i, id)
				}
				x.memberships++
			}
			x.lastDirty++
		}
	}
	fill(x.storeE, x.sigE, true)
	fill(x.storeI, x.sigI, false)

	for _, byHash := range x.buckets {
		for _, bkt := range byHash {
			for _, u := range bkt.e {
				for _, v := range bkt.i {
					x.paircount[lsh.Pair{U: u, V: v}]++
				}
			}
		}
	}
}

// applySide delta-updates one side's dirty entities and returns how many
// signatures were actually recomputed.
func (x *Index) applySide(dirty map[model.EntityID]struct{}, isE bool) int {
	if len(dirty) == 0 || x.banding.Bands == 0 {
		return 0
	}
	store, sigs := x.storeE, x.sigE
	if !isE {
		store, sigs = x.storeI, x.sigI
	}
	n := 0
	for id := range dirty {
		h := store.History(id)
		if h == nil {
			continue
		}
		es := sigs[id]
		if es != nil && es.version == h.Version() {
			continue // marked dirty but unchanged since its last compute
		}
		fresh := es == nil
		if fresh {
			es = &entitySig{
				bandHash: make([]uint64, x.banding.Bands),
				hasBand:  make([]bool, x.banding.Bands),
			}
			sigs[id] = es
		}
		x.scratchSig = lsh.AppendSignature(x.scratchSig, h, x.params.StepWindows, x.gridMin, x.gridMax, x.banding.SigLen)
		x.scratchHash = resize(x.scratchHash, x.banding.Bands)
		x.scratchOK = resize(x.scratchOK, x.banding.Bands)
		for band := 0; band < x.banding.Bands; band++ {
			x.scratchHash[band], x.scratchOK[band] = x.banding.BandHash(x.scratchSig, band)
		}
		for band := 0; band < x.banding.Bands; band++ {
			oldOK, newOK := !fresh && es.hasBand[band], x.scratchOK[band]
			oldH, newH := es.bandHash[band], x.scratchHash[band]
			if oldOK == newOK && (!oldOK || oldH == newH) {
				continue // this band's bucket did not change
			}
			if oldOK {
				x.removeBand(band, oldH, id, isE)
			}
			if newOK {
				x.insertBand(band, newH, id, isE)
			}
		}
		copy(es.bandHash, x.scratchHash)
		copy(es.hasBand, x.scratchOK)
		es.sig = append(es.sig[:0], x.scratchSig...)
		es.version = h.Version()
		n++
	}
	return n
}

// insertBand adds id to one band bucket, counting the new collisions
// against the opposite side's current members.
func (x *Index) insertBand(band int, hash uint64, id model.EntityID, isE bool) {
	bkt := x.buckets[band][hash]
	if bkt == nil {
		bkt = &bucket{}
		x.buckets[band][hash] = bkt
	}
	if isE {
		for _, v := range bkt.i {
			x.bumpPair(lsh.Pair{U: id, V: v}, 1)
		}
		bkt.e = append(bkt.e, id)
	} else {
		for _, u := range bkt.e {
			x.bumpPair(lsh.Pair{U: u, V: id}, 1)
		}
		bkt.i = append(bkt.i, id)
	}
	x.memberships++
}

// removeBand removes id from one band bucket, releasing its collisions
// against the opposite side's current members.
func (x *Index) removeBand(band int, hash uint64, id model.EntityID, isE bool) {
	bkt := x.buckets[band][hash]
	if bkt == nil {
		return
	}
	if isE {
		bkt.e = cut(bkt.e, id)
		for _, v := range bkt.i {
			x.bumpPair(lsh.Pair{U: id, V: v}, -1)
		}
	} else {
		bkt.i = cut(bkt.i, id)
		for _, u := range bkt.e {
			x.bumpPair(lsh.Pair{U: u, V: id}, -1)
		}
	}
	x.memberships--
	if len(bkt.e) == 0 && len(bkt.i) == 0 {
		delete(x.buckets[band], hash)
	}
}

// bumpPair adjusts one pair's band-collision count, dropping the key at
// zero so len(paircount) stays the candidate count. Only membership
// changes (a count moving from or to zero) stale the sorted pair cache:
// count-only churn — an entity hopping between buckets it already shares
// with a counterpart in other bands — leaves the candidate set untouched
// and must not trigger an O(P log P) re-materialization.
func (x *Index) bumpPair(p lsh.Pair, d int32) {
	old := x.paircount[p]
	c := old + d
	if c <= 0 {
		if old > 0 {
			delete(x.paircount, p)
			x.pairsStale = true
		}
		return
	}
	x.paircount[p] = c
	if old == 0 {
		x.pairsStale = true
	}
}

// cut removes the first occurrence of id (each entity appears at most once
// per bucket) with an order-destroying swap-delete; bucket member order is
// irrelevant to the pair set.
func cut(s []model.EntityID, id model.EntityID) []model.EntityID {
	for k, v := range s {
		if v == id {
			s[k] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// resize returns a slice of exactly n elements, reusing s's backing array
// when it is large enough (contents are unspecified).
func resize[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// Pairs returns the current candidate set sorted by (U, V) — the same
// order as lsh.CandidatePairs. The slice is freshly allocated whenever the
// set changed, so callers may hold a previous return value across later
// Updates; they must not modify it.
func (x *Index) Pairs() []lsh.Pair {
	if x.pairsStale {
		pairs := make([]lsh.Pair, 0, len(x.paircount))
		for p := range x.paircount {
			pairs = append(pairs, p)
		}
		lsh.SortPairs(pairs)
		x.pairs = pairs
		x.pairsStale = false
	}
	if x.pairs == nil {
		x.pairs = []lsh.Pair{}
	}
	return x.pairs
}

// NumCandidates returns the candidate count without materializing Pairs.
func (x *Index) NumCandidates() int64 { return int64(len(x.paircount)) }

// Stats returns an observability snapshot of the index.
func (x *Index) Stats() Stats {
	nonEmpty := 0
	for _, byHash := range x.buckets {
		nonEmpty += len(byHash)
	}
	st := Stats{
		SignatureLen: x.banding.SigLen,
		Bands:        x.banding.Bands,
		Rows:         x.banding.Rows,
		NumBuckets:   x.banding.NumBuckets,
		Epoch:        x.epoch,
		SignaturesE:  len(x.sigE),
		SignaturesI:  len(x.sigI),
		Buckets:      nonEmpty,
		Memberships:  x.memberships,
		Candidates:   int64(len(x.paircount)),
		LastDirty:    x.lastDirty,
		LastRebuild:  x.lastRebuild,
		LastUpdate:   x.lastUpdate,
	}
	if nonEmpty > 0 {
		st.Occupancy = float64(x.memberships) / float64(nonEmpty)
	}
	return st
}
