package candidates

import (
	"testing"
	"time"

	"slim/internal/datagen"
	"slim/internal/geo"
	"slim/internal/history"
	"slim/internal/lsh"
	"slim/internal/model"
)

// benchParams is the filter configuration of the standard candidate-index
// workload (signature level 12, the repo's LSH sweep default).
var benchParams = lsh.Params{Threshold: 0.2, StepWindows: 48, SpatialLevel: 12, NumBuckets: 1 << 14}

// benchFixture samples the standard datagen Cab workload into two sides
// and builds their signature stores.
func benchFixture(taxis int) (se, si *history.Store, midUnix int64) {
	ground := datagen.Cab(datagen.CabConfig{
		NumTaxis: taxis, Days: 3, MeanRecordIntervalSec: 360, Seed: 99,
	})
	w := datagen.Sample(&ground, datagen.SampleConfig{
		IntersectionRatio: 0.5, InclusionProbE: 0.5, InclusionProbI: 0.5, Seed: 100,
	})
	wnd := model.NewWindowing(900, &w.E, &w.I)
	se = history.Build(&w.E, wnd, benchParams.SpatialLevel)
	si = history.Build(&w.I, wnd, benchParams.SpatialLevel)
	lo, hi, _ := w.E.TimeRange()
	return se, si, (lo + hi) / 2
}

// dirtyBurst synthesizes the k-th ~1% ingest burst: a handful of new
// records for every ~100th E entity, timestamped inside the existing
// window range so the signature grid (and thus the index epoch) is
// unchanged — the streaming steady state the index exists for.
func dirtyBurst(se *history.Store, midUnix int64, k int) ([]model.Record, map[model.EntityID]struct{}) {
	entities := se.Entities()
	n := len(entities) / 100
	if n < 1 {
		n = 1
	}
	dirty := make(map[model.EntityID]struct{}, n)
	var recs []model.Record
	for j := 0; j < n; j++ {
		id := entities[(j*100+k*7)%len(entities)]
		dirty[id] = struct{}{}
		for r := 0; r < 4; r++ {
			recs = append(recs, model.Record{
				Entity: id,
				LatLng: geo.LatLng{
					Lat: 37.6 + float64((k+j+r)%40)*0.005,
					Lng: -122.42 + float64((k*3+j+r)%40)*0.005,
				},
				Unix: midUnix + int64((k*5+r)%20)*900,
			})
		}
	}
	return recs, dirty
}

// BenchmarkCandidateRefreshFull measures what Linker.refreshLSHCandidates
// cost before the index: rebuild every signature and re-enumerate every
// band-bucket collision, regardless of how little changed.
func BenchmarkCandidateRefreshFull(b *testing.B) {
	se, si, _ := benchFixture(96)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batchPairs(se, si, benchParams)
	}
}

// BenchmarkCandidateIndexIncremental measures the index update for a ~1%
// dirty-entity ingest burst (records applied outside the timer; the
// measured work is exactly what a streaming relink pays).
func BenchmarkCandidateIndexIncremental(b *testing.B) {
	se, si, mid := benchFixture(96)
	x := New(se, si, benchParams)
	x.Update(nil, nil)
	x.Pairs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		recs, dirty := dirtyBurst(se, mid, i)
		for _, r := range recs {
			se.Add(r)
		}
		b.StartTimer()
		x.Update(dirty, nil)
		x.Pairs()
	}
}

// TestIndexIncrementalSpeedupOverFullRefresh is the acceptance gate: on
// the standard workload, updating the index after a ~1% dirty-entity
// burst must be at least 5x faster than the full refresh it replaced
// (in practice the gap is 1-2 orders of magnitude; 5x leaves headroom
// for noisy CI machines). Every measured update is also parity-checked.
func TestIndexIncrementalSpeedupOverFullRefresh(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test; skipped in -short")
	}
	se, si, mid := benchFixture(96)
	x := New(se, si, benchParams)
	x.Update(nil, nil)
	x.Pairs()

	const reps = 9
	var incr, full []time.Duration
	for k := 0; k < reps; k++ {
		recs, dirty := dirtyBurst(se, mid, k)
		for _, r := range recs {
			se.Add(r)
		}
		start := time.Now()
		x.Update(dirty, nil)
		got := x.Pairs()
		incr = append(incr, time.Since(start))
		if st := x.Stats(); st.LastRebuild {
			t.Fatalf("burst %d unexpectedly rebuilt the index; the gate must measure the delta path", k)
		}

		start = time.Now()
		want := batchPairs(se, si, benchParams)
		full = append(full, time.Since(start))
		if len(got) != len(want) {
			t.Fatalf("burst %d: parity broken, %d incremental vs %d batch pairs", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("burst %d: pair %d differs: %v vs %v", k, i, got[i], want[i])
			}
		}
	}
	med := func(ds []time.Duration) time.Duration {
		s := append([]time.Duration(nil), ds...)
		for i := 1; i < len(s); i++ { // tiny insertion sort
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return s[len(s)/2]
	}
	mi, mf := med(incr), med(full)
	speedup := float64(mf) / float64(mi)
	t.Logf("median incremental update %v, median full refresh %v: %.1fx", mi, mf, speedup)
	if speedup < 5 {
		t.Fatalf("incremental index update only %.1fx faster than full refresh (median %v vs %v); gate requires >= 5x",
			speedup, mi, mf)
	}
}
