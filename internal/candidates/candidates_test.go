package candidates

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"slim/internal/geo"
	"slim/internal/history"
	"slim/internal/lsh"
	"slim/internal/model"
)

var wnd = model.Windowing{Epoch: 0, WidthSeconds: 900}

const level = 13

func rec(e string, lat, lng float64, unix int64) model.Record {
	return model.Record{Entity: model.EntityID(e), LatLng: geo.LatLng{Lat: lat, Lng: lng}, Unix: unix}
}

// batchPairs is the from-scratch oracle: exactly what
// Linker.refreshLSHCandidates did before the index existed.
func batchPairs(se, si *history.Store, p lsh.Params) []lsh.Pair {
	minE, maxE, okE := se.WindowRange()
	minI, maxI, okI := si.WindowRange()
	if !okE || !okI {
		return []lsh.Pair{}
	}
	minW, maxW := minE, maxE
	if minI < minW {
		minW = minI
	}
	if maxI > maxW {
		maxW = maxI
	}
	sigsE := lsh.BuildSignatures(se, p.StepWindows, minW, maxW)
	sigsI := lsh.BuildSignatures(si, p.StepWindows, minW, maxW)
	pairs, _ := lsh.CandidatePairs(sigsE, sigsI, p)
	if pairs == nil {
		pairs = []lsh.Pair{}
	}
	return pairs
}

func requireParity(t *testing.T, x *Index, se, si *history.Store, p lsh.Params, step string) {
	t.Helper()
	want := batchPairs(se, si, p)
	got := x.Pairs()
	if !slices.Equal(got, want) {
		t.Fatalf("%s: incremental candidate set diverged from batch rebuild:\n  incremental %d pairs: %v\n  batch %d pairs: %v",
			step, len(got), got, len(want), want)
	}
	if x.NumCandidates() != int64(len(want)) {
		t.Fatalf("%s: NumCandidates = %d, want %d", step, x.NumCandidates(), len(want))
	}
}

// TestIndexRandomizedParity is the core exactness suite: random bursts of
// point and region records interleaved across both sides, including
// timestamps that stretch the window range forward and backward (forcing
// epoch rebuilds), must leave the index pair-for-pair equal to a
// from-scratch batch enumeration after every burst.
func TestIndexRandomizedParity(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			p := lsh.Params{Threshold: 0.3, StepWindows: 4, SpatialLevel: level, NumBuckets: 256}

			se := history.Build(&model.Dataset{Name: "E"}, wnd, level)
			si := history.Build(&model.Dataset{Name: "I"}, wnd, level)
			x := New(se, si, p)
			x.Update(nil, nil)
			requireParity(t, x, se, si, p, "empty")

			// Timestamps start mid-range so later bursts can extend the
			// grid on both ends.
			base := int64(900 * 100)
			span := int64(900 * 40)
			for burst := 0; burst < 30; burst++ {
				dirtyE := map[model.EntityID]struct{}{}
				dirtyI := map[model.EntityID]struct{}{}
				nRecs := 1 + rng.Intn(8)
				for k := 0; k < nRecs; k++ {
					side := rng.Intn(2)
					id := fmt.Sprintf("%c%d", "ei"[side], rng.Intn(12))
					unix := base + rng.Int63n(span)
					switch rng.Intn(8) {
					case 0: // stretch the range forward: sigLen grows
						unix = base + span + rng.Int63n(span)
						span += 900 * 10
					case 1: // stretch backward: the grid anchor shifts
						unix = base - rng.Int63n(900*20) - 1
						base -= 900 * 5
					}
					r := rec(id, 37.6+float64(rng.Intn(50))*0.01, -122.4+float64(rng.Intn(50))*0.01, unix)
					if rng.Intn(4) == 0 {
						r.RadiusKm = 0.2 + rng.Float64()*2 // region record
					}
					if side == 0 {
						se.Add(r)
						dirtyE[r.Entity] = struct{}{}
					} else {
						si.Add(r)
						dirtyI[r.Entity] = struct{}{}
					}
				}
				x.Update(dirtyE, dirtyI)
				requireParity(t, x, se, si, p, fmt.Sprintf("burst %d", burst))
			}
			if x.Stats().Epoch < 2 {
				t.Fatalf("workload never forced an epoch rebuild (epoch=%d); the suite must exercise both paths", x.Stats().Epoch)
			}
		})
	}
}

// TestIndexDeltaPathIsExercised pins down that in-grid churn actually
// takes the delta path (no epoch bump) and still matches the oracle —
// otherwise the parity suite could pass by rebuilding every time.
func TestIndexDeltaPathIsExercised(t *testing.T) {
	p := lsh.Params{Threshold: 0.3, StepWindows: 4, SpatialLevel: level, NumBuckets: 256}
	var eRecs, iRecs []model.Record
	for e := 0; e < 10; e++ {
		for k := 0; k < 20; k++ {
			unix := int64(900 * k * 2)
			eRecs = append(eRecs, rec(fmt.Sprintf("e%d", e), 37.6+float64(e)*0.01, -122.4, unix))
			iRecs = append(iRecs, rec(fmt.Sprintf("i%d", e), 37.6+float64(e)*0.01, -122.4, unix+60))
		}
	}
	se := history.Build(&model.Dataset{Name: "E", Records: eRecs}, wnd, level)
	si := history.Build(&model.Dataset{Name: "I", Records: iRecs}, wnd, level)
	x := New(se, si, p)
	x.Update(nil, nil)
	if got := x.Stats().Epoch; got != 1 {
		t.Fatalf("epoch after initial build = %d, want 1", got)
	}
	requireParity(t, x, se, si, p, "initial")

	// Move one entity inside the existing grid: the update must be a
	// delta (same epoch, one dirty signature) and stay exact.
	se.Add(rec("e3", 37.9, -122.1, 900*7))
	x.Update(map[model.EntityID]struct{}{"e3": {}}, nil)
	st := x.Stats()
	if st.Epoch != 1 {
		t.Fatalf("in-grid churn bumped the epoch to %d; expected a delta update", st.Epoch)
	}
	if st.LastRebuild || st.LastDirty != 1 {
		t.Fatalf("delta update stats: LastRebuild=%v LastDirty=%d, want false/1", st.LastRebuild, st.LastDirty)
	}
	requireParity(t, x, se, si, p, "delta")

	// A record before the grid start must rebuild.
	si.Add(rec("i0", 37.6, -122.4, -900*3))
	x.Update(nil, map[model.EntityID]struct{}{"i0": {}})
	st = x.Stats()
	if st.Epoch != 2 || !st.LastRebuild {
		t.Fatalf("backward range growth: epoch=%d LastRebuild=%v, want 2/true", st.Epoch, st.LastRebuild)
	}
	requireParity(t, x, se, si, p, "rebuild")
}

// TestIndexSkipsUnchangedDirtyEntities verifies the version-counter
// discipline: an entity reported dirty whose history version is unchanged
// is not recomputed.
func TestIndexSkipsUnchangedDirtyEntities(t *testing.T) {
	p := lsh.Params{Threshold: 0.3, StepWindows: 4, SpatialLevel: level, NumBuckets: 256}
	var eRecs, iRecs []model.Record
	for k := 0; k < 20; k++ {
		eRecs = append(eRecs, rec("e0", 37.6, -122.4, int64(900*k)))
		iRecs = append(iRecs, rec("i0", 37.6, -122.4, int64(900*k)))
	}
	se := history.Build(&model.Dataset{Name: "E", Records: eRecs}, wnd, level)
	si := history.Build(&model.Dataset{Name: "I", Records: iRecs}, wnd, level)
	x := New(se, si, p)
	x.Update(nil, nil)

	x.Update(map[model.EntityID]struct{}{"e0": {}}, map[model.EntityID]struct{}{"i0": {}, "ghost": {}})
	st := x.Stats()
	if st.LastDirty != 0 {
		t.Fatalf("LastDirty = %d after a no-op dirty report, want 0 (version check must skip)", st.LastDirty)
	}
	requireParity(t, x, se, si, p, "noop")
}

// TestIndexOneSideEmpty mirrors the batch semantics: no candidates until
// both stores hold data, then a first build on the transition.
func TestIndexOneSideEmpty(t *testing.T) {
	p := lsh.Params{Threshold: 0.3, StepWindows: 4, SpatialLevel: level, NumBuckets: 256}
	se := history.Build(&model.Dataset{Name: "E"}, wnd, level)
	si := history.Build(&model.Dataset{Name: "I"}, wnd, level)
	x := New(se, si, p)

	se.Add(rec("e0", 37.6, -122.4, 900))
	x.Update(map[model.EntityID]struct{}{"e0": {}}, nil)
	if len(x.Pairs()) != 0 || x.Stats().Epoch != 0 {
		t.Fatalf("one-side-empty index built anyway: %d pairs, epoch %d", len(x.Pairs()), x.Stats().Epoch)
	}
	si.Add(rec("i0", 37.6, -122.4, 930))
	x.Update(nil, map[model.EntityID]struct{}{"i0": {}})
	if x.Stats().Epoch != 1 {
		t.Fatalf("epoch after both sides filled = %d, want 1", x.Stats().Epoch)
	}
	requireParity(t, x, se, si, p, "both sides")
}

// TestIndexPairsSliceStability: a Pairs() slice held across later updates
// must not be mutated (fresh materialization per change).
func TestIndexPairsSliceStability(t *testing.T) {
	p := lsh.Params{Threshold: 0.3, StepWindows: 4, SpatialLevel: level, NumBuckets: 256}
	var eRecs, iRecs []model.Record
	for e := 0; e < 6; e++ {
		for k := 0; k < 10; k++ {
			eRecs = append(eRecs, rec(fmt.Sprintf("e%d", e), 37.6+float64(e)*0.02, -122.4, int64(900*k)))
			iRecs = append(iRecs, rec(fmt.Sprintf("i%d", e), 37.6+float64(e)*0.02, -122.4, int64(900*k+60)))
		}
	}
	se := history.Build(&model.Dataset{Name: "E", Records: eRecs}, wnd, level)
	si := history.Build(&model.Dataset{Name: "I", Records: iRecs}, wnd, level)
	x := New(se, si, p)
	x.Update(nil, nil)
	held := x.Pairs()
	snapshot := slices.Clone(held)

	se.Add(rec("e1", 38.2, -121.9, 900*5))
	x.Update(map[model.EntityID]struct{}{"e1": {}}, nil)
	x.Pairs()
	if !slices.Equal(held, snapshot) {
		t.Fatal("a held Pairs() slice was mutated by a later Update")
	}
}

// TestIndexStatsShape sanity-checks the occupancy bookkeeping against a
// direct recount of the bucket maps.
func TestIndexStatsShape(t *testing.T) {
	p := lsh.Params{Threshold: 0.3, StepWindows: 4, SpatialLevel: level, NumBuckets: 256}
	var eRecs, iRecs []model.Record
	for e := 0; e < 8; e++ {
		for k := 0; k < 12; k++ {
			eRecs = append(eRecs, rec(fmt.Sprintf("e%d", e), 37.6+float64(e)*0.03, -122.4, int64(900*(k*3+e))))
			iRecs = append(iRecs, rec(fmt.Sprintf("i%d", e), 37.6+float64(e)*0.03, -122.4, int64(900*(k*3+e)+60)))
		}
	}
	se := history.Build(&model.Dataset{Name: "E", Records: eRecs}, wnd, level)
	si := history.Build(&model.Dataset{Name: "I", Records: iRecs}, wnd, level)
	x := New(se, si, p)
	x.Update(nil, nil)
	se.Add(rec("e2", 38.0, -122.0, 900*9))
	x.Update(map[model.EntityID]struct{}{"e2": {}}, nil)

	st := x.Stats()
	if st.SignaturesE != 8 || st.SignaturesI != 8 {
		t.Fatalf("signature counts = %d/%d, want 8/8", st.SignaturesE, st.SignaturesI)
	}
	members, nonEmpty := 0, 0
	for _, byHash := range x.buckets {
		nonEmpty += len(byHash)
		for _, bkt := range byHash {
			members += len(bkt.e) + len(bkt.i)
		}
	}
	if st.Buckets != nonEmpty || st.Memberships != members {
		t.Fatalf("stats buckets/memberships = %d/%d, recount = %d/%d", st.Buckets, st.Memberships, nonEmpty, members)
	}
	if nonEmpty > 0 && st.Occupancy != float64(members)/float64(nonEmpty) {
		t.Fatalf("occupancy = %g, want %g", st.Occupancy, float64(members)/float64(nonEmpty))
	}
	if st.LastUpdate <= 0 {
		t.Fatal("LastUpdate duration not recorded")
	}
}

// TestIndexCountOnlyChurnKeepsPairCache: when an entity's band hash
// changes but the pair it forms survives via other bands (a count-only
// transition, no membership change), Pairs() must return the cached
// slice instead of re-sorting the world.
func TestIndexCountOnlyChurnKeepsPairCache(t *testing.T) {
	p := lsh.Params{Threshold: 0.2, StepWindows: 4, SpatialLevel: level, NumBuckets: 256}
	// e0 and i0 share every dominating cell over 16 windows → sigLen 4.
	var eRecs, iRecs []model.Record
	for k := 0; k < 16; k++ {
		eRecs = append(eRecs, rec("e0", 37.6+float64(k)*0.02, -122.4, int64(900*k)))
		iRecs = append(iRecs, rec("i0", 37.6+float64(k)*0.02, -122.4, int64(900*k)))
	}
	se := history.Build(&model.Dataset{Name: "E", Records: eRecs}, wnd, level)
	si := history.Build(&model.Dataset{Name: "I", Records: iRecs}, wnd, level)
	x := New(se, si, p)
	x.Update(nil, nil)
	if b := x.Stats().Bands; b < 2 {
		t.Skipf("geometry yielded %d band(s); need >= 2 for count-only churn", b)
	}
	before := x.Pairs()
	if len(before) != 1 {
		t.Fatalf("fixture should collide in every band: %d pairs", len(before))
	}

	// Overwhelm window 0's dominating cell: the first band's hash moves
	// (count 2 -> 1 on the surviving pair) while later bands still match.
	for n := 0; n < 3; n++ {
		se.Add(rec("e0", 37.9, -121.9, int64(n)))
	}
	x.Update(map[model.EntityID]struct{}{"e0": {}}, nil)
	after := x.Pairs()
	if &after[0] != &before[0] {
		t.Fatal("count-only churn re-materialized the pair cache")
	}
	requireParity(t, x, se, si, p, "count-only churn")
}
