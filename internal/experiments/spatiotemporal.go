package experiments

import (
	"fmt"

	"slim"
	"slim/internal/eval"
)

// SpatioTemporalOptions sets the grid of Fig. 4 (Cab) and Fig. 5 (SM):
// precision, recall, alibi pairs and record comparisons as a composite
// function of the spatial detail and the temporal window width.
type SpatioTemporalOptions struct {
	Levels     []int
	WindowsMin []float64
}

// DefaultSpatioTemporalOptions mirrors the paper's axes (subsampled).
func DefaultSpatioTemporalOptions() SpatioTemporalOptions {
	return SpatioTemporalOptions{
		Levels:     []int{4, 8, 12, 16, 20},
		WindowsMin: []float64{15, 60, 180, 360},
	}
}

// STCell is one grid point of the spatio-temporal sweep.
type STCell struct {
	Level     int
	WindowMin float64
	Precision float64
	Recall    float64
	F1        float64
	// AlibiPairs counts bin pairs with negative proximity.
	AlibiPairs int64
	// BinComparisons counts bin-pair distance evaluations — the pairing
	// work that grows with both spatial detail and window width, the
	// quantity behind Fig. 4d/5d.
	BinComparisons int64
	// RecordComparisons is the equivalent record-pair count (independent
	// of spatial level; grows with window width).
	RecordComparisons int64
}

// STResult is the full sweep for one dataset.
type STResult struct {
	Dataset string
	Cells   []STCell
}

// Tables renders the four panels of the figure.
func (r STResult) Tables() []eval.Table {
	panels := []struct {
		name string
		get  func(STCell) string
	}{
		{"precision", func(c STCell) string { return fmt.Sprintf("%.3f", c.Precision) }},
		{"recall", func(c STCell) string { return fmt.Sprintf("%.3f", c.Recall) }},
		{"alibi-pairs", func(c STCell) string { return fmt.Sprintf("%d", c.AlibiPairs) }},
		{"bin-comparisons (pairing work)", func(c STCell) string { return fmt.Sprintf("%d", c.BinComparisons) }},
	}
	// Collect the axes in first-seen order.
	var levels []int
	var windows []float64
	seenL := map[int]bool{}
	seenW := map[float64]bool{}
	for _, c := range r.Cells {
		if !seenL[c.Level] {
			seenL[c.Level] = true
			levels = append(levels, c.Level)
		}
		if !seenW[c.WindowMin] {
			seenW[c.WindowMin] = true
			windows = append(windows, c.WindowMin)
		}
	}
	cell := func(l int, w float64) (STCell, bool) {
		for _, c := range r.Cells {
			if c.Level == l && c.WindowMin == w {
				return c, true
			}
		}
		return STCell{}, false
	}
	var tables []eval.Table
	for _, p := range panels {
		t := eval.Table{
			Title:  fmt.Sprintf("%s: %s vs (spatial level x window width)", r.Dataset, p.name),
			Header: append([]string{"window\\level"}, intsToStrings(levels)...),
		}
		for _, w := range windows {
			row := []string{fmt.Sprintf("%gmin", w)}
			for _, l := range levels {
				if c, ok := cell(l, w); ok {
					row = append(row, p.get(c))
				} else {
					row = append(row, "-")
				}
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables
}

func intsToStrings(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%d", x)
	}
	return out
}

// Fig4SpatioTemporalCab reproduces Fig. 4: the spatio-temporal sweep on
// the Cab workload with the paper's default sampling (ratio .5, incl .5).
func Fig4SpatioTemporalCab(sc Scale, opt SpatioTemporalOptions) (STResult, error) {
	ground := cabGround(sc)
	w := workload(&ground, 0.5, 0.5, 0.5, sc.Seed+10)
	return stSweep("cab", w, sc, opt)
}

// Fig5SpatioTemporalSM reproduces Fig. 5: the same sweep on SM.
func Fig5SpatioTemporalSM(sc Scale, opt SpatioTemporalOptions) (STResult, error) {
	ground := smGround(sc)
	w := workload(&ground, 0.5, 0.5, 0.5, sc.Seed+11)
	return stSweep("sm", w, sc, opt)
}

func stSweep(name string, w slim.SampledWorkload, sc Scale, opt SpatioTemporalOptions) (STResult, error) {
	res := STResult{Dataset: name}
	for _, windowMin := range opt.WindowsMin {
		for _, level := range opt.Levels {
			cfg := baseConfig(windowMin, level, sc.Workers)
			rr, err := run(w, cfg)
			if err != nil {
				return STResult{}, err
			}
			res.Cells = append(res.Cells, STCell{
				Level:             level,
				WindowMin:         windowMin,
				Precision:         rr.Metrics.Precision,
				Recall:            rr.Metrics.Recall,
				F1:                rr.Metrics.F1,
				AlibiPairs:        rr.Res.Stats.AlibiBinPairs,
				BinComparisons:    rr.Res.Stats.BinComparisons,
				RecordComparisons: rr.Res.Stats.RecordComparisons,
			})
		}
	}
	return res, nil
}
