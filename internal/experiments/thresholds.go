package experiments

import (
	"fmt"

	"slim"
	"slim/internal/eval"
)

// ThresholdMethodCell is one (method, dataset) measurement.
type ThresholdMethodCell struct {
	Method    string
	Dataset   string
	F1        float64
	Precision float64
	Recall    float64
	Threshold float64
}

// ThresholdMethodsResult reproduces the Sec. 5.2.1 remark that the GMM
// stop-threshold detector, Otsu's method and 2-means clustering behave
// similarly on the default workloads.
type ThresholdMethodsResult struct {
	Cells []ThresholdMethodCell
}

// Table renders one row per (dataset, method).
func (r ThresholdMethodsResult) Table() eval.Table {
	t := eval.Table{
		Title:  "stop-threshold detectors compared (Sec. 5.2.1 remark)",
		Header: []string{"dataset", "method", "threshold", "precision", "recall", "F1"},
	}
	for _, c := range r.Cells {
		t.AddRow(c.Dataset, c.Method, fmt.Sprintf("%.4g", c.Threshold),
			fmt.Sprintf("%.3f", c.Precision), fmt.Sprintf("%.3f", c.Recall), fmt.Sprintf("%.3f", c.F1))
	}
	return t
}

// F1Spread returns max-min F1 across methods for the given dataset — the
// quantity that should be small if the methods agree.
func (r ThresholdMethodsResult) F1Spread(dataset string) float64 {
	lo, hi := 2.0, -1.0
	for _, c := range r.Cells {
		if c.Dataset != dataset {
			continue
		}
		if c.F1 < lo {
			lo = c.F1
		}
		if c.F1 > hi {
			hi = c.F1
		}
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// ThresholdMethods runs the default Cab and SM workloads under each
// detector.
func ThresholdMethods(sc Scale) (ThresholdMethodsResult, error) {
	var res ThresholdMethodsResult
	methods := []slim.ThresholdMethod{slim.ThresholdGMM, slim.ThresholdOtsu, slim.ThresholdKMeans}

	cabG := cabGround(sc)
	smG := smGround(sc)
	workloads := []struct {
		name string
		w    slim.SampledWorkload
	}{
		{"cab", workload(&cabG, 0.5, 0.5, 0.5, sc.Seed+90)},
		{"sm", workload(&smG, 0.5, 0.5, 0.5, sc.Seed+91)},
	}
	for _, wl := range workloads {
		for _, m := range methods {
			cfg := baseConfig(15, 12, sc.Workers)
			cfg.Threshold = m
			rr, err := run(wl.w, cfg)
			if err != nil {
				return ThresholdMethodsResult{}, err
			}
			res.Cells = append(res.Cells, ThresholdMethodCell{
				Method:    string(m),
				Dataset:   wl.name,
				F1:        rr.Metrics.F1,
				Precision: rr.Metrics.Precision,
				Recall:    rr.Metrics.Recall,
				Threshold: rr.Res.Threshold,
			})
		}
	}
	return res, nil
}
