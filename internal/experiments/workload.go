package experiments

import (
	"fmt"
	"time"

	"slim"
	"slim/internal/eval"
)

// WorkloadOptions sets the Fig. 7 grid: F1 and runtime as a function of
// the record inclusion probability, one series per intersection ratio.
type WorkloadOptions struct {
	InclusionProbs []float64
	Ratios         []float64
}

// DefaultWorkloadOptions mirrors the paper's axes.
func DefaultWorkloadOptions() WorkloadOptions {
	return WorkloadOptions{
		InclusionProbs: []float64{0.1, 0.3, 0.5, 0.7, 0.9},
		Ratios:         []float64{0.3, 0.5, 0.7, 0.9},
	}
}

// WorkloadCell is one (ratio, inclusion) measurement.
type WorkloadCell struct {
	Ratio         float64
	InclusionProb float64
	F1            float64
	Precision     float64
	Recall        float64
	Runtime       time.Duration
	AvgRecords    float64
}

// WorkloadResult is the Fig. 7 sweep for one dataset.
type WorkloadResult struct {
	Dataset string
	Cells   []WorkloadCell
}

// Tables renders the F1 and runtime panels.
func (r WorkloadResult) Tables() []eval.Table {
	var ratios, probs []float64
	seenR := map[float64]bool{}
	seenP := map[float64]bool{}
	for _, c := range r.Cells {
		if !seenR[c.Ratio] {
			seenR[c.Ratio] = true
			ratios = append(ratios, c.Ratio)
		}
		if !seenP[c.InclusionProb] {
			seenP[c.InclusionProb] = true
			probs = append(probs, c.InclusionProb)
		}
	}
	cell := func(ratio, prob float64) (WorkloadCell, bool) {
		for _, c := range r.Cells {
			if c.Ratio == ratio && c.InclusionProb == prob {
				return c, true
			}
		}
		return WorkloadCell{}, false
	}
	f1 := eval.Table{
		Title:  fmt.Sprintf("%s: F1 vs inclusion probability (series = intersection ratio)", r.Dataset),
		Header: append([]string{"ratio\\incl"}, floatsToStrings(probs)...),
	}
	rt := eval.Table{
		Title:  fmt.Sprintf("%s: runtime (ms) vs inclusion probability (series = intersection ratio)", r.Dataset),
		Header: append([]string{"ratio\\incl"}, floatsToStrings(probs)...),
	}
	for _, ratio := range ratios {
		rowF1 := []string{fmt.Sprintf("%g", ratio)}
		rowRT := []string{fmt.Sprintf("%g", ratio)}
		for _, prob := range probs {
			if c, ok := cell(ratio, prob); ok {
				rowF1 = append(rowF1, fmt.Sprintf("%.3f", c.F1))
				rowRT = append(rowRT, fmt.Sprintf("%d", c.Runtime.Milliseconds()))
			} else {
				rowF1 = append(rowF1, "-")
				rowRT = append(rowRT, "-")
			}
		}
		f1.Rows = append(f1.Rows, rowF1)
		rt.Rows = append(rt.Rows, rowRT)
	}
	return []eval.Table{f1, rt}
}

func floatsToStrings(xs []float64) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%g", x)
	}
	return out
}

// Fig7WorkloadCab reproduces Fig. 7a/7b on the Cab workload.
func Fig7WorkloadCab(sc Scale, opt WorkloadOptions) (WorkloadResult, error) {
	ground := cabGround(sc)
	return workloadSweep("cab", &ground, sc, opt)
}

// Fig7WorkloadSM reproduces Fig. 7c/7d on the SM workload.
func Fig7WorkloadSM(sc Scale, opt WorkloadOptions) (WorkloadResult, error) {
	ground := smGround(sc)
	return workloadSweep("sm", &ground, sc, opt)
}

func workloadSweep(name string, ground *slim.Dataset, sc Scale, opt WorkloadOptions) (WorkloadResult, error) {
	res := WorkloadResult{Dataset: name}
	seed := sc.Seed + 30
	for _, ratio := range opt.Ratios {
		for _, prob := range opt.InclusionProbs {
			seed++
			w := workload(ground, ratio, prob, prob, seed)
			cfg := baseConfig(15, 12, sc.Workers)
			rr, err := run(w, cfg)
			if err != nil {
				return WorkloadResult{}, err
			}
			avgE := avgRecords(&w.E)
			res.Cells = append(res.Cells, WorkloadCell{
				Ratio:         ratio,
				InclusionProb: prob,
				F1:            rr.Metrics.F1,
				Precision:     rr.Metrics.Precision,
				Recall:        rr.Metrics.Recall,
				Runtime:       rr.Elapsed,
				AvgRecords:    avgE,
			})
		}
	}
	return res, nil
}
