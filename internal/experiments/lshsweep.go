package experiments

import (
	"fmt"

	"slim"
	"slim/internal/eval"
)

// LSHLevelOptions sets the Fig. 8 grid: LSH relative F1 and speed-up as a
// function of the signature spatial level and temporal step size.
type LSHLevelOptions struct {
	SigLevels []int
	Steps     []int
	Threshold float64
	Buckets   int
}

// DefaultLSHLevelOptions mirrors the paper's axes (t=0.6, 4096 buckets),
// subsampled.
func DefaultLSHLevelOptions() LSHLevelOptions {
	return LSHLevelOptions{
		SigLevels: []int{4, 8, 12, 16, 20},
		Steps:     []int{8, 16, 48, 96},
		Threshold: 0.6,
		Buckets:   4096,
	}
}

// LSHCell is one (level, step) measurement.
type LSHCell struct {
	SigLevel   int
	Step       int
	RelativeF1 float64
	SpeedUp    float64
	Candidates int64
}

// LSHLevelResult is the Fig. 8 sweep for one dataset.
type LSHLevelResult struct {
	Dataset    string
	BaselineF1 float64
	// BaselineComparisons is the brute-force record comparison count.
	BaselineComparisons int64
	Cells               []LSHCell
}

// Tables renders the relative-F1 and speed-up panels.
func (r LSHLevelResult) Tables() []eval.Table {
	var levels, steps []int
	seenL := map[int]bool{}
	seenS := map[int]bool{}
	for _, c := range r.Cells {
		if !seenL[c.SigLevel] {
			seenL[c.SigLevel] = true
			levels = append(levels, c.SigLevel)
		}
		if !seenS[c.Step] {
			seenS[c.Step] = true
			steps = append(steps, c.Step)
		}
	}
	cell := func(l, s int) (LSHCell, bool) {
		for _, c := range r.Cells {
			if c.SigLevel == l && c.Step == s {
				return c, true
			}
		}
		return LSHCell{}, false
	}
	rel := eval.Table{
		Title:  fmt.Sprintf("%s: relative F1 vs (signature level x temporal step), baseline F1=%.3f", r.Dataset, r.BaselineF1),
		Header: append([]string{"step\\level"}, intsToStrings(levels)...),
	}
	sp := eval.Table{
		Title:  fmt.Sprintf("%s: speed-up vs (signature level x temporal step)", r.Dataset),
		Header: append([]string{"step\\level"}, intsToStrings(levels)...),
	}
	for _, s := range steps {
		rowRel := []string{fmt.Sprintf("%d", s)}
		rowSp := []string{fmt.Sprintf("%d", s)}
		for _, l := range levels {
			if c, ok := cell(l, s); ok {
				rowRel = append(rowRel, fmt.Sprintf("%.3f", c.RelativeF1))
				rowSp = append(rowSp, fmt.Sprintf("%.1fx", c.SpeedUp))
			} else {
				rowRel = append(rowRel, "-")
				rowSp = append(rowSp, "-")
			}
		}
		rel.Rows = append(rel.Rows, rowRel)
		sp.Rows = append(sp.Rows, rowSp)
	}
	return []eval.Table{rel, sp}
}

// Fig8LSHLevelsCab reproduces Fig. 8a/8b on Cab.
func Fig8LSHLevelsCab(sc Scale, opt LSHLevelOptions) (LSHLevelResult, error) {
	ground := cabGround(sc)
	w := workload(&ground, 0.5, 0.5, 0.5, sc.Seed+40)
	return lshLevelSweep("cab", w, sc, opt)
}

// Fig8LSHLevelsSM reproduces Fig. 8c/8d on SM.
func Fig8LSHLevelsSM(sc Scale, opt LSHLevelOptions) (LSHLevelResult, error) {
	ground := smGround(sc)
	w := workload(&ground, 0.5, 0.5, 0.5, sc.Seed+41)
	return lshLevelSweep("sm", w, sc, opt)
}

func lshLevelSweep(name string, w slim.SampledWorkload, sc Scale, opt LSHLevelOptions) (LSHLevelResult, error) {
	base, err := run(w, baseConfig(15, 12, sc.Workers))
	if err != nil {
		return LSHLevelResult{}, err
	}
	res := LSHLevelResult{
		Dataset:             name,
		BaselineF1:          base.Metrics.F1,
		BaselineComparisons: base.Res.Stats.RecordComparisons,
	}
	for _, level := range opt.SigLevels {
		for _, step := range opt.Steps {
			cfg := baseConfig(15, 12, sc.Workers)
			cfg.LSH = &slim.LSHConfig{
				Threshold:    opt.Threshold,
				StepWindows:  step,
				SpatialLevel: level,
				NumBuckets:   opt.Buckets,
			}
			rr, err := run(w, cfg)
			if err != nil {
				return LSHLevelResult{}, err
			}
			res.Cells = append(res.Cells, LSHCell{
				SigLevel:   level,
				Step:       step,
				RelativeF1: eval.RelativeF1(rr.Metrics.F1, base.Metrics.F1),
				SpeedUp:    eval.SpeedUp(base.Res.Stats.RecordComparisons, rr.Res.Stats.RecordComparisons),
				Candidates: rr.Res.Stats.CandidatePairs,
			})
		}
	}
	return res, nil
}

// LSHBucketOptions sets the Fig. 9 grid: speed-up as a function of the
// bucket-array size, one series per LSH similarity threshold.
type LSHBucketOptions struct {
	BucketExponents []int // bucket counts 2^e
	Thresholds      []float64
	SigLevel        int
	Step            int
}

// DefaultLSHBucketOptions mirrors the paper (buckets 2^8..2^20, t .4-.8,
// signature level 16, step 48), subsampled.
func DefaultLSHBucketOptions() LSHBucketOptions {
	return LSHBucketOptions{
		BucketExponents: []int{8, 10, 12, 14, 16, 18, 20},
		Thresholds:      []float64{0.4, 0.6, 0.8},
		SigLevel:        16,
		Step:            48,
	}
}

// LSHBucketCell is one (buckets, threshold) measurement.
type LSHBucketCell struct {
	BucketExp  int
	Threshold  float64
	SpeedUp    float64
	RelativeF1 float64
	Candidates int64
}

// LSHBucketResult is the Fig. 9 sweep for one dataset.
type LSHBucketResult struct {
	Dataset    string
	BaselineF1 float64
	Cells      []LSHBucketCell
}

// Table renders the speed-up panel (relative F1 in parentheses).
func (r LSHBucketResult) Table() eval.Table {
	var exps []int
	var thrs []float64
	seenE := map[int]bool{}
	seenT := map[float64]bool{}
	for _, c := range r.Cells {
		if !seenE[c.BucketExp] {
			seenE[c.BucketExp] = true
			exps = append(exps, c.BucketExp)
		}
		if !seenT[c.Threshold] {
			seenT[c.Threshold] = true
			thrs = append(thrs, c.Threshold)
		}
	}
	t := eval.Table{
		Title:  fmt.Sprintf("%s: speed-up (relF1) vs number of buckets, series = LSH threshold", r.Dataset),
		Header: append([]string{"t\\buckets"}, expHeaders(exps)...),
	}
	for _, thr := range thrs {
		row := []string{fmt.Sprintf("%g", thr)}
		for _, e := range exps {
			found := false
			for _, c := range r.Cells {
				if c.BucketExp == e && c.Threshold == thr {
					row = append(row, fmt.Sprintf("%.1fx (%.2f)", c.SpeedUp, c.RelativeF1))
					found = true
					break
				}
			}
			if !found {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func expHeaders(exps []int) []string {
	out := make([]string, len(exps))
	for i, e := range exps {
		out[i] = fmt.Sprintf("2^%d", e)
	}
	return out
}

// Fig9LSHBucketsCab reproduces Fig. 9a on Cab.
func Fig9LSHBucketsCab(sc Scale, opt LSHBucketOptions) (LSHBucketResult, error) {
	ground := cabGround(sc)
	w := workload(&ground, 0.5, 0.5, 0.5, sc.Seed+50)
	return lshBucketSweep("cab", w, sc, opt)
}

// Fig9LSHBucketsSM reproduces Fig. 9b on SM.
func Fig9LSHBucketsSM(sc Scale, opt LSHBucketOptions) (LSHBucketResult, error) {
	ground := smGround(sc)
	w := workload(&ground, 0.5, 0.5, 0.5, sc.Seed+51)
	return lshBucketSweep("sm", w, sc, opt)
}

func lshBucketSweep(name string, w slim.SampledWorkload, sc Scale, opt LSHBucketOptions) (LSHBucketResult, error) {
	base, err := run(w, baseConfig(15, 12, sc.Workers))
	if err != nil {
		return LSHBucketResult{}, err
	}
	res := LSHBucketResult{Dataset: name, BaselineF1: base.Metrics.F1}
	for _, thr := range opt.Thresholds {
		for _, e := range opt.BucketExponents {
			cfg := baseConfig(15, 12, sc.Workers)
			cfg.LSH = &slim.LSHConfig{
				Threshold:    thr,
				StepWindows:  opt.Step,
				SpatialLevel: opt.SigLevel,
				NumBuckets:   1 << uint(e),
			}
			rr, err := run(w, cfg)
			if err != nil {
				return LSHBucketResult{}, err
			}
			res.Cells = append(res.Cells, LSHBucketCell{
				BucketExp:  e,
				Threshold:  thr,
				SpeedUp:    eval.SpeedUp(base.Res.Stats.RecordComparisons, rr.Res.Stats.RecordComparisons),
				RelativeF1: eval.RelativeF1(rr.Metrics.F1, base.Metrics.F1),
				Candidates: rr.Res.Stats.CandidatePairs,
			})
		}
	}
	return res, nil
}
