// Package experiments contains one runner per figure of the paper's
// evaluation (Sec. 5), each regenerating the corresponding table/series on
// the synthetic workloads. Runners return typed results (for tests and
// benchmarks) that render to aligned-text tables (for the
// slim-experiments CLI). EXPERIMENTS.md records a paper-vs-measured
// comparison produced by these runners.
//
// Scale controls workload sizes. Defaults are laptop-scale; the CLI can
// raise them toward the paper's sizes (265 cabs / 30k SM users per side).
package experiments

import (
	"time"

	"slim"
	"slim/internal/datagen"
	"slim/internal/eval"
	"slim/internal/model"
)

// Scale sets the synthetic workload sizes shared by all runners.
type Scale struct {
	// CabTaxis is the ground-set taxi count (paper: ~530 → 265/side).
	CabTaxis int
	// CabDays is the trace length (paper: 24).
	CabDays int
	// CabIntervalSec is the mean seconds between taxi records.
	CabIntervalSec float64
	// SMUsers is the ground-set user count (paper: ~60k → 30k/side).
	SMUsers int
	// SMDays is the check-in span (paper: 26).
	SMDays int
	// SMAvgRecords is the mean ground-stream records per user.
	SMAvgRecords float64
	// Seed drives every generator and sampler.
	Seed int64
	// Workers caps scoring parallelism (0 = GOMAXPROCS).
	Workers int
}

// DefaultScale returns the laptop-scale defaults used by the benchmarks.
func DefaultScale() Scale {
	return Scale{
		CabTaxis:       56,
		CabDays:        3,
		CabIntervalSec: 360,
		SMUsers:        1200,
		SMDays:         8,
		SMAvgRecords:   24,
		Seed:           42,
	}
}

// TinyScale returns the smallest useful workload, for smoke tests.
func TinyScale() Scale {
	return Scale{
		CabTaxis:       20,
		CabDays:        2,
		CabIntervalSec: 600,
		SMUsers:        300,
		SMDays:         6,
		SMAvgRecords:   20,
		Seed:           7,
	}
}

// cabGround generates the ground taxi trace for this scale.
func cabGround(sc Scale) slim.Dataset {
	return slim.GenerateCab(slim.CabOptions{
		NumTaxis:              sc.CabTaxis,
		Days:                  sc.CabDays,
		MeanRecordIntervalSec: sc.CabIntervalSec,
		Seed:                  sc.Seed,
	})
}

// smGround generates the ground check-in stream for this scale.
func smGround(sc Scale) slim.Dataset {
	return slim.GenerateSM(slim.SMOptions{
		NumUsers:   sc.SMUsers,
		Days:       sc.SMDays,
		AvgRecords: sc.SMAvgRecords,
		Seed:       sc.Seed + 1,
	})
}

// workload draws a linkage problem from a ground dataset with the paper's
// default knobs unless overridden.
func workload(ground *slim.Dataset, ratio, inclE, inclI float64, seed int64) slim.SampledWorkload {
	return slim.SampleWorkload(ground, slim.SampleOptions{
		IntersectionRatio: ratio,
		InclusionProbE:    inclE,
		InclusionProbI:    inclI,
		Seed:              seed,
	})
}

// baseConfig is the paper's default SLIM configuration at a given
// spatio-temporal level.
func baseConfig(windowMin float64, level int, workers int) slim.Config {
	cfg := slim.Defaults()
	cfg.WindowMinutes = windowMin
	cfg.SpatialLevel = level
	cfg.Workers = workers
	return cfg
}

// runResult bundles a linkage run with its evaluation and wall time.
type runResult struct {
	Res     slim.Result
	Metrics slim.Metrics
	Elapsed time.Duration
}

// run executes SLIM on a workload and evaluates against its truth.
func run(w slim.SampledWorkload, cfg slim.Config) (runResult, error) {
	start := time.Now()
	res, err := slim.LinkDatasets(w.E, w.I, cfg)
	if err != nil {
		return runResult{}, err
	}
	return runResult{
		Res:     res,
		Metrics: slim.Evaluate(res.Links, w.Truth),
		Elapsed: time.Since(start),
	}, nil
}

// avgRecords reports a dataset's record density.
func avgRecords(d *slim.Dataset) float64 { return datagen.AvgRecordsPerEntity(d) }

// slimRankings scores every cross pair with a prepared linker and builds
// per-entity descending candidate lists for hit-precision@k.
func slimRankings(lk *slim.Linker) map[model.EntityID][]eval.RankedCandidate {
	out := make(map[model.EntityID][]eval.RankedCandidate, len(lk.EntitiesE()))
	for _, u := range lk.EntitiesE() {
		cands := make([]eval.RankedCandidate, 0, len(lk.EntitiesI()))
		for _, v := range lk.EntitiesI() {
			cands = append(cands, eval.RankedCandidate{V: v, Score: lk.Score(u, v)})
		}
		out[u] = cands
	}
	return out
}
