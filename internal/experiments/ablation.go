package experiments

import (
	"fmt"

	"slim"
	"slim/internal/eval"
)

// AblationOptions sets the Fig. 10 grids: F1 of each SLIM variant as a
// function of the spatial level (at 15-minute windows) and of the window
// width (at spatial level 12).
type AblationOptions struct {
	Levels     []int
	WindowsMin []float64
}

// DefaultAblationOptions mirrors the paper's axes (subsampled).
func DefaultAblationOptions() AblationOptions {
	return AblationOptions{
		Levels:     []int{8, 12, 16, 20, 24},
		WindowsMin: []float64{5, 15, 60, 180, 360, 720},
	}
}

// ablationVariants lists the Fig. 10 series in display order.
var ablationVariants = []struct {
	Name string
	Abl  slim.Ablation
}{
	{"original", slim.Ablation{}},
	{"mnn-only", slim.Ablation{DisableMFN: true}},
	{"all-pairs", slim.Ablation{AllPairs: true}},
	{"no-idf", slim.Ablation{DisableIDF: true}},
	{"no-normalization", slim.Ablation{DisableNorm: true}},
}

// AblationCell is one (variant, x) measurement.
type AblationCell struct {
	Variant string
	X       float64 // spatial level or window width
	F1      float64
}

// AblationResult holds one Fig. 10 panel.
type AblationResult struct {
	Dataset string
	Axis    string // "spatial-level" or "window-min"
	Cells   []AblationCell
}

// Table renders the panel: one row per variant, one column per x.
func (r AblationResult) Table() eval.Table {
	var xs []float64
	seen := map[float64]bool{}
	for _, c := range r.Cells {
		if !seen[c.X] {
			seen[c.X] = true
			xs = append(xs, c.X)
		}
	}
	t := eval.Table{
		Title:  fmt.Sprintf("%s: F1 vs %s per variant", r.Dataset, r.Axis),
		Header: append([]string{"variant\\" + r.Axis}, floatsToStrings(xs)...),
	}
	for _, v := range ablationVariants {
		row := []string{v.Name}
		for _, x := range xs {
			found := false
			for _, c := range r.Cells {
				if c.Variant == v.Name && c.X == x {
					row = append(row, fmt.Sprintf("%.3f", c.F1))
					found = true
					break
				}
			}
			if !found {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// F1 returns the measured F1 of a variant at x (ok=false if absent).
func (r AblationResult) F1(variant string, x float64) (float64, bool) {
	for _, c := range r.Cells {
		if c.Variant == variant && c.X == x {
			return c.F1, true
		}
	}
	return 0, false
}

// Fig10AblationSpatial reproduces Fig. 10a: F1 vs spatial level for every
// variant at 15-minute windows, on Cab.
func Fig10AblationSpatial(sc Scale, opt AblationOptions) (AblationResult, error) {
	ground := cabGround(sc)
	w := workload(&ground, 0.5, 0.5, 0.5, sc.Seed+60)
	res := AblationResult{Dataset: "cab", Axis: "spatial-level"}
	for _, v := range ablationVariants {
		for _, level := range opt.Levels {
			cfg := baseConfig(15, level, sc.Workers)
			cfg.Ablation = v.Abl
			rr, err := run(w, cfg)
			if err != nil {
				return AblationResult{}, err
			}
			res.Cells = append(res.Cells, AblationCell{Variant: v.Name, X: float64(level), F1: rr.Metrics.F1})
		}
	}
	return res, nil
}

// Fig10AblationWindow reproduces Fig. 10b: F1 vs window width for every
// variant at spatial level 12, on Cab.
func Fig10AblationWindow(sc Scale, opt AblationOptions) (AblationResult, error) {
	ground := cabGround(sc)
	w := workload(&ground, 0.5, 0.5, 0.5, sc.Seed+61)
	res := AblationResult{Dataset: "cab", Axis: "window-min"}
	for _, v := range ablationVariants {
		for _, win := range opt.WindowsMin {
			cfg := baseConfig(win, 12, sc.Workers)
			cfg.Ablation = v.Abl
			rr, err := run(w, cfg)
			if err != nil {
				return AblationResult{}, err
			}
			res.Cells = append(res.Cells, AblationCell{Variant: v.Name, X: win, F1: rr.Metrics.F1})
		}
	}
	return res, nil
}
