package experiments

import (
	"fmt"

	"slim"
	"slim/internal/eval"
)

// TuningResult reproduces the Sec. 3.3 / Sec. 5.2.1 auto-tuning claim:
// the elbow probe picks a spatial level that matches the accuracy plateau
// (level ≈ 12 for 15-minute windows on the paper's data).
type TuningResult struct {
	Dataset     string
	Levels      []int
	RatiosE     []float64
	RatiosI     []float64
	ChosenLevel int
}

// Table renders the two probe curves and the chosen level.
func (r TuningResult) Table() eval.Table {
	t := eval.Table{
		Title:  fmt.Sprintf("%s: pair/self similarity ratio per spatial level (chosen level = %d)", r.Dataset, r.ChosenLevel),
		Header: []string{"level", "ratio-E", "ratio-I"},
	}
	for i, l := range r.Levels {
		e, iv := "-", "-"
		if i < len(r.RatiosE) {
			e = fmt.Sprintf("%.3f", r.RatiosE[i])
		}
		if i < len(r.RatiosI) {
			iv = fmt.Sprintf("%.3f", r.RatiosI[i])
		}
		t.AddRow(fmt.Sprintf("%d", l), e, iv)
	}
	return t
}

// TuningCab runs the auto-tuner on the default Cab workload.
func TuningCab(sc Scale) (TuningResult, error) {
	ground := cabGround(sc)
	w := workload(&ground, 0.5, 0.5, 0.5, sc.Seed+80)
	return tuningRun("cab", w)
}

// TuningSM runs the auto-tuner on the default SM workload.
func TuningSM(sc Scale) (TuningResult, error) {
	ground := smGround(sc)
	w := workload(&ground, 0.5, 0.5, 0.5, sc.Seed+81)
	return tuningRun("sm", w)
}

func tuningRun(name string, w slim.SampledWorkload) (TuningResult, error) {
	level, cE, cI, err := slim.AutoTuneSpatialLevel(w.E, w.I, slim.Defaults())
	if err != nil {
		return TuningResult{}, err
	}
	return TuningResult{
		Dataset:     name,
		Levels:      cE.Levels,
		RatiosE:     cE.Ratios,
		RatiosI:     cI.Ratios,
		ChosenLevel: level,
	}, nil
}
