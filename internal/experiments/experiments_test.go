package experiments

import (
	"testing"
)

// Experiment smoke tests run every figure at tiny scale with skinny grids
// and assert the paper's qualitative shapes with generous tolerances (the
// workloads are small and statistical).

func TestFig2GMMFit(t *testing.T) {
	r, err := Fig2GMMFit(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := range r.TPCount {
		total += r.TPCount[i] + r.FPCount[i]
	}
	if total == 0 {
		t.Fatal("histogram empty: no matched pairs at tiny scale")
	}
	if r.Method == "" {
		t.Error("threshold method not recorded")
	}
	if len(r.BinLo) != len(r.TPCount) || len(r.BinHi) != len(r.TPCount) {
		t.Error("histogram shape mismatch")
	}
	if r.Table().Render() == "" {
		t.Error("table did not render")
	}
}

func TestFig4ShapeCab(t *testing.T) {
	sc := TinyScale()
	opt := SpatioTemporalOptions{Levels: []int{4, 12, 16}, WindowsMin: []float64{15, 180}}
	r, err := Fig4SpatioTemporalCab(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 6 {
		t.Fatalf("cells = %d, want 6", len(r.Cells))
	}
	get := func(level int, win float64) STCell {
		for _, c := range r.Cells {
			if c.Level == level && c.WindowMin == win {
				return c
			}
		}
		t.Fatalf("missing cell (%d, %g)", level, win)
		return STCell{}
	}
	// Paper shape 1: accuracy rises with spatial detail (level 4 is
	// useless, ≥12 plateaus high) at the default window.
	if f1Lo, f1Hi := get(4, 15).F1, get(12, 15).F1; f1Hi < f1Lo {
		t.Errorf("F1 did not improve with spatial detail: level4=%.3f level12=%.3f", f1Lo, f1Hi)
	}
	if get(12, 15).F1 < 0.6 {
		t.Errorf("level-12/15min F1 = %.3f, want decent", get(12, 15).F1)
	}
	// Paper shape 2: record comparisons grow with window width.
	if get(12, 180).RecordComparisons <= get(12, 15).RecordComparisons {
		t.Errorf("comparisons did not grow with window width: %d vs %d",
			get(12, 180).RecordComparisons, get(12, 15).RecordComparisons)
	}
	// Paper shape 3 (Fig. 4d): pairing work grows with spatial detail.
	if get(16, 15).BinComparisons < get(4, 15).BinComparisons {
		t.Errorf("bin comparisons shrank with spatial detail: %d vs %d",
			get(16, 15).BinComparisons, get(4, 15).BinComparisons)
	}
	// Rendering sanity.
	if tables := r.Tables(); len(tables) != 4 {
		t.Errorf("expected 4 panels, got %d", len(tables))
	}
}

func TestFig5ShapeSM(t *testing.T) {
	sc := TinyScale()
	opt := SpatioTemporalOptions{Levels: []int{4, 12}, WindowsMin: []float64{15}}
	r, err := Fig5SpatioTemporalSM(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi STCell
	for _, c := range r.Cells {
		if c.Level == 4 {
			lo = c
		}
		if c.Level == 12 {
			hi = c
		}
	}
	if hi.F1 < lo.F1 {
		t.Errorf("SM F1 did not improve with detail: level4=%.3f level12=%.3f", lo.F1, hi.F1)
	}
}

func TestFig6SeparationSharpensWithDetail(t *testing.T) {
	r, err := Fig6ScoreHistograms(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 4 {
		t.Fatalf("expected 4 fits, got %d", len(r))
	}
	// The paper's claim: grouping TPs and FPs becomes more accurate with
	// spatial detail. Compare the coarsest fit against the best
	// fine-level fit (individual levels are noisy at tiny scale).
	accCoarse := r[0].ThresholdAccuracy()
	accFineBest := 0.0
	for _, fit := range r[1:] {
		if a := fit.ThresholdAccuracy(); a > accFineBest {
			accFineBest = a
		}
	}
	if accFineBest < accCoarse {
		t.Errorf("threshold accuracy did not sharpen: coarse=%.2f bestFine=%.2f", accCoarse, accFineBest)
	}
}

func TestFig7WorkloadCabShape(t *testing.T) {
	sc := TinyScale()
	opt := WorkloadOptions{InclusionProbs: []float64{0.3, 0.9}, Ratios: []float64{0.5}}
	r, err := Fig7WorkloadCab(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 2 {
		t.Fatalf("cells = %d", len(r.Cells))
	}
	// Cab is dense: even at inclusion 0.3 the F1 should be solid, and at
	// 0.9 near-perfect (paper: all close to 1).
	for _, c := range r.Cells {
		if c.InclusionProb == 0.9 && c.F1 < 0.7 {
			t.Errorf("cab F1 at inclusion 0.9 = %.3f, want high", c.F1)
		}
		if c.Runtime <= 0 {
			t.Error("runtime not measured")
		}
		if c.AvgRecords <= 0 {
			t.Error("avg records not measured")
		}
	}
	if tables := r.Tables(); len(tables) != 2 {
		t.Errorf("expected 2 panels, got %d", len(tables))
	}
}

func TestFig7WorkloadSMDensityEffect(t *testing.T) {
	sc := TinyScale()
	sc.SMAvgRecords = 30
	opt := WorkloadOptions{InclusionProbs: []float64{0.2, 0.9}, Ratios: []float64{0.5}}
	r, err := Fig7WorkloadSM(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi WorkloadCell
	for _, c := range r.Cells {
		if c.InclusionProb == 0.2 {
			lo = c
		}
		if c.InclusionProb == 0.9 {
			hi = c
		}
	}
	// Paper shape: SM F1 degrades at low record counts.
	if hi.F1 < lo.F1 {
		t.Errorf("SM F1 should improve with density: %.3f (p=.2) vs %.3f (p=.9)", lo.F1, hi.F1)
	}
}

func TestFig8LSHShapeCab(t *testing.T) {
	sc := TinyScale()
	opt := LSHLevelOptions{
		SigLevels: []int{4, 12},
		Steps:     []int{48},
		Threshold: 0.2,
		Buckets:   1 << 14,
	}
	r, err := Fig8LSHLevelsCab(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	var coarse, fine LSHCell
	for _, c := range r.Cells {
		if c.SigLevel == 4 {
			coarse = c
		}
		if c.SigLevel == 12 {
			fine = c
		}
	}
	// Paper shape: at coarse signature levels Cab is too dense — no
	// speedup; finer levels filter.
	if coarse.SpeedUp > fine.SpeedUp {
		t.Errorf("speed-up should grow with signature detail: level4=%.1fx level12=%.1fx",
			coarse.SpeedUp, fine.SpeedUp)
	}
	if fine.SpeedUp <= 1 {
		t.Errorf("level-12 speed-up = %.2fx, want > 1", fine.SpeedUp)
	}
	if fine.RelativeF1 < 0.5 {
		t.Errorf("level-12 relative F1 = %.2f, want reasonable", fine.RelativeF1)
	}
	if tables := r.Tables(); len(tables) != 2 {
		t.Errorf("expected 2 panels")
	}
}

func TestFig9BucketsShape(t *testing.T) {
	sc := TinyScale()
	opt := LSHBucketOptions{
		BucketExponents: []int{2, 14},
		Thresholds:      []float64{0.2},
		SigLevel:        12,
		Step:            48,
	}
	r, err := Fig9LSHBucketsCab(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	var small, large LSHBucketCell
	for _, c := range r.Cells {
		if c.BucketExp == 2 {
			small = c
		}
		if c.BucketExp == 14 {
			large = c
		}
	}
	// Paper shape: more buckets → fewer hash collisions → fewer candidate
	// pairs → at least as much speed-up.
	if large.Candidates > small.Candidates {
		t.Errorf("more buckets should not increase candidates: 2^2=%d 2^14=%d",
			small.Candidates, large.Candidates)
	}
	if large.SpeedUp < small.SpeedUp {
		t.Errorf("more buckets should not reduce speed-up: %.2f vs %.2f",
			small.SpeedUp, large.SpeedUp)
	}
}

func TestFig10AblationShapes(t *testing.T) {
	sc := TinyScale()
	opt := AblationOptions{WindowsMin: []float64{15, 360}}
	r, err := Fig10AblationWindow(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	orig360, ok1 := r.F1("original", 360)
	all360, ok2 := r.F1("all-pairs", 360)
	if !ok1 || !ok2 {
		t.Fatal("missing variants")
	}
	// Paper shape: all-pairs collapses at wide windows relative to MNN
	// pairing (generous tolerance at tiny scale).
	if all360 > orig360+0.1 {
		t.Errorf("all-pairs should not beat original at wide windows: %.3f vs %.3f", all360, orig360)
	}
	if r.Table().Render() == "" {
		t.Error("table did not render")
	}
}

func TestFig10AblationSpatialRuns(t *testing.T) {
	sc := TinyScale()
	opt := AblationOptions{Levels: []int{12, 20}}
	r, err := Fig10AblationSpatial(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != len(ablationVariants)*2 {
		t.Fatalf("cells = %d, want %d", len(r.Cells), len(ablationVariants)*2)
	}
	orig, _ := r.F1("original", 20)
	noNorm, _ := r.F1("no-normalization", 20)
	if noNorm > orig+0.15 {
		t.Errorf("no-normalization should not clearly beat original at high detail: %.3f vs %.3f", noNorm, orig)
	}
}

func TestFig11ComparisonShape(t *testing.T) {
	sc := TinyScale()
	opt := DefaultComparisonOptions()
	opt.TargetAvgRecords = []float64{120}
	opt.Ratios = []float64{0.5}
	opt.IncludeGM = true
	opt.GMMaxAvgRecords = 0
	r, err := Fig11Comparison(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 1 {
		t.Fatalf("cells = %d", len(r.Cells))
	}
	c := r.Cells[0]
	slimM, ok1 := c.Method("slim")
	bfM, ok2 := c.Method("slim-nolsh")
	stM, ok3 := c.Method("st-link")
	gmM, ok4 := c.Method("gm")
	if !ok1 || !ok2 || !ok3 || !ok4 {
		t.Fatalf("missing methods: %v %v %v %v", ok1, ok2, ok3, ok4)
	}
	// Paper shapes: SLIM's F1 at least matches ST-Link and GM; SLIM+LSH
	// does fewer record comparisons than ST-Link; GM is the slowest.
	if bfM.F1+0.1 < stM.F1 {
		t.Errorf("SLIM F1 %.3f clearly below ST-Link %.3f", bfM.F1, stM.F1)
	}
	if bfM.F1+0.1 < gmM.F1 {
		t.Errorf("SLIM F1 %.3f clearly below GM %.3f", bfM.F1, gmM.F1)
	}
	if slimM.RecordComparisons >= stM.RecordComparisons {
		t.Errorf("SLIM+LSH comparisons %d should undercut ST-Link %d",
			slimM.RecordComparisons, stM.RecordComparisons)
	}
	if gmM.Runtime < slimM.Runtime {
		t.Errorf("GM (%v) should be slower than SLIM+LSH (%v)", gmM.Runtime, slimM.Runtime)
	}
	if tables := r.Tables(); len(tables) != 4 {
		t.Errorf("expected 4 panels")
	}
}

func TestThresholdMethodsAgree(t *testing.T) {
	r, err := ThresholdMethods(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 6 {
		t.Fatalf("cells = %d, want 6 (3 methods x 2 datasets)", len(r.Cells))
	}
	// The paper's remark: the three detectors behave similarly. Allow a
	// generous spread at tiny scale, but they must not diverge wildly.
	for _, ds := range []string{"cab", "sm"} {
		if spread := r.F1Spread(ds); spread > 0.4 {
			t.Errorf("%s: F1 spread across threshold methods = %.3f, want similar behavior", ds, spread)
		}
	}
	if r.Table().Render() == "" {
		t.Error("table did not render")
	}
}

func TestTuningRunners(t *testing.T) {
	sc := TinyScale()
	rc, err := TuningCab(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rc.ChosenLevel < 4 || rc.ChosenLevel > 20 {
		t.Errorf("cab chosen level = %d, want in probe range", rc.ChosenLevel)
	}
	if len(rc.Levels) == 0 || len(rc.RatiosE) != len(rc.Levels) {
		t.Error("cab curves malformed")
	}
	rs, err := TuningSM(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rs.ChosenLevel < 4 || rs.ChosenLevel > 20 {
		t.Errorf("sm chosen level = %d", rs.ChosenLevel)
	}
	if rc.Table().Render() == "" || rs.Table().Render() == "" {
		t.Error("tables did not render")
	}
}
