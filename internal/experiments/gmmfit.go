package experiments

import (
	"fmt"

	"slim"
	"slim/internal/eval"
	"slim/internal/threshold"
)

// GMMFitResult reproduces Fig. 2 / Fig. 6: the distribution of matched
// similarity scores, split into true/false positives using ground truth
// (illustrative only, as in the paper), with the fitted mixture and the
// detected stop threshold.
type GMMFitResult struct {
	Dataset   string
	Level     int
	WindowMin float64
	// Histogram of matched edge weights.
	BinLo, BinHi []float64
	TPCount      []int
	FPCount      []int
	// Fitted mixture (nil when the fit degenerated).
	Model     *threshold.GMM
	Threshold float64
	Method    string
	// Separation quality: (mean2-mean1)/(std1+std2); higher = cleaner.
	Separation float64
}

// Table renders the histogram and fit summary.
func (r GMMFitResult) Table() eval.Table {
	t := eval.Table{
		Title: fmt.Sprintf("%s level=%d window=%gmin: score histogram, threshold=%.4g (%s), separation=%.2f",
			r.Dataset, r.Level, r.WindowMin, r.Threshold, r.Method, r.Separation),
		Header: []string{"score-lo", "score-hi", "true-pos", "false-pos"},
	}
	for i := range r.TPCount {
		t.AddRowf(r.BinLo[i], r.BinHi[i], r.TPCount[i], r.FPCount[i])
	}
	if r.Model != nil {
		t.AddRow("gmm", fmt.Sprintf("w=[%.2f %.2f]", r.Model.Weight[0], r.Model.Weight[1]),
			fmt.Sprintf("mu=[%.4g %.4g]", r.Model.Mean[0], r.Model.Mean[1]),
			fmt.Sprintf("sd=[%.4g %.4g]", r.Model.Std[0], r.Model.Std[1]))
	}
	return t
}

// ThresholdAccuracy measures how well the detected stop threshold
// separates true from false positives: the balanced fraction of TPs kept
// above it and FPs cut below it (computed at histogram-bin granularity).
// This is the Fig. 6 claim — "grouping true positive links and false
// positive links in two clusters becomes more accurate" with detail —
// in a single number.
func (r GMMFitResult) ThresholdAccuracy() float64 {
	var tpAbove, tpTotal, fpBelow, fpTotal float64
	for i := range r.TPCount {
		mid := (r.BinLo[i] + r.BinHi[i]) / 2
		tpTotal += float64(r.TPCount[i])
		fpTotal += float64(r.FPCount[i])
		if mid > r.Threshold {
			tpAbove += float64(r.TPCount[i])
		} else {
			fpBelow += float64(r.FPCount[i])
		}
	}
	switch {
	case tpTotal == 0 && fpTotal == 0:
		return 0
	case tpTotal == 0:
		return fpBelow / fpTotal
	case fpTotal == 0:
		return tpAbove / tpTotal
	}
	return (tpAbove/tpTotal + fpBelow/fpTotal) / 2
}

// Fig2GMMFit reproduces Fig. 2: one GMM fit over the matched scores of the
// default Cab workload.
func Fig2GMMFit(sc Scale) (GMMFitResult, error) {
	ground := cabGround(sc)
	w := workload(&ground, 0.5, 0.5, 0.5, sc.Seed+20)
	return gmmFit("cab", w, sc, 15, 12, 20)
}

// Fig6ScoreHistograms reproduces Fig. 6: fits for spatial details 4, 8,
// 12, 16 at a 90-minute window, showing how separation (and therefore the
// stop threshold) sharpens with spatial detail.
func Fig6ScoreHistograms(sc Scale) ([]GMMFitResult, error) {
	ground := cabGround(sc)
	w := workload(&ground, 0.5, 0.5, 0.5, sc.Seed+21)
	var out []GMMFitResult
	for _, level := range []int{4, 8, 12, 16} {
		r, err := gmmFit("cab", w, sc, 90, level, 20)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func gmmFit(name string, w slim.SampledWorkload, sc Scale, windowMin float64, level, bins int) (GMMFitResult, error) {
	cfg := baseConfig(windowMin, level, sc.Workers)
	rr, err := run(w, cfg)
	if err != nil {
		return GMMFitResult{}, err
	}
	out := GMMFitResult{
		Dataset:   name,
		Level:     level,
		WindowMin: windowMin,
		Threshold: rr.Res.Threshold,
		Method:    rr.Res.ThresholdMethod,
	}
	weights := make([]float64, len(rr.Res.Matched))
	for i, l := range rr.Res.Matched {
		weights[i] = l.Score
	}
	edges, _ := threshold.Histogram(weights, bins)
	out.BinLo = edges[:len(edges)-1]
	out.BinHi = edges[1:]
	out.TPCount = make([]int, bins)
	out.FPCount = make([]int, bins)
	width := edges[1] - edges[0]
	for _, l := range rr.Res.Matched {
		b := 0
		if width > 0 {
			b = int((l.Score - edges[0]) / width)
		}
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		if w.Truth[l.U] == l.V {
			out.TPCount[b]++
		} else {
			out.FPCount[b]++
		}
	}
	if g, ok := threshold.FitGMM2(weights); ok {
		gg := g
		out.Model = &gg
		if g.Std[0]+g.Std[1] > 0 {
			out.Separation = (g.Mean[1] - g.Mean[0]) / (g.Std[0] + g.Std[1])
		}
	}
	return out, nil
}
