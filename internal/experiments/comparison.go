package experiments

import (
	"fmt"
	"time"

	"slim"
	"slim/internal/baseline/gm"
	"slim/internal/baseline/stlink"
	"slim/internal/eval"
	"slim/internal/model"
)

// ComparisonOptions sets the Fig. 11 study: SLIM vs ST-Link vs GM across
// record densities and intersection ratios.
type ComparisonOptions struct {
	// TargetAvgRecords are the I-side densities to sweep (records per
	// entity); the E side stays at PivotInclusion (the paper's "pivot").
	TargetAvgRecords []float64
	// PivotInclusion is the E-side record inclusion probability.
	PivotInclusion float64
	// Ratios are the entity intersection ratios of panels c/d.
	Ratios []float64
	// IncludeGM runs the GM baseline (two orders of magnitude slower; the
	// paper drops it from the denser data points too).
	IncludeGM bool
	// GMMaxAvgRecords skips GM beyond this density (0 = no cap).
	GMMaxAvgRecords float64
	// HitK is the k of hit-precision@k (the paper uses 40).
	HitK int
	// LSHThreshold/SigLevel/Step/Buckets configure SLIM's filter. The
	// paper uses t=0.6 with 4096 buckets on the real traces; the synthetic
	// cab trace needs a more permissive threshold (see EXPERIMENTS.md).
	LSHThreshold float64
	SigLevel     int
	Step         int
	Buckets      int
}

// DefaultComparisonOptions mirrors the paper's setup scaled down.
func DefaultComparisonOptions() ComparisonOptions {
	return ComparisonOptions{
		TargetAvgRecords: []float64{20, 60, 150, 300, 600},
		PivotInclusion:   0.9,
		Ratios:           []float64{0.3, 0.7},
		IncludeGM:        true,
		GMMaxAvgRecords:  200,
		HitK:             40,
		LSHThreshold:     0.2,
		SigLevel:         12,
		Step:             48,
		Buckets:          4096,
	}
}

// MethodMeasurement is one method's numbers at one data point.
type MethodMeasurement struct {
	Method            string
	F1                float64
	Precision         float64
	Recall            float64
	HitPrecision      float64
	Runtime           time.Duration
	RecordComparisons int64
	Ran               bool
}

// ComparisonCell is one (ratio, density) data point across methods.
type ComparisonCell struct {
	Ratio      float64
	TargetAvg  float64
	ActualAvgI float64
	Methods    []MethodMeasurement
}

// ComparisonResult is the full Fig. 11 study.
type ComparisonResult struct {
	Dataset string
	Cells   []ComparisonCell
}

// Method returns a method's measurement in a cell (ok=false if absent).
func (c ComparisonCell) Method(name string) (MethodMeasurement, bool) {
	for _, m := range c.Methods {
		if m.Method == name && m.Ran {
			return m, true
		}
	}
	return MethodMeasurement{}, false
}

// Tables renders the four panels of Fig. 11.
func (r ComparisonResult) Tables() []eval.Table {
	panels := []struct {
		name string
		get  func(MethodMeasurement) string
	}{
		{"hit-precision@k", func(m MethodMeasurement) string { return fmt.Sprintf("%.3f", m.HitPrecision) }},
		{"F1", func(m MethodMeasurement) string { return fmt.Sprintf("%.3f", m.F1) }},
		{"runtime-ms", func(m MethodMeasurement) string { return fmt.Sprintf("%d", m.Runtime.Milliseconds()) }},
		{"record-comparisons", func(m MethodMeasurement) string { return fmt.Sprintf("%d", m.RecordComparisons) }},
	}
	var tables []eval.Table
	for _, p := range panels {
		t := eval.Table{
			Title:  fmt.Sprintf("%s: %s per method", r.Dataset, p.name),
			Header: []string{"ratio", "avg-records", "slim", "slim-nolsh", "st-link", "gm"},
		}
		for _, c := range r.Cells {
			row := []string{fmt.Sprintf("%g", c.Ratio), fmt.Sprintf("%.0f", c.ActualAvgI)}
			for _, name := range []string{"slim", "slim-nolsh", "st-link", "gm"} {
				if m, ok := c.Method(name); ok {
					row = append(row, p.get(m))
				} else {
					row = append(row, "-")
				}
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables
}

// Fig11Comparison reproduces Fig. 11 on the Cab workload.
func Fig11Comparison(sc Scale, opt ComparisonOptions) (ComparisonResult, error) {
	ground := cabGround(sc)
	srcAvg := avgRecords(&ground)
	res := ComparisonResult{Dataset: "cab"}
	seed := sc.Seed + 70
	for _, ratio := range opt.Ratios {
		for _, target := range opt.TargetAvgRecords {
			seed++
			inclI := target / srcAvg
			if inclI > 1 {
				inclI = 1
			}
			w := workload(&ground, ratio, opt.PivotInclusion, inclI, seed)
			cell, err := comparisonCell(w, sc, opt, ratio, target)
			if err != nil {
				return ComparisonResult{}, err
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

func comparisonCell(w slim.SampledWorkload, sc Scale, opt ComparisonOptions, ratio, target float64) (ComparisonCell, error) {
	cell := ComparisonCell{Ratio: ratio, TargetAvg: target, ActualAvgI: avgRecords(&w.I)}
	truth := eval.Truth(w.Truth)

	// SLIM with LSH.
	cfgLSH := baseConfig(15, 12, sc.Workers)
	cfgLSH.LSH = &slim.LSHConfig{
		Threshold:    opt.LSHThreshold,
		StepWindows:  opt.Step,
		SpatialLevel: opt.SigLevel,
		NumBuckets:   opt.Buckets,
	}
	rrLSH, err := run(w, cfgLSH)
	if err != nil {
		return cell, err
	}
	cell.Methods = append(cell.Methods, MethodMeasurement{
		Method: "slim", Ran: true,
		F1: rrLSH.Metrics.F1, Precision: rrLSH.Metrics.Precision, Recall: rrLSH.Metrics.Recall,
		Runtime:           rrLSH.Elapsed,
		RecordComparisons: rrLSH.Res.Stats.RecordComparisons,
		HitPrecision:      0, // filled by the brute-force ranking below
	})

	// SLIM without LSH (brute force) + rankings for hit-precision.
	cfgBF := baseConfig(15, 12, sc.Workers)
	startBF := time.Now()
	lk, err := slim.NewLinker(w.E, w.I, cfgBF)
	if err != nil {
		return cell, err
	}
	resBF := lk.Run()
	elapsedBF := time.Since(startBF)
	mBF := slim.Evaluate(resBF.Links, w.Truth)
	rankings := slimRankings(lk)
	hit := eval.HitPrecisionAtK(rankings, truth, opt.HitK)
	cell.Methods[0].HitPrecision = hit // SLIM scores identically ranked
	cell.Methods = append(cell.Methods, MethodMeasurement{
		Method: "slim-nolsh", Ran: true,
		F1: mBF.F1, Precision: mBF.Precision, Recall: mBF.Recall,
		HitPrecision:      hit,
		Runtime:           elapsedBF,
		RecordComparisons: resBF.Stats.RecordComparisons,
	})

	// ST-Link.
	wnd := lk.Windowing()
	startST := time.Now()
	stRes := stlink.Link(&w.E, &w.I, stlink.DefaultParams(wnd, 12))
	elapsedST := time.Since(startST)
	stLinks := make([]eval.LinkPair, len(stRes.Links))
	stSlimLinks := make([]slim.Link, len(stRes.Links))
	for i, l := range stRes.Links {
		stLinks[i] = eval.LinkPair{U: l.U, V: l.V}
		stSlimLinks[i] = slim.Link{U: l.U, V: l.V, Score: l.W}
	}
	stPRF := eval.Score(stLinks, truth)
	stRank := make(map[model.EntityID][]eval.RankedCandidate)
	for _, ps := range stRes.Candidates {
		stRank[ps.U] = append(stRank[ps.U], eval.RankedCandidate{
			V:     ps.V,
			Score: float64(ps.Cooccurrences) + float64(ps.DiverseLocations)/1000,
		})
	}
	cell.Methods = append(cell.Methods, MethodMeasurement{
		Method: "st-link", Ran: true,
		F1: stPRF.F1, Precision: stPRF.Precision, Recall: stPRF.Recall,
		HitPrecision:      eval.HitPrecisionAtK(stRank, truth, opt.HitK),
		Runtime:           elapsedST,
		RecordComparisons: stRes.RecordComparisons,
	})

	// GM (optional, slow).
	if opt.IncludeGM && (opt.GMMaxAvgRecords == 0 || cell.ActualAvgI <= opt.GMMaxAvgRecords) {
		startGM := time.Now()
		gmRes := gm.Link(&w.E, &w.I, gm.DefaultParams())
		elapsedGM := time.Since(startGM)
		gmLinks := make([]eval.LinkPair, len(gmRes.Links))
		for i, l := range gmRes.Links {
			gmLinks[i] = eval.LinkPair{U: l.U, V: l.V}
		}
		gmPRF := eval.Score(gmLinks, truth)
		gmRank := make(map[model.EntityID][]eval.RankedCandidate)
		for _, e := range gmRes.PairScores {
			gmRank[e.U] = append(gmRank[e.U], eval.RankedCandidate{V: e.V, Score: e.W})
		}
		cell.Methods = append(cell.Methods, MethodMeasurement{
			Method: "gm", Ran: true,
			F1: gmPRF.F1, Precision: gmPRF.Precision, Recall: gmPRF.Recall,
			HitPrecision:      eval.HitPrecisionAtK(gmRank, truth, opt.HitK),
			Runtime:           elapsedGM,
			RecordComparisons: gmRes.RecordComparisons,
		})
	}
	return cell, nil
}
