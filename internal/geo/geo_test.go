package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomLatLng(r *rand.Rand) LatLng {
	// Uniform on the sphere: z uniform in [-1,1], lng uniform.
	z := 2*r.Float64() - 1
	lat := math.Asin(z) * 180 / math.Pi
	lng := 360*r.Float64() - 180
	return LatLng{Lat: lat, Lng: lng}
}

func TestLatLngPointRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for n := 0; n < 1000; n++ {
		ll := randomLatLng(r)
		got := LatLngFromPoint(PointFromLatLng(ll))
		if math.Abs(got.Lat-ll.Lat) > 1e-9 {
			t.Fatalf("lat round trip: %v -> %v", ll, got)
		}
		dLng := math.Abs(got.Lng - ll.Lng)
		if dLng > 180 {
			dLng = 360 - dLng
		}
		// Longitude is meaningless at the poles.
		if dLng > 1e-9 && math.Abs(ll.Lat) < 89.999 {
			t.Fatalf("lng round trip: %v -> %v", ll, got)
		}
	}
}

func TestLatLngFromDegreesClamps(t *testing.T) {
	ll := LatLngFromDegrees(123, 542)
	if ll.Lat != 90 {
		t.Errorf("lat clamp: got %v", ll.Lat)
	}
	if ll.Lng < -180 || ll.Lng > 180 {
		t.Errorf("lng wrap: got %v", ll.Lng)
	}
	if !ll.IsValid() {
		t.Errorf("clamped LatLng should be valid: %v", ll)
	}
	if (LatLng{Lat: math.NaN()}).IsValid() {
		t.Error("NaN latitude must be invalid")
	}
}

func TestCellIDRoundTripContainsPoint(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for n := 0; n < 2000; n++ {
		ll := randomLatLng(r)
		leaf := CellIDFromLatLng(ll)
		if !leaf.IsValid() || !leaf.IsLeaf() || leaf.Level() != MaxLevel {
			t.Fatalf("leaf invariants violated for %v: %v", ll, leaf)
		}
		// The leaf center must be within one leaf diagonal of the input.
		d := GreatCircleKm(ll, leaf.LatLng())
		if maxD := 3 * ApproxCellEdgeKm(MaxLevel); d > maxD {
			t.Fatalf("leaf center %v too far from %v: %g km", leaf.LatLng(), ll, d)
		}
	}
}

func TestParentChildInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for n := 0; n < 500; n++ {
		ll := randomLatLng(r)
		leaf := CellIDFromLatLng(ll)
		prev := leaf
		for level := MaxLevel - 1; level >= 0; level-- {
			p := leaf.Parent(level)
			if p.Level() != level {
				t.Fatalf("Parent(%d).Level() = %d", level, p.Level())
			}
			if !p.IsValid() {
				t.Fatalf("parent invalid at level %d: %v", level, p)
			}
			if !p.Contains(leaf) {
				t.Fatalf("parent %v does not contain leaf %v", p, leaf)
			}
			if !p.Contains(prev) {
				t.Fatalf("parent %v does not contain child-level cell %v", p, prev)
			}
			if p.Face() != leaf.Face() {
				t.Fatalf("face changed by Parent: %d vs %d", p.Face(), leaf.Face())
			}
			prev = p
		}
	}
}

func TestParentClampsLevels(t *testing.T) {
	leaf := CellIDFromLatLng(LatLng{Lat: 10, Lng: 10})
	if leaf.Parent(-5).Level() != 0 {
		t.Error("Parent(-5) should clamp to level 0")
	}
	if leaf.Parent(99) != leaf {
		t.Error("Parent(99) should return the leaf itself")
	}
	if leaf.Parent(MaxLevel) != leaf {
		t.Error("Parent(MaxLevel) of a leaf should be identity")
	}
}

func TestChildrenPartitionParent(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for n := 0; n < 200; n++ {
		cell := CellIDFromLatLng(randomLatLng(r)).Parent(5 + r.Intn(20))
		children := cell.Children()
		seen := map[CellID]bool{}
		for _, ch := range children {
			if ch.Level() != cell.Level()+1 {
				t.Fatalf("child level %d, want %d", ch.Level(), cell.Level()+1)
			}
			if !cell.Contains(ch) {
				t.Fatalf("cell %v does not contain child %v", cell, ch)
			}
			if ch.immediateParent() != cell {
				t.Fatalf("child %v's parent is %v, want %v", ch, ch.immediateParent(), cell)
			}
			if seen[ch] {
				t.Fatalf("duplicate child %v", ch)
			}
			seen[ch] = true
		}
		// Children must tile the parent's leaf range exactly.
		if children[0].RangeMin() != cell.RangeMin() {
			t.Fatalf("first child range-min mismatch")
		}
		if children[3].RangeMax() != cell.RangeMax() {
			t.Fatalf("last child range-max mismatch")
		}
		// Leaf ids are odd, so adjacent leaves differ by 2.
		for k := 0; k < 3; k++ {
			if uint64(children[k].RangeMax())+2 != uint64(children[k+1].RangeMin()) {
				t.Fatalf("children %d and %d do not tile contiguously", k, k+1)
			}
		}
	}
}

func TestLeafChildrenAreSelf(t *testing.T) {
	leaf := CellIDFromLatLng(LatLng{Lat: 1, Lng: 2})
	for _, ch := range leaf.Children() {
		if ch != leaf {
			t.Fatalf("leaf child should be the leaf itself")
		}
	}
}

func TestContainsIsHierarchy(t *testing.T) {
	a := CellIDFromLatLng(LatLng{Lat: 37.7, Lng: -122.4})
	b := CellIDFromLatLng(LatLng{Lat: 37.7001, Lng: -122.4001})
	for level := 0; level <= MaxLevel; level++ {
		pa, pb := a.Parent(level), b.Parent(level)
		if pa == pb {
			continue
		}
		if pa.Contains(b.Parent(MaxLevel)) {
			t.Fatalf("disjoint cells at level %d claim containment", level)
		}
	}
	if !a.Parent(10).Contains(a) {
		t.Fatal("ancestor must contain descendant")
	}
	if a.Contains(a.Parent(10)) {
		t.Fatal("descendant must not contain ancestor")
	}
}

func TestCellIDQuickRoundTrip(t *testing.T) {
	f := func(latSeed, lngSeed uint32, levelSeed uint8) bool {
		lat := float64(latSeed%18000)/100 - 90
		lng := float64(lngSeed%36000)/100 - 180
		level := int(levelSeed % (MaxLevel + 1))
		ll := LatLng{Lat: lat, Lng: lng}
		cell := CellIDFromLatLngLevel(ll, level)
		if !cell.IsValid() || cell.Level() != level {
			return false
		}
		// The cell must contain the leaf of its own center.
		return cell.Contains(CellIDFromLatLng(cell.LatLng()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestGreatCircleKnownDistances(t *testing.T) {
	sf := LatLng{Lat: 37.7749, Lng: -122.4194}
	ny := LatLng{Lat: 40.7128, Lng: -74.0060}
	d := GreatCircleKm(sf, ny)
	if d < 4100 || d > 4200 {
		t.Errorf("SF-NY distance = %g km, want ~4130", d)
	}
	if GreatCircleKm(sf, sf) != 0 {
		t.Error("distance to self must be 0")
	}
	anti := LatLng{Lat: -37.7749, Lng: 57.5806}
	d = GreatCircleKm(sf, anti)
	if math.Abs(d-math.Pi*EarthRadiusKm) > 1 {
		t.Errorf("antipodal distance = %g, want %g", d, math.Pi*EarthRadiusKm)
	}
}

func TestCellDistanceLowerBound(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for n := 0; n < 500; n++ {
		a := randomLatLng(r)
		b := randomLatLng(r)
		level := 4 + r.Intn(16)
		ca := CellIDFromLatLngLevel(a, level)
		cb := CellIDFromLatLngLevel(b, level)
		lower := CellDistanceKm(ca, cb)
		actual := GreatCircleKm(a, b)
		if lower > actual+1e-6 {
			t.Fatalf("lower bound %g exceeds actual point distance %g (level %d)", lower, actual, level)
		}
		if lower < 0 {
			t.Fatalf("negative distance %g", lower)
		}
		if got := CellDistanceKm(cb, ca); math.Abs(got-lower) > 1e-9 {
			t.Fatalf("asymmetric distances: %g vs %g", lower, got)
		}
	}
}

func TestCellDistanceZeroCases(t *testing.T) {
	c := CellIDFromLatLngLevel(LatLng{Lat: 37.7, Lng: -122.4}, 12)
	if CellDistanceKm(c, c) != 0 {
		t.Error("distance to self must be 0")
	}
	child := c.Children()[2]
	if CellDistanceKm(c, child) != 0 {
		t.Error("distance to descendant must be 0")
	}
	if CellDistanceKm(child, c) != 0 {
		t.Error("distance to ancestor must be 0")
	}
}

func TestCellDistanceSeparatedCells(t *testing.T) {
	sf := CellIDFromLatLngLevel(LatLng{Lat: 37.7749, Lng: -122.4194}, 12)
	ny := CellIDFromLatLngLevel(LatLng{Lat: 40.7128, Lng: -74.0060}, 12)
	d := CellDistanceKm(sf, ny)
	if d < 4000 || d > 4200 {
		t.Errorf("SF-NY cell distance = %g km, want slightly under ~4130", d)
	}
}

func TestApproxCellEdgeMonotone(t *testing.T) {
	for level := 1; level <= MaxLevel; level++ {
		if ApproxCellEdgeKm(level) >= ApproxCellEdgeKm(level-1) {
			t.Fatalf("edge length not decreasing at level %d", level)
		}
	}
	if e := ApproxCellEdgeKm(12); e < 1 || e > 5 {
		t.Errorf("level-12 edge = %g km, expected on the order of 2 km", e)
	}
	if ApproxCellEdgeKm(-1) != ApproxCellEdgeKm(0) {
		t.Error("negative level should clamp to 0")
	}
	if ApproxCellEdgeKm(99) != ApproxCellEdgeKm(MaxLevel) {
		t.Error("excess level should clamp to MaxLevel")
	}
}

func TestCircumradiusShrinksWithLevel(t *testing.T) {
	ll := LatLng{Lat: 37.7, Lng: -122.4}
	prev := math.Inf(1)
	for level := 2; level <= 24; level += 2 {
		r := CellIDFromLatLngLevel(ll, level).CircumradiusRad()
		if r <= 0 {
			t.Fatalf("non-positive circumradius at level %d", level)
		}
		if r >= prev {
			t.Fatalf("circumradius did not shrink at level %d: %g >= %g", level, r, prev)
		}
		prev = r
	}
}

func TestNeighborCellsNotAlibiDistance(t *testing.T) {
	// Two points ~1km apart must never be assigned a cell distance larger
	// than their true distance, at any level.
	a := LatLng{Lat: 37.7749, Lng: -122.4194}
	b := LatLng{Lat: 37.7839, Lng: -122.4194} // ~1 km north
	actual := GreatCircleKm(a, b)
	for level := 4; level <= 20; level++ {
		d := CellDistanceKm(CellIDFromLatLngLevel(a, level), CellIDFromLatLngLevel(b, level))
		if d > actual {
			t.Fatalf("level %d: cell distance %g exceeds point distance %g", level, d, actual)
		}
	}
}

func TestInvalidCellID(t *testing.T) {
	if CellID(0).IsValid() {
		t.Error("zero CellID must be invalid")
	}
	if CellID(0).String() == "" {
		t.Error("String on invalid id should still render")
	}
	var tooBigFace CellID = 7 << posBits
	if tooBigFace.IsValid() {
		t.Error("face 7 must be invalid")
	}
}

func TestStringFormat(t *testing.T) {
	c := CellIDFromLatLngLevel(LatLng{Lat: 1, Lng: 2}, 12)
	s := c.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func TestVerticesSurroundCenter(t *testing.T) {
	c := CellIDFromLatLngLevel(LatLng{Lat: 37.7, Lng: -122.4}, 10)
	center := c.Center()
	for _, v := range c.Vertices() {
		if center.Angle(v) <= 0 {
			t.Fatal("vertex coincides with center")
		}
		if center.Angle(v) > c.CircumradiusRad()+1e-12 {
			t.Fatal("vertex outside circumradius")
		}
	}
}

func TestPointOps(t *testing.T) {
	x := Point{1, 0, 0}
	y := Point{0, 1, 0}
	if x.Dot(y) != 0 {
		t.Error("orthogonal dot product must be 0")
	}
	z := x.Cross(y)
	if z != (Point{0, 0, 1}) {
		t.Errorf("cross product = %v, want (0,0,1)", z)
	}
	if math.Abs(x.Angle(y)-math.Pi/2) > 1e-12 {
		t.Error("angle between axes must be pi/2")
	}
	if n := (Point{3, 4, 0}).Normalize().Norm(); math.Abs(n-1) > 1e-12 {
		t.Errorf("normalize gave norm %g", n)
	}
	zero := Point{}
	if zero.Normalize() != zero {
		t.Error("normalizing the zero vector should be identity")
	}
}

func BenchmarkCellIDFromLatLng(b *testing.B) {
	lls := make([]LatLng, 1024)
	r := rand.New(rand.NewSource(6))
	for i := range lls {
		lls[i] = randomLatLng(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CellIDFromLatLng(lls[i%len(lls)])
	}
}

func BenchmarkCellDistanceKm(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	cells := make([]CellID, 256)
	for i := range cells {
		cells[i] = CellIDFromLatLngLevel(randomLatLng(r), 12)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CellDistanceKm(cells[i%len(cells)], cells[(i*7+3)%len(cells)])
	}
}
