package geo

import (
	"math"
	"sort"
)

// CoverCapCells returns the cells at the given level that (approximately)
// cover the spherical cap of the given radius around center — the covering
// primitive behind region records (Sec. 2.1: "datasets that contain record
// locations as regions, by copying a record into multiple cells within the
// mobility histories using weights").
//
// The covering is computed by sampling a geodesic-aware lat/lng grid over
// the cap's bounding box at half-cell spacing and collecting the distinct
// containing cells. It is approximate in both directions on the cap's rim
// (a rim cell can be missed or over-included by a fraction of a cell), but
// it always includes the center cell, never returns cells farther than one
// cell diagonal outside the radius, and is deterministic. The sample count
// is bounded, so very large radius/level combinations degrade gracefully
// to a coarser sampling instead of exploding.
func CoverCapCells(center LatLng, radiusKm float64, level int) []CellID {
	if level < 0 {
		level = 0
	}
	if level > MaxLevel {
		level = MaxLevel
	}
	centerCell := CellIDFromLatLngLevel(center, level)
	if radiusKm <= 0 {
		return []CellID{centerCell}
	}

	// Half-cell sampling resolves every interior cell; clamp the grid to
	// maxSamples^2 points for pathological radius/level combinations.
	const maxSamples = 96
	stepKm := ApproxCellEdgeKm(level) / 2
	if n := 2 * radiusKm / stepKm; n > maxSamples {
		stepKm = 2 * radiusKm / maxSamples
	}

	latStep := stepKm / kmPerDegreeLat
	latLo := center.Lat - radiusKm/kmPerDegreeLat
	latHi := center.Lat + radiusKm/kmPerDegreeLat

	seen := map[CellID]struct{}{centerCell: {}}
	for lat := latLo; lat <= latHi+latStep/2; lat += latStep {
		cosLat := math.Cos(lat * math.Pi / 180)
		if cosLat < 0.01 {
			cosLat = 0.01 // near the poles every longitude is close
		}
		lngSpan := radiusKm / (kmPerDegreeLat * cosLat)
		lngStep := stepKm / (kmPerDegreeLat * cosLat)
		for lng := center.Lng - lngSpan; lng <= center.Lng+lngSpan+lngStep/2; lng += lngStep {
			pt := LatLngFromDegrees(clampLat(lat), lng)
			if GreatCircleKm(center, pt) > radiusKm {
				continue
			}
			seen[CellIDFromLatLngLevel(pt, level)] = struct{}{}
		}
	}
	out := make([]CellID, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

const kmPerDegreeLat = 111.19492664455873 // EarthRadiusKm * pi / 180

func clampLat(lat float64) float64 {
	if lat > 90 {
		return 90
	}
	if lat < -90 {
		return -90
	}
	return lat
}
