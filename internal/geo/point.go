// Package geo implements the hierarchical spatial grid SLIM depends on.
//
// The paper uses Google's S2 geometry library to partition the Earth's
// surface into 31 levels of hierarchical cells. This package re-implements
// the relevant subset of the S2 cell scheme from scratch in pure Go:
//
//   - points on the unit sphere and lat/lng conversions,
//   - the cube-face projection with the quadratic area-uniformity transform,
//   - 64-bit Hilbert-curve cell ids with 30 subdivision levels,
//   - parent/child navigation and containment,
//   - great-circle distances and admissible lower bounds on the minimum
//     distance between two cells (used for runaway/alibi tests).
//
// Cell ids produced here follow the same bit layout as S2 (3 face bits,
// 60 Hilbert position bits, trailing marker bit) but are not guaranteed to
// be numerically identical to Google's ids; SLIM only relies on the
// hierarchy and locality structure, not on specific id values.
package geo

import "math"

// EarthRadiusKm is the mean Earth radius used for all distance computations.
const EarthRadiusKm = 6371.0088

// Point is a point on the unit sphere in geocentric coordinates.
type Point struct {
	X, Y, Z float64
}

// LatLng is a geographic position in degrees.
type LatLng struct {
	Lat, Lng float64
}

// LatLngFromDegrees constructs a LatLng, clamping latitude into [-90, 90]
// and wrapping longitude into [-180, 180]. Non-finite inputs collapse to 0
// so that untrusted coordinates can never smuggle NaN/Inf into a dataset
// (nor spin a subtract-360 loop that float precision would never finish).
func LatLngFromDegrees(lat, lng float64) LatLng {
	if math.IsNaN(lat) || math.IsInf(lat, 0) {
		lat = 0
	}
	if math.IsNaN(lng) || math.IsInf(lng, 0) {
		lng = 0
	}
	if lat > 90 {
		lat = 90
	}
	if lat < -90 {
		lat = -90
	}
	if lng > 180 || lng < -180 {
		lng = math.Mod(lng, 360)
		if lng > 180 {
			lng -= 360
		} else if lng < -180 {
			lng += 360
		}
	}
	return LatLng{Lat: lat, Lng: lng}
}

// IsValid reports whether the position holds finite, in-range coordinates.
func (ll LatLng) IsValid() bool {
	return !math.IsNaN(ll.Lat) && !math.IsNaN(ll.Lng) &&
		ll.Lat >= -90 && ll.Lat <= 90 && ll.Lng >= -180 && ll.Lng <= 180
}

// PointFromLatLng converts a geographic position to a unit vector.
func PointFromLatLng(ll LatLng) Point {
	phi := ll.Lat * math.Pi / 180
	theta := ll.Lng * math.Pi / 180
	cosPhi := math.Cos(phi)
	return Point{
		X: math.Cos(theta) * cosPhi,
		Y: math.Sin(theta) * cosPhi,
		Z: math.Sin(phi),
	}
}

// LatLngFromPoint converts a unit vector back to degrees.
func LatLngFromPoint(p Point) LatLng {
	lat := math.Atan2(p.Z, math.Sqrt(p.X*p.X+p.Y*p.Y))
	lng := math.Atan2(p.Y, p.X)
	return LatLng{Lat: lat * 180 / math.Pi, Lng: lng * 180 / math.Pi}
}

// Dot returns the inner product of two vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y + p.Z*q.Z }

// Cross returns the cross product of two vectors.
func (p Point) Cross(q Point) Point {
	return Point{
		X: p.Y*q.Z - p.Z*q.Y,
		Y: p.Z*q.X - p.X*q.Z,
		Z: p.X*q.Y - p.Y*q.X,
	}
}

// Norm returns the Euclidean length of the vector.
func (p Point) Norm() float64 { return math.Sqrt(p.Dot(p)) }

// Normalize returns the unit vector in the direction of p. The zero vector
// is returned unchanged.
func (p Point) Normalize() Point {
	n := p.Norm()
	if n == 0 {
		return p
	}
	return Point{X: p.X / n, Y: p.Y / n, Z: p.Z / n}
}

// Angle returns the angle between two unit vectors in radians, computed
// with atan2 for numerical stability near 0 and pi.
func (p Point) Angle(q Point) float64 {
	return math.Atan2(p.Cross(q).Norm(), p.Dot(q))
}

// GreatCircleKm returns the great-circle distance between two geographic
// positions in kilometers.
func GreatCircleKm(a, b LatLng) float64 {
	return PointFromLatLng(a).Angle(PointFromLatLng(b)) * EarthRadiusKm
}
