package geo

// CellDistanceKm returns a lower bound on the minimum geographical distance
// between any point of cell a and any point of cell b, in kilometers.
//
// SLIM uses this as the distance d(e.c, i.c) in the proximity function
// (Eq. 1). A lower bound is the right choice for alibi semantics: it can
// never falsely declare two adjacent cells to be farther apart than the
// runaway distance, so an alibi penalty is only ever applied to pairs that
// are truly far apart.
//
// The bound is computed as the great-circle distance between cell centers
// minus both circumradii, clamped at zero. Identical cells and
// ancestor/descendant pairs are at distance zero by definition.
func CellDistanceKm(a, b CellID) float64 {
	if a == b || a.Contains(b) || b.Contains(a) {
		return 0
	}
	angle := a.Center().Angle(b.Center()) - a.CircumradiusRad() - b.CircumradiusRad()
	if angle <= 0 {
		return 0
	}
	return angle * EarthRadiusKm
}

// CellCenterDistanceKm returns the great-circle distance between the two
// cell centers in kilometers (no circumradius correction).
func CellCenterDistanceKm(a, b CellID) float64 {
	return a.Center().Angle(b.Center()) * EarthRadiusKm
}

// ApproxCellEdgeKm returns the approximate edge length in kilometers of a
// cell at the given level. Useful for choosing spatial detail levels: each
// level halves the edge length, level 12 cells are roughly 2 km across.
func ApproxCellEdgeKm(level int) float64 {
	if level < 0 {
		level = 0
	}
	if level > MaxLevel {
		level = MaxLevel
	}
	// A face spans a quarter of the circumference; each level halves it.
	quarter := EarthRadiusKm * 3.14159265358979 / 2
	return quarter / float64(uint64(1)<<uint(level))
}
