package geo

import (
	"math/rand"
	"testing"
)

func TestCoverCapPointDegeneratesToSingleCell(t *testing.T) {
	ll := LatLng{Lat: 37.7749, Lng: -122.4194}
	cells := CoverCapCells(ll, 0, 12)
	if len(cells) != 1 || cells[0] != CellIDFromLatLngLevel(ll, 12) {
		t.Fatalf("zero radius should return only the center cell, got %v", cells)
	}
	cells = CoverCapCells(ll, -5, 12)
	if len(cells) != 1 {
		t.Fatal("negative radius should behave like a point")
	}
}

func TestCoverCapContainsCenterAndNeighbors(t *testing.T) {
	center := LatLng{Lat: 37.7749, Lng: -122.4194}
	level := 13 // ~2.4 km cells
	cells := CoverCapCells(center, 5, level)
	if len(cells) < 4 {
		t.Fatalf("a 5km cap should span several level-%d cells, got %d", level, len(cells))
	}
	centerCell := CellIDFromLatLngLevel(center, level)
	found := false
	for _, c := range cells {
		if c == centerCell {
			found = true
		}
		if c.Level() != level {
			t.Fatalf("cell %v not at level %d", c, level)
		}
		if !c.IsValid() {
			t.Fatalf("invalid cell in covering: %v", c)
		}
	}
	if !found {
		t.Fatal("covering must include the center cell")
	}
	// Points inside the cap should (almost always) fall in covered cells.
	r := rand.New(rand.NewSource(1))
	covered := make(map[CellID]bool, len(cells))
	for _, c := range cells {
		covered[c] = true
	}
	miss := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		dLat := (r.Float64()*2 - 1) * 4.4 / 111.19
		dLng := (r.Float64()*2 - 1) * 4.4 / (111.19 * 0.79)
		pt := LatLng{Lat: center.Lat + dLat, Lng: center.Lng + dLng}
		if GreatCircleKm(center, pt) > 4.4 { // stay clearly inside 5km
			continue
		}
		if !covered[CellIDFromLatLngLevel(pt, level)] {
			miss++
		}
	}
	if miss > trials/20 {
		t.Errorf("%d/%d interior points landed outside the covering", miss, trials)
	}
}

func TestCoverCapCellsNotTooFar(t *testing.T) {
	center := LatLng{Lat: 48.8566, Lng: 2.3522}
	level := 12
	radius := 8.0
	for _, c := range CoverCapCells(center, radius, level) {
		d := GreatCircleKm(center, c.LatLng())
		// A covered cell's center can be at most radius + one diagonal out.
		if d > radius+3*ApproxCellEdgeKm(level) {
			t.Errorf("cell %v center %.1f km from cap center (radius %g)", c, d, radius)
		}
	}
}

func TestCoverCapDeterministic(t *testing.T) {
	center := LatLng{Lat: -33.8688, Lng: 151.2093}
	first := CoverCapCells(center, 6, 13)
	for i := 0; i < 3; i++ {
		again := CoverCapCells(center, 6, 13)
		if len(again) != len(first) {
			t.Fatal("covering size not deterministic")
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatal("covering order not deterministic")
			}
		}
	}
	// Sorted ascending.
	for j := 1; j < len(first); j++ {
		if first[j] <= first[j-1] {
			t.Fatal("covering not sorted")
		}
	}
}

func TestCoverCapBoundedSamples(t *testing.T) {
	// Huge radius at a fine level must not explode; it degrades to a
	// coarser sampling but still returns promptly with bounded output.
	cells := CoverCapCells(LatLng{Lat: 37.77, Lng: -122.42}, 500, 18)
	if len(cells) == 0 {
		t.Fatal("covering must not be empty")
	}
	if len(cells) > 100*100 {
		t.Fatalf("covering exploded: %d cells", len(cells))
	}
}

func TestCoverCapNearPole(t *testing.T) {
	// Must not hang or divide by ~zero at extreme latitudes.
	cells := CoverCapCells(LatLng{Lat: 89.5, Lng: 10}, 20, 10)
	if len(cells) == 0 {
		t.Fatal("polar covering empty")
	}
}

func BenchmarkCoverCap(b *testing.B) {
	center := LatLng{Lat: 37.7749, Lng: -122.4194}
	for i := 0; i < b.N; i++ {
		_ = CoverCapCells(center, 5, 13)
	}
}
