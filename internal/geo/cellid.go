package geo

import (
	"fmt"
	"math"
	"math/bits"
)

// MaxLevel is the deepest subdivision level. Together with the face level
// this yields the paper's "31 levels of hierarchical cells".
const MaxLevel = 30

const (
	posBits  = 2*MaxLevel + 1 // 61: Hilbert position bits + marker bit
	maxSize  = 1 << MaxLevel  // cells per face edge at the deepest level
	swapMask = 0x01
	invMask  = 0x02
)

// CellID identifies a cell of the hierarchical spatial grid. The zero value
// is invalid and is used throughout SLIM as the "no cell / placeholder"
// sentinel (for example in LSH signatures).
//
// Bit layout (matching the S2 scheme): the top 3 bits hold the cube face,
// followed by up to 60 bits of Hilbert-curve position (2 per level), and a
// trailing marker bit whose position encodes the level.
type CellID uint64

// Hilbert curve orientation tables (identical to the canonical S2 tables).
// posToIJ[orientation][pos] gives the (i,j) sub-cell (encoded as i<<1|j)
// visited at position pos within a parent of the given orientation, and
// posToOrientation gives the orientation modifier for that sub-cell.
var (
	posToIJ = [4][4]int{
		{0, 1, 3, 2}, // canonical
		{0, 2, 3, 1}, // swap
		{3, 2, 0, 1}, // invert
		{3, 1, 0, 2}, // swap + invert
	}
	ijToPos = [4][4]int{
		{0, 1, 3, 2},
		{0, 3, 1, 2},
		{2, 3, 1, 0},
		{2, 1, 3, 0},
	}
	posToOrientation = [4]int{swapMask, 0, 0, invMask | swapMask}
)

// CellIDFromLatLng returns the leaf cell (level 30) containing the position.
func CellIDFromLatLng(ll LatLng) CellID {
	face, u, v := xyzToFaceUV(PointFromLatLng(ll))
	i := stToIJ(uvToST(u))
	j := stToIJ(uvToST(v))
	return cellIDFromFaceIJ(face, i, j)
}

// CellIDFromLatLngLevel returns the cell at the given level containing the
// position. Levels outside [0, MaxLevel] are clamped.
func CellIDFromLatLngLevel(ll LatLng, level int) CellID {
	return CellIDFromLatLng(ll).Parent(level)
}

// CellIDFromFacePosLevel assembles a cell id from its face, its 60-bit
// Hilbert position (only the bits above the level's marker are kept), and
// level. Mostly useful for tests.
func CellIDFromFacePosLevel(face int, pos uint64, level int) CellID {
	id := CellID(uint64(face)<<posBits | pos | 1)
	return id.Parent(level)
}

func cellIDFromFaceIJ(face, i, j int) CellID {
	orientation := face & swapMask
	var pos uint64
	for k := MaxLevel - 1; k >= 0; k-- {
		ij := ((i>>uint(k))&1)<<1 | (j>>uint(k))&1
		p := ijToPos[orientation][ij]
		pos = pos<<2 | uint64(p)
		orientation ^= posToOrientation[p]
	}
	return CellID(uint64(face)<<posBits | pos<<1 | 1)
}

// faceIJOrientation decodes the face and the leaf-level (i,j) coordinates of
// a leaf cell inside this cell (for non-leaf cells, the marker-bit pattern
// decodes to a leaf adjacent to the cell center).
func (c CellID) faceIJOrientation() (face, i, j int) {
	face = int(uint64(c) >> posBits)
	orientation := face & swapMask
	pos := uint64(c) >> 1 & (1<<(2*MaxLevel) - 1)
	for k := MaxLevel - 1; k >= 0; k-- {
		p := int(pos>>(2*uint(k))) & 3
		ij := posToIJ[orientation][p]
		i = i<<1 | ij>>1
		j = j<<1 | ij&1
		orientation ^= posToOrientation[p]
	}
	return face, i, j
}

// IsValid reports whether the id denotes a real cell: a face in [0, 5] and
// a well-formed marker bit.
func (c CellID) IsValid() bool {
	return c>>posBits < 6 && c.lsb()&0x1555555555555555 != 0
}

// lsb returns the lowest set bit (the level marker).
func (c CellID) lsb() uint64 { return uint64(c) & (^uint64(c) + 1) }

func lsbForLevel(level int) uint64 { return 1 << uint(2*(MaxLevel-level)) }

// Level returns the subdivision level of the cell in [0, MaxLevel].
func (c CellID) Level() int {
	return MaxLevel - bits.TrailingZeros64(uint64(c))>>1
}

// Face returns the cube face in [0, 5].
func (c CellID) Face() int { return int(uint64(c) >> posBits) }

// IsLeaf reports whether the cell is at the deepest level.
func (c CellID) IsLeaf() bool { return uint64(c)&1 != 0 }

// Parent returns the ancestor cell at the given level. Levels at or above
// the cell's own level return the cell's ancestor; asking for a deeper
// level returns the cell itself. Levels are clamped to [0, MaxLevel].
func (c CellID) Parent(level int) CellID {
	if level < 0 {
		level = 0
	}
	if level > MaxLevel {
		level = MaxLevel
	}
	if level >= c.Level() {
		return c
	}
	lsb := lsbForLevel(level)
	return CellID(uint64(c)&(^lsb+1) | lsb)
}

// immediateParent returns the parent one level up; calling it on a face
// cell returns the face cell itself.
func (c CellID) immediateParent() CellID {
	lvl := c.Level()
	if lvl == 0 {
		return c
	}
	return c.Parent(lvl - 1)
}

// Children returns the four child cells in Hilbert order. Calling Children
// on a leaf returns four copies of the leaf.
func (c CellID) Children() [4]CellID {
	if c.IsLeaf() {
		return [4]CellID{c, c, c, c}
	}
	lsb := c.lsb()
	childLsb := lsb >> 2
	first := uint64(c) - lsb + childLsb
	var out [4]CellID
	for k := 0; k < 4; k++ {
		out[k] = CellID(first + uint64(k)*2*childLsb)
	}
	return out
}

// RangeMin returns the smallest leaf cell id contained in this cell.
func (c CellID) RangeMin() CellID { return CellID(uint64(c) - (c.lsb() - 1)) }

// RangeMax returns the largest leaf cell id contained in this cell.
func (c CellID) RangeMax() CellID { return CellID(uint64(c) + (c.lsb() - 1)) }

// Contains reports whether o is equal to or a descendant of c.
func (c CellID) Contains(o CellID) bool {
	return o >= c.RangeMin() && o <= c.RangeMax()
}

// Center returns the unit-sphere point at the center of the cell.
func (c CellID) Center() Point {
	face, si, ti := c.centerSiTi()
	u := stToUV(float64(si) / (2 * maxSize))
	v := stToUV(float64(ti) / (2 * maxSize))
	return faceUVToXYZ(face, u, v).Normalize()
}

// centerSiTi returns the cell center in half-leaf units (so that integer
// arithmetic stays exact for every level).
func (c CellID) centerSiTi() (face, si, ti int) {
	face, i, j := c.faceIJOrientation()
	size := 1 << uint(MaxLevel-c.Level())
	i &^= size - 1
	j &^= size - 1
	return face, 2*i + size, 2*j + size
}

// LatLng returns the geographic position of the cell center.
func (c CellID) LatLng() LatLng { return LatLngFromPoint(c.Center()) }

// Vertices returns the four corner points of the cell.
func (c CellID) Vertices() [4]Point {
	face, i, j := c.faceIJOrientation()
	size := 1 << uint(MaxLevel-c.Level())
	i &^= size - 1
	j &^= size - 1
	sLo := float64(i) / maxSize
	sHi := float64(i+size) / maxSize
	tLo := float64(j) / maxSize
	tHi := float64(j+size) / maxSize
	return [4]Point{
		faceUVToXYZ(face, stToUV(sLo), stToUV(tLo)).Normalize(),
		faceUVToXYZ(face, stToUV(sHi), stToUV(tLo)).Normalize(),
		faceUVToXYZ(face, stToUV(sHi), stToUV(tHi)).Normalize(),
		faceUVToXYZ(face, stToUV(sLo), stToUV(tHi)).Normalize(),
	}
}

// CircumradiusRad returns the angular radius (radians) of the smallest cap
// centered at the cell center that contains the whole cell.
func (c CellID) CircumradiusRad() float64 {
	center := c.Center()
	var r float64
	for _, v := range c.Vertices() {
		if a := center.Angle(v); a > r {
			r = a
		}
	}
	return r
}

// String renders the id as face/level/hex-position, e.g. "2/12/0x...".
func (c CellID) String() string {
	if !c.IsValid() {
		return fmt.Sprintf("Invalid(0x%016x)", uint64(c))
	}
	return fmt.Sprintf("%d/%d/0x%016x", c.Face(), c.Level(), uint64(c))
}

// ---- cube-face projection ----

// uvToST applies the inverse quadratic transform, mapping [-1,1] to [0,1]
// with near-uniform cell areas (the same transform S2 uses).
func uvToST(u float64) float64 {
	if u >= 0 {
		return 0.5 * math.Sqrt(1+3*u)
	}
	return 1 - 0.5*math.Sqrt(1-3*u)
}

// stToUV is the forward quadratic transform, mapping [0,1] to [-1,1].
func stToUV(s float64) float64 {
	if s >= 0.5 {
		return (1.0 / 3) * (4*s*s - 1)
	}
	return (1.0 / 3) * (1 - 4*(1-s)*(1-s))
}

// stToIJ discretizes an st coordinate into a leaf-level integer in
// [0, maxSize).
func stToIJ(s float64) int {
	i := int(math.Floor(s * maxSize))
	if i < 0 {
		return 0
	}
	if i > maxSize-1 {
		return maxSize - 1
	}
	return i
}

// xyzToFaceUV projects a point onto the cube, returning the dominant face
// and the (u,v) coordinates within it.
func xyzToFaceUV(p Point) (face int, u, v float64) {
	abs := [3]float64{math.Abs(p.X), math.Abs(p.Y), math.Abs(p.Z)}
	axis := 0
	if abs[1] > abs[axis] {
		axis = 1
	}
	if abs[2] > abs[axis] {
		axis = 2
	}
	var val float64
	switch axis {
	case 0:
		val = p.X
	case 1:
		val = p.Y
	default:
		val = p.Z
	}
	face = axis
	if val < 0 {
		face += 3
	}
	switch face {
	case 0:
		u, v = p.Y/p.X, p.Z/p.X
	case 1:
		u, v = -p.X/p.Y, p.Z/p.Y
	case 2:
		u, v = -p.X/p.Z, -p.Y/p.Z
	case 3:
		u, v = p.Z/p.X, p.Y/p.X
	case 4:
		u, v = p.Z/p.Y, -p.X/p.Y
	default:
		u, v = -p.Y/p.Z, -p.X/p.Z
	}
	return face, u, v
}

// faceUVToXYZ is the inverse of xyzToFaceUV (result is not normalized).
func faceUVToXYZ(face int, u, v float64) Point {
	switch face {
	case 0:
		return Point{1, u, v}
	case 1:
		return Point{-u, 1, v}
	case 2:
		return Point{-u, -v, 1}
	case 3:
		return Point{-1, -v, -u}
	case 4:
		return Point{v, -1, -u}
	default:
		return Point{v, u, -1}
	}
}
