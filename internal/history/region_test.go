package history

import (
	"math"
	"testing"

	"slim/internal/geo"
	"slim/internal/model"
)

func regionRec(e string, lat, lng float64, unix int64, radiusKm float64) model.Record {
	return model.Record{
		Entity:   model.EntityID(e),
		LatLng:   geo.LatLng{Lat: lat, Lng: lng},
		Unix:     unix,
		RadiusKm: radiusKm,
	}
}

func TestRegionRecordSpreadsWeight(t *testing.T) {
	// A region record with a 5km radius at level 13 (~2.4km cells) must
	// spread over several cells whose weights sum to 1.
	d := model.Dataset{Name: "r", Records: []model.Record{
		regionRec("a", 37.7749, -122.4194, 100, 5),
	}}
	s := Build(&d, testWindowing, 13)
	h := s.History("a")
	if h.NumRecords() != 1 {
		t.Fatalf("NumRecords = %d, want 1", h.NumRecords())
	}
	cells := h.CellsAt(0)
	if len(cells) < 4 {
		t.Fatalf("region spread over %d cells, want several", len(cells))
	}
	var sum float64
	var first float64
	i := 0
	for _, w := range cells {
		sum += w
		if i == 0 {
			first = w
		} else if w != first {
			t.Errorf("weights not equal: %g vs %g", w, first)
		}
		i++
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("region weights sum to %g, want 1", sum)
	}
	if h.NumBins() != len(cells) {
		t.Errorf("NumBins = %d, want %d (one per covered cell)", h.NumBins(), len(cells))
	}
}

func TestRegionRecordDominatingCell(t *testing.T) {
	// Three point records in one cell beat one region record spread over
	// many cells, even though the region touches that cell too.
	var recs []model.Record
	for k := 0; k < 3; k++ {
		recs = append(recs, regionRec("a", 37.7749, -122.4194, int64(k*100), 0))
	}
	recs = append(recs, regionRec("a", 37.80, -122.40, 400, 6))
	d := model.Dataset{Name: "r", Records: recs}
	s := Build(&d, testWindowing, 13)
	h := s.History("a")
	got, ok := h.DominatingCell(0, 4)
	want := geo.CellIDFromLatLngLevel(geo.LatLng{Lat: 37.7749, Lng: -122.4194}, 13)
	if !ok || got != want {
		t.Errorf("dominating cell = %v, want the 3-point cell %v", got, want)
	}
}

func TestRegionAndPointMix(t *testing.T) {
	// IDF must see a region entity as "present" in every covered bin.
	d := model.Dataset{Name: "r", Records: []model.Record{
		regionRec("region", 37.7749, -122.4194, 100, 4),
		regionRec("point", 37.7749, -122.4194, 100, 0),
		regionRec("far", 48.85, 2.35, 100, 0),
	}}
	s := Build(&d, testWindowing, 13)
	pointCell := geo.CellIDFromLatLngLevel(geo.LatLng{Lat: 37.7749, Lng: -122.4194}, 13)
	b := Bin{Window: 0, Cell: pointCell}
	// Both "region" and "point" are in this bin → idf = ln(3/2).
	if got, want := s.IDF(b), math.Log(1.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("IDF with region presence = %g, want %g", got, want)
	}
}

func TestRegionZeroRadiusIsPoint(t *testing.T) {
	p := model.Dataset{Name: "p", Records: []model.Record{
		regionRec("a", 37.7749, -122.4194, 100, 0),
	}}
	s := Build(&p, testWindowing, 13)
	h := s.History("a")
	cells := h.CellsAt(0)
	if len(cells) != 1 {
		t.Fatalf("point record spread over %d cells", len(cells))
	}
	for _, w := range cells {
		if w != 1 {
			t.Errorf("point weight = %g, want 1", w)
		}
	}
}
