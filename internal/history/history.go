// Package history implements SLIM's mobility-history representation
// (Sec. 2.3): per-entity temporal segment trees whose leaves are fixed-width
// time windows holding spatial grid-cell ids with record counts, and whose
// interior nodes aggregate the occurrence counts of the cell ids in their
// sub-tree. The aggregated nodes answer the dominating-grid-cell range
// queries that drive the LSH signatures (Sec. 4).
//
// A Store holds the histories of one location dataset together with the
// dataset-level statistics the similarity score needs: the bin→entity
// frequency index behind the IDF component (Eq. 3) and the average history
// size behind the BM25-style length normalization (Eq. 2).
package history

import (
	"math"
	"slices"
	"sync"

	"slim/internal/geo"
	"slim/internal/model"
)

// Bin is a time-location bin: one leaf entry of a mobility history.
type Bin struct {
	Window int64
	Cell   geo.CellID
}

// History is the mobility history of a single entity: a hierarchical
// temporal partitioning whose leaves map spatial cells to record counts.
type History struct {
	Entity model.EntityID

	leaves  map[int64]map[geo.CellID]float64
	windows []int64 // sorted leaf window indices
	numBins int
	numRecs int

	// version counts mutations of this history; the compiled read path
	// (compiled.go) uses it to detect stale per-entity views.
	version uint64

	// Lazily-built dyadic aggregation levels; levels[0] aliases leaves.
	// Guarded by mu so concurrent scorers can share one History.
	mu     sync.Mutex
	levels []map[int64]map[geo.CellID]float64
}

// newHistory builds a history from an entity's records. Point records add
// weight 1 to their containing cell; region records (RadiusKm > 0) are
// copied into every cell covering the region, each receiving an equal
// fraction of the record's unit weight (the Sec. 2.1 extension).
func newHistory(entity model.EntityID, recs []model.Record, w model.Windowing, level int) *History {
	h := &History{Entity: entity, leaves: make(map[int64]map[geo.CellID]float64)}
	add := func(win int64, cell geo.CellID, weight float64) {
		cells := h.leaves[win]
		if cells == nil {
			cells = make(map[geo.CellID]float64)
			h.leaves[win] = cells
		}
		if cells[cell] == 0 {
			h.numBins++
		}
		cells[cell] += weight
	}
	for _, r := range recs {
		win := w.Window(r.Unix)
		h.numRecs++
		if r.RadiusKm <= 0 {
			add(win, geo.CellIDFromLatLngLevel(r.LatLng, level), 1)
			continue
		}
		cover := geo.CoverCapCells(r.LatLng, r.RadiusKm, level)
		weight := 1 / float64(len(cover))
		for _, cell := range cover {
			add(win, cell, weight)
		}
	}
	h.windows = make([]int64, 0, len(h.leaves))
	for win := range h.leaves {
		h.windows = append(h.windows, win)
	}
	slices.Sort(h.windows)
	return h
}

// Windows returns the sorted leaf window indices with at least one record.
// The returned slice must not be modified.
func (h *History) Windows() []int64 { return h.windows }

// Version returns the history's mutation counter: 0 for a freshly built
// history, bumped by every Store.Add that touches the entity. The compiled
// scoring views (compiled.go) and the incremental LSH candidate index
// (internal/candidates) both key their stale-entity checks on it.
func (h *History) Version() uint64 { return h.version }

// CellsAt returns the cell→record-count map of the given leaf window (nil
// if the entity has no records there). The returned map must not be
// modified.
func (h *History) CellsAt(window int64) map[geo.CellID]float64 { return h.leaves[window] }

// NumBins returns |H_u|: the number of distinct time-location bins.
func (h *History) NumBins() int { return h.numBins }

// NumRecords returns the number of records aggregated into the history.
func (h *History) NumRecords() int { return h.numRecs }

// Bins calls fn for every time-location bin with its record count, in
// deterministic order (windows ascending, cells ascending).
func (h *History) Bins(fn func(Bin, float64)) {
	for _, win := range h.windows {
		cells := h.leaves[win]
		ids := make([]geo.CellID, 0, len(cells))
		for c := range cells {
			ids = append(ids, c)
		}
		slices.Sort(ids)
		for _, c := range ids {
			fn(Bin{Window: win, Cell: c}, cells[c])
		}
	}
}

// ensureLevels builds the dyadic aggregation levels up to the given height
// and returns the level slice. Level h holds, for each aligned group of
// 2^h consecutive windows, the merged cell→count map — exactly the
// "non-leaf nodes keep the occurrence counts of the cell ids in their
// sub-tree" structure of Fig. 1. Callers must read from the returned
// snapshot, never from h.levels: an interleaved Store.Add invalidates
// h.levels (sets it nil), and reading the field after the lock is dropped
// would race with that reset.
func (h *History) ensureLevels(height int) []map[int64]map[geo.CellID]float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.levels) == 0 {
		h.levels = append(h.levels, h.leaves)
	}
	for len(h.levels) <= height {
		prev := h.levels[len(h.levels)-1]
		next := make(map[int64]map[geo.CellID]float64, (len(prev)+1)/2)
		for idx, cells := range prev {
			parent := floorDiv2(idx)
			dst := next[parent]
			if dst == nil {
				dst = make(map[geo.CellID]float64, len(cells))
				next[parent] = dst
			}
			for c, n := range cells {
				dst[c] += n
			}
		}
		h.levels = append(h.levels, next)
	}
	return h.levels
}

func floorDiv2(x int64) int64 {
	if x >= 0 {
		return x / 2
	}
	return -((-x + 1) / 2)
}

// DominatingCell returns the cell with the highest record count within the
// window range [start, end), using the canonical dyadic decomposition of
// the range over the aggregated tree levels. Ties break toward the smaller
// cell id so signatures are deterministic. ok is false when the entity has
// no records in the range.
func (h *History) DominatingCell(start, end int64) (cell geo.CellID, ok bool) {
	if start >= end || len(h.windows) == 0 {
		return 0, false
	}
	// Height needed: largest power of two that can appear in the
	// decomposition of a range of this length.
	height := 0
	for int64(1)<<uint(height+1) <= end-start {
		height++
	}
	levels := h.ensureLevels(height)

	var counts map[geo.CellID]float64
	addNode := func(level int, idx int64) {
		cells := levels[level][idx]
		if cells == nil {
			return
		}
		if counts == nil {
			counts = make(map[geo.CellID]float64, len(cells))
		}
		for c, n := range cells {
			counts[c] += n
		}
	}
	for start < end {
		level := 0
		// Grow the block while it stays aligned and inside the range.
		for level < height &&
			start&((int64(1)<<uint(level+1))-1) == 0 &&
			start+int64(1)<<uint(level+1) <= end {
			level++
		}
		// For negative starts the bit trick above is unsafe; fall back to
		// leaf accumulation (negative windows only occur in adversarial
		// inputs; all generators produce non-negative windows).
		if start < 0 {
			level = 0
		}
		addNode(level, start>>uint(level))
		start += int64(1) << uint(level)
	}
	if len(counts) == 0 {
		return 0, false
	}
	var best geo.CellID
	bestN := -1.0
	for c, n := range counts {
		if n > bestN || (n == bestN && c < best) {
			best, bestN = c, n
		}
	}
	return best, true
}

// dominatingCellNaive recomputes the dominating cell by scanning leaves;
// used by tests to validate the tree-based query.
func (h *History) dominatingCellNaive(start, end int64) (geo.CellID, bool) {
	counts := make(map[geo.CellID]float64)
	for _, win := range h.windows {
		if win < start || win >= end {
			continue
		}
		for c, n := range h.leaves[win] {
			counts[c] += n
		}
	}
	if len(counts) == 0 {
		return 0, false
	}
	var best geo.CellID
	bestN := -1.0
	for c, n := range counts {
		if n > bestN || (n == bestN && c < best) {
			best, bestN = c, n
		}
	}
	return best, true
}

// Store holds the mobility histories of one location dataset plus the
// dataset-level statistics used by the similarity score.
type Store struct {
	Name      string
	Windowing model.Windowing
	Level     int

	histories map[model.EntityID]*History
	entities  []model.EntityID

	binEntities map[Bin]int32
	avgBins     float64
	totalBins   int
	minWindow   int64
	maxWindow   int64
	hasData     bool

	// idfTotal, when positive, overrides the |U| numerator of the IDF for
	// stores holding one partition of a larger logical dataset.
	idfTotal int

	// epoch versions the dataset-level IDF inputs (entity count, bin
	// frequencies, idfTotal). Any change invalidates every compiled view,
	// because the IDF weights baked into them may have shifted; see
	// compiled.go.
	epoch uint64

	// Compiled read path: per-entity flat views plus the dense cell-id
	// interner shared by all of them. compMu lets concurrent scorers take
	// the read path while lazy recompiles serialize on the write side.
	compMu    sync.RWMutex
	compiled  map[model.EntityID]*Compiled
	cellIndex map[geo.CellID]int32
	cellIDs   []geo.CellID
}

// Build constructs the histories of every entity of the dataset at the
// given spatial level, under the given shared windowing.
func Build(d *model.Dataset, w model.Windowing, spatialLevel int) *Store {
	s := &Store{
		Name:        d.Name,
		Windowing:   w,
		Level:       spatialLevel,
		histories:   make(map[model.EntityID]*History),
		binEntities: make(map[Bin]int32),
		compiled:    make(map[model.EntityID]*Compiled),
		cellIndex:   make(map[geo.CellID]int32),
	}
	byEntity := d.ByEntity()
	s.entities = make([]model.EntityID, 0, len(byEntity))
	for e := range byEntity {
		s.entities = append(s.entities, e)
	}
	slices.Sort(s.entities)

	first := true
	for _, e := range s.entities {
		h := newHistory(e, byEntity[e], w, spatialLevel)
		s.histories[e] = h
		s.totalBins += h.numBins
		for win, cells := range h.leaves {
			if first || win < s.minWindow {
				s.minWindow = win
			}
			if first || win > s.maxWindow {
				s.maxWindow = win
			}
			first = false
			for c := range cells {
				s.binEntities[Bin{Window: win, Cell: c}]++
			}
		}
	}
	s.hasData = !first
	if len(s.entities) > 0 {
		s.avgBins = float64(s.totalBins) / float64(len(s.entities))
	}
	return s
}

// NumEntities returns the number of entities with a history.
func (s *Store) NumEntities() int { return len(s.entities) }

// Entities returns the sorted entity ids. The slice must not be modified.
func (s *Store) Entities() []model.EntityID { return s.entities }

// History returns the history of the given entity, or nil.
func (s *Store) History(e model.EntityID) *History { return s.histories[e] }

// AvgBins returns the average number of time-location bins per history.
func (s *Store) AvgBins() float64 { return s.avgBins }

// WindowRange returns the inclusive [min, max] leaf window indices across
// all histories; ok is false for an empty store.
func (s *Store) WindowRange() (minWin, maxWin int64, ok bool) {
	if len(s.entities) == 0 {
		return 0, 0, false
	}
	return s.minWindow, s.maxWindow, true
}

// Epoch returns the store's IDF-input version: it moves whenever a
// dataset-level score input changes — a new entity (|U| and the average
// history size shift), a new time-location bin (bin→entity frequencies and
// the average history size shift), or a SetIDFTotalEntities change. While
// the epoch stands still, the score of any pair of unchanged histories is
// unchanged too: weight-only adds touch exactly the histories they land
// in. The compiled scoring views (compiled.go) and the root package's
// incremental edge store both key their invalidation on this counter.
func (s *Store) Epoch() uint64 { return s.epoch }

// SetIDFTotalEntities overrides the |U| numerator of the IDF (Eq. 3) for
// stores that hold one hash partition of a larger logical dataset: the
// bin→entity frequencies in the denominator stay partition-local (the
// standard distributed-retrieval approximation), but the entity-count
// numerator reflects the whole dataset, so a shard with few entities does
// not degenerate to zero IDF weights. n <= the local entity count restores
// purely local statistics.
func (s *Store) SetIDFTotalEntities(n int) {
	if s.idfTotal == n {
		return
	}
	s.idfTotal = n
	s.epoch++
}

// IDF returns the inverse-document-frequency weight of a time-location bin
// (Eq. 3): log(|U| / |{u : bin ∈ H_u}|). Bins absent from the dataset get
// the maximum weight log(|U|), consistent with the limit of Eq. 3.
func (s *Store) IDF(b Bin) float64 {
	n := len(s.entities)
	if s.idfTotal > n {
		n = s.idfTotal
	}
	if n == 0 {
		return 0
	}
	c := s.binEntities[b]
	if c == 0 {
		c = 1
	}
	return math.Log(float64(n) / float64(c))
}

// NormFactor returns the BM25-style length normalization L(u) of Eq. 2 for
// parameter b in [0, 1].
func (s *Store) NormFactor(e model.EntityID, b float64) float64 {
	h := s.histories[e]
	if h == nil || s.avgBins == 0 {
		return 1
	}
	return (1 - b) + b*float64(h.numBins)/s.avgBins
}
