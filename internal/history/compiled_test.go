package history

import (
	"testing"

	"slim/internal/geo"
	"slim/internal/model"
)

func compiledTestStore(t testing.TB) *Store {
	t.Helper()
	recs := []model.Record{
		{Entity: "a", LatLng: geo.LatLng{Lat: 37.77, Lng: -122.42}, Unix: 100},
		{Entity: "a", LatLng: geo.LatLng{Lat: 37.80, Lng: -122.27}, Unix: 1000},
		{Entity: "a", LatLng: geo.LatLng{Lat: 37.77, Lng: -122.42}, Unix: 120}, // same bin as first
		{Entity: "b", LatLng: geo.LatLng{Lat: 37.60, Lng: -122.38}, Unix: 500},
		{Entity: "b", LatLng: geo.LatLng{Lat: 37.61, Lng: -122.39}, Unix: 2000, RadiusKm: 1.5},
		{Entity: "c", LatLng: geo.LatLng{Lat: 34.05, Lng: -118.24}, Unix: 900},
	}
	d := model.Dataset{Name: "D", Records: recs}
	return Build(&d, model.Windowing{Epoch: 0, WidthSeconds: 900}, 12)
}

// TestCompiledViewMatchesBins checks the flat layout against the map walk:
// same windows, same cells in the same (sorted) order, same weights, IDF
// weights equal to the store's IDF, and per-window record sums consistent.
func TestCompiledViewMatchesBins(t *testing.T) {
	s := compiledTestStore(t)
	if n := s.Compile(); n != s.NumEntities() {
		t.Fatalf("first Compile recompiled %d entities, want %d", n, s.NumEntities())
	}
	for _, e := range s.Entities() {
		c, ids := s.CompiledView(e)
		if c == nil {
			t.Fatalf("no compiled view for %s", e)
		}
		h := s.History(e)
		if len(c.Windows) != len(h.Windows()) {
			t.Fatalf("%s: %d compiled windows, want %d", e, len(c.Windows), len(h.Windows()))
		}
		k := 0
		wi := -1
		h.Bins(func(b Bin, count float64) {
			for wi < 0 || c.Windows[wi] != b.Window {
				wi++
			}
			if k >= int(c.Off[wi+1]) || k < int(c.Off[wi]) {
				t.Fatalf("%s: bin %d outside window %d range [%d,%d)", e, k, wi, c.Off[wi], c.Off[wi+1])
			}
			if got := ids[c.Cells[k]]; got != b.Cell {
				t.Fatalf("%s: compiled cell %v at %d, want %v", e, got, k, b.Cell)
			}
			if c.Counts[k] != count {
				t.Fatalf("%s: compiled count %v at %d, want %v", e, c.Counts[k], k, count)
			}
			if want := s.IDF(b); c.IDF[k] != want {
				t.Fatalf("%s: compiled IDF %v at %d, want %v", e, c.IDF[k], k, want)
			}
			k++
		})
		if k != h.NumBins() {
			t.Fatalf("%s: compiled %d bins, history has %d", e, k, h.NumBins())
		}
		for w := range c.Windows {
			var sum float64
			for b := c.Off[w]; b < c.Off[w+1]; b++ {
				sum += c.Counts[b]
			}
			if sum != c.WinRecs[w] {
				t.Fatalf("%s: WinRecs[%d] = %v, bins sum to %v", e, w, c.WinRecs[w], sum)
			}
		}
	}
}

// TestCompileInvalidation pins the recompilation granularity: clean stores
// recompile nothing, weight-only adds recompile one entity, and anything
// that can shift baked IDF weights (new bin, new entity, IDF total
// override) recompiles all.
func TestCompileInvalidation(t *testing.T) {
	s := compiledTestStore(t)
	all := s.NumEntities()
	s.Compile()
	if n := s.Compile(); n != 0 {
		t.Fatalf("clean Compile recompiled %d entities, want 0", n)
	}

	// Weight-only add: a duplicate of an existing record lands in an
	// existing bin, so only entity "a" goes stale.
	s.Add(model.Record{Entity: "a", LatLng: geo.LatLng{Lat: 37.77, Lng: -122.42}, Unix: 110})
	if n := s.Compile(); n != 1 {
		t.Fatalf("weight-only add recompiled %d entities, want 1", n)
	}

	// New bin: bin frequencies changed, every baked IDF may be stale.
	s.Add(model.Record{Entity: "a", LatLng: geo.LatLng{Lat: 36.0, Lng: -121.0}, Unix: 50000})
	if n := s.Compile(); n != all {
		t.Fatalf("new-bin add recompiled %d entities, want %d", n, all)
	}

	// New entity: |U| changed.
	s.Add(model.Record{Entity: "z", LatLng: geo.LatLng{Lat: 37.0, Lng: -122.0}, Unix: 42})
	if n := s.Compile(); n != all+1 {
		t.Fatalf("new-entity add recompiled %d entities, want %d", n, all+1)
	}

	// IDF numerator override: all stale; setting the same value again is
	// a no-op.
	s.SetIDFTotalEntities(100)
	if n := s.Compile(); n != all+1 {
		t.Fatalf("SetIDFTotalEntities recompiled %d entities, want %d", n, all+1)
	}
	s.SetIDFTotalEntities(100)
	if n := s.Compile(); n != 0 {
		t.Fatalf("no-op SetIDFTotalEntities recompiled %d entities, want 0", n)
	}
}

// TestCompiledViewLazyRecompile checks that CompiledView alone (no explicit
// Compile call) serves fresh views after an Add.
func TestCompiledViewLazyRecompile(t *testing.T) {
	s := compiledTestStore(t)
	before, _ := s.CompiledView("a")
	if before == nil {
		t.Fatal("lazy CompiledView returned nil for a known entity")
	}
	binsBefore := len(before.Cells)
	s.Add(model.Record{Entity: "a", LatLng: geo.LatLng{Lat: 36.5, Lng: -121.5}, Unix: 90000})
	after, ids := s.CompiledView("a")
	if after == before {
		t.Fatal("CompiledView returned the stale view after Add")
	}
	if len(after.Cells) != binsBefore+1 {
		t.Fatalf("recompiled view has %d bins, want %d", len(after.Cells), binsBefore+1)
	}
	// Dense indices must stay within the id table.
	for _, ci := range after.Cells {
		if int(ci) >= len(ids) {
			t.Fatalf("dense index %d outside id table of %d", ci, len(ids))
		}
	}
}

// BenchmarkCompile measures a full store compilation after an
// IDF-epoch-invalidating change — the worst-case recompile a relink pays
// after ingest creates new bins.
func BenchmarkCompile(b *testing.B) {
	var recs []model.Record
	for e := 0; e < 64; e++ {
		for k := 0; k < 200; k++ {
			recs = append(recs, model.Record{
				Entity: model.EntityID(rune('A' + e)),
				LatLng: geo.LatLng{Lat: 37.5 + float64(k%20)*0.01, Lng: -122.5 + float64((e+k)%17)*0.01},
				Unix:   int64(900 * k),
			})
		}
	}
	d := model.Dataset{Name: "bench", Records: recs}
	s := Build(&d, model.Windowing{Epoch: 0, WidthSeconds: 900}, 12)
	s.Compile()
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		s.epoch++ // invalidate every compiled view
		s.Compile()
	}
}
