package history

import (
	"slices"

	"slim/internal/geo"
	"slim/internal/model"
)

// Compiled is the flat, read-optimized view of one entity's history that
// the similarity scorer runs on. Where History stores per-window
// map[CellID]float64 leaves, Compiled lays the same bins out as parallel
// arrays: window k's bins occupy Cells/Counts/IDF[Off[k]:Off[k+1]], sorted
// by ascending cell id — exactly the iteration order the map-based scorer
// derived per call with sortedCells. Cell ids are interned into the owning
// Store's dense index space (see Store.CompiledView) so scorers can key
// distance caches on small integers instead of hashing 64-bit id pairs.
//
// A Compiled view is immutable once published. Store.Add invalidates it by
// bumping version counters, never by mutating it, so a scorer holding a
// view keeps reading consistent (if stale) data.
type Compiled struct {
	// Windows are the sorted leaf window indices (a copy: the history's
	// own window slice is shifted in place by later Adds, which would
	// corrupt a held view rather than merely staling it).
	Windows []int64
	// Off bounds each window's bin range: window k owns indices
	// [Off[k], Off[k+1]) of the parallel arrays below.
	Off []int32
	// Cells holds store-dense cell indices, ascending cell-id order within
	// each window.
	Cells []int32
	// Counts holds the record weight of each bin.
	Counts []float64
	// IDF holds the owning store's IDF weight (Eq. 3) of each bin, baked in
	// at compile time.
	IDF []float64
	// WinRecs[k] is the summed record weight of window k, accumulated in
	// bin order (so it is bit-identical to the map scorer's per-window sum).
	WinRecs []float64

	storeEpoch  uint64
	histVersion uint64
}

// current reports whether the view is still valid for the given store
// state and history.
func (c *Compiled) current(epoch uint64, h *History) bool {
	return c != nil && c.storeEpoch == epoch && c.histVersion == h.version
}

// Compile refreshes the compiled read path of every entity whose history
// changed — or whose dataset-level IDF inputs changed — since its last
// compilation, and returns how many entities were recompiled. Weight-only
// updates (records landing in existing bins) dirty just the touched
// entities; a new bin, a new entity, or a SetIDFTotalEntities change moves
// the store's IDF epoch and recompiles everything, because the IDF weights
// baked into every view may have shifted.
//
// RunEdges calls Compile before fanning scoring across workers, so the
// parallel phase only ever takes the cheap read-lock path of CompiledView.
func (s *Store) Compile() int {
	s.compMu.Lock()
	defer s.compMu.Unlock()
	n := 0
	for _, e := range s.entities {
		h := s.histories[e]
		if s.compiled[e].current(s.epoch, h) {
			continue
		}
		s.compileLocked(e, h)
		n++
	}
	return n
}

// CompiledView returns the up-to-date compiled history of e (nil if e is
// unknown) together with the store's dense-index→cell-id table. A stale or
// missing view is compiled on the spot, so callers need no prior Compile;
// the table is append-only, so indices held by any returned view remain
// valid in every later table. Safe for concurrent use by scorers; like all
// reads, not safe concurrently with Add.
func (s *Store) CompiledView(e model.EntityID) (*Compiled, []geo.CellID) {
	h := s.histories[e]
	if h == nil {
		return nil, nil
	}
	s.compMu.RLock()
	c := s.compiled[e]
	if c.current(s.epoch, h) {
		ids := s.cellIDs
		s.compMu.RUnlock()
		return c, ids
	}
	s.compMu.RUnlock()

	s.compMu.Lock()
	c = s.compiled[e]
	if !c.current(s.epoch, h) {
		c = s.compileLocked(e, h)
	}
	ids := s.cellIDs
	s.compMu.Unlock()
	return c, ids
}

// compileLocked rebuilds the compiled view of one entity. Callers hold
// compMu. A fresh Compiled is always allocated: concurrent scorers may
// still hold the previous view.
func (s *Store) compileLocked(e model.EntityID, h *History) *Compiled {
	c := &Compiled{
		Windows:     slices.Clone(h.windows),
		Off:         make([]int32, 1, len(h.windows)+1),
		Cells:       make([]int32, 0, h.numBins),
		Counts:      make([]float64, 0, h.numBins),
		IDF:         make([]float64, 0, h.numBins),
		WinRecs:     make([]float64, 0, len(h.windows)),
		storeEpoch:  s.epoch,
		histVersion: h.version,
	}
	var cellBuf []geo.CellID
	for _, win := range h.windows {
		cells := h.leaves[win]
		cellBuf = cellBuf[:0]
		for id := range cells {
			cellBuf = append(cellBuf, id)
		}
		slices.Sort(cellBuf)
		var recs float64
		for _, id := range cellBuf {
			cnt := cells[id]
			c.Cells = append(c.Cells, s.internLocked(id))
			c.Counts = append(c.Counts, cnt)
			c.IDF = append(c.IDF, s.IDF(Bin{Window: win, Cell: id}))
			recs += cnt
		}
		c.WinRecs = append(c.WinRecs, recs)
		c.Off = append(c.Off, int32(len(c.Cells)))
	}
	s.compiled[e] = c
	return c
}

// internLocked maps a cell id to its dense index, assigning the next index
// on first sight. Callers hold compMu for writing.
func (s *Store) internLocked(id geo.CellID) int32 {
	if i, ok := s.cellIndex[id]; ok {
		return i
	}
	i := int32(len(s.cellIDs))
	s.cellIndex[id] = i
	s.cellIDs = append(s.cellIDs, id)
	return i
}
