package history

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"slim/internal/geo"
	"slim/internal/model"
)

var testWindowing = model.Windowing{Epoch: 0, WidthSeconds: 900}

func rec(e string, lat, lng float64, unix int64) model.Record {
	return model.Record{Entity: model.EntityID(e), LatLng: geo.LatLng{Lat: lat, Lng: lng}, Unix: unix}
}

func buildSingle(t *testing.T, recs []model.Record, level int) *History {
	t.Helper()
	d := model.Dataset{Name: "t", Records: recs}
	s := Build(&d, testWindowing, level)
	if s.NumEntities() != 1 {
		t.Fatalf("expected one entity, got %d", s.NumEntities())
	}
	return s.History(s.Entities()[0])
}

func TestHistoryBasicShape(t *testing.T) {
	recs := []model.Record{
		rec("a", 37.7749, -122.4194, 0),    // window 0
		rec("a", 37.7749, -122.4194, 100),  // window 0, same cell
		rec("a", 37.9000, -122.3000, 950),  // window 1, different cell
		rec("a", 37.7749, -122.4194, 1900), // window 2
	}
	h := buildSingle(t, recs, 12)
	if got := h.NumRecords(); got != 4 {
		t.Errorf("NumRecords = %d", got)
	}
	if got := h.NumBins(); got != 3 {
		t.Errorf("NumBins = %d, want 3", got)
	}
	wins := h.Windows()
	if len(wins) != 3 || wins[0] != 0 || wins[1] != 1 || wins[2] != 2 {
		t.Errorf("Windows = %v", wins)
	}
	cells := h.CellsAt(0)
	if len(cells) != 1 {
		t.Fatalf("window 0 cells = %d, want 1", len(cells))
	}
	for _, n := range cells {
		if n != 2 {
			t.Errorf("window 0 weight = %g, want 2", n)
		}
	}
	if h.CellsAt(99) != nil {
		t.Error("missing window should return nil")
	}
}

func TestBinsDeterministicOrder(t *testing.T) {
	recs := []model.Record{
		rec("a", 37.77, -122.41, 0),
		rec("a", 37.99, -122.11, 10),
		rec("a", 37.55, -122.31, 950),
	}
	h := buildSingle(t, recs, 12)
	var first []Bin
	h.Bins(func(b Bin, _ float64) { first = append(first, b) })
	for i := 0; i < 5; i++ {
		var again []Bin
		h.Bins(func(b Bin, _ float64) { again = append(again, b) })
		if len(again) != len(first) {
			t.Fatal("bin count changed")
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatal("bin order is not deterministic")
			}
		}
	}
	for i := 1; i < len(first); i++ {
		if first[i].Window < first[i-1].Window {
			t.Fatal("bins not sorted by window")
		}
	}
}

func TestDominatingCellSimple(t *testing.T) {
	// 3 records in one cell, 2 in another, inside windows [0, 4).
	recs := []model.Record{
		rec("a", 37.7749, -122.4194, 0),
		rec("a", 37.7749, -122.4194, 1000),
		rec("a", 37.7749, -122.4194, 2000),
		rec("a", 37.9, -122.1, 100),
		rec("a", 37.9, -122.1, 1100),
	}
	h := buildSingle(t, recs, 12)
	want := geo.CellIDFromLatLngLevel(geo.LatLng{Lat: 37.7749, Lng: -122.4194}, 12)
	got, ok := h.DominatingCell(0, 4)
	if !ok || got != want {
		t.Errorf("DominatingCell = (%v, %v), want %v", got, ok, want)
	}
	if _, ok := h.DominatingCell(100, 200); ok {
		t.Error("empty range should report ok=false")
	}
	if _, ok := h.DominatingCell(4, 4); ok {
		t.Error("degenerate range should report ok=false")
	}
}

func TestDominatingCellMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	var recs []model.Record
	for i := 0; i < 3000; i++ {
		lat := 37.5 + r.Float64()*0.5
		lng := -122.5 + r.Float64()*0.5
		unix := int64(r.Intn(900 * 512)) // windows [0, 512)
		recs = append(recs, rec("a", lat, lng, unix))
	}
	h := buildSingle(t, recs, 13)
	for trial := 0; trial < 300; trial++ {
		start := int64(r.Intn(512))
		end := start + int64(1+r.Intn(128))
		gotCell, gotOK := h.DominatingCell(start, end)
		wantCell, wantOK := h.dominatingCellNaive(start, end)
		if gotOK != wantOK || gotCell != wantCell {
			t.Fatalf("range [%d,%d): tree=(%v,%v) naive=(%v,%v)",
				start, end, gotCell, gotOK, wantCell, wantOK)
		}
	}
}

func TestDominatingCellQuickProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var recs []model.Record
	for i := 0; i < 500; i++ {
		recs = append(recs, rec("a", 37+r.Float64(), -122+r.Float64(), int64(r.Intn(900*100))))
	}
	h := buildSingle(t, recs, 11)
	f := func(s uint16, span uint8) bool {
		start := int64(s % 100)
		end := start + int64(span%64) + 1
		got, gotOK := h.DominatingCell(start, end)
		want, wantOK := h.dominatingCellNaive(start, end)
		return got == want && gotOK == wantOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestDominatingCellTieBreak(t *testing.T) {
	// Two cells with identical counts: smaller id must win, always.
	recs := []model.Record{
		rec("a", 37.7749, -122.4194, 0),
		rec("a", 37.9, -122.1, 100),
	}
	h := buildSingle(t, recs, 12)
	c1 := geo.CellIDFromLatLngLevel(geo.LatLng{Lat: 37.7749, Lng: -122.4194}, 12)
	c2 := geo.CellIDFromLatLngLevel(geo.LatLng{Lat: 37.9, Lng: -122.1}, 12)
	want := c1
	if c2 < c1 {
		want = c2
	}
	for i := 0; i < 10; i++ {
		got, ok := h.DominatingCell(0, 1)
		if !ok || got != want {
			t.Fatalf("tie-break not deterministic: got %v want %v", got, want)
		}
	}
}

func TestStoreStatistics(t *testing.T) {
	d := model.Dataset{Name: "s", Records: []model.Record{
		rec("a", 37.7749, -122.4194, 0),
		rec("a", 37.9, -122.1, 950),
		rec("b", 37.7749, -122.4194, 10),
		rec("c", 50.0, 8.0, 20),
	}}
	s := Build(&d, testWindowing, 12)
	if s.NumEntities() != 3 {
		t.Fatalf("NumEntities = %d", s.NumEntities())
	}
	if got := s.Entities(); got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("Entities = %v", got)
	}
	// a has 2 bins, b and c have 1 → avg 4/3.
	if math.Abs(s.AvgBins()-4.0/3) > 1e-12 {
		t.Errorf("AvgBins = %g", s.AvgBins())
	}
	// The SF cell in window 0 is shared by a and b → idf = ln(3/2).
	sfBin := Bin{Window: 0, Cell: geo.CellIDFromLatLngLevel(geo.LatLng{Lat: 37.7749, Lng: -122.4194}, 12)}
	if got := s.IDF(sfBin); math.Abs(got-math.Log(1.5)) > 1e-12 {
		t.Errorf("IDF shared bin = %g, want ln(1.5)", got)
	}
	// c's bin is unique → idf = ln(3).
	cBin := Bin{Window: 0, Cell: geo.CellIDFromLatLngLevel(geo.LatLng{Lat: 50, Lng: 8}, 12)}
	if got := s.IDF(cBin); math.Abs(got-math.Log(3)) > 1e-12 {
		t.Errorf("IDF unique bin = %g, want ln(3)", got)
	}
	// Unknown bin gets the maximum weight.
	unknown := Bin{Window: 77, Cell: 12345}
	if got := s.IDF(unknown); math.Abs(got-math.Log(3)) > 1e-12 {
		t.Errorf("IDF unknown bin = %g, want ln(3)", got)
	}
	lo, hi, ok := s.WindowRange()
	if !ok || lo != 0 || hi != 1 {
		t.Errorf("WindowRange = (%d,%d,%v)", lo, hi, ok)
	}
}

func TestNormFactor(t *testing.T) {
	d := model.Dataset{Name: "s", Records: []model.Record{
		rec("big", 37.1, -122.1, 0),
		rec("big", 37.2, -122.2, 1000),
		rec("big", 37.3, -122.3, 2000),
		rec("big", 37.4, -122.4, 3000),
		rec("small", 37.1, -122.1, 0),
	}}
	s := Build(&d, testWindowing, 12)
	// avgBins = (4+1)/2 = 2.5
	if got := s.NormFactor("big", 1); math.Abs(got-4/2.5) > 1e-12 {
		t.Errorf("L(big, b=1) = %g, want 1.6", got)
	}
	if got := s.NormFactor("small", 1); math.Abs(got-1/2.5) > 1e-12 {
		t.Errorf("L(small, b=1) = %g, want 0.4", got)
	}
	// b=0 ignores history length entirely.
	if got := s.NormFactor("big", 0); got != 1 {
		t.Errorf("L(big, b=0) = %g, want 1", got)
	}
	// Halfway.
	if got := s.NormFactor("big", 0.5); math.Abs(got-(0.5+0.5*1.6)) > 1e-12 {
		t.Errorf("L(big, b=0.5) = %g", got)
	}
	// Unknown entity.
	if got := s.NormFactor("nope", 0.5); got != 1 {
		t.Errorf("L(unknown) = %g, want 1", got)
	}
}

func TestEmptyStore(t *testing.T) {
	d := model.Dataset{Name: "empty"}
	s := Build(&d, testWindowing, 12)
	if s.NumEntities() != 0 {
		t.Error("empty store should have no entities")
	}
	if _, _, ok := s.WindowRange(); ok {
		t.Error("empty store should report no window range")
	}
	if s.IDF(Bin{}) != 0 {
		t.Error("IDF on empty store should be 0")
	}
	if s.History("x") != nil {
		t.Error("missing history should be nil")
	}
}

func TestConcurrentDominatingCellQueries(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	var recs []model.Record
	for i := 0; i < 2000; i++ {
		recs = append(recs, rec("a", 37+r.Float64(), -122+r.Float64(), int64(r.Intn(900*256))))
	}
	h := buildSingle(t, recs, 12)
	want, _ := h.dominatingCellNaive(0, 256)
	done := make(chan bool, 8)
	for g := 0; g < 8; g++ {
		go func() {
			okAll := true
			for i := 0; i < 50; i++ {
				got, ok := h.DominatingCell(0, 256)
				okAll = okAll && ok && got == want
			}
			done <- okAll
		}()
	}
	for g := 0; g < 8; g++ {
		if !<-done {
			t.Fatal("concurrent dominating-cell query returned a wrong answer")
		}
	}
}

func BenchmarkDominatingCellTree(b *testing.B) {
	r := rand.New(rand.NewSource(10))
	var recs []model.Record
	for i := 0; i < 20000; i++ {
		recs = append(recs, rec("a", 37+r.Float64(), -122+r.Float64(), int64(r.Intn(900*2048))))
	}
	d := model.Dataset{Name: "b", Records: recs}
	s := Build(&d, testWindowing, 14)
	h := s.History("a")
	h.DominatingCell(0, 2048) // pre-build levels
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := int64((i * 37) % 1024)
		_, _ = h.DominatingCell(start, start+512)
	}
}

func BenchmarkDominatingCellNaive(b *testing.B) {
	r := rand.New(rand.NewSource(10))
	var recs []model.Record
	for i := 0; i < 20000; i++ {
		recs = append(recs, rec("a", 37+r.Float64(), -122+r.Float64(), int64(r.Intn(900*2048))))
	}
	d := model.Dataset{Name: "b", Records: recs}
	s := Build(&d, testWindowing, 14)
	h := s.History("a")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := int64((i * 37) % 1024)
		_, _ = h.dominatingCellNaive(start, start+512)
	}
}

func BenchmarkBuildStore(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	var recs []model.Record
	for e := 0; e < 50; e++ {
		id := model.EntityID(string(rune('A' + e%26)))
		for i := 0; i < 400; i++ {
			recs = append(recs, model.Record{
				Entity: id,
				LatLng: geo.LatLng{Lat: 37 + r.Float64(), Lng: -122 + r.Float64()},
				Unix:   int64(r.Intn(900 * 2048)),
			})
		}
	}
	d := model.Dataset{Name: "b", Records: recs}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Build(&d, testWindowing, 12)
	}
}
