package history

import (
	"sort"

	"slim/internal/geo"
	"slim/internal/model"
)

// Add ingests one record into the store incrementally, updating the
// entity's history, the bin→entity IDF index, the average-history-size
// statistic and the window range, and invalidating the history's cached
// aggregation levels. After any sequence of Add calls the store is
// indistinguishable from one built with Build on the concatenated records
// (see TestIncrementalAddMatchesBuild).
//
// Add supports the dynamic-feed setting the paper motivates (Sec. 1:
// "the scale and dynamic nature of location datasets"). It is not safe for
// concurrent use with readers; quiesce scoring before adding.
func (s *Store) Add(rec model.Record) {
	h := s.histories[rec.Entity]
	if h == nil {
		h = &History{Entity: rec.Entity, leaves: make(map[int64]map[geo.CellID]float64)}
		s.histories[rec.Entity] = h
		s.insertEntity(rec.Entity)
		s.epoch++ // |U| changed: every baked IDF weight is stale
	}
	prevBins := h.numBins
	h.version++ // invalidate this entity's compiled view

	win := s.Windowing.Window(rec.Unix)
	newWindow := h.leaves[win] == nil

	h.mu.Lock()
	h.levels = nil // invalidate cached aggregation levels
	h.mu.Unlock()

	addCell := func(cell geo.CellID, weight float64) {
		cells := h.leaves[win]
		if cells == nil {
			cells = make(map[geo.CellID]float64)
			h.leaves[win] = cells
		}
		if cells[cell] == 0 {
			h.numBins++
			s.binEntities[Bin{Window: win, Cell: cell}]++
			s.epoch++ // bin frequency changed: baked IDF weights are stale
		}
		cells[cell] += weight
	}
	h.numRecs++
	if rec.RadiusKm <= 0 {
		addCell(geo.CellIDFromLatLngLevel(rec.LatLng, s.Level), 1)
	} else {
		cover := geo.CoverCapCells(rec.LatLng, rec.RadiusKm, s.Level)
		weight := 1 / float64(len(cover))
		for _, cell := range cover {
			addCell(cell, weight)
		}
	}

	if newWindow {
		h.insertWindow(win)
	}
	s.totalBins += h.numBins - prevBins
	s.avgBins = float64(s.totalBins) / float64(len(s.entities))
	if !s.hasData {
		s.minWindow, s.maxWindow = win, win
		s.hasData = true
		return
	}
	if win < s.minWindow {
		s.minWindow = win
	}
	if win > s.maxWindow {
		s.maxWindow = win
	}
}

// insertEntity keeps the entity list sorted.
func (s *Store) insertEntity(e model.EntityID) {
	i := sort.Search(len(s.entities), func(k int) bool { return s.entities[k] >= e })
	s.entities = append(s.entities, "")
	copy(s.entities[i+1:], s.entities[i:])
	s.entities[i] = e
}

// insertWindow keeps the history's window list sorted.
func (h *History) insertWindow(win int64) {
	i := sort.Search(len(h.windows), func(k int) bool { return h.windows[k] >= win })
	h.windows = append(h.windows, 0)
	copy(h.windows[i+1:], h.windows[i:])
	h.windows[i] = win
}
