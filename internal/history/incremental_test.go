package history

import (
	"math"
	"math/rand"
	"testing"

	"slim/internal/geo"
	"slim/internal/model"
)

// randomRecords builds a deterministic random record stream with a mix of
// point and region records across several entities.
func randomRecords(n int, seed int64) []model.Record {
	r := rand.New(rand.NewSource(seed))
	out := make([]model.Record, 0, n)
	for i := 0; i < n; i++ {
		rec := model.Record{
			Entity: model.EntityID(string(rune('a' + r.Intn(6)))),
			LatLng: geo.LatLng{
				Lat: 37.4 + r.Float64()*0.5,
				Lng: -122.6 + r.Float64()*0.5,
			},
			Unix: int64(r.Intn(900 * 200)),
		}
		if r.Float64() < 0.2 {
			rec.RadiusKm = 1 + 3*r.Float64()
		}
		out = append(out, rec)
	}
	return out
}

// assertStoresEqual compares every observable of two stores.
func assertStoresEqual(t *testing.T, got, want *Store) {
	t.Helper()
	if got.NumEntities() != want.NumEntities() {
		t.Fatalf("entities: %d vs %d", got.NumEntities(), want.NumEntities())
	}
	for i, e := range want.Entities() {
		if got.Entities()[i] != e {
			t.Fatalf("entity order differs at %d: %s vs %s", i, got.Entities()[i], e)
		}
	}
	if math.Abs(got.AvgBins()-want.AvgBins()) > 1e-9 {
		t.Fatalf("avgBins: %g vs %g", got.AvgBins(), want.AvgBins())
	}
	gMin, gMax, gOK := got.WindowRange()
	wMin, wMax, wOK := want.WindowRange()
	if gMin != wMin || gMax != wMax || gOK != wOK {
		t.Fatalf("window range: (%d,%d,%v) vs (%d,%d,%v)", gMin, gMax, gOK, wMin, wMax, wOK)
	}
	for _, e := range want.Entities() {
		hw := want.History(e)
		hg := got.History(e)
		if hg.NumRecords() != hw.NumRecords() || hg.NumBins() != hw.NumBins() {
			t.Fatalf("entity %s: recs/bins (%d,%d) vs (%d,%d)",
				e, hg.NumRecords(), hg.NumBins(), hw.NumRecords(), hw.NumBins())
		}
		var wantBins []Bin
		var wantWeights []float64
		hw.Bins(func(b Bin, n float64) {
			wantBins = append(wantBins, b)
			wantWeights = append(wantWeights, n)
		})
		idx := 0
		hg.Bins(func(b Bin, n float64) {
			if idx >= len(wantBins) {
				t.Fatalf("entity %s: extra bin %v", e, b)
			}
			if b != wantBins[idx] || math.Abs(n-wantWeights[idx]) > 1e-9 {
				t.Fatalf("entity %s bin %d: (%v,%g) vs (%v,%g)",
					e, idx, b, n, wantBins[idx], wantWeights[idx])
			}
			// IDF must agree for every bin.
			if math.Abs(got.IDF(b)-want.IDF(b)) > 1e-12 {
				t.Fatalf("IDF(%v): %g vs %g", b, got.IDF(b), want.IDF(b))
			}
			idx++
		})
		if idx != len(wantBins) {
			t.Fatalf("entity %s: missing bins: %d vs %d", e, idx, len(wantBins))
		}
	}
}

func TestIncrementalAddMatchesBuild(t *testing.T) {
	recs := randomRecords(600, 1)
	split := 350

	// Reference: everything built at once.
	full := Build(&model.Dataset{Name: "f", Records: recs}, testWindowing, 13)

	// Incremental: build the prefix, Add the suffix one record at a time.
	inc := Build(&model.Dataset{Name: "i", Records: recs[:split]}, testWindowing, 13)
	for _, r := range recs[split:] {
		inc.Add(r)
	}
	assertStoresEqual(t, inc, full)
}

func TestIncrementalAddFromEmpty(t *testing.T) {
	recs := randomRecords(200, 2)
	full := Build(&model.Dataset{Name: "f", Records: recs}, testWindowing, 12)
	inc := Build(&model.Dataset{Name: "i"}, testWindowing, 12)
	for _, r := range recs {
		inc.Add(r)
	}
	assertStoresEqual(t, inc, full)
}

func TestIncrementalAddInvalidatesDominatingCells(t *testing.T) {
	// Query first (builds the cached levels), then Add records that change
	// the dominating cell; the query must see the new answer.
	base := []model.Record{
		rec("a", 37.7749, -122.4194, 0),
		rec("a", 37.7749, -122.4194, 950),
	}
	s := Build(&model.Dataset{Name: "d", Records: base}, testWindowing, 12)
	h := s.History("a")
	before, ok := h.DominatingCell(0, 8)
	if !ok || before != geo.CellIDFromLatLngLevel(geo.LatLng{Lat: 37.7749, Lng: -122.4194}, 12) {
		t.Fatalf("unexpected initial dominating cell %v", before)
	}
	// Three records in a different cell now dominate.
	for k := 0; k < 3; k++ {
		s.Add(rec("a", 37.5, -122.1, int64(1900+k*100)))
	}
	after, ok := h.DominatingCell(0, 8)
	want := geo.CellIDFromLatLngLevel(geo.LatLng{Lat: 37.5, Lng: -122.1}, 12)
	if !ok || after != want {
		t.Fatalf("dominating cell after Add = %v, want %v (stale cache?)", after, want)
	}
	// And the naive scan agrees.
	naive, _ := h.dominatingCellNaive(0, 8)
	if naive != after {
		t.Fatalf("tree %v vs naive %v after invalidation", after, naive)
	}
}

func TestIncrementalAddNewEntityKeepsOrder(t *testing.T) {
	s := Build(&model.Dataset{Name: "d", Records: []model.Record{
		rec("b", 37.7, -122.4, 0),
		rec("d", 37.7, -122.4, 0),
	}}, testWindowing, 12)
	s.Add(rec("c", 37.7, -122.4, 100))
	s.Add(rec("a", 37.7, -122.4, 200))
	got := s.Entities()
	want := []model.EntityID{"a", "b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("entities = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entities = %v, want %v", got, want)
		}
	}
}
