package model

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"slim/internal/geo"
)

// csvHeader is the canonical column layout for dataset CSV files. The
// radius_km column is optional: it is written only when the dataset holds
// region records, and accepted but not required when reading.
var (
	csvHeader       = []string{"entity", "lat", "lng", "unix"}
	csvHeaderRegion = []string{"entity", "lat", "lng", "unix", "radius_km"}
)

// WriteCSV writes the dataset in the canonical CSV layout
// (entity,lat,lng,unix[,radius_km]) with a header row. The radius column
// appears only when at least one record is a region record.
func WriteCSV(w io.Writer, d *Dataset) error {
	regions := false
	for _, r := range d.Records {
		if r.RadiusKm > 0 {
			regions = true
			break
		}
	}
	cw := csv.NewWriter(w)
	header := csvHeader
	if regions {
		header = csvHeaderRegion
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("model: writing csv header: %w", err)
	}
	row := make([]string, len(header))
	for _, r := range d.Records {
		row[0] = string(r.Entity)
		row[1] = strconv.FormatFloat(r.LatLng.Lat, 'f', -1, 64)
		row[2] = strconv.FormatFloat(r.LatLng.Lng, 'f', -1, 64)
		row[3] = strconv.FormatInt(r.Unix, 10)
		if regions {
			row[4] = strconv.FormatFloat(r.RadiusKm, 'f', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("model: writing csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset from the canonical CSV layout. A header row is
// detected and skipped if present; the radius_km column is optional.
func ReadCSV(r io.Reader, name string) (Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	d := Dataset{Name: name}
	line := 0
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Dataset{}, fmt.Errorf("model: reading csv: %w", err)
		}
		line++
		if len(row) != 4 && len(row) != 5 {
			return Dataset{}, fmt.Errorf("model: line %d: %d fields, want 4 or 5", line, len(row))
		}
		if line == 1 && row[0] == csvHeader[0] {
			continue
		}
		lat, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return Dataset{}, fmt.Errorf("model: line %d: bad lat %q: %w", line, row[1], err)
		}
		lng, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return Dataset{}, fmt.Errorf("model: line %d: bad lng %q: %w", line, row[2], err)
		}
		unix, err := strconv.ParseInt(row[3], 10, 64)
		if err != nil {
			return Dataset{}, fmt.Errorf("model: line %d: bad unix %q: %w", line, row[3], err)
		}
		var radius float64
		if len(row) == 5 && row[4] != "" {
			radius, err = strconv.ParseFloat(row[4], 64)
			if err != nil {
				return Dataset{}, fmt.Errorf("model: line %d: bad radius %q: %w", line, row[4], err)
			}
			if radius < 0 {
				return Dataset{}, fmt.Errorf("model: line %d: negative radius %g", line, radius)
			}
		}
		d.Records = append(d.Records, Record{
			Entity:   EntityID(row[0]),
			LatLng:   geo.LatLngFromDegrees(lat, lng),
			Unix:     unix,
			RadiusKm: radius,
		})
	}
	if err := d.Validate(); err != nil {
		return Dataset{}, err
	}
	return d, nil
}
