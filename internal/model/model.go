// Package model defines the core data types shared by every SLIM
// subsystem: location records, location datasets, and the temporal window
// arithmetic that aligns both datasets onto one window grid.
package model

import (
	"fmt"
	"sort"
	"time"

	"slim/internal/geo"
)

// EntityID identifies an entity within one dataset. Ids are anonymized and
// therefore carry no cross-dataset meaning; linkage is the whole point.
type EntityID string

// Record is one usage record of a location-based service: the triple
// {u, l, t} of Sec. 2.1.
type Record struct {
	Entity EntityID
	LatLng geo.LatLng
	// Unix is the record timestamp in seconds since the epoch.
	Unix int64
	// RadiusKm, when positive, marks the record location as a region (a
	// cap of this radius around LatLng) rather than a point. Region
	// records are copied into every covered history cell with fractional
	// weights, per the extension described in Sec. 2.1 of the paper.
	RadiusKm float64
}

// Time returns the record timestamp as a time.Time in UTC.
func (r Record) Time() time.Time { return time.Unix(r.Unix, 0).UTC() }

// Dataset is a collection of usage records from one location-based service.
type Dataset struct {
	Name    string
	Records []Record
}

// Len returns the number of records.
func (d *Dataset) Len() int { return len(d.Records) }

// ByEntity groups records by entity id. Each entity's records are sorted by
// time (ties broken by latitude/longitude for determinism).
func (d *Dataset) ByEntity() map[EntityID][]Record {
	m := make(map[EntityID][]Record)
	for _, r := range d.Records {
		m[r.Entity] = append(m[r.Entity], r)
	}
	for _, recs := range m {
		sortRecords(recs)
	}
	return m
}

func sortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Unix != recs[j].Unix {
			return recs[i].Unix < recs[j].Unix
		}
		if recs[i].LatLng.Lat != recs[j].LatLng.Lat {
			return recs[i].LatLng.Lat < recs[j].LatLng.Lat
		}
		return recs[i].LatLng.Lng < recs[j].LatLng.Lng
	})
}

// Entities returns the sorted list of distinct entity ids.
func (d *Dataset) Entities() []EntityID {
	seen := make(map[EntityID]struct{})
	for _, r := range d.Records {
		seen[r.Entity] = struct{}{}
	}
	out := make([]EntityID, 0, len(seen))
	for e := range seen {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TimeRange returns the inclusive [min, max] record timestamps; ok is false
// for an empty dataset.
func (d *Dataset) TimeRange() (minUnix, maxUnix int64, ok bool) {
	if len(d.Records) == 0 {
		return 0, 0, false
	}
	minUnix, maxUnix = d.Records[0].Unix, d.Records[0].Unix
	for _, r := range d.Records[1:] {
		if r.Unix < minUnix {
			minUnix = r.Unix
		}
		if r.Unix > maxUnix {
			maxUnix = r.Unix
		}
	}
	return minUnix, maxUnix, true
}

// FilterMinRecords returns a copy of the dataset keeping only entities with
// strictly more than minRecords records, mirroring the paper's "ignore an
// entity if it does not have more than 5 records".
func (d *Dataset) FilterMinRecords(minRecords int) Dataset {
	counts := make(map[EntityID]int)
	for _, r := range d.Records {
		counts[r.Entity]++
	}
	out := Dataset{Name: d.Name}
	for _, r := range d.Records {
		if counts[r.Entity] > minRecords {
			out.Records = append(out.Records, r)
		}
	}
	return out
}

// Validate checks every record for a valid position and entity id.
func (d *Dataset) Validate() error {
	for i, r := range d.Records {
		if r.Entity == "" {
			return fmt.Errorf("model: record %d of %q has empty entity id", i, d.Name)
		}
		if !r.LatLng.IsValid() {
			return fmt.Errorf("model: record %d of %q has invalid position %+v", i, d.Name, r.LatLng)
		}
	}
	return nil
}

// Windowing aligns timestamps onto a shared grid of fixed-width temporal
// windows. Both datasets of a linkage share one Windowing so that "same
// temporal window" is well-defined across them (Design decision 7).
type Windowing struct {
	// Epoch is the unix time of the left edge of window 0.
	Epoch int64
	// WidthSeconds is the temporal window width |w|.
	WidthSeconds int64
}

// NewWindowing builds a windowing whose epoch is the earliest record time
// across the given datasets, rounded down to a width boundary.
func NewWindowing(widthSeconds int64, datasets ...*Dataset) Windowing {
	if widthSeconds <= 0 {
		widthSeconds = 1
	}
	var minUnix int64
	found := false
	for _, d := range datasets {
		lo, _, ok := d.TimeRange()
		if !ok {
			continue
		}
		if !found || lo < minUnix {
			minUnix = lo
			found = true
		}
	}
	if !found {
		minUnix = 0
	}
	epoch := minUnix - ((minUnix%widthSeconds)+widthSeconds)%widthSeconds
	return Windowing{Epoch: epoch, WidthSeconds: widthSeconds}
}

// Window returns the index of the window containing the given unix time.
func (w Windowing) Window(unix int64) int64 {
	d := unix - w.Epoch
	if d < 0 {
		// Floor division for times before the epoch.
		return -((-d + w.WidthSeconds - 1) / w.WidthSeconds)
	}
	return d / w.WidthSeconds
}

// Start returns the unix time of the left edge of the given window.
func (w Windowing) Start(window int64) int64 {
	return w.Epoch + window*w.WidthSeconds
}

// WidthMinutes returns the window width in (possibly fractional) minutes.
func (w Windowing) WidthMinutes() float64 { return float64(w.WidthSeconds) / 60 }
