package model

import (
	"bytes"
	"strings"
	"testing"

	"slim/internal/geo"
)

func TestCSVRegionRoundTrip(t *testing.T) {
	d := Dataset{Name: "rt", Records: []Record{
		{Entity: "a", LatLng: geo.LatLng{Lat: 37.7, Lng: -122.4}, Unix: 100, RadiusKm: 2.5},
		{Entity: "b", LatLng: geo.LatLng{Lat: 37.8, Lng: -122.3}, Unix: 200},
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, &d); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "radius_km") {
		t.Errorf("region dataset must write the radius column:\n%s", out)
	}
	got, err := ReadCSV(strings.NewReader(out), "rt")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 2 {
		t.Fatalf("lost records")
	}
	if got.Records[0].RadiusKm != 2.5 || got.Records[1].RadiusKm != 0 {
		t.Errorf("radius round trip: %+v", got.Records)
	}
}

func TestCSVPointDatasetsOmitRadiusColumn(t *testing.T) {
	d := Dataset{Name: "p", Records: []Record{
		{Entity: "a", LatLng: geo.LatLng{Lat: 1, Lng: 2}, Unix: 3},
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, &d); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "radius") {
		t.Errorf("point-only dataset should keep the 4-column layout:\n%s", buf.String())
	}
}

func TestCSVReadRejectsBadRadius(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,1,2,3,notanumber\n"), "x"); err == nil {
		t.Error("garbage radius should error")
	}
	if _, err := ReadCSV(strings.NewReader("a,1,2,3,-5\n"), "x"); err == nil {
		t.Error("negative radius should error")
	}
	// Wrong field counts.
	if _, err := ReadCSV(strings.NewReader("a,1,2\n"), "x"); err == nil {
		t.Error("3 fields should error")
	}
	if _, err := ReadCSV(strings.NewReader("a,1,2,3,4,5\n"), "x"); err == nil {
		t.Error("6 fields should error")
	}
	// Empty radius field is allowed (treated as a point).
	d, err := ReadCSV(strings.NewReader("a,1,2,3,\n"), "x")
	if err != nil || d.Records[0].RadiusKm != 0 {
		t.Errorf("empty radius should parse as point: %v %v", d, err)
	}
}
