package model

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"slim/internal/geo"
)

func rec(e string, lat, lng float64, unix int64) Record {
	return Record{Entity: EntityID(e), LatLng: geo.LatLng{Lat: lat, Lng: lng}, Unix: unix}
}

func TestByEntitySortsAndGroups(t *testing.T) {
	d := Dataset{Name: "t", Records: []Record{
		rec("b", 1, 1, 30),
		rec("a", 2, 2, 20),
		rec("a", 3, 3, 10),
		rec("b", 4, 4, 10),
	}}
	m := d.ByEntity()
	if len(m) != 2 {
		t.Fatalf("groups = %d, want 2", len(m))
	}
	a := m["a"]
	if len(a) != 2 || a[0].Unix != 10 || a[1].Unix != 20 {
		t.Errorf("entity a records not time-sorted: %+v", a)
	}
}

func TestByEntityDeterministicTies(t *testing.T) {
	d := Dataset{Records: []Record{
		rec("a", 5, 9, 10),
		rec("a", 5, 2, 10),
		rec("a", 1, 7, 10),
	}}
	first := d.ByEntity()["a"]
	for i := 0; i < 10; i++ {
		again := d.ByEntity()["a"]
		for j := range first {
			if first[j] != again[j] {
				t.Fatal("tie-broken order is not deterministic")
			}
		}
	}
}

func TestEntitiesSorted(t *testing.T) {
	d := Dataset{Records: []Record{rec("z", 0, 0, 0), rec("a", 0, 0, 0), rec("m", 0, 0, 0), rec("a", 0, 0, 1)}}
	got := d.Entities()
	if len(got) != 3 || got[0] != "a" || got[1] != "m" || got[2] != "z" {
		t.Errorf("Entities() = %v", got)
	}
}

func TestTimeRange(t *testing.T) {
	d := Dataset{Records: []Record{rec("a", 0, 0, 50), rec("b", 0, 0, 10), rec("c", 0, 0, 99)}}
	lo, hi, ok := d.TimeRange()
	if !ok || lo != 10 || hi != 99 {
		t.Errorf("TimeRange = (%d, %d, %v)", lo, hi, ok)
	}
	empty := Dataset{}
	if _, _, ok := empty.TimeRange(); ok {
		t.Error("empty dataset should report ok=false")
	}
}

func TestFilterMinRecords(t *testing.T) {
	d := Dataset{Records: []Record{
		rec("keep", 0, 0, 1), rec("keep", 0, 0, 2), rec("keep", 0, 0, 3),
		rec("drop", 0, 0, 1), rec("drop", 0, 0, 2),
	}}
	out := d.FilterMinRecords(2)
	if len(out.Records) != 3 {
		t.Fatalf("kept %d records, want 3", len(out.Records))
	}
	for _, r := range out.Records {
		if r.Entity != "keep" {
			t.Errorf("unexpected entity %q survived filter", r.Entity)
		}
	}
}

func TestValidate(t *testing.T) {
	good := Dataset{Records: []Record{rec("a", 1, 2, 3)}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid dataset rejected: %v", err)
	}
	bad := Dataset{Records: []Record{{Entity: "", LatLng: geo.LatLng{}}}}
	if err := bad.Validate(); err == nil {
		t.Error("empty entity id should fail validation")
	}
	badPos := Dataset{Records: []Record{rec("a", 91, 0, 0)}}
	if err := badPos.Validate(); err == nil {
		t.Error("out-of-range latitude should fail validation")
	}
}

func TestWindowingAlignment(t *testing.T) {
	d1 := Dataset{Records: []Record{rec("a", 0, 0, 1000)}}
	d2 := Dataset{Records: []Record{rec("b", 0, 0, 1900)}}
	w := NewWindowing(900, &d1, &d2) // 15-minute windows
	if w.Epoch%900 != 0 {
		t.Errorf("epoch %d not aligned to width", w.Epoch)
	}
	if w.Epoch > 1000 {
		t.Errorf("epoch %d after earliest record", w.Epoch)
	}
	if w.Window(1000) != 0 {
		t.Errorf("earliest record should land in window 0, got %d", w.Window(1000))
	}
	if w.Window(1900) != w.Window(1000)+1 {
		t.Errorf("records 900s apart should be one window apart")
	}
	if got := w.Start(w.Window(1000)); got > 1000 || got+900 <= 1000 {
		t.Errorf("Start/Window inconsistent: start %d for t=1000", got)
	}
	if w.WidthMinutes() != 15 {
		t.Errorf("WidthMinutes = %g", w.WidthMinutes())
	}
}

func TestWindowingNegativeTimes(t *testing.T) {
	w := Windowing{Epoch: 0, WidthSeconds: 60}
	if w.Window(-1) != -1 {
		t.Errorf("Window(-1) = %d, want -1", w.Window(-1))
	}
	if w.Window(-60) != -1 {
		t.Errorf("Window(-60) = %d, want -1", w.Window(-60))
	}
	if w.Window(-61) != -2 {
		t.Errorf("Window(-61) = %d, want -2", w.Window(-61))
	}
}

func TestWindowingQuickConsistency(t *testing.T) {
	w := Windowing{Epoch: 86400, WidthSeconds: 900}
	f := func(offset int32) bool {
		unix := int64(offset)
		win := w.Window(unix)
		start := w.Start(win)
		return start <= unix && unix < start+w.WidthSeconds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestNewWindowingDegenerate(t *testing.T) {
	w := NewWindowing(0)
	if w.WidthSeconds != 1 {
		t.Error("zero width should clamp to 1")
	}
	empty := Dataset{}
	w = NewWindowing(900, &empty)
	if w.Epoch != 0 {
		t.Errorf("empty datasets should give epoch 0, got %d", w.Epoch)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := Dataset{Name: "rt", Records: []Record{
		rec("cab-1", 37.7749, -122.4194, 1210000000),
		rec("cab-2", 37.78, -122.41, 1210000100),
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, &d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(d.Records) {
		t.Fatalf("round trip lost records: %d vs %d", len(got.Records), len(d.Records))
	}
	for i := range d.Records {
		if got.Records[i] != d.Records[i] {
			t.Errorf("record %d mismatch: %+v vs %+v", i, got.Records[i], d.Records[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"entity,lat,lng,unix\na,bad,0,0\n",
		"entity,lat,lng,unix\na,0,bad,0\n",
		"entity,lat,lng,unix\na,0,0,bad\n",
		"a,0,0\n", // wrong field count
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c), "x"); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
	// No header is fine.
	d, err := ReadCSV(strings.NewReader("a,1,2,3\n"), "x")
	if err != nil || len(d.Records) != 1 {
		t.Errorf("headerless csv should parse: %v", err)
	}
}

func TestRecordTime(t *testing.T) {
	r := rec("a", 0, 0, 0)
	if !r.Time().Equal(r.Time()) || r.Time().Unix() != 0 {
		t.Error("Time() should reflect the unix stamp")
	}
}
