// Package similarity implements SLIM's mobility-history similarity score
// (Sec. 3.1): the time-location bin proximity function P (Eq. 1), the
// mutually-nearest-neighbor pairing N and mutually-furthest-neighbor
// pairing N′ (alibi detection), the IDF uniqueness award (Eq. 3), and the
// BM25-style history-length normalization L, aggregated into the score
// S(u,v) of Eq. 2.
//
// The scorer also exposes the ablation switches exercised by the paper's
// Sec. 5.4 study: all-pairs pairing instead of MNN, disabling the optional
// MFN pass, disabling IDF, and disabling normalization.
package similarity

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"slim/internal/geo"
	"slim/internal/history"
	"slim/internal/model"
)

// PairingMode selects how time-location bin pairs are formed per window.
type PairingMode int

const (
	// PairingMNN is the paper's default: greedy mutually-nearest-neighbor
	// pairing until the smaller side is exhausted.
	PairingMNN PairingMode = iota
	// PairingAllPairs matches every cross pair of bins in the window (the
	// "All Pairs" ablation of Fig. 10).
	PairingAllPairs
)

// DefaultMinLogArg clamps the argument of the log2 in the proximity
// function so that a single extreme alibi contributes a large but finite
// penalty (P >= -20) instead of -Inf.
const DefaultMinLogArg = 1.0 / (1 << 20)

// Params configures the similarity computation.
type Params struct {
	// RunawayKm is R: the maximum distance an entity can travel within one
	// temporal window (window width × maximum speed).
	RunawayKm float64
	// B is the BM25-style length-normalization strength in [0, 1].
	B float64
	// MinLogArg clamps the proximity log argument (see DefaultMinLogArg).
	MinLogArg float64
	// Pairing selects MNN (default) or all-pairs bin pairing.
	Pairing PairingMode
	// UseMFN enables the optional mutually-furthest-neighbor alibi pass.
	UseMFN bool
	// UseIDF enables the IDF uniqueness award.
	UseIDF bool
	// UseNorm enables the history-length normalization.
	UseNorm bool
}

// DefaultParams returns the paper's default configuration for the given
// temporal window width and maximum entity speed (the paper uses
// 2 km/minute, the US-highway-derived bound).
func DefaultParams(windowMinutes, maxSpeedKmPerMin float64) Params {
	return Params{
		RunawayKm: windowMinutes * maxSpeedKmPerMin,
		B:         0.5,
		MinLogArg: DefaultMinLogArg,
		Pairing:   PairingMNN,
		UseMFN:    true,
		UseIDF:    true,
		UseNorm:   true,
	}
}

// Proximity evaluates Eq. 1 for a pair of same-window bins at the given
// cell distance: log2(2 − min(d/R, 2)), with the log argument clamped at
// minLogArg. The result is 1 for identical cells, 0 at the runaway
// distance, and negative (an alibi) beyond it.
func Proximity(distKm, runawayKm, minLogArg float64) float64 {
	if runawayKm <= 0 {
		if distKm == 0 {
			return 1
		}
		return math.Log2(minLogArg)
	}
	ratio := distKm / runawayKm
	if ratio > 2 {
		ratio = 2
	}
	arg := 2 - ratio
	if arg < minLogArg {
		arg = minLogArg
	}
	return math.Log2(arg)
}

// Stats accumulates the work counters the paper's evaluation reports.
// Counters are updated atomically, so one Scorer can be shared by many
// goroutines.
type Stats struct {
	// BinComparisons counts time-location bin pair distance evaluations.
	BinComparisons int64
	// RecordComparisons counts the equivalent pairwise record comparisons
	// (the product of per-window record counts of the two entities), the
	// measure behind Fig. 4d / 5d / 11d.
	RecordComparisons int64
	// AlibiBinPairs counts bin pairs whose proximity was negative.
	AlibiBinPairs int64
	// PairsScored counts entity pairs scored.
	PairsScored int64
}

// Scorer computes similarity scores between entities of two history stores.
type Scorer struct {
	E, I  *history.Store
	Par   Params
	stats Stats

	// Distance cache shared across goroutines, sharded to limit contention.
	shards [distShards]distShard
}

const distShards = 64

type distShard struct {
	mu sync.RWMutex
	m  map[[2]geo.CellID]float64
}

// NewScorer builds a scorer over the two stores. The stores may be the same
// object (used for the self-similarity queries of the auto-tuner).
func NewScorer(e, i *history.Store, p Params) *Scorer {
	s := &Scorer{E: e, I: i, Par: p}
	for k := range s.shards {
		s.shards[k].m = make(map[[2]geo.CellID]float64)
	}
	return s
}

// Stats returns a snapshot of the accumulated work counters.
func (s *Scorer) Stats() Stats {
	return Stats{
		BinComparisons:    atomic.LoadInt64(&s.stats.BinComparisons),
		RecordComparisons: atomic.LoadInt64(&s.stats.RecordComparisons),
		AlibiBinPairs:     atomic.LoadInt64(&s.stats.AlibiBinPairs),
		PairsScored:       atomic.LoadInt64(&s.stats.PairsScored),
	}
}

// cellDistance returns the (cached) minimum distance between two cells.
func (s *Scorer) cellDistance(a, b geo.CellID) float64 {
	if a == b {
		return 0
	}
	key := [2]geo.CellID{a, b}
	if b < a {
		key[0], key[1] = b, a
	}
	shard := &s.shards[(uint64(key[0])^uint64(key[1]))%distShards]
	shard.mu.RLock()
	d, ok := shard.m[key]
	shard.mu.RUnlock()
	if ok {
		return d
	}
	d = geo.CellDistanceKm(key[0], key[1])
	shard.mu.Lock()
	shard.m[key] = d
	shard.mu.Unlock()
	return d
}

// Score computes S(u, v) per Eq. 2 / Alg. 1 for u in store E and v in
// store I. Unknown entities score 0.
func (s *Scorer) Score(u, v model.EntityID) float64 {
	hu := s.E.History(u)
	hv := s.I.History(v)
	if hu == nil || hv == nil {
		return 0
	}
	atomic.AddInt64(&s.stats.PairsScored, 1)

	lu, lv := 1.0, 1.0
	if s.Par.UseNorm {
		lu = s.E.NormFactor(u, s.Par.B)
		lv = s.I.NormFactor(v, s.Par.B)
	}
	norm := lu * lv
	if norm <= 0 {
		norm = 1
	}

	var total float64
	forEachCommonWindow(hu.Windows(), hv.Windows(), func(w int64) {
		total += s.scoreWindow(hu, hv, w, norm)
	})
	return total
}

// scoreWindow computes the contribution of one common temporal window.
func (s *Scorer) scoreWindow(hu, hv *history.History, w int64, norm float64) float64 {
	cellsU := sortedCells(hu.CellsAt(w))
	cellsV := sortedCells(hv.CellsAt(w))
	if len(cellsU) == 0 || len(cellsV) == 0 {
		return 0
	}

	// Work accounting: every cross bin pair gets a distance evaluation,
	// and each corresponds to countU×countV record comparisons. Weights
	// are fractional for region records, so accumulate before rounding.
	atomic.AddInt64(&s.stats.BinComparisons, int64(len(cellsU)*len(cellsV)))
	var recsU, recsV float64
	for _, c := range cellsU {
		recsU += hu.CellsAt(w)[c]
	}
	for _, c := range cellsV {
		recsV += hv.CellsAt(w)[c]
	}
	atomic.AddInt64(&s.stats.RecordComparisons, int64(recsU*recsV+0.5))

	dist := make([][]float64, len(cellsU))
	for i, cu := range cellsU {
		dist[i] = make([]float64, len(cellsV))
		for j, cv := range cellsV {
			dist[i][j] = s.cellDistance(cu, cv)
		}
	}

	binDelta := func(i, j int) float64 {
		p := Proximity(dist[i][j], s.Par.RunawayKm, s.Par.MinLogArg)
		if p < 0 {
			atomic.AddInt64(&s.stats.AlibiBinPairs, 1)
		}
		weight := 1.0
		if s.Par.UseIDF {
			idfU := s.E.IDF(history.Bin{Window: w, Cell: cellsU[i]})
			idfV := s.I.IDF(history.Bin{Window: w, Cell: cellsV[j]})
			weight = math.Min(idfU, idfV)
		}
		return p * weight / norm
	}

	if s.Par.Pairing == PairingAllPairs {
		var sum float64
		for i := range cellsU {
			for j := range cellsV {
				sum += binDelta(i, j)
			}
		}
		return sum
	}

	// Mutually-nearest-neighbor pairing N_w (Sec. 3.1.2): repeatedly select
	// the globally closest unused pair until the smaller side is
	// exhausted. Implemented as one sort of all cross pairs followed by a
	// greedy sweep — identical selection, O(nm log nm) instead of
	// O(min(n,m)·n·m). Ties break on (i, j) index order, which is cell-id
	// order, keeping scores deterministic.
	nPairs := len(cellsU)
	if len(cellsV) < nPairs {
		nPairs = len(cellsV)
	}
	type cand struct{ i, j int }
	order := make([]cand, 0, len(cellsU)*len(cellsV))
	for i := range cellsU {
		for j := range cellsV {
			order = append(order, cand{i, j})
		}
	}
	less := func(a, b cand) bool {
		if dist[a.i][a.j] != dist[b.i][b.j] {
			return dist[a.i][a.j] < dist[b.i][b.j]
		}
		if a.i != b.i {
			return a.i < b.i
		}
		return a.j < b.j
	}
	sort.Slice(order, func(a, b int) bool { return less(order[a], order[b]) })

	usedU := make([]bool, len(cellsU))
	usedV := make([]bool, len(cellsV))
	selected := make(map[cand]bool, nPairs)
	var sum float64
	taken := 0
	for _, c := range order {
		if taken == nPairs {
			break
		}
		if usedU[c.i] || usedV[c.j] {
			continue
		}
		usedU[c.i], usedV[c.j] = true, true
		selected[c] = true
		sum += binDelta(c.i, c.j)
		taken++
	}

	if !s.Par.UseMFN {
		return sum
	}

	// Mutually-furthest-neighbor pass N′_w: same sweep from the far end,
	// adding only alibi (negative) deltas. Pairs already selected by MNN
	// are skipped so an alibi is never double counted (Design decision 2).
	for i := range usedU {
		usedU[i] = false
	}
	for j := range usedV {
		usedV[j] = false
	}
	taken = 0
	for k := len(order) - 1; k >= 0 && taken < nPairs; k-- {
		c := order[k]
		if usedU[c.i] || usedV[c.j] {
			continue
		}
		usedU[c.i], usedV[c.j] = true, true
		taken++
		if selected[c] {
			continue
		}
		if delta := binDelta(c.i, c.j); delta < 0 {
			sum += delta
		}
	}
	return sum
}

// ProbeRatio supports the spatial-level auto-tuner (Sec. 3.3). It returns
// the ratio of the pair's actual similarity to the idealized similarity of
// the same MNN pairing with all distances treated as zero (perfect
// self-like match). At spatial levels too coarse to distinguish the
// entities the ratio is 1; it decreases as detail separates them. ok is
// false when the pair shares no usable evidence (no common windows or all
// IDF weights zero).
func (s *Scorer) ProbeRatio(u, v model.EntityID) (ratio float64, ok bool) {
	hu := s.E.History(u)
	hv := s.I.History(v)
	if hu == nil || hv == nil {
		return 0, false
	}
	var num, den float64
	forEachCommonWindow(hu.Windows(), hv.Windows(), func(w int64) {
		cellsU := sortedCells(hu.CellsAt(w))
		cellsV := sortedCells(hv.CellsAt(w))
		if len(cellsU) == 0 || len(cellsV) == 0 {
			return
		}
		nPairs := len(cellsU)
		if len(cellsV) < nPairs {
			nPairs = len(cellsV)
		}
		type cand struct{ i, j int }
		order := make([]cand, 0, len(cellsU)*len(cellsV))
		dist := make([][]float64, len(cellsU))
		for i, cu := range cellsU {
			dist[i] = make([]float64, len(cellsV))
			for j, cv := range cellsV {
				dist[i][j] = s.cellDistance(cu, cv)
				order = append(order, cand{i, j})
			}
		}
		sort.Slice(order, func(a, b int) bool {
			da, db := dist[order[a].i][order[a].j], dist[order[b].i][order[b].j]
			if da != db {
				return da < db
			}
			if order[a].i != order[b].i {
				return order[a].i < order[b].i
			}
			return order[a].j < order[b].j
		})
		usedU := make([]bool, len(cellsU))
		usedV := make([]bool, len(cellsV))
		taken := 0
		for _, c := range order {
			if taken == nPairs {
				break
			}
			if usedU[c.i] || usedV[c.j] {
				continue
			}
			usedU[c.i], usedV[c.j] = true, true
			taken++
			weight := 1.0
			if s.Par.UseIDF {
				idfU := s.E.IDF(history.Bin{Window: w, Cell: cellsU[c.i]})
				idfV := s.I.IDF(history.Bin{Window: w, Cell: cellsV[c.j]})
				weight = math.Min(idfU, idfV)
			}
			num += Proximity(dist[c.i][c.j], s.Par.RunawayKm, s.Par.MinLogArg) * weight
			den += weight // Proximity(0) == 1
		}
	})
	if den <= 0 {
		return 0, false
	}
	return num / den, true
}

// sortedCells returns the cell ids of a window in ascending order, giving
// the pairing loops a deterministic iteration order.
func sortedCells(cells map[geo.CellID]float64) []geo.CellID {
	if len(cells) == 0 {
		return nil
	}
	out := make([]geo.CellID, 0, len(cells))
	for c := range cells {
		out = append(out, c)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// forEachCommonWindow walks two sorted window slices and invokes fn for
// every window index present in both.
func forEachCommonWindow(a, b []int64, fn func(int64)) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			fn(a[i])
			i++
			j++
		}
	}
}
