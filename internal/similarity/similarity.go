// Package similarity implements SLIM's mobility-history similarity score
// (Sec. 3.1): the time-location bin proximity function P (Eq. 1), the
// mutually-nearest-neighbor pairing N and mutually-furthest-neighbor
// pairing N′ (alibi detection), the IDF uniqueness award (Eq. 3), and the
// BM25-style history-length normalization L, aggregated into the score
// S(u,v) of Eq. 2.
//
// The scorer also exposes the ablation switches exercised by the paper's
// Sec. 5.4 study: all-pairs pairing instead of MNN, disabling the optional
// MFN pass, disabling IDF, and disabling normalization.
//
// Scoring runs on the compiled read path of internal/history: flat
// per-window cell/weight/IDF arrays instead of the build-time maps, with
// all per-call state held in pooled per-goroutine scratch buffers. A warm
// Score call performs zero heap allocations (enforced by
// TestScoreWarmZeroAllocs) while producing bit-identical scores to the
// original map-walking implementation (enforced by the compiled-vs-map
// parity tests).
package similarity

import (
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"slim/internal/geo"
	"slim/internal/history"
	"slim/internal/model"
)

// PairingMode selects how time-location bin pairs are formed per window.
type PairingMode int

const (
	// PairingMNN is the paper's default: greedy mutually-nearest-neighbor
	// pairing until the smaller side is exhausted.
	PairingMNN PairingMode = iota
	// PairingAllPairs matches every cross pair of bins in the window (the
	// "All Pairs" ablation of Fig. 10).
	PairingAllPairs
)

// DefaultMinLogArg clamps the argument of the log2 in the proximity
// function so that a single extreme alibi contributes a large but finite
// penalty (P >= -20) instead of -Inf.
const DefaultMinLogArg = 1.0 / (1 << 20)

// Params configures the similarity computation.
type Params struct {
	// RunawayKm is R: the maximum distance an entity can travel within one
	// temporal window (window width × maximum speed).
	RunawayKm float64
	// B is the BM25-style length-normalization strength in [0, 1].
	B float64
	// MinLogArg clamps the proximity log argument (see DefaultMinLogArg).
	MinLogArg float64
	// Pairing selects MNN (default) or all-pairs bin pairing.
	Pairing PairingMode
	// UseMFN enables the optional mutually-furthest-neighbor alibi pass.
	UseMFN bool
	// UseIDF enables the IDF uniqueness award.
	UseIDF bool
	// UseNorm enables the history-length normalization.
	UseNorm bool
}

// DefaultParams returns the paper's default configuration for the given
// temporal window width and maximum entity speed (the paper uses
// 2 km/minute, the US-highway-derived bound).
func DefaultParams(windowMinutes, maxSpeedKmPerMin float64) Params {
	return Params{
		RunawayKm: windowMinutes * maxSpeedKmPerMin,
		B:         0.5,
		MinLogArg: DefaultMinLogArg,
		Pairing:   PairingMNN,
		UseMFN:    true,
		UseIDF:    true,
		UseNorm:   true,
	}
}

// Proximity evaluates Eq. 1 for a pair of same-window bins at the given
// cell distance: log2(2 − min(d/R, 2)), with the log argument clamped at
// minLogArg. The result is 1 for identical cells, 0 at the runaway
// distance, and negative (an alibi) beyond it.
func Proximity(distKm, runawayKm, minLogArg float64) float64 {
	if runawayKm <= 0 {
		if distKm == 0 {
			return 1
		}
		return math.Log2(minLogArg)
	}
	ratio := distKm / runawayKm
	if ratio > 2 {
		ratio = 2
	}
	arg := 2 - ratio
	if arg < minLogArg {
		arg = minLogArg
	}
	return math.Log2(arg)
}

// Stats accumulates the work counters the paper's evaluation reports.
// Counters are updated atomically, so one Scorer can be shared by many
// goroutines; each Score call batches its counters into a single flush.
type Stats struct {
	// BinComparisons counts time-location bin pair distance evaluations.
	BinComparisons int64
	// RecordComparisons counts the equivalent pairwise record comparisons
	// (the product of per-window record counts of the two entities), the
	// measure behind Fig. 4d / 5d / 11d.
	RecordComparisons int64
	// AlibiBinPairs counts bin pairs whose proximity was negative.
	AlibiBinPairs int64
	// PairsScored counts entity pairs scored.
	PairsScored int64
}

// Scorer computes similarity scores between entities of two history stores.
type Scorer struct {
	E, I  *history.Store
	Par   Params
	stats Stats

	// pool holds per-goroutine scratch state (distance matrix, argsort
	// order, pairing masks, distance cache) so warm Score calls allocate
	// nothing and share no locks.
	pool sync.Pool
}

// scratch is the per-goroutine working state of one scoring call. Buffers
// grow to the largest window pair seen and are reused; dcache memoizes
// cell-pair distances keyed by the stores' dense interned cell indices
// (E-side index in the high half, I-side in the low half), so it stays
// valid across pairs and recompiles — interned indices are never reused.
type scratch struct {
	dist   []float64
	order  []int32
	usedU  []bool
	usedV  []bool
	sel    []bool // all-false between windows; reset via selIDs
	selIDs []int32
	dcache map[uint64]float64

	// Batched stat counters, flushed once per scored pair.
	binCmp, recCmp, alibi int64
}

func (sc *scratch) floats(n int) []float64 {
	if cap(sc.dist) < n {
		sc.dist = make([]float64, n)
	}
	return sc.dist[:n]
}

func (sc *scratch) ints(n int) []int32 {
	if cap(sc.order) < n {
		sc.order = make([]int32, n)
	}
	return sc.order[:n]
}

// selMask returns the selected-pair mask without clearing: the mask is
// kept all-false between windows by resetting exactly the entries set
// (selIDs), and fresh allocations are zeroed.
func (sc *scratch) selMask(n int) []bool {
	if cap(sc.sel) < n {
		sc.sel = make([]bool, n)
	}
	return sc.sel[:n]
}

func grownBools(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
		return *buf
	}
	b := (*buf)[:n]
	clear(b)
	return b
}

// NewScorer builds a scorer over the two stores. The stores may be the same
// object (used for the self-similarity queries of the auto-tuner).
func NewScorer(e, i *history.Store, p Params) *Scorer {
	s := &Scorer{E: e, I: i, Par: p}
	s.pool.New = func() any { return &scratch{dcache: make(map[uint64]float64)} }
	return s
}

// Stats returns a snapshot of the accumulated work counters.
func (s *Scorer) Stats() Stats {
	return Stats{
		BinComparisons:    atomic.LoadInt64(&s.stats.BinComparisons),
		RecordComparisons: atomic.LoadInt64(&s.stats.RecordComparisons),
		AlibiBinPairs:     atomic.LoadInt64(&s.stats.AlibiBinPairs),
		PairsScored:       atomic.LoadInt64(&s.stats.PairsScored),
	}
}

// flush publishes a scored pair's batched counters with one atomic add per
// touched counter instead of one per bin pair.
func (s *Scorer) flush(sc *scratch) {
	atomic.AddInt64(&s.stats.PairsScored, 1)
	if sc.binCmp != 0 {
		atomic.AddInt64(&s.stats.BinComparisons, sc.binCmp)
		sc.binCmp = 0
	}
	if sc.recCmp != 0 {
		atomic.AddInt64(&s.stats.RecordComparisons, sc.recCmp)
		sc.recCmp = 0
	}
	if sc.alibi != 0 {
		atomic.AddInt64(&s.stats.AlibiBinPairs, sc.alibi)
		sc.alibi = 0
	}
}

// Score computes S(u, v) per Eq. 2 / Alg. 1 for u in store E and v in
// store I. Unknown entities score 0.
func (s *Scorer) Score(u, v model.EntityID) float64 {
	cu, idsU := s.E.CompiledView(u)
	cv, idsV := s.I.CompiledView(v)
	if cu == nil || cv == nil {
		return 0
	}

	lu, lv := 1.0, 1.0
	if s.Par.UseNorm {
		lu = s.E.NormFactor(u, s.Par.B)
		lv = s.I.NormFactor(v, s.Par.B)
	}
	norm := lu * lv
	if norm <= 0 {
		norm = 1
	}

	sc := s.pool.Get().(*scratch)
	var total float64
	wu, wv := cu.Windows, cv.Windows
	for i, j := 0, 0; i < len(wu) && j < len(wv); {
		switch {
		case wu[i] < wv[j]:
			i++
		case wu[i] > wv[j]:
			j++
		default:
			total += s.scoreWindow(sc, cu, cv, i, j, idsU, idsV, norm)
			i++
			j++
		}
	}
	s.flush(sc)
	s.pool.Put(sc)
	return total
}

// fillDistances writes the nU×nV cell-distance matrix for one window pair
// into dist (row-major over the V side), memoizing through the scratch
// cache keyed by dense interned cell indices.
func (s *Scorer) fillDistances(sc *scratch, dist []float64, cellsU, cellsV []int32, idsU, idsV []geo.CellID) {
	nV := len(cellsV)
	for i, ci := range cellsU {
		a := idsU[ci]
		row := dist[i*nV : (i+1)*nV]
		for j, cj := range cellsV {
			b := idsV[cj]
			if a == b {
				row[j] = 0
				continue
			}
			key := uint64(uint32(ci))<<32 | uint64(uint32(cj))
			d, ok := sc.dcache[key]
			if !ok {
				// Canonical argument order: CellDistanceKm subtracts both
				// circumradii, which is not bit-symmetric in its arguments.
				if b < a {
					d = geo.CellDistanceKm(b, a)
				} else {
					d = geo.CellDistanceKm(a, b)
				}
				sc.dcache[key] = d
			}
			row[j] = d
		}
	}
}

// sortPairOrder argsorts the flat bin-pair ids by (distance, id). Pair ids
// are i*nV+j, so the id tiebreak is exactly the (i, j) index order of the
// map-based implementation, keeping scores deterministic; distances are
// unique-keyed, so any correct sort yields the identical order.
func sortPairOrder(order []int32, dist []float64) {
	for k := range order {
		order[k] = int32(k)
	}
	slices.SortFunc(order, func(x, y int32) int {
		dx, dy := dist[x], dist[y]
		switch {
		case dx < dy:
			return -1
		case dx > dy:
			return 1
		}
		return int(x) - int(y)
	})
}

// scoreWindow computes the contribution of the common temporal window at
// index ku of cu and kv of cv.
func (s *Scorer) scoreWindow(sc *scratch, cu, cv *history.Compiled, ku, kv int, idsU, idsV []geo.CellID, norm float64) float64 {
	loU, hiU := cu.Off[ku], cu.Off[ku+1]
	loV, hiV := cv.Off[kv], cv.Off[kv+1]
	nU, nV := int(hiU-loU), int(hiV-loV)
	if nU == 0 || nV == 0 {
		return 0
	}
	cellsU, cellsV := cu.Cells[loU:hiU], cv.Cells[loV:hiV]
	idfU, idfV := cu.IDF[loU:hiU], cv.IDF[loV:hiV]

	// Work accounting: every cross bin pair gets a distance evaluation,
	// and each corresponds to countU×countV record comparisons. The
	// per-window record sums were accumulated at compile time in the same
	// (sorted-cell) order the map scorer used, so the rounded product is
	// bit-identical.
	sc.binCmp += int64(nU * nV)
	sc.recCmp += int64(cu.WinRecs[ku]*cv.WinRecs[kv] + 0.5)

	n := nU * nV
	dist := sc.floats(n)
	s.fillDistances(sc, dist, cellsU, cellsV, idsU, idsV)

	delta := func(i, j int) float64 {
		p := Proximity(dist[i*nV+j], s.Par.RunawayKm, s.Par.MinLogArg)
		if p < 0 {
			sc.alibi++
		}
		weight := 1.0
		if s.Par.UseIDF {
			weight = math.Min(idfU[i], idfV[j])
		}
		return p * weight / norm
	}

	if s.Par.Pairing == PairingAllPairs {
		var sum float64
		for i := 0; i < nU; i++ {
			for j := 0; j < nV; j++ {
				sum += delta(i, j)
			}
		}
		return sum
	}

	// Mutually-nearest-neighbor pairing N_w (Sec. 3.1.2): repeatedly select
	// the globally closest unused pair until the smaller side is
	// exhausted. Implemented as one argsort of all cross pairs followed by
	// a greedy sweep — identical selection, O(nm log nm) instead of
	// O(min(n,m)·n·m).
	nPairs := min(nU, nV)
	order := sc.ints(n)
	sortPairOrder(order, dist)

	usedU := grownBools(&sc.usedU, nU)
	usedV := grownBools(&sc.usedV, nV)
	var sel []bool
	selIDs := sc.selIDs[:0]
	if s.Par.UseMFN {
		sel = sc.selMask(n)
	}

	var sum float64
	taken := 0
	for _, k := range order {
		if taken == nPairs {
			break
		}
		i, j := int(k)/nV, int(k)%nV
		if usedU[i] || usedV[j] {
			continue
		}
		usedU[i], usedV[j] = true, true
		if sel != nil {
			sel[k] = true
			selIDs = append(selIDs, k)
		}
		sum += delta(i, j)
		taken++
	}
	sc.selIDs = selIDs

	if !s.Par.UseMFN {
		return sum
	}

	// Mutually-furthest-neighbor pass N′_w: same sweep from the far end,
	// adding only alibi (negative) deltas. Pairs already selected by MNN
	// are skipped so an alibi is never double counted (Design decision 2).
	clear(usedU)
	clear(usedV)
	taken = 0
	for k := n - 1; k >= 0 && taken < nPairs; k-- {
		id := order[k]
		i, j := int(id)/nV, int(id)%nV
		if usedU[i] || usedV[j] {
			continue
		}
		usedU[i], usedV[j] = true, true
		taken++
		if sel[id] {
			continue
		}
		if d := delta(i, j); d < 0 {
			sum += d
		}
	}
	for _, id := range selIDs {
		sel[id] = false
	}
	return sum
}

// ProbeRatio supports the spatial-level auto-tuner (Sec. 3.3). It returns
// the ratio of the pair's actual similarity to the idealized similarity of
// the same MNN pairing with all distances treated as zero (perfect
// self-like match). At spatial levels too coarse to distinguish the
// entities the ratio is 1; it decreases as detail separates them. ok is
// false when the pair shares no usable evidence (no common windows or all
// IDF weights zero).
func (s *Scorer) ProbeRatio(u, v model.EntityID) (ratio float64, ok bool) {
	cu, idsU := s.E.CompiledView(u)
	cv, idsV := s.I.CompiledView(v)
	if cu == nil || cv == nil {
		return 0, false
	}
	sc := s.pool.Get().(*scratch)
	var num, den float64
	wu, wv := cu.Windows, cv.Windows
	for i, j := 0, 0; i < len(wu) && j < len(wv); {
		switch {
		case wu[i] < wv[j]:
			i++
		case wu[i] > wv[j]:
			j++
		default:
			s.probeWindow(sc, cu, cv, i, j, idsU, idsV, &num, &den)
			i++
			j++
		}
	}
	s.pool.Put(sc)
	if den <= 0 {
		return 0, false
	}
	return num / den, true
}

// probeWindow runs the MNN sweep of one common window, accumulating the
// actual (num) and idealized (den) contributions.
func (s *Scorer) probeWindow(sc *scratch, cu, cv *history.Compiled, ku, kv int, idsU, idsV []geo.CellID, num, den *float64) {
	loU, hiU := cu.Off[ku], cu.Off[ku+1]
	loV, hiV := cv.Off[kv], cv.Off[kv+1]
	nU, nV := int(hiU-loU), int(hiV-loV)
	if nU == 0 || nV == 0 {
		return
	}
	cellsU, cellsV := cu.Cells[loU:hiU], cv.Cells[loV:hiV]
	idfU, idfV := cu.IDF[loU:hiU], cv.IDF[loV:hiV]

	n := nU * nV
	dist := sc.floats(n)
	s.fillDistances(sc, dist, cellsU, cellsV, idsU, idsV)
	order := sc.ints(n)
	sortPairOrder(order, dist)

	usedU := grownBools(&sc.usedU, nU)
	usedV := grownBools(&sc.usedV, nV)
	nPairs := min(nU, nV)
	taken := 0
	for _, k := range order {
		if taken == nPairs {
			break
		}
		i, j := int(k)/nV, int(k)%nV
		if usedU[i] || usedV[j] {
			continue
		}
		usedU[i], usedV[j] = true, true
		taken++
		weight := 1.0
		if s.Par.UseIDF {
			weight = math.Min(idfU[i], idfV[j])
		}
		*num += Proximity(dist[int(k)], s.Par.RunawayKm, s.Par.MinLogArg) * weight
		*den += weight // Proximity(0) == 1
	}
}

// forEachCommonWindow walks two sorted window slices and invokes fn for
// every window index present in both.
func forEachCommonWindow(a, b []int64, fn func(int64)) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			fn(a[i])
			i++
			j++
		}
	}
}
