package similarity

import (
	"testing"

	"slim/internal/geo"
	"slim/internal/model"
)

// warmWorkloadStores builds two single-entity stores whose histories span
// many windows with a handful of cells each — the shape of a production
// pair — for the warm-scoring benchmarks.
func warmWorkloadStores(tb testing.TB) (*Scorer, model.EntityID, model.EntityID) {
	tb.Helper()
	var eRecs, iRecs []model.Record
	for k := 0; k < 500; k++ {
		unix := int64(900 * k)
		lat := 37.5 + float64(k%20)*0.01
		lng := -122.5 + float64(k%17)*0.01
		eRecs = append(eRecs, rec("u", geo.LatLng{Lat: lat, Lng: lng}, unix))
		iRecs = append(iRecs, rec("v", geo.LatLng{Lat: lat + 0.001, Lng: lng}, unix+60))
	}
	e, i := stores(12, eRecs, iRecs)
	return NewScorer(e, i, defParams()), "u", "v"
}

// BenchmarkScoreWarm measures a steady-state Scorer.Score call: caches and
// scratch state warmed by a first scoring pass. This is the repo's
// pair-scoring throughput headline (allocs/op must stay at 0).
func BenchmarkScoreWarm(b *testing.B) {
	s, u, v := warmWorkloadStores(b)
	_ = s.Score(u, v) // warm distance caches / compiled state
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		_ = s.Score(u, v)
	}
}
