package similarity

import (
	"math"
	"testing"
	"testing/quick"

	"slim/internal/geo"
	"slim/internal/history"
	"slim/internal/model"
)

var (
	sf      = geo.LatLng{Lat: 37.7749, Lng: -122.4194}
	sfNear  = geo.LatLng{Lat: 37.7849, Lng: -122.4294} // ~1.4 km from sf
	oakland = geo.LatLng{Lat: 37.8044, Lng: -122.2712} // ~13 km from sf
	la      = geo.LatLng{Lat: 34.0522, Lng: -118.2437} // ~560 km from sf
	wnd     = model.Windowing{Epoch: 0, WidthSeconds: 900}
)

func rec(e string, ll geo.LatLng, unix int64) model.Record {
	return model.Record{Entity: model.EntityID(e), LatLng: ll, Unix: unix}
}

func stores(level int, eRecs, iRecs []model.Record) (*history.Store, *history.Store) {
	de := model.Dataset{Name: "E", Records: eRecs}
	di := model.Dataset{Name: "I", Records: iRecs}
	return history.Build(&de, wnd, level), history.Build(&di, wnd, level)
}

func defParams() Params { return DefaultParams(15, 2) } // R = 30 km

// fill returns a filler entity far away (Tokyo) so that test datasets have
// more than one entity and the bins under test get non-zero IDF weights.
func fill(e string) model.Record {
	return rec(e, geo.LatLng{Lat: 35.6762, Lng: 139.6503}, 100)
}

func TestProximityAnchorValues(t *testing.T) {
	R := 30.0
	if got := Proximity(0, R, DefaultMinLogArg); got != 1 {
		t.Errorf("P(0) = %g, want 1", got)
	}
	if got := Proximity(R, R, DefaultMinLogArg); got != 0 {
		t.Errorf("P(R) = %g, want 0", got)
	}
	if got := Proximity(1.5*R, R, DefaultMinLogArg); got >= 0 || got < -2 {
		t.Errorf("P(1.5R) = %g, want in (-2, 0)", got)
	}
	// At and beyond 2R the clamp kicks in.
	want := math.Log2(DefaultMinLogArg)
	if got := Proximity(2*R, R, DefaultMinLogArg); got != want {
		t.Errorf("P(2R) = %g, want clamp %g", got, want)
	}
	if got := Proximity(100*R, R, DefaultMinLogArg); got != want {
		t.Errorf("P(100R) = %g, want clamp %g", got, want)
	}
}

func TestProximityMonotoneDecreasing(t *testing.T) {
	R := 30.0
	prev := math.Inf(1)
	for d := 0.0; d <= 2.2*R; d += 0.5 {
		p := Proximity(d, R, DefaultMinLogArg)
		if p > prev {
			t.Fatalf("proximity increased at d=%g", d)
		}
		prev = p
	}
}

func TestProximityQuickBounds(t *testing.T) {
	f := func(dSeed, rSeed uint32) bool {
		d := float64(dSeed%100000) / 10
		r := float64(rSeed%10000)/10 + 0.1
		p := Proximity(d, r, DefaultMinLogArg)
		return p <= 1 && p >= math.Log2(DefaultMinLogArg) && !math.IsNaN(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestProximityZeroRunaway(t *testing.T) {
	if got := Proximity(0, 0, DefaultMinLogArg); got != 1 {
		t.Errorf("P(0, R=0) = %g, want 1", got)
	}
	if got := Proximity(5, 0, DefaultMinLogArg); got != math.Log2(DefaultMinLogArg) {
		t.Errorf("P(5, R=0) = %g, want clamp", got)
	}
}

func TestScoreIdenticalHistoriesPositive(t *testing.T) {
	recs := []model.Record{rec("u", sf, 100), rec("u", oakland, 1000), rec("u", sfNear, 2000), fill("zf")}
	recsV := []model.Record{rec("v", sf, 100), rec("v", oakland, 1000), rec("v", sfNear, 2000), fill("zf")}
	e, i := stores(12, recs, recsV)
	s := NewScorer(e, i, defParams())
	if got := s.Score("u", "v"); got <= 0 {
		t.Errorf("identical movement should score positive, got %g", got)
	}
	if got := s.Score("u", "missing"); got != 0 {
		t.Errorf("unknown entity should score 0, got %g", got)
	}
}

func TestScoreAlibiPenalized(t *testing.T) {
	// Same window, one in SF and one in LA: impossible movement (R=30km).
	e, i := stores(12,
		[]model.Record{rec("u", sf, 100), rec("u", sf, 1000), fill("zf")},
		[]model.Record{rec("v", la, 100), rec("v", sf, 1000), fill("zf")})
	s := NewScorer(e, i, defParams())
	score := s.Score("u", "v")
	if score >= 0 {
		t.Errorf("alibi pair should drag the score negative, got %g", score)
	}
	if s.Stats().AlibiBinPairs == 0 {
		t.Error("alibi counter should be non-zero")
	}
}

func TestTemporalAsynchronyNotPenalized(t *testing.T) {
	// v2 has an extra record in a window where u has none. With
	// normalization disabled the score must be unchanged (property 2).
	p := defParams()
	p.UseNorm = false
	uRecs := []model.Record{rec("u", sf, 100), fill("zf")}
	e1, i1 := stores(12, uRecs, []model.Record{rec("v", sf, 100), fill("zf")})
	e2, i2 := stores(12, uRecs, []model.Record{rec("v", sf, 100), rec("v", oakland, 5000), fill("zf")})
	s1 := NewScorer(e1, i1, p).Score("u", "v")
	s2 := NewScorer(e2, i2, p).Score("u", "v")
	if math.Abs(s1-s2) > 1e-12 {
		t.Errorf("asynchronous activity changed the score: %g vs %g", s1, s2)
	}
}

func TestMFNCapturesHiddenAlibi(t *testing.T) {
	// The paper's example: u has one bin, v has a close bin AND a far bin
	// in the same window. MNN alone pairs the close bins and misses the
	// alibi; the MFN pass must capture it.
	eRecs := []model.Record{rec("u", sf, 100), fill("zf")}
	iRecs := []model.Record{rec("v", sfNear, 100), rec("v", la, 200), fill("zf")} // same window
	pNoMFN := defParams()
	pNoMFN.UseMFN = false
	pMFN := defParams()

	e, i := stores(12, eRecs, iRecs)
	without := NewScorer(e, i, pNoMFN).Score("u", "v")
	with := NewScorer(e, i, pMFN).Score("u", "v")
	if with >= without {
		t.Errorf("MFN should lower the score of an alibi-carrying pair: with=%g without=%g", with, without)
	}
	if without <= 0 {
		t.Errorf("MNN-only score should be positive here, got %g", without)
	}
}

func TestMFNDoesNotDoubleCountSingletonAlibi(t *testing.T) {
	// One bin on each side, far apart: MNN already pairs them (and
	// penalizes); MFN would re-select the same pair and must skip it.
	eRecs := []model.Record{rec("u", sf, 100), fill("zf")}
	iRecs := []model.Record{rec("v", la, 100), fill("zf")}
	e, i := stores(12, eRecs, iRecs)
	pNoMFN := defParams()
	pNoMFN.UseMFN = false
	without := NewScorer(e, i, pNoMFN).Score("u", "v")
	with := NewScorer(e, i, defParams()).Score("u", "v")
	if math.Abs(with-without) > 1e-12 {
		t.Errorf("MFN double-counted the MNN alibi: with=%g without=%g", with, without)
	}
}

func TestIDFAwardsRareBins(t *testing.T) {
	// Entities u1/v1 meet in a cell crowded with other entities; u2/v2
	// meet in a cell only they visit. The rare meeting must score higher.
	crowd := func(prefix string, n int, ll geo.LatLng, unix int64) []model.Record {
		var out []model.Record
		for k := 0; k < n; k++ {
			out = append(out, rec(prefix+string(rune('a'+k)), ll, unix))
		}
		return out
	}
	eRecs := append([]model.Record{rec("u1", sf, 100), rec("u2", oakland, 100)},
		crowd("ex", 8, sf, 100)...)
	iRecs := append([]model.Record{rec("v1", sf, 100), rec("v2", oakland, 100)},
		crowd("ix", 8, sf, 100)...)
	e, i := stores(12, eRecs, iRecs)
	s := NewScorer(e, i, defParams())
	crowded := s.Score("u1", "v1")
	rare := s.Score("u2", "v2")
	if rare <= crowded {
		t.Errorf("rare-bin match should outscore crowded match: rare=%g crowded=%g", rare, crowded)
	}
}

func TestNoIDFRemovesUniquenessAward(t *testing.T) {
	eRecs := []model.Record{rec("u1", sf, 100), rec("u2", oakland, 100), rec("filler", sf, 100)}
	iRecs := []model.Record{rec("v1", sf, 100), rec("v2", oakland, 100), rec("filler", sf, 100)}
	e, i := stores(12, eRecs, iRecs)
	p := defParams()
	p.UseIDF = false
	p.UseNorm = false
	s := NewScorer(e, i, p)
	crowded := s.Score("u1", "v1")
	rare := s.Score("u2", "v2")
	if math.Abs(crowded-rare) > 1e-12 {
		t.Errorf("without IDF identical-distance matches must score equally: %g vs %g", crowded, rare)
	}
}

func TestNormalizationPenalizesLongHistories(t *testing.T) {
	// u2/v2 share the same matching window as u1/v1 but also have many
	// extra bins; with b=1 their match must be scaled down.
	var eRecs, iRecs []model.Record
	eRecs = append(eRecs, rec("u1", sf, 100))
	iRecs = append(iRecs, rec("v1", sf, 100))
	eRecs = append(eRecs, rec("u2", sf, 100))
	iRecs = append(iRecs, rec("v2", sf, 100))
	for k := 0; k < 20; k++ {
		unix := int64(10000 + 900*k)
		eRecs = append(eRecs, rec("u2", oakland, unix))
		iRecs = append(iRecs, rec("v2", la, unix+450000)) // disjoint windows
	}
	e, i := stores(12, eRecs, iRecs)
	p := defParams()
	p.B = 1
	p.UseIDF = false
	s := NewScorer(e, i, p)
	short := s.Score("u1", "v1")
	long := s.Score("u2", "v2")
	if long >= short {
		t.Errorf("long histories should be normalized down: long=%g short=%g", long, short)
	}
}

func TestAllPairsOvercounts(t *testing.T) {
	// u visits two nearby cells, v visits the same two: MNN pairs each
	// once; all-pairs also adds the two cross pairs, inflating the score.
	eRecs := []model.Record{rec("u", sf, 100), rec("u", sfNear, 200), fill("zf")}
	iRecs := []model.Record{rec("v", sf, 100), rec("v", sfNear, 200), fill("zf")}
	e, i := stores(16, eRecs, iRecs) // level 16 separates sf and sfNear
	pMNN := defParams()
	pAll := defParams()
	pAll.Pairing = PairingAllPairs
	mnn := NewScorer(e, i, pMNN).Score("u", "v")
	all := NewScorer(e, i, pAll).Score("u", "v")
	if all <= mnn {
		t.Errorf("all-pairs should overcount close pairs: all=%g mnn=%g", all, mnn)
	}
}

func TestMNNPairsExactlyMinCardinality(t *testing.T) {
	// u has 3 bins in one window, v has 2: exactly 2 MNN pairs are scored.
	// With IDF and norm off and all bins identical cells, score = 2 * P(0).
	eRecs := []model.Record{rec("u", sf, 10), rec("u", oakland, 20), rec("u", la, 30)}
	iRecs := []model.Record{rec("v", sf, 40), rec("v", oakland, 50)}
	e, i := stores(12, eRecs, iRecs)
	p := defParams()
	p.UseIDF = false
	p.UseNorm = false
	p.UseMFN = false
	got := NewScorer(e, i, p).Score("u", "v")
	// MNN pairs (sf,sf) and (oakland,oakland), both at distance 0 → P=1.
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("score = %g, want 2 (two exact MNN matches)", got)
	}
}

func TestStatsCounters(t *testing.T) {
	eRecs := []model.Record{rec("u", sf, 100), rec("u", sfNear, 200)}
	iRecs := []model.Record{rec("v", sf, 100), rec("v", la, 200)}
	e, i := stores(14, eRecs, iRecs)
	s := NewScorer(e, i, defParams())
	_ = s.Score("u", "v")
	st := s.Stats()
	if st.PairsScored != 1 {
		t.Errorf("PairsScored = %d", st.PairsScored)
	}
	if st.BinComparisons != 4 { // 2x2 bins in the single common window
		t.Errorf("BinComparisons = %d, want 4", st.BinComparisons)
	}
	if st.RecordComparisons != 4 { // 2 records x 2 records
		t.Errorf("RecordComparisons = %d, want 4", st.RecordComparisons)
	}
	if st.AlibiBinPairs == 0 {
		t.Error("expected at least one alibi bin pair (sf vs la)")
	}
}

func TestSelfSimilarityIsMaximal(t *testing.T) {
	// An entity compared to itself (same store on both sides) should not
	// score below its comparison with a different entity — the property
	// the auto-tuner (Sec. 3.3) relies on.
	recs := []model.Record{
		rec("u", sf, 100), rec("u", oakland, 1000), rec("u", sfNear, 2000),
		rec("w", sf, 100), rec("w", la, 1000), rec("w", oakland, 2000),
	}
	d := model.Dataset{Name: "E", Records: recs}
	st := history.Build(&d, wnd, 12)
	s := NewScorer(st, st, defParams())
	self := s.Score("u", "u")
	cross := s.Score("u", "w")
	if self <= cross {
		t.Errorf("self-similarity %g should exceed cross similarity %g", self, cross)
	}
}

func TestConcurrentScoring(t *testing.T) {
	eRecs := []model.Record{rec("u", sf, 100), rec("u", oakland, 1000)}
	iRecs := []model.Record{rec("v", sf, 100), rec("v", oakland, 1000)}
	e, i := stores(12, eRecs, iRecs)
	s := NewScorer(e, i, defParams())
	want := s.Score("u", "v")
	done := make(chan float64, 16)
	for g := 0; g < 16; g++ {
		go func() { done <- s.Score("u", "v") }()
	}
	for g := 0; g < 16; g++ {
		if got := <-done; got != want {
			t.Fatalf("concurrent score %g != sequential %g", got, want)
		}
	}
}

func TestForEachCommonWindow(t *testing.T) {
	var got []int64
	forEachCommonWindow([]int64{1, 3, 5, 7}, []int64{2, 3, 4, 7, 9}, func(w int64) {
		got = append(got, w)
	})
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Errorf("common windows = %v, want [3 7]", got)
	}
	forEachCommonWindow(nil, []int64{1}, func(int64) { t.Error("no common windows expected") })
}

func BenchmarkScorePair(b *testing.B) {
	var eRecs, iRecs []model.Record
	for k := 0; k < 500; k++ {
		unix := int64(900 * k)
		lat := 37.5 + float64(k%20)*0.01
		lng := -122.5 + float64(k%17)*0.01
		eRecs = append(eRecs, rec("u", geo.LatLng{Lat: lat, Lng: lng}, unix))
		iRecs = append(iRecs, rec("v", geo.LatLng{Lat: lat + 0.001, Lng: lng}, unix+60))
	}
	e, i := stores(12, eRecs, iRecs)
	s := NewScorer(e, i, defParams())
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		_ = s.Score("u", "v")
	}
}
