package similarity

import (
	"math"
	"testing"

	"slim/internal/geo"
	"slim/internal/history"
	"slim/internal/model"
)

func TestProbeRatioIdenticalMovementIsOne(t *testing.T) {
	eRecs := []model.Record{rec("u", sf, 100), rec("u", oakland, 1000), fill("zf")}
	iRecs := []model.Record{rec("v", sf, 130), rec("v", oakland, 1030), fill("zf")}
	e, i := stores(12, eRecs, iRecs)
	s := NewScorer(e, i, defParams())
	ratio, ok := s.ProbeRatio("u", "v")
	if !ok {
		t.Fatal("shared evidence must be usable")
	}
	if math.Abs(ratio-1) > 1e-9 {
		t.Errorf("identical movement ratio = %g, want 1", ratio)
	}
}

func TestProbeRatioDecreasesWithDistance(t *testing.T) {
	mk := func(ll geo.LatLng) (*history.Store, *history.Store) {
		eRecs := []model.Record{rec("u", sf, 100), fill("zf")}
		iRecs := []model.Record{rec("v", ll, 130), fill("zf")}
		return stores(13, eRecs, iRecs)
	}
	e1, i1 := mk(sfNear) // ~1.4 km
	e2, i2 := mk(oakland)
	near, ok1 := NewScorer(e1, i1, defParams()).ProbeRatio("u", "v")
	far, ok2 := NewScorer(e2, i2, defParams()).ProbeRatio("u", "v")
	if !ok1 || !ok2 {
		t.Fatal("both probes must have evidence")
	}
	if far >= near {
		t.Errorf("ratio should fall with distance: near=%g far=%g", near, far)
	}
	if near > 1 || far > 1 {
		t.Errorf("ratios must not exceed 1: near=%g far=%g", near, far)
	}
}

func TestProbeRatioNoSharedEvidence(t *testing.T) {
	// Disjoint windows: no common evidence → ok=false.
	eRecs := []model.Record{rec("u", sf, 100), fill("zf")}
	iRecs := []model.Record{rec("v", sf, 500000), fill("zf")}
	e, i := stores(12, eRecs, iRecs)
	if _, ok := NewScorer(e, i, defParams()).ProbeRatio("u", "v"); ok {
		t.Error("disjoint windows should report ok=false")
	}
	// Unknown entities too.
	if _, ok := NewScorer(e, i, defParams()).ProbeRatio("nope", "v"); ok {
		t.Error("unknown entity should report ok=false")
	}
}

func TestProbeRatioZeroIDFMeansNoSignal(t *testing.T) {
	// Every entity shares the single bin → IDF 0 → den 0 → no signal.
	eRecs := []model.Record{rec("u", sf, 100), rec("w", sf, 100)}
	iRecs := []model.Record{rec("v", sf, 100), rec("x", sf, 100)}
	e, i := stores(8, eRecs, iRecs)
	if _, ok := NewScorer(e, i, defParams()).ProbeRatio("u", "v"); ok {
		t.Error("universal bins carry no IDF weight → ok should be false")
	}
	// Without IDF weighting the same probe has signal again.
	p := defParams()
	p.UseIDF = false
	ratio, ok := NewScorer(e, i, p).ProbeRatio("u", "v")
	if !ok || math.Abs(ratio-1) > 1e-9 {
		t.Errorf("unweighted probe should be (1, true), got (%g, %v)", ratio, ok)
	}
}

func TestProbeRatioAlibiGoesNegative(t *testing.T) {
	eRecs := []model.Record{rec("u", sf, 100), fill("zf")}
	iRecs := []model.Record{rec("v", la, 130), fill("zf")}
	e, i := stores(12, eRecs, iRecs)
	ratio, ok := NewScorer(e, i, defParams()).ProbeRatio("u", "v")
	if !ok {
		t.Fatal("alibi evidence is still evidence")
	}
	if ratio >= 0 {
		t.Errorf("impossible-movement pair should probe negative, got %g", ratio)
	}
}

func TestProbeRatioDeterministic(t *testing.T) {
	eRecs := []model.Record{
		rec("u", sf, 100), rec("u", sfNear, 150),
		rec("u", oakland, 1000), fill("zf"),
	}
	iRecs := []model.Record{
		rec("v", sfNear, 120), rec("v", oakland, 1010), fill("zf"),
	}
	e, i := stores(14, eRecs, iRecs)
	s := NewScorer(e, i, defParams())
	first, _ := s.ProbeRatio("u", "v")
	for k := 0; k < 10; k++ {
		if again, _ := s.ProbeRatio("u", "v"); again != first {
			t.Fatal("probe ratio not deterministic")
		}
	}
}
