//go:build race

package similarity

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation allocates inside otherwise
// allocation-free code paths.
const raceEnabled = true
