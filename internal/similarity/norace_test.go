//go:build !race

package similarity

const raceEnabled = false
