package similarity

import (
	"math"

	"slim/internal/geo"
	"slim/internal/history"
	"slim/internal/model"
)

// PairContribution is one bin pair's term in a window's score: the two
// cells, their distance, the proximity P (Eq. 1), the IDF weight (Eq. 3),
// and the exact normalized value added to the window sum
// (proximity × weight / norm). MFN marks terms contributed by the
// mutually-furthest-neighbor alibi pass; Alibi marks negative proximity.
type PairContribution struct {
	CellU, CellV geo.CellID
	DistanceKm   float64
	Proximity    float64
	IDFWeight    float64
	Contribution float64
	Alibi        bool
	MFN          bool
}

// WindowBreakdown is the decomposition of one common temporal window:
// the bin pairs the pairing selected (in selection order — the exact
// order the kernel accumulated them) and their sum, which is
// bit-identical to the window's contribution inside Score.
type WindowBreakdown struct {
	// Window is the leaf temporal window index.
	Window int64
	// BinsU / BinsV count the two entities' time-location bins in this
	// window.
	BinsU, BinsV int
	// Pairs are the contributing bin pairs in accumulation order. The MFN
	// pass only appends pairs that actually contributed (negative,
	// non-selected), mirroring the kernel.
	Pairs []PairContribution
	// Sum is the window's total contribution, accumulated over Pairs in
	// order — bit-identical to the kernel's per-window sum.
	Sum float64
}

// Breakdown is the full decomposition of one Score(u, v) call. Total is
// recomposed by adding Windows[k].Sum in window order, replicating the
// kernel's accumulation sequence exactly, so Total (and the re-summed
// window sums) equal Score(u, v) bit for bit — the property gated by
// TestScoreBreakdownRecomposesBitIdentically.
type Breakdown struct {
	U, V model.EntityID
	// Known is false when either entity has no history (Score returns 0).
	Known bool
	// NormU / NormV are the BM25-style length factors L(u), L(v) (1 when
	// normalization is disabled); Norm is the product actually divided by
	// (clamped to 1 when non-positive, exactly as in Score).
	NormU, NormV, Norm float64
	// Windows decomposes every common temporal window, in window order.
	Windows []WindowBreakdown
	// Total is the recomposed score.
	Total float64
}

// ScoreBreakdown computes the full per-window decomposition of
// Score(u, v). It is the explainability slow path: it walks the same
// compiled views and replicates the kernel's pairing and floating-point
// accumulation order exactly — same distances (canonical CellDistanceKm
// argument order), same argsorted MNN sweep, same MFN alibi pass, same
// per-window and cross-window summation sequence — so the recomposed
// Total is bit-identical to Score(u, v). Unlike Score it allocates
// freely (fresh buffers, no pooled scratch) and leaves the scorer's work
// counters untouched: calling it never perturbs Stats() or the 0 alloc/op
// hot path.
func (s *Scorer) ScoreBreakdown(u, v model.EntityID) *Breakdown {
	bd := &Breakdown{U: u, V: v, NormU: 1, NormV: 1, Norm: 1}
	cu, idsU := s.E.CompiledView(u)
	cv, idsV := s.I.CompiledView(v)
	if cu == nil || cv == nil {
		return bd
	}
	bd.Known = true

	lu, lv := 1.0, 1.0
	if s.Par.UseNorm {
		lu = s.E.NormFactor(u, s.Par.B)
		lv = s.I.NormFactor(v, s.Par.B)
	}
	bd.NormU, bd.NormV = lu, lv
	norm := lu * lv
	if norm <= 0 {
		norm = 1
	}
	bd.Norm = norm

	wu, wv := cu.Windows, cv.Windows
	for i, j := 0, 0; i < len(wu) && j < len(wv); {
		switch {
		case wu[i] < wv[j]:
			i++
		case wu[i] > wv[j]:
			j++
		default:
			wb := s.breakdownWindow(cu, cv, i, j, idsU, idsV, norm)
			// Add even an empty window's (zero) sum: Score adds every
			// common window's return value, and the accumulation sequence
			// must match term for term.
			bd.Total += wb.Sum
			bd.Windows = append(bd.Windows, wb)
			i++
			j++
		}
	}
	return bd
}

// breakdownWindow decomposes one common window, mirroring scoreWindow's
// control flow with recording added and pooled scratch replaced by fresh
// buffers.
func (s *Scorer) breakdownWindow(cu, cv *history.Compiled, ku, kv int, idsU, idsV []geo.CellID, norm float64) WindowBreakdown {
	wb := WindowBreakdown{Window: cu.Windows[ku]}
	loU, hiU := cu.Off[ku], cu.Off[ku+1]
	loV, hiV := cv.Off[kv], cv.Off[kv+1]
	nU, nV := int(hiU-loU), int(hiV-loV)
	wb.BinsU, wb.BinsV = nU, nV
	if nU == 0 || nV == 0 {
		return wb
	}
	cellsU, cellsV := cu.Cells[loU:hiU], cv.Cells[loV:hiV]
	idfU, idfV := cu.IDF[loU:hiU], cv.IDF[loV:hiV]

	n := nU * nV
	dist := make([]float64, n)
	for i, ci := range cellsU {
		a := idsU[ci]
		row := dist[i*nV : (i+1)*nV]
		for j, cj := range cellsV {
			b := idsV[cj]
			if a == b {
				row[j] = 0
				continue
			}
			// Canonical argument order, as in fillDistances: CellDistanceKm
			// is not bit-symmetric in its arguments.
			if b < a {
				row[j] = geo.CellDistanceKm(b, a)
			} else {
				row[j] = geo.CellDistanceKm(a, b)
			}
		}
	}

	contrib := func(i, j int, mfn bool) PairContribution {
		d := dist[i*nV+j]
		p := Proximity(d, s.Par.RunawayKm, s.Par.MinLogArg)
		weight := 1.0
		if s.Par.UseIDF {
			weight = math.Min(idfU[i], idfV[j])
		}
		return PairContribution{
			CellU:        idsU[cellsU[i]],
			CellV:        idsV[cellsV[j]],
			DistanceKm:   d,
			Proximity:    p,
			IDFWeight:    weight,
			Contribution: p * weight / norm,
			Alibi:        p < 0,
			MFN:          mfn,
		}
	}

	if s.Par.Pairing == PairingAllPairs {
		for i := 0; i < nU; i++ {
			for j := 0; j < nV; j++ {
				pc := contrib(i, j, false)
				wb.Sum += pc.Contribution
				wb.Pairs = append(wb.Pairs, pc)
			}
		}
		return wb
	}

	nPairs := min(nU, nV)
	order := make([]int32, n)
	sortPairOrder(order, dist)

	usedU := make([]bool, nU)
	usedV := make([]bool, nV)
	var sel []bool
	if s.Par.UseMFN {
		sel = make([]bool, n)
	}
	taken := 0
	for _, k := range order {
		if taken == nPairs {
			break
		}
		i, j := int(k)/nV, int(k)%nV
		if usedU[i] || usedV[j] {
			continue
		}
		usedU[i], usedV[j] = true, true
		if sel != nil {
			sel[k] = true
		}
		pc := contrib(i, j, false)
		wb.Sum += pc.Contribution
		wb.Pairs = append(wb.Pairs, pc)
		taken++
	}

	if !s.Par.UseMFN {
		return wb
	}
	clear(usedU)
	clear(usedV)
	taken = 0
	for k := n - 1; k >= 0 && taken < nPairs; k-- {
		id := order[k]
		i, j := int(id)/nV, int(id)%nV
		if usedU[i] || usedV[j] {
			continue
		}
		usedU[i], usedV[j] = true, true
		taken++
		if sel[id] {
			continue
		}
		// Only strictly negative normalized deltas contribute, exactly as
		// in the kernel (a zero-weight alibi pair produces -0.0, which is
		// not < 0 and is skipped there too).
		if pc := contrib(i, j, true); pc.Contribution < 0 {
			wb.Sum += pc.Contribution
			wb.Pairs = append(wb.Pairs, pc)
		}
	}
	return wb
}
