package similarity

// Compiled-vs-map parity: the scoring kernel runs on the flat compiled
// views of internal/history, and this file keeps it honest against a
// test-only reference scorer that is a port of the original map-walking
// implementation (per-call sortedCells, [][]float64 distance matrix,
// sort.Slice of candidate structs, selected-pair map). Every score,
// probe ratio, and work counter must match bit-for-bit over seeded
// datagen workloads — point and region records, with incremental Store.Add
// interleaved — plus a zero-allocation gate on the warm Score path.

import (
	"math"
	"sort"
	"testing"

	"slim/internal/datagen"
	"slim/internal/geo"
	"slim/internal/history"
	"slim/internal/model"
)

// refStats mirrors the scorer's batched work counters.
type refStats struct {
	binCmp, recCmp, alibi, pairs int64
}

// refDistCache memoizes cell distances for the reference scorer (tests are
// single-goroutine); the memo returns the exact same pure-function values,
// it just keeps the oracle fast enough for full cross-product sweeps.
var refDistCache = map[[2]geo.CellID]float64{}

func refCellDistance(a, b geo.CellID) float64 {
	// Canonical order, like the original scorer's shared cache (and the
	// kernel): CellDistanceKm is not bit-symmetric in its arguments.
	key := [2]geo.CellID{a, b}
	if b < a {
		key[0], key[1] = b, a
	}
	if d, ok := refDistCache[key]; ok {
		return d
	}
	d := geo.CellDistanceKm(key[0], key[1])
	refDistCache[key] = d
	return d
}

// refScore is the pre-compiled-path scorer, kept as the parity oracle.
func refScore(e, i *history.Store, p Params, u, v model.EntityID, st *refStats) float64 {
	hu, hv := e.History(u), i.History(v)
	if hu == nil || hv == nil {
		return 0
	}
	st.pairs++
	lu, lv := 1.0, 1.0
	if p.UseNorm {
		lu = e.NormFactor(u, p.B)
		lv = i.NormFactor(v, p.B)
	}
	norm := lu * lv
	if norm <= 0 {
		norm = 1
	}
	var total float64
	forEachCommonWindow(hu.Windows(), hv.Windows(), func(w int64) {
		total += refScoreWindow(e, i, p, hu, hv, w, norm, st)
	})
	return total
}

func refSortedCells(cells map[geo.CellID]float64) []geo.CellID {
	out := make([]geo.CellID, 0, len(cells))
	for c := range cells {
		out = append(out, c)
	}
	for a := 1; a < len(out); a++ {
		for b := a; b > 0 && out[b] < out[b-1]; b-- {
			out[b], out[b-1] = out[b-1], out[b]
		}
	}
	return out
}

func refScoreWindow(e, i *history.Store, p Params, hu, hv *history.History, w int64, norm float64, st *refStats) float64 {
	cellsU := refSortedCells(hu.CellsAt(w))
	cellsV := refSortedCells(hv.CellsAt(w))
	if len(cellsU) == 0 || len(cellsV) == 0 {
		return 0
	}
	st.binCmp += int64(len(cellsU) * len(cellsV))
	var recsU, recsV float64
	for _, c := range cellsU {
		recsU += hu.CellsAt(w)[c]
	}
	for _, c := range cellsV {
		recsV += hv.CellsAt(w)[c]
	}
	st.recCmp += int64(recsU*recsV + 0.5)

	dist := make([][]float64, len(cellsU))
	for a, cu := range cellsU {
		dist[a] = make([]float64, len(cellsV))
		for b, cv := range cellsV {
			dist[a][b] = refCellDistance(cu, cv)
		}
	}
	binDelta := func(a, b int) float64 {
		prox := Proximity(dist[a][b], p.RunawayKm, p.MinLogArg)
		if prox < 0 {
			st.alibi++
		}
		weight := 1.0
		if p.UseIDF {
			idfU := e.IDF(history.Bin{Window: w, Cell: cellsU[a]})
			idfV := i.IDF(history.Bin{Window: w, Cell: cellsV[b]})
			weight = math.Min(idfU, idfV)
		}
		return prox * weight / norm
	}

	if p.Pairing == PairingAllPairs {
		var sum float64
		for a := range cellsU {
			for b := range cellsV {
				sum += binDelta(a, b)
			}
		}
		return sum
	}

	nPairs := min(len(cellsU), len(cellsV))
	type cand struct{ i, j int }
	order := make([]cand, 0, len(cellsU)*len(cellsV))
	for a := range cellsU {
		for b := range cellsV {
			order = append(order, cand{a, b})
		}
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := dist[order[a].i][order[a].j], dist[order[b].i][order[b].j]
		if da != db {
			return da < db
		}
		if order[a].i != order[b].i {
			return order[a].i < order[b].i
		}
		return order[a].j < order[b].j
	})
	usedU := make([]bool, len(cellsU))
	usedV := make([]bool, len(cellsV))
	selected := make(map[cand]bool, nPairs)
	var sum float64
	taken := 0
	for _, c := range order {
		if taken == nPairs {
			break
		}
		if usedU[c.i] || usedV[c.j] {
			continue
		}
		usedU[c.i], usedV[c.j] = true, true
		selected[c] = true
		sum += binDelta(c.i, c.j)
		taken++
	}
	if !p.UseMFN {
		return sum
	}
	for a := range usedU {
		usedU[a] = false
	}
	for b := range usedV {
		usedV[b] = false
	}
	taken = 0
	for k := len(order) - 1; k >= 0 && taken < nPairs; k-- {
		c := order[k]
		if usedU[c.i] || usedV[c.j] {
			continue
		}
		usedU[c.i], usedV[c.j] = true, true
		taken++
		if selected[c] {
			continue
		}
		if d := binDelta(c.i, c.j); d < 0 {
			sum += d
		}
	}
	return sum
}

// refProbeRatio ports the map-based ProbeRatio.
func refProbeRatio(e, i *history.Store, p Params, u, v model.EntityID) (float64, bool) {
	hu, hv := e.History(u), i.History(v)
	if hu == nil || hv == nil {
		return 0, false
	}
	var num, den float64
	forEachCommonWindow(hu.Windows(), hv.Windows(), func(w int64) {
		cellsU := refSortedCells(hu.CellsAt(w))
		cellsV := refSortedCells(hv.CellsAt(w))
		if len(cellsU) == 0 || len(cellsV) == 0 {
			return
		}
		nPairs := min(len(cellsU), len(cellsV))
		type cand struct{ i, j int }
		order := make([]cand, 0, len(cellsU)*len(cellsV))
		dist := make([][]float64, len(cellsU))
		for a, cu := range cellsU {
			dist[a] = make([]float64, len(cellsV))
			for b, cv := range cellsV {
				dist[a][b] = refCellDistance(cu, cv)
				order = append(order, cand{a, b})
			}
		}
		sort.Slice(order, func(a, b int) bool {
			da, db := dist[order[a].i][order[a].j], dist[order[b].i][order[b].j]
			if da != db {
				return da < db
			}
			if order[a].i != order[b].i {
				return order[a].i < order[b].i
			}
			return order[a].j < order[b].j
		})
		usedU := make([]bool, len(cellsU))
		usedV := make([]bool, len(cellsV))
		taken := 0
		for _, c := range order {
			if taken == nPairs {
				break
			}
			if usedU[c.i] || usedV[c.j] {
				continue
			}
			usedU[c.i], usedV[c.j] = true, true
			taken++
			weight := 1.0
			if p.UseIDF {
				idfU := e.IDF(history.Bin{Window: w, Cell: cellsU[c.i]})
				idfV := i.IDF(history.Bin{Window: w, Cell: cellsV[c.j]})
				weight = math.Min(idfU, idfV)
			}
			num += Proximity(dist[c.i][c.j], p.RunawayKm, p.MinLogArg) * weight
			den += weight
		}
	})
	if den <= 0 {
		return 0, false
	}
	return num / den, true
}

// parityWorkload builds a seeded datagen linkage workload with a mix of
// point and region records.
func parityWorkload(tb testing.TB) (model.Dataset, model.Dataset) {
	tb.Helper()
	ground := datagen.Cab(datagen.CabConfig{
		NumTaxis: 18, Days: 2, MeanRecordIntervalSec: 900, Seed: 7,
	})
	w := datagen.Sample(&ground, datagen.SampleConfig{Seed: 8})
	// Turn a deterministic slice of records into region records (the
	// Sec. 2.1 extension) so the parity run covers fractional bin weights.
	// Radii stay near one cell edge: big radii at fine levels explode into
	// thousands of cover cells and the O(nm log nm) pairing — in either
	// implementation — is quadratic in them.
	regionize := func(d *model.Dataset) {
		for k := range d.Records {
			if k%7 == 0 {
				d.Records[k].RadiusKm = 0.3 + 0.2*float64(k%4)
			}
		}
	}
	regionize(&w.E)
	regionize(&w.I)
	return w.E, w.I
}

func paramVariants() map[string]Params {
	def := DefaultParams(15, 2)
	noMFN := def
	noMFN.UseMFN = false
	noIDF := def
	noIDF.UseIDF = false
	noNorm := def
	noNorm.UseNorm = false
	allPairs := def
	allPairs.Pairing = PairingAllPairs
	return map[string]Params{
		"default": def, "no-mfn": noMFN, "no-idf": noIDF,
		"no-norm": noNorm, "all-pairs": allPairs,
	}
}

// assertParity scores every cross pair with both implementations and
// requires exact (==) agreement of scores and work counters.
func assertParity(t *testing.T, variant string, e, i *history.Store, p Params) {
	t.Helper()
	s := NewScorer(e, i, p)
	var ref refStats
	for _, u := range e.Entities() {
		for _, v := range i.Entities() {
			got := s.Score(u, v)
			want := refScore(e, i, p, u, v, &ref)
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("%s: Score(%s,%s) = %v, reference %v", variant, u, v, got, want)
			}
		}
	}
	st := s.Stats()
	if st.BinComparisons != ref.binCmp || st.RecordComparisons != ref.recCmp ||
		st.AlibiBinPairs != ref.alibi || st.PairsScored != ref.pairs {
		t.Fatalf("%s: stats %+v, reference %+v", variant, st, ref)
	}
}

func TestCompiledScoreParityDatagen(t *testing.T) {
	dsE, dsI := parityWorkload(t)
	wnd := model.NewWindowing(900, &dsE, &dsI)
	for variant, p := range paramVariants() {
		e := history.Build(&dsE, wnd, 12)
		i := history.Build(&dsI, wnd, 12)
		assertParity(t, variant, e, i, p)
	}
}

// TestCompiledScoreParityIncremental interleaves incremental Store.Add
// batches — records into existing bins, new bins, brand-new entities, and
// region records — with full parity sweeps, exercising the epoch/version
// invalidation of the compiled read path.
func TestCompiledScoreParityIncremental(t *testing.T) {
	dsE, dsI := parityWorkload(t)
	wnd := model.NewWindowing(900, &dsE, &dsI)
	e := history.Build(&dsE, wnd, 12)
	i := history.Build(&dsI, wnd, 12)
	p := DefaultParams(15, 2)

	batches := [][2][]model.Record{
		{{ // repeats of existing records: weight-only updates
			dsE.Records[3], dsE.Records[11],
		}, {
			dsI.Records[5],
		}},
		{{ // new bins for existing entities, including a region record
			{Entity: dsE.Records[0].Entity, LatLng: geo.LatLng{Lat: 37.9, Lng: -122.6}, Unix: dsE.Records[0].Unix + 90000},
			{Entity: dsE.Records[7].Entity, LatLng: geo.LatLng{Lat: 37.1, Lng: -122.1}, Unix: dsE.Records[7].Unix + 5000, RadiusKm: 2.5},
		}, {
			{Entity: dsI.Records[2].Entity, LatLng: geo.LatLng{Lat: 37.8, Lng: -122.3}, Unix: dsI.Records[2].Unix + 42000},
		}},
		{{ // a brand-new entity on each side
			{Entity: "fresh-e", LatLng: geo.LatLng{Lat: 37.75, Lng: -122.42}, Unix: 1211100000},
			{Entity: "fresh-e", LatLng: geo.LatLng{Lat: 37.76, Lng: -122.40}, Unix: 1211101000, RadiusKm: 1},
		}, {
			{Entity: "fresh-i", LatLng: geo.LatLng{Lat: 37.75, Lng: -122.42}, Unix: 1211100100},
		}},
	}
	for _, batch := range batches {
		for _, r := range batch[0] {
			e.Add(r)
		}
		for _, r := range batch[1] {
			i.Add(r)
		}
		assertParity(t, "incremental", e, i, p)
	}
}

func TestCompiledProbeRatioParity(t *testing.T) {
	dsE, dsI := parityWorkload(t)
	wnd := model.NewWindowing(900, &dsE, &dsI)
	for _, level := range []int{8, 12, 14} {
		e := history.Build(&dsE, wnd, level)
		i := history.Build(&dsI, wnd, level)
		s := NewScorer(e, i, DefaultParams(15, 2))
		for _, u := range e.Entities() {
			for _, v := range i.Entities() {
				got, gotOK := s.ProbeRatio(u, v)
				want, wantOK := refProbeRatio(e, i, s.Par, u, v)
				if gotOK != wantOK || got != want {
					t.Fatalf("level %d: ProbeRatio(%s,%s) = %v,%v; reference %v,%v",
						level, u, v, got, gotOK, want, wantOK)
				}
			}
		}
	}
}

// TestScoreWarmZeroAllocs is the allocation-regression gate of the scoring
// kernel: once warm, Score must not touch the heap at all.
func TestScoreWarmZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; gate runs in non-race CI")
	}
	s, u, v := warmWorkloadStores(t)
	_ = s.Score(u, v) // warm compiled views, scratch buffers, distance cache
	if avg := testing.AllocsPerRun(200, func() { _ = s.Score(u, v) }); avg != 0 {
		t.Fatalf("warm Score allocates %v times per call, want 0", avg)
	}
}
