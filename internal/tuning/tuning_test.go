package tuning

import (
	"math/rand"
	"testing"

	"slim/internal/geo"
	"slim/internal/model"
)

// metroDataset builds entities with distinct home neighborhoods inside one
// metro area, so they are indistinguishable at coarse spatial levels and
// separate cleanly at fine ones.
func metroDataset(n, recsEach int, seed int64) model.Dataset {
	r := rand.New(rand.NewSource(seed))
	d := model.Dataset{Name: "metro"}
	for e := 0; e < n; e++ {
		id := model.EntityID(string(rune('A'+e%26)) + string(rune('a'+e/26)))
		homeLat := 37.40 + float64(e%8)*0.05
		homeLng := -122.50 + float64(e/8)*0.05
		for k := 0; k < recsEach; k++ {
			d.Records = append(d.Records, model.Record{
				Entity: id,
				LatLng: geo.LatLng{
					Lat: homeLat + r.NormFloat64()*0.002,
					Lng: homeLng + r.NormFloat64()*0.002,
				},
				Unix: int64(k)*900 + int64(r.Intn(900)),
			})
		}
	}
	return d
}

func TestProbeRatioDecreasesWithDetail(t *testing.T) {
	d := metroDataset(24, 40, 1)
	opt := DefaultOptions()
	opt.Levels = []int{4, 8, 12, 16, 20}
	c := AutoSpatialLevel(&d, opt)
	if len(c.Ratio) != 5 {
		t.Fatalf("curve length = %d", len(c.Ratio))
	}
	// Coarse levels: everyone shares cells → high ratio. Fine levels
	// separate entities, but proximity stays generous inside the runaway
	// distance, so "low" means clearly below the coarse plateau.
	if c.Ratio[0] < 0.8 {
		t.Errorf("level-4 ratio = %g, want ~1 (entities indistinguishable)", c.Ratio[0])
	}
	last := c.Ratio[len(c.Ratio)-1]
	if last > c.Ratio[0]-0.2 {
		t.Errorf("level-20 ratio = %g, want well below coarse ratio %g", last, c.Ratio[0])
	}
	// Broadly non-increasing (tolerate small sampling noise).
	for i := 1; i < len(c.Ratio); i++ {
		if c.Ratio[i] > c.Ratio[i-1]+0.15 {
			t.Errorf("ratio increased sharply from level %d to %d: %g -> %g",
				c.Levels[i-1], c.Levels[i], c.Ratio[i-1], c.Ratio[i])
		}
	}
}

func TestAutoSpatialLevelPicksInteriorElbow(t *testing.T) {
	d := metroDataset(24, 40, 2)
	opt := DefaultOptions()
	opt.Levels = []int{4, 6, 8, 10, 12, 14, 16, 18, 20}
	c := AutoSpatialLevel(&d, opt)
	lvl := c.Level()
	// With ~5km neighborhood separation the elbow should be at a moderate
	// level: past the useless coarse levels, well before the max.
	if lvl <= 4 || lvl >= 20 {
		t.Errorf("elbow level = %d (curve %v), want interior", lvl, c.Ratio)
	}
}

func TestAutoSpatialLevelDeterministic(t *testing.T) {
	d := metroDataset(16, 25, 3)
	opt := DefaultOptions()
	first := AutoSpatialLevel(&d, opt)
	for i := 0; i < 3; i++ {
		again := AutoSpatialLevel(&d, opt)
		if again.Level() != first.Level() {
			t.Fatal("auto-tuning is not deterministic")
		}
		for j := range first.Ratio {
			if first.Ratio[j] != again.Ratio[j] {
				t.Fatal("probe ratios are not deterministic")
			}
		}
	}
}

func TestAutoSpatialLevelPairTakesMax(t *testing.T) {
	// Dataset 2 is spread over a much smaller area → needs finer detail.
	d1 := metroDataset(16, 25, 4)
	d2 := model.Dataset{Name: "dense"}
	r := rand.New(rand.NewSource(5))
	for e := 0; e < 16; e++ {
		id := model.EntityID(string(rune('a' + e)))
		homeLat := 37.40 + float64(e%4)*0.004
		homeLng := -122.50 + float64(e/4)*0.004
		for k := 0; k < 25; k++ {
			d2.Records = append(d2.Records, model.Record{
				Entity: id,
				LatLng: geo.LatLng{Lat: homeLat + r.NormFloat64()*0.0004, Lng: homeLng + r.NormFloat64()*0.0004},
				Unix:   int64(k)*900 + int64(r.Intn(900)),
			})
		}
	}
	opt := DefaultOptions()
	lvl, c1, c2 := AutoSpatialLevelPair(&d1, &d2, opt)
	if lvl != c1.Level() && lvl != c2.Level() {
		t.Error("pair level must come from one of the curves")
	}
	if lvl < c1.Level() || lvl < c2.Level() {
		t.Errorf("pair level %d is not the max of (%d, %d)", lvl, c1.Level(), c2.Level())
	}
}

func TestCurveLevelDegenerate(t *testing.T) {
	if (Curve{}).Level() != 0 {
		t.Error("empty curve level should be 0")
	}
	c := Curve{Levels: []int{4, 8}, Elbow: -1}
	if c.Level() != 8 {
		t.Error("invalid elbow should fall back to max detail")
	}
}

func TestAutoSpatialLevelTinyDataset(t *testing.T) {
	// One entity: probe cannot form pairs; must not panic and should fall
	// back to some level.
	d := model.Dataset{Name: "one", Records: []model.Record{
		{Entity: "a", LatLng: geo.LatLng{Lat: 1, Lng: 1}, Unix: 0},
	}}
	c := AutoSpatialLevel(&d, DefaultOptions())
	if c.Level() == 0 {
		t.Error("tiny dataset should still yield a usable level")
	}
}
