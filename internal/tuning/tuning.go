// Package tuning implements SLIM's automatic spatial-level selection
// (Sec. 3.3). For a given temporal window width, the right spatial detail
// balances accuracy against cost: too coarse and entities become
// indistinguishable, too fine and histories bloat without accuracy gains.
//
// The probe works on one dataset at a time, without labels: sample entity
// pairs, and for each candidate spatial level compute the average ratio of
// pair similarity to self-similarity. Low levels push the ratio toward 1
// (everyone looks like everyone); increasing detail drives it down until it
// flattens. The kneedle elbow of this curve is the chosen level. For a
// linkage of two datasets the paper takes the higher of the two elbows.
package tuning

import (
	"math/rand"

	"slim/internal/history"
	"slim/internal/mathx"
	"slim/internal/model"
	"slim/internal/similarity"
)

// Options configures the auto-tuner.
type Options struct {
	// Levels are the candidate spatial levels in ascending order.
	Levels []int
	// SampleEntities bounds how many probe entities are drawn.
	SampleEntities int
	// PairsPerEntity bounds how many cross pairs each probe entity forms.
	PairsPerEntity int
	// Seed makes the sampling reproducible.
	Seed int64
	// WindowSeconds is the temporal window width the linkage will use.
	WindowSeconds int64
	// MaxSpeedKmPerMin bounds entity movement (runaway distance).
	MaxSpeedKmPerMin float64
	// B is the normalization strength (Eq. 2).
	B float64
}

// DefaultOptions returns the probe configuration used by the experiments:
// levels 4..20 in steps of 2, 15-minute windows, 2 km/min speed bound.
func DefaultOptions() Options {
	return Options{
		Levels:           []int{4, 6, 8, 10, 12, 14, 16, 18, 20},
		SampleEntities:   25,
		PairsPerEntity:   8,
		Seed:             1,
		WindowSeconds:    900,
		MaxSpeedKmPerMin: 2,
		B:                0.5,
	}
}

// Curve holds the probe measurements for one dataset.
type Curve struct {
	Levels []int
	// Ratio[i] is the average pair-similarity / self-similarity at
	// Levels[i], in [0, 1]-ish (clamped below at 0).
	Ratio []float64
	// Elbow is the index into Levels chosen by kneedle.
	Elbow int
}

// Level returns the spatial level at the detected elbow.
func (c Curve) Level() int {
	if len(c.Levels) == 0 {
		return 0
	}
	if c.Elbow < 0 || c.Elbow >= len(c.Levels) {
		return c.Levels[len(c.Levels)-1]
	}
	return c.Levels[c.Elbow]
}

// AutoSpatialLevel probes one dataset and returns the measured curve.
func AutoSpatialLevel(d *model.Dataset, opt Options) Curve {
	if len(opt.Levels) == 0 {
		opt.Levels = DefaultOptions().Levels
	}
	w := model.NewWindowing(opt.WindowSeconds, d)
	params := similarity.DefaultParams(w.WidthMinutes(), opt.MaxSpeedKmPerMin)
	params.B = opt.B

	curve := Curve{Levels: append([]int(nil), opt.Levels...)}
	curve.Ratio = make([]float64, len(curve.Levels))
	for li, level := range curve.Levels {
		store := history.Build(d, w, level)
		curve.Ratio[li] = probeRatio(store, params, opt)
	}
	xs := make([]float64, len(curve.Levels))
	for i, l := range curve.Levels {
		xs[i] = float64(l)
	}
	curve.Elbow = mathx.Kneedle(xs, curve.Ratio, true)
	return curve
}

// probeRatio samples entity pairs and averages pair/self similarity.
func probeRatio(store *history.Store, params similarity.Params, opt Options) float64 {
	entities := store.Entities()
	n := len(entities)
	if n < 2 {
		return 0
	}
	r := rand.New(rand.NewSource(opt.Seed))
	scorer := similarity.NewScorer(store, store, params)

	sampleN := opt.SampleEntities
	if sampleN <= 0 {
		sampleN = 25
	}
	if sampleN > n {
		sampleN = n
	}
	perm := r.Perm(n)
	pairsPer := opt.PairsPerEntity
	if pairsPer <= 0 {
		pairsPer = 8
	}

	var sum float64
	var count int
	for _, ui := range perm[:sampleN] {
		u := entities[ui]
		for k := 0; k < pairsPer; k++ {
			vi := r.Intn(n)
			if vi == ui {
				continue
			}
			// Ratio of the pair's similarity to the self-like idealized
			// similarity of the same evidence: 1 when the level cannot
			// distinguish the two entities, decreasing as detail separates
			// them. Pairs without usable shared evidence carry no signal
			// about the spatial level and are skipped.
			ratio, ok := scorer.ProbeRatio(u, entities[vi])
			if !ok {
				continue
			}
			if ratio < 0 {
				ratio = 0
			}
			sum += ratio
			count++
		}
	}
	if count == 0 {
		return 1
	}
	return sum / float64(count)
}

// AutoSpatialLevelPair probes both datasets of a linkage independently and
// returns the higher elbow level, per Sec. 3.3, along with both curves.
func AutoSpatialLevelPair(d1, d2 *model.Dataset, opt Options) (int, Curve, Curve) {
	c1 := AutoSpatialLevel(d1, opt)
	c2 := AutoSpatialLevel(d2, opt)
	l1, l2 := c1.Level(), c2.Level()
	if l2 > l1 {
		return l2, c1, c2
	}
	return l1, c1, c2
}
