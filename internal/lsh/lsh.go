// Package lsh implements SLIM's locality-sensitive-hashing filter (Sec. 4):
// each mobility history is summarized as a signature of dominating grid
// cells (one per non-overlapping query time window), the signatures are
// divided into b bands of r rows with b solved from the Lambert W function,
// and each band is hashed into a large bucket array. Only cross-dataset
// pairs that share a bucket in at least one band become linkage candidates,
// which is what delivers the paper's two-to-four orders of magnitude
// speedup.
package lsh

import (
	"hash/fnv"
	"math"
	"sort"

	"slim/internal/geo"
	"slim/internal/history"
	"slim/internal/mathx"
	"slim/internal/model"
)

// Placeholder marks query windows in which the entity has no records. Per
// the paper, placeholders keep signature structure aligned across entities
// but are omitted when hashing.
const Placeholder geo.CellID = 0

// Params configures the LSH filter.
type Params struct {
	// Threshold is the target signature similarity t: entities whose
	// signatures agree on at least a t-fraction of dominating cells should
	// become candidates with high probability.
	Threshold float64
	// StepWindows is the query window size in leaf temporal windows (the
	// "temporal step size" axis of Fig. 8).
	StepWindows int
	// SpatialLevel is the grid level of the dominating cells (independent
	// of the similarity score's spatial level, per Sec. 5.3.1).
	SpatialLevel int
	// NumBuckets is the number of hash buckets per band (Fig. 9 axis).
	NumBuckets int
}

// DefaultParams mirrors the paper's defaults: t = 0.6, 4096 buckets.
func DefaultParams(stepWindows, spatialLevel int) Params {
	return Params{Threshold: 0.6, StepWindows: stepWindows, SpatialLevel: spatialLevel, NumBuckets: 4096}
}

// Signature is the ordered list of dominating grid cells of one entity,
// one entry per query window (Placeholder where the entity was silent).
type Signature []geo.CellID

// Pair is a candidate entity pair surviving the filter.
type Pair struct {
	U model.EntityID
	V model.EntityID
}

// Stats reports filter effectiveness.
type Stats struct {
	SignatureLen int
	Bands        int
	Rows         int
	// BandsHashed counts (entity, band) hashes actually performed
	// (placeholder-only bands are skipped).
	BandsHashed int64
	// Candidates is the number of distinct cross-dataset candidate pairs.
	Candidates int64
}

// SignatureLength returns the number of query windows needed to span the
// inclusive leaf-window range [minWin, maxWin] with the given step.
func SignatureLength(minWin, maxWin int64, stepWindows int) int {
	if stepWindows <= 0 || maxWin < minWin {
		return 0
	}
	span := maxWin - minWin + 1
	return int((span + int64(stepWindows) - 1) / int64(stepWindows))
}

// Bands solves the banding parameters for a signature length s and target
// threshold t: b = exp(W(-s·ln t)) rounded and clamped into [1, s], and
// r = ceil(s/b) (the final band may be short; Design decision 6).
func Bands(sigLen int, t float64) (b, r int) {
	if sigLen <= 0 {
		return 0, 0
	}
	t = mathx.Clamp(t, 1e-6, 1-1e-6)
	w, err := mathx.LambertW0(-float64(sigLen) * math.Log(t))
	if err != nil {
		return 1, sigLen
	}
	b = int(math.Round(math.Exp(w)))
	if b < 1 {
		b = 1
	}
	if b > sigLen {
		b = sigLen
	}
	r = (sigLen + b - 1) / b
	return b, r
}

// CandidateProbability returns the probability 1-(1-t^r)^b that two
// signatures with similarity t share at least one identical band.
func CandidateProbability(t float64, b, r int) float64 {
	if b <= 0 || r <= 0 {
		return 0
	}
	return 1 - math.Pow(1-math.Pow(t, float64(r)), float64(b))
}

// BuildSignatures computes a signature for every entity of the store by
// querying each history's dominating cell for consecutive non-overlapping
// query windows covering [minWin, maxWin] (the union range of the two
// datasets, so that query q means the same time span on both sides).
//
// The store must have been built at the desired signature spatial level.
func BuildSignatures(s *history.Store, stepWindows int, minWin, maxWin int64) map[model.EntityID]Signature {
	n := SignatureLength(minWin, maxWin, stepWindows)
	out := make(map[model.EntityID]Signature, s.NumEntities())
	for _, e := range s.Entities() {
		h := s.History(e)
		sig := make(Signature, n)
		for q := 0; q < n; q++ {
			start := minWin + int64(q)*int64(stepWindows)
			end := start + int64(stepWindows)
			if end > maxWin+1 {
				end = maxWin + 1
			}
			if cell, ok := h.DominatingCell(start, end); ok {
				sig[q] = cell
			} else {
				sig[q] = Placeholder
			}
		}
		out[e] = sig
	}
	return out
}

// SignatureSimilarity is the fraction of positions on which both
// signatures carry the same non-placeholder dominating cell, divided by
// the signature size (Sec. 4: "the number of matching dominating cells,
// divided by the signature size").
func SignatureSimilarity(a, b Signature) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	match := 0
	for i := range a {
		if a[i] != Placeholder && a[i] == b[i] {
			match++
		}
	}
	return float64(match) / float64(len(a))
}

// CandidatePairs runs the banding technique over the two signature sets and
// returns the distinct cross-dataset pairs that share a bucket in at least
// one band, sorted for determinism.
func CandidatePairs(sigsE, sigsI map[model.EntityID]Signature, p Params) ([]Pair, Stats) {
	var st Stats
	if len(sigsE) == 0 || len(sigsI) == 0 {
		return nil, st
	}
	sigLen := 0
	for _, sig := range sigsE {
		sigLen = len(sig)
		break
	}
	b, r := Bands(sigLen, p.Threshold)
	st.SignatureLen = sigLen
	st.Bands = b
	st.Rows = r
	if b == 0 {
		return nil, st
	}
	numBuckets := p.NumBuckets
	if numBuckets <= 0 {
		numBuckets = 4096
	}

	// Deterministic iteration: sort entity ids.
	esIDs := sortedIDs(sigsE)
	isIDs := sortedIDs(sigsI)

	seen := make(map[Pair]struct{})
	var pairs []Pair
	for band := 0; band < b; band++ {
		lo := band * r
		hi := lo + r
		if hi > sigLen {
			hi = sigLen
		}
		if lo >= hi {
			continue
		}
		buckets := make(map[uint64][]model.EntityID)
		for _, e := range esIDs {
			if h, ok := bandHash(sigsE[e], band, lo, hi, numBuckets); ok {
				buckets[h] = append(buckets[h], e)
				st.BandsHashed++
			}
		}
		for _, i := range isIDs {
			h, ok := bandHash(sigsI[i], band, lo, hi, numBuckets)
			if !ok {
				continue
			}
			st.BandsHashed++
			for _, e := range buckets[h] {
				pr := Pair{U: e, V: i}
				if _, dup := seen[pr]; !dup {
					seen[pr] = struct{}{}
					pairs = append(pairs, pr)
				}
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].U != pairs[b].U {
			return pairs[a].U < pairs[b].U
		}
		return pairs[a].V < pairs[b].V
	})
	st.Candidates = int64(len(pairs))
	return pairs, st
}

// bandHash hashes the non-placeholder rows of one band; ok is false when
// the band holds only placeholders (such bands are never hashed, so two
// entirely silent entities do not collide).
func bandHash(sig Signature, band, lo, hi, numBuckets int) (uint64, bool) {
	h := fnv.New64a()
	var buf [8]byte
	write := func(v uint64) {
		for k := 0; k < 8; k++ {
			buf[k] = byte(v >> (8 * k))
		}
		_, _ = h.Write(buf[:])
	}
	write(uint64(band))
	any := false
	for row := lo; row < hi && row < len(sig); row++ {
		if sig[row] == Placeholder {
			continue
		}
		any = true
		write(uint64(row))
		write(uint64(sig[row]))
	}
	if !any {
		return 0, false
	}
	return h.Sum64() % uint64(numBuckets), true
}

func sortedIDs(sigs map[model.EntityID]Signature) []model.EntityID {
	out := make([]model.EntityID, 0, len(sigs))
	for id := range sigs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
