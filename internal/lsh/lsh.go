// Package lsh implements SLIM's locality-sensitive-hashing filter (Sec. 4):
// each mobility history is summarized as a signature of dominating grid
// cells (one per non-overlapping query time window), the signatures are
// divided into b bands of r rows with b solved from the Lambert W function,
// and each band is hashed into a large bucket array. Only cross-dataset
// pairs that share a bucket in at least one band become linkage candidates,
// which is what delivers the paper's two-to-four orders of magnitude
// speedup.
//
// The banding primitives (Banding, BandHash, AppendSignature) are shared
// between the batch enumeration below and the incremental candidate index
// in internal/candidates, so both paths hash exactly the same bytes and
// can never disagree on which pairs collide.
package lsh

import (
	"math"
	"slices"

	"slim/internal/geo"
	"slim/internal/history"
	"slim/internal/mathx"
	"slim/internal/model"
)

// Placeholder marks query windows in which the entity has no records. Per
// the paper, placeholders keep signature structure aligned across entities
// but are omitted when hashing.
const Placeholder geo.CellID = 0

// DefaultNumBuckets is the per-band bucket count used when Params leaves
// NumBuckets unset (the paper's default).
const DefaultNumBuckets = 4096

// Params configures the LSH filter.
type Params struct {
	// Threshold is the target signature similarity t: entities whose
	// signatures agree on at least a t-fraction of dominating cells should
	// become candidates with high probability.
	Threshold float64
	// StepWindows is the query window size in leaf temporal windows (the
	// "temporal step size" axis of Fig. 8).
	StepWindows int
	// SpatialLevel is the grid level of the dominating cells (independent
	// of the similarity score's spatial level, per Sec. 5.3.1).
	SpatialLevel int
	// NumBuckets is the number of hash buckets per band (Fig. 9 axis).
	NumBuckets int
}

// DefaultParams mirrors the paper's defaults: t = 0.6, 4096 buckets.
func DefaultParams(stepWindows, spatialLevel int) Params {
	return Params{Threshold: 0.6, StepWindows: stepWindows, SpatialLevel: spatialLevel, NumBuckets: DefaultNumBuckets}
}

// Signature is the ordered list of dominating grid cells of one entity,
// one entry per query window (Placeholder where the entity was silent).
type Signature []geo.CellID

// Pair is a candidate entity pair surviving the filter.
type Pair struct {
	U model.EntityID
	V model.EntityID
}

// Stats reports filter effectiveness.
type Stats struct {
	SignatureLen int
	Bands        int
	Rows         int
	// BandsHashed counts (entity, band) hashes actually performed
	// (placeholder-only bands are skipped).
	BandsHashed int64
	// Candidates is the number of distinct cross-dataset candidate pairs.
	Candidates int64
}

// SignatureLength returns the number of query windows needed to span the
// inclusive leaf-window range [minWin, maxWin] with the given step.
func SignatureLength(minWin, maxWin int64, stepWindows int) int {
	if stepWindows <= 0 || maxWin < minWin {
		return 0
	}
	span := maxWin - minWin + 1
	return int((span + int64(stepWindows) - 1) / int64(stepWindows))
}

// Bands solves the banding parameters for a signature length s and target
// threshold t: b = exp(W(-s·ln t)) rounded and clamped into [1, s], and
// r = ceil(s/b) (the final band may be short; Design decision 6).
func Bands(sigLen int, t float64) (b, r int) {
	if sigLen <= 0 {
		return 0, 0
	}
	t = mathx.Clamp(t, 1e-6, 1-1e-6)
	w, err := mathx.LambertW0(-float64(sigLen) * math.Log(t))
	if err != nil {
		return 1, sigLen
	}
	b = int(math.Round(math.Exp(w)))
	if b < 1 {
		b = 1
	}
	if b > sigLen {
		b = sigLen
	}
	r = (sigLen + b - 1) / b
	return b, r
}

// CandidateProbability returns the probability 1-(1-t^r)^b that two
// signatures with similarity t share at least one identical band.
func CandidateProbability(t float64, b, r int) float64 {
	if b <= 0 || r <= 0 {
		return 0
	}
	return 1 - math.Pow(1-math.Pow(t, float64(r)), float64(b))
}

// Banding is the resolved banded-hashing geometry of one signature grid:
// how many bands, how many rows per band, and how many buckets each band
// hashes into. It is derived once per grid (NewBanding) and shared by the
// batch CandidatePairs enumeration and the incremental candidate index.
type Banding struct {
	SigLen     int
	Bands      int
	Rows       int
	NumBuckets int
}

// NewBanding resolves the banding geometry for a signature length under
// the given params (Bands for b/r, DefaultNumBuckets when unset).
func NewBanding(sigLen int, p Params) Banding {
	b, r := Bands(sigLen, p.Threshold)
	nb := p.NumBuckets
	if nb <= 0 {
		nb = DefaultNumBuckets
	}
	return Banding{SigLen: sigLen, Bands: b, Rows: r, NumBuckets: nb}
}

// BandRange returns the [lo, hi) signature row range of one band; the
// final band may be short (Design decision 6).
func (g Banding) BandRange(band int) (lo, hi int) {
	lo = band * g.Rows
	hi = lo + g.Rows
	if hi > g.SigLen {
		hi = g.SigLen
	}
	return lo, hi
}

// FNV-1a constants (identical to hash/fnv's 64a variant; inlined so band
// hashing performs zero allocations on the hot incremental path).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvWrite64 folds the 8 little-endian bytes of v into an FNV-1a state,
// byte-for-byte identical to writing the same buffer into fnv.New64a.
func fnvWrite64(h, v uint64) uint64 {
	for k := 0; k < 8; k++ {
		h ^= v >> (8 * k) & 0xff
		h *= fnvPrime64
	}
	return h
}

// BandHash hashes the non-placeholder rows of one band into the bucket
// space; ok is false when the band holds only placeholders (such bands are
// never hashed, so two entirely silent entities do not collide).
func (g Banding) BandHash(sig Signature, band int) (uint64, bool) {
	lo, hi := g.BandRange(band)
	if lo >= hi {
		return 0, false
	}
	h := uint64(fnvOffset64)
	h = fnvWrite64(h, uint64(band))
	any := false
	for row := lo; row < hi && row < len(sig); row++ {
		if sig[row] == Placeholder {
			continue
		}
		any = true
		h = fnvWrite64(h, uint64(row))
		h = fnvWrite64(h, uint64(sig[row]))
	}
	if !any {
		return 0, false
	}
	return h % uint64(g.NumBuckets), true
}

// AppendSignature computes one entity's signature over the query grid that
// starts at leaf window minWin, covers n query windows of stepWindows
// leaves each, and clamps the final query window to maxWin+1. The result
// is appended to dst[:0] (pass nil to allocate) so incremental callers can
// reuse one buffer.
//
// The clamp matches the historical batch behavior but is semantically
// inert: DominatingCell sums record counts, and a history holds no records
// past its dataset's max window ≤ maxWin, so extending the final query
// window past maxWin+1 could never change the outcome. This is what lets
// the incremental index keep signatures computed under an older maxWin
// when later ingest grows the range without growing n.
func AppendSignature(dst Signature, h *history.History, stepWindows int, minWin, maxWin int64, n int) Signature {
	dst = dst[:0]
	for q := 0; q < n; q++ {
		start := minWin + int64(q)*int64(stepWindows)
		end := start + int64(stepWindows)
		if end > maxWin+1 {
			end = maxWin + 1
		}
		if cell, ok := h.DominatingCell(start, end); ok {
			dst = append(dst, cell)
		} else {
			dst = append(dst, Placeholder)
		}
	}
	return dst
}

// BuildSignatures computes a signature for every entity of the store by
// querying each history's dominating cell for consecutive non-overlapping
// query windows covering [minWin, maxWin] (the union range of the two
// datasets, so that query q means the same time span on both sides).
//
// The store must have been built at the desired signature spatial level.
func BuildSignatures(s *history.Store, stepWindows int, minWin, maxWin int64) map[model.EntityID]Signature {
	n := SignatureLength(minWin, maxWin, stepWindows)
	out := make(map[model.EntityID]Signature, s.NumEntities())
	for _, e := range s.Entities() {
		out[e] = AppendSignature(make(Signature, 0, n), s.History(e), stepWindows, minWin, maxWin, n)
	}
	return out
}

// SignatureSimilarity is the fraction of positions on which both
// signatures carry the same non-placeholder dominating cell, divided by
// the signature size (Sec. 4: "the number of matching dominating cells,
// divided by the signature size").
func SignatureSimilarity(a, b Signature) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	match := 0
	for i := range a {
		if a[i] != Placeholder && a[i] == b[i] {
			match++
		}
	}
	return float64(match) / float64(len(a))
}

// CandidatePairs runs the banding technique over the two signature sets and
// returns the distinct cross-dataset pairs that share a bucket in at least
// one band, sorted for determinism.
func CandidatePairs(sigsE, sigsI map[model.EntityID]Signature, p Params) ([]Pair, Stats) {
	var st Stats
	if len(sigsE) == 0 || len(sigsI) == 0 {
		return nil, st
	}
	sigLen := 0
	for _, sig := range sigsE {
		sigLen = len(sig)
		break
	}
	g := NewBanding(sigLen, p)
	st.SignatureLen = sigLen
	st.Bands = g.Bands
	st.Rows = g.Rows
	if g.Bands == 0 {
		return nil, st
	}

	// Deterministic iteration: both id lists sorted into one shared buffer.
	ids := make([]model.EntityID, 0, len(sigsE)+len(sigsI))
	esIDs := appendSortedIDs(ids, sigsE)
	isIDs := appendSortedIDs(esIDs[len(esIDs):], sigsI)

	seen := make(map[Pair]struct{})
	var pairs []Pair
	buckets := make(map[uint64][]model.EntityID)
	for band := 0; band < g.Bands; band++ {
		clear(buckets)
		for _, e := range esIDs {
			if h, ok := g.BandHash(sigsE[e], band); ok {
				buckets[h] = append(buckets[h], e)
				st.BandsHashed++
			}
		}
		for _, i := range isIDs {
			h, ok := g.BandHash(sigsI[i], band)
			if !ok {
				continue
			}
			st.BandsHashed++
			for _, e := range buckets[h] {
				pr := Pair{U: e, V: i}
				if _, dup := seen[pr]; !dup {
					seen[pr] = struct{}{}
					pairs = append(pairs, pr)
				}
			}
		}
	}
	SortPairs(pairs)
	st.Candidates = int64(len(pairs))
	return pairs, st
}

// SortPairs orders pairs by (U, V) ascending — the canonical candidate
// order shared by the batch path and the incremental index.
func SortPairs(pairs []Pair) {
	slices.SortFunc(pairs, func(a, b Pair) int {
		if a.U != b.U {
			if a.U < b.U {
				return -1
			}
			return 1
		}
		if a.V < b.V {
			return -1
		}
		if a.V > b.V {
			return 1
		}
		return 0
	})
}

// appendSortedIDs appends the map's keys to dst[:0] and sorts them, so one
// backing buffer can serve several id lists without per-call sort closures.
func appendSortedIDs(dst []model.EntityID, sigs map[model.EntityID]Signature) []model.EntityID {
	dst = dst[:0]
	for id := range sigs {
		dst = append(dst, id)
	}
	slices.Sort(dst)
	return dst
}
