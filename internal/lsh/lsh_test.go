package lsh

import (
	"hash/fnv"
	"math"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"slim/internal/geo"
	"slim/internal/history"
	"slim/internal/model"
)

var wnd = model.Windowing{Epoch: 0, WidthSeconds: 900}

func rec(e string, lat, lng float64, unix int64) model.Record {
	return model.Record{Entity: model.EntityID(e), LatLng: geo.LatLng{Lat: lat, Lng: lng}, Unix: unix}
}

func TestSignatureLength(t *testing.T) {
	cases := []struct {
		minW, maxW int64
		step, want int
	}{
		{0, 11, 3, 4},
		{0, 11, 4, 3},
		{0, 12, 4, 4}, // 13 windows / 4 → 4 queries (last short)
		{5, 5, 1, 1},
		{0, 9, 0, 0}, // bad step
		{9, 0, 3, 0}, // inverted range
		{0, 99, 48, 3},
	}
	for _, c := range cases {
		if got := SignatureLength(c.minW, c.maxW, c.step); got != c.want {
			t.Errorf("SignatureLength(%d,%d,%d) = %d, want %d", c.minW, c.maxW, c.step, got, c.want)
		}
	}
}

func TestBandsMathMatchesLambertDerivation(t *testing.T) {
	// For t = (1/b)^(r/s) with r = s/b, solving back must recover ~b.
	for _, s := range []int{8, 16, 48, 100, 200} {
		for _, tThr := range []float64{0.4, 0.5, 0.6, 0.7, 0.8} {
			b, r := Bands(s, tThr)
			if b < 1 || b > s {
				t.Fatalf("Bands(%d, %g) = (%d, %d): b out of range", s, tThr, b, r)
			}
			if b*r < s {
				t.Fatalf("Bands(%d, %g) = (%d, %d): bands don't cover the signature", s, tThr, b, r)
			}
			// The implied threshold (1/b)^(1/r) should be near the target.
			implied := math.Pow(1/float64(b), 1/float64(r))
			if b > 1 && math.Abs(implied-tThr) > 0.22 {
				t.Errorf("Bands(%d, %g): implied threshold %g too far", s, tThr, implied)
			}
		}
	}
}

func TestBandsMonotoneInThreshold(t *testing.T) {
	// Lower thresholds need more bands (more permissive hashing).
	s := 96
	prevB := math.MaxInt32
	for _, tThr := range []float64{0.3, 0.5, 0.7, 0.9} {
		b, _ := Bands(s, tThr)
		if b > prevB {
			t.Fatalf("bands increased with threshold at t=%g", tThr)
		}
		prevB = b
	}
}

func TestBandsDegenerate(t *testing.T) {
	if b, r := Bands(0, 0.5); b != 0 || r != 0 {
		t.Error("zero-length signature should give (0,0)")
	}
	b, r := Bands(1, 0.5)
	if b != 1 || r != 1 {
		t.Errorf("Bands(1, .5) = (%d, %d), want (1,1)", b, r)
	}
	// Thresholds are clamped, not rejected.
	b, _ = Bands(10, 0)
	if b < 1 {
		t.Error("t=0 should clamp")
	}
	b, _ = Bands(10, 1)
	if b < 1 {
		t.Error("t=1 should clamp")
	}
}

func TestCandidateProbabilitySCurve(t *testing.T) {
	b, r := 16, 6
	// Monotone increasing in t.
	prev := -1.0
	for x := 0.0; x <= 1.0; x += 0.05 {
		p := CandidateProbability(x, b, r)
		if p < prev-1e-12 {
			t.Fatalf("probability not monotone at t=%g", x)
		}
		if p < 0 || p > 1 {
			t.Fatalf("probability out of [0,1]: %g", p)
		}
		prev = p
	}
	// Near the derived threshold the curve must be in transition, with low
	// probability well below and high probability well above.
	thr := math.Pow(1/float64(b), 1/float64(r))
	if p := CandidateProbability(thr-0.25, b, r); p > 0.45 {
		t.Errorf("probability below threshold too high: %g", p)
	}
	if p := CandidateProbability(thr+0.25, b, r); p < 0.8 {
		t.Errorf("probability above threshold too low: %g", p)
	}
	if CandidateProbability(0.5, 0, 5) != 0 {
		t.Error("degenerate bands should give probability 0")
	}
}

func TestBuildSignaturesShapes(t *testing.T) {
	// Entity active in windows 0..2 and 9..11 of a 12-window span; step 3
	// → 4 queries, middle two are placeholders.
	var recs []model.Record
	for k := 0; k < 3; k++ {
		recs = append(recs, rec("a", 37.7749, -122.4194, int64(900*k)))
		recs = append(recs, rec("a", 37.7749, -122.4194, int64(900*(9+k))))
	}
	d := model.Dataset{Name: "E", Records: recs}
	s := history.Build(&d, wnd, 12)
	sigs := BuildSignatures(s, 3, 0, 11)
	sig := sigs["a"]
	if len(sig) != 4 {
		t.Fatalf("signature length = %d, want 4", len(sig))
	}
	want := geo.CellIDFromLatLngLevel(geo.LatLng{Lat: 37.7749, Lng: -122.4194}, 12)
	if sig[0] != want || sig[3] != want {
		t.Errorf("active queries should carry the dominating cell: %v", sig)
	}
	if sig[1] != Placeholder || sig[2] != Placeholder {
		t.Errorf("silent queries should be placeholders: %v", sig)
	}
}

func TestBuildSignaturesDominanceCount(t *testing.T) {
	// Paper's illustrative example: 3 visits to one cell, 2 to another in
	// one query window → the 3-count cell dominates.
	recs := []model.Record{
		rec("a", 37.7749, -122.4194, 0),
		rec("a", 37.7749, -122.4194, 950),
		rec("a", 37.7749, -122.4194, 1900),
		rec("a", 37.9, -122.1, 100),
		rec("a", 37.9, -122.1, 1000),
	}
	d := model.Dataset{Name: "E", Records: recs}
	s := history.Build(&d, wnd, 12)
	sigs := BuildSignatures(s, 3, 0, 2)
	want := geo.CellIDFromLatLngLevel(geo.LatLng{Lat: 37.7749, Lng: -122.4194}, 12)
	if sigs["a"][0] != want {
		t.Errorf("dominating cell = %v, want the 3-visit cell %v", sigs["a"][0], want)
	}
}

func TestSignatureSimilarity(t *testing.T) {
	c1 := geo.CellID(0x89c2589 | 1)
	c2 := geo.CellID(0x89c25f1 | 1)
	a := Signature{c1, c2, Placeholder, c1}
	b := Signature{c1, c1, Placeholder, c1}
	// Matching non-placeholder positions: 0 and 3 → 2/4.
	if got := SignatureSimilarity(a, b); got != 0.5 {
		t.Errorf("similarity = %g, want 0.5", got)
	}
	// Placeholders never match (both silent ≠ same place).
	allP := Signature{Placeholder, Placeholder}
	if got := SignatureSimilarity(allP, allP); got != 0 {
		t.Errorf("placeholder similarity = %g, want 0", got)
	}
	if SignatureSimilarity(a, Signature{c1}) != 0 {
		t.Error("mismatched lengths should give 0")
	}
	if SignatureSimilarity(nil, nil) != 0 {
		t.Error("empty signatures should give 0")
	}
}

func TestCandidatePairsIdenticalSignatures(t *testing.T) {
	// Same movement → identical signatures → guaranteed candidate.
	var eRecs, iRecs []model.Record
	for k := 0; k < 24; k++ {
		unix := int64(900 * k)
		lat := 37.5 + float64(k%4)*0.05
		eRecs = append(eRecs, rec("u", lat, -122.4, unix))
		iRecs = append(iRecs, rec("v", lat, -122.4, unix))
		// A decoy with a totally different signature.
		iRecs = append(iRecs, rec("w", 48.85+float64(k%4)*0.05, 2.35, unix))
	}
	se := history.Build(&model.Dataset{Name: "E", Records: eRecs}, wnd, 12)
	si := history.Build(&model.Dataset{Name: "I", Records: iRecs}, wnd, 12)
	sigsE := BuildSignatures(se, 4, 0, 23)
	sigsI := BuildSignatures(si, 4, 0, 23)
	pairs, st := CandidatePairs(sigsE, sigsI, Params{Threshold: 0.6, StepWindows: 4, SpatialLevel: 12, NumBuckets: 1 << 16})
	found := false
	for _, p := range pairs {
		if p.U == "u" && p.V == "v" {
			found = true
		}
	}
	if !found {
		t.Fatalf("identical signatures must collide; got pairs %v", pairs)
	}
	if st.Candidates != int64(len(pairs)) {
		t.Error("stats candidate count mismatch")
	}
	if st.Bands <= 0 || st.Rows <= 0 {
		t.Errorf("banding stats not populated: %+v", st)
	}
	// With 2^16 buckets the decoy should not collide with u.
	for _, p := range pairs {
		if p.U == "u" && p.V == "w" {
			t.Error("decoy with disjoint signature collided (improbable with 65536 buckets)")
		}
	}
}

func TestCandidatePairsFewerBucketsMoreCollisions(t *testing.T) {
	// Shrinking the bucket array can only create more (or equal) candidate
	// pairs — the Fig. 9 mechanism.
	var eRecs, iRecs []model.Record
	for e := 0; e < 12; e++ {
		for k := 0; k < 12; k++ {
			unix := int64(900 * k)
			eRecs = append(eRecs, rec("e"+string(rune('a'+e)), 37.0+float64(e)*0.3, -122.4, unix))
			iRecs = append(iRecs, rec("i"+string(rune('a'+e)), 37.0+float64(e)*0.3, -122.4, unix))
		}
	}
	se := history.Build(&model.Dataset{Name: "E", Records: eRecs}, wnd, 12)
	si := history.Build(&model.Dataset{Name: "I", Records: iRecs}, wnd, 12)
	sigsE := BuildSignatures(se, 3, 0, 11)
	sigsI := BuildSignatures(si, 3, 0, 11)
	small, _ := CandidatePairs(sigsE, sigsI, Params{Threshold: 0.6, StepWindows: 3, NumBuckets: 2})
	large, _ := CandidatePairs(sigsE, sigsI, Params{Threshold: 0.6, StepWindows: 3, NumBuckets: 1 << 20})
	if len(small) < len(large) {
		t.Errorf("fewer buckets produced fewer candidates: %d < %d", len(small), len(large))
	}
	// Every true pair must be present even with tiny bucket arrays.
	for e := 0; e < 12; e++ {
		want := Pair{U: model.EntityID("e" + string(rune('a'+e))), V: model.EntityID("i" + string(rune('a'+e)))}
		found := false
		for _, p := range small {
			if p == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("true pair %v lost with small bucket array", want)
		}
	}
}

func TestCandidatePairsDeterministic(t *testing.T) {
	var eRecs, iRecs []model.Record
	for k := 0; k < 20; k++ {
		unix := int64(900 * k)
		eRecs = append(eRecs, rec("a", 37.5, -122.4, unix), rec("b", 37.9, -122.0, unix))
		iRecs = append(iRecs, rec("x", 37.5, -122.4, unix), rec("y", 37.9, -122.0, unix))
	}
	se := history.Build(&model.Dataset{Name: "E", Records: eRecs}, wnd, 12)
	si := history.Build(&model.Dataset{Name: "I", Records: iRecs}, wnd, 12)
	sigsE := BuildSignatures(se, 4, 0, 19)
	sigsI := BuildSignatures(si, 4, 0, 19)
	p := Params{Threshold: 0.6, StepWindows: 4, NumBuckets: 4096}
	first, _ := CandidatePairs(sigsE, sigsI, p)
	for trial := 0; trial < 5; trial++ {
		again, _ := CandidatePairs(sigsE, sigsI, p)
		if len(again) != len(first) {
			t.Fatal("candidate count not deterministic")
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatal("candidate order not deterministic")
			}
		}
	}
}

func TestCandidatePairsEmptyInputs(t *testing.T) {
	pairs, st := CandidatePairs(nil, nil, Params{Threshold: 0.6})
	if pairs != nil || st.Candidates != 0 {
		t.Error("empty inputs should produce no candidates")
	}
}

func TestSilentEntitiesNeverCollide(t *testing.T) {
	// Entities with all-placeholder signatures must not become candidates.
	sigsE := map[model.EntityID]Signature{"e": {Placeholder, Placeholder}}
	sigsI := map[model.EntityID]Signature{"i": {Placeholder, Placeholder}}
	pairs, _ := CandidatePairs(sigsE, sigsI, Params{Threshold: 0.6, NumBuckets: 16})
	if len(pairs) != 0 {
		t.Errorf("placeholder-only signatures collided: %v", pairs)
	}
}

func TestBandsQuickProperties(t *testing.T) {
	f := func(sSeed uint16, tSeed uint16) bool {
		s := int(sSeed%500) + 1
		tThr := float64(tSeed%998)/1000 + 0.001
		b, r := Bands(s, tThr)
		return b >= 1 && b <= s && r >= 1 && b*r >= s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCandidatePairs(b *testing.B) {
	var eRecs, iRecs []model.Record
	for e := 0; e < 100; e++ {
		id := string(rune('A'+e%26)) + string(rune('a'+e/26))
		for k := 0; k < 48; k++ {
			unix := int64(900 * k)
			lat := 37.0 + float64((e*7+k)%40)*0.02
			eRecs = append(eRecs, rec("e"+id, lat, -122.4, unix))
			iRecs = append(iRecs, rec("i"+id, lat, -122.4, unix))
		}
	}
	se := history.Build(&model.Dataset{Name: "E", Records: eRecs}, wnd, 13)
	si := history.Build(&model.Dataset{Name: "I", Records: iRecs}, wnd, 13)
	sigsE := BuildSignatures(se, 4, 0, 47)
	sigsI := BuildSignatures(si, 4, 0, 47)
	p := Params{Threshold: 0.6, StepWindows: 4, NumBuckets: 4096}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		_, _ = CandidatePairs(sigsE, sigsI, p)
	}
}

// TestBandHashMatchesFNVReference pins the inlined FNV-1a band hashing to
// the hash/fnv byte stream it replaced: any drift would silently reshuffle
// every bucket and therefore every candidate set.
func TestBandHashMatchesFNVReference(t *testing.T) {
	ref := func(sig Signature, band, lo, hi, numBuckets int) (uint64, bool) {
		h := fnv.New64a()
		var buf [8]byte
		write := func(v uint64) {
			for k := 0; k < 8; k++ {
				buf[k] = byte(v >> (8 * k))
			}
			_, _ = h.Write(buf[:])
		}
		write(uint64(band))
		any := false
		for row := lo; row < hi && row < len(sig); row++ {
			if sig[row] == Placeholder {
				continue
			}
			any = true
			write(uint64(row))
			write(uint64(sig[row]))
		}
		if !any {
			return 0, false
		}
		return h.Sum64() % uint64(numBuckets), true
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(24)
		sig := make(Signature, n)
		for i := range sig {
			if rng.Intn(3) == 0 {
				sig[i] = Placeholder
			} else {
				sig[i] = geo.CellID(rng.Uint64())
			}
		}
		g := NewBanding(n, Params{Threshold: 0.2 + 0.6*rng.Float64(), NumBuckets: 1 << uint(6+rng.Intn(9))})
		for band := 0; band < g.Bands; band++ {
			lo, hi := g.BandRange(band)
			want, wantOK := ref(sig, band, lo, hi, g.NumBuckets)
			got, gotOK := g.BandHash(sig, band)
			if got != want || gotOK != wantOK {
				t.Fatalf("band %d of %d rows: BandHash=(%d,%v) fnv reference=(%d,%v)", band, n, got, gotOK, want, wantOK)
			}
		}
	}
}

// TestAppendSignatureMatchesBuildSignatures verifies the single-entity
// primitive (with buffer reuse) agrees with the batch builder.
func TestAppendSignatureMatchesBuildSignatures(t *testing.T) {
	var recs []model.Record
	for e := 0; e < 8; e++ {
		id := string(rune('a' + e))
		for k := 0; k < 30; k++ {
			recs = append(recs, rec(id, 37+float64((e*5+k)%11)*0.05, -122.4, int64(900*(k*3+e))))
		}
	}
	s := history.Build(&model.Dataset{Name: "E", Records: recs}, wnd, 13)
	minW, maxW, _ := s.WindowRange()
	n := SignatureLength(minW, maxW, 4)
	batch := BuildSignatures(s, 4, minW, maxW)
	var buf Signature
	for _, e := range s.Entities() {
		buf = AppendSignature(buf, s.History(e), 4, minW, maxW, n)
		if !slices.Equal(buf, batch[e]) {
			t.Fatalf("entity %s: AppendSignature %v != BuildSignatures %v", e, buf, batch[e])
		}
	}
}

// TestNewBandingDefaults checks the bucket-count default and range clamp.
func TestNewBandingDefaults(t *testing.T) {
	g := NewBanding(10, Params{Threshold: 0.6})
	if g.NumBuckets != DefaultNumBuckets {
		t.Fatalf("NumBuckets = %d, want default %d", g.NumBuckets, DefaultNumBuckets)
	}
	total := 0
	for band := 0; band < g.Bands; band++ {
		lo, hi := g.BandRange(band)
		if lo >= hi && band < g.Bands-1 {
			t.Fatalf("band %d empty before the final band", band)
		}
		if hi > g.SigLen {
			t.Fatalf("band %d overruns the signature: hi=%d len=%d", band, hi, g.SigLen)
		}
		total += hi - lo
	}
	if total != g.SigLen {
		t.Fatalf("bands cover %d rows, want %d", total, g.SigLen)
	}
}
