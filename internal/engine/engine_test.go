package engine

import (
	"errors"
	"slices"
	"sort"
	"sync"
	"testing"
	"time"

	"slim"
)

// standardWorkload mirrors the repo's standard datagen benchmark workload
// (see benchWorkload in the root bench_test.go): a synthetic Cab trace
// sampled into two overlapping anonymized datasets with ground truth.
func standardWorkload(taxis int) slim.SampledWorkload {
	ground := slim.GenerateCab(slim.CabOptions{
		NumTaxis: taxis, Days: 2, MeanRecordIntervalSec: 360, Seed: 99,
	})
	return slim.SampleWorkload(&ground, slim.SampleOptions{
		IntersectionRatio: 0.5, InclusionProbE: 0.5, InclusionProbI: 0.5, Seed: 100,
	})
}

// splitByTime divides a dataset's records at a unix timestamp.
func splitByTime(d slim.Dataset, cut int64) (before, after []slim.Record) {
	for _, r := range d.Records {
		if r.Unix < cut {
			before = append(before, r)
		} else {
			after = append(after, r)
		}
	}
	return before, after
}

func sortLinks(ls []slim.Link) {
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].U != ls[j].U {
			return ls[i].U < ls[j].U
		}
		return ls[i].V < ls[j].V
	})
}

// TestEngineQualityMatchesBaseline links the standard workload with the
// sharded engine and with a single Linker and verifies the engine's
// quality is not materially worse despite shard-local E-side statistics.
func TestEngineQualityMatchesBaseline(t *testing.T) {
	w := standardWorkload(24)
	cfg := slim.Defaults()

	base, err := slim.LinkDatasets(w.E, w.I, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(w.E, w.I, Config{Shards: 4, Link: cfg})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()

	if len(res.Links) == 0 {
		t.Fatal("engine produced no links")
	}
	mBase := slim.Evaluate(base.Links, w.Truth)
	mEng := slim.Evaluate(res.Links, w.Truth)
	t.Logf("baseline F1=%.3f engine F1=%.3f (links %d vs %d)",
		mBase.F1, mEng.F1, len(base.Links), len(res.Links))
	if mEng.F1 < mBase.F1-0.15 {
		t.Errorf("engine F1 %.3f much worse than baseline %.3f", mEng.F1, mBase.F1)
	}
	// The merged candidate workload must cover the full cross product.
	if res.Stats.CandidatePairs != base.Stats.CandidatePairs {
		t.Errorf("candidate pairs: engine %d, baseline %d",
			res.Stats.CandidatePairs, base.Stats.CandidatePairs)
	}
}

// TestEngineIncrementalMatchesFullLoad streams the tail of the workload
// into an engine seeded with the head and verifies the relinked result is
// identical to an engine seeded with everything.
func TestEngineIncrementalMatchesFullLoad(t *testing.T) {
	w := standardWorkload(20)
	lo, _, _ := w.E.TimeRange()
	cut := lo + 130000 // ~1.5 days in: every entity already has many records

	beforeE, afterE := splitByTime(w.E, cut)
	beforeI, afterI := splitByTime(w.I, cut)

	cfg := slim.Defaults()
	inc, err := New(
		slim.Dataset{Name: "E", Records: beforeE},
		slim.Dataset{Name: "I", Records: beforeI},
		Config{Shards: 4, Link: cfg},
	)
	if err != nil {
		t.Fatal(err)
	}
	inc.Run()
	inc.AddE(afterE...)
	inc.AddI(afterI...)
	streamed := inc.Run()

	full, err := New(w.E, w.I, Config{Shards: 4, Link: cfg})
	if err != nil {
		t.Fatal(err)
	}
	batch := full.Run()

	if len(streamed.Links) != len(batch.Links) {
		t.Fatalf("streamed links = %d, full-load links = %d",
			len(streamed.Links), len(batch.Links))
	}
	sortLinks(streamed.Links)
	sortLinks(batch.Links)
	for i := range batch.Links {
		if streamed.Links[i] != batch.Links[i] {
			t.Fatalf("link %d differs: %+v vs %+v", i, streamed.Links[i], batch.Links[i])
		}
	}
}

// TestEngineDirtyShardTracking verifies that ingest only dirties the
// owning shard (E side) or all shards (I side), and that clean shards
// reuse cached edges across runs.
func TestEngineDirtyShardTracking(t *testing.T) {
	w := standardWorkload(20)
	eng, err := New(w.E, w.I, Config{Shards: 4, Link: slim.Defaults()})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if st := eng.Stats(); st.DirtyShards != 0 {
		t.Fatalf("dirty shards after run: %d", st.DirtyShards)
	}

	// One E record dirties exactly its owning shard.
	u := eng.shards[0].lk.EntitiesE()
	for s := 1; s < len(eng.shards) && len(u) == 0; s++ {
		u = eng.shards[s].lk.EntitiesE()
	}
	if len(u) == 0 {
		t.Fatal("no entities in any shard")
	}
	eng.AddE(slim.NewRecord(u[0], 37.7, -122.4, 1_300_000))
	if st := eng.Stats(); st.DirtyShards != 1 {
		t.Errorf("dirty shards after one E record: %d, want 1", st.DirtyShards)
	}
	eng.Run()

	// One I record dirties every shard (I is replicated).
	eng.AddI(slim.NewRecord("brand-new-i", 37.7, -122.4, 1_300_000))
	if st := eng.Stats(); st.DirtyShards != 4 {
		t.Errorf("dirty shards after one I record: %d, want 4", st.DirtyShards)
	}
}

// TestEngineEmptyStartAndBackgroundRelink boots an empty engine, streams
// three linkable pairs through it, and waits for the debounced background
// scheduler to publish the linkage without any manual Run call.
func TestEngineEmptyStartAndBackgroundRelink(t *testing.T) {
	mk := func(e string, latOff float64, n int, startUnix int64) []slim.Record {
		var out []slim.Record
		for k := 0; k < n; k++ {
			out = append(out, slim.NewRecord(slim.EntityID(e),
				37.5+latOff+float64(k%4)*0.06, -122.3, startUnix+int64(k)*900))
		}
		return out
	}
	cfg := slim.Defaults()
	cfg.Threshold = slim.ThresholdNone // tiny instance: keep the full matching
	eng, err := New(slim.Dataset{Name: "E"}, slim.Dataset{Name: "I"},
		Config{Shards: 4, Link: cfg, Debounce: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	defer eng.Close()

	for i, off := range []float64{0, 0.8, 1.6} {
		e := string(rune('a' + i))
		eng.AddE(mk("e-"+e, off, 20, 1_000_000)...)
		eng.AddI(mk("i-"+e, off, 20, 1_000_030)...)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, v, ok := eng.Result(); ok && v > 0 && eng.Stats().PendingRecords == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background relink never published a result")
		}
		time.Sleep(5 * time.Millisecond)
	}
	links := eng.Links()
	if len(links) != 3 {
		t.Fatalf("links = %v, want 3 pairs", links)
	}
	got := eng.LinksFor("e-b")
	if len(got) != 1 || got[0].V != "i-b" {
		t.Errorf("LinksFor(e-b) = %v", got)
	}
	st := eng.Stats()
	if st.IngestedE != 60 || st.IngestedI != 60 {
		t.Errorf("ingest counters = %d/%d, want 60/60", st.IngestedE, st.IngestedI)
	}
}

// TestEngineConcurrentIngestWhileRun hammers the engine with concurrent
// streaming ingest, manual runs, the background scheduler and queries.
// Run it under -race: it is the subsystem's data-race gate.
func TestEngineConcurrentIngestWhileRun(t *testing.T) {
	w := standardWorkload(16)
	lo, _, _ := w.E.TimeRange()
	cut := lo + 120000
	beforeE, afterE := splitByTime(w.E, cut)
	beforeI, afterI := splitByTime(w.I, cut)

	eng, err := New(
		slim.Dataset{Name: "E", Records: beforeE},
		slim.Dataset{Name: "I", Records: beforeI},
		Config{Shards: 4, Link: slim.Defaults(), Debounce: time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	eng.Run()

	const batch = 25
	var wg sync.WaitGroup
	wg.Add(4)
	go func() { // stream E records in batches
		defer wg.Done()
		for i := 0; i < len(afterE); i += batch {
			hi := min(i+batch, len(afterE))
			eng.AddE(afterE[i:hi]...)
		}
	}()
	go func() { // stream I records in batches
		defer wg.Done()
		for i := 0; i < len(afterI); i += batch {
			hi := min(i+batch, len(afterI))
			eng.AddI(afterI[i:hi]...)
		}
	}()
	go func() { // manual relinks racing the background scheduler
		defer wg.Done()
		for i := 0; i < 5; i++ {
			eng.Run()
		}
	}()
	go func() { // concurrent readers
		defer wg.Done()
		for i := 0; i < 50; i++ {
			eng.Links()
			eng.Stats()
			eng.LinksFor("anyone")
			eng.Result()
		}
	}()
	wg.Wait()
	eng.Close()

	final := eng.Run()
	if len(final.Links) == 0 {
		t.Fatal("no links after concurrent ingest")
	}
	st := eng.Stats()
	if st.PendingRecords != 0 || st.DirtyShards != 0 {
		t.Errorf("engine not clean after final run: %+v", st)
	}
	if st.IngestedE != uint64(len(afterE)) || st.IngestedI != uint64(len(afterI)) {
		t.Errorf("ingest counters %d/%d, want %d/%d",
			st.IngestedE, st.IngestedI, len(afterE), len(afterI))
	}
}

// TestShardedRelinkSpeedup measures the engine's headline property: after
// a localized ingest burst, a 4-shard engine re-links by re-scoring only
// the dirty shard and must beat a single Linker's full re-run by >= 1.5x
// wall-clock on the standard datagen workload. The burst is split into
// three sub-bursts and the ratio taken over median relink times, so one
// scheduler hiccup on a loaded CI machine cannot flip the gate.
func TestShardedRelinkSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test; skipped in -short")
	}
	baseE, baseI, tail := relinkFixture(32)
	cfg := slim.Defaults()

	// Contiguous thirds, preserving record order: every sub-burst brings
	// records its entities have not seen (new bins), so the single Linker
	// pays a full rescore each time — the exact cost the engine's
	// dirty-shard isolation is gated against. A shuffled split could make
	// a later sub-burst weight-only, where both sides take equally cheap
	// pair-level delta paths and the ratio would measure nothing.
	var chunks [][]slim.Record
	for i := 0; i < 3; i++ {
		chunks = append(chunks, tail[i*len(tail)/3:(i+1)*len(tail)/3])
	}

	lk, err := slim.NewLinker(baseE, baseI, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lk.Run()
	var baseDurs []time.Duration
	for _, chunk := range chunks {
		t0 := time.Now()
		lk.AddE(chunk...)
		lk.Run()
		baseDurs = append(baseDurs, time.Since(t0))
	}

	eng, err := New(baseE, baseI, Config{Shards: 4, Link: cfg})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	var engDurs []time.Duration
	for _, chunk := range chunks {
		t1 := time.Now()
		eng.AddE(chunk...)
		eng.Run()
		engDurs = append(engDurs, time.Since(t1))
	}

	med := func(ds []time.Duration) time.Duration {
		s := append([]time.Duration(nil), ds...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s[len(s)/2]
	}
	baseDur, engDur := med(baseDurs), med(engDurs)
	speedup := float64(baseDur) / float64(engDur)
	t.Logf("relink after localized burst: single-linker median %v %v, 4-shard engine median %v %v (%.2fx)",
		baseDur, baseDurs, engDur, engDurs, speedup)
	if speedup < 1.5 {
		t.Errorf("sharded relink speedup %.2fx < 1.5x", speedup)
	}
}

// relinkFixture builds the streaming-relink scenario shared by the
// speedup test and the benchmarks: the standard workload split into a
// bulk-loaded head plus a tail burst of E records that all belong to one
// shard of a 4-shard engine (a localized update, the common case for a
// service where only some users are active between relinks).
func relinkFixture(taxis int) (baseE, baseI slim.Dataset, tail []slim.Record) {
	w := standardWorkload(taxis)
	lo, _, _ := w.E.TimeRange()
	cut := lo + 130000
	beforeE, afterE := splitByTime(w.E, cut)
	for _, r := range afterE {
		if shardOf(r.Entity, 4) == 0 {
			tail = append(tail, r)
		}
	}
	baseE = slim.Dataset{Name: "E", Records: beforeE}
	baseI = w.I
	return baseE, baseI, tail
}

// TestEngineCloseIdempotentAndRaced is the lifecycle -race gate: Close
// must be idempotent and safe to race with Start, ingest (which nudges
// scheduleRelink), a manual Run, and a background relink in flight.
// Every Close that observes a started scheduler must block until the
// scheduler goroutine — including its in-flight relink — has exited.
func TestEngineCloseIdempotentAndRaced(t *testing.T) {
	mk := func(e string, latOff float64, n int, startUnix int64) []slim.Record {
		var out []slim.Record
		for k := 0; k < n; k++ {
			out = append(out, slim.NewRecord(slim.EntityID(e),
				37.5+latOff+float64(k%4)*0.06, -122.3, startUnix+int64(k)*900))
		}
		return out
	}
	cfg := slim.Defaults()
	cfg.Threshold = slim.ThresholdNone
	eng, err := New(slim.Dataset{Name: "E"}, slim.Dataset{Name: "I"},
		Config{Shards: 2, Link: cfg, Debounce: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()

	// Get a background relink moving before the Closes race in.
	eng.AddE(mk("e-a", 0, 20, 1_000_000)...)
	eng.AddI(mk("i-a", 0, 20, 1_000_030)...)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng.Close()
		}()
	}
	wg.Add(3)
	go func() {
		defer wg.Done()
		eng.Start() // Start racing Close must not resurrect the scheduler
	}()
	go func() {
		defer wg.Done()
		// scheduleRelink racing Close
		eng.AddE(mk("e-b", 0.8, 20, 1_000_000)...)
		eng.AddI(mk("i-b", 0.8, 20, 1_000_030)...)
	}()
	go func() {
		defer wg.Done()
		eng.Run()
	}()
	wg.Wait()
	eng.Close() // still idempotent after the dust settles

	// The engine stays queryable and manually runnable after Close.
	res := eng.Run()
	if len(res.Links) == 0 {
		t.Fatal("no links from post-Close manual run")
	}
	if eng.Pending() != 0 {
		t.Fatalf("pending after final run = %d", eng.Pending())
	}
}

// TestEngineRunShortCircuitsWhenClean is the regression gate for the
// fully-clean fast path: a Run with no dirty shard and nothing pending
// must republish the previous result without re-matching (version
// unchanged, persister not re-notified), and the next real ingest must
// take the full path again.
func TestEngineRunShortCircuitsWhenClean(t *testing.T) {
	w := standardWorkload(16)
	eng, err := New(w.E, w.I, Config{Shards: 4, Link: slim.Defaults()})
	if err != nil {
		t.Fatal(err)
	}
	first := eng.Run()
	_, v1, _ := eng.Result()
	p := &recordingPersister{}
	eng.SetPersister(p)

	second := eng.Run()
	_, v2, _ := eng.Result()
	if v2 != v1 {
		t.Fatalf("clean rerun bumped the version: %d -> %d", v1, v2)
	}
	if p.runs != 0 {
		t.Fatalf("clean rerun notified the persister %d times", p.runs)
	}
	sortLinks(first.Links)
	sortLinks(second.Links)
	if len(first.Links) == 0 || !slices.Equal(first.Links, second.Links) {
		t.Fatalf("short-circuited run diverged: %d vs %d links", len(second.Links), len(first.Links))
	}
	st := eng.Stats()
	if st.RunsShortCircuited != 1 || st.Runs != 2 || st.DirtyShardsLastRun != 0 {
		t.Fatalf("short-circuit counters: %+v", st)
	}
	// A short-circuited run did no edge-store work: the last-* mirror
	// fields must read zero (not echo the first relink), while the state
	// fields keep the retained pairs.
	if es := st.EdgeStore; es == nil || es.Rescored != 0 || es.Retained != 0 || es.FullRescore || es.Pairs == 0 {
		t.Fatalf("edge-store mirrors after short-circuit: %+v", es)
	}

	// Real ingest resumes the full path and notifies the persister. A
	// duplicate of an existing record is weight-only churn, so the dirty
	// shard's edge store must take the pair-level delta path (retained
	// pairs, no full rescore) while clean shards contribute zero work.
	eng.AddE(w.E.Records[0])
	third := eng.Run()
	_, v3, _ := eng.Result()
	if v3 != v1+1 || p.runs != 1 {
		t.Fatalf("post-ingest run: version %d (want %d), persister runs %d (want 1)", v3, v1+1, p.runs)
	}
	es := third.Stats.EdgeStore
	if es == nil {
		t.Fatal("run stats carry no edge-store block")
	}
	if es.FullRescore || es.Retained == 0 || es.Rescored == 0 {
		t.Fatalf("weight-only burst did not take the delta path: %+v", es)
	}
	if es.Rescored+es.Retained >= third.Stats.CandidatePairs {
		t.Fatalf("delta run rescanned every candidate: rescored %d + retained %d vs %d total (clean shards must contribute zero work)",
			es.Rescored, es.Retained, third.Stats.CandidatePairs)
	}
	st = eng.Stats()
	if st.EdgeStore == nil || st.EdgeStore.Pairs == 0 {
		t.Fatalf("engine stats edge-store block missing or empty: %+v", st.EdgeStore)
	}
	if st.EdgeRescoredTotal == 0 || st.EdgeRetainedTotal == 0 {
		t.Fatalf("cumulative relink counters not accumulated: %+v", st)
	}
	if st.EdgeStore.Rescored != es.Rescored || st.EdgeStore.Retained != es.Retained {
		t.Fatalf("stats edge-store work (%d/%d) disagrees with run stats (%d/%d)",
			st.EdgeStore.Rescored, st.EdgeStore.Retained, es.Rescored, es.Retained)
	}
}

// recordingPersister is a test double for the storage hook.
type recordingPersister struct {
	mu               sync.Mutex
	loggedE, loggedI int
	runs             int
	failE            bool
}

func (p *recordingPersister) LogE(recs []slim.Record) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failE {
		return errFailE
	}
	p.loggedE += len(recs)
	return nil
}

func (p *recordingPersister) LogI(recs []slim.Record) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.loggedI += len(recs)
	return nil
}

func (p *recordingPersister) AfterRun(res slim.Result, version uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.runs++
}

var errFailE = errors.New("injected log failure")

// TestEnginePersisterContract: batches are logged before they are
// buffered, a log failure rejects the batch entirely, and every
// published run reaches AfterRun.
func TestEnginePersisterContract(t *testing.T) {
	mk := func(e string, latOff float64, n int) []slim.Record {
		var out []slim.Record
		for k := 0; k < n; k++ {
			out = append(out, slim.NewRecord(slim.EntityID(e),
				37.5+latOff+float64(k%4)*0.06, -122.3, 1_000_000+int64(k)*900))
		}
		return out
	}
	cfg := slim.Defaults()
	cfg.Threshold = slim.ThresholdNone
	eng, err := New(slim.Dataset{Name: "E"}, slim.Dataset{Name: "I"},
		Config{Shards: 2, Link: cfg})
	if err != nil {
		t.Fatal(err)
	}
	p := &recordingPersister{}
	eng.SetPersister(p)

	if err := eng.AddE(mk("e-a", 0, 20)...); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddI(mk("i-a", 0, 20)...); err != nil {
		t.Fatal(err)
	}
	if p.loggedE != 20 || p.loggedI != 20 {
		t.Fatalf("logged %d/%d, want 20/20", p.loggedE, p.loggedI)
	}

	p.failE = true
	if err := eng.AddE(mk("e-bad", 1.6, 5)...); err == nil {
		t.Fatal("AddE with failing persister succeeded")
	}
	st := eng.Stats()
	if st.IngestedE != 20 {
		t.Fatalf("rejected batch counted as ingested: %d", st.IngestedE)
	}
	// 20 E + 20 I (counted once per shard, 2 shards) = 60; the rejected
	// 5-record batch must not appear.
	if eng.Pending() != 60 {
		t.Fatalf("rejected batch buffered: pending=%d, want 60", eng.Pending())
	}

	eng.Run()
	if p.runs != 1 {
		t.Fatalf("AfterRun called %d times, want 1", p.runs)
	}
}

// TestEngineConcurrentIngestWithLSHIndex is the -race gate for the
// incremental candidate index: every shard maintains its index under
// concurrent AddE/AddI + Run + Stats traffic, and the final relink must
// match a from-scratch engine built over the union datasets (the engine-
// level version of the candidates parity suite).
func TestEngineConcurrentIngestWithLSHIndex(t *testing.T) {
	w := standardWorkload(16)
	lo, _, _ := w.E.TimeRange()
	cut := lo + 120000
	beforeE, afterE := splitByTime(w.E, cut)
	beforeI, afterI := splitByTime(w.I, cut)

	cfg := slim.Defaults()
	cfg.LSH = &slim.LSHConfig{Threshold: 0.2, StepWindows: 48, SpatialLevel: 12, NumBuckets: 1 << 14}
	eng, err := New(
		slim.Dataset{Name: "E", Records: beforeE},
		slim.Dataset{Name: "I", Records: beforeI},
		Config{Shards: 4, Link: cfg, Debounce: time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	eng.Run()

	const batch = 25
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < len(afterE); i += batch {
			eng.AddE(afterE[i:min(i+batch, len(afterE))]...)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < len(afterI); i += batch {
			eng.AddI(afterI[i:min(i+batch, len(afterI))]...)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			eng.Run()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			st := eng.Stats() // races index-stat mirrors against relinks
			_ = st.CandidateIndex
		}
	}()
	wg.Wait()
	eng.Close()
	final := eng.Run()

	st := eng.Stats()
	if st.CandidateIndex == nil {
		t.Fatal("engine stats carry no candidate-index block with LSH enabled")
	}
	if st.CandidateIndex.Epoch == 0 || st.CandidateIndex.SignaturesE == 0 {
		t.Fatalf("candidate index looks unbuilt after ingest: %+v", st.CandidateIndex)
	}

	fresh, err := New(w.E, w.I, Config{Shards: 4, Link: cfg})
	if err != nil {
		t.Fatal(err)
	}
	want := fresh.Run()
	sortLinks(final.Links)
	sortLinks(want.Links)
	if len(final.Links) != len(want.Links) {
		t.Fatalf("incremental engine found %d links, fresh engine %d", len(final.Links), len(want.Links))
	}
	for i := range want.Links {
		if final.Links[i] != want.Links[i] {
			t.Fatalf("link %d differs after concurrent LSH ingest: %+v vs %+v", i, final.Links[i], want.Links[i])
		}
	}
}
