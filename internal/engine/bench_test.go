package engine

import (
	"testing"

	"slim"
)

// The relink benchmarks measure the engine's reason to exist: after a
// localized ingest burst (new records for entities owned by one shard), a
// sharded engine re-scores |E_s|x|I| pairs while a single Linker re-scores
// |E|x|I|. Compare BenchmarkRelinkEngine4Shards against
// BenchmarkRelinkSingleLinker.

func benchRelink(b *testing.B, run func(baseE, baseI slim.Dataset, tail []slim.Record)) {
	b.Helper()
	baseE, baseI, tail := relinkFixture(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(baseE, baseI, tail)
	}
}

func BenchmarkRelinkSingleLinker(b *testing.B) {
	benchRelink(b, func(baseE, baseI slim.Dataset, tail []slim.Record) {
		b.StopTimer()
		lk, err := slim.NewLinker(baseE, baseI, slim.Defaults())
		if err != nil {
			b.Fatal(err)
		}
		lk.Run()
		b.StartTimer()
		lk.AddE(tail...)
		lk.Run()
	})
}

func BenchmarkRelinkEngine4Shards(b *testing.B) {
	benchRelink(b, func(baseE, baseI slim.Dataset, tail []slim.Record) {
		b.StopTimer()
		eng, err := New(baseE, baseI, Config{Shards: 4, Link: slim.Defaults()})
		if err != nil {
			b.Fatal(err)
		}
		eng.Run()
		b.StartTimer()
		eng.AddE(tail...)
		eng.Run()
	})
}

// The full-run benchmarks compare one cold end-to-end linkage (construction
// plus scoring, matching, thresholding); on multi-core hosts the engine
// additionally builds and scores its shards in parallel.

func BenchmarkFullRunSingleLinker(b *testing.B) {
	w := standardWorkload(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := slim.LinkDatasets(w.E, w.I, slim.Defaults()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullRunEngine4Shards(b *testing.B) {
	w := standardWorkload(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := New(w.E, w.I, Config{Shards: 4, Link: slim.Defaults()})
		if err != nil {
			b.Fatal(err)
		}
		eng.Run()
	}
}
