package engine

import (
	"sync"
	"time"
)

// RunRecord is one flight-recorder entry: everything the engine knew
// about one relink run at the moment it finished — what triggered it,
// how much dirty work it found, what the stages cost, and whether it
// short-circuited, fully rescored, or panicked. Records are written for
// every run, including zero-work short circuits and contained panics,
// so the journal replays the engine's recent decision history exactly.
type RunRecord struct {
	// Seq is the run's sequence number (monotonic per engine). Version is
	// the result version published by the run — equal to Seq for
	// successful runs, the previous version when the run panicked and
	// published nothing.
	Seq     uint64
	Version uint64
	// Trigger names what started the run: "manual" (Run call) or
	// "background" (debounce loop).
	Trigger string
	// Start / Duration are the run's wall-clock bounds.
	Start    time.Time
	Duration time.Duration
	// DirtyShards counts shards with pending ingest at run start;
	// ShortCircuit reports the zero-work fast path (no dirty shards, no
	// forced work — stats mirrors zeroed, no relink).
	DirtyShards  int
	ShortCircuit bool
	// FullRescore reports whether any shard took the epoch full-rescore
	// path this run.
	FullRescore bool
	// Panicked / PanicMsg record contained shard panics (the engine
	// degrades rather than crashing; see runContained).
	Panicked bool
	PanicMsg string
	// Rescored / Retained / Dropped aggregate the shards' edge-store
	// deltas; CandidatePairs and Links are the run's published totals.
	Rescored       int64
	Retained       int64
	Dropped        int64
	CandidatePairs int64
	Links          int64
	// TailReusedPrefix is how many matched links the publish tail reused
	// verbatim from the previous run; TailFullRebuild reports whether the
	// tail fell back to a full merge+match rebuild. Both are zero on the
	// from-scratch (Hungarian) path.
	TailReusedPrefix int64
	TailFullRebuild  bool
	// Per-stage wall-clock durations (see Stats stage timings).
	ApplyDur     time.Duration
	IndexDur     time.Duration
	RescoreDur   time.Duration
	MergeDur     time.Duration
	MatchDur     time.Duration
	ThresholdDur time.Duration
}

// journal is a bounded ring of the engine's most recent RunRecords — the
// relink flight recorder. Appends overwrite the oldest entry once the
// ring is full, so memory is fixed at construction no matter how long
// the engine runs.
type journal struct {
	mu    sync.Mutex
	buf   []RunRecord
	next  int
	total uint64
}

func newJournal(size int) *journal {
	if size <= 0 {
		size = DefaultRunJournal
	}
	return &journal{buf: make([]RunRecord, 0, size)}
}

func (j *journal) add(r RunRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.buf) < cap(j.buf) {
		j.buf = append(j.buf, r)
	} else {
		j.buf[j.next] = r
	}
	j.next = (j.next + 1) % cap(j.buf)
	j.total++
}

// snapshot returns up to limit records, newest first, skipping offset
// newest records — the pagination contract of /v1/runs. total is the
// count of runs ever recorded (including ones already overwritten).
func (j *journal) snapshot(limit, offset int) (recs []RunRecord, total uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := len(j.buf)
	if n == 0 {
		return nil, j.total
	}
	if limit <= 0 || limit > n {
		limit = n
	}
	if offset < 0 {
		offset = 0
	}
	for k := offset; k < n && len(recs) < limit; k++ {
		// Newest entry is at next-1, wrapping backwards.
		idx := (j.next - 1 - k + 2*n) % n
		recs = append(recs, j.buf[idx])
	}
	return recs, j.total
}

// byVersion returns the journal entry whose published Version matches v
// (the "run that produced it" join behind /v1/explain), or false when
// the run has aged out of the ring. Panicked runs republish the previous
// version, so on a tie the successful (non-panicked) run wins — at most
// one exists per version, since versions only advance on success.
func (j *journal) byVersion(v uint64) (RunRecord, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var hit RunRecord
	found := false
	for k := range j.buf {
		if j.buf[k].Version != v {
			continue
		}
		if !j.buf[k].Panicked {
			return j.buf[k], true
		}
		if !found {
			hit, found = j.buf[k], true
		}
	}
	return hit, found
}

func (j *journal) size() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.buf)
}

func (j *journal) capacity() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return cap(j.buf)
}
