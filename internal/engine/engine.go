// Package engine turns the batch slim.Linker into the core of a
// long-running linkage service: a thread-safe, shard-partitioned engine
// that owns N Linker shards hash-partitioned by first-dataset entity id,
// accepts concurrent streaming ingest, schedules debounced background
// re-link runs, and merges per-shard scored edges into one globally
// matched, thresholded slim.Result.
//
// Partitioning scheme. Linkage scores every cross pair E×I, so the engine
// hash-partitions the E entities across shards and replicates the I
// dataset into each shard: shard s scores E_s × I, and the union of the
// shards' positive edges equals the full edge set. Matching and the stop
// threshold then run once, globally, over the merged edges, preserving
// the bipartite-matching semantics of the single Linker. The one
// deliberate approximation is that E-side IDF and length-normalization
// statistics are shard-local (|U_s| instead of |U|), the standard
// local-statistics trade-off of sharded retrieval systems; quality parity
// is exercised by TestEngineQualityMatchesBaseline.
//
// Why shard at all: a record batch only dirties the shards owning the
// touched E entities (an I record dirties every shard), so a streaming
// re-link re-scores |E_s|×|I| pairs instead of |E|×|I| — the property
// behind the engine's relink benchmarks — and on multi-core hosts shard
// construction and re-scoring proceed in parallel.
package engine

import (
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"slim"
	"slim/internal/fault"
	"slim/internal/obs"
)

// DefaultShards is the shard count used when Config.Shards is zero.
const DefaultShards = 4

// DefaultDebounce is the background relink debounce used when
// Config.Debounce is zero.
const DefaultDebounce = 250 * time.Millisecond

// DefaultRunDeadline is the relink watchdog deadline used when
// Config.RunDeadline is zero: a run exceeding it shows up on the
// slim_relink_stuck_seconds gauge and flips /healthz's relink domain.
const DefaultRunDeadline = 2 * time.Minute

// DefaultRunJournal is the flight-recorder ring size used when
// Config.RunJournal is zero.
const DefaultRunJournal = 256

// Fault-injection site names of the relink path (Config.Fault). Any
// injected signal at these sites panics the goroutine that hit it —
// they exist to prove the containment below, not to model I/O errors.
const (
	// FaultApply fires in each shard's pending-drain goroutine.
	FaultApply = "engine.apply"
	// FaultRescore fires in each dirty shard's rescore goroutine.
	FaultRescore = "engine.rescore"
	// FaultRelink fires once per run on the merge/match path.
	FaultRelink = "engine.relink"
	// FaultLoop fires in the background scheduler itself, outside Run's
	// containment — the handle for exercising the supervisor restart.
	FaultLoop = "engine.loop"
)

// Config parameterizes the engine.
type Config struct {
	// Shards is the number of Linker shards (default DefaultShards).
	Shards int
	// Link is the per-shard linkage configuration. SpatialLevel 0 triggers
	// one global auto-tune over the seed datasets before partitioning (an
	// engine seeded with empty datasets falls back to level 12).
	Link slim.Config
	// Debounce is how long ingest must stay quiet before a started
	// background scheduler triggers a relink (default DefaultDebounce).
	Debounce time.Duration
	// Registry, when set, receives the engine metrics: relink run and
	// per-stage latency histograms, the ingest-to-link-visible freshness
	// histogram and staleness gauge, and counter/gauge views over the
	// same atomics Stats reports. A nil Registry wires the metrics to a
	// private, unscraped registry, so instrumentation is always on.
	Registry *obs.Registry
	// RunDeadline is the relink watchdog deadline: a run exceeding it is
	// reported by the slim_relink_stuck_seconds gauge (0 =
	// DefaultRunDeadline, <0 = watchdog disabled).
	RunDeadline time.Duration
	// RunJournal is the flight-recorder ring size: how many of the most
	// recent relink runs (including short circuits and contained panics)
	// the engine keeps for /v1/runs and explain joins (0 =
	// DefaultRunJournal).
	RunJournal int
	// Fault, when set, arms the engine's panic-injection sites (Fault*
	// constants) — the chaos tests' handle into the relink path.
	Fault *fault.Injector
	// Logger, when set, receives recovered relink panics and supervisor
	// restarts (failures with no caller to report to).
	Logger *slog.Logger
}

func (c Config) runDeadline() time.Duration {
	if c.RunDeadline == 0 {
		return DefaultRunDeadline
	}
	return c.RunDeadline
}

// shard owns one Linker over a hash partition of the E entities plus a
// replica of the I dataset.
//
// Locking: pendMu guards only the pending ingest buffers, so ingest never
// blocks behind a running linkage; runMu serializes everything that
// touches the linker (draining pending records into it and re-scoring).
type shard struct {
	pendMu sync.Mutex
	pendE  []slim.Record
	pendI  []slim.Record
	// pendSince is when the pending buffers last went empty→non-empty:
	// the enqueue time of the shard's oldest queued record, the ingest
	// plane's relink-lag signal (zero while the queue is empty).
	pendSince time.Time

	runMu sync.Mutex
	lk    *slim.Linker
	edges []slim.Link
	stats slim.Stats

	// ran and the entity counts are mirrored atomically so Stats and
	// ingest responses never wait behind a relink holding runMu.
	ran  atomic.Bool
	entE atomic.Int64
	entI atomic.Int64
	// forceDirty marks the shard for an unconditional rescore on the
	// next run — set when a relink panicked, because the panicked run's
	// cached edges (or partially applied state) can no longer be
	// trusted as clean.
	forceDirty atomic.Bool
	// idx mirrors the shard's incremental LSH candidate-index snapshot
	// (nil when LSH is disabled), refreshed after every rescore so Stats
	// can aggregate it without taking runMu.
	idx atomic.Pointer[slim.CandidateIndexStats]
	// edge mirrors the shard's edge-store snapshot the same way (nil until
	// the first rescore).
	edge atomic.Pointer[slim.EdgeStoreStats]
}

// pending reports how many ingested records the shard has not yet applied.
func (sh *shard) pending() int {
	sh.pendMu.Lock()
	defer sh.pendMu.Unlock()
	return len(sh.pendE) + len(sh.pendI)
}

// buffer enqueues one batch onto the shard's pending queue for the given
// dataset side, stamping pendSince on an empty→non-empty transition.
func (sh *shard) buffer(e bool, recs []slim.Record) {
	sh.pendMu.Lock()
	if len(sh.pendE)+len(sh.pendI) == 0 {
		sh.pendSince = time.Now()
	}
	if e {
		sh.pendE = append(sh.pendE, recs...)
	} else {
		sh.pendI = append(sh.pendI, recs...)
	}
	sh.pendMu.Unlock()
}

// applyPending drains the ingest buffers into the shard linker and
// reports whether the shard needs re-scoring. Callers must hold runMu.
func (sh *shard) applyPending() (dirty bool) {
	sh.pendMu.Lock()
	pe, pi := sh.pendE, sh.pendI
	sh.pendE, sh.pendI = nil, nil
	sh.pendSince = time.Time{}
	sh.pendMu.Unlock()
	sh.lk.AddE(pe...)
	sh.lk.AddI(pi...)
	sh.syncCounts()
	return sh.forceDirty.Swap(false) || !sh.ran.Load() || len(pe) > 0 || len(pi) > 0
}

// syncCounts refreshes the atomic entity-count mirrors. Callers must hold
// runMu (or be the constructor, before the shard is shared).
func (sh *shard) syncCounts() {
	sh.entE.Store(int64(len(sh.lk.EntitiesE())))
	sh.entI.Store(int64(len(sh.lk.EntitiesI())))
}

// rescore re-runs the shard's scoring under the given global E entity
// count (see Linker.SetTotalEntitiesE) and caches the edges, stamping
// edge lineage with the given run seq. Callers must hold runMu.
func (sh *shard) rescore(totalE int, seq uint64) {
	sh.lk.SetTotalEntitiesE(totalE)
	sh.lk.SetNextRunSeq(seq)
	sh.edges, sh.stats = sh.lk.RunEdges()
	sh.idx.Store(sh.lk.CandidateIndexStats())
	sh.edge.Store(sh.stats.EdgeStore)
	sh.ran.Store(true)
}

// Persister is the engine's durability hook, implemented by
// internal/storage. LogE/LogI are called before a batch is buffered:
// a batch is acknowledged to the caller only after it is durable, and a
// log error rejects the batch entirely. The persister may canonicalize
// records in place (e.g. quantize coordinates to the codec's fixed-point
// resolution) so the live engine state matches what a recovery would
// rebuild. AfterRun is called after each published relink so the
// persister can capture the result and decide whether to checkpoint.
type Persister interface {
	LogE(recs []slim.Record) error
	LogI(recs []slim.Record) error
	AfterRun(res slim.Result, version uint64)
}

// Engine is a sharded, concurrent linkage engine. All methods are safe for
// concurrent use.
type Engine struct {
	cfg   Config
	level int
	epoch int64

	shards []*shard

	// runMu serializes whole relink runs (manual Run calls and the
	// background scheduler); ingest and queries never take it.
	runMu sync.Mutex

	// mu guards the published result and run bookkeeping.
	mu      sync.Mutex
	cur     *slim.Result
	version uint64
	lastRun time.Time

	// pMu guards the persistence hook (attached once, after recovery
	// feeding, before serving).
	pMu     sync.RWMutex
	persist Persister

	ingestedE atomic.Uint64
	ingestedI atomic.Uint64
	runs      atomic.Uint64
	// lastDirtyShards mirrors how many shards the latest relink actually
	// re-scored (ingest-driven observability next to the candidate-index
	// counters).
	lastDirtyShards atomic.Int64
	// shortCircuits counts fully-clean Run calls that republished the
	// cached result without re-matching; the edge* counters accumulate the
	// relink-delta work of every rescored shard since construction (the
	// numbers behind the expvar relink counters).
	shortCircuits atomic.Uint64
	edgeRescored  atomic.Uint64
	edgeRetained  atomic.Uint64
	edgeDropped   atomic.Uint64

	// Supervision state: relinkPanics counts recovered panics anywhere
	// in the relink path; loopRestarts counts supervisor restarts of the
	// background scheduler; runStartNano is the wall-clock start of the
	// run in flight (0 when idle), the watchdog's input; health is the
	// relink failure domain (degraded after a panicked run, healthy
	// again after the next successful publish).
	relinkPanics atomic.Uint64
	loopRestarts atomic.Uint64
	runStartNano atomic.Int64
	health       *obs.Health

	// runSeq numbers every run attempt (including short circuits and
	// contained panics) — the flight recorder's Seq; journal is the
	// bounded ring of recent RunRecords behind /v1/runs and Explain.
	runSeq  atomic.Uint64
	journal *journal

	// tail is the engine-global incremental publish tail: the maintained
	// sorted edge order, prefix-reusing greedy matching and cached
	// threshold fit the merge/match/threshold stages run through (nil when
	// the configured matcher is Hungarian, which has no incremental
	// structure). tailValid marks the tail's maintained state consistent
	// with the shards' edge stores; it is cleared before every tail
	// mutation and after any failed run, so a panicked run — whose
	// completed shard rescores produced deltas the tail never consumed —
	// degrades the next publish to a full rebuild instead of publishing
	// from a stale order. Both are guarded by runMu; tailStats mirrors the
	// tail's snapshot for lock-free Stats and /metrics reads.
	tail      *slim.PublishTail
	tailValid bool
	tailStats atomic.Pointer[slim.PublishTailStats]

	metrics *engMetrics

	kick   chan struct{}
	stopCh chan struct{}
	done   chan struct{}

	// lifeMu guards the start/close lifecycle so Close is idempotent and
	// safe to race with Start.
	lifeMu  sync.Mutex
	started bool
	closed  bool
}

// engMetrics are the engine's native instruments: run and stage latency
// histograms plus the freshness tracer. Counter/gauge views over the
// engine's existing atomics are registered alongside them (newEngMetrics)
// so /metrics and Stats read the same state.
type engMetrics struct {
	relinkSeconds *obs.Histogram
	// Stage histograms cover one relink each: draining pending ingest
	// (apply), the incremental candidate-index updates inside the dirty
	// shards (candidate_index, carved out of rescore), the parallel
	// dirty-shard rescoring wall time (rescore), edge merging (merge),
	// global matching (match), and threshold selection (threshold).
	stageApply, stageIndex, stageRescore   *obs.Histogram
	stageMerge, stageMatch, stageThreshold *obs.Histogram
	ingestToVisible                        *obs.Histogram
	fresh                                  *obs.Freshness
}

func stageHist(reg *obs.Registry, stage string) *obs.Histogram {
	return reg.Histogram("slim_relink_stage_seconds",
		"Wall time of one relink stage (labelled); candidate_index is the summed incremental index update time inside rescore.",
		nil, obs.L("stage", stage))
}

func newEngMetrics(reg *obs.Registry, e *Engine) *engMetrics {
	m := &engMetrics{
		relinkSeconds: reg.Histogram("slim_relink_seconds",
			"Wall time of one complete relink run (drain, rescore, merge, match, threshold, publish).", nil),
		stageApply:     stageHist(reg, "apply"),
		stageIndex:     stageHist(reg, "candidate_index"),
		stageRescore:   stageHist(reg, "rescore"),
		stageMerge:     stageHist(reg, "merge"),
		stageMatch:     stageHist(reg, "match"),
		stageThreshold: stageHist(reg, "threshold"),
		ingestToVisible: reg.Histogram("slim_ingest_to_visible_seconds",
			"Time from a batch's acknowledged ingest until a published relink made it link-visible.", nil),
	}
	m.fresh = obs.NewFreshness(m.ingestToVisible)
	reg.GaugeFunc("slim_link_staleness_seconds",
		"Age of the oldest acknowledged batch not yet link-visible (0 when the pipeline is drained).",
		m.fresh.Staleness)
	reg.GaugeFunc("slim_ingest_acked_seq",
		"Latest acknowledged-and-buffered ingest batch sequence.",
		func() float64 { return float64(m.fresh.AckedSeq()) })
	reg.GaugeFunc("slim_link_visible_seq",
		"Newest ingest batch sequence whose records are link-visible.",
		func() float64 { return float64(m.fresh.VisibleSeq()) })
	reg.CounterFunc("slim_relink_runs_total",
		"Completed relink runs (including short-circuited ones).", e.runs.Load)
	reg.CounterFunc("slim_relink_panics_total",
		"Panics recovered in the relink path (failed runs and supervisor restarts).",
		e.relinkPanics.Load)
	reg.GaugeFunc("slim_relink_stuck_seconds",
		"How far the relink in flight is past its watchdog deadline (0 when idle or on time).",
		e.StuckSeconds)
	reg.CounterFunc("slim_relink_short_circuits_total",
		"Fully-clean relink runs that republished the cached result.", e.shortCircuits.Load)
	reg.CounterFunc("slim_relink_pairs_rescored_total",
		"Candidate pairs rescored across all rescored shards since boot.", e.edgeRescored.Load)
	reg.CounterFunc("slim_relink_pairs_retained_total",
		"Edge-store pairs retained without rescoring since boot (scoring work avoided).", e.edgeRetained.Load)
	reg.CounterFunc("slim_relink_pairs_dropped_total",
		"Edge-store pairs dropped since boot.", e.edgeDropped.Load)
	reg.GaugeFunc("slim_relink_dirty_shards",
		"Shards the latest relink actually rescored.",
		func() float64 { return float64(e.lastDirtyShards.Load()) })
	reg.GaugeFunc("slim_pending_records",
		"Buffered records awaiting the next relink (an I record pending on k shards counts k times).",
		func() float64 { return float64(e.Pending()) })
	reg.GaugeFunc("slim_pending_oldest_seconds",
		"Age of the oldest buffered record awaiting a relink.",
		func() float64 {
			oldest, ok := e.OldestPending()
			if !ok {
				return 0
			}
			return time.Since(oldest).Seconds()
		})
	reg.CounterFunc("slim_ingested_records_total",
		"Records accepted since construction, by dataset.",
		e.ingestedE.Load, obs.L("dataset", "e"))
	reg.CounterFunc("slim_ingested_records_total",
		"Records accepted since construction, by dataset.",
		e.ingestedI.Load, obs.L("dataset", "i"))
	reg.GaugeFunc("slim_entities",
		"Entities with applied histories, by dataset.",
		func() float64 {
			n := 0
			for _, sh := range e.shards {
				n += int(sh.entE.Load())
			}
			return float64(n)
		}, obs.L("dataset", "e"))
	reg.GaugeFunc("slim_entities",
		"Entities with applied histories, by dataset.",
		func() float64 { return float64(e.shards[0].entI.Load()) }, obs.L("dataset", "i"))
	reg.GaugeFunc("slim_links",
		"Links in the current published result.",
		func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			if e.cur == nil {
				return 0
			}
			return float64(len(e.cur.Links))
		})
	reg.GaugeFunc("slim_link_version",
		"Version of the current published result.",
		func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			return float64(e.version)
		})
	// Edge-store memory visibility: materialize's output is the only place
	// links exist between runs, so its size must be observable before any
	// tiering/retention lands. Both read the lock-free shard mirrors.
	reg.GaugeFunc("slim_edge_store_pairs",
		"Retained scored edges across all shard edge stores.",
		func() float64 {
			var n int64
			for _, sh := range e.shards {
				if es := sh.edge.Load(); es != nil {
					n += es.Pairs
				}
			}
			return float64(n)
		})
	reg.GaugeFunc("slim_edge_store_resident_bytes",
		"Estimated resident bytes of all shard edge stores (scores, lineage and link caches).",
		func() float64 {
			var n int64
			for _, sh := range e.shards {
				if es := sh.edge.Load(); es != nil {
					n += es.ResidentBytes
				}
			}
			return float64(n)
		})
	reg.GaugeFunc("slim_run_journal_records",
		"Relink runs currently retained in the flight-recorder ring.",
		func() float64 { return float64(e.journal.size()) })
	// Publish-tail visibility (always registered; zeros until the first
	// published greedy run). Gauges describe the latest publish, counters
	// accumulate since boot — all read the lock-free tailStats mirror.
	tailGauge := func(f func(*slim.PublishTailStats) float64) func() float64 {
		return func() float64 {
			if p := e.tailStats.Load(); p != nil {
				return f(p)
			}
			return 0
		}
	}
	tailCounter := func(f func(*slim.PublishTailStats) uint64) func() uint64 {
		return func() uint64 {
			if p := e.tailStats.Load(); p != nil {
				return f(p)
			}
			return 0
		}
	}
	reg.GaugeFunc("slim_publish_tail_edges",
		"Edges in the publish tail's maintained sorted order.",
		tailGauge(func(t *slim.PublishTailStats) float64 { return float64(t.Edges) }))
	reg.GaugeFunc("slim_publish_tail_reused_prefix_len",
		"Matched links the latest publish reused verbatim from the previous run.",
		tailGauge(func(t *slim.PublishTailStats) float64 { return float64(t.ReusedPrefixLen) }))
	reg.GaugeFunc("slim_publish_tail_suffix_walked",
		"Sorted-order entries the latest publish re-walked below the first changed position.",
		tailGauge(func(t *slim.PublishTailStats) float64 { return float64(t.SuffixWalked) }))
	reg.CounterFunc("slim_publish_tail_full_rebuilds_total",
		"Publish-tail full merge+match rebuilds (first build, epoch invalidations, failed runs).",
		tailCounter(func(t *slim.PublishTailStats) uint64 { return t.FullRebuilds }))
	reg.CounterFunc("slim_publish_tail_applies_total",
		"Publish-tail incremental delta applies.",
		tailCounter(func(t *slim.PublishTailStats) uint64 { return t.Applies }))
	reg.CounterFunc("slim_threshold_fit_total",
		"Stop-threshold selections, by whether the detector ran or the cached fit was reused bit-identically.",
		tailCounter(func(t *slim.PublishTailStats) uint64 { return t.ThresholdFits }),
		obs.L("result", "fit"))
	reg.CounterFunc("slim_threshold_fit_total",
		"Stop-threshold selections, by whether the detector ran or the cached fit was reused bit-identically.",
		tailCounter(func(t *slim.PublishTailStats) uint64 { return t.ThresholdReuses }),
		obs.L("result", "reused"))
	return m
}

// New builds an engine seeded with the given datasets (either may be
// empty: a service typically starts empty and is fed over ingest). The
// seed datasets are validated and min-records filtered once, the temporal
// grid and spatial level are resolved once, and the shards are built in
// parallel.
func New(dsE, dsI slim.Dataset, cfg Config) (*Engine, error) {
	if cfg.Shards == 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.Shards < 1 {
		return nil, errors.New("engine: Shards must be >= 1")
	}
	if cfg.Debounce == 0 {
		cfg.Debounce = DefaultDebounce
	}
	// One-time global preparation: validation, min-records filtering, and
	// grid resolution (shared epoch + spatial level) all happen in the
	// root package so shards and single Linkers can never disagree.
	p, err := slim.PrepareLinkage(dsE, dsI, cfg.Link)
	if err != nil {
		return nil, err
	}
	cfg.Link = p.Config
	level := p.Config.SpatialLevel

	// Hash-partition the E records; every shard links its partition
	// against the full I dataset.
	parts := make([]slim.Dataset, cfg.Shards)
	for s := range parts {
		parts[s].Name = fmt.Sprintf("%s/shard%d", p.E.Name, s)
	}
	for _, r := range p.E.Records {
		s := shardOf(r.Entity, cfg.Shards)
		parts[s].Records = append(parts[s].Records, r)
	}

	e := &Engine{
		cfg:     cfg,
		level:   level,
		epoch:   p.EpochUnix,
		shards:  make([]*shard, cfg.Shards),
		journal: newJournal(cfg.RunJournal),
		kick:    make(chan struct{}, 1),
		stopCh:  make(chan struct{}),
		done:    make(chan struct{}),
	}
	opt := slim.ShardOptions{EpochUnix: p.EpochUnix, SpatialLevel: level}
	errs := make([]error, cfg.Shards)
	var wg sync.WaitGroup
	for s := 0; s < cfg.Shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			lk, err := slim.NewShardLinker(parts[s], p.I, cfg.Link, opt)
			if err != nil {
				errs[s] = err
				return
			}
			sh := &shard{lk: lk}
			sh.syncCounts()
			// Shard construction already built the candidate index (one
			// initial epoch per shard, in parallel with the others);
			// publish its stats before the shard is shared.
			sh.idx.Store(lk.CandidateIndexStats())
			e.shards[s] = sh
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Compile every shard's scoring read path now, while construction is
	// already parallel, so the first relink starts scoring immediately.
	// The global E entity count must be pinned first: the first rescore
	// passes it to SetTotalEntitiesE, and pinning it after compiling would
	// move the IDF epoch and throw all of this work away.
	totalE := 0
	for _, sh := range e.shards {
		totalE += len(sh.lk.EntitiesE())
	}
	for _, sh := range e.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.lk.SetTotalEntitiesE(totalE)
			sh.lk.Precompile()
		}(sh)
	}
	wg.Wait()
	if cfg.Link.Matcher != slim.MatcherHungarian {
		e.tail = slim.NewPublishTail(cfg.Link.Threshold)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e.metrics = newEngMetrics(reg, e)
	e.health = obs.NewHealth(reg, "relink")
	return e, nil
}

// shardOf maps an E entity to its owning shard.
func shardOf(id slim.EntityID, n int) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(n))
}

// NumShards returns the shard count.
func (e *Engine) NumShards() int { return len(e.shards) }

// SpatialLevel returns the history grid level shared by every shard.
func (e *Engine) SpatialLevel() int { return e.level }

// SetPersister attaches the durability hook. Recovery attaches it after
// re-feeding persisted records (so they are not logged twice); from then
// on every AddE/AddI batch is logged before it is buffered.
func (e *Engine) SetPersister(p Persister) {
	e.pMu.Lock()
	e.persist = p
	e.pMu.Unlock()
}

func (e *Engine) persister() Persister {
	e.pMu.RLock()
	defer e.pMu.RUnlock()
	return e.persist
}

// AddE ingests records of the first dataset. Records are buffered on their
// owning shard and applied by the next relink; ingest never blocks behind
// a running linkage. Like Linker.AddE, streamed records bypass the
// MinRecords seed filter. With a persister attached, the batch is durably
// logged first; an error rejects the whole batch (nothing is buffered).
func (e *Engine) AddE(recs ...slim.Record) error {
	if len(recs) == 0 {
		return nil
	}
	if p := e.persister(); p != nil {
		if err := p.LogE(recs); err != nil {
			return err
		}
	}
	e.BufferE(recs...)
	return nil
}

// AddI ingests records of the second dataset. Every shard scores its E
// partition against the full I dataset, so an I record fans out to all
// shards (and dirties them all).
func (e *Engine) AddI(recs ...slim.Record) error {
	if len(recs) == 0 {
		return nil
	}
	if p := e.persister(); p != nil {
		if err := p.LogI(recs); err != nil {
			return err
		}
	}
	e.BufferI(recs...)
	return nil
}

// BufferE enqueues first-dataset records onto their owning shards'
// pending queues WITHOUT consulting the persister. It exists for callers
// that have already made the batch durable through another path — the
// binary ingest plane logs the wire bytes verbatim (storage.LogEncoded)
// and recovery re-feeds records the WAL already holds. Everything else
// must go through AddE.
func (e *Engine) BufferE(recs ...slim.Record) {
	if len(recs) == 0 {
		return
	}
	if len(e.shards) == 1 {
		e.shards[0].buffer(true, recs)
	} else {
		// Group per shard first so each queue is taken once per batch, not
		// once per record — the ingest plane's hot path.
		parts := make([][]slim.Record, len(e.shards))
		for _, r := range recs {
			s := shardOf(r.Entity, len(e.shards))
			parts[s] = append(parts[s], r)
		}
		for s, part := range parts {
			if len(part) > 0 {
				e.shards[s].buffer(true, part)
			}
		}
	}
	e.ingestedE.Add(uint64(len(recs)))
	// Acked AFTER buffering: every sequence at or below a freshness mark
	// taken before a drain is guaranteed to be in the shard queues, so the
	// relink that drains them may legally declare them link-visible.
	e.metrics.fresh.Acked(time.Now())
	e.scheduleRelink()
}

// BufferI enqueues second-dataset records, replicated to every shard's
// pending queue, without consulting the persister (see BufferE).
func (e *Engine) BufferI(recs ...slim.Record) {
	if len(recs) == 0 {
		return
	}
	for _, sh := range e.shards {
		sh.buffer(false, recs)
	}
	e.ingestedI.Add(uint64(len(recs)))
	e.metrics.fresh.Acked(time.Now()) // after buffering; see BufferE
	e.scheduleRelink()
}

// OldestPending returns the enqueue time of the oldest record still
// buffered for a future relink; ok is false when nothing is pending.
// Together with Pending it is the engine's queue/backpressure state: the
// ingest plane sheds load when the depth or this age exceeds its budget.
func (e *Engine) OldestPending() (oldest time.Time, ok bool) {
	for _, sh := range e.shards {
		sh.pendMu.Lock()
		if len(sh.pendE)+len(sh.pendI) > 0 && (oldest.IsZero() || sh.pendSince.Before(oldest)) {
			oldest = sh.pendSince
		}
		sh.pendMu.Unlock()
	}
	return oldest, !oldest.IsZero()
}

// Run drains pending ingest, re-scores every dirty shard (clean shards
// reuse their cached edges), and publishes the merged, globally matched
// and thresholded result. Runs are serialized; ingest and queries proceed
// concurrently.
//
// A panic anywhere in the run — a shard goroutine or the merge/match
// path — is contained: the run is marked failed, the previous published
// result is returned unchanged (version not bumped, persister not
// notified, freshness watermark not advanced), every shard is marked
// for an unconditional rescore, slim_relink_panics_total increments,
// and the relink health domain degrades until the next successful run.
func (e *Engine) Run() slim.Result { return e.run("manual") }

// run is the shared body of manual and background relinks; trigger is
// recorded verbatim in the flight-recorder entry this run appends.
func (e *Engine) run(trigger string) slim.Result {
	e.runMu.Lock()
	defer e.runMu.Unlock()
	// Arm the watchdog: slim_relink_stuck_seconds reads this while the
	// run is in flight.
	e.runStartNano.Store(time.Now().UnixNano())
	defer e.runStartNano.Store(0)

	rec := RunRecord{
		Seq:     e.runSeq.Add(1),
		Trigger: trigger,
		Start:   time.Now(),
	}
	// Every attempt lands in the journal — successes, short circuits and
	// contained panics alike — so the ring replays the engine's recent
	// decision history without gaps.
	defer func() {
		rec.Duration = time.Since(rec.Start)
		e.mu.Lock()
		rec.Version = e.version
		e.mu.Unlock()
		e.journal.add(rec)
	}()

	res, err := e.runContained(&rec)
	if err == nil {
		e.health.Recover()
		return res
	}
	rec.Panicked = true
	rec.PanicMsg = err.Error()
	e.relinkPanics.Add(1)
	// Shards the failed run did rescore produced edge deltas the publish
	// tail never consumed; its maintained order can no longer be trusted.
	e.tailValid = false
	e.health.Degrade(err.Error())
	if e.cfg.Logger != nil {
		e.cfg.Logger.Error("relink run panicked; previous result republished",
			"component", "engine", "error", err)
	}
	// The failed run's shard state can no longer be trusted as clean:
	// force a full rescore next run (pending buffers are intact for
	// shards that never got to drain).
	for _, sh := range e.shards {
		sh.forceDirty.Store(true)
	}
	e.mu.Lock()
	cur := e.cur
	e.mu.Unlock()
	if cur != nil {
		return *cur
	}
	return slim.Result{SpatialLevel: e.level}
}

// StuckSeconds reports how far the relink in flight is past the
// watchdog deadline — the slim_relink_stuck_seconds gauge. It is 0 when
// the engine is idle, the run is still within its deadline, or the
// watchdog is disabled (RunDeadline < 0).
func (e *Engine) StuckSeconds() float64 {
	startNano := e.runStartNano.Load()
	if startNano == 0 {
		return 0
	}
	dl := e.cfg.runDeadline()
	if dl < 0 {
		return 0
	}
	over := time.Since(time.Unix(0, startNano)) - dl
	if over <= 0 {
		return 0
	}
	return over.Seconds()
}

// Health returns the relink failure domain: degraded (with the
// recovered panic as the cause) after a failed run, healthy again after
// the next successful publish.
func (e *Engine) Health() (obs.HealthState, string, time.Time) {
	return e.health.State()
}

// hitFault consults the injected fault site; any injected signal is a
// panic here (the engine sites exist to exercise panic containment).
func (e *Engine) hitFault(site string) {
	if err := e.cfg.Fault.Hit(site); err != nil {
		panic(err)
	}
}

// guarded runs fn, converting a panic into an error carried back to the
// spawning goroutine (a panic that stayed in a shard goroutine would
// kill the process — recover only works on the panicking goroutine's
// own stack).
func guarded(what string, fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%s: panic: %v\n%s", what, r, debug.Stack())
		}
	}()
	fn()
	return nil
}

// shardUnlocker releases the shards' runMu exactly once, whether the
// run completes, short-circuits, or panics.
type shardUnlocker struct {
	shards   []*shard
	released bool
}

func (u *shardUnlocker) release() {
	if u.released {
		return
	}
	u.released = true
	for _, sh := range u.shards {
		sh.runMu.Unlock()
	}
}

// runContained is the relink body; a panic on any participating
// goroutine surfaces as err (never as a crash). It fills rec — the
// run's flight-recorder entry — as it goes; the caller stamps the final
// version/duration and journals it on every exit path.
func (e *Engine) runContained(rec *RunRecord) (res slim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("relink: panic: %v\n%s", r, debug.Stack())
		}
	}()
	start := time.Now()

	// Phase 1: apply pending ingest on every shard in parallel, so the
	// global entity count below reflects this run's records.
	for _, sh := range e.shards {
		sh.runMu.Lock()
	}
	locks := &shardUnlocker{shards: e.shards}
	defer locks.release()
	// The freshness mark is taken before the drain below, so every batch
	// acknowledged at or below it is already sitting in the shard queues
	// and will be link-visible once this run publishes.
	mark := e.metrics.fresh.Mark()
	dirty := make([]bool, len(e.shards))
	panics := make([]error, len(e.shards))
	var wg sync.WaitGroup
	for s, sh := range e.shards {
		wg.Add(1)
		go func(s int, sh *shard) {
			defer wg.Done()
			panics[s] = guarded("apply shard", func() {
				e.hitFault(FaultApply)
				dirty[s] = sh.applyPending()
			})
		}(s, sh)
	}
	wg.Wait()
	for _, perr := range panics {
		if perr != nil {
			return slim.Result{}, perr
		}
	}
	e.metrics.stageApply.ObserveSince(start)
	rec.ApplyDur = time.Since(start)
	for _, d := range dirty {
		if d {
			rec.DirtyShards++
		}
	}

	// Fully-clean short-circuit: when no shard has work and a result is
	// already published, re-matching and re-thresholding the identical
	// edge set would reproduce it bit for bit — republish it instead. The
	// version is NOT bumped (the published links did not change), and the
	// persister is not notified (there is nothing new to checkpoint).
	allClean := true
	for _, d := range dirty {
		allClean = allClean && !d
	}
	if allClean {
		e.mu.Lock()
		cur := e.cur
		e.mu.Unlock()
		if cur != nil {
			// This run performed no index or edge-store work at all: zero
			// every mirror's last-* fields (see the equivalent pass on the
			// normal path) so /v1/stats does not echo an older relink's
			// work next to runs_short_circuited. The publish-tail mirror
			// gets the same treatment: the republished matching was reused
			// in full, with no suffix walk and no threshold refit.
			e.zeroWorkMirrors(nil)
			if p := e.tailStats.Load(); p != nil {
				cp := *p
				cp.ReusedPrefixLen, cp.SuffixWalked = cp.Matched, 0
				cp.LastFull = false
				cp.LastUpdate, cp.LastMatch, cp.LastThreshold = 0, 0, 0
				e.tailStats.Store(&cp)
			}
			locks.release()
			rec.ShortCircuit = true
			rec.Links = int64(len(cur.Links))
			e.lastDirtyShards.Store(0)
			e.runs.Add(1)
			e.shortCircuits.Add(1)
			e.mu.Lock()
			e.lastRun = time.Now()
			e.mu.Unlock()
			// The republished result still covers every drained batch, so
			// the freshness watermark advances here too — staleness must
			// return to zero after a quiesce, not stick at the last ack.
			now := time.Now()
			e.metrics.fresh.Visible(mark, now)
			e.metrics.relinkSeconds.Observe(now.Sub(start).Seconds())
			return *cur, nil
		}
	}

	// Phase 2: re-score the dirty shards in parallel under the refreshed
	// global E entity count; clean shards keep their cached edges (scored
	// under the count at their last rescore — a deliberately stale but
	// bounded approximation that preserves the dirty-shard optimization).
	totalE := 0
	for _, sh := range e.shards {
		totalE += len(sh.lk.EntitiesE())
	}
	// Edge lineage is stamped with the version this run will publish on
	// success (version+1), so a pair's RescoredSeq joins directly against
	// /v1/stats versions and the run journal. A panicked run leaves some
	// lineage stamped one version ahead, but forceDirty guarantees the
	// next successful run re-stamps everything it touched.
	e.mu.Lock()
	lineageSeq := e.version + 1
	e.mu.Unlock()
	rescoreStart := time.Now()
	nDirty := 0
	for s, sh := range e.shards {
		if !dirty[s] {
			continue
		}
		nDirty++
		wg.Add(1)
		go func(s int, sh *shard) {
			defer wg.Done()
			panics[s] = guarded("rescore shard", func() {
				e.hitFault(FaultRescore)
				sh.rescore(totalE, lineageSeq)
			})
		}(s, sh)
	}
	wg.Wait()
	for _, perr := range panics {
		if perr != nil {
			return slim.Result{}, perr
		}
	}
	e.metrics.stageRescore.ObserveSince(rescoreStart)
	rec.RescoreDur = time.Since(rescoreStart)
	// The incremental candidate-index update runs inside rescore; its cost
	// is reported separately as the sum of the dirty shards' index update
	// times (serial work, a subset of the parallel rescore wall time).
	var idxTime time.Duration
	for s, sh := range e.shards {
		if dirty[s] {
			if ix := sh.idx.Load(); ix != nil {
				idxTime += ix.LastUpdate
			}
		}
	}
	e.metrics.stageIndex.Observe(idxTime.Seconds())
	rec.IndexDur = idxTime
	e.lastDirtyShards.Store(int64(nDirty))
	// Clean shards performed no index or edge-store update this run: zero
	// the last-* fields of their mirrors so the aggregated CandidateIndex
	// and EdgeStore blocks report this relink's work, not a stale echo of
	// an older one (state fields — signatures, buckets, candidates,
	// retained pairs — stay as-is).
	e.zeroWorkMirrors(dirty)
	// Accumulate the relink-delta counters of the shards this run actually
	// re-scored (the cumulative numbers behind /debug/vars).
	for s, sh := range e.shards {
		if !dirty[s] || sh.stats.EdgeStore == nil {
			continue
		}
		es := sh.stats.EdgeStore
		e.edgeRescored.Add(uint64(es.Rescored))
		e.edgeRetained.Add(uint64(es.Retained))
		e.edgeDropped.Add(uint64(es.Dropped))
		rec.Rescored += es.Rescored
		rec.Retained += es.Retained
		rec.Dropped += es.Dropped
		rec.FullRescore = rec.FullRescore || es.FullRescore
	}

	// Merge. CandidatePairs / PositiveEdges / LSH describe the published
	// result and sum over every shard; the comparison counters report work
	// and sum only over the shards this run actually re-scored. With the
	// publish tail active, the merge stage collects only the dirty shards'
	// exact edge deltas (captured here, while the shard locks are held)
	// instead of concatenating every shard's edge list — the full
	// concatenation happens lazily, only when the tail must rebuild.
	mergeStart := time.Now()
	var deltas []slim.EdgeDelta
	shardEdges := make([][]slim.Link, len(e.shards))
	var stats slim.Stats
	for s, sh := range e.shards {
		shardEdges[s] = sh.edges
		if e.tail != nil && dirty[s] {
			deltas = append(deltas, sh.lk.LastEdgeDelta())
		}
		stats.CandidatePairs += sh.stats.CandidatePairs
		stats.PositiveEdges += sh.stats.PositiveEdges
		if dirty[s] {
			stats.BinComparisons += sh.stats.BinComparisons
			stats.RecordComparisons += sh.stats.RecordComparisons
			stats.AlibiBinPairs += sh.stats.AlibiBinPairs
		}
		if sh.stats.LSH != nil {
			if stats.LSH == nil {
				lshCopy := *sh.stats.LSH
				stats.LSH = &lshCopy
			} else {
				stats.LSH.Candidates += sh.stats.LSH.Candidates
				if sh.stats.LSH.SignatureLen > stats.LSH.SignatureLen {
					stats.LSH.SignatureLen = sh.stats.LSH.SignatureLen
					stats.LSH.Bands = sh.stats.LSH.Bands
					stats.LSH.Rows = sh.stats.LSH.Rows
				}
			}
		}
		if sh.stats.EdgeStore != nil {
			if stats.EdgeStore == nil {
				stats.EdgeStore = &slim.EdgeStoreStats{}
			}
			// State fields (Pairs, Epoch) describe the published result and
			// sum over every shard; the work fields sum only over the shards
			// this run actually re-scored, mirroring the comparison counters.
			stats.EdgeStore.Pairs += sh.stats.EdgeStore.Pairs
			stats.EdgeStore.Epoch += sh.stats.EdgeStore.Epoch
			stats.EdgeStore.ResidentBytes += sh.stats.EdgeStore.ResidentBytes
			if dirty[s] {
				stats.EdgeStore.Retained += sh.stats.EdgeStore.Retained
				stats.EdgeStore.Rescored += sh.stats.EdgeStore.Rescored
				stats.EdgeStore.Dropped += sh.stats.EdgeStore.Dropped
				stats.EdgeStore.FullRescore = stats.EdgeStore.FullRescore || sh.stats.EdgeStore.FullRescore
				stats.EdgeStore.LastUpdate += sh.stats.EdgeStore.LastUpdate
			}
		}
	}
	locks.release()
	e.metrics.stageMerge.ObserveSince(mergeStart)
	rec.MergeDur = time.Since(mergeStart)
	rec.CandidatePairs = stats.CandidatePairs

	e.hitFault(FaultRelink)
	concat := func() []slim.Link {
		var all []slim.Link
		for _, part := range shardEdges {
			all = append(all, part...)
		}
		return all
	}
	var matched, links []slim.Link
	var thr slim.StopThreshold
	if e.tail != nil {
		if !e.tailValid {
			deltas = append(deltas, slim.EdgeDelta{Full: true})
		}
		// Invalid while mutating: a panic inside Publish leaves the tail
		// half-updated, and the flag stays false until the next success.
		e.tailValid = false
		matched, links, thr = e.tail.Publish(deltas, concat)
		e.tailValid = true
		ts := e.tail.Stats()
		e.tailStats.Store(&ts)
		e.metrics.stageMatch.Observe(ts.LastMatch.Seconds())
		rec.MatchDur = ts.LastMatch
		e.metrics.stageThreshold.Observe(ts.LastThreshold.Seconds())
		rec.ThresholdDur = ts.LastThreshold
		rec.TailReusedPrefix = ts.ReusedPrefixLen
		rec.TailFullRebuild = ts.LastFull
	} else {
		matchStart := time.Now()
		matched = slim.MatchLinks(e.cfg.Link.Matcher, concat())
		e.metrics.stageMatch.ObserveSince(matchStart)
		rec.MatchDur = time.Since(matchStart)
		thrStart := time.Now()
		thr = slim.SelectStopThreshold(e.cfg.Link.Threshold, slim.LinkScores(matched))
		e.metrics.stageThreshold.ObserveSince(thrStart)
		rec.ThresholdDur = time.Since(thrStart)
		links = slim.FilterLinks(matched, thr.Threshold)
	}
	res = slim.Result{
		Links:           links,
		Matched:         matched,
		Threshold:       thr.Threshold,
		ThresholdMethod: thr.Method,
		SpatialLevel:    e.level,
		Stats:           stats,
		Elapsed:         time.Since(start),
	}

	rec.Links = int64(len(res.Links))
	e.runs.Add(1)
	e.mu.Lock()
	e.cur = &res
	e.version++
	version := e.version
	e.lastRun = time.Now()
	e.mu.Unlock()

	// The result is published: every batch acknowledged before the drain
	// is now link-visible to queries.
	now := time.Now()
	e.metrics.fresh.Visible(mark, now)
	e.metrics.relinkSeconds.Observe(now.Sub(start).Seconds())

	// Give the persister the published result (still under runMu, so
	// checkpoints are serialized against the next relink).
	if p := e.persister(); p != nil {
		p.AfterRun(res, version)
	}
	return res, nil
}

// RestoreResult installs a previously published result, e.g. one loaded
// from a snapshot during recovery, so queries can be served before the
// first fresh relink. Subsequent runs continue the version sequence.
func (e *Engine) RestoreResult(res slim.Result, version uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cur = &res
	e.version = version
}

// Result returns the most recently published result; ok is false before
// the first run. The result's slices are shared — treat them as read-only.
func (e *Engine) Result() (res slim.Result, version uint64, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cur == nil {
		return slim.Result{}, 0, false
	}
	return *e.cur, e.version, true
}

// Links returns the current links (nil before the first run).
func (e *Engine) Links() []slim.Link {
	res, _, ok := e.Result()
	if !ok {
		return nil
	}
	return res.Links
}

// LinksFor returns the current links involving the given entity on either
// side.
func (e *Engine) LinksFor(id slim.EntityID) []slim.Link {
	var out []slim.Link
	for _, l := range e.Links() {
		if l.U == id || l.V == id {
			out = append(out, l)
		}
	}
	return out
}

// Explanation joins every provenance layer for one (u, v) pair: the
// shard-local score decomposition, candidate lineage and edge lineage,
// the engine's current published version, and — when it is still in the
// flight recorder — the journal entry of the run that last rescored the
// pair.
type Explanation struct {
	slim.PairExplanation
	// Shard is the shard that owns u (and answered the query).
	Shard int
	// Version is the published result version at query time. Lineage run
	// sequences are stamped with to-be-published versions, so for a pair
	// rescored by a successful run Edge.RescoredSeq <= Version.
	Version uint64
	// Run is the journal entry of the run that last rescored the pair;
	// nil when that run has aged out of the ring (or never journaled —
	// e.g. a result restored from a snapshot).
	Run *RunRecord
}

// Explain reports the full provenance of one pair, routed to the shard
// owning u. It briefly takes that shard's runMu (serializing with
// relinks, not with ingest or queries), so the answer is consistent
// with the shard's current linker state.
func (e *Engine) Explain(u, v slim.EntityID) Explanation {
	s := shardOf(u, len(e.shards))
	sh := e.shards[s]
	sh.runMu.Lock()
	pex := sh.lk.Explain(u, v)
	sh.runMu.Unlock()
	ex := Explanation{PairExplanation: pex, Shard: s}
	e.mu.Lock()
	ex.Version = e.version
	e.mu.Unlock()
	if pex.Edge.Linked {
		if rec, ok := e.journal.byVersion(pex.Edge.RescoredSeq); ok {
			ex.Run = &rec
		}
	}
	return ex
}

// Runs returns up to limit flight-recorder entries, newest first,
// skipping the offset newest (limit <= 0 = everything retained). total
// counts runs ever recorded, including entries already overwritten —
// the pagination contract behind /v1/runs.
func (e *Engine) Runs(limit, offset int) (recs []RunRecord, total uint64) {
	return e.journal.snapshot(limit, offset)
}

// RunJournalCap returns the flight-recorder ring capacity.
func (e *Engine) RunJournalCap() int { return e.journal.capacity() }

// RunJournalLen returns how many runs the flight recorder currently
// retains (at most RunJournalCap).
func (e *Engine) RunJournalLen() int { return e.journal.size() }

// Stats is a point-in-time snapshot of the engine's operational state.
type Stats struct {
	Shards       int
	SpatialLevel int
	// EntitiesE / EntitiesI count entities with applied histories, summed
	// over shards (I entities are counted once; they are replicated).
	EntitiesE int
	EntitiesI int
	// IngestedE / IngestedI count records accepted since construction.
	IngestedE uint64
	IngestedI uint64
	// PendingRecords counts buffered records not yet applied by a relink
	// (an I record pending on k shards counts k times).
	PendingRecords int
	// PendingOldestAge is how long the oldest buffered record has been
	// waiting for a relink (zero when nothing is pending) — the relink-lag
	// signal behind the ingest plane's latency-budget shedding.
	PendingOldestAge time.Duration
	// DirtyShards counts shards that the next run will re-score.
	DirtyShards int
	// DirtyShardsLastRun counts shards the latest relink actually
	// re-scored (clean shards reused their cached edges).
	DirtyShardsLastRun int
	// CandidateIndex aggregates the shards' incremental LSH
	// candidate-index snapshots; nil when LSH is disabled. Counters are
	// summed across shards (each shard indexes its E partition against a
	// full I replica, so SignaturesI counts every replica and LastUpdate
	// is the summed per-shard index time of the last relink); geometry
	// fields and Epoch come from the widest shard grid.
	CandidateIndex *slim.CandidateIndexStats
	// EdgeStore aggregates the shards' incremental edge-store snapshots
	// (nil before the first rescore). Pairs and Epoch sum over every
	// shard; the per-run work fields (Retained/Rescored/Dropped/
	// FullRescore/LastUpdate) describe the latest relink — clean shards
	// contribute zeros, so the block reports that relink's actual work.
	EdgeStore *slim.EdgeStoreStats
	// PublishTail reports the incremental merge/match/threshold pipeline:
	// maintained edge-order size, the matched-prefix reuse and suffix walk
	// of the latest publish, full-rebuild and delta-apply counts, and
	// threshold fit-vs-reuse counters. Nil with the Hungarian matcher or
	// before the first published run.
	PublishTail *slim.PublishTailStats
	// EdgeRescoredTotal / EdgeRetainedTotal / EdgeDroppedTotal accumulate
	// the relink-delta work across every rescored shard since
	// construction; RunsShortCircuited counts fully-clean Run calls that
	// republished the cached result without re-matching. These are the
	// service's incremental-savings odometer (exported over expvar).
	EdgeRescoredTotal  uint64
	EdgeRetainedTotal  uint64
	EdgeDroppedTotal   uint64
	RunsShortCircuited uint64
	// RelinkPanics counts panics recovered anywhere in the relink path
	// (each one is a failed run that republished the previous result);
	// LoopRestarts counts supervisor restarts of the background
	// scheduler after it panicked.
	RelinkPanics uint64
	LoopRestarts uint64
	// Runs and Version count completed relinks and published results.
	Runs    uint64
	Version uint64
	// LastRun is the completion time of the latest relink (zero before the
	// first).
	LastRun time.Time
	// Links and Threshold summarize the current result.
	Links     int
	Threshold float64
}

// Pending counts buffered records not yet applied by a relink. It only
// touches the ingest buffers, so it never waits behind a running linkage.
func (e *Engine) Pending() int {
	n := 0
	for _, sh := range e.shards {
		n += sh.pending()
	}
	return n
}

// Stats returns an operational snapshot. It reads only ingest buffers and
// atomic mirrors, so it never waits behind a running linkage (entity
// counts may trail a relink in flight by one run).
func (e *Engine) Stats() Stats {
	st := Stats{
		Shards:             len(e.shards),
		SpatialLevel:       e.level,
		IngestedE:          e.ingestedE.Load(),
		IngestedI:          e.ingestedI.Load(),
		Runs:               e.runs.Load(),
		RelinkPanics:       e.relinkPanics.Load(),
		LoopRestarts:       e.loopRestarts.Load(),
		DirtyShardsLastRun: int(e.lastDirtyShards.Load()),
		EdgeRescoredTotal:  e.edgeRescored.Load(),
		EdgeRetainedTotal:  e.edgeRetained.Load(),
		EdgeDroppedTotal:   e.edgeDropped.Load(),
		RunsShortCircuited: e.shortCircuits.Load(),
	}
	var oldestPend time.Time
	for s, sh := range e.shards {
		sh.pendMu.Lock()
		pending := len(sh.pendE) + len(sh.pendI)
		since := sh.pendSince
		sh.pendMu.Unlock()
		st.PendingRecords += pending
		if pending > 0 && (oldestPend.IsZero() || since.Before(oldestPend)) {
			oldestPend = since
		}
		if pending > 0 || !sh.ran.Load() {
			st.DirtyShards++
		}
		st.EntitiesE += int(sh.entE.Load())
		if s == 0 {
			st.EntitiesI = int(sh.entI.Load())
		}
		if ix := sh.idx.Load(); ix != nil {
			st.CandidateIndex = mergeIndexStats(st.CandidateIndex, ix)
		}
		if es := sh.edge.Load(); es != nil {
			st.EdgeStore = mergeEdgeStats(st.EdgeStore, es)
		}
	}
	if !oldestPend.IsZero() {
		st.PendingOldestAge = time.Since(oldestPend)
	}
	if p := e.tailStats.Load(); p != nil {
		cp := *p
		st.PublishTail = &cp
	}
	if ci := st.CandidateIndex; ci != nil && ci.Buckets > 0 {
		ci.Occupancy = float64(ci.Memberships) / float64(ci.Buckets)
	}
	e.mu.Lock()
	st.Version = e.version
	st.LastRun = e.lastRun
	if e.cur != nil {
		st.Links = len(e.cur.Links)
		st.Threshold = e.cur.Threshold
	}
	e.mu.Unlock()
	return st
}

// mergeIndexStats folds one shard's candidate-index snapshot into the
// aggregate (see the Stats.CandidateIndex doc for the summation rules).
// The snapshot pointers themselves are never mutated — agg is a private
// accumulator.
func mergeIndexStats(agg, ix *slim.CandidateIndexStats) *slim.CandidateIndexStats {
	if agg == nil {
		cp := *ix
		return &cp
	}
	if ix.SignatureLen > agg.SignatureLen {
		agg.SignatureLen = ix.SignatureLen
		agg.Bands = ix.Bands
		agg.Rows = ix.Rows
		agg.NumBuckets = ix.NumBuckets
	}
	if ix.Epoch > agg.Epoch {
		agg.Epoch = ix.Epoch
	}
	agg.SignaturesE += ix.SignaturesE
	agg.SignaturesI += ix.SignaturesI
	agg.Buckets += ix.Buckets
	agg.Memberships += ix.Memberships
	agg.Candidates += ix.Candidates
	agg.LastDirty += ix.LastDirty
	agg.LastRebuild = agg.LastRebuild || ix.LastRebuild
	agg.LastUpdate += ix.LastUpdate
	return agg
}

// zeroWorkMirrors zeroes the last-relink work fields of every shard's
// index and edge-store stat mirrors except the shards marked dirty (nil
// dirty = zero them all, the fully-clean short-circuit case). State
// fields — signatures, buckets, candidates, retained pairs — stay as-is.
// Callers hold the shards' runMu.
func (e *Engine) zeroWorkMirrors(dirty []bool) {
	for s, sh := range e.shards {
		if dirty != nil && dirty[s] {
			continue
		}
		if p := sh.idx.Load(); p != nil && (p.LastDirty != 0 || p.LastRebuild || p.LastUpdate != 0) {
			cp := *p
			cp.LastDirty, cp.LastRebuild, cp.LastUpdate = 0, false, 0
			sh.idx.Store(&cp)
		}
		if p := sh.edge.Load(); p != nil && (p.Rescored != 0 || p.Retained != 0 || p.Dropped != 0 || p.FullRescore || p.LastUpdate != 0) {
			cp := *p
			cp.Rescored, cp.Retained, cp.Dropped, cp.FullRescore, cp.LastUpdate = 0, 0, 0, false, 0
			sh.edge.Store(&cp)
		}
	}
}

// mergeEdgeStats folds one shard's edge-store snapshot into the aggregate
// (see Stats.EdgeStore for the summation rules). Snapshot pointers are
// never mutated — agg is a private accumulator.
func mergeEdgeStats(agg, es *slim.EdgeStoreStats) *slim.EdgeStoreStats {
	if agg == nil {
		cp := *es
		return &cp
	}
	agg.Pairs += es.Pairs
	agg.Epoch += es.Epoch
	agg.ResidentBytes += es.ResidentBytes
	agg.Retained += es.Retained
	agg.Rescored += es.Rescored
	agg.Dropped += es.Dropped
	agg.FullRescore = agg.FullRescore || es.FullRescore
	agg.LastUpdate += es.LastUpdate
	return agg
}

// scheduleRelink nudges the background scheduler (no-op when not started;
// the kick channel holds one pending nudge).
func (e *Engine) scheduleRelink() {
	select {
	case e.kick <- struct{}{}:
	default:
	}
}

// Start launches the background relink scheduler: after ingest has been
// quiet for the configured debounce, the engine re-links automatically.
// Start is idempotent and a no-op after Close.
func (e *Engine) Start() {
	e.lifeMu.Lock()
	defer e.lifeMu.Unlock()
	if e.started || e.closed {
		return
	}
	e.started = true
	go e.supervise()
}

// supervise runs the debounced scheduler under a restart supervisor: a
// panic escaping the loop (Run itself contains relink panics, so this
// is the last line of defense for the scheduling machinery) is
// recovered, counted, and the loop is restarted after a capped
// exponential backoff — a crash in background scheduling must never
// take down ingest and query serving with it.
func (e *Engine) supervise() {
	defer close(e.done)
	backoff := 10 * time.Millisecond
	const maxBackoff = 5 * time.Second
	for {
		err := guarded("relink scheduler", e.loop)
		if err == nil {
			return // clean stop via Close
		}
		e.relinkPanics.Add(1)
		e.loopRestarts.Add(1)
		if e.cfg.Logger != nil {
			e.cfg.Logger.Error("relink scheduler panicked; restarting",
				"component", "engine", "backoff", backoff, "error", err)
		}
		select {
		case <-e.stopCh:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// loop is the debounced background relink scheduler.
func (e *Engine) loop() {
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-e.stopCh:
			return
		case <-e.kick:
			timer.Reset(e.cfg.Debounce)
		debounce:
			for {
				select {
				case <-e.stopCh:
					timer.Stop()
					return
				case <-e.kick:
					// More ingest arrived: push the relink back.
					timer.Reset(e.cfg.Debounce)
				case <-timer.C:
					break debounce
				}
			}
			e.hitFault(FaultLoop)
			e.run("background")
		}
	}
}

// Close stops the background scheduler, waiting for an in-flight relink
// to finish. It is idempotent and safe to call concurrently with Start,
// scheduleRelink, and a second Close: every Close call that observes a
// started scheduler waits for it to exit. The engine remains queryable;
// Run may still be called manually.
func (e *Engine) Close() {
	e.lifeMu.Lock()
	if !e.closed {
		e.closed = true
		close(e.stopCh)
	}
	started := e.started
	e.lifeMu.Unlock()
	if started {
		<-e.done
	}
}
