package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"slim"
)

// TestRunJournalRecordsEveryRun drives manual and clean runs through a
// small engine and checks the flight recorder: every run attempt lands
// in the ring (including zero-work short circuits), records come back
// newest first, triggers and decisions are recorded, and successful
// lineage-relevant fields line up with the published version.
func TestRunJournalRecordsEveryRun(t *testing.T) {
	ground := slim.GenerateCab(slim.CabOptions{NumTaxis: 10, Days: 2, MeanRecordIntervalSec: 360, Seed: 99})
	w := slim.SampleWorkload(&ground, slim.SampleOptions{
		IntersectionRatio: 0.5, InclusionProbE: 0.5, InclusionProbI: 0.5, Seed: 100,
	})
	eng, err := New(w.E, w.I, Config{Shards: 2, Link: slim.Defaults(), Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	eng.Run()        // full first link
	eng.Run()        // fully clean: short circuit
	res := eng.Run() // still clean
	if len(res.Links) == 0 {
		t.Fatal("workload produced no links")
	}

	recs, total := eng.Runs(0, 0)
	if total != 3 || len(recs) != 3 {
		t.Fatalf("journal has %d records, total %d, want 3/3", len(recs), total)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Seq <= recs[i].Seq {
			t.Fatalf("records not newest first: seq %d before %d", recs[i-1].Seq, recs[i].Seq)
		}
	}
	first, second := recs[2], recs[1]
	if first.Trigger != "manual" || first.ShortCircuit || !first.FullRescore {
		t.Fatalf("first run record %+v, want manual full rescore", first)
	}
	if first.Version != 1 || first.Rescored == 0 || first.DirtyShards != 2 {
		t.Fatalf("first run record %+v, want version 1 with rescored work on 2 shards", first)
	}
	if !second.ShortCircuit || second.Version != 1 || second.DirtyShards != 0 {
		t.Fatalf("second run record %+v, want short circuit at version 1", second)
	}
	if second.Links != int64(len(res.Links)) {
		t.Fatalf("short-circuit record links %d, want %d", second.Links, len(res.Links))
	}

	// Pagination: limit/offset walk the same newest-first order.
	page, _ := eng.Runs(1, 1)
	if len(page) != 1 || page[0].Seq != recs[1].Seq {
		t.Fatalf("Runs(1, 1) = %+v, want the second-newest record", page)
	}
}

// TestRunJournalBoundedUnderHammer is the ring's bound gate: a small
// journal hammered by concurrent ingest, manual runs, and journal reads
// (run with -race in CI) must never retain more than its configured
// capacity, while the total run count keeps counting every attempt.
func TestRunJournalBoundedUnderHammer(t *testing.T) {
	ground := slim.GenerateCab(slim.CabOptions{NumTaxis: 8, Days: 1, MeanRecordIntervalSec: 600, Seed: 11})
	w := slim.SampleWorkload(&ground, slim.SampleOptions{
		IntersectionRatio: 0.5, InclusionProbE: 0.5, InclusionProbI: 0.5, Seed: 12,
	})
	const journalSize = 4
	eng, err := New(w.E, w.I, Config{
		Shards: 2, Link: slim.Defaults(), Debounce: time.Millisecond, RunJournal: journalSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.Start()

	lo, hi, _ := w.E.TimeRange()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Ingest churn keeps the background scheduler firing alongside the
	// manual runs below.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			rec := slim.NewRecord(slim.EntityID(fmt.Sprintf("hammer-%d", i%5)),
				37.2+float64(i%7)*0.01, -121.9, lo+int64(i)%(hi-lo))
			_ = eng.AddE(rec)
			time.Sleep(200 * time.Microsecond)
		}
	}()
	// Concurrent journal readers race the writers.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				recs, _ := eng.Runs(0, 0)
				if len(recs) > journalSize {
					panic(fmt.Sprintf("journal exceeded its bound: %d > %d", len(recs), journalSize))
				}
			}
		}()
	}
	for i := 0; i < 30; i++ {
		eng.Run()
		if n := eng.RunJournalLen(); n > journalSize {
			t.Fatalf("journal retains %d records, bound is %d", n, journalSize)
		}
	}
	close(stop)
	wg.Wait()

	recs, total := eng.Runs(0, 0)
	if len(recs) > journalSize {
		t.Fatalf("journal retains %d records, bound is %d", len(recs), journalSize)
	}
	if total < 30 {
		t.Fatalf("total runs %d, want at least the 30 manual ones", total)
	}
	if eng.RunJournalCap() != journalSize {
		t.Fatalf("journal capacity %d, want %d", eng.RunJournalCap(), journalSize)
	}
}

// TestEngineExplainJoinsJournal checks the engine-level provenance join:
// a published link explains with lineage whose run seq equals the
// version that produced it, and the joined journal entry is that run.
func TestEngineExplainJoinsJournal(t *testing.T) {
	ground := slim.GenerateCab(slim.CabOptions{NumTaxis: 10, Days: 2, MeanRecordIntervalSec: 360, Seed: 21})
	w := slim.SampleWorkload(&ground, slim.SampleOptions{
		IntersectionRatio: 0.6, InclusionProbE: 0.6, InclusionProbI: 0.6, Seed: 22,
	})
	eng, err := New(w.E, w.I, Config{Shards: 4, Link: slim.Defaults(), Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	res := eng.Run()
	if len(res.Links) == 0 {
		t.Fatal("workload produced no links")
	}
	_, version, _ := eng.Result()

	for _, l := range res.Links {
		ex := eng.Explain(l.U, l.V)
		if !ex.Edge.Linked || ex.Edge.Score != l.Score {
			t.Fatalf("link (%s, %s): edge lineage %+v does not match link score %v",
				l.U, l.V, ex.Edge, l.Score)
		}
		if ex.Edge.RescoredSeq > ex.Version {
			t.Fatalf("link (%s, %s): lineage seq %d > published version %d",
				l.U, l.V, ex.Edge.RescoredSeq, ex.Version)
		}
		if ex.Version != version {
			t.Fatalf("explain version %d, want %d", ex.Version, version)
		}
		if ex.Run == nil {
			t.Fatalf("link (%s, %s): no journal join for lineage seq %d", l.U, l.V, ex.Edge.RescoredSeq)
		}
		if ex.Run.Version != ex.Edge.RescoredSeq || ex.Run.Panicked {
			t.Fatalf("link (%s, %s): joined run %+v does not match lineage seq %d",
				l.U, l.V, ex.Run, ex.Edge.RescoredSeq)
		}
		if ex.Shard != shardOf(l.U, eng.NumShards()) {
			t.Fatalf("link (%s, %s): explained by shard %d, want %d",
				l.U, l.V, ex.Shard, shardOf(l.U, eng.NumShards()))
		}
	}
}
