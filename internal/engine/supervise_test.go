package engine

import (
	"strings"
	"testing"
	"time"

	"slim"
	"slim/internal/fault"
	"slim/internal/obs"
)

// faultedEngine builds a small seeded engine with an armed-able injector.
func faultedEngine(t *testing.T) (*Engine, *fault.Injector) {
	t.Helper()
	w := standardWorkload(12)
	inj := fault.New()
	eng, err := New(w.E, w.I, Config{
		Shards:   4,
		Link:     slim.Defaults(),
		Debounce: 5 * time.Millisecond,
		Fault:    inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, inj
}

// extraRecs returns a few fresh records for one new E entity so a run has
// pending work.
func extraRecs(n int, seed int64) []slim.Record {
	recs := make([]slim.Record, n)
	for i := range recs {
		recs[i] = slim.NewRecord("sup-extra", 40.0+float64(i)*0.001, -74.0, seed+int64(i*600))
	}
	return recs
}

// TestEngineRunPanicContained injects a panic into each relink phase in
// turn and verifies the failure is contained: Run returns the previous
// published result unchanged, the version is not bumped, the panic is
// counted, the relink health domain degrades, and the next (fault-free)
// run fully recovers — rescoring every shard and publishing fresh links.
func TestEngineRunPanicContained(t *testing.T) {
	for _, site := range []string{FaultApply, FaultRescore, FaultRelink} {
		t.Run(site, func(t *testing.T) {
			eng, inj := faultedEngine(t)
			base := eng.Run()
			_, v1, _ := eng.Result()
			if len(base.Links) == 0 {
				t.Fatal("baseline run produced no links")
			}

			if err := eng.AddE(extraRecs(6, 1)...); err != nil {
				t.Fatal(err)
			}
			inj.Arm(site, fault.Rule{Panic: "injected " + site, Count: 1})
			got := eng.Run()

			if _, v2, _ := eng.Result(); v2 != v1 {
				t.Fatalf("failed run bumped version: %d -> %d", v1, v2)
			}
			if len(got.Links) != len(base.Links) {
				t.Fatalf("failed run did not republish previous result: %d links vs %d",
					len(got.Links), len(base.Links))
			}
			st := eng.Stats()
			if st.RelinkPanics != 1 {
				t.Fatalf("RelinkPanics = %d, want 1", st.RelinkPanics)
			}
			if state, cause, _ := eng.Health(); state != obs.Degraded || !strings.Contains(cause, site) {
				t.Fatalf("health after panic = %v (%q), want degraded naming %s", state, cause, site)
			}

			// Fault exhausted (Count:1): the next run must succeed, rescore
			// every shard (forceDirty), and publish the pending records.
			res := eng.Run()
			if _, v3, _ := eng.Result(); v3 != v1+1 {
				t.Fatalf("recovery run version = %d, want %d", v3, v1+1)
			}
			if got := eng.Stats().DirtyShardsLastRun; got != eng.NumShards() {
				t.Fatalf("recovery run rescored %d shards, want all %d (forceDirty)",
					got, eng.NumShards())
			}
			if state, _, _ := eng.Health(); state != obs.Healthy {
				t.Fatalf("health after recovery = %v, want healthy", state)
			}
			_ = res
			if st := eng.Stats(); st.PendingRecords != 0 {
				t.Fatalf("records still pending after recovery run: %d", st.PendingRecords)
			}
		})
	}
}

// TestEngineFailedRunSkipsPersister verifies a panicked run never reaches
// the persister: no AfterRun, so no checkpoint can capture poisoned state.
func TestEngineFailedRunSkipsPersister(t *testing.T) {
	eng, inj := faultedEngine(t)
	p := &recordingPersister{}
	eng.SetPersister(p)
	afterRuns := func() int {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.runs
	}

	eng.Run()
	after1 := afterRuns()

	if err := eng.AddE(extraRecs(4, 500)...); err != nil {
		t.Fatal(err)
	}
	inj.Arm(FaultRelink, fault.Rule{Panic: "boom", Count: 1})
	eng.Run()
	if got := afterRuns(); got != after1 {
		t.Fatalf("failed run called AfterRun (%d -> %d)", after1, got)
	}
	eng.Run()
	if got := afterRuns(); got != after1+1 {
		t.Fatalf("recovery run AfterRun count = %d, want %d", got, after1+1)
	}
}

// TestEngineSupervisorRestartsLoop panics the background scheduler itself
// (outside Run's containment) and verifies the supervisor recovers it:
// the loop restarts, the restart is counted, and a later ingest still
// triggers a debounced relink.
func TestEngineSupervisorRestartsLoop(t *testing.T) {
	eng, inj := faultedEngine(t)
	eng.Start()
	defer eng.Close()

	inj.Arm(FaultLoop, fault.Rule{Panic: "scheduler down", Count: 1})
	if err := eng.AddE(extraRecs(3, 900)...); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().LoopRestarts == 0 {
		if time.Now().After(deadline) {
			t.Fatal("supervisor never restarted the scheduler")
		}
		time.Sleep(time.Millisecond)
	}

	// The restarted loop must still serve: new ingest leads to a publish.
	if err := eng.AddE(extraRecs(3, 1800)...); err != nil {
		t.Fatal(err)
	}
	for {
		if st := eng.Stats(); st.PendingRecords == 0 && st.Runs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted scheduler never ran a relink")
		}
		time.Sleep(time.Millisecond)
	}
	st := eng.Stats()
	if st.LoopRestarts != 1 {
		t.Fatalf("LoopRestarts = %d, want 1", st.LoopRestarts)
	}
	if st.RelinkPanics == 0 {
		t.Fatal("scheduler panic not counted in RelinkPanics")
	}
}

// TestEngineStuckSeconds pins the watchdog math: 0 when idle, 0 while a
// run is within its deadline, the overage once past it, and 0 when the
// watchdog is disabled.
func TestEngineStuckSeconds(t *testing.T) {
	eng, _ := faultedEngine(t)
	if got := eng.StuckSeconds(); got != 0 {
		t.Fatalf("idle StuckSeconds = %v, want 0", got)
	}

	eng.cfg.RunDeadline = 100 * time.Millisecond
	eng.runStartNano.Store(time.Now().Add(-time.Second).UnixNano())
	if got := eng.StuckSeconds(); got < 0.5 || got > 5 {
		t.Fatalf("stuck StuckSeconds = %v, want ~0.9", got)
	}
	eng.runStartNano.Store(time.Now().UnixNano())
	if got := eng.StuckSeconds(); got != 0 {
		t.Fatalf("on-time StuckSeconds = %v, want 0", got)
	}
	eng.cfg.RunDeadline = -1
	eng.runStartNano.Store(time.Now().Add(-time.Hour).UnixNano())
	if got := eng.StuckSeconds(); got != 0 {
		t.Fatalf("disabled-watchdog StuckSeconds = %v, want 0", got)
	}
	eng.runStartNano.Store(0)
}
