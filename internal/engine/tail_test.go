package engine

import (
	"math"
	"testing"
	"time"

	"slim"
	"slim/internal/fault"
)

// requireBitIdenticalLinks fails unless got and want are identical link
// for link with Float64bits-equal scores.
func requireBitIdenticalLinks(t *testing.T, step string, got, want []slim.Link) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d links, want %d", step, len(got), len(want))
	}
	for i := range got {
		if got[i].U != want[i].U || got[i].V != want[i].V ||
			math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("%s: link %d = %+v, want %+v", step, i, got[i], want[i])
		}
	}
}

// TestEnginePublishTailReuseAndPanicRecovery pins the engine's publish
// tail discipline: a weight-only ingest burst (re-observations of
// existing records, which rescore dirty shards to identical scores) must
// flow through the delta path — whole matched prefix reused, threshold
// fit reused, no full rebuild — while a panicked run must poison the
// tail so the next run full-rebuilds it, both publishing links
// bit-identical to the pre-burst result.
func TestEnginePublishTailReuseAndPanicRecovery(t *testing.T) {
	w := standardWorkload(16)
	inj := fault.New()
	eng, err := New(w.E, w.I, Config{
		Shards: 4, Link: slim.Defaults(), Debounce: time.Hour, Fault: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	base := eng.Run()
	if len(base.Links) == 0 {
		t.Fatal("baseline run produced no links")
	}
	st := eng.Stats()
	if st.PublishTail == nil || st.PublishTail.FullRebuilds == 0 || !st.PublishTail.LastFull {
		t.Fatalf("first run must full-build the tail: %+v", st.PublishTail)
	}

	// Weight-only burst: re-ingesting existing records dirties their
	// shards but moves no IDF epoch, so every rescored pair keeps its
	// exact score and the per-shard deltas are empty.
	if err := eng.AddE(w.E.Records[:8]...); err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	requireBitIdenticalLinks(t, "weight-only burst", res.Links, base.Links)
	ts := eng.Stats().PublishTail
	if ts == nil || ts.LastFull || ts.Applies == 0 ||
		ts.ReusedPrefixLen != int64(len(res.Matched)) || ts.SuffixWalked != 0 {
		t.Fatalf("weight-only burst did not ride the delta path: %+v", ts)
	}
	if ts.ThresholdReuses == 0 {
		t.Fatalf("identical matched scores must reuse the threshold fit: %+v", ts)
	}
	recs, _ := eng.Runs(1, 0)
	if len(recs) != 1 || recs[0].TailFullRebuild ||
		recs[0].TailReusedPrefix != int64(len(res.Matched)) {
		t.Fatalf("journal tail fields wrong: %+v", recs[0])
	}

	// A panicked run may have consumed per-shard deltas before dying, so
	// the tail's synced state is unknown; the recovery run must force a
	// full tail rebuild and still publish the exact links.
	if err := eng.AddE(w.E.Records[8:16]...); err != nil {
		t.Fatal(err)
	}
	inj.Arm(FaultRelink, fault.Rule{Panic: "injected relink", Count: 1})
	eng.Run() // contained failure: previous result republished
	rec := eng.Run()
	requireBitIdenticalLinks(t, "post-panic recovery", rec.Links, base.Links)
	ts = eng.Stats().PublishTail
	if ts == nil || !ts.LastFull {
		t.Fatalf("recovery run must full-rebuild the tail: %+v", ts)
	}
	recs, _ = eng.Runs(1, 0)
	if len(recs) != 1 || !recs[0].TailFullRebuild {
		t.Fatalf("recovery journal record must flag the tail rebuild: %+v", recs[0])
	}
}
