package engine

import (
	"testing"
	"time"

	"slim"
)

// TestBufferBypassesPersister: BufferE/BufferI are the already-durable
// ingest path (the binary plane logs first, then buffers), so they must
// enqueue into the per-shard pending queues without calling the
// persister, and the next run must apply them exactly like AddE/AddI.
func TestBufferAndOldestPending(t *testing.T) {
	cfg := slim.Defaults()
	cfg.Threshold = slim.ThresholdNone
	eng, err := New(slim.Dataset{Name: "E"}, slim.Dataset{Name: "I"},
		Config{Shards: 2, Link: cfg, Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	p := &recordingPersister{}
	eng.SetPersister(p)

	if _, ok := eng.OldestPending(); ok {
		t.Fatal("OldestPending reported a queue age on an idle engine")
	}

	mk := func(e string, off float64, n int) []slim.Record {
		var out []slim.Record
		for k := 0; k < n; k++ {
			out = append(out, slim.NewRecord(slim.EntityID(e),
				37.5+off+float64(k%4)*0.06, -122.3, 1_000_000+int64(k)*900))
		}
		return out
	}
	before := time.Now()
	for i, off := range []float64{0, 0.8, 1.6} {
		e := string(rune('a' + i))
		eng.BufferE(mk("e-"+e, off, 20)...)
		eng.BufferI(mk("i-"+e, off, 20)...)
	}

	if got := p.loggedE + p.loggedI; got != 0 {
		t.Fatalf("Buffer* called the persister (%d records logged)", got)
	}
	// E records land on their owning shard; I records replicate to all.
	if want := 60 + 60*eng.NumShards(); eng.Pending() != want {
		t.Fatalf("Pending = %d, want %d", eng.Pending(), want)
	}
	oldest, ok := eng.OldestPending()
	if !ok || oldest.Before(before) || oldest.After(time.Now()) {
		t.Fatalf("OldestPending = %v, %v; want a stamp from this test", oldest, ok)
	}
	if st := eng.Stats(); st.PendingOldestAge <= 0 {
		t.Fatalf("Stats().PendingOldestAge = %v, want > 0", st.PendingOldestAge)
	}

	res := eng.Run()
	if len(res.Links) != 3 {
		t.Fatalf("run after Buffer* produced %d links, want 3", len(res.Links))
	}
	if eng.Pending() != 0 {
		t.Fatalf("Pending = %d after run, want 0", eng.Pending())
	}
	if _, ok := eng.OldestPending(); ok {
		t.Fatal("OldestPending still set after the run drained the queues")
	}
	if st := eng.Stats(); st.PendingOldestAge != 0 {
		t.Fatalf("PendingOldestAge = %v after run, want 0", st.PendingOldestAge)
	}
	if st := eng.Stats(); st.IngestedE != 60 || st.IngestedI != 60 {
		t.Fatalf("ingested counters = %d/%d, want 60/60", st.IngestedE, st.IngestedI)
	}
}
