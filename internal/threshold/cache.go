package threshold

import "math"

// CacheStats counts how often a Cache had to run the underlying fit vs
// how often it reused the previous result.
type CacheStats struct {
	Fits   uint64
	Reuses uint64
}

// Cache memoizes the most recent threshold fit, keyed on the exact score
// sequence. Scores are compared via math.Float64bits, so reuse happens
// only when the input is bit-identical to the previous call — the
// returned Result is then byte-for-byte the same decision, which keeps
// cached selection bit-compatible with always refitting. Callers pass the
// matched score list in its published (descending-sorted) order, making
// sequence equality equivalent to multiset equality.
//
// The zero value is ready to use; not safe for concurrent use. The cached
// Result (including its *GMM model) is shared across calls and must be
// treated as read-only.
type Cache struct {
	key    []uint64
	result Result
	valid  bool

	fits, reuses uint64
}

// Select returns the threshold decision for scores, calling fit only when
// the score sequence differs bitwise from the previous call.
func (c *Cache) Select(scores []float64, fit func([]float64) Result) Result {
	if c.valid && len(scores) == len(c.key) {
		same := true
		for i, s := range scores {
			if math.Float64bits(s) != c.key[i] {
				same = false
				break
			}
		}
		if same {
			c.reuses++
			return c.result
		}
	}
	r := fit(scores)
	c.key = c.key[:0]
	for _, s := range scores {
		c.key = append(c.key, math.Float64bits(s))
	}
	c.result = r
	c.valid = true
	c.fits++
	return r
}

// Invalidate drops the cached fit (e.g. when the selection method
// changes), forcing the next Select to refit.
func (c *Cache) Invalidate() { c.valid = false }

// Stats returns fit/reuse counts since the cache was created.
func (c *Cache) Stats() CacheStats { return CacheStats{Fits: c.fits, Reuses: c.reuses} }
