package threshold

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bimodal draws n1 samples around m1 and n2 around m2.
func bimodal(seed int64, n1 int, m1, s1 float64, n2 int, m2, s2 float64) []float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float64, 0, n1+n2)
	for i := 0; i < n1; i++ {
		out = append(out, m1+s1*r.NormFloat64())
	}
	for i := 0; i < n2; i++ {
		out = append(out, m2+s2*r.NormFloat64())
	}
	return out
}

func TestFitGMM2RecoversComponents(t *testing.T) {
	xs := bimodal(1, 300, 100, 10, 200, 500, 30)
	g, ok := FitGMM2(xs)
	if !ok {
		t.Fatal("fit failed on clean bimodal data")
	}
	if math.Abs(g.Mean[0]-100) > 8 {
		t.Errorf("Mean[0] = %g, want ~100", g.Mean[0])
	}
	if math.Abs(g.Mean[1]-500) > 15 {
		t.Errorf("Mean[1] = %g, want ~500", g.Mean[1])
	}
	if math.Abs(g.Weight[0]-0.6) > 0.05 || math.Abs(g.Weight[1]-0.4) > 0.05 {
		t.Errorf("weights = %v, want ~[0.6 0.4]", g.Weight)
	}
	if g.Std[0] > g.Std[1] {
		t.Logf("note: stds = %v (acceptable, components sorted by mean)", g.Std)
	}
	if g.Mean[0] > g.Mean[1] {
		t.Error("components must be ordered by mean")
	}
}

func TestFitGMM2Degenerate(t *testing.T) {
	if _, ok := FitGMM2([]float64{1, 2, 3}); ok {
		t.Error("too-small sample should fail")
	}
	same := make([]float64, 50)
	for i := range same {
		same[i] = 7
	}
	if _, ok := FitGMM2(same); ok {
		t.Error("constant sample should fail")
	}
}

func TestExpectedPRF1Behaviour(t *testing.T) {
	g := GMM{Weight: [2]float64{0.5, 0.5}, Mean: [2]float64{0, 100}, Std: [2]float64{5, 5}}
	// Far below both components: recall 1, precision ~0.5.
	p, r, f1 := g.ExpectedPRF1(-1000)
	if math.Abs(r-1) > 1e-9 || math.Abs(p-0.5) > 1e-6 {
		t.Errorf("low threshold: p=%g r=%g", p, r)
	}
	if f1 <= 0 {
		t.Error("f1 must be positive at low threshold")
	}
	// Between the components: precision ~1, recall ~1 → F1 near 1.
	_, _, f1Mid := g.ExpectedPRF1(50)
	if f1Mid < 0.99 {
		t.Errorf("midpoint F1 = %g, want ~1", f1Mid)
	}
	// Far above both: recall ~0.
	_, r, _ = g.ExpectedPRF1(1000)
	if r > 1e-6 {
		t.Errorf("high threshold recall = %g, want ~0", r)
	}
}

func TestSelectThresholdSeparatesClusters(t *testing.T) {
	xs := bimodal(2, 400, 50, 8, 150, 300, 20)
	res := SelectThreshold(xs)
	if res.Method != MethodGMM {
		t.Fatalf("expected GMM method, got %s", res.Method)
	}
	if res.Model == nil {
		t.Fatal("GMM result must carry the model")
	}
	if res.Threshold < 80 || res.Threshold > 280 {
		t.Errorf("threshold = %g, want between the clusters (80..280)", res.Threshold)
	}
	// Virtually all cluster-2 points above, cluster-1 points below.
	var below, above int
	for _, v := range xs {
		if v > res.Threshold {
			above++
		} else {
			below++
		}
	}
	if above < 120 || above > 180 {
		t.Errorf("%d points above threshold, want ~150", above)
	}
	_ = below
}

func TestSelectThresholdFallbacks(t *testing.T) {
	// Tiny sample → midpoint or otsu fallback, never a panic.
	res := SelectThreshold([]float64{1, 2})
	if res.Method == MethodGMM {
		t.Error("tiny sample should not claim a GMM fit")
	}
	if res.Threshold < 1 || res.Threshold > 2 {
		t.Errorf("fallback threshold %g outside data range", res.Threshold)
	}
	// Empty sample.
	res = SelectThreshold(nil)
	if res.Threshold != 0 {
		t.Errorf("empty sample threshold = %g", res.Threshold)
	}
	// Unimodal blob: GMM components overlap → fallback to Otsu.
	r := rand.New(rand.NewSource(3))
	blob := make([]float64, 200)
	for i := range blob {
		blob[i] = 100 + r.NormFloat64()
	}
	res = SelectThreshold(blob)
	lo, hi := 90.0, 110.0
	if res.Threshold < lo || res.Threshold > hi {
		t.Errorf("unimodal threshold %g escaped the data range", res.Threshold)
	}
}

func TestThresholdWithinRangeQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 1000
		}
		res := SelectThreshold(xs)
		lo, hi := xs[0], xs[0]
		for _, v := range xs {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return res.Threshold >= lo-1e-9 && res.Threshold <= hi+1e-9 &&
			!math.IsNaN(res.Threshold)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSelectThresholdKMeans(t *testing.T) {
	xs := bimodal(4, 100, 10, 1, 100, 90, 2)
	res := SelectThresholdKMeans(xs)
	if res.Threshold < 20 || res.Threshold > 80 {
		t.Errorf("2-means threshold = %g, want mid-gap", res.Threshold)
	}
	if res.Method != MethodKMeans {
		t.Errorf("method = %s", res.Method)
	}
	if SelectThresholdKMeans(nil).Threshold != 0 {
		t.Error("empty input should give zero threshold")
	}
}

func TestSelectThresholdOtsu(t *testing.T) {
	xs := bimodal(5, 100, 10, 1, 100, 90, 2)
	res := SelectThresholdOtsu(xs)
	if res.Threshold < 20 || res.Threshold > 80 {
		t.Errorf("otsu threshold = %g, want mid-gap", res.Threshold)
	}
}

func TestThresholdMethodsAgreeOnCleanData(t *testing.T) {
	// The paper observes GMM, Otsu and 2-means behave similarly; on
	// cleanly separated clusters all three must land in the gap.
	xs := bimodal(6, 300, 100, 5, 300, 900, 25)
	gmm := SelectThreshold(xs)
	otsu := SelectThresholdOtsu(xs)
	km := SelectThresholdKMeans(xs)
	for _, res := range []Result{gmm, otsu, km} {
		// The invariant: every threshold cleanly separates the clusters
		// (all cluster-1 weight below, all cluster-2 weight above). The
		// exact position within the gap is method-specific and F1-flat.
		if res.Threshold < 130 || res.Threshold > 820 {
			t.Errorf("method %s threshold %g does not separate the clusters", res.Method, res.Threshold)
		}
	}
}

func TestHistogram(t *testing.T) {
	edges, counts := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if len(edges) != 6 || len(counts) != 5 {
		t.Fatalf("histogram shape: %d edges, %d counts", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram total = %d, want 10", total)
	}
	// Degenerate inputs must not panic.
	_, _ = Histogram(nil, 4)
	_, _ = Histogram([]float64{5, 5, 5}, 0)
}

func TestSortedCopy(t *testing.T) {
	in := []float64{3, 1, 2}
	out := SortedCopy(in)
	if out[0] != 1 || out[2] != 3 {
		t.Errorf("SortedCopy = %v", out)
	}
	if in[0] != 3 {
		t.Error("input mutated")
	}
}

func BenchmarkFitGMM2(b *testing.B) {
	xs := bimodal(7, 500, 100, 10, 500, 400, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = FitGMM2(xs)
	}
}

func BenchmarkSelectThreshold(b *testing.B) {
	xs := bimodal(8, 500, 100, 10, 500, 400, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SelectThreshold(xs)
	}
}
