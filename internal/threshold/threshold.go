// Package threshold implements SLIM's automated linkage stop-threshold
// detection (Sec. 3.2): a two-component 1-D Gaussian mixture model is fit
// over the edge weights selected by the bipartite matching; the component
// with the larger mean models true-positive links and the other models
// false positives. Expected precision, recall and F1 are derived from the
// component CDFs as functions of a candidate threshold s, and the
// F1-maximizing s* is returned.
//
// The paper notes Otsu's method and 2-means clustering yield similar
// results; both are provided as alternatives and as fallbacks for
// degenerate mixtures.
package threshold

import (
	"math"
	"slices"

	"slim/internal/mathx"
)

// GMM is a two-component univariate Gaussian mixture. Component 1 models
// false-positive link weights, component 2 (larger mean) true positives.
type GMM struct {
	Weight [2]float64 // mixing weights c1, c2 (sum to 1)
	Mean   [2]float64 // component means, Mean[0] <= Mean[1]
	Std    [2]float64 // component standard deviations
}

// Method names a threshold detection strategy.
type Method string

const (
	MethodGMM      Method = "gmm"
	MethodOtsu     Method = "otsu"
	MethodKMeans   Method = "2means"
	MethodMidpoint Method = "midpoint"
)

// Result is a threshold decision together with the model that produced it.
type Result struct {
	Threshold float64
	Method    Method
	// Model is the fitted mixture when Method == MethodGMM.
	Model *GMM
}

const (
	emMaxIter     = 200
	emTol         = 1e-9
	minGMMSamples = 8
	gridSteps     = 512
)

// FitGMM2 fits a two-component Gaussian mixture to xs with EM, initialized
// from a 1-D 2-means split. ok is false when the data is too small or the
// fit degenerates (empty component, collapsed variance).
func FitGMM2(xs []float64) (GMM, bool) {
	n := len(xs)
	if n < minGMMSamples {
		return GMM{}, false
	}
	lo, hi := mathx.MinMax(xs)
	if hi <= lo {
		return GMM{}, false
	}
	span := hi - lo
	minStd := 1e-3 * span

	centers, assign := mathx.KMeans1D(xs, 2, 100)
	if len(centers) < 2 || centers[0] == centers[1] {
		return GMM{}, false
	}
	var g GMM
	// Initialize from the k-means split.
	var sums, sqs [2]float64
	var counts [2]int
	for i, v := range xs {
		c := assign[i]
		sums[c] += v
		counts[c]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		return GMM{}, false
	}
	for c := 0; c < 2; c++ {
		g.Mean[c] = sums[c] / float64(counts[c])
		g.Weight[c] = float64(counts[c]) / float64(n)
	}
	for i, v := range xs {
		c := assign[i]
		d := v - g.Mean[c]
		sqs[c] += d * d
	}
	for c := 0; c < 2; c++ {
		g.Std[c] = math.Max(math.Sqrt(sqs[c]/float64(counts[c])), minStd)
	}

	resp := make([]float64, n) // responsibility of component 1 (index 1)
	prevLL := math.Inf(-1)
	for iter := 0; iter < emMaxIter; iter++ {
		// E-step.
		var ll float64
		for i, v := range xs {
			p0 := g.Weight[0] * mathx.NormalPDF(v, g.Mean[0], g.Std[0])
			p1 := g.Weight[1] * mathx.NormalPDF(v, g.Mean[1], g.Std[1])
			sum := p0 + p1
			if sum <= 0 || math.IsNaN(sum) {
				// Point in the far tails of both: split evenly.
				resp[i] = 0.5
				ll += -745 // log of smallest double, effectively
				continue
			}
			resp[i] = p1 / sum
			ll += math.Log(sum)
		}
		// M-step.
		var w1, m0, m1 float64
		for i, v := range xs {
			w1 += resp[i]
			m1 += resp[i] * v
			m0 += (1 - resp[i]) * v
		}
		w0 := float64(n) - w1
		if w0 < 1e-9 || w1 < 1e-9 {
			return GMM{}, false
		}
		g.Weight[0], g.Weight[1] = w0/float64(n), w1/float64(n)
		g.Mean[0], g.Mean[1] = m0/w0, m1/w1
		var v0, v1 float64
		for i, v := range xs {
			d0 := v - g.Mean[0]
			d1 := v - g.Mean[1]
			v0 += (1 - resp[i]) * d0 * d0
			v1 += resp[i] * d1 * d1
		}
		g.Std[0] = math.Max(math.Sqrt(v0/w0), minStd)
		g.Std[1] = math.Max(math.Sqrt(v1/w1), minStd)

		if math.Abs(ll-prevLL) < emTol*(1+math.Abs(ll)) {
			break
		}
		prevLL = ll
	}
	// Order components by mean: index 1 is the true-positive model.
	if g.Mean[0] > g.Mean[1] {
		g.Mean[0], g.Mean[1] = g.Mean[1], g.Mean[0]
		g.Std[0], g.Std[1] = g.Std[1], g.Std[0]
		g.Weight[0], g.Weight[1] = g.Weight[1], g.Weight[0]
	}
	if math.IsNaN(g.Mean[0]) || math.IsNaN(g.Mean[1]) {
		return GMM{}, false
	}
	return g, true
}

// ExpectedPRF1 evaluates the expected precision, recall and F1 of keeping
// links with weight above s, under the fitted mixture:
//
//	R(s)  = c2·(1 − F_m2(s))
//	P(s)  = R(s) / (R(s) + c1·(1 − F_m1(s)))
//	F1(s) = 2·P·R / (P + R)
func (g GMM) ExpectedPRF1(s float64) (p, r, f1 float64) {
	tp := g.Weight[1] * (1 - mathx.NormalCDF(s, g.Mean[1], g.Std[1]))
	fp := g.Weight[0] * (1 - mathx.NormalCDF(s, g.Mean[0], g.Std[0]))
	r = tp / g.Weight[1] // normalize: recall is the fraction of TPs kept
	if tp+fp > 0 {
		p = tp / (tp + fp)
	}
	if p+r > 0 {
		f1 = 2 * p * r / (p + r)
	}
	return p, r, f1
}

// SelectThreshold returns the F1-maximizing threshold s* on a grid spanning
// the observed weights. If the mixture cannot be fit it falls back to
// Otsu's method, then to the midpoint of the range (Design decision 8).
func SelectThreshold(weights []float64) Result {
	if len(weights) == 0 {
		return Result{Threshold: 0, Method: MethodMidpoint}
	}
	lo, hi := mathx.MinMax(weights)
	if g, ok := FitGMM2(weights); ok {
		// The two components must be meaningfully separated, otherwise the
		// mixture is modelling one blob and its F1 argmax is noise.
		if g.Mean[1]-g.Mean[0] > (g.Std[0]+g.Std[1])/4 {
			best, bestF1 := lo, -1.0
			step := (hi - lo) / gridSteps
			if step <= 0 {
				step = 1
			}
			for s := lo; s <= hi; s += step {
				if _, _, f1 := g.ExpectedPRF1(s); f1 > bestF1 {
					best, bestF1 = s, f1
				}
			}
			gg := g
			return Result{Threshold: best, Method: MethodGMM, Model: &gg}
		}
	}
	if len(weights) >= 4 && hi > lo {
		return Result{Threshold: mathx.Otsu(weights, 64), Method: MethodOtsu}
	}
	return Result{Threshold: lo + (hi-lo)/2, Method: MethodMidpoint}
}

// SelectThresholdKMeans is the paper's 2-means alternative: the threshold
// is the midpoint between the two cluster centers.
func SelectThresholdKMeans(weights []float64) Result {
	if len(weights) == 0 {
		return Result{Method: MethodKMeans}
	}
	centers, _ := mathx.KMeans1D(weights, 2, 100)
	if len(centers) < 2 {
		return Result{Threshold: centers[0], Method: MethodKMeans}
	}
	return Result{Threshold: (centers[0] + centers[1]) / 2, Method: MethodKMeans}
}

// SelectThresholdOtsu is the paper's Otsu alternative.
func SelectThresholdOtsu(weights []float64) Result {
	return Result{Threshold: mathx.Otsu(weights, 64), Method: MethodOtsu}
}

// Histogram bins values for reporting (Fig. 2 / Fig. 6 rendering). It
// returns the bin edges (len bins+1) and counts (len bins).
func Histogram(values []float64, bins int) (edges []float64, counts []int) {
	if bins <= 0 {
		bins = 1
	}
	lo, hi := mathx.MinMax(values)
	if hi == lo {
		hi = lo + 1
	}
	edges = make([]float64, bins+1)
	counts = make([]int, bins)
	width := (hi - lo) / float64(bins)
	for i := 0; i <= bins; i++ {
		edges[i] = lo + float64(i)*width
	}
	for _, v := range values {
		b := int((v - lo) / width)
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return edges, counts
}

// SortedCopy returns a sorted copy of xs (ascending); helper for reports.
func SortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	slices.Sort(out)
	return out
}
