//go:build race

package ingest

// raceEnabled reports whether the race detector is compiled in; the
// throughput floor is skipped under instrumentation (it measures the
// real pipeline, and CI gates it in a dedicated non-race step).
const raceEnabled = true
