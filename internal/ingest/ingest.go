// Package ingest is slimd's high-throughput ingest plane: it accepts
// record batches in the storage frame wire format, applies explicit
// admission control, and sheds load instead of buffering unboundedly.
//
// Wire format (Content-Type application/x-slim-frame): a request body is
// a sequence of CRC32C frames — u32le length | u32le CRC | payload —
// each payload one wire batch: a dataset tag byte ('E' or 'I') followed
// by the storage codec's record-batch encoding. A wire batch is exactly
// the WAL batch payload minus its sequence prefix, so an accepted batch
// is appended to the WAL verbatim (storage.Store.LogEncoded): the CRC is
// checked once at the edge and no record is ever re-encoded between the
// wire and the log.
//
// Backpressure. Two budgets guard the plane, both configurable:
//
//   - queue depth: records resident in the ingest pipeline — admitted
//     batches still waiting on WAL durability plus records buffered in
//     the engine's per-shard pending queues awaiting a relink (an I
//     record replicated onto k shards counts k times; the budget bounds
//     real memory).
//   - latency: the age of the oldest record still queued anywhere in the
//     pipeline — when WAL fsync or relink lags this far behind, new work
//     is shed.
//
// A request that would exceed either budget is rejected whole with a
// *ShedError before anything is logged or buffered: every record is
// either durably logged and eventually link-visible, or cleanly refused
// with 429 + Retry-After. Admission is shared with the JSON ingest path
// (Admit/NoteAccepted), so both planes shed under one policy.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"slim"
	"slim/internal/engine"
	"slim/internal/obs"
	"slim/internal/storage"
)

// ContentType is the media type of the binary ingest wire format.
const ContentType = "application/x-slim-frame"

// DefaultQueueDepth is the default admission budget in resident records.
const DefaultQueueDepth = 1 << 18

// DefaultShedAfter is the default latency budget: when the oldest queued
// record has waited this long (WAL fsync or relink lagging), new
// requests are shed. Must comfortably exceed the engine's relink
// debounce, which is a floor on healthy queue age.
const DefaultShedAfter = 10 * time.Second

// DefaultRetryAfter is the default client retry hint on a shed.
const DefaultRetryAfter = time.Second

// Config parameterizes the plane. Zero values select the defaults; a
// negative ShedAfter disables the latency budget.
type Config struct {
	QueueDepth int
	ShedAfter  time.Duration
	RetryAfter time.Duration
	// Registry, when set, receives counter/gauge views over the same
	// atomics Stats reports (admissions, sheds by cause, queue state). A
	// nil Registry wires them to a private, unscraped registry.
	Registry *obs.Registry
}

func (c Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return DefaultQueueDepth
	}
	return c.QueueDepth
}

func (c Config) shedAfter() time.Duration {
	if c.ShedAfter == 0 {
		return DefaultShedAfter
	}
	return c.ShedAfter
}

func (c Config) retryAfter() time.Duration {
	if c.RetryAfter <= 0 {
		return DefaultRetryAfter
	}
	return c.RetryAfter
}

// BatchLogger durably appends one pre-encoded record batch, returning a
// wait that blocks until the batch is durable per the WAL fsync policy.
// Implemented by storage.Store.LogEncoded.
type BatchLogger interface {
	LogEncoded(tag byte, recordBytes []byte, recs []slim.Record) (wait func() error, err error)
}

// ShedError is a load-shed rejection: the request was refused before
// anything was logged or buffered, and the client should retry after the
// hinted delay (HTTP 429 + Retry-After).
type ShedError struct {
	Cause      string // "queue-depth" or "latency"
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("ingest: overloaded (%s budget exceeded), retry after %v", e.Cause, e.RetryAfter)
}

// admitToken is one outstanding admission, kept in an intrusive list
// ordered by admit time so the oldest in-flight age is O(1).
type admitToken struct {
	at         time.Time
	n          int
	prev, next *admitToken
}

// Plane is the ingest plane over one engine: admission control plus the
// decode→log→buffer pipeline of the binary wire format. All methods are
// safe for concurrent use.
type Plane struct {
	eng *engine.Engine
	cfg Config

	mu         sync.Mutex
	logger     BatchLogger // nil without a data directory: buffer-only
	inflight   int         // records admitted, not yet released
	head, tail *admitToken // outstanding admissions, oldest first

	acceptedBatches atomic.Uint64
	acceptedRecords atomic.Uint64
	shedRequests    atomic.Uint64
	shedRecords     atomic.Uint64
	shedDepth       atomic.Uint64
	shedLatency     atomic.Uint64
}

// NewPlane builds a plane over the engine. Attach a BatchLogger before
// serving when ingest must be durable (AttachLogger); without one the
// binary path buffers records exactly like the JSON path without a data
// directory.
func NewPlane(eng *engine.Engine, cfg Config) *Plane {
	p := &Plane{eng: eng, cfg: cfg}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	reg.CounterFunc("slim_ingest_accepted_batches_total",
		"Ingest batches durably applied, across the binary and JSON planes.",
		p.acceptedBatches.Load)
	reg.CounterFunc("slim_ingest_accepted_records_total",
		"Ingest records durably applied, across the binary and JSON planes.",
		p.acceptedRecords.Load)
	reg.CounterFunc("slim_ingest_shed_requests_total",
		"Requests refused whole by admission control, by exceeded budget.",
		p.shedDepth.Load, obs.L("cause", "queue-depth"))
	reg.CounterFunc("slim_ingest_shed_requests_total",
		"Requests refused whole by admission control, by exceeded budget.",
		p.shedLatency.Load, obs.L("cause", "latency"))
	reg.CounterFunc("slim_ingest_shed_records_total",
		"Records inside shed requests (nothing was logged or buffered).",
		p.shedRecords.Load)
	reg.GaugeFunc("slim_ingest_inflight_records",
		"Admitted records not yet released (waiting on WAL durability).",
		func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return float64(p.inflight)
		})
	reg.GaugeFunc("slim_ingest_oldest_wait_seconds",
		"Age of the oldest record queued anywhere in the pipeline (the latency-budget input).",
		func() float64 { return p.Stats().OldestWait.Seconds() })
	reg.GaugeFunc("slim_ingest_queue_depth_limit",
		"Configured admission budget in resident records.",
		func() float64 { return float64(cfg.queueDepth()) })
	return p
}

// AttachLogger wires the durable append path in. Call before serving.
func (p *Plane) AttachLogger(l BatchLogger) {
	p.mu.Lock()
	p.logger = l
	p.mu.Unlock()
}

// ParseRequest decodes one wire request body into validated batches and
// the total record count. Any framing, decoding, or validation error
// rejects the whole request — nothing is partially accepted — so the
// caller can map the error straight to 400.
func ParseRequest(body []byte) (batches []storage.WireBatch, records int, err error) {
	if len(body) == 0 {
		return nil, 0, errors.New("empty request body")
	}
	for len(body) > 0 {
		payload, rest, err := storage.NextFrame(body)
		if err != nil {
			return nil, 0, fmt.Errorf("frame %d: %w", len(batches), err)
		}
		body = rest
		b, err := storage.DecodeWireBatch(payload)
		if err != nil {
			return nil, 0, fmt.Errorf("frame %d: %w", len(batches), err)
		}
		if len(b.Recs) == 0 {
			return nil, 0, fmt.Errorf("frame %d: no records in batch", len(batches))
		}
		for i, r := range b.Recs {
			if err := ValidateRecord(r); err != nil {
				return nil, 0, fmt.Errorf("frame %d record %d: %w", len(batches), i, err)
			}
		}
		batches = append(batches, b)
		records += len(b.Recs)
	}
	return batches, records, nil
}

// ValidateRecord rejects records an attacker could use to poison the
// stores — the wire layer is where untrusted input is stopped, on both
// the JSON and the binary plane.
func ValidateRecord(r slim.Record) error {
	if r.Entity == "" {
		return errors.New("empty entity id")
	}
	lat, lng := r.LatLng.Lat, r.LatLng.Lng
	if math.IsNaN(lat) || math.IsInf(lat, 0) || lat < -90 || lat > 90 {
		return fmt.Errorf("latitude %g outside [-90, 90]", lat)
	}
	if math.IsNaN(lng) || math.IsInf(lng, 0) || lng < -180 || lng > 180 {
		return fmt.Errorf("longitude %g outside [-180, 180]", lng)
	}
	if math.IsNaN(r.RadiusKm) || math.IsInf(r.RadiusKm, 0) || r.RadiusKm < 0 {
		return fmt.Errorf("radius_km %g must be a finite non-negative number", r.RadiusKm)
	}
	return nil
}

// Admit reserves pipeline capacity for n records, or returns a
// *ShedError when a budget is exceeded. On success the caller MUST call
// release exactly once, after the records are durable (or rejected for
// another reason). Shared by the binary and JSON ingest handlers so both
// planes shed under one policy.
func (p *Plane) Admit(n int) (release func(), err error) {
	now := time.Now()
	pending := p.eng.Pending()
	oldestPend, havePend := p.eng.OldestPending()

	p.mu.Lock()
	if p.inflight+pending+n > p.cfg.queueDepth() {
		p.mu.Unlock()
		p.shed(&p.shedDepth, n)
		return nil, &ShedError{Cause: "queue-depth", RetryAfter: p.cfg.retryAfter()}
	}
	if after := p.cfg.shedAfter(); after > 0 {
		oldest := oldestPend
		if p.head != nil && (!havePend || p.head.at.Before(oldest)) {
			oldest = p.head.at
		}
		if !oldest.IsZero() && now.Sub(oldest) > after {
			p.mu.Unlock()
			p.shed(&p.shedLatency, n)
			return nil, &ShedError{Cause: "latency", RetryAfter: p.cfg.retryAfter()}
		}
	}
	tok := &admitToken{at: now, n: n, prev: p.tail}
	if p.tail != nil {
		p.tail.next = tok
	} else {
		p.head = tok
	}
	p.tail = tok
	p.inflight += n
	p.mu.Unlock()

	return func() {
		p.mu.Lock()
		if tok.prev != nil {
			tok.prev.next = tok.next
		} else {
			p.head = tok.next
		}
		if tok.next != nil {
			tok.next.prev = tok.prev
		} else {
			p.tail = tok.prev
		}
		tok.prev, tok.next = nil, nil
		p.inflight -= tok.n
		p.mu.Unlock()
	}, nil
}

func (p *Plane) shed(cause *atomic.Uint64, n int) {
	cause.Add(1)
	p.shedRequests.Add(1)
	p.shedRecords.Add(uint64(n))
}

// Submit applies admitted wire batches: every batch is appended to the
// WAL (zero re-encode), the whole request rides one group-commit window,
// and only durable batches are buffered toward the next relink — the
// same log-before-buffer contract as the JSON path. Without a logger it
// buffers directly. It returns how many batches were fully applied; on
// error the applied prefix is durable AND buffered (never half-applied),
// while the failed tail is neither acknowledged nor visible.
func (p *Plane) Submit(batches []storage.WireBatch) (applied int, err error) {
	p.mu.Lock()
	logger := p.logger
	p.mu.Unlock()

	durable := len(batches)
	if logger != nil {
		waits := make([]func() error, 0, len(batches))
		for i, b := range batches {
			w, aerr := logger.LogEncoded(b.Tag, b.RecordBytes, b.Recs)
			if aerr != nil {
				err = fmt.Errorf("logging batch %d: %w", i, aerr)
				break
			}
			waits = append(waits, w)
		}
		// Wait out every successful append before buffering anything, so a
		// buffered batch is always a durable batch. A failed wait poisons
		// the WAL (sticky error): the batches at and after it are not
		// acknowledged and not buffered.
		durable = len(waits)
		for i, w := range waits {
			if werr := w(); werr != nil {
				durable = i
				if err == nil {
					err = fmt.Errorf("syncing batch %d: %w", i, werr)
				}
				break
			}
		}
	}
	for _, b := range batches[:durable] {
		if b.Tag == storage.TagE {
			p.eng.BufferE(b.Recs...)
		} else {
			p.eng.BufferI(b.Recs...)
		}
		applied++
		p.acceptedBatches.Add(1)
		p.acceptedRecords.Add(uint64(len(b.Recs)))
	}
	return applied, err
}

// Drain blocks until every admitted request has been released — its
// records durable and buffered, or rejected — so a shutting-down
// process can close the engine and take its final checkpoint knowing no
// acknowledgement is still racing the close. It returns ctx's error if
// the context expires first (the shutdown proceeds anyway; the WAL
// still holds whatever was logged).
func (p *Plane) Drain(ctx context.Context) error {
	for {
		p.mu.Lock()
		n := p.inflight
		p.mu.Unlock()
		if n == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// NoteAccepted counts records the JSON plane accepted, so the plane's
// accepted/shed counters describe all ingest regardless of wire format.
func (p *Plane) NoteAccepted(batches, records int) {
	p.acceptedBatches.Add(uint64(batches))
	p.acceptedRecords.Add(uint64(records))
}

// Stats is a point-in-time snapshot of the plane's queue and
// backpressure state.
type Stats struct {
	// QueueDepth and ShedAfter echo the configured budgets.
	QueueDepth int
	ShedAfter  time.Duration
	RetryAfter time.Duration
	// InflightRecords counts admitted records not yet released (waiting on
	// WAL durability); PendingRecords counts records buffered in the
	// engine's per-shard queues awaiting a relink.
	InflightRecords int
	PendingRecords  int
	// OldestWait is the age of the oldest record queued anywhere in the
	// pipeline (zero when idle) — the latency-budget input.
	OldestWait time.Duration
	// AcceptedBatches/AcceptedRecords count successfully applied ingest
	// across both planes; the Shed* counters count rejections, split by
	// which budget fired.
	AcceptedBatches uint64
	AcceptedRecords uint64
	ShedRequests    uint64
	ShedRecords     uint64
	ShedQueueDepth  uint64
	ShedLatency     uint64
}

// Stats returns an operational snapshot.
func (p *Plane) Stats() Stats {
	st := Stats{
		QueueDepth:      p.cfg.queueDepth(),
		ShedAfter:       p.cfg.shedAfter(),
		RetryAfter:      p.cfg.retryAfter(),
		PendingRecords:  p.eng.Pending(),
		AcceptedBatches: p.acceptedBatches.Load(),
		AcceptedRecords: p.acceptedRecords.Load(),
		ShedRequests:    p.shedRequests.Load(),
		ShedRecords:     p.shedRecords.Load(),
		ShedQueueDepth:  p.shedDepth.Load(),
		ShedLatency:     p.shedLatency.Load(),
	}
	oldest, have := p.eng.OldestPending()
	p.mu.Lock()
	st.InflightRecords = p.inflight
	if p.head != nil && (!have || p.head.at.Before(oldest)) {
		oldest, have = p.head.at, true
	}
	p.mu.Unlock()
	if have {
		st.OldestWait = time.Since(oldest)
	}
	return st
}
