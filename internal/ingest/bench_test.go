package ingest

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"slim"
	"slim/internal/engine"
	"slim/internal/storage"
)

// benchPlane boots a durable plane (real WAL in a temp dir, group-commit
// fsync) with budgets wide enough that the benchmark measures the
// pipeline, not the shed policy.
func benchPlane(tb testing.TB, shards int) (*Plane, *engine.Engine) {
	tb.Helper()
	cfg := slim.Defaults()
	cfg.Threshold = slim.ThresholdNone
	eng, store, _, err := storage.Recover(tb.TempDir(), slim.Dataset{Name: "E"}, slim.Dataset{Name: "I"},
		engine.Config{Shards: shards, Link: cfg, Debounce: time.Hour}, storage.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(eng.Close)
	tb.Cleanup(func() { store.Close() })
	p := NewPlane(eng, Config{QueueDepth: 1 << 30, ShedAfter: -1})
	p.AttachLogger(store)
	return p, eng
}

// benchBody pre-encodes one wire request: batches CRC-framed batches of
// perBatch records each, spread over a fixed entity population.
func benchBody(batches, perBatch, entities int) (body []byte, records int) {
	unix := int64(1_600_000_000)
	for bi := 0; bi < batches; bi++ {
		recs := make([]slim.Record, 0, perBatch)
		for k := 0; k < perBatch; k++ {
			id := (bi*perBatch + k) % entities
			recs = append(recs, slim.NewRecord(
				slim.EntityID(fmt.Sprintf("cab-%05d", id)),
				37.7+float64(id%100)*1e-3, -122.4+float64(id%97)*1e-3, unix))
			unix++
		}
		body = storage.AppendFrame(body, storage.AppendWireBatch(nil, storage.TagE, recs))
		records += perBatch
	}
	return body, records
}

// BenchmarkIngestBinary measures the full binary ingest pipeline —
// parse + CRC check, admission, WAL append with group-commit fsync, and
// per-shard buffering — in records/s. This is the number the 1M
// records/s target and the CI floor refer to.
func BenchmarkIngestBinary(b *testing.B) {
	p, _ := benchPlane(b, 4)
	body, records := benchBody(16, 4096, 4096)
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batches, n, err := ParseRequest(body)
		if err != nil {
			b.Fatal(err)
		}
		release, err := p.Admit(n)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Submit(batches); err != nil {
			b.Fatal(err)
		}
		release()
	}
	b.StopTimer()
	b.ReportMetric(float64(records*b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkIngestToVisible measures ingest-to-link-visible latency: the
// time from submitting a small burst over the binary pipeline until a
// relink has applied it (the records are queryable). Reports p50/p99
// across iterations.
func BenchmarkIngestToVisible(b *testing.B) {
	p, eng := benchPlane(b, 4)
	// Seed a resident population so the relink is not a no-op, then keep
	// re-observing the same entities: state stays bounded and each
	// iteration exercises the incremental dirty-shard path.
	seed, _ := benchBody(8, 1024, 256)
	if batches, n, err := ParseRequest(seed); err != nil {
		b.Fatal(err)
	} else if release, err := p.Admit(n); err != nil {
		b.Fatal(err)
	} else if _, err := p.Submit(batches); err != nil {
		b.Fatal(err)
	} else {
		release()
	}
	eng.Run()

	burst, _ := benchBody(1, 512, 256)
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		batches, n, err := ParseRequest(burst)
		if err != nil {
			b.Fatal(err)
		}
		release, err := p.Admit(n)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Submit(batches); err != nil {
			b.Fatal(err)
		}
		release()
		eng.Run() // the burst is now link-visible
		lat = append(lat, time.Since(start))
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(q float64) float64 {
		idx := int(q * float64(len(lat)-1))
		return float64(lat[idx].Microseconds()) / 1000
	}
	b.ReportMetric(pct(0.50), "p50-ms")
	b.ReportMetric(pct(0.99), "p99-ms")
}

// TestIngestThroughputFloor enforces the ingest plane's performance
// contract in CI: at least 250k records/s through parse + admission +
// durable WAL append + buffering (real hardware does far better; this
// catches only catastrophic regressions, e.g. a re-encode sneaking back
// into the pipeline).
func TestIngestThroughputFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement; skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation costs ~10x on this path; CI gates the floor in a dedicated non-race step")
	}
	p, _ := benchPlane(t, 4)
	body, records := benchBody(16, 4096, 4096)
	const rounds = 4
	start := time.Now()
	for i := 0; i < rounds; i++ {
		batches, n, err := ParseRequest(body)
		if err != nil {
			t.Fatal(err)
		}
		release, err := p.Admit(n)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Submit(batches); err != nil {
			t.Fatal(err)
		}
		release()
	}
	elapsed := time.Since(start)
	total := records * rounds
	rate := float64(total) / elapsed.Seconds()
	t.Logf("ingested %d records in %v (%.0f records/s)", total, elapsed, rate)
	if rate < 250_000 {
		t.Errorf("ingest throughput %.0f records/s below the 250k floor", rate)
	}
	if st := p.Stats(); st.AcceptedRecords != uint64(total) {
		t.Fatalf("accepted %d records, want %d", st.AcceptedRecords, total)
	}
}
