package ingest

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"slim"
	"slim/internal/engine"
	"slim/internal/geo"
	"slim/internal/storage"
)

func testEngine(t *testing.T, shards int) *engine.Engine {
	t.Helper()
	cfg := slim.Defaults()
	cfg.Threshold = slim.ThresholdNone
	eng, err := engine.New(slim.Dataset{Name: "E"}, slim.Dataset{Name: "I"},
		engine.Config{Shards: shards, Link: cfg, Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng
}

func mkRecs(e string, n int) []slim.Record {
	out := make([]slim.Record, 0, n)
	for k := 0; k < n; k++ {
		out = append(out, slim.NewRecord(slim.EntityID(e),
			37.5+float64(k%4)*0.06, -122.3, 1_000_000+int64(k)*900))
	}
	return out
}

func wireBody(t *testing.T, batches ...[]byte) []byte {
	t.Helper()
	var body []byte
	for _, b := range batches {
		body = storage.AppendFrame(body, b)
	}
	return body
}

func TestParseRequest(t *testing.T) {
	body := wireBody(t,
		storage.AppendWireBatch(nil, storage.TagE, mkRecs("a", 10)),
		storage.AppendWireBatch(nil, storage.TagI, mkRecs("b", 5)),
	)
	batches, records, err := ParseRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 || records != 15 {
		t.Fatalf("parsed %d batches / %d records, want 2 / 15", len(batches), records)
	}
	if batches[0].Tag != storage.TagE || batches[1].Tag != storage.TagI {
		t.Fatalf("tags %c %c, want E I", batches[0].Tag, batches[1].Tag)
	}

	bad := slim.Record{Entity: "x", LatLng: geo.LatLng{Lat: 91}} // latitude out of range
	cases := []struct {
		name string
		body []byte
	}{
		{"empty body", nil},
		{"torn frame", body[:len(body)-3]},
		{"bad tag", wireBody(t, append([]byte{'Q'}, storage.AppendWireBatch(nil, storage.TagE, mkRecs("a", 1))[1:]...))},
		{"empty batch", wireBody(t, storage.AppendWireBatch(nil, storage.TagE, nil))},
		{"invalid record", wireBody(t, storage.AppendWireBatch(nil, storage.TagE, []slim.Record{bad}))},
		{"garbage", []byte("not a frame at all")},
	}
	for _, c := range cases {
		if _, _, err := ParseRequest(c.body); err == nil {
			t.Errorf("%s: parsed without error", c.name)
		}
	}
}

func TestAdmitQueueDepth(t *testing.T) {
	p := NewPlane(testEngine(t, 2), Config{QueueDepth: 100})

	rel1, err := p.Admit(60)
	if err != nil {
		t.Fatal(err)
	}
	var se *ShedError
	if _, err := p.Admit(41); !errors.As(err, &se) || se.Cause != "queue-depth" {
		t.Fatalf("over-budget admit = %v, want queue-depth ShedError", err)
	}
	if se.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", se.RetryAfter)
	}
	if rel2, err := p.Admit(40); err != nil { // exactly at budget
		t.Fatalf("at-budget admit shed: %v", err)
	} else {
		rel2()
	}
	rel1()
	rel3, err := p.Admit(100)
	if err != nil {
		t.Fatalf("admit after release shed: %v", err)
	}
	rel3()

	st := p.Stats()
	if st.ShedRequests != 1 || st.ShedRecords != 41 || st.ShedQueueDepth != 1 || st.ShedLatency != 0 {
		t.Fatalf("shed counters %+v", st)
	}
	if st.InflightRecords != 0 {
		t.Fatalf("inflight = %d after all releases, want 0", st.InflightRecords)
	}
}

// TestAdmitCountsEnginePending: records sitting in the engine's per-shard
// relink queues occupy the same budget as in-flight admissions — an I
// record replicated onto k shards counts k times.
func TestAdmitCountsEnginePending(t *testing.T) {
	eng := testEngine(t, 2)
	p := NewPlane(eng, Config{QueueDepth: 100})

	eng.BufferI(mkRecs("i", 45)...) // 45 x 2 shards = 90 resident records
	if _, err := p.Admit(11); err == nil {
		t.Fatal("admit over engine-pending budget succeeded")
	}
	rel, err := p.Admit(10)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	eng.Run() // drains the queues
	rel, err = p.Admit(100)
	if err != nil {
		t.Fatalf("admit after relink drained the queues: %v", err)
	}
	rel()
}

func TestAdmitLatency(t *testing.T) {
	eng := testEngine(t, 2)
	p := NewPlane(eng, Config{QueueDepth: 1 << 20, ShedAfter: time.Millisecond})

	// An in-flight admission that outlives the budget (a stuck fsync)
	// sheds new work.
	rel, err := p.Admit(1)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	var se *ShedError
	if _, err := p.Admit(1); !errors.As(err, &se) || se.Cause != "latency" {
		t.Fatalf("admit with stale inflight = %v, want latency ShedError", err)
	}
	rel()
	if rel2, err := p.Admit(1); err != nil {
		t.Fatalf("admit after release shed: %v", err)
	} else {
		rel2()
	}

	// Engine pending queues older than the budget (a lagging relink) shed
	// the same way.
	eng.BufferE(mkRecs("e", 3)...)
	time.Sleep(5 * time.Millisecond)
	if _, err := p.Admit(1); !errors.As(err, &se) || se.Cause != "latency" {
		t.Fatalf("admit with stale engine pending = %v, want latency ShedError", err)
	}
	if st := p.Stats(); st.OldestWait < 5*time.Millisecond {
		t.Fatalf("OldestWait = %v, want >= 5ms", st.OldestWait)
	}
	eng.Run()
	if rel3, err := p.Admit(1); err != nil {
		t.Fatalf("admit after relink shed: %v", err)
	} else {
		rel3()
	}

	// A negative ShedAfter disables the latency budget entirely.
	pNo := NewPlane(eng, Config{ShedAfter: -1})
	relHold, err := pNo.Admit(1)
	if err != nil {
		t.Fatal(err)
	}
	defer relHold()
	time.Sleep(2 * time.Millisecond)
	if rel4, err := pNo.Admit(1); err != nil {
		t.Fatalf("latency-disabled plane shed: %v", err)
	} else {
		rel4()
	}
}

// TestSubmitBuffersWithoutLogger: a plane with no durable store behaves
// like the JSON path without -data-dir — records go straight to the
// engine's pending queues.
func TestSubmitBuffersWithoutLogger(t *testing.T) {
	eng := testEngine(t, 2)
	p := NewPlane(eng, Config{})

	body := wireBody(t,
		storage.AppendWireBatch(nil, storage.TagE, mkRecs("a", 10)),
		storage.AppendWireBatch(nil, storage.TagI, mkRecs("b", 4)),
	)
	batches, records, err := ParseRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	applied, err := p.Submit(batches)
	if err != nil || applied != 2 {
		t.Fatalf("Submit = %d, %v; want 2, nil", applied, err)
	}
	if want := 10 + 4*eng.NumShards(); eng.Pending() != want {
		t.Fatalf("Pending = %d, want %d", eng.Pending(), want)
	}
	if st := p.Stats(); st.AcceptedBatches != 2 || st.AcceptedRecords != uint64(records) {
		t.Fatalf("accepted counters %+v, want 2 batches / %d records", st, records)
	}
}

// failLogger accepts appends until failAt (0-indexed), then errors.
type failLogger struct {
	n      int
	failAt int
}

func (l *failLogger) LogEncoded(tag byte, recordBytes []byte, recs []slim.Record) (func() error, error) {
	if l.n == l.failAt {
		return nil, fmt.Errorf("injected append failure at batch %d", l.n)
	}
	l.n++
	return func() error { return nil }, nil
}

// TestSubmitDurablePrefix: when an append fails mid-request, the durable
// prefix is buffered (it will be replayed on recovery, so it must be
// visible) and the tail is neither acknowledged nor buffered.
func TestSubmitDurablePrefix(t *testing.T) {
	eng := testEngine(t, 2)
	p := NewPlane(eng, Config{})
	p.AttachLogger(&failLogger{failAt: 2})

	var raw [][]byte
	for i := 0; i < 4; i++ {
		raw = append(raw, storage.AppendWireBatch(nil, storage.TagE, mkRecs(fmt.Sprintf("e%d", i), 5)))
	}
	batches, _, err := ParseRequest(wireBody(t, raw...))
	if err != nil {
		t.Fatal(err)
	}
	applied, err := p.Submit(batches)
	if err == nil {
		t.Fatal("Submit with failing logger returned no error")
	}
	if applied != 2 {
		t.Fatalf("applied = %d, want the 2-batch durable prefix", applied)
	}
	if eng.Pending() != 10 {
		t.Fatalf("Pending = %d, want exactly the durable prefix's 10 records", eng.Pending())
	}
	if st := p.Stats(); st.AcceptedBatches != 2 || st.AcceptedRecords != 10 {
		t.Fatalf("accepted counters %+v, want the prefix only", st)
	}
}
