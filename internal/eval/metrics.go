// Package eval provides the evaluation metrics of the paper's Sec. 5 —
// precision/recall/F1 against sampled ground truth, hit-precision@k,
// relative F1, and speed-up ratios — plus small table-rendering helpers
// shared by the experiment runners.
package eval

import (
	"fmt"
	"sort"
	"strings"

	"slim/internal/model"
)

// Truth maps entities of dataset E to their true counterparts in dataset I.
type Truth map[model.EntityID]model.EntityID

// PRF holds precision, recall and F1.
type PRF struct {
	Precision float64
	Recall    float64
	F1        float64
	TP        int
	FP        int
	FN        int
}

// LinkPair is the minimal view of a produced link that metrics need.
type LinkPair struct {
	U model.EntityID
	V model.EntityID
}

// Score computes precision/recall/F1 of links against the truth. Recall's
// denominator is the number of true pairs (entities present in both
// datasets after sampling/filtering).
func Score(links []LinkPair, truth Truth) PRF {
	var p PRF
	for _, l := range links {
		if truth[l.U] == l.V {
			p.TP++
		} else {
			p.FP++
		}
	}
	p.FN = len(truth) - p.TP
	if p.TP+p.FP > 0 {
		p.Precision = float64(p.TP) / float64(p.TP+p.FP)
	}
	if len(truth) > 0 {
		p.Recall = float64(p.TP) / float64(len(truth))
	}
	if p.Precision+p.Recall > 0 {
		p.F1 = 2 * p.Precision * p.Recall / (p.Precision + p.Recall)
	}
	return p
}

// RankedCandidate is one scored candidate for hit-precision ranking.
type RankedCandidate struct {
	V     model.EntityID
	Score float64
}

// HitPrecisionAtK computes the paper's Hit-Precision@k (Sec. 5.5): for each
// E entity with a true match, find the 1-based rank of the true I entity in
// its descending score list and credit max(0, 1 − (rank−1)/k); entities
// whose true match is absent from the ranking score 0. The average over
// all truth entities is returned.
//
// (The paper's formula "1 − max(rank/k, 1)" is degenerate — constant 0 —
// and is corrected here to the standard form; see DESIGN.md §6.4.)
func HitPrecisionAtK(rankings map[model.EntityID][]RankedCandidate, truth Truth, k int) float64 {
	if len(truth) == 0 || k <= 0 {
		return 0
	}
	var sum float64
	for u, want := range truth {
		cands := rankings[u]
		// Sort defensively (stable order: score desc, id asc).
		sorted := append([]RankedCandidate(nil), cands...)
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].Score != sorted[j].Score {
				return sorted[i].Score > sorted[j].Score
			}
			return sorted[i].V < sorted[j].V
		})
		for rank, c := range sorted {
			if c.V == want {
				credit := 1 - float64(rank)/float64(k)
				if credit > 0 {
					sum += credit
				}
				break
			}
		}
	}
	return sum / float64(len(truth))
}

// RelativeF1 returns f1With / f1Without, the Fig. 8 quality measure
// (LSH-filtered linkage relative to brute force). Returns 0 when the
// baseline F1 is 0.
func RelativeF1(f1With, f1Without float64) float64 {
	if f1Without == 0 {
		return 0
	}
	return f1With / f1Without
}

// SpeedUp returns baseline/accelerated (e.g. record comparisons without
// LSH over with LSH). Returns 0 when the accelerated count is 0.
func SpeedUp(baseline, accelerated int64) float64 {
	if accelerated == 0 {
		return 0
	}
	return float64(baseline) / float64(accelerated)
}

// Table is a simple aligned-text table for experiment output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row formatting each value with %v (floats with %g).
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, cells)
}

// Render produces the aligned table text.
func (t Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
