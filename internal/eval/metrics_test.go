package eval

import (
	"math"
	"strings"
	"testing"

	"slim/internal/model"
)

func TestScoreCounts(t *testing.T) {
	truth := Truth{"e1": "i1", "e2": "i2", "e3": "i3"}
	links := []LinkPair{
		{U: "e1", V: "i1"},
		{U: "e2", V: "iX"},
	}
	p := Score(links, truth)
	if p.TP != 1 || p.FP != 1 || p.FN != 2 {
		t.Fatalf("TP=%d FP=%d FN=%d", p.TP, p.FP, p.FN)
	}
	if p.Precision != 0.5 {
		t.Errorf("precision = %g", p.Precision)
	}
	if math.Abs(p.Recall-1.0/3) > 1e-12 {
		t.Errorf("recall = %g", p.Recall)
	}
	if p.F1 <= 0 || p.F1 >= 1 {
		t.Errorf("f1 = %g", p.F1)
	}
}

func TestScoreEdgeCases(t *testing.T) {
	if p := Score(nil, Truth{}); p.Precision != 0 || p.Recall != 0 || p.F1 != 0 {
		t.Error("empty everything should be all zeros")
	}
	p := Score([]LinkPair{{U: "a", V: "b"}}, Truth{})
	if p.Precision != 0 || p.FP != 1 {
		t.Error("links against empty truth are all FPs")
	}
}

func TestHitPrecisionAtK(t *testing.T) {
	truth := Truth{"e1": "i1", "e2": "i2"}
	rankings := map[model.EntityID][]RankedCandidate{
		// e1's true match ranked 1st → credit 1.
		"e1": {{V: "i1", Score: 10}, {V: "i2", Score: 5}},
		// e2's true match ranked 3rd → credit 1 - 2/4 = 0.5.
		"e2": {{V: "i9", Score: 9}, {V: "i8", Score: 8}, {V: "i2", Score: 7}},
	}
	got := HitPrecisionAtK(rankings, truth, 4)
	want := (1.0 + 0.5) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("hit-precision = %g, want %g", got, want)
	}
}

func TestHitPrecisionRankBeyondK(t *testing.T) {
	truth := Truth{"e1": "i1"}
	var cands []RankedCandidate
	for i := 0; i < 50; i++ {
		cands = append(cands, RankedCandidate{V: model.EntityID(runeID(i)), Score: float64(100 - i)})
	}
	cands = append(cands, RankedCandidate{V: "i1", Score: 0}) // rank 51
	got := HitPrecisionAtK(map[model.EntityID][]RankedCandidate{"e1": cands}, truth, 40)
	if got != 0 {
		t.Errorf("rank beyond k should credit 0, got %g", got)
	}
	// Missing ranking entirely also credits 0.
	if HitPrecisionAtK(nil, truth, 40) != 0 {
		t.Error("missing rankings should credit 0")
	}
	// Degenerate k.
	if HitPrecisionAtK(nil, truth, 0) != 0 {
		t.Error("k=0 should be 0")
	}
}

func runeID(i int) string {
	return "x" + string(rune('a'+i%26)) + string(rune('a'+i/26))
}

func TestHitPrecisionTieBreakDeterministic(t *testing.T) {
	truth := Truth{"e1": "i1"}
	rankings := map[model.EntityID][]RankedCandidate{
		"e1": {{V: "i2", Score: 5}, {V: "i1", Score: 5}},
	}
	first := HitPrecisionAtK(rankings, truth, 4)
	for i := 0; i < 5; i++ {
		if HitPrecisionAtK(rankings, truth, 4) != first {
			t.Fatal("tie handling not deterministic")
		}
	}
	// With ids tie-broken ascending, i1 ranks before i2 → full credit.
	if first != 1 {
		t.Errorf("tie-break should rank i1 first, credit 1; got %g", first)
	}
}

func TestRelativeF1AndSpeedUp(t *testing.T) {
	if RelativeF1(0.9, 1.0) != 0.9 {
		t.Error("relative f1 wrong")
	}
	if RelativeF1(0.5, 0) != 0 {
		t.Error("zero baseline should give 0")
	}
	if SpeedUp(1000, 10) != 100 {
		t.Error("speed-up wrong")
	}
	if SpeedUp(10, 0) != 0 {
		t.Error("zero denominator should give 0")
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Title: "demo", Header: []string{"a", "bb", "ccc"}}
	tb.AddRow("1", "2", "3")
	tb.AddRowf(1.23456, 7, "x")
	out := tb.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "bb") {
		t.Errorf("render missing pieces:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("render has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "1.235") {
		t.Errorf("AddRowf float formatting missing: %s", out)
	}
}
