// Package fault is slimd's deterministic fault-injection layer: named
// injection points ("sites") scattered through the storage, engine, and
// ingest code hit an Injector that is silent in production (a nil
// Injector costs one pointer comparison) and, when armed, injects an
// error, a latency stall, or a panic on a precisely scheduled subset of
// the hits.
//
// A site is a stable string like "fs.sync" or "engine.rescore". Arming
// binds a Rule to a site; the rule's trigger fields pick WHICH hits
// fire:
//
//	After n  — the first n hits pass through untouched
//	Every k  — of the remaining hits, fire every k-th (1 = all)
//	Count c  — fire at most c times, then the rule goes inert (0 = ∞)
//
// and its action fields pick WHAT happens on a fired hit, applied in
// order: Delay sleeps, then Panic panics, then Err is returned. Rules
// are deterministic functions of the hit index, so a fault schedule
// replays identically under the same call sequence — the property the
// chaos suite's fixed seeds rely on.
//
// All methods are safe for concurrent use and safe on a nil *Injector.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the error injected by a Rule with Err == nil; tests
// and callers can errors.Is against it to distinguish injected faults
// from organic ones.
var ErrInjected = errors.New("fault: injected error")

// Rule describes one armed fault: when it fires (After/Every/Count over
// the site's hit sequence) and what it does (Delay, then Panic, then
// Err). The zero action with a match still counts as fired but injects
// ErrInjected, so an armed rule is never silently a no-op.
type Rule struct {
	// Err is returned from Hit on a fired match. Nil means ErrInjected
	// unless Panic or Delay is set (a pure delay rule returns nil).
	Err error
	// Panic, when non-empty, panics with this value on a fired match.
	Panic string
	// Delay, when positive, sleeps before returning on a fired match.
	Delay time.Duration

	// After skips the first After hits entirely.
	After int
	// Every fires every Every-th eligible hit (0 and 1 both mean every
	// eligible hit).
	Every int
	// Count caps how many times the rule fires (0 = unlimited).
	Count int
}

// armed is one site's live rule plus its hit bookkeeping.
type armed struct {
	rule  Rule
	hits  int // Hit calls seen since arming
	fired int // times the rule fired
}

// Injector is a set of armed sites. The zero value and nil are both
// valid, never-firing injectors.
type Injector struct {
	mu    sync.Mutex
	sites map[string]*armed
	seen  map[string]int // hit counts for every site, armed or not
}

// New returns an empty injector.
func New() *Injector {
	return &Injector{sites: make(map[string]*armed), seen: make(map[string]int)}
}

// Arm binds rule to site, replacing any previous rule and resetting the
// site's trigger bookkeeping.
func (in *Injector) Arm(site string, rule Rule) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.sites == nil {
		in.sites = make(map[string]*armed)
	}
	in.sites[site] = &armed{rule: rule}
}

// Disarm removes site's rule; outstanding hit counts (Hits) survive.
func (in *Injector) Disarm(site string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.sites, site)
}

// DisarmAll removes every rule — the chaos suite's "heal" step.
func (in *Injector) DisarmAll() {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sites = make(map[string]*armed)
}

// Hit reports one execution of site. It returns the armed rule's error
// on a fired match (sleeping and panicking first when the rule says
// so), and nil otherwise. Safe — and one comparison cheap — on a nil
// injector, so injection points need no build tags.
func (in *Injector) Hit(site string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	if in.seen == nil {
		in.seen = make(map[string]int)
	}
	in.seen[site]++
	a := in.sites[site]
	if a == nil {
		in.mu.Unlock()
		return nil
	}
	a.hits++
	fire := false
	if idx := a.hits - a.rule.After; idx >= 1 {
		every := a.rule.Every
		if every <= 1 {
			every = 1
		}
		if idx%every == 0 && (a.rule.Count == 0 || a.fired < a.rule.Count) {
			a.fired++
			fire = true
		}
	}
	rule := a.rule
	in.mu.Unlock()
	if !fire {
		return nil
	}
	if rule.Delay > 0 {
		time.Sleep(rule.Delay)
	}
	if rule.Panic != "" {
		panic("fault: injected panic: " + rule.Panic)
	}
	if rule.Err != nil {
		return rule.Err
	}
	if rule.Delay > 0 {
		return nil // pure latency rule
	}
	return ErrInjected
}

// Hits returns how many times site has been hit since the injector was
// built (armed or not) — the call-index oracle the FS failure sweeps
// use to enumerate every injectable call.
func (in *Injector) Hits(site string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seen[site]
}

// Fired returns how many times site's current rule has fired (0 when
// the site is not armed).
func (in *Injector) Fired(site string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if a := in.sites[site]; a != nil {
		return a.fired
	}
	return 0
}

// Sites returns the hit-counted site names in sorted order (debugging
// and sweep enumeration).
func (in *Injector) Sites() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.seen))
	for s := range in.seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// ArmSpec arms one textual fault spec — the slimd -fault flag's format:
//
//	site:action[:trigger]...
//
// where action is "error" (inject ErrInjected), "panic[=msg]", or
// "delay=DURATION", and each trigger is "after=N", "every=N", or
// "count=N". Actions and triggers may be combined in any order after
// the site. Examples:
//
//	fs.sync:error:after=5:count=2
//	engine.rescore:panic:count=1
//	fs.write:delay=50ms:every=10
func (in *Injector) ArmSpec(spec string) error {
	site, rule, err := ParseSpec(spec)
	if err != nil {
		return err
	}
	in.Arm(site, rule)
	return nil
}

// ParseSpec parses one -fault spec (see ArmSpec).
func ParseSpec(spec string) (site string, rule Rule, err error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || parts[0] == "" {
		return "", Rule{}, fmt.Errorf("fault: bad spec %q: want site:action[:trigger]...", spec)
	}
	site = parts[0]
	action := false
	for _, p := range parts[1:] {
		key, val, hasVal := strings.Cut(p, "=")
		switch key {
		case "error", "err":
			rule.Err = ErrInjected
			action = true
		case "panic":
			rule.Panic = "armed by spec"
			if hasVal {
				rule.Panic = val
			}
			action = true
		case "delay":
			if !hasVal {
				return "", Rule{}, fmt.Errorf("fault: spec %q: delay needs a duration", spec)
			}
			d, derr := time.ParseDuration(val)
			if derr != nil || d < 0 {
				return "", Rule{}, fmt.Errorf("fault: spec %q: bad delay %q", spec, val)
			}
			rule.Delay = d
			action = true
		case "after", "every", "count":
			if !hasVal {
				return "", Rule{}, fmt.Errorf("fault: spec %q: %s needs a number", spec, key)
			}
			n, nerr := strconv.Atoi(val)
			if nerr != nil || n < 0 {
				return "", Rule{}, fmt.Errorf("fault: spec %q: bad %s %q", spec, key, val)
			}
			switch key {
			case "after":
				rule.After = n
			case "every":
				rule.Every = n
			case "count":
				rule.Count = n
			}
		default:
			return "", Rule{}, fmt.Errorf("fault: spec %q: unknown field %q", spec, p)
		}
	}
	if !action {
		return "", Rule{}, fmt.Errorf("fault: spec %q: no action (error, panic, or delay)", spec)
	}
	return site, rule, nil
}
