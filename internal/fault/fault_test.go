package fault

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsSilent(t *testing.T) {
	var in *Injector
	if err := in.Hit("anything"); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	in.Arm("x", Rule{Err: ErrInjected}) // must not panic
	in.Disarm("x")
	in.DisarmAll()
	if in.Hits("x") != 0 || in.Fired("x") != 0 || in.Sites() != nil {
		t.Fatal("nil injector reported state")
	}
}

func TestTriggersAfterEveryCount(t *testing.T) {
	in := New()
	// Skip 2, then fire every 3rd eligible hit, at most twice:
	// hits 1,2 pass (after); eligible indices 1.. map to hits 3,4,5,...
	// every=3 fires at eligible index 3,6 → hits 5 and 8.
	in.Arm("s", Rule{Err: ErrInjected, After: 2, Every: 3, Count: 2})
	var fired []int
	for i := 1; i <= 12; i++ {
		if err := in.Hit("s"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: wrong error %v", i, err)
			}
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 8 {
		t.Fatalf("fired at %v, want [5 8]", fired)
	}
	if in.Fired("s") != 2 || in.Hits("s") != 12 {
		t.Fatalf("fired=%d hits=%d, want 2/12", in.Fired("s"), in.Hits("s"))
	}
}

func TestDefaultActionIsErrInjected(t *testing.T) {
	in := New()
	in.Arm("s", Rule{Count: 1})
	if err := in.Hit("s"); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if err := in.Hit("s"); err != nil {
		t.Fatalf("count=1 rule fired twice: %v", err)
	}
}

func TestPanicAction(t *testing.T) {
	in := New()
	in.Arm("s", Rule{Panic: "boom", Count: 1})
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "boom") {
			t.Fatalf("recovered %v, want injected panic", r)
		}
	}()
	_ = in.Hit("s")
	t.Fatal("unreachable: Hit should have panicked")
}

func TestDelayAction(t *testing.T) {
	in := New()
	in.Arm("s", Rule{Delay: 30 * time.Millisecond, Count: 1})
	start := time.Now()
	if err := in.Hit("s"); err != nil {
		t.Fatalf("pure delay rule returned error: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay rule slept %v, want >= 30ms", d)
	}
}

func TestHitCountsUnarmedSites(t *testing.T) {
	in := New()
	for i := 0; i < 3; i++ {
		if err := in.Hit("quiet"); err != nil {
			t.Fatal(err)
		}
	}
	if in.Hits("quiet") != 3 {
		t.Fatalf("hits = %d, want 3", in.Hits("quiet"))
	}
	if got := in.Sites(); len(got) != 1 || got[0] != "quiet" {
		t.Fatalf("sites = %v", got)
	}
}

func TestDisarmAndRearmResetsTriggers(t *testing.T) {
	in := New()
	in.Arm("s", Rule{Err: ErrInjected, After: 1})
	_ = in.Hit("s") // consumed by After
	in.Arm("s", Rule{Err: ErrInjected, After: 1})
	if err := in.Hit("s"); err != nil {
		t.Fatal("re-arming should reset After bookkeeping")
	}
	if err := in.Hit("s"); !errors.Is(err, ErrInjected) {
		t.Fatal("rule should fire on second hit after re-arm")
	}
	in.Disarm("s")
	if err := in.Hit("s"); err != nil {
		t.Fatalf("disarmed site fired: %v", err)
	}
}

func TestConcurrentHits(t *testing.T) {
	in := New()
	in.Arm("s", Rule{Err: ErrInjected, Every: 2})
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				if err := in.Hit("s"); err != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if in.Hits("s") != 2000 {
		t.Fatalf("hits = %d, want 2000", in.Hits("s"))
	}
	if fired != 1000 || in.Fired("s") != 1000 {
		t.Fatalf("fired = %d (tracker %d), want 1000", fired, in.Fired("s"))
	}
}

func TestParseSpec(t *testing.T) {
	site, r, err := ParseSpec("fs.sync:error:after=5:count=2")
	if err != nil || site != "fs.sync" || !errors.Is(r.Err, ErrInjected) || r.After != 5 || r.Count != 2 {
		t.Fatalf("got %q %+v %v", site, r, err)
	}
	site, r, err = ParseSpec("engine.rescore:panic=kaboom:count=1")
	if err != nil || site != "engine.rescore" || r.Panic != "kaboom" || r.Count != 1 {
		t.Fatalf("got %q %+v %v", site, r, err)
	}
	_, r, err = ParseSpec("fs.write:delay=50ms:every=10")
	if err != nil || r.Delay != 50*time.Millisecond || r.Every != 10 {
		t.Fatalf("got %+v %v", r, err)
	}
	for _, bad := range []string{
		"", "siteonly", ":error", "s:after=1", "s:delay", "s:delay=-1s",
		"s:bogus", "s:every=x", "s:error:after=-3",
	} {
		if _, _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted a bad spec", bad)
		}
	}
}

func TestArmSpec(t *testing.T) {
	in := New()
	if err := in.ArmSpec("s:error:count=1"); err != nil {
		t.Fatal(err)
	}
	if err := in.Hit("s"); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed spec did not fire: %v", err)
	}
	if err := in.ArmSpec("nonsense"); err == nil {
		t.Fatal("bad spec accepted")
	}
}
