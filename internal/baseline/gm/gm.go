// Package gm reimplements the GM baseline (Wang, Gao, Li, Wang, Jin, Sun:
// "De-anonymization of Mobility Trajectories: Dissecting the Gaps between
// Theory and Practice", NDSS 2018) as described there and in Sec. 5.5 of
// the SLIM paper.
//
// GM learns a per-entity mobility model — a spatial Gaussian mixture over
// the entity's record locations plus a Markov transition model over coarse
// grid cells — and scores a cross-dataset pair by the likelihood of one
// entity's records under the other's model (symmetrized). Unlike SLIM it
// also awards record pairs from different temporal windows, which the
// Markov component captures. GM has no scalability mechanism: every cross
// pair is scored, and each score iterates over records × mixture
// components, which is why the paper measures it two orders of magnitude
// slower than SLIM and ST-Link.
//
// As in the paper's evaluation, GM's raw pair scores are fed through
// SLIM's bipartite matching and automated stop threshold to obtain final
// one-to-one links.
package gm

import (
	"math"
	"sort"

	"slim/internal/geo"
	"slim/internal/matching"
	"slim/internal/mathx"
	"slim/internal/model"
	"slim/internal/threshold"
)

// Params configures the GM baseline.
type Params struct {
	// Components is the number of spatial mixture components per entity.
	Components int
	// MarkovLevel is the coarse grid level of the transition model.
	MarkovLevel int
	// EMIterations bounds the per-entity EM fit.
	EMIterations int
}

// DefaultParams returns the configuration used in the comparison
// experiments: 4 components, level-10 transitions.
func DefaultParams() Params {
	return Params{Components: 4, MarkovLevel: 10, EMIterations: 25}
}

// Model is one entity's learned mobility model.
type Model struct {
	weights []float64    // mixture weights
	means   [][2]float64 // lat, lng per component
	stds    [][2]float64 // diagonal std devs per component
	// trans holds log transition probabilities between coarse cells with
	// Laplace smoothing; logStationary the marginal cell log-probs.
	trans         map[[2]geo.CellID]float64
	logStationary map[geo.CellID]float64
	logUnseenCell float64
	logUnseenPair float64
	level         int
}

// Fit learns a model from one entity's time-sorted records.
func Fit(recs []model.Record, p Params) *Model {
	if p.Components <= 0 {
		p.Components = 4
	}
	if p.EMIterations <= 0 {
		p.EMIterations = 25
	}
	if p.MarkovLevel <= 0 {
		p.MarkovLevel = 10
	}
	m := &Model{level: p.MarkovLevel}
	if len(recs) == 0 {
		m.logUnseenCell = math.Log(1e-9)
		m.logUnseenPair = math.Log(1e-9)
		return m
	}
	m.fitSpatial(recs, p)
	m.fitMarkov(recs, p)
	return m
}

// fitSpatial runs a small EM for a diagonal-covariance 2-D GMM over the
// record coordinates, seeded by quantile splits for determinism.
func (m *Model) fitSpatial(recs []model.Record, p Params) {
	k := p.Components
	if k > len(recs) {
		k = len(recs)
	}
	pts := make([][2]float64, len(recs))
	for i, r := range recs {
		pts[i] = [2]float64{r.LatLng.Lat, r.LatLng.Lng}
	}
	// Deterministic init: sort by lat then take quantile centroids.
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if pts[idx[a]][0] != pts[idx[b]][0] {
			return pts[idx[a]][0] < pts[idx[b]][0]
		}
		return pts[idx[a]][1] < pts[idx[b]][1]
	})
	m.weights = make([]float64, k)
	m.means = make([][2]float64, k)
	m.stds = make([][2]float64, k)
	for c := 0; c < k; c++ {
		q := idx[(c*2+1)*(len(idx)-1)/(2*k)]
		m.means[c] = pts[q]
		m.weights[c] = 1 / float64(k)
		m.stds[c] = [2]float64{0.01, 0.01} // ~1km prior scale
	}
	const minStd = 1e-4 // ~10m floor keeps densities finite
	resp := make([][]float64, len(pts))
	for i := range resp {
		resp[i] = make([]float64, k)
	}
	for iter := 0; iter < p.EMIterations; iter++ {
		// E-step.
		for i, pt := range pts {
			var sum float64
			for c := 0; c < k; c++ {
				d := m.weights[c] *
					mathx.NormalPDF(pt[0], m.means[c][0], m.stds[c][0]) *
					mathx.NormalPDF(pt[1], m.means[c][1], m.stds[c][1])
				resp[i][c] = d
				sum += d
			}
			if sum <= 0 {
				for c := 0; c < k; c++ {
					resp[i][c] = 1 / float64(k)
				}
				continue
			}
			for c := 0; c < k; c++ {
				resp[i][c] /= sum
			}
		}
		// M-step.
		for c := 0; c < k; c++ {
			var w, mLat, mLng float64
			for i, pt := range pts {
				w += resp[i][c]
				mLat += resp[i][c] * pt[0]
				mLng += resp[i][c] * pt[1]
			}
			if w < 1e-9 {
				continue
			}
			m.weights[c] = w / float64(len(pts))
			m.means[c] = [2]float64{mLat / w, mLng / w}
			var vLat, vLng float64
			for i, pt := range pts {
				dLat := pt[0] - m.means[c][0]
				dLng := pt[1] - m.means[c][1]
				vLat += resp[i][c] * dLat * dLat
				vLng += resp[i][c] * dLng * dLng
			}
			m.stds[c] = [2]float64{
				math.Max(math.Sqrt(vLat/w), minStd),
				math.Max(math.Sqrt(vLng/w), minStd),
			}
		}
	}
}

// fitMarkov counts coarse-cell transitions with Laplace smoothing.
func (m *Model) fitMarkov(recs []model.Record, p Params) {
	cells := make([]geo.CellID, len(recs))
	for i, r := range recs {
		cells[i] = geo.CellIDFromLatLngLevel(r.LatLng, p.MarkovLevel)
	}
	cellCount := make(map[geo.CellID]int)
	pairCount := make(map[[2]geo.CellID]int)
	for i, c := range cells {
		cellCount[c]++
		if i > 0 {
			pairCount[[2]geo.CellID{cells[i-1], c}]++
		}
	}
	distinct := float64(len(cellCount)) + 1
	m.logStationary = make(map[geo.CellID]float64, len(cellCount))
	for c, n := range cellCount {
		m.logStationary[c] = math.Log((float64(n) + 1) / (float64(len(cells)) + distinct))
	}
	m.logUnseenCell = math.Log(1 / (float64(len(cells)) + distinct))
	m.trans = make(map[[2]geo.CellID]float64, len(pairCount))
	for pr, n := range pairCount {
		m.trans[pr] = math.Log((float64(n) + 1) / (float64(cellCount[pr[0]]) + distinct))
	}
	m.logUnseenPair = math.Log(1 / (float64(len(cells)) + distinct))
}

// LogLikelihood scores a record sequence under the model: average per
// record of (spatial mixture log-density + Markov log-probability).
// Averaging removes the record-count bias so sparse and dense entities are
// comparable.
func (m *Model) LogLikelihood(recs []model.Record) float64 {
	if len(recs) == 0 || len(m.weights) == 0 {
		return math.Inf(-1)
	}
	var total float64
	var prevCell geo.CellID
	for i, r := range recs {
		var density float64
		for c := range m.weights {
			density += m.weights[c] *
				mathx.NormalPDF(r.LatLng.Lat, m.means[c][0], m.stds[c][0]) *
				mathx.NormalPDF(r.LatLng.Lng, m.means[c][1], m.stds[c][1])
		}
		if density < 1e-300 {
			density = 1e-300
		}
		total += math.Log(density)

		cell := geo.CellIDFromLatLngLevel(r.LatLng, m.level)
		if i == 0 {
			if lp, ok := m.logStationary[cell]; ok {
				total += lp
			} else {
				total += m.logUnseenCell
			}
		} else {
			if lp, ok := m.trans[[2]geo.CellID{prevCell, cell}]; ok {
				total += lp
			} else if lp, ok := m.logStationary[cell]; ok {
				// Award revisits of known places even across windows.
				total += lp
			} else {
				total += m.logUnseenPair
			}
		}
		prevCell = cell
	}
	return total / float64(len(recs))
}

// Result is the GM linkage output plus instrumentation.
type Result struct {
	// Links are the final links after SLIM's matcher + stop threshold.
	Links []matching.Edge
	// Matched is the full matching before thresholding.
	Matched []matching.Edge
	// Threshold is the automatically selected stop score.
	Threshold float64
	// PairScores holds every scored cross pair (for hit-precision).
	PairScores []matching.Edge
	// RecordComparisons counts record×component likelihood evaluations.
	RecordComparisons int64
}

// Link fits a model per entity and scores every cross pair, then applies
// SLIM's greedy matching and automated stop threshold over the scores.
func Link(dsE, dsI *model.Dataset, p Params) Result {
	byE := dsE.ByEntity()
	byI := dsI.ByEntity()
	esIDs := dsE.Entities()
	isIDs := dsI.Entities()

	modelsE := make(map[model.EntityID]*Model, len(esIDs))
	for _, u := range esIDs {
		modelsE[u] = Fit(byE[u], p)
	}
	modelsI := make(map[model.EntityID]*Model, len(isIDs))
	for _, v := range isIDs {
		modelsI[v] = Fit(byI[v], p)
	}

	var res Result
	for _, u := range esIDs {
		for _, v := range isIDs {
			// Symmetrized likelihood.
			s := modelsI[v].LogLikelihood(byE[u]) + modelsE[u].LogLikelihood(byI[v])
			res.RecordComparisons += int64(len(byE[u])+len(byI[v])) * int64(p.Components)
			if math.IsInf(s, -1) {
				continue
			}
			res.PairScores = append(res.PairScores, matching.Edge{U: u, V: v, W: s})
		}
	}
	res.Matched = matching.Greedy(res.PairScores)
	weights := make([]float64, len(res.Matched))
	for i, e := range res.Matched {
		weights[i] = e.W
	}
	thr := threshold.SelectThreshold(weights)
	res.Threshold = thr.Threshold
	res.Links = matching.FilterThreshold(res.Matched, thr.Threshold)
	return res
}
