package gm

import (
	"math"
	"testing"

	"slim/internal/datagen"
	"slim/internal/geo"
	"slim/internal/matching"
	"slim/internal/model"
)

func rec(e string, lat, lng float64, unix int64) model.Record {
	return model.Record{Entity: model.EntityID(e), LatLng: geo.LatLng{Lat: lat, Lng: lng}, Unix: unix}
}

// walker emits records orbiting a set of anchor points.
func walker(e string, anchors [][2]float64, n int, phase int64) []model.Record {
	var out []model.Record
	for k := 0; k < n; k++ {
		a := anchors[k%len(anchors)]
		jLat := float64((k*13)%7-3) * 0.0004
		jLng := float64((k*7)%5-2) * 0.0004
		out = append(out, rec(e, a[0]+jLat, a[1]+jLng, int64(k)*600+phase))
	}
	return out
}

func TestFitAndLikelihoodPreferOwner(t *testing.T) {
	anchorsA := [][2]float64{{37.77, -122.42}, {37.80, -122.40}}
	anchorsB := [][2]float64{{40.71, -74.00}, {40.75, -73.99}}
	recsA := walker("a", anchorsA, 60, 0)
	recsB := walker("b", anchorsB, 60, 0)
	p := DefaultParams()
	mA := Fit(recsA, p)
	llOwn := mA.LogLikelihood(recsA)
	llOther := mA.LogLikelihood(recsB)
	if llOwn <= llOther {
		t.Errorf("model must prefer its own records: own=%g other=%g", llOwn, llOther)
	}
	if math.IsNaN(llOwn) || math.IsInf(llOwn, 0) {
		t.Errorf("own likelihood degenerate: %g", llOwn)
	}
}

func TestLikelihoodPrefersSameHabits(t *testing.T) {
	anchors := [][2]float64{{37.77, -122.42}, {37.80, -122.40}, {37.75, -122.45}}
	other := [][2]float64{{37.70, -122.38}}
	mA := Fit(walker("a", anchors, 50, 0), DefaultParams())
	// A different sample of the same habits vs a nearby but different
	// routine: same habits must win.
	same := walker("a2", anchors, 30, 300)
	diff := walker("d", other, 30, 300)
	if mA.LogLikelihood(same) <= mA.LogLikelihood(diff) {
		t.Error("model must prefer records drawn from the same habits")
	}
}

func TestFitDegenerate(t *testing.T) {
	m := Fit(nil, DefaultParams())
	if !math.IsInf(m.LogLikelihood(nil), -1) {
		t.Error("empty model/records should give -Inf")
	}
	single := []model.Record{rec("s", 37.77, -122.42, 0)}
	m = Fit(single, DefaultParams())
	ll := m.LogLikelihood(single)
	if math.IsNaN(ll) || math.IsInf(ll, 0) {
		t.Errorf("single-record model degenerate: %g", ll)
	}
}

func TestFitDeterministic(t *testing.T) {
	recs := walker("a", [][2]float64{{37.77, -122.42}, {37.80, -122.40}}, 40, 0)
	probe := walker("p", [][2]float64{{37.78, -122.41}}, 10, 7)
	m1 := Fit(recs, DefaultParams())
	m2 := Fit(recs, DefaultParams())
	if m1.LogLikelihood(probe) != m2.LogLikelihood(probe) {
		t.Error("fitting is not deterministic")
	}
}

func TestLinkRecoversCleanPairs(t *testing.T) {
	var dsE, dsI model.Dataset
	cities := [][2]float64{
		{37.77, -122.42}, {40.71, -74.00}, {51.50, -0.12}, {35.67, 139.65}, {48.85, 2.35},
	}
	for e, c := range cities {
		anchors := [][2]float64{
			{c[0], c[1]}, {c[0] + 0.03, c[1] + 0.02}, {c[0] - 0.02, c[1] + 0.03},
		}
		eid := "e" + string(rune('a'+e))
		iid := "i" + string(rune('a'+e))
		dsE.Records = append(dsE.Records, walker(eid, anchors, 30, 0)...)
		dsI.Records = append(dsI.Records, walker(iid, anchors, 30, 120)...)
	}
	res := Link(&dsE, &dsI, DefaultParams())
	if !matching.Valid(res.Links) {
		t.Fatal("GM links are not a matching")
	}
	// The matching itself must recover the clean pairs. (The stop
	// threshold may legitimately trim an all-true-positive blob — there is
	// no FP cluster to separate — so correctness is asserted on Matched.)
	correct := 0
	for _, l := range res.Matched {
		if "i"+string(l.U[1]) == string(l.V) {
			correct++
		}
	}
	if correct < 4 {
		t.Errorf("GM matched %d/5 clean pairs (matched %v)", correct, res.Matched)
	}
	// Links must be a threshold-filtered subset of Matched.
	inMatched := make(map[matching.Edge]bool)
	for _, e := range res.Matched {
		inMatched[e] = true
	}
	for _, l := range res.Links {
		if !inMatched[l] {
			t.Errorf("link %v not in matched set", l)
		}
	}
	if res.RecordComparisons == 0 {
		t.Error("record comparisons not counted")
	}
	if len(res.PairScores) != 25 {
		t.Errorf("scored %d pairs, want 25 (all cross pairs)", len(res.PairScores))
	}
}

func TestLinkOnSampledCab(t *testing.T) {
	src := datagen.Cab(datagen.CabConfig{NumTaxis: 16, Days: 1, MeanRecordIntervalSec: 600, Seed: 31})
	s := datagen.Sample(&src, datagen.SampleConfig{IntersectionRatio: 0.6, InclusionProbE: 0.8, InclusionProbI: 0.8, Seed: 32})
	res := Link(&s.E, &s.I, DefaultParams())
	if !matching.Valid(res.Links) {
		t.Fatal("GM links are not a matching")
	}
	// Cab entities share one metro and GM is weak there (the paper's
	// point); just require the pipeline to run and produce sane output.
	for _, l := range res.Links {
		if math.IsNaN(l.W) {
			t.Fatal("NaN link weight")
		}
	}
	if res.Threshold != 0 && len(res.Matched) > 0 {
		// Threshold must lie within the matched score range.
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, e := range res.Matched {
			lo = math.Min(lo, e.W)
			hi = math.Max(hi, e.W)
		}
		if res.Threshold < lo-1e-9 || res.Threshold > hi+1e-9 {
			t.Errorf("threshold %g outside matched range [%g, %g]", res.Threshold, lo, hi)
		}
	}
}

func TestLinkEmpty(t *testing.T) {
	var e, i model.Dataset
	res := Link(&e, &i, DefaultParams())
	if len(res.Links) != 0 {
		t.Error("empty inputs should produce no links")
	}
}
