package stlink

import (
	"testing"

	"slim/internal/datagen"
	"slim/internal/geo"
	"slim/internal/matching"
	"slim/internal/model"
)

var wnd = model.Windowing{Epoch: 0, WidthSeconds: 900}

func rec(e string, lat, lng float64, unix int64) model.Record {
	return model.Record{Entity: model.EntityID(e), LatLng: geo.LatLng{Lat: lat, Lng: lng}, Unix: unix}
}

// movers builds two datasets where eK and iK follow the same distinctive
// multi-cell routes (co-occurring in diverse locations).
func movers(n, steps int) (model.Dataset, model.Dataset) {
	var dsE, dsI model.Dataset
	dsE.Name, dsI.Name = "E", "I"
	for e := 0; e < n; e++ {
		eid := "e" + string(rune('a'+e))
		iid := "i" + string(rune('a'+e))
		for k := 0; k < steps; k++ {
			unix := int64(900 * k)
			lat := 37.0 + float64(e)*0.4 + float64(k%5)*0.05
			lng := -122.4 + float64(k%7)*0.05
			dsE.Records = append(dsE.Records, rec(eid, lat, lng, unix))
			dsI.Records = append(dsI.Records, rec(iid, lat, lng, unix+30))
		}
	}
	return dsE, dsI
}

func TestLinkRecoversCleanPairs(t *testing.T) {
	dsE, dsI := movers(6, 20)
	res := Link(&dsE, &dsI, DefaultParams(wnd, 12))
	if len(res.Links) != 6 {
		t.Fatalf("linked %d pairs, want 6 (links: %v, k=%d l=%d)", len(res.Links), res.Links, res.K, res.L)
	}
	for _, l := range res.Links {
		if "i"+string(l.U[1]) != string(l.V) {
			t.Errorf("wrong link %s-%s", l.U, l.V)
		}
	}
	if res.RecordComparisons == 0 {
		t.Error("record comparisons not counted")
	}
}

func TestAmbiguityElimination(t *testing.T) {
	// Two I entities identical to one E entity: qualified twice → dropped.
	var dsE, dsI model.Dataset
	for k := 0; k < 15; k++ {
		unix := int64(900 * k)
		lat := 37.0 + float64(k%5)*0.05
		dsE.Records = append(dsE.Records, rec("u", lat, -122.4, unix))
		dsI.Records = append(dsI.Records, rec("v1", lat, -122.4, unix+10))
		dsI.Records = append(dsI.Records, rec("v2", lat, -122.4, unix+20))
		// An unambiguous control pair far away.
		dsE.Records = append(dsE.Records, rec("w", 45.0+float64(k%5)*0.05, -100.0, unix))
		dsI.Records = append(dsI.Records, rec("x", 45.0+float64(k%5)*0.05, -100.0, unix+10))
	}
	p := DefaultParams(wnd, 12)
	p.K, p.L = 2, 2 // fixed thresholds keep the test crisp
	res := Link(&dsE, &dsI, p)
	for _, l := range res.Links {
		if l.U == "u" {
			t.Errorf("ambiguous entity u must not be linked (got %s-%s)", l.U, l.V)
		}
	}
	found := false
	for _, l := range res.Links {
		if l.U == "w" && l.V == "x" {
			found = true
		}
	}
	if !found {
		t.Error("unambiguous pair w-x should be linked")
	}
}

func TestAlibiDisqualifies(t *testing.T) {
	var dsE, dsI model.Dataset
	for k := 0; k < 12; k++ {
		unix := int64(900 * k)
		lat := 37.0 + float64(k%4)*0.05
		dsE.Records = append(dsE.Records, rec("u", lat, -122.4, unix))
		dsI.Records = append(dsI.Records, rec("v", lat, -122.4, unix+10))
		// Inject alibi records: v also appears across the country in the
		// same windows, repeatedly.
		if k < 6 {
			dsI.Records = append(dsI.Records, rec("v", 40.7, -74.0, unix+20))
		}
	}
	p := DefaultParams(wnd, 12)
	p.K, p.L = 2, 2
	res := Link(&dsE, &dsI, p)
	for _, l := range res.Links {
		if l.U == "u" && l.V == "v" {
			t.Error("pair with 6 alibi record pairs must be disqualified")
		}
	}
	// The candidate evidence must still be recorded.
	foundCand := false
	for _, c := range res.Candidates {
		if c.U == "u" && c.V == "v" {
			foundCand = true
			if c.AlibiPairs < 3 {
				t.Errorf("alibi count = %d, want >= 3", c.AlibiPairs)
			}
		}
	}
	if !foundCand {
		t.Error("pair missing from candidates")
	}
}

func TestAutoKLDetection(t *testing.T) {
	dsE, dsI := movers(8, 24)
	res := Link(&dsE, &dsI, DefaultParams(wnd, 12))
	if res.K < 1 || res.L < 1 {
		t.Errorf("auto k/l = (%d, %d), want >= 1", res.K, res.L)
	}
	// True pairs share ~24 bins; auto-k must not exceed that.
	if res.K > 24 {
		t.Errorf("auto k = %d too aggressive", res.K)
	}
}

func TestScoresRankTrueMatchFirst(t *testing.T) {
	dsE, dsI := movers(5, 20)
	res := Link(&dsE, &dsI, DefaultParams(wnd, 12))
	scores := res.Scores("ea")
	if len(scores) == 0 {
		t.Fatal("no candidate scores for ea")
	}
	if scores[0].V != "ia" {
		t.Errorf("top-ranked candidate for ea = %s, want ia", scores[0].V)
	}
}

func TestLinkOnSampledCab(t *testing.T) {
	src := datagen.Cab(datagen.CabConfig{NumTaxis: 24, Days: 2, MeanRecordIntervalSec: 400, Seed: 21})
	s := datagen.Sample(&src, datagen.SampleConfig{IntersectionRatio: 0.5, InclusionProbE: 0.7, InclusionProbI: 0.7, Seed: 22})
	res := Link(&s.E, &s.I, DefaultParams(model.NewWindowing(900, &s.E, &s.I), 12))
	if !matching.Valid(res.Links) {
		// ST-Link links can share endpoints only if ambiguity elimination
		// failed — that would be a bug.
		t.Error("ST-Link produced conflicting links")
	}
	correct := 0
	for _, l := range res.Links {
		if s.Truth[l.U] == l.V {
			correct++
		}
	}
	if len(res.Links) > 0 && correct == 0 {
		t.Errorf("ST-Link linked %d pairs but none correct", len(res.Links))
	}
}

func TestEmptyDatasets(t *testing.T) {
	var e, i model.Dataset
	res := Link(&e, &i, DefaultParams(wnd, 12))
	if len(res.Links) != 0 || len(res.Candidates) != 0 {
		t.Error("empty inputs should produce nothing")
	}
}
