// Package stlink reimplements the ST-Link baseline (Basık, Gedik,
// Etemoğlu, Ferhatosmanoğlu: "Spatio-Temporal Linkage over
// Location-Enhanced Services", IEEE TMC 17(2), 2018) as described there and
// in Sec. 5.5 of the SLIM paper.
//
// ST-Link performs a sliding-window comparison over the records of entity
// pairs and links a pair if it has at least k co-occurring records in at
// least l diverse locations and fewer than the tolerated number of alibi
// record pairs. If an entity qualifies against more than one entity from
// the other dataset, all of its qualifications are considered ambiguous
// and dropped. The k and l values are picked from the trade-off (elbow)
// point of their distributions when not set explicitly.
package stlink

import (
	"sort"

	"slim/internal/geo"
	"slim/internal/history"
	"slim/internal/matching"
	"slim/internal/mathx"
	"slim/internal/model"
)

// Params configures the ST-Link baseline.
type Params struct {
	// Windowing aligns both datasets on one temporal grid.
	Windowing model.Windowing
	// SpatialLevel is the co-occurrence grid level.
	SpatialLevel int
	// MaxSpeedKmPerMin bounds feasible movement; record pairs in the same
	// window farther apart than speed × width are alibis.
	MaxSpeedKmPerMin float64
	// K is the minimum number of co-occurrences (0 = auto via elbow).
	K int
	// L is the minimum number of diverse co-occurrence locations
	// (0 = auto via elbow).
	L int
	// AlibiLimit disqualifies pairs with at least this many alibi record
	// pairs. The SLIM evaluation uses 3.
	AlibiLimit int
}

// DefaultParams mirrors the SLIM evaluation setup: auto k/l, alibi limit 3.
func DefaultParams(w model.Windowing, spatialLevel int) Params {
	return Params{
		Windowing:        w,
		SpatialLevel:     spatialLevel,
		MaxSpeedKmPerMin: 2,
		AlibiLimit:       3,
	}
}

// PairScore carries the evidence ST-Link gathered for one candidate pair.
type PairScore struct {
	U, V model.EntityID
	// Cooccurrences is the number of shared (window, cell) bins.
	Cooccurrences int
	// DiverseLocations is the number of distinct cells among them.
	DiverseLocations int
	// AlibiPairs is the number of impossible same-window record pairs.
	AlibiPairs int
}

// Result is the ST-Link output plus instrumentation.
type Result struct {
	// Links are the unambiguous qualified pairs (weight = co-occurrences).
	Links []matching.Edge
	// Candidates holds every pair that shared at least one bin, with its
	// evidence; used for ranking (hit-precision) and the k/l elbows.
	Candidates []PairScore
	// K and L are the thresholds used (auto-detected when requested).
	K, L int
	// RecordComparisons counts pairwise record comparisons performed.
	RecordComparisons int64
}

// Link runs ST-Link over the two datasets.
func Link(dsE, dsI *model.Dataset, p Params) Result {
	if p.AlibiLimit <= 0 {
		p.AlibiLimit = 3
	}
	runawayKm := p.Windowing.WidthMinutes() * p.MaxSpeedKmPerMin
	se := history.Build(dsE, p.Windowing, p.SpatialLevel)
	si := history.Build(dsI, p.Windowing, p.SpatialLevel)

	// Blocking: inverted index over (window, cell) bins of the I side;
	// pairs sharing at least one bin become candidates — the sliding
	// window comparison only ever links such pairs.
	binToI := make(map[history.Bin][]model.EntityID)
	for _, v := range si.Entities() {
		si.History(v).Bins(func(b history.Bin, _ float64) {
			binToI[b] = append(binToI[b], v)
		})
	}
	type pairKey struct{ u, v model.EntityID }
	cand := make(map[pairKey]bool)
	for _, u := range se.Entities() {
		se.History(u).Bins(func(b history.Bin, _ float64) {
			for _, v := range binToI[b] {
				cand[pairKey{u, v}] = true
			}
		})
	}
	// Deterministic order.
	pairs := make([]pairKey, 0, len(cand))
	for pk := range cand {
		pairs = append(pairs, pk)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].u != pairs[j].u {
			return pairs[i].u < pairs[j].u
		}
		return pairs[i].v < pairs[j].v
	})

	res := Result{}
	for _, pk := range pairs {
		hu, hv := se.History(pk.u), si.History(pk.v)
		ps := PairScore{U: pk.u, V: pk.v}
		diverse := make(map[geo.CellID]bool)
		commonWindows(hu.Windows(), hv.Windows(), func(w int64) {
			cu := hu.CellsAt(w)
			cv := hv.CellsAt(w)
			var ru, rv float64
			for _, n := range cu {
				ru += n
			}
			for _, n := range cv {
				rv += n
			}
			res.RecordComparisons += int64(ru*rv + 0.5)
			for cellU := range cu {
				for cellV := range cv {
					if cellU == cellV {
						ps.Cooccurrences++
						diverse[cellU] = true
						continue
					}
					if geo.CellDistanceKm(cellU, cellV) > runawayKm {
						ps.AlibiPairs++
					}
				}
			}
		})
		ps.DiverseLocations = len(diverse)
		if ps.Cooccurrences > 0 || ps.AlibiPairs > 0 {
			res.Candidates = append(res.Candidates, ps)
		}
	}

	res.K, res.L = p.K, p.L
	if res.K <= 0 {
		res.K = elbowThreshold(res.Candidates, func(ps PairScore) int { return ps.Cooccurrences })
	}
	if res.L <= 0 {
		res.L = elbowThreshold(res.Candidates, func(ps PairScore) int { return ps.DiverseLocations })
	}

	// Qualification + ambiguity elimination.
	qualifiedByU := make(map[model.EntityID][]PairScore)
	qualifiedByV := make(map[model.EntityID][]PairScore)
	for _, ps := range res.Candidates {
		if ps.Cooccurrences >= res.K && ps.DiverseLocations >= res.L && ps.AlibiPairs < p.AlibiLimit {
			qualifiedByU[ps.U] = append(qualifiedByU[ps.U], ps)
			qualifiedByV[ps.V] = append(qualifiedByV[ps.V], ps)
		}
	}
	for _, psList := range qualifiedByU {
		if len(psList) != 1 {
			continue // ambiguous on the E side
		}
		ps := psList[0]
		if len(qualifiedByV[ps.V]) != 1 {
			continue // ambiguous on the I side
		}
		res.Links = append(res.Links, matching.Edge{U: ps.U, V: ps.V, W: float64(ps.Cooccurrences)})
	}
	sort.Slice(res.Links, func(i, j int) bool {
		if res.Links[i].W != res.Links[j].W {
			return res.Links[i].W > res.Links[j].W
		}
		return res.Links[i].U < res.Links[j].U
	})
	return res
}

// elbowThreshold sorts the metric descending and returns the value at the
// kneedle elbow of the curve — the trade-off point detection the ST-Link
// paper uses to choose k and l.
func elbowThreshold(cands []PairScore, metric func(PairScore) int) int {
	if len(cands) == 0 {
		return 1
	}
	vals := make([]float64, 0, len(cands))
	for _, ps := range cands {
		vals = append(vals, float64(metric(ps)))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	xs := make([]float64, len(vals))
	for i := range xs {
		xs[i] = float64(i)
	}
	idx := mathx.Kneedle(xs, vals, true)
	if idx < 0 || idx >= len(vals) {
		idx = len(vals) - 1
	}
	thr := int(vals[idx])
	if thr < 1 {
		thr = 1
	}
	return thr
}

// Scores returns the ranking scores of every candidate pair of one E
// entity, sorted descending — used for hit-precision@k evaluation.
func (r *Result) Scores(u model.EntityID) []PairScore {
	var out []PairScore
	for _, ps := range r.Candidates {
		if ps.U == u {
			out = append(out, ps)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		si := float64(out[i].Cooccurrences) + float64(out[i].DiverseLocations)/1000
		sj := float64(out[j].Cooccurrences) + float64(out[j].DiverseLocations)/1000
		if si != sj {
			return si > sj
		}
		return out[i].V < out[j].V
	})
	return out
}

func commonWindows(a, b []int64, fn func(int64)) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			fn(a[i])
			i++
			j++
		}
	}
}
