//go:build race

package obs

// raceEnabled reports whether the race detector is compiled in; the
// zero-allocation gates are skipped under instrumentation (race-mode
// atomics allocate) and re-run uninstrumented in a dedicated CI step.
const raceEnabled = true
