package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// TextContentType is the Prometheus text exposition media type.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in the Prometheus text
// format, in registration order. Func metrics are evaluated inline; they
// must not call back into the registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.order {
		f := r.families[name]
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, s := range f.series {
			writeSeries(bw, f.name, s)
		}
	}
	return bw.Flush()
}

func writeSeries(bw *bufio.Writer, name string, s *series) {
	switch s.kind {
	case kindCounter:
		v := uint64(0)
		if s.cf != nil {
			v = s.cf()
		} else if s.c != nil {
			v = s.c.Value()
		}
		writeSample(bw, name, s.labels, "", strconv.FormatUint(v, 10))
	case kindGauge:
		v := float64(0)
		if s.gf != nil {
			v = s.gf()
		} else if s.g != nil {
			v = s.g.Value()
		}
		writeSample(bw, name, s.labels, "", formatFloat(v))
	case kindHistogram:
		h := s.h
		if h == nil {
			return
		}
		cum := uint64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			writeBucket(bw, name, s.labels, formatFloat(bound), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		writeBucket(bw, name, s.labels, "+Inf", cum)
		writeSample(bw, name, s.labels, "_sum", formatFloat(h.Sum()))
		writeSample(bw, name, s.labels, "_count", strconv.FormatUint(h.Count(), 10))
	}
}

// writeBucket emits one name_bucket{...,le="bound"} line, merging the
// le label into the series' pre-rendered label set.
func writeBucket(bw *bufio.Writer, name, labels, le string, v uint64) {
	bw.WriteString(name)
	bw.WriteString("_bucket")
	if labels == "" {
		bw.WriteString(`{le="`)
	} else {
		bw.WriteString(strings.TrimSuffix(labels, "}"))
		bw.WriteString(`,le="`)
	}
	bw.WriteString(le)
	bw.WriteString(`"} `)
	bw.WriteString(strconv.FormatUint(v, 10))
	bw.WriteByte('\n')
}

func writeSample(bw *bufio.Writer, name, labels, suffix, value string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	bw.WriteString(labels)
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// Handler returns the GET /metrics endpoint over this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		_ = r.WritePrometheus(w)
	})
}
