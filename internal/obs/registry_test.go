package obs

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// parseExposition splits a Prometheus text exposition into samples,
// failing the test on any line that violates the text-format grammar.
// It returns sample name+labels → value.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	var (
		helpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
		typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
		sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)
	)
	samples := make(map[string]float64)
	typed := make(map[string]string)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			if !helpRe.MatchString(line) {
				t.Fatalf("bad HELP line: %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("bad TYPE line: %q", line)
			}
			if _, dup := typed[m[1]]; dup {
				t.Fatalf("duplicate TYPE for %s", m[1])
			}
			typed[m[1]] = m[2]
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("bad sample line: %q", line)
		}
		// Every sample must belong to a declared family (histogram
		// samples append _bucket/_sum/_count to the family name).
		base := m[1]
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if fam := strings.TrimSuffix(base, suf); fam != base && typed[fam] == "histogram" {
				base = fam
				break
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("sample %q precedes its TYPE declaration", line)
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(m[len(m)-1], "+"), 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		key := m[1]
		if m[2] != "" {
			key += m[2]
		}
		samples[key] = v
	}
	return samples
}

func scrape(t *testing.T, r *Registry) map[string]float64 {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return parseExposition(t, sb.String())
}

func TestExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("slim_test_ops_total", "operations", L("kind", "write"))
	c.Add(7)
	r.Counter("slim_test_ops_total", "operations", L("kind", "read")).Add(2)
	g := r.Gauge("slim_test_depth", "queue depth")
	g.Set(3.5)
	h := r.Histogram("slim_test_latency_seconds", "latency", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100)
	r.CounterFunc("slim_test_func_total", "func counter", func() uint64 { return 42 })
	r.GaugeFunc("slim_test_func_gauge", "func gauge", func() float64 { return -1.25 })
	r.Gauge("slim_test_escaped", "escaped", L("path", `a"b\c`)).Set(1)

	got := scrape(t, r)
	want := map[string]float64{
		`slim_test_ops_total{kind="write"}`:           7,
		`slim_test_ops_total{kind="read"}`:            2,
		`slim_test_depth`:                             3.5,
		`slim_test_latency_seconds_bucket{le="0.1"}`:  1,
		`slim_test_latency_seconds_bucket{le="1"}`:    2,
		`slim_test_latency_seconds_bucket{le="10"}`:   2,
		`slim_test_latency_seconds_bucket{le="+Inf"}`: 3,
		`slim_test_latency_seconds_count`:             3,
		`slim_test_func_total`:                        42,
		`slim_test_func_gauge`:                        -1.25,
		`slim_test_escaped{path="a\"b\\c"}`:           1,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
	if sum := got["slim_test_latency_seconds_sum"]; math.Abs(sum-100.55) > 1e-9 {
		t.Errorf("histogram sum = %v, want 100.55", sum)
	}
}

// TestRegistrationIdempotent: the same name+labels returns the same
// underlying metric, so two callers cannot split one series.
func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("slim_same", "")
	b := r.Counter("slim_same", "")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("counters not shared")
	}
	h1 := r.Histogram("slim_h", "", []float64{1, 2})
	h2 := r.Histogram("slim_h", "", []float64{5})
	if h1 != h2 {
		t.Fatal("histogram buckets must be frozen at first registration")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type mismatch must panic")
		}
	}()
	r.Gauge("slim_same", "")
}

// TestRegistryConcurrent hammers registration, updates, and scrapes from
// many goroutines — the -race gate for the whole package.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("slim_hammer_seconds", "", nil)
	f := NewFreshness(r.Histogram("slim_hammer_fresh_seconds", "", nil))
	var workers, scraper sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		workers.Add(1)
		go func(i int) {
			defer workers.Done()
			now := time.Now()
			for j := 0; j < 2000; j++ {
				r.Counter("slim_hammer_total", "", L("worker", strconv.Itoa(i))).Inc()
				r.Gauge("slim_hammer_gauge", "").Set(float64(j))
				h.Observe(float64(j) / 1000)
				seq := f.Acked(now)
				if j%3 == 0 {
					f.Visible(seq, now.Add(time.Millisecond))
				}
				_ = f.Staleness()
			}
		}(i)
	}
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var sb strings.Builder
				_ = r.WritePrometheus(&sb)
			}
		}
	}()
	workers.Wait()
	close(stop)
	scraper.Wait()

	got := scrape(t, r)
	total := 0.0
	for i := 0; i < 8; i++ {
		total += got[`slim_hammer_total{worker="`+strconv.Itoa(i)+`"}`]
	}
	if total != 16000 {
		t.Fatalf("hammer counters sum to %v, want 16000", total)
	}
	if got["slim_hammer_seconds_count"] != 16000 {
		t.Fatalf("histogram count = %v, want 16000", got["slim_hammer_seconds_count"])
	}
}

// TestUpdateZeroAllocs gates the hot-path cost contract: counter adds,
// gauge sets, and histogram observations must never touch the heap.
func TestUpdateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; gate runs in non-race CI")
	}
	r := NewRegistry()
	c := r.Counter("slim_allocs_total", "")
	g := r.Gauge("slim_allocs_gauge", "")
	h := r.Histogram("slim_allocs_seconds", "", nil)
	f := NewFreshness(h)
	if avg := testing.AllocsPerRun(200, func() { c.Add(1) }); avg != 0 {
		t.Errorf("Counter.Add allocates %v/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { g.Set(1.5) }); avg != 0 {
		t.Errorf("Gauge.Set allocates %v/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { h.Observe(0.001) }); avg != 0 {
		t.Errorf("Histogram.Observe allocates %v/op, want 0", avg)
	}
	now := time.Now()
	if avg := testing.AllocsPerRun(200, func() {
		seq := f.Acked(now)
		f.Visible(seq, now)
	}); avg != 0 {
		t.Errorf("Freshness Acked+Visible allocates %v/op, want 0", avg)
	}
}

func TestFreshness(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("slim_fresh_seconds", "", []float64{0.5, 2})
	f := NewFreshness(h)
	t0 := time.Now().Add(-3 * time.Second)
	s1 := f.Acked(t0)
	s2 := f.Acked(t0.Add(time.Second))
	if f.Staleness() < 2.9 {
		t.Fatalf("staleness = %v, want ~3s", f.Staleness())
	}
	if f.AckedSeq() != s2 || f.VisibleSeq() != 0 {
		t.Fatalf("watermarks = %d/%d, want %d/0", f.AckedSeq(), f.VisibleSeq(), s2)
	}
	// Mark only the first batch visible: one observation, staleness now
	// measured from the second batch.
	f.Visible(s1, t0.Add(time.Second))
	if h.Count() != 1 {
		t.Fatalf("observations = %d, want 1", h.Count())
	}
	if st := f.Staleness(); st < 1.9 || st > 2.5 {
		t.Fatalf("staleness = %v, want ~2s", st)
	}
	f.Visible(s2, t0.Add(2*time.Second))
	if h.Count() != 2 {
		t.Fatalf("observations = %d, want 2", h.Count())
	}
	if f.Staleness() != 0 {
		t.Fatalf("drained staleness = %v, want 0", f.Staleness())
	}
	if f.VisibleSeq() != s2 {
		t.Fatalf("visible = %d, want %d", f.VisibleSeq(), s2)
	}
	// Overflow: the cap drops the newest observations, never the oldest.
	for i := 0; i < freshnessCap+10; i++ {
		f.Acked(t0)
	}
	if f.Dropped() != 10 {
		t.Fatalf("dropped = %d, want 10", f.Dropped())
	}
	f.Visible(f.Mark(), time.Now())
	if f.Staleness() != 0 {
		t.Fatal("visible watermark must drain tracked entries after overflow")
	}
}
