package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// freshnessCap bounds the tracked not-yet-visible batches. Entries past
// the cap lose their individual latency observation (counted in
// Dropped) but never distort the staleness gauge: the oldest entries
// are always the ones kept.
const freshnessCap = 1 << 13

type freshEntry struct {
	seq uint64
	at  time.Time
}

// Freshness turns the ingest→relink pipeline into a live latency
// signal. Every acknowledged batch is stamped with a monotonically
// increasing ack sequence and its arrival time (Acked); when a relink
// publishes, the engine marks everything it drained visible (Mark +
// Visible) and each covered batch contributes one ingest-to-link-visible
// observation to the histogram. Between the two events the tracker
// answers the operational questions directly:
//
//   - Staleness(): age of the oldest acknowledged batch that is not yet
//     link-visible (0 when the pipeline is drained) — the
//     slim_link_staleness_seconds gauge.
//   - AckedSeq()/VisibleSeq(): the acked vs. visible watermarks, whose
//     gap is the pipeline's batch backlog.
//
// All methods are safe for concurrent use. The ring buffer is
// preallocated, so Acked does not allocate on the ingest path.
type Freshness struct {
	hist *Histogram // ingest-to-visible seconds; may be nil

	mu      sync.Mutex
	ring    []freshEntry
	head    int // index of oldest entry
	n       int // live entries
	nextSeq uint64

	acked   atomic.Uint64
	visible atomic.Uint64
	dropped atomic.Uint64
}

// NewFreshness builds a tracker feeding the given ingest-to-visible
// histogram (nil disables the per-batch observations but keeps the
// watermarks and staleness gauge working).
func NewFreshness(hist *Histogram) *Freshness {
	return &Freshness{hist: hist, ring: make([]freshEntry, freshnessCap)}
}

// Acked records one acknowledged-and-buffered batch, returning its ack
// sequence. Callers must enqueue the batch into the pipeline BEFORE
// calling Acked: the visibility contract is that every sequence at or
// below a relink's Mark has been drained by that relink.
func (f *Freshness) Acked(now time.Time) uint64 {
	f.mu.Lock()
	f.nextSeq++
	seq := f.nextSeq
	if f.n < len(f.ring) {
		f.ring[(f.head+f.n)%len(f.ring)] = freshEntry{seq: seq, at: now}
		f.n++
	} else {
		f.dropped.Add(1)
	}
	f.mu.Unlock()
	f.acked.Store(seq)
	return seq
}

// Mark returns the latest acked sequence — the watermark a relink
// captures before draining, and passes to Visible after publishing.
func (f *Freshness) Mark() uint64 { return f.acked.Load() }

// Visible marks every batch with sequence <= upTo link-visible as of
// now, observing each tracked batch's ingest-to-visible latency.
func (f *Freshness) Visible(upTo uint64, now time.Time) {
	if upTo == 0 {
		return
	}
	f.mu.Lock()
	for f.n > 0 && f.ring[f.head].seq <= upTo {
		if f.hist != nil {
			f.hist.Observe(now.Sub(f.ring[f.head].at).Seconds())
		}
		f.ring[f.head] = freshEntry{}
		f.head = (f.head + 1) % len(f.ring)
		f.n--
	}
	f.mu.Unlock()
	for {
		old := f.visible.Load()
		if old >= upTo || f.visible.CompareAndSwap(old, upTo) {
			return
		}
	}
}

// Staleness returns the age in seconds of the oldest acknowledged batch
// that is not yet link-visible, or 0 when the pipeline is drained.
func (f *Freshness) Staleness() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.n == 0 {
		return 0
	}
	return time.Since(f.ring[f.head].at).Seconds()
}

// AckedSeq returns the latest acknowledged batch sequence.
func (f *Freshness) AckedSeq() uint64 { return f.acked.Load() }

// VisibleSeq returns the newest link-visible batch sequence.
func (f *Freshness) VisibleSeq() uint64 { return f.visible.Load() }

// Dropped counts batches past the tracking cap whose individual latency
// observation was lost (watermarks stayed exact).
func (f *Freshness) Dropped() uint64 { return f.dropped.Load() }
