// Package obs is slimd's dependency-free metrics subsystem: atomic
// counters, gauges, and fixed-bucket histograms collected in a Registry
// and exposed in the Prometheus text format (GET /metrics).
//
// Design constraints, in order:
//
//  1. Hot-path cost. Counter.Add, Gauge.Set, and Histogram.Observe are
//     single atomic operations over preallocated state — no maps, no
//     locks, no allocation — so they are safe to call from the ingest
//     and relink paths that are gated at 0 allocs/op. Label rendering
//     and series lookup happen once, at registration time; hot paths
//     hold a *Counter / *Histogram pointer, never a name.
//  2. One source of truth. Components that already keep atomic counters
//     for /v1/stats register them as CounterFunc / GaugeFunc closures:
//     both /v1/stats and /metrics then read the same underlying atomic,
//     so the two surfaces can never disagree.
//  3. No dependencies. Only the standard library; the exposition writer
//     emits the subset of the Prometheus text format every scraper
//     understands (# HELP, # TYPE, counter/gauge/histogram samples).
//
// All types are safe for concurrent use.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency buckets in seconds (250µs .. 10s),
// tuned for the service's paths: scoring and WAL appends live in the
// sub-millisecond buckets, relinks and snapshots in the upper ones.
var DefBuckets = []float64{
	0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are byte-size buckets (256 B .. 64 MiB) for payload and
// snapshot size distributions.
var SizeBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20,
}

// Label is one metric dimension, rendered as name{key="value"}.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; gauges are not hot-path metrics).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: bucket bounds are frozen at
// registration, so Observe is a bounded scan plus two atomic adds —
// no allocation, no locks.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf is implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t.
func (h *Histogram) ObserveSince(t time.Time) { h.Observe(time.Since(t).Seconds()) }

// Count returns how many values have been observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// series is one labeled sample stream within a family.
type series struct {
	labels string // pre-rendered `{k="v",...}` or ""
	kind   kind
	c      *Counter
	g      *Gauge
	h      *Histogram
	cf     func() uint64
	gf     func() float64
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family groups every series sharing one metric name.
type family struct {
	name, help string
	kind       kind
	series     []*series
}

// Registry holds metric families and renders them in registration order.
// Registration takes a lock and may allocate; the returned metric
// pointers are lock-free to update.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter registers (or finds) the counter name{labels...}. Registering
// the same name with the same labels returns the existing counter;
// reusing a name with a different metric type panics.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	var c *Counter
	r.getOrCreate(name, help, kindCounter, func(s *series) {
		if s.c == nil {
			s.c = &Counter{}
		}
		c = s.c
	}, labels)
	return c
}

// Gauge registers (or finds) the gauge name{labels...}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	var g *Gauge
	r.getOrCreate(name, help, kindGauge, func(s *series) {
		if s.g == nil {
			s.g = &Gauge{}
		}
		g = s.g
	}, labels)
	return g
}

// Histogram registers (or finds) the histogram name{labels...} with the
// given bucket upper bounds (nil = DefBuckets). Bounds are fixed for the
// life of the series.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	var h *Histogram
	r.getOrCreate(name, help, kindHistogram, func(s *series) {
		if s.h == nil {
			s.h = newHistogram(bounds)
		}
		h = s.h
	}, labels)
	return h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for components that already keep their own atomics
// (the same atomic feeds /v1/stats, so the surfaces cannot disagree).
// fn must be safe for concurrent use and must not call back into the
// registry.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.getOrCreate(name, help, kindCounter, func(s *series) {
		if s.cf == nil {
			s.cf = fn
		}
	}, labels)
}

// GaugeFunc registers a gauge computed by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.getOrCreate(name, help, kindGauge, func(s *series) {
		if s.gf == nil {
			s.gf = fn
		}
	}, labels)
}

// getOrCreate finds or registers the series name{labels}. init runs
// under the registry lock on both the found and the created series, so
// constructors attach their instrument (idempotently) without racing a
// concurrent scrape's reads of the series fields.
func (r *Registry) getOrCreate(name, help string, k kind, init func(*series), labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", name, f.kind, k))
	}
	for _, s := range f.series {
		if s.labels == ls {
			if init != nil {
				init(s)
			}
			return s
		}
	}
	s := &series{labels: ls, kind: k}
	if init != nil {
		init(s)
	}
	f.series = append(f.series, s)
	return s
}

// validName checks the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels renders labels to the canonical `{k="v",...}` form once,
// at registration time, with values escaped per the text format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
