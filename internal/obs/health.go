package obs

import (
	"sync"
	"time"
)

// Health tracks one failure domain's two-state machine
// (healthy ⇄ degraded) and exports it as the slim_health_state gauge
// (1 = healthy, 0 = degraded, labelled by domain). Degrade/Recover are
// idempotent; the first Degrade of an episode records the cause and
// since-when that /healthz reports.
//
// All methods are safe for concurrent use.
type Health struct {
	domain string

	mu    sync.Mutex
	state HealthState
	cause string
	since time.Time
}

// HealthState is one domain's state.
type HealthState int

const (
	// Healthy is the normal serving state.
	Healthy HealthState = iota
	// Degraded means the domain's write path is down and being repaired;
	// reads keep serving and writers get 503 + Retry-After.
	Degraded
)

// String returns the state's /healthz wire name.
func (s HealthState) String() string {
	if s == Degraded {
		return "degraded"
	}
	return "healthy"
}

// NewHealth builds a healthy tracker for domain and registers its
// slim_health_state gauge on reg (nil reg = untracked, still usable).
func NewHealth(reg *Registry, domain string) *Health {
	h := &Health{domain: domain, state: Healthy}
	if reg != nil {
		reg.GaugeFunc("slim_health_state",
			"Domain health: 1 healthy, 0 degraded (write path down, repair in progress).",
			func() float64 {
				if st, _, _ := h.State(); st == Degraded {
					return 0
				}
				return 1
			}, L("domain", domain))
	}
	return h
}

// Domain returns the tracked domain name.
func (h *Health) Domain() string { return h.domain }

// Degrade flips the domain to degraded. Only the first call of an
// episode records cause and since; later calls are no-ops until
// Recover. It reports whether this call started the episode.
func (h *Health) Degrade(cause string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state == Degraded {
		return false
	}
	h.state = Degraded
	h.cause = cause
	h.since = time.Now()
	return true
}

// Recover flips the domain back to healthy, reporting whether a
// degraded episode actually ended.
func (h *Health) Recover() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state == Healthy {
		return false
	}
	h.state = Healthy
	h.cause = ""
	h.since = time.Time{}
	return true
}

// State returns the current state plus the active episode's cause and
// start time (zero values when healthy).
func (h *Health) State() (state HealthState, cause string, since time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state, h.cause, h.since
}
