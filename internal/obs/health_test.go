package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHealthStateMachine(t *testing.T) {
	h := NewHealth(nil, "storage")
	if st, _, _ := h.State(); st != Healthy {
		t.Fatalf("new tracker state = %v, want healthy", st)
	}
	if !h.Degrade("fsync failed") {
		t.Fatal("first Degrade should start an episode")
	}
	st, cause, since := h.State()
	if st != Degraded || cause != "fsync failed" || since.IsZero() {
		t.Fatalf("degraded state = %v %q %v", st, cause, since)
	}
	if h.Degrade("later cause") {
		t.Fatal("second Degrade should be a no-op")
	}
	if _, cause, _ := h.State(); cause != "fsync failed" {
		t.Fatalf("cause overwritten mid-episode: %q", cause)
	}
	if !h.Recover() {
		t.Fatal("Recover should end the episode")
	}
	if h.Recover() {
		t.Fatal("second Recover should be a no-op")
	}
	if st, cause, since := h.State(); st != Healthy || cause != "" || !since.IsZero() {
		t.Fatalf("post-recover state = %v %q %v", st, cause, since)
	}
}

func TestHealthStateString(t *testing.T) {
	if Healthy.String() != "healthy" || Degraded.String() != "degraded" {
		t.Fatalf("state names: %q %q", Healthy.String(), Degraded.String())
	}
}

func TestHealthGaugeExposition(t *testing.T) {
	reg := NewRegistry()
	h := NewHealth(reg, "storage")
	scrape := func() string {
		rec := httptest.NewRecorder()
		reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		return rec.Body.String()
	}
	if body := scrape(); !strings.Contains(body, `slim_health_state{domain="storage"} 1`) {
		t.Fatalf("healthy gauge missing:\n%s", body)
	}
	h.Degrade("disk gone")
	if body := scrape(); !strings.Contains(body, `slim_health_state{domain="storage"} 0`) {
		t.Fatalf("degraded gauge missing:\n%s", body)
	}
	h.Recover()
	if body := scrape(); !strings.Contains(body, `slim_health_state{domain="storage"} 1`) {
		t.Fatalf("recovered gauge missing:\n%s", body)
	}
}
