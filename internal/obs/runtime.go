package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// memStatsCache memoizes runtime.ReadMemStats across the runtime gauges:
// a /metrics scrape renders every gauge in one pass, and ReadMemStats
// stops the world, so the heap and GC gauges share one read per scrape
// instead of paying the pause once each.
type memStatsCache struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func (c *memStatsCache) get() runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); now.Sub(c.at) > time.Second {
		runtime.ReadMemStats(&c.stat)
		c.at = now
	}
	return c.stat
}

// RegisterRuntime registers the process-level gauges every slim service
// exports next to its domain metrics: a constant slim_build_info gauge
// whose labels carry the build identity (the standard Prometheus info
// pattern), plus goroutine, heap and GC-pause gauges read from the Go
// runtime at scrape time.
func RegisterRuntime(reg *Registry) {
	version, goVersion, revision := "unknown", runtime.Version(), "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				revision = s.Value
			}
		}
	}
	reg.Gauge("slim_build_info",
		"Build identity of the running binary; the constant value 1 carries the labels.",
		L("version", version), L("goversion", goVersion), L("vcs_revision", revision)).Set(1)

	reg.GaugeFunc("slim_go_goroutines",
		"Live goroutines in the process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	mem := &memStatsCache{}
	reg.GaugeFunc("slim_go_heap_alloc_bytes",
		"Bytes of allocated, still-reachable heap objects.",
		func() float64 { return float64(mem.get().HeapAlloc) })
	reg.GaugeFunc("slim_go_gc_pause_total_seconds",
		"Cumulative stop-the-world GC pause time.",
		func() float64 { return float64(mem.get().PauseTotalNs) / 1e9 })
}
