package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"slim/internal/model"
)

// SampleConfig controls how two linkage inputs are drawn from one ground
// dataset, mirroring Sec. 5.1 of the paper.
type SampleConfig struct {
	// IntersectionRatio is the fraction of entities common to both sides:
	// |common| / |entities per side|. Default 0.5 (the paper's default).
	IntersectionRatio float64
	// InclusionProbE / InclusionProbI are the per-record inclusion
	// probabilities of each side; the paper uses one knob for both
	// (default 0.5). Separate knobs support asymmetric-density studies.
	InclusionProbE float64
	InclusionProbI float64
	// SizePerSide caps the entities per side; 0 takes the maximum
	// n = floor(N / (2 - ratio)) permitted by the ground dataset.
	SizePerSide int
	// MinRecords drops entities with ≤ MinRecords records after
	// downsampling (the paper drops entities with ≤ 5 records).
	MinRecords int
	// Seed drives entity selection and record downsampling.
	Seed int64
}

func (c *SampleConfig) defaults() {
	if c.IntersectionRatio == 0 {
		c.IntersectionRatio = 0.5
	}
	if c.InclusionProbE == 0 {
		c.InclusionProbE = 0.5
	}
	if c.InclusionProbI == 0 {
		c.InclusionProbI = 0.5
	}
	if c.MinRecords == 0 {
		c.MinRecords = 5
	}
}

// Sampled is a linkage workload: two anonymized datasets plus ground truth.
type Sampled struct {
	E model.Dataset
	I model.Dataset
	// Truth maps E entity ids to their true I counterparts, restricted to
	// entities that survived downsampling and filtering on both sides.
	Truth map[model.EntityID]model.EntityID
	// CommonPlanned is the number of entities drawn as common before
	// record downsampling (recall denominators use len(Truth)).
	CommonPlanned int
}

// Sample draws the two overlapping subsets from the ground dataset and
// downsamples records per side, relabeling entities with side-specific
// anonymous ids.
func Sample(src *model.Dataset, cfg SampleConfig) Sampled {
	cfg.defaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	entities := src.Entities()
	byEntity := src.ByEntity()
	n := len(entities)
	r.Shuffle(n, func(i, j int) { entities[i], entities[j] = entities[j], entities[i] })

	ratio := cfg.IntersectionRatio
	if ratio < 0 {
		ratio = 0
	}
	if ratio > 1 {
		ratio = 1
	}
	perSide := int(math.Floor(float64(n) / (2 - ratio)))
	if cfg.SizePerSide > 0 && cfg.SizePerSide < perSide {
		perSide = cfg.SizePerSide
	}
	if perSide < 1 && n > 0 {
		perSide = 1
	}
	common := int(math.Round(ratio * float64(perSide)))
	if common > perSide {
		common = perSide
	}
	exclusive := perSide - common
	if common+2*exclusive > n {
		exclusive = (n - common) / 2
	}

	commonIDs := entities[:common]
	eOnly := entities[common : common+exclusive]
	iOnly := entities[common+exclusive : common+2*exclusive]

	out := Sampled{
		E:             model.Dataset{Name: src.Name + "-E"},
		I:             model.Dataset{Name: src.Name + "-I"},
		Truth:         make(map[model.EntityID]model.EntityID, common),
		CommonPlanned: common,
	}

	// Anonymized, side-specific ids with shuffled numbering so that id
	// order carries no linkage signal.
	eIDs := anonIDs(r, "e", common+len(eOnly))
	iIDs := anonIDs(r, "i", common+len(iOnly))

	keepE := make(map[model.EntityID]bool)
	keepI := make(map[model.EntityID]bool)
	addSide := func(ds *model.Dataset, srcID, dstID model.EntityID, prob float64, kept map[model.EntityID]bool) {
		count := 0
		for _, rec := range byEntity[srcID] {
			if r.Float64() >= prob {
				continue
			}
			rec.Entity = dstID
			ds.Records = append(ds.Records, rec)
			count++
		}
		if count > cfg.MinRecords {
			kept[dstID] = true
		}
	}

	for k, srcID := range commonIDs {
		addSide(&out.E, srcID, eIDs[k], cfg.InclusionProbE, keepE)
		addSide(&out.I, srcID, iIDs[k], cfg.InclusionProbI, keepI)
	}
	for k, srcID := range eOnly {
		addSide(&out.E, srcID, eIDs[common+k], cfg.InclusionProbE, keepE)
	}
	for k, srcID := range iOnly {
		addSide(&out.I, srcID, iIDs[common+k], cfg.InclusionProbI, keepI)
	}

	out.E = out.E.FilterMinRecords(cfg.MinRecords)
	out.I = out.I.FilterMinRecords(cfg.MinRecords)
	for k := 0; k < common; k++ {
		if keepE[eIDs[k]] && keepI[iIDs[k]] {
			out.Truth[eIDs[k]] = iIDs[k]
		}
	}
	return out
}

// anonIDs builds n shuffled anonymous ids with the given prefix.
func anonIDs(r *rand.Rand, prefix string, n int) []model.EntityID {
	ids := make([]model.EntityID, n)
	perm := r.Perm(n)
	for k := 0; k < n; k++ {
		ids[k] = model.EntityID(fmt.Sprintf("%s-%05d", prefix, perm[k]))
	}
	return ids
}

// AvgRecordsPerEntity reports the dataset's record density.
func AvgRecordsPerEntity(d *model.Dataset) float64 {
	ents := d.Entities()
	if len(ents) == 0 {
		return 0
	}
	return float64(len(d.Records)) / float64(len(ents))
}

// SortByTime returns a copy of the dataset with records in time order
// (useful for streaming-style consumers and deterministic files).
func SortByTime(d *model.Dataset) model.Dataset {
	out := model.Dataset{Name: d.Name, Records: append([]model.Record(nil), d.Records...)}
	sort.SliceStable(out.Records, func(i, j int) bool { return out.Records[i].Unix < out.Records[j].Unix })
	return out
}
