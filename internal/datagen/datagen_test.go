package datagen

import (
	"math"
	"math/rand"
	"testing"

	"slim/internal/geo"
	"slim/internal/model"
)

func smallCab() model.Dataset {
	return Cab(CabConfig{NumTaxis: 20, Days: 2, MeanRecordIntervalSec: 300, Seed: 1})
}

func smallSM() model.Dataset {
	return SM(SMConfig{NumUsers: 200, Days: 8, AvgRecords: 20, Seed: 2})
}

func TestCabShape(t *testing.T) {
	d := smallCab()
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid cab dataset: %v", err)
	}
	ents := d.Entities()
	if len(ents) != 20 {
		t.Fatalf("entities = %d, want 20", len(ents))
	}
	// ~2 days / 300s ≈ 576 records per taxi.
	avg := AvgRecordsPerEntity(&d)
	if avg < 300 || avg > 900 {
		t.Errorf("avg records per taxi = %g, want ~576", avg)
	}
	// All records inside the Bay-Area box (plus GPS noise).
	for _, r := range d.Records {
		if r.LatLng.Lat < 37.30 || r.LatLng.Lat > 37.98 ||
			r.LatLng.Lng < -122.75 || r.LatLng.Lng > -122.00 {
			t.Fatalf("record escaped the service box: %+v", r.LatLng)
		}
	}
	lo, hi, _ := d.TimeRange()
	if hi-lo > 2*86400 {
		t.Errorf("time range %d s exceeds 2 days", hi-lo)
	}
}

func TestCabSpeedBounded(t *testing.T) {
	d := Cab(CabConfig{NumTaxis: 5, Days: 1, MeanRecordIntervalSec: 120, Seed: 3})
	byE := d.ByEntity()
	for id, recs := range byE {
		for i := 1; i < len(recs); i++ {
			dt := float64(recs[i].Unix-recs[i-1].Unix) / 60 // minutes
			if dt <= 0 {
				continue
			}
			dist := geo.GreatCircleKm(recs[i-1].LatLng, recs[i].LatLng)
			// Max configured speed 0.8 km/min, plus a fixed allowance for
			// GPS noise (~33m per endpoint, so ~0.3km covers 4+ sigma).
			if dist > 0.8*dt+0.3 {
				t.Fatalf("taxi %s moved %g km in %g min", id, dist, dt)
			}
		}
	}
}

func TestCabDeterminism(t *testing.T) {
	a := Cab(CabConfig{NumTaxis: 3, Days: 1, Seed: 7})
	b := Cab(CabConfig{NumTaxis: 3, Days: 1, Seed: 7})
	if len(a.Records) != len(b.Records) {
		t.Fatal("same seed, different record count")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatal("same seed, different records")
		}
	}
	c := Cab(CabConfig{NumTaxis: 3, Days: 1, Seed: 8})
	if len(c.Records) == len(a.Records) {
		same := true
		for i := range a.Records {
			if a.Records[i] != c.Records[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical datasets")
		}
	}
}

func TestSMShape(t *testing.T) {
	d := smallSM()
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid sm dataset: %v", err)
	}
	if got := len(d.Entities()); got != 200 {
		t.Fatalf("entities = %d, want 200", got)
	}
	avg := AvgRecordsPerEntity(&d)
	if avg < 12 || avg > 30 {
		t.Errorf("avg records per user = %g, want ~20", avg)
	}
}

func TestSMGlobalSpread(t *testing.T) {
	d := smallSM()
	// Users should span multiple continents: count distinct coarse cells.
	cells := make(map[geo.CellID]bool)
	for _, r := range d.Records {
		cells[geo.CellIDFromLatLngLevel(r.LatLng, 4)] = true
	}
	if len(cells) < 8 {
		t.Errorf("SM data concentrated in %d coarse cells, want global spread", len(cells))
	}
}

func TestSMUsersAreHabitual(t *testing.T) {
	// A user's records should revisit a small POI set, not wander: the
	// median user has few distinct level-15 cells relative to records.
	d := smallSM()
	byE := d.ByEntity()
	habitual := 0
	total := 0
	for _, recs := range byE {
		if len(recs) < 8 {
			continue
		}
		cells := make(map[geo.CellID]bool)
		for _, r := range recs {
			cells[geo.CellIDFromLatLngLevel(r.LatLng, 15)] = true
		}
		total++
		if len(cells) <= len(recs) {
			habitual++
		}
	}
	if total == 0 {
		t.Skip("no users with enough records")
	}
	if float64(habitual)/float64(total) < 0.9 {
		t.Errorf("only %d/%d users look habitual", habitual, total)
	}
}

func TestPoissonMean(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, lambda := range []float64{0.5, 3, 12, 80} {
		var sum float64
		const n = 4000
		for i := 0; i < n; i++ {
			sum += float64(poisson(r, lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > lambda*0.15+0.2 {
			t.Errorf("poisson(%g) sample mean = %g", lambda, mean)
		}
	}
	if poisson(r, 0) != 0 {
		t.Error("poisson(0) must be 0")
	}
}

func TestZipfIndexSkewed(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	counts := make([]int, 10)
	for i := 0; i < 20000; i++ {
		counts[zipfIndex(r, 10)]++
	}
	if counts[0] <= counts[9] {
		t.Errorf("zipf not skewed: first=%d last=%d", counts[0], counts[9])
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("index %d never drawn", i)
		}
	}
	if zipfIndex(r, 1) != 0 || zipfIndex(r, 0) != 0 {
		t.Error("degenerate n should return 0")
	}
}

func TestSampleIntersectionRatio(t *testing.T) {
	src := smallCab() // 20 entities
	for _, ratio := range []float64{0.3, 0.5, 0.7, 0.9} {
		s := Sample(&src, SampleConfig{IntersectionRatio: ratio, InclusionProbE: 1, InclusionProbI: 1, Seed: 6, MinRecords: 5})
		perSide := int(math.Floor(20 / (2 - ratio)))
		wantCommon := int(math.Round(ratio * float64(perSide)))
		if s.CommonPlanned != wantCommon {
			t.Errorf("ratio %g: planned common = %d, want %d", ratio, s.CommonPlanned, wantCommon)
		}
		if len(s.E.Entities()) > perSide || len(s.I.Entities()) > perSide {
			t.Errorf("ratio %g: side sizes %d/%d exceed %d", ratio,
				len(s.E.Entities()), len(s.I.Entities()), perSide)
		}
		// With inclusion 1.0 nothing is filtered: truth = planned common.
		if len(s.Truth) != wantCommon {
			t.Errorf("ratio %g: truth size = %d, want %d", ratio, len(s.Truth), wantCommon)
		}
	}
}

func TestSampleInclusionProbThinsRecords(t *testing.T) {
	src := smallCab()
	full := Sample(&src, SampleConfig{IntersectionRatio: 0.5, InclusionProbE: 1, InclusionProbI: 1, Seed: 7})
	thin := Sample(&src, SampleConfig{IntersectionRatio: 0.5, InclusionProbE: 0.2, InclusionProbI: 0.2, Seed: 7})
	fullAvg := AvgRecordsPerEntity(&full.E)
	thinAvg := AvgRecordsPerEntity(&thin.E)
	if thinAvg > fullAvg*0.35 || thinAvg < fullAvg*0.1 {
		t.Errorf("thinned avg %g vs full %g: expected ~20%%", thinAvg, fullAvg)
	}
}

func TestSampleAnonymizesIDs(t *testing.T) {
	src := smallCab()
	s := Sample(&src, SampleConfig{Seed: 8})
	srcIDs := make(map[model.EntityID]bool)
	for _, id := range src.Entities() {
		srcIDs[id] = true
	}
	for _, id := range s.E.Entities() {
		if srcIDs[id] {
			t.Fatalf("source id %s leaked into E", id)
		}
	}
	for _, id := range s.I.Entities() {
		if srcIDs[id] {
			t.Fatalf("source id %s leaked into I", id)
		}
	}
	// E and I id spaces must be disjoint.
	eIDs := make(map[model.EntityID]bool)
	for _, id := range s.E.Entities() {
		eIDs[id] = true
	}
	for _, id := range s.I.Entities() {
		if eIDs[id] {
			t.Fatalf("id %s appears on both sides", id)
		}
	}
}

func TestSampleTruthConsistent(t *testing.T) {
	src := smallCab()
	s := Sample(&src, SampleConfig{Seed: 9})
	eEnts := make(map[model.EntityID]bool)
	for _, id := range s.E.Entities() {
		eEnts[id] = true
	}
	iEnts := make(map[model.EntityID]bool)
	for _, id := range s.I.Entities() {
		iEnts[id] = true
	}
	seenI := make(map[model.EntityID]bool)
	for e, i := range s.Truth {
		if !eEnts[e] {
			t.Errorf("truth E entity %s not in E", e)
		}
		if !iEnts[i] {
			t.Errorf("truth I entity %s not in I", i)
		}
		if seenI[i] {
			t.Errorf("truth maps two E entities to %s", i)
		}
		seenI[i] = true
	}
}

func TestSampleMinRecordsFilter(t *testing.T) {
	src := smallSM() // sparse: low inclusion will push entities under 6 records
	s := Sample(&src, SampleConfig{InclusionProbE: 0.15, InclusionProbI: 0.15, Seed: 10, MinRecords: 5})
	for id, n := range recordCounts(&s.E) {
		if n <= 5 {
			t.Fatalf("entity %s kept with %d records", id, n)
		}
	}
	for id, n := range recordCounts(&s.I) {
		if n <= 5 {
			t.Fatalf("entity %s kept with %d records", id, n)
		}
	}
}

func recordCounts(d *model.Dataset) map[model.EntityID]int {
	m := make(map[model.EntityID]int)
	for _, r := range d.Records {
		m[r.Entity]++
	}
	return m
}

func TestSampleDeterminism(t *testing.T) {
	src := smallCab()
	a := Sample(&src, SampleConfig{Seed: 11})
	b := Sample(&src, SampleConfig{Seed: 11})
	if len(a.E.Records) != len(b.E.Records) || len(a.I.Records) != len(b.I.Records) {
		t.Fatal("same seed, different sample sizes")
	}
	if len(a.Truth) != len(b.Truth) {
		t.Fatal("same seed, different truth")
	}
	for e, i := range a.Truth {
		if b.Truth[e] != i {
			t.Fatal("same seed, different truth mapping")
		}
	}
}

func TestSampleSizePerSideCap(t *testing.T) {
	src := smallCab()
	s := Sample(&src, SampleConfig{SizePerSide: 5, InclusionProbE: 1, InclusionProbI: 1, Seed: 12})
	if len(s.E.Entities()) > 5 || len(s.I.Entities()) > 5 {
		t.Errorf("size cap violated: %d / %d", len(s.E.Entities()), len(s.I.Entities()))
	}
}

func TestSortByTime(t *testing.T) {
	src := smallCab()
	sorted := SortByTime(&src)
	for i := 1; i < len(sorted.Records); i++ {
		if sorted.Records[i].Unix < sorted.Records[i-1].Unix {
			t.Fatal("not sorted by time")
		}
	}
	if len(sorted.Records) != len(src.Records) {
		t.Fatal("record count changed")
	}
}

func TestAvgRecordsPerEntityEmpty(t *testing.T) {
	d := model.Dataset{}
	if AvgRecordsPerEntity(&d) != 0 {
		t.Error("empty dataset avg should be 0")
	}
}

func BenchmarkCabGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Cab(CabConfig{NumTaxis: 20, Days: 2, MeanRecordIntervalSec: 300, Seed: int64(i)})
	}
}

func BenchmarkSMGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = SM(SMConfig{NumUsers: 500, Days: 8, AvgRecords: 20, Seed: int64(i)})
	}
}
