// Package datagen provides the synthetic workloads of the reproduction.
//
// The paper evaluates on two real datasets that are not redistributable:
// the San Francisco cab trace (~530 taxis, 24 days, 11M GPS records) and a
// Foursquare+Twitter check-in crawl (~470k users, ~5M records, 26 days).
// This package builds the closest synthetic equivalents (see DESIGN.md §3):
//
//   - Cab: taxis moving between random waypoints over an SF-like street
//     area at bounded speed, emitting records at Poisson times. Dense
//     per-entity histories, one metro area, heavy spatial collision —
//     exactly the properties the Cab experiments exercise.
//   - SM: users with home cities and power-law POI revisit habits emitting
//     sparse check-ins across the globe — low record counts, low
//     spatio-temporal skew, the properties the SM experiments exercise.
//
// Sample implements the paper's workload knobs (Sec. 5.1): two possibly
// overlapping entity subsets controlled by the entity intersection ratio,
// per-dataset record downsampling by the record inclusion probability,
// anonymized per-dataset ids, a ground-truth map for evaluation, and the
// ≥5-records entity filter.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"slim/internal/geo"
	"slim/internal/model"
)

const (
	kmPerDegLat = 111.32
	secondsDay  = 86400
)

// CabConfig parameterizes the taxi-trace generator.
type CabConfig struct {
	NumTaxis int
	Days     int
	// MeanRecordIntervalSec is the average seconds between GPS records of
	// one taxi (the real trace averages ~60s; defaults to 180).
	MeanRecordIntervalSec float64
	// Seed drives all randomness; equal configs generate equal datasets.
	Seed int64
	// StartUnix is the trace start time (defaults to 2008-05-17, the real
	// trace's start).
	StartUnix int64
}

func (c *CabConfig) defaults() {
	if c.NumTaxis == 0 {
		c.NumTaxis = 530
	}
	if c.Days == 0 {
		c.Days = 24
	}
	if c.MeanRecordIntervalSec == 0 {
		c.MeanRecordIntervalSec = 180
	}
	if c.StartUnix == 0 {
		c.StartUnix = 1211004000 // 2008-05-17
	}
}

// Cab generates the synthetic San Francisco taxi trace.
func Cab(cfg CabConfig) model.Dataset {
	cfg.defaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	d := model.Dataset{Name: "cab"}

	// Bay-Area-like service area (~65km x 55km): the real trace includes
	// airport and peninsula trips, which is what makes same-window alibis
	// (pairs farther apart than the ~30km runaway distance) possible.
	const latLo, latHi = 37.35, 37.93
	const lngLo, lngHi = -122.70, -122.05
	horizon := int64(cfg.Days) * secondsDay

	for taxi := 0; taxi < cfg.NumTaxis; taxi++ {
		id := model.EntityID(fmt.Sprintf("cab-%04d", taxi))
		// Real drivers favor habitual zones (home stand, airport, favorite
		// neighborhoods); give each taxi anchor zones so fine-grained
		// dominating cells carry identity, as they do in the real trace.
		type anchor struct{ lat, lng float64 }
		anchors := make([]anchor, 3)
		for a := range anchors {
			anchors[a] = anchor{
				lat: latLo + r.Float64()*(latHi-latLo),
				lng: lngLo + r.Float64()*(lngHi-lngLo),
			}
		}
		pickWaypoint := func() (float64, float64) {
			if r.Float64() < 0.75 {
				a := anchors[r.Intn(len(anchors))]
				// ~1.5 km scatter around the anchor.
				return mathClamp(a.lat+r.NormFloat64()*0.013, latLo, latHi),
					mathClamp(a.lng+r.NormFloat64()*0.017, lngLo, lngHi)
			}
			return latLo + r.Float64()*(latHi-latLo), lngLo + r.Float64()*(lngHi-lngLo)
		}
		// Position and target in degrees.
		lat, lng := pickWaypoint()
		tgtLat, tgtLng := pickWaypoint()
		// City driving speed: 0.2 - 0.8 km/min.
		speedKmMin := 0.2 + 0.6*r.Float64()

		var t float64
		for t < float64(horizon) {
			dt := r.ExpFloat64() * cfg.MeanRecordIntervalSec
			if dt < 1 {
				dt = 1
			}
			t += dt
			if t >= float64(horizon) {
				break
			}
			// Advance toward the waypoint by speed * dt.
			moveKm := speedKmMin * dt / 60
			kmPerDegLng := kmPerDegLat * math.Cos(lat*math.Pi/180)
			dLatKm := (tgtLat - lat) * kmPerDegLat
			dLngKm := (tgtLng - lng) * kmPerDegLng
			legKm := math.Hypot(dLatKm, dLngKm)
			if legKm <= moveKm {
				// Arrived: new waypoint, new speed.
				lat, lng = tgtLat, tgtLng
				tgtLat, tgtLng = pickWaypoint()
				speedKmMin = 0.2 + 0.6*r.Float64()
			} else {
				frac := moveKm / legKm
				lat += (tgtLat - lat) * frac
				lng += (tgtLng - lng) * frac
			}
			// GPS noise ~30m.
			nLat := lat + r.NormFloat64()*0.0003
			nLng := lng + r.NormFloat64()*0.0003
			d.Records = append(d.Records, model.Record{
				Entity: id,
				LatLng: geo.LatLngFromDegrees(nLat, nLng),
				Unix:   cfg.StartUnix + int64(t),
			})
		}
	}
	return d
}

// city is a world metro center for the SM generator.
type city struct {
	name     string
	lat, lng float64
}

var worldCities = []city{
	{"new-york", 40.7128, -74.0060},
	{"london", 51.5074, -0.1278},
	{"tokyo", 35.6762, 139.6503},
	{"san-francisco", 37.7749, -122.4194},
	{"paris", 48.8566, 2.3522},
	{"istanbul", 41.0082, 28.9784},
	{"sao-paulo", -23.5505, -46.6333},
	{"jakarta", -6.2088, 106.8456},
	{"lagos", 6.5244, 3.3792},
	{"mumbai", 19.0760, 72.8777},
	{"seoul", 37.5665, 126.9780},
	{"mexico-city", 19.4326, -99.1332},
	{"sydney", -33.8688, 151.2093},
	{"moscow", 55.7558, 37.6173},
	{"cairo", 30.0444, 31.2357},
	{"berlin", 52.5200, 13.4050},
	{"toronto", 43.6532, -79.3832},
	{"singapore", 1.3521, 103.8198},
	{"ankara", 39.9334, 32.8597},
	{"chicago", 41.8781, -87.6298},
}

// SMConfig parameterizes the social-media check-in generator.
type SMConfig struct {
	NumUsers int
	Days     int
	// AvgRecords is the mean number of check-ins per user (the real SM
	// data averages ~12 over 26 days).
	AvgRecords float64
	// POIsPerUser is the size of each user's habitual location set.
	POIsPerUser int
	Seed        int64
	StartUnix   int64
}

func (c *SMConfig) defaults() {
	if c.NumUsers == 0 {
		c.NumUsers = 30000
	}
	if c.Days == 0 {
		c.Days = 26
	}
	if c.AvgRecords == 0 {
		c.AvgRecords = 24
	}
	if c.POIsPerUser == 0 {
		c.POIsPerUser = 8
	}
	if c.StartUnix == 0 {
		c.StartUnix = 1507075200 // 2017-10-04
	}
}

// SM generates the synthetic social-media check-in stream. Note AvgRecords
// is the density of the *ground* stream; the paper's per-service densities
// arise from sampling it with the record inclusion probability.
func SM(cfg SMConfig) model.Dataset {
	cfg.defaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	d := model.Dataset{Name: "sm"}
	horizon := int64(cfg.Days) * secondsDay

	for u := 0; u < cfg.NumUsers; u++ {
		id := model.EntityID(fmt.Sprintf("sm-%06d", u))
		// Home city: zipf-ish preference for bigger indexes early.
		home := worldCities[zipfIndex(r, len(worldCities))]
		// Habitual POIs scattered within ~12 km of the center.
		type poi struct{ lat, lng float64 }
		pois := make([]poi, cfg.POIsPerUser)
		for p := range pois {
			pois[p] = poi{
				lat: home.lat + r.NormFloat64()*0.05,
				lng: home.lng + r.NormFloat64()*0.05/math.Max(0.2, math.Cos(home.lat*math.Pi/180)),
			}
		}
		// Check-in count ~ Poisson(AvgRecords), at least 1.
		n := poisson(r, cfg.AvgRecords)
		if n < 1 {
			n = 1
		}
		times := make([]int64, n)
		for k := range times {
			day := int64(r.Intn(cfg.Days))
			// Daytime bias: 08:00-23:00.
			sec := int64(8*3600 + r.Intn(15*3600))
			times[k] = cfg.StartUnix + day*secondsDay + sec
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		for _, ts := range times {
			p := pois[zipfIndex(r, len(pois))]
			d.Records = append(d.Records, model.Record{
				Entity: id,
				LatLng: geo.LatLngFromDegrees(
					p.lat+r.NormFloat64()*0.0005,
					p.lng+r.NormFloat64()*0.0005),
				Unix: ts + int64(r.Intn(60)),
			})
		}
		_ = horizon
	}
	return d
}

func mathClamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// zipfIndex draws an index in [0, n) with probability ∝ 1/(i+1).
func zipfIndex(r *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	var norm float64
	for i := 1; i <= n; i++ {
		norm += 1 / float64(i)
	}
	x := r.Float64() * norm
	var acc float64
	for i := 1; i <= n; i++ {
		acc += 1 / float64(i)
		if x <= acc {
			return i - 1
		}
	}
	return n - 1
}

// poisson draws from a Poisson distribution (Knuth for small λ, normal
// approximation for large).
func poisson(r *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 50 {
		v := lambda + math.Sqrt(lambda)*r.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(math.Round(v))
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
