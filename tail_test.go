package slim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// tailPair identifies one edge in the synthetic edge-set model.
type tailPair struct{ u, v string }

// TestPublishTailParityRandomized is the publish tail's exactness gate on
// delta shapes real ingest cannot provoke: pair scores are pure functions
// of bin sets and any bin-set change moves an IDF epoch (forcing a full
// rescore), so partial deltas — removals, score changes that invert the
// sorted rank order, ties at the reuse boundary — only reach the tail in
// systems that relax that discipline. This suite feeds the tail synthetic
// EdgeDelta bursts over a quantized score palette (ties everywhere,
// including at reuse boundaries), folds multiple deltas per publish the
// way the partitioned engine does, injects inconsistent deltas (the
// full-rebuild fallback) and explicit epoch rebuilds, and checks every
// publish bit-identically (math.Float64bits) against the from-scratch
// pipeline: MatchLinks + SelectStopThreshold + FilterLinks.
func TestPublishTailParityRandomized(t *testing.T) {
	for _, seed := range []int64{2, 11, 29} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			const nU, nV = 20, 16
			// Quantized palette in (0, 1]: equal scores occur constantly, so
			// the (U, V) tie-break is load-bearing on almost every burst, and
			// a rescore to the top or bottom of the palette inverts ranks.
			score := func() float64 { return float64(1+rng.Intn(16)) / 16 }
			pair := func() tailPair {
				return tailPair{fmt.Sprintf("u%02d", rng.Intn(nU)), fmt.Sprintf("v%02d", rng.Intn(nV))}
			}

			set := map[tailPair]float64{}
			for i := 0; i < 120; i++ {
				set[pair()] = score()
			}
			edges := func() []Link {
				out := make([]Link, 0, len(set))
				for p, s := range set {
					out = append(out, Link{U: EntityID(p.u), V: EntityID(p.v), Score: s})
				}
				return out
			}
			fromScratch := func() (matched, links []Link, thr StopThreshold) {
				matched = MatchLinks(MatcherGreedy, edges())
				thr = SelectStopThreshold(ThresholdGMM, LinkScores(matched))
				return matched, FilterLinks(matched, thr.Threshold), thr
			}
			check := func(step string, matched, links []Link, thr StopThreshold) {
				t.Helper()
				wantM, wantL, wantT := fromScratch()
				if !sameLinksBits(matched, wantM) {
					t.Fatalf("%s: matched diverged (%d vs %d)", step, len(matched), len(wantM))
				}
				if math.Float64bits(thr.Threshold) != math.Float64bits(wantT.Threshold) || thr.Method != wantT.Method {
					t.Fatalf("%s: threshold %v, want %v", step, thr, wantT)
				}
				if !sameLinksBits(links, wantL) {
					t.Fatalf("%s: links diverged (%d vs %d)", step, len(links), len(wantL))
				}
			}

			tail := NewPublishTail(ThresholdGMM)
			m, l, thr := tail.Publish([]EdgeDelta{{Full: true}}, edges)
			check("initial full", m, l, thr)

			sawPartialReuse, sawFallback := false, false
			for burst := 0; burst < 60; burst++ {
				var deltas []EdgeDelta
				switch kind := rng.Intn(10); {
				case kind == 0:
					// Epoch rebuild: the whole edge set is rescored.
					for p := range set {
						if rng.Intn(3) == 0 {
							set[p] = score()
						}
					}
					deltas = []EdgeDelta{{Full: true}}
				case kind == 1:
					// No-op burst (a dirty rescore that changed nothing):
					// the tail must reuse everything, including the fit.
					deltas = []EdgeDelta{{}}
				case kind == 2:
					// Inconsistent delta — a removal naming a score the
					// matcher doesn't hold. The tail must fall back to a
					// full rebuild and still publish the exact answer.
					deltas = []EdgeDelta{{Removed: []Link{{U: "u00", V: "v00", Score: -1}}}}
					sawFallback = true
				default:
					// One or two partial deltas (two models the engine
					// folding per-shard deltas into a single publish).
					parts := 1 + rng.Intn(2)
					touched := map[tailPair]bool{}
					for i := 0; i < parts; i++ {
						var d EdgeDelta
						for j := 0; j < 1+rng.Intn(4); j++ {
							p := pair()
							if touched[p] {
								continue
							}
							touched[p] = true
							old, had := set[p]
							switch {
							case had && rng.Intn(3) == 0: // removal
								d.Removed = append(d.Removed, Link{U: EntityID(p.u), V: EntityID(p.v), Score: old})
								delete(set, p)
							case had: // score change (both sides of the delta)
								nw := score()
								if nw == old {
									continue
								}
								d.Removed = append(d.Removed, Link{U: EntityID(p.u), V: EntityID(p.v), Score: old})
								d.Changed = append(d.Changed, Link{U: EntityID(p.u), V: EntityID(p.v), Score: nw})
								set[p] = nw
							default: // insert
								nw := score()
								d.Changed = append(d.Changed, Link{U: EntityID(p.u), V: EntityID(p.v), Score: nw})
								set[p] = nw
							}
						}
						deltas = append(deltas, d)
					}
				}
				m, l, thr := tail.Publish(deltas, edges)
				check(fmt.Sprintf("burst %d", burst), m, l, thr)
				if ts := tail.Stats(); !ts.LastFull && ts.ReusedPrefixLen > 0 && ts.SuffixWalked > 0 {
					sawPartialReuse = true
				}
			}
			ts := tail.Stats()
			if !sawPartialReuse {
				t.Fatal("no burst exercised partial prefix reuse (reused > 0 with a suffix walk)")
			}
			if !sawFallback || ts.FullRebuilds < 2 {
				t.Fatalf("fallback path not exercised: %+v", ts)
			}
			if ts.Applies == 0 || ts.ThresholdReuses == 0 || ts.ThresholdFits == 0 {
				t.Fatalf("stats show a path was never taken: %+v", ts)
			}
		})
	}
}

// TestPublishTailRemovalOfTopLink removes the highest matched link: zero
// prefix survives, the whole suffix re-walks, and the threshold must be
// refit on the shorter score list.
func TestPublishTailRemovalOfTopLink(t *testing.T) {
	all := []Link{
		{U: "e1", V: "i1", Score: 0.95},
		{U: "e2", V: "i2", Score: 0.9},
		{U: "e1", V: "i2", Score: 0.85},
		{U: "e3", V: "i3", Score: 0.2},
		{U: "e4", V: "i4", Score: 0.15},
	}
	tail := NewPublishTail(ThresholdGMM)
	edges := func() []Link { return all }
	m, _, _ := tail.Publish([]EdgeDelta{{Full: true}}, edges)
	if len(m) == 0 || m[0].Score != 0.95 {
		t.Fatalf("unexpected initial matching: %v", m)
	}

	// Drop the top link: e1 falls to i2, which was previously free for no
	// one — the cascade rewrites the matching from position zero.
	all = all[1:]
	m2, l2, thr := tail.Publish([]EdgeDelta{{Removed: []Link{{U: "e1", V: "i1", Score: 0.95}}}}, edges)
	wantM := MatchLinks(MatcherGreedy, all)
	wantT := SelectStopThreshold(ThresholdGMM, LinkScores(wantM))
	if !sameLinksBits(m2, wantM) {
		t.Fatalf("matched after removal: %v, want %v", m2, wantM)
	}
	if math.Float64bits(thr.Threshold) != math.Float64bits(wantT.Threshold) {
		t.Fatalf("threshold after removal: %v, want %v", thr, wantT)
	}
	if !sameLinksBits(l2, FilterLinks(wantM, wantT.Threshold)) {
		t.Fatalf("links after removal: %v", l2)
	}
	ts := tail.Stats()
	if ts.LastFull || ts.ReusedPrefixLen != 0 {
		t.Fatalf("removal of the top link must reuse nothing without a rebuild: %+v", ts)
	}
}
