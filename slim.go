// Package slim is a from-scratch Go implementation of SLIM — Scalable
// Linkage of Mobility Data (Basık, Ferhatosmanoğlu, Gedik; SIGMOD 2020).
//
// SLIM links entities across two mobility datasets using only their
// spatio-temporal records: it summarizes each entity as a mobility history
// (a temporal segment tree of spatial grid cells), filters candidate pairs
// with an LSH over dominating-cell signatures, scores pairs with an
// alibi-aware, IDF- and length-normalized proximity aggregation, matches
// them with maximum-sum bipartite matching, and cuts the matching at an
// automatically detected stop threshold.
//
// Quick start:
//
//	res, err := slim.Link(datasetE, datasetI, slim.Defaults())
//	for _, l := range res.Links {
//	    fmt.Println(l.U, "<->", l.V, l.Score)
//	}
//
// See the examples/ directory for complete programs and DESIGN.md for the
// mapping between the paper and this repository.
package slim

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"slim/internal/candidates"
	"slim/internal/history"
	"slim/internal/lsh"
	"slim/internal/matching"
	"slim/internal/model"
	"slim/internal/similarity"
	"slim/internal/threshold"
	"slim/internal/tuning"
)

// Link is one linked entity pair with its similarity score.
type Link struct {
	U     EntityID
	V     EntityID
	Score float64
}

// Stats aggregates the work counters of one linkage run.
type Stats struct {
	// CandidatePairs is the number of cross-dataset pairs scored.
	CandidatePairs int64
	// PositiveEdges is how many scored pairs produced a positive score.
	PositiveEdges int64
	// BinComparisons / RecordComparisons / AlibiBinPairs mirror the
	// similarity scorer's counters (Fig. 4c/4d instrumentation).
	BinComparisons    int64
	RecordComparisons int64
	AlibiBinPairs     int64
	// LSH holds filter statistics when the filter was enabled.
	LSH *LSHStats
	// EdgeStore reports the incremental edge store behind this run: how
	// many scored pairs were retained from the previous run versus
	// rescored or dropped (see EdgeStoreStats).
	EdgeStore *EdgeStoreStats
}

// LSHStats reports the candidate filter's effectiveness.
type LSHStats struct {
	SignatureLen int
	Bands        int
	Rows         int
	Candidates   int64
}

// Result is the outcome of a linkage run.
type Result struct {
	// Links are the final links (score above the stop threshold), sorted
	// by descending score.
	Links []Link
	// Matched is the full maximum-sum matching before thresholding.
	Matched []Link
	// Threshold is the automatically selected stop score; links strictly
	// above it are kept.
	Threshold float64
	// ThresholdMethod reports which detector produced the threshold.
	ThresholdMethod string
	// SpatialLevel is the history grid level used (after auto-tuning).
	SpatialLevel int
	// Stats carries the work counters.
	Stats Stats
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// Linker is a prepared linkage: histories built, candidates enumerable,
// pairs scorable. Use NewLinker + Run for the full pipeline, Score for
// targeted pair scoring (e.g. ranking experiments), and AddE/AddI + Run
// for dynamic feeds (incremental re-linking).
type Linker struct {
	cfg    Config
	wnd    model.Windowing
	storeE *history.Store
	storeI *history.Store
	scorer *similarity.Scorer
	// Signature stores for LSH when its spatial level differs from the
	// similarity level (otherwise they alias storeE/storeI).
	sigStoreE *history.Store
	sigStoreI *history.Store
	// candidates enumerated by LSH; nil means brute force (all pairs),
	// which is streamed by index rather than materialized.
	candidates []lsh.Pair
	lshStats   *LSHStats
	// candIndex incrementally maintains the LSH candidate set (non-nil
	// exactly when cfg.LSH is set); dirtyE/dirtyI collect the entities
	// touched by AddE/AddI since the last run in every mode, so a relink
	// re-signs O(dirty) index entries and — via the edge store — rescores
	// O(dirty) pairs instead of rescanning the world.
	candIndex *candidates.Index
	dirtyE    map[EntityID]struct{}
	dirtyI    map[EntityID]struct{}
	// edges is the maintained pair→score state RunEdges updates by delta;
	// see edges.go for the epoch-invalidation discipline.
	edges edgeStore
	// nextRunSeq, when set, pins the run sequence the next RunEdges stamps
	// onto edge lineage (see SetNextRunSeq); otherwise RunEdges counts its
	// own runs.
	nextRunSeq    uint64
	nextRunSeqSet bool
	// tail is the incremental publish tail Run maintains for the greedy
	// matcher (lazily built; Hungarian keeps the from-scratch path).
	// tailSynced is the edge-store update counter the tail last consumed,
	// so a RunEdges driven outside Run (whose delta the tail never saw)
	// degrades the next Run to a full tail rebuild instead of silently
	// publishing from a stale maintained order.
	tail       *PublishTail
	tailSynced uint64
	// prevStats snapshots the scorer counters so repeated Run calls report
	// per-run work.
	prevStats similarity.Stats
}

// PreparedLinkage holds the seed inputs of one logical linkage after
// one-time preparation: datasets validated and min-records filtered, the
// configuration normalized, and the shared temporal grid and spatial
// level resolved. Partitioned engines call PrepareLinkage once and hand
// every shard the same grid via ShardOptions.
type PreparedLinkage struct {
	// E and I are the validated, min-records-filtered datasets.
	E, I Dataset
	// Config is the normalized configuration with the resolved (possibly
	// auto-tuned) spatial level filled in.
	Config Config
	// EpochUnix is the unix time of the left edge of temporal window 0.
	EpochUnix int64
}

// PrepareLinkage validates and min-records-filters both datasets and
// resolves the shared temporal grid and spatial level (auto-tuning when
// cfg.SpatialLevel is 0, with level 12 as the degenerate-input fallback).
// It is the single place grid resolution happens: NewLinker and the
// sharded engine both build on it.
func PrepareLinkage(dsE, dsI Dataset, cfg Config) (PreparedLinkage, error) {
	if err := cfg.normalize(); err != nil {
		return PreparedLinkage{}, err
	}
	if err := dsE.Validate(); err != nil {
		return PreparedLinkage{}, fmt.Errorf("slim: dataset E: %w", err)
	}
	if err := dsI.Validate(); err != nil {
		return PreparedLinkage{}, fmt.Errorf("slim: dataset I: %w", err)
	}
	fe := dsE.FilterMinRecords(cfg.MinRecords)
	fi := dsI.FilterMinRecords(cfg.MinRecords)

	widthSec := windowSeconds(cfg)
	wnd := model.NewWindowing(widthSec, &fe, &fi)

	level := cfg.SpatialLevel
	if level == 0 {
		opt := tuning.DefaultOptions()
		opt.WindowSeconds = widthSec
		opt.MaxSpeedKmPerMin = cfg.MaxSpeedKmPerMin
		opt.B = cfg.B
		level, _, _ = tuning.AutoSpatialLevelPair(&fe, &fi, opt)
		if level == 0 {
			level = 12
		}
	}
	cfg.SpatialLevel = level
	return PreparedLinkage{E: fe, I: fi, Config: cfg, EpochUnix: wnd.Epoch}, nil
}

// windowSeconds returns the temporal window width in whole seconds,
// clamped to at least 1.
func windowSeconds(cfg Config) int64 {
	w := int64(cfg.WindowMinutes * 60)
	if w < 1 {
		w = 1
	}
	return w
}

// NewLinker validates the configuration, builds both datasets' mobility
// histories (auto-tuning the spatial level if requested) and, when LSH is
// enabled, the candidate pair set.
func NewLinker(dsE, dsI Dataset, cfg Config) (*Linker, error) {
	p, err := PrepareLinkage(dsE, dsI, cfg)
	if err != nil {
		return nil, err
	}
	wnd := model.Windowing{Epoch: p.EpochUnix, WidthSeconds: windowSeconds(p.Config)}
	return buildLinker(p.E, p.I, p.Config, wnd)
}

// ShardOptions pins the shared linkage grid when a Linker is built as one
// shard of a larger partitioned linkage: every shard must agree on the
// window epoch and the spatial level or their scores would live on
// different bins.
type ShardOptions struct {
	// EpochUnix is the unix time of the left edge of temporal window 0,
	// shared across the whole partition.
	EpochUnix int64
	// SpatialLevel pins the history grid level; 0 keeps cfg.SpatialLevel,
	// which must then be non-zero (shards never auto-tune).
	SpatialLevel int
}

// NewShardLinker builds a Linker over one partition of a larger linkage.
// The caller (e.g. internal/engine) is expected to have validated and
// min-records-filtered the inputs once globally, and to pass the grid
// parameters it resolved for the whole linkage; no auto-tuning or
// re-filtering happens here. Empty partitions are allowed.
func NewShardLinker(dsE, dsI Dataset, cfg Config, opt ShardOptions) (*Linker, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if opt.SpatialLevel > 0 {
		cfg.SpatialLevel = opt.SpatialLevel
	}
	if cfg.SpatialLevel == 0 {
		return nil, fmt.Errorf("slim: shard linker requires a pinned spatial level")
	}
	wnd := model.Windowing{Epoch: opt.EpochUnix, WidthSeconds: windowSeconds(cfg)}
	return buildLinker(dsE, dsI, cfg, wnd)
}

// buildLinker assembles stores, scorer and LSH candidates from prepared
// datasets under an already-resolved configuration and windowing.
func buildLinker(fe, fi Dataset, cfg Config, wnd model.Windowing) (*Linker, error) {
	lk := &Linker{
		cfg:    cfg,
		wnd:    wnd,
		dirtyE: make(map[EntityID]struct{}),
		dirtyI: make(map[EntityID]struct{}),
		edges:  newEdgeStore(),
	}
	lk.storeE = history.Build(&fe, wnd, cfg.SpatialLevel)
	lk.storeI = history.Build(&fi, wnd, cfg.SpatialLevel)

	widthSec := wnd.WidthSeconds
	params := similarity.DefaultParams(float64(widthSec)/60, cfg.MaxSpeedKmPerMin)
	params.B = cfg.B
	params.UseMFN = !cfg.Ablation.DisableMFN
	params.UseIDF = !cfg.Ablation.DisableIDF
	params.UseNorm = !cfg.Ablation.DisableNorm
	if cfg.Ablation.AllPairs {
		params.Pairing = similarity.PairingAllPairs
	}
	lk.scorer = similarity.NewScorer(lk.storeE, lk.storeI, params)

	if cfg.LSH != nil {
		if err := lk.buildLSHCandidates(&fe, &fi); err != nil {
			return nil, err
		}
	}
	return lk, nil
}

// buildLSHCandidates constructs dominating-cell signature stores (at the
// LSH's own spatial level) and the incremental candidate index over them.
func (lk *Linker) buildLSHCandidates(fe, fi *model.Dataset) error {
	c := lk.cfg.LSH
	lk.sigStoreE = lk.storeE
	lk.sigStoreI = lk.storeI
	if c.SpatialLevel != lk.cfg.SpatialLevel {
		lk.sigStoreE = history.Build(fe, lk.wnd, c.SpatialLevel)
		lk.sigStoreI = history.Build(fi, lk.wnd, c.SpatialLevel)
	}
	lk.candIndex = candidates.New(lk.sigStoreE, lk.sigStoreI, lsh.Params{
		Threshold:    c.Threshold,
		StepWindows:  c.StepWindows,
		SpatialLevel: c.SpatialLevel,
		NumBuckets:   c.NumBuckets,
	})
	lk.refreshLSHCandidates()
	return nil
}

// lshStale reports whether incremental adds have outdated the candidate
// set since the last refresh (always false with LSH disabled: brute-force
// dirty entities are consumed by RunEdges itself).
func (lk *Linker) lshStale() bool {
	return lk.candIndex != nil && (len(lk.dirtyE) > 0 || len(lk.dirtyI) > 0)
}

// refreshLSHCandidates brings the candidate index up to date with the
// signature stores. Where this used to rebuild every signature and
// re-enumerate every band-bucket collision, it now forwards the dirty
// entity set to the index, which updates by delta (an epoch rebuild only
// when the window range outgrew the signature grid); the resulting pair
// set is identical to a from-scratch rebuild (see internal/candidates).
// The candidate Delta is folded into the edge store's pending work, so
// the next RunEdges rescores exactly the added/dirty pairs and drops the
// removed ones — the refresh consumes the dirty entity sets.
func (lk *Linker) refreshLSHCandidates() {
	d := lk.candIndex.Update(lk.dirtyE, lk.dirtyI)
	clear(lk.dirtyE)
	clear(lk.dirtyI)
	lk.edges.mergeDelta(d)
	// Pairs is never nil: zero survivors must stay distinguishable from
	// "LSH disabled", where a nil candidate set means brute force.
	lk.candidates = lk.candIndex.Pairs()
	st := lk.candIndex.Stats()
	lk.lshStats = &LSHStats{
		SignatureLen: st.SignatureLen,
		Bands:        st.Bands,
		Rows:         st.Rows,
		Candidates:   st.Candidates,
	}
}

// CandidateIndexStats reports the state of the incremental LSH candidate
// index: maintained signatures, bucket occupancy, candidate count, and
// the dirty-entity count, rebuild flag and wall-clock duration of the
// most recent index update. It is field-identical to candidates.Stats
// (see that type for per-field docs) so the snapshot is a plain type
// conversion rather than a hand-maintained copy.
type CandidateIndexStats struct {
	SignatureLen int
	Bands        int
	Rows         int
	NumBuckets   int
	Epoch        uint64
	SignaturesE  int
	SignaturesI  int
	Buckets      int
	Memberships  int
	Occupancy    float64
	Candidates   int64
	LastDirty    int
	LastRebuild  bool
	LastUpdate   time.Duration
}

// CandidateIndexStats returns the incremental candidate index snapshot,
// or nil when LSH is disabled. Not safe concurrently with Run or Add.
func (lk *Linker) CandidateIndexStats() *CandidateIndexStats {
	if lk.candIndex == nil {
		return nil
	}
	st := CandidateIndexStats(lk.candIndex.Stats())
	return &st
}

// AddE ingests new records of the first dataset into the prepared linker,
// updating histories, IDF statistics and (lazily) the LSH candidates and
// edge store. The next Run reflects the additions. Incremental adds bypass
// the MinRecords filter applied at construction time; callers streaming
// sparse entities should batch until entities have enough records to be
// linkable. Not safe concurrently with Run or Score.
func (lk *Linker) AddE(recs ...Record) { lk.add(lk.storeE, lk.sigStoreE, lk.dirtyE, recs) }

// AddI ingests new records of the second dataset; see AddE.
func (lk *Linker) AddI(recs ...Record) { lk.add(lk.storeI, lk.sigStoreI, lk.dirtyI, recs) }

func (lk *Linker) add(store, sigStore *history.Store, dirty map[EntityID]struct{}, recs []Record) {
	for _, r := range recs {
		store.Add(r)
		if sigStore != nil && sigStore != store {
			sigStore.Add(r)
		}
		// Remember which entities changed: the next candidate refresh
		// re-signs exactly these (LSH mode), and the next RunEdges rescores
		// exactly their pairs (brute-force mode) unless an IDF-epoch bump
		// forces a full rescore anyway.
		dirty[r.Entity] = struct{}{}
	}
}

// SetTotalEntitiesE tells a shard linker how many E entities the whole
// partitioned linkage holds, so its IDF uniqueness weights (Eq. 3) use the
// global entity count as numerator instead of the shard-local one (the
// bin frequencies in the denominator stay shard-local). Without this, a
// shard that owns a single entity would weight every bin log(1/1) = 0 and
// score nothing. No-op for n at or below the shard's own entity count.
func (lk *Linker) SetTotalEntitiesE(n int) { lk.storeE.SetIDFTotalEntities(n) }

// Windowing exposes the shared temporal grid of the linkage.
func (lk *Linker) Windowing() model.Windowing { return lk.wnd }

// SpatialLevel reports the history grid level in use.
func (lk *Linker) SpatialLevel() int { return lk.cfg.SpatialLevel }

// EntitiesE returns the (post-filter) entity ids of the first dataset.
func (lk *Linker) EntitiesE() []EntityID { return lk.storeE.Entities() }

// EntitiesI returns the (post-filter) entity ids of the second dataset.
func (lk *Linker) EntitiesI() []EntityID { return lk.storeI.Entities() }

// Score computes the SLIM similarity S(u, v) for one pair on demand.
func (lk *Linker) Score(u, v EntityID) float64 { return lk.scorer.Score(u, v) }

// ScoreBreakdown computes the full per-window decomposition of
// Score(u, v): every common temporal window with the bin pairs the
// pairing selected, their distances, proximities and IDF weights, and
// per-window sums that recompose to Score(u, v) bit-identically. It is
// the explainability slow path — it allocates freely and never perturbs
// the scorer's pooled scratch or work counters.
func (lk *Linker) ScoreBreakdown(u, v EntityID) *similarity.Breakdown {
	return lk.scorer.ScoreBreakdown(u, v)
}

// SetNextRunSeq pins the run sequence the next RunEdges stamps onto edge
// lineage. Partitioned engines call it with their next published result
// version just before driving a shard's RunEdges, so lineage sequence
// numbers line up with the versions reported by /v1/stats and the run
// journal. Without it RunEdges counts its own updates.
func (lk *Linker) SetNextRunSeq(seq uint64) {
	lk.nextRunSeq = seq
	lk.nextRunSeqSet = true
}

// PairExplanation joins the three provenance layers for one (u, v) pair:
// the score decomposition, the candidate-filter lineage (nil when LSH is
// disabled — every pair is a candidate then), and the edge-store lineage.
type PairExplanation struct {
	// Breakdown decomposes the current Score(u, v).
	Breakdown *similarity.Breakdown
	// Candidates explains the pair's LSH lineage; nil when the linker runs
	// brute force (no candidate filter to explain).
	Candidates *candidates.PairExplain
	// Edge is the pair's edge-store provenance.
	Edge EdgeLineage
}

// Explain reports the full provenance of one pair. Like Score it reads
// the current stores — call it after RunEdges for answers consistent with
// the last published links. Not safe concurrently with ingest or runs.
func (lk *Linker) Explain(u, v EntityID) PairExplanation {
	ex := PairExplanation{
		Breakdown: lk.ScoreBreakdown(u, v),
		Edge:      lk.edges.lineage(lsh.Pair{U: u, V: v}),
	}
	if lk.candIndex != nil {
		ce := lk.candIndex.Explain(lsh.Pair{U: u, V: v})
		ex.Candidates = &ce
	}
	return ex
}

// CandidatePairs returns the pairs that will be scored: the LSH survivors,
// or every cross pair when LSH is disabled. In the brute-force case the
// cross product is materialized afresh on every call — the scoring path
// itself streams (u, v) index ranges and never builds this slice, so only
// callers that explicitly want the full list pay for it. The returned
// slice must not be modified when LSH is enabled.
func (lk *Linker) CandidatePairs() []lsh.Pair {
	if lk.candidates != nil {
		return lk.candidates
	}
	es := lk.storeE.Entities()
	is := lk.storeI.Entities()
	pairs := make([]lsh.Pair, 0, len(es)*len(is))
	for _, u := range es {
		for _, v := range is {
			pairs = append(pairs, lsh.Pair{U: u, V: v})
		}
	}
	return pairs
}

// NumCandidatePairs returns how many pairs the next RunEdges will score,
// without materializing them. Like RunEdges, it refreshes the LSH
// candidate set if incremental adds left it stale; not safe concurrently
// with Run.
func (lk *Linker) NumCandidatePairs() int64 {
	if lk.lshStale() {
		lk.refreshLSHCandidates()
	}
	if lk.candidates != nil {
		return int64(len(lk.candidates))
	}
	return int64(lk.storeE.NumEntities()) * int64(lk.storeI.NumEntities())
}

// Precompile eagerly builds the compiled read path of both history stores
// (see history.Store.Compile), so the first Run after construction or
// ingest pays compilation outside the scoring fan-out. RunEdges compiles
// lazily anyway; Precompile just moves the cost, e.g. onto the parallel
// shard-construction phase of a partitioned engine.
func (lk *Linker) Precompile() {
	lk.storeE.Compile()
	lk.storeI.Compile()
}

// RunEdges brings the edge store up to date with the current candidate
// set and returns the retained positive scored pairs together with the
// per-call work stats, without matching or thresholding. It is the
// building block partitioned engines use: each shard contributes its
// edges, and the caller merges them with MatchLinks and
// SelectStopThreshold. Run composes the same pieces for the single-linker
// pipeline.
//
// Scoring is incremental: while both history stores' IDF epochs stand
// still, only the pairs whose candidate membership or endpoint histories
// changed since the last call are rescored; every other edge keeps its
// cached score, which is bit-identical to what a rescore would produce
// (scores are pure functions of the two histories and the epoch-versioned
// dataset statistics — see edges.go). Any epoch movement (new bin, new
// entity, SetTotalEntitiesE change) forces a full rescore of the whole
// candidate set, restoring exactly the old per-run behavior.
//
// The returned Stats carry private LSHStats/EdgeStoreStats copies, so a
// later refresh never mutates results a caller still holds. The returned
// link slice is shared with the store's cache until the edge set next
// changes; callers must not modify it.
func (lk *Linker) RunEdges() ([]Link, Stats) {
	if lk.lshStale() {
		lk.refreshLSHCandidates()
	}
	// Refresh the compiled read path once, single-threaded, so the scoring
	// fan-out below runs on immutable views: entities untouched since the
	// last run keep their compiled state.
	lk.Precompile()
	nPairs := lk.NumCandidatePairs()

	start := time.Now()
	// Run sequence stamped onto edge lineage: a partitioned engine pins it
	// to its next published result version (SetNextRunSeq); standalone
	// linkers just count their own updates.
	seq := lk.edges.seq + 1
	if lk.nextRunSeqSet {
		seq = lk.nextRunSeq
		lk.nextRunSeqSet = false
	}
	epochE, epochI := lk.storeE.Epoch(), lk.storeI.Epoch()
	full := !lk.edges.built || lk.edges.pendFull ||
		epochE != lk.edges.epochE || epochI != lk.edges.epochI
	if full {
		var edges []matching.Edge
		if lk.candidates != nil {
			pairs := lk.candidates
			edges = lk.scoreIndexed(len(pairs), func(k int) (EntityID, EntityID) {
				return pairs[k].U, pairs[k].V
			})
		} else {
			// Brute force: enumerate the |E|×|I| cross product by index
			// instead of materializing multi-GiB pair slices.
			es := lk.storeE.Entities()
			is := lk.storeI.Entities()
			edges = lk.scoreIndexed(len(es)*len(is), func(k int) (EntityID, EntityID) {
				return es[k/len(is)], is[k%len(is)]
			})
		}
		lk.edges.resetFull(toLinks(edges), seq)
		lk.edges.lastRescored, lk.edges.lastRetained, lk.edges.lastDropped = nPairs, 0, 0
	} else {
		var pairs []lsh.Pair
		if lk.candIndex != nil {
			pairs = make([]lsh.Pair, 0, len(lk.edges.pendRescore))
			for p := range lk.edges.pendRescore {
				pairs = append(pairs, p)
			}
		} else {
			pairs = lk.bruteDeltaPairs()
		}
		dropped := lk.edges.apply(pairs, lk.scorePairs(pairs), seq)
		lk.edges.lastRescored = int64(len(pairs))
		lk.edges.lastRetained = nPairs - int64(len(pairs))
		lk.edges.lastDropped = dropped
	}
	lk.edges.built = true
	lk.edges.epochE, lk.edges.epochI = epochE, epochI
	clear(lk.dirtyE)
	clear(lk.dirtyI)
	links := lk.edges.materialize()
	lk.edges.lastUpdate = time.Since(start)

	st := lk.scorer.Stats()
	delta := similarity.Stats{
		BinComparisons:    st.BinComparisons - lk.prevStats.BinComparisons,
		RecordComparisons: st.RecordComparisons - lk.prevStats.RecordComparisons,
		AlibiBinPairs:     st.AlibiBinPairs - lk.prevStats.AlibiBinPairs,
	}
	lk.prevStats = st
	stats := Stats{
		CandidatePairs:    nPairs,
		PositiveEdges:     int64(len(links)),
		BinComparisons:    delta.BinComparisons,
		RecordComparisons: delta.RecordComparisons,
		AlibiBinPairs:     delta.AlibiBinPairs,
		EdgeStore:         lk.edges.statsSnapshot(),
	}
	if lk.lshStats != nil {
		lshCopy := *lk.lshStats
		stats.LSH = &lshCopy
	}
	return links, stats
}

// bruteDeltaPairs enumerates the pairs a brute-force (LSH-disabled) delta
// rescore must touch: dirtyE×I ∪ E×dirtyI. New entities cannot appear
// here — a new entity bumps its store's IDF epoch, which forces a full
// rescore before this path is taken — so the enumeration only ever names
// pairs whose counterpart lists are unchanged since the last run.
func (lk *Linker) bruteDeltaPairs() []lsh.Pair {
	es := lk.storeE.Entities()
	is := lk.storeI.Entities()
	pairs := make([]lsh.Pair, 0, len(lk.dirtyE)*len(is)+len(lk.dirtyI)*len(es))
	for u := range lk.dirtyE {
		for _, v := range is {
			pairs = append(pairs, lsh.Pair{U: u, V: v})
		}
	}
	for v := range lk.dirtyI {
		for _, u := range es {
			if _, dup := lk.dirtyE[u]; dup {
				continue // already enumerated against the full I side
			}
			pairs = append(pairs, lsh.Pair{U: u, V: v})
		}
	}
	return pairs
}

// scorePairs scores the given pairs across the configured workers and
// returns the per-pair scores (including non-positive ones, which the
// edge store needs to drop stale edges). Each worker owns a contiguous
// index range of the output, so the result is deterministic.
func (lk *Linker) scorePairs(pairs []lsh.Pair) []float64 {
	out := make([]float64, len(pairs))
	workers := lk.workerCount(len(pairs))
	runChunks(workers, len(pairs), func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			out[k] = lk.scorer.Score(pairs[k].U, pairs[k].V)
		}
	})
	return out
}

// workerCount clamps the configured scoring parallelism to the work size.
func (lk *Linker) workerCount(total int) int {
	workers := lk.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > total {
		workers = total
	}
	return workers
}

// runChunks partitions [0, total) into contiguous per-worker ranges and
// calls fn(w, lo, hi) concurrently, returning after all workers finish.
// Both scoring paths (full scoreIndexed and delta scorePairs) run on it,
// so worker policy cannot drift between them.
func runChunks(workers, total int, fn func(w, lo, hi int)) {
	if workers <= 0 {
		return
	}
	var wg sync.WaitGroup
	chunk := (total + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, total)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// EdgeStoreStats returns a snapshot of the incremental edge store (zero
// before the first RunEdges). Not safe concurrently with Run or Add.
func (lk *Linker) EdgeStoreStats() *EdgeStoreStats {
	return lk.edges.statsSnapshot()
}

// Run executes scoring, matching and thresholding and returns the result.
// It can be called repeatedly, interleaved with AddE/AddI, to re-link a
// dynamic feed; stats report per-run work.
//
// With the greedy matcher (the default), matching and thresholding go
// through an incremental publish tail fed by the edge store's exact
// per-run delta: the maintained sorted order, greedy matching and
// threshold fit are updated in O(delta log n) and are bit-identical to
// the from-scratch MatchLinks/SelectStopThreshold/FilterLinks path (see
// tail.go). Hungarian runs keep the from-scratch path.
func (lk *Linker) Run() Result {
	start := time.Now()
	edges, stats := lk.RunEdges()
	var matched, links []Link
	var thr StopThreshold
	if lk.cfg.Matcher == MatcherHungarian {
		matched = MatchLinks(lk.cfg.Matcher, edges)
		thr = SelectStopThreshold(lk.cfg.Threshold, LinkScores(matched))
		links = FilterLinks(matched, thr.Threshold)
	} else {
		if lk.tail == nil {
			lk.tail = NewPublishTail(lk.cfg.Threshold)
		}
		d := lk.edges.delta()
		if d.Seq != lk.tailSynced+1 {
			// The tail missed an update (RunEdges driven directly between
			// Runs); its maintained order is stale.
			d.Full = true
		}
		matched, links, thr = lk.tail.Publish([]EdgeDelta{d}, func() []Link { return edges })
		lk.tailSynced = d.Seq
	}
	return Result{
		Links:           links,
		Matched:         matched,
		Threshold:       thr.Threshold,
		ThresholdMethod: thr.Method,
		SpatialLevel:    lk.cfg.SpatialLevel,
		Stats:           stats,
		Elapsed:         time.Since(start),
	}
}

// PublishTailStats returns the incremental publish tail snapshot, or nil
// before the first greedy Run (Hungarian linkers never build a tail).
// Not safe concurrently with Run or Add.
func (lk *Linker) PublishTailStats() *PublishTailStats {
	if lk.tail == nil {
		return nil
	}
	st := lk.tail.Stats()
	return &st
}

// LastEdgeDelta returns the edge-level delta of the most recent RunEdges,
// for feeding an externally owned PublishTail (partitioned engines merge
// one tail across shards). The slices alias the store's reused buffers —
// valid only until the next run.
func (lk *Linker) LastEdgeDelta() EdgeDelta { return lk.edges.delta() }

// StopThreshold is the outcome of a stop-threshold detection.
type StopThreshold struct {
	// Threshold is the selected stop score; links strictly above it are
	// kept.
	Threshold float64
	// Method reports which detector produced the threshold.
	Method string
}

// matchEdgeBuf pools the Link→matching.Edge conversion buffer of
// MatchLinks, so the only per-call allocation left on the matching path
// is the returned link slice (which callers retain).
var matchEdgeBuf = sync.Pool{New: func() any { return new([]matching.Edge) }}

// MatchLinks runs the configured bipartite matcher over positive scored
// edges and returns the maximum-sum matching, sorted by descending score.
func MatchLinks(matcher MatcherKind, edges []Link) []Link {
	bp := matchEdgeBuf.Get().(*[]matching.Edge)
	in := (*bp)[:0]
	for _, e := range edges {
		in = append(in, matching.Edge{U: e.U, V: e.V, W: e.Score})
	}
	var matched []matching.Edge
	switch matcher {
	case MatcherHungarian:
		matched = matching.Hungarian(in)
	default:
		// The buffer is scratch, so the greedy matcher may sort it in
		// place instead of taking a defensive copy.
		matched = matching.GreedyInPlace(in)
	}
	out := toLinks(matched)
	*bp = in
	matchEdgeBuf.Put(bp)
	return out
}

// selectThresholdResult runs the configured stop-threshold detector and
// returns the full decision (shared by SelectStopThreshold and the
// publish tail's fit cache).
func selectThresholdResult(method ThresholdMethod, scores []float64) threshold.Result {
	switch method {
	case ThresholdNone:
		// Keep every matched edge: edges only exist for positive scores,
		// so any negative threshold is a no-op filter.
		return threshold.Result{Threshold: -1, Method: "none"}
	case ThresholdOtsu:
		return threshold.SelectThresholdOtsu(scores)
	case ThresholdKMeans:
		return threshold.SelectThresholdKMeans(scores)
	default:
		return threshold.SelectThreshold(scores)
	}
}

// SelectStopThreshold applies the given stop-threshold detector to the
// matched scores (Sec. 3.2 of the paper).
func SelectStopThreshold(method ThresholdMethod, scores []float64) StopThreshold {
	thr := selectThresholdResult(method, scores)
	return StopThreshold{Threshold: thr.Threshold, Method: string(thr.Method)}
}

// LinkScores extracts the score column of a link list.
func LinkScores(links []Link) []float64 {
	out := make([]float64, len(links))
	for i, l := range links {
		out[i] = l.Score
	}
	return out
}

// FilterLinks returns the links scoring strictly above thr, preserving
// order.
func FilterLinks(links []Link, thr float64) []Link {
	var out []Link
	for _, l := range links {
		if l.Score > thr {
			out = append(out, l)
		}
	}
	return out
}

// scoreIndexed fans the candidate pairs pairAt(0..total-1) across workers
// and keeps positive edges. Each worker owns a contiguous index range and
// writes into its own result slot; slots are concatenated in worker order
// after the barrier, so the merge is deterministic and lock-free.
func (lk *Linker) scoreIndexed(total int, pairAt func(int) (EntityID, EntityID)) []matching.Edge {
	workers := lk.workerCount(total)
	if workers == 0 {
		return nil
	}
	results := make([][]matching.Edge, workers)
	runChunks(workers, total, func(w, lo, hi int) {
		local := make([]matching.Edge, 0, (hi-lo)/4)
		for k := lo; k < hi; k++ {
			u, v := pairAt(k)
			if s := lk.scorer.Score(u, v); s > 0 {
				local = append(local, matching.Edge{U: u, V: v, W: s})
			}
		}
		results[w] = local
	})
	var edges []matching.Edge
	for _, part := range results {
		edges = append(edges, part...)
	}
	slices.SortFunc(edges, func(a, b matching.Edge) int {
		if a.U != b.U {
			if a.U < b.U {
				return -1
			}
			return 1
		}
		if a.V < b.V {
			return -1
		}
		if a.V > b.V {
			return 1
		}
		return 0
	})
	return edges
}

func toLinks(edges []matching.Edge) []Link {
	out := make([]Link, len(edges))
	for i, e := range edges {
		out[i] = Link{U: e.U, V: e.V, Score: e.W}
	}
	return out
}

// LinkDatasets runs the full pipeline with one call.
func LinkDatasets(dsE, dsI Dataset, cfg Config) (Result, error) {
	lk, err := NewLinker(dsE, dsI, cfg)
	if err != nil {
		return Result{}, err
	}
	return lk.Run(), nil
}
