package slim

import (
	"math"
	"slices"
	"testing"
	"time"
)

// tailBurstFixture builds the standard 64-taxi relink fixture and a
// publish tail warmed with its scored edge set, plus a step function that
// applies one ~1% weight-only dirty burst and rescores it through the
// real edge store, returning the store's edge-level delta — exactly what
// Linker.Run hands the tail in the streaming steady state (dirty pairs
// rescore to identical scores, so the delta is empty and the tail's work
// is pure reuse).
func tailBurstFixture(tb testing.TB) (tail *PublishTail, step func(k int) ([]Link, EdgeDelta)) {
	tb.Helper()
	lk, byEntity := relinkFixture(tb, 64)
	tail = NewPublishTail(ThresholdGMM)
	edges, _ := lk.RunEdges()
	tail.Publish([]EdgeDelta{{Full: true}}, func() []Link { return edges })
	step = func(k int) ([]Link, EdgeDelta) {
		weightOnlyBurst(lk, byEntity, k)
		edges, _ := lk.RunEdges()
		d := lk.edges.delta()
		if d.Full {
			tb.Fatal("weight-only burst forced a full rescore; the fixture must produce delta updates")
		}
		return edges, d
	}
	return tail, step
}

// BenchmarkPublishTailIncremental measures the maintained publish tail on
// the standard 1% dirty burst: fold the edge store's delta into the
// sorted order, reuse the matched prefix above the first change, and
// reuse the cached threshold fit when the matched score list is
// bit-identical.
func BenchmarkPublishTailIncremental(b *testing.B) {
	tail, step := tailBurstFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		edges, d := step(i)
		b.StartTimer()
		if _, _, _ = tail.Publish([]EdgeDelta{d}, func() []Link { return edges }); tail.Stats().LastFull {
			b.Fatal("delta publish fell back to a full rebuild")
		}
	}
}

// BenchmarkPublishTailFull measures the path the maintained tail
// replaced: the identical burst published from scratch — every edge
// re-sorted, the matching re-walked from the top, the threshold refit —
// which is what every run paid before the tail existed.
func BenchmarkPublishTailFull(b *testing.B) {
	_, step := tailBurstFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		edges, _ := step(i)
		scratch := NewPublishTail(ThresholdGMM)
		b.StartTimer()
		scratch.Publish([]EdgeDelta{{Full: true}}, func() []Link { return edges })
	}
}

// TestPublishTailIncrementalSpeedupOverFull is the publish-tail
// acceptance gate: on the standard 64-taxi workload, publishing a 1%
// weight-only dirty burst through the delta-maintained tail must be at
// least 5x faster than the from-scratch merge+match+threshold it
// replaced (in practice the gap is orders of magnitude — the steady-state
// delta is empty, so the tail reuses the whole matched prefix and the
// cached fit; 5x leaves a wide margin for noisy CI machines). Every rep's
// output is checked bit-identical against a fresh tail built from scratch
// over the same edges, so the gate cannot pass by skipping work.
func TestPublishTailIncrementalSpeedupOverFull(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test; skipped in -short")
	}
	tail, step := tailBurstFixture(t)
	const reps = 7
	var incr, full []time.Duration
	for k := 0; k < reps; k++ {
		edges, d := step(k)
		all := func() []Link { return edges }
		start := time.Now()
		m, l, thr := tail.Publish([]EdgeDelta{d}, all)
		incr = append(incr, time.Since(start))
		if tail.Stats().LastFull {
			t.Fatalf("rep %d: delta publish fell back to a full rebuild", k)
		}

		scratch := NewPublishTail(ThresholdGMM)
		start = time.Now()
		fm, fl, fthr := scratch.Publish([]EdgeDelta{{Full: true}}, all)
		full = append(full, time.Since(start))

		if !sameLinksBits(m, fm) || !sameLinksBits(l, fl) ||
			math.Float64bits(thr.Threshold) != math.Float64bits(fthr.Threshold) {
			t.Fatalf("rep %d: incremental publish diverged from from-scratch", k)
		}
	}
	med := func(ds []time.Duration) time.Duration {
		s := slices.Clone(ds)
		slices.Sort(s)
		return s[len(s)/2]
	}
	mi, mf := med(incr), med(full)
	speedup := float64(mf) / float64(mi)
	t.Logf("median incremental publish %v, median full publish %v: %.1fx", mi, mf, speedup)
	if speedup < 5 {
		t.Fatalf("incremental publish only %.1fx faster than full (median %v vs %v); gate requires >= 5x",
			speedup, mi, mf)
	}
}
