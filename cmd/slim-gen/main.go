// Command slim-gen generates the synthetic mobility workloads of the SLIM
// reproduction, either as one ground-truth dataset or as a sampled linkage
// problem (two anonymized sides plus a truth file), in the canonical CSV
// layout (entity,lat,lng,unix).
//
// Generate a ground dataset:
//
//	slim-gen -kind cab -taxis 530 -days 24 -out cab.csv
//	slim-gen -kind sm -users 30000 -days 26 -out sm.csv
//
// Generate a linkage problem (E.csv, I.csv, truth.csv in -dir):
//
//	slim-gen -kind cab -sample -ratio 0.5 -inclusion 0.5 -dir ./workload
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"slim"
)

func main() {
	var (
		kind     = flag.String("kind", "cab", "dataset kind: cab | sm")
		out      = flag.String("out", "", "output CSV path (default stdout)")
		seed     = flag.Int64("seed", 1, "generator seed")
		taxis    = flag.Int("taxis", 60, "cab: number of taxis")
		interval = flag.Float64("interval", 180, "cab: mean seconds between records")
		users    = flag.Int("users", 2000, "sm: number of users")
		avgRecs  = flag.Float64("avg-records", 24, "sm: mean check-ins per user")
		days     = flag.Int("days", 4, "trace length in days")

		sample    = flag.Bool("sample", false, "emit a sampled linkage problem instead of one dataset")
		dir       = flag.String("dir", ".", "sample: output directory for E.csv, I.csv, truth.csv")
		ratio     = flag.Float64("ratio", 0.5, "sample: entity intersection ratio")
		inclusion = flag.Float64("inclusion", 0.5, "sample: record inclusion probability (both sides)")
		perSide   = flag.Int("per-side", 0, "sample: cap entities per side (0 = max)")
	)
	flag.Parse()

	var ground slim.Dataset
	switch *kind {
	case "cab":
		ground = slim.GenerateCab(slim.CabOptions{
			NumTaxis:              *taxis,
			Days:                  *days,
			MeanRecordIntervalSec: *interval,
			Seed:                  *seed,
		})
	case "sm":
		ground = slim.GenerateSM(slim.SMOptions{
			NumUsers:   *users,
			Days:       *days,
			AvgRecords: *avgRecs,
			Seed:       *seed,
		})
	default:
		fmt.Fprintf(os.Stderr, "slim-gen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	if !*sample {
		if err := writeDataset(*out, &ground); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "slim-gen: %d records, %d entities\n",
			ground.Len(), len(ground.Entities()))
		return
	}

	w := slim.SampleWorkload(&ground, slim.SampleOptions{
		IntersectionRatio: *ratio,
		InclusionProbE:    *inclusion,
		InclusionProbI:    *inclusion,
		SizePerSide:       *perSide,
		Seed:              *seed + 1,
	})
	if err := writeDataset(filepath.Join(*dir, "E.csv"), &w.E); err != nil {
		fatal(err)
	}
	if err := writeDataset(filepath.Join(*dir, "I.csv"), &w.I); err != nil {
		fatal(err)
	}
	tf, err := os.Create(filepath.Join(*dir, "truth.csv"))
	if err != nil {
		fatal(err)
	}
	defer tf.Close()
	fmt.Fprintln(tf, "e,i")
	for e, i := range w.Truth {
		fmt.Fprintf(tf, "%s,%s\n", e, i)
	}
	fmt.Fprintf(os.Stderr, "slim-gen: E=%d records/%d entities, I=%d records/%d entities, %d true pairs\n",
		w.E.Len(), len(w.E.Entities()), w.I.Len(), len(w.I.Entities()), len(w.Truth))
}

func writeDataset(path string, d *slim.Dataset) error {
	if path == "" {
		return slim.WriteDatasetCSV(os.Stdout, d)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return slim.WriteDatasetCSV(f, d)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slim-gen:", err)
	os.Exit(1)
}
