// Command slimd serves SLIM linkage as a long-running sharded HTTP
// service: records stream in over JSON, a debounced background scheduler
// re-links the dirty shards, and the current links are queryable at any
// time. See DESIGN.md for the API and curl examples.
//
// Usage:
//
//	slimd [-addr :8080] [-shards 4] [-debounce 2s] [-e seed.csv -i seed.csv]
//	      [-data-dir ./data] [-fsync-interval 2ms] [-snapshot-every 8]
//	      [-ingest-queue-depth 262144] [-ingest-shed-after 10s]
//	      [-max-ingest-body 16777216] [-debug-addr localhost:6060] [flags]
//
// The service may start empty (stream everything over the API) or seeded
// with two CSV datasets (entity,lat,lng,unix), which are linked once at
// boot. With -data-dir, every acknowledged ingest batch is durably logged
// to a write-ahead log before it is accepted, the engine state is
// periodically compacted into snapshots, and a restart (even after
// kill -9) recovers the full state and replays the WAL tail before
// /readyz reports ready. Linkage flags mirror slim-link: -window, -level,
// -max-speed, -b, -min-records, -workers, -matcher, -threshold, and the
// -lsh family.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the debug mux
	"os"
	"os/signal"
	"syscall"
	"time"

	"slim"
	"slim/internal/engine"
	"slim/internal/ingest"
	"slim/internal/server"
	"slim/internal/storage"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		debugAddr = flag.String("debug-addr", "", "optional debug listen address serving net/http/pprof and expvar (e.g. localhost:6060)")
		shards    = flag.Int("shards", 4, "number of linker shards")
		debounce  = flag.Duration("debounce", 2*time.Second, "quiet period after ingest before a background relink")
		ePath     = flag.String("e", "", "optional seed CSV for the first dataset")
		iPath     = flag.String("i", "", "optional seed CSV for the second dataset")

		queueDepth   = flag.Int("ingest-queue-depth", ingest.DefaultQueueDepth, "shed ingest once this many records are queued (inflight + pending relink)")
		shedAfter    = flag.Duration("ingest-shed-after", ingest.DefaultShedAfter, "shed ingest once the oldest queued record has waited this long (<0 = never)")
		maxBody      = flag.Int64("max-ingest-body", server.MaxIngestBody, "maximum ingest request body in bytes (JSON and binary); larger bodies get 413")

		dataDir       = flag.String("data-dir", "", "durable data directory (WAL + snapshots); empty = in-memory only")
		fsyncInterval = flag.Duration("fsync-interval", storage.DefaultFsyncInterval, "WAL group-commit window (0 = fsync every append, <0 = never fsync)")
		snapshotEvery = flag.Int("snapshot-every", storage.DefaultSnapshotEveryRuns, "checkpoint after this many relinks (<0 = only on WAL growth/shutdown)")
		snapshotBytes = flag.Int64("snapshot-bytes", storage.DefaultSnapshotBytes, "checkpoint once this many WAL bytes were appended (<0 = never on bytes)")

		window       = flag.Float64("window", 15, "temporal window width in minutes")
		level        = flag.Int("level", 12, "spatial grid level (0 = auto-tune over the seed datasets)")
		maxSpeed     = flag.Float64("max-speed", 2, "maximum entity speed in km/min (runaway bound)")
		b            = flag.Float64("b", 0.5, "history-length normalization strength [0,1]")
		minRecords   = flag.Int("min-records", 5, "drop seed entities with <= this many records")
		workers      = flag.Int("workers", 0, "scoring goroutines per shard (0 = GOMAXPROCS)")
		matcher      = flag.String("matcher", "greedy", "matching algorithm: greedy | hungarian")
		thresholdM   = flag.String("threshold", "gmm", "stop threshold: gmm | otsu | 2means | none")
		useLSH       = flag.Bool("lsh", false, "enable the LSH candidate filter")
		lshThreshold = flag.Float64("lsh-threshold", 0.6, "LSH signature similarity threshold t")
		lshStep      = flag.Int("lsh-step", 48, "LSH query window size in temporal windows")
		lshLevel     = flag.Int("lsh-level", 16, "LSH dominating-cell spatial level")
		lshBuckets   = flag.Int("lsh-buckets", 4096, "LSH buckets per band")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "slimd: ", log.LstdFlags)

	cfg := slim.Config{
		WindowMinutes:    *window,
		SpatialLevel:     *level,
		MaxSpeedKmPerMin: *maxSpeed,
		B:                *b,
		MinRecords:       *minRecords,
		Workers:          *workers,
		Matcher:          slim.MatcherKind(*matcher),
		Threshold:        slim.ThresholdMethod(*thresholdM),
	}
	if *useLSH {
		cfg.LSH = &slim.LSHConfig{
			Threshold:    *lshThreshold,
			StepWindows:  *lshStep,
			SpatialLevel: *lshLevel,
			NumBuckets:   *lshBuckets,
		}
	}

	dsE, err := readSeed(*ePath, "E")
	if err != nil {
		logger.Fatal(err)
	}
	dsI, err := readSeed(*iPath, "I")
	if err != nil {
		logger.Fatal(err)
	}

	engCfg := engine.Config{
		Shards:   *shards,
		Link:     cfg,
		Debounce: *debounce,
	}
	var eng *engine.Engine
	var store *storage.Store
	if *dataDir != "" {
		var info storage.RecoverInfo
		eng, store, info, err = storage.Recover(*dataDir, dsE, dsI, engCfg, storage.Options{
			FsyncInterval:     *fsyncInterval,
			SnapshotEveryRuns: *snapshotEvery,
			SnapshotBytes:     *snapshotBytes,
			Logger:            logger,
		})
		if err != nil {
			logger.Fatal(err)
		}
		if info.Recovered {
			logger.Printf("recovered %s: snapshot through seq %d, %d batches (%d records) replayed from WAL; %d seed + %d streamed records",
				*dataDir, info.SnapshotSeq, info.ReplayedBatches, info.ReplayedRecords, info.SeedRecords, info.StreamedRecords)
			if *ePath != "" || *iPath != "" {
				logger.Printf("note: -e/-i seed flags ignored; %s already holds persisted seeds", *dataDir)
			}
		} else {
			logger.Printf("initialized data directory %s", *dataDir)
		}
	} else {
		eng, err = engine.New(dsE, dsI, engCfg)
		if err != nil {
			logger.Fatal(err)
		}
	}
	eng.Start()
	// One deferred shutdown so the order is explicit: the engine first
	// (waits out any in-flight relink), then the store, whose final
	// checkpoint captures the last published result.
	defer func() {
		eng.Close()
		if store != nil {
			if err := store.Close(); err != nil {
				logger.Printf("closing storage: %v", err)
			}
		}
	}()

	// Serve the recovered result when there is one (a clean shutdown's
	// checkpoint; the background scheduler refreshes it shortly after
	// boot). Otherwise link once at boot when there is anything to link:
	// seed datasets, or recovered state whose replayed WAL tail
	// invalidated the snapshot result.
	if res, _, ok := eng.Result(); ok {
		logger.Printf("serving recovered linkage: %d links at threshold %.4g", len(res.Links), res.Threshold)
	} else if st := eng.Stats(); st.EntitiesE+st.EntitiesI > 0 || eng.Pending() > 0 {
		res := eng.Run()
		logger.Printf("boot linkage: %d links (of %d matched) at threshold %.4g in %v",
			len(res.Links), len(res.Matched), res.Threshold, res.Elapsed)
	}

	plane := ingest.NewPlane(eng, ingest.Config{
		QueueDepth: *queueDepth,
		ShedAfter:  *shedAfter,
	})
	srv := server.New(eng, logger,
		server.WithIngestPlane(plane),
		server.WithMaxIngestBody(*maxBody),
	)
	if store != nil {
		srv.AttachStore(store)
	}
	srv.SetReady()

	// Optional debug endpoint: pprof profiles plus expvar counters
	// (engine, candidate index, and — when durable — storage), so a live
	// service's candidate-index behavior is observable without touching
	// the serving address. Both packages register on the default mux.
	if *debugAddr != "" {
		expvar.Publish("slim_engine", expvar.Func(func() any { return eng.Stats() }))
		// slim_relink is the incremental-savings odometer: cumulative
		// pair-level delta counters (retained = scoring work avoided) plus
		// the short-circuited fully-clean relinks, kept as a small flat map
		// so dashboards can scrape it without digging through slim_engine.
		expvar.Publish("slim_relink", expvar.Func(func() any {
			st := eng.Stats()
			return map[string]uint64{
				"pairs_rescored_total":  st.EdgeRescoredTotal,
				"pairs_retained_total":  st.EdgeRetainedTotal,
				"pairs_dropped_total":   st.EdgeDroppedTotal,
				"runs_short_circuited":  st.RunsShortCircuited,
				"runs_total":            st.Runs,
				"dirty_shards_last_run": uint64(st.DirtyShardsLastRun),
			}
		}))
		// slim_ingest is the backpressure odometer: queue occupancy and
		// accept/shed counters for both ingest planes, flat for scraping.
		expvar.Publish("slim_ingest", expvar.Func(func() any {
			ist := plane.Stats()
			return map[string]any{
				"queue_depth":      ist.QueueDepth,
				"shed_after_ms":    float64(ist.ShedAfter.Microseconds()) / 1000,
				"inflight_records": ist.InflightRecords,
				"pending_records":  ist.PendingRecords,
				"oldest_wait_ms":   float64(ist.OldestWait.Microseconds()) / 1000,
				"accepted_batches": ist.AcceptedBatches,
				"accepted_records": ist.AcceptedRecords,
				"shed_requests":    ist.ShedRequests,
				"shed_records":     ist.ShedRecords,
				"shed_queue_depth": ist.ShedQueueDepth,
				"shed_latency":     ist.ShedLatency,
			}
		}))
		if store != nil {
			expvar.Publish("slim_storage", expvar.Func(func() any { return store.Stats() }))
		}
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("debug server listening on %s (/debug/pprof/, /debug/vars)", dln.Addr())
		go func() {
			dbg := &http.Server{Handler: http.DefaultServeMux, ReadHeaderTimeout: 10 * time.Second}
			if err := dbg.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("debug server: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	logger.Printf("listening on %s (%d shards, spatial level %d, debounce %v)",
		ln.Addr(), eng.NumShards(), eng.SpatialLevel(), *debounce)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Fatal(err)
		}
	case <-ctx.Done():
		logger.Print("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
	}
}

// readSeed loads an optional seed dataset; an empty path yields an empty
// dataset of the given name.
func readSeed(path, name string) (slim.Dataset, error) {
	if path == "" {
		return slim.Dataset{Name: name}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return slim.Dataset{}, err
	}
	defer f.Close()
	ds, err := slim.ReadDatasetCSV(f, name)
	if err != nil {
		return slim.Dataset{}, fmt.Errorf("reading %s: %w", path, err)
	}
	return ds, nil
}
