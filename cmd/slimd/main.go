// Command slimd serves SLIM linkage as a long-running sharded HTTP
// service: records stream in over JSON, a debounced background scheduler
// re-links the dirty shards, and the current links are queryable at any
// time. See DESIGN.md for the API and curl examples.
//
// Usage:
//
//	slimd [-addr :8080] [-shards 4] [-debounce 2s] [-e seed.csv -i seed.csv]
//	      [-data-dir ./data] [-fsync-interval 2ms] [-snapshot-every 8]
//	      [-ingest-queue-depth 262144] [-ingest-shed-after 10s]
//	      [-max-ingest-body 16777216] [-debug-addr localhost:6060]
//	      [-fault site:action[:trigger],...] [flags]
//
// The service may start empty (stream everything over the API) or seeded
// with two CSV datasets (entity,lat,lng,unix), which are linked once at
// boot. With -data-dir, every acknowledged ingest batch is durably logged
// to a write-ahead log before it is accepted, the engine state is
// periodically compacted into snapshots, and a restart (even after
// kill -9) recovers the full state and replays the WAL tail before
// /readyz reports ready. Linkage flags mirror slim-link: -window, -level,
// -max-speed, -b, -min-records, -workers, -matcher, -threshold, and the
// -lsh family.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the debug mux
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"slim"
	"slim/internal/engine"
	"slim/internal/fault"
	"slim/internal/ingest"
	"slim/internal/obs"
	"slim/internal/server"
	"slim/internal/storage"
)

// fatal logs at error level and exits — the slog equivalent of
// log.Fatal, kept explicit so every exit path still emits one line.
func fatal(logger *slog.Logger, msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		debugAddr  = flag.String("debug-addr", "", "optional debug listen address serving net/http/pprof, expvar, and /metrics (e.g. localhost:6060)")
		logFormat  = flag.String("log-format", "text", "log output format: text | json")
		shards     = flag.Int("shards", 4, "number of linker shards")
		debounce   = flag.Duration("debounce", 2*time.Second, "quiet period after ingest before a background relink")
		runJournal = flag.Int("run-journal", engine.DefaultRunJournal, "relink flight-recorder size: how many recent runs GET /v1/runs retains")
		ePath      = flag.String("e", "", "optional seed CSV for the first dataset")
		iPath      = flag.String("i", "", "optional seed CSV for the second dataset")

		queueDepth = flag.Int("ingest-queue-depth", ingest.DefaultQueueDepth, "shed ingest once this many records are queued (inflight + pending relink)")
		shedAfter  = flag.Duration("ingest-shed-after", ingest.DefaultShedAfter, "shed ingest once the oldest queued record has waited this long (<0 = never)")
		maxBody    = flag.Int64("max-ingest-body", server.MaxIngestBody, "maximum ingest request body in bytes (JSON and binary); larger bodies get 413")

		faultSpecs = flag.String("fault", "", "comma-separated fault-injection specs, site:action[:trigger]... (e.g. fs.sync:error:after=20, engine.rescore:panic:count=1) — chaos testing only; the process must survive every armed fault")

		dataDir       = flag.String("data-dir", "", "durable data directory (WAL + snapshots); empty = in-memory only")
		fsyncInterval = flag.Duration("fsync-interval", storage.DefaultFsyncInterval, "WAL group-commit window (0 = fsync every append, <0 = never fsync)")
		snapshotEvery = flag.Int("snapshot-every", storage.DefaultSnapshotEveryRuns, "checkpoint after this many relinks (<0 = only on WAL growth/shutdown)")
		snapshotBytes = flag.Int64("snapshot-bytes", storage.DefaultSnapshotBytes, "checkpoint once this many WAL bytes were appended (<0 = never on bytes)")

		window       = flag.Float64("window", 15, "temporal window width in minutes")
		level        = flag.Int("level", 12, "spatial grid level (0 = auto-tune over the seed datasets)")
		maxSpeed     = flag.Float64("max-speed", 2, "maximum entity speed in km/min (runaway bound)")
		b            = flag.Float64("b", 0.5, "history-length normalization strength [0,1]")
		minRecords   = flag.Int("min-records", 5, "drop seed entities with <= this many records")
		workers      = flag.Int("workers", 0, "scoring goroutines per shard (0 = GOMAXPROCS)")
		matcher      = flag.String("matcher", "greedy", "matching algorithm: greedy | hungarian")
		thresholdM   = flag.String("threshold", "gmm", "stop threshold: gmm | otsu | 2means | none")
		useLSH       = flag.Bool("lsh", false, "enable the LSH candidate filter")
		lshThreshold = flag.Float64("lsh-threshold", 0.6, "LSH signature similarity threshold t")
		lshStep      = flag.Int("lsh-step", 48, "LSH query window size in temporal windows")
		lshLevel     = flag.Int("lsh-level", 16, "LSH dominating-cell spatial level")
		lshBuckets   = flag.Int("lsh-buckets", 4096, "LSH buckets per band")
	)
	flag.Parse()
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "slimd: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	// One registry for the whole process: engine, storage, ingest plane,
	// and HTTP server all record into it, and both the serving address
	// (GET /metrics) and the debug address expose it.
	registry := obs.NewRegistry()
	obs.RegisterRuntime(registry)

	cfg := slim.Config{
		WindowMinutes:    *window,
		SpatialLevel:     *level,
		MaxSpeedKmPerMin: *maxSpeed,
		B:                *b,
		MinRecords:       *minRecords,
		Workers:          *workers,
		Matcher:          slim.MatcherKind(*matcher),
		Threshold:        slim.ThresholdMethod(*thresholdM),
	}
	if *useLSH {
		cfg.LSH = &slim.LSHConfig{
			Threshold:    *lshThreshold,
			StepWindows:  *lshStep,
			SpatialLevel: *lshLevel,
			NumBuckets:   *lshBuckets,
		}
	}

	dsE, err := readSeed(*ePath, "E")
	if err != nil {
		fatal(logger, "loading seed", "error", err)
	}
	dsI, err := readSeed(*iPath, "I")
	if err != nil {
		fatal(logger, "loading seed", "error", err)
	}

	// Fault injection (-fault) arms the chaos sites across the storage
	// and relink layers. A nil injector is a never-firing no-op, so the
	// production path carries no flag checks past this point.
	var inj *fault.Injector
	if *faultSpecs != "" {
		inj = fault.New()
		for _, spec := range strings.Split(*faultSpecs, ",") {
			if spec = strings.TrimSpace(spec); spec == "" {
				continue
			}
			if err := inj.ArmSpec(spec); err != nil {
				fatal(logger, "bad -fault spec", "spec", spec, "error", err)
			}
			logger.Warn("fault armed", "spec", spec)
		}
	}

	engCfg := engine.Config{
		Shards:     *shards,
		Link:       cfg,
		Debounce:   *debounce,
		Registry:   registry,
		RunJournal: *runJournal,
		Fault:      inj,
		Logger:     logger,
	}
	var eng *engine.Engine
	var store *storage.Store
	if *dataDir != "" {
		// OnRelog re-buffers batches the degraded-mode quarantine re-logged
		// into the fresh segment: they are durable again (a recovery would
		// replay them), so the live engine must hold them too. The engine
		// does not exist yet at Options time, so the hook goes through an
		// atomic set after Recover returns; a degraded reopen cannot
		// complete before the store has even finished opening.
		var engRef atomic.Pointer[engine.Engine]
		fs := storage.OSFS
		if inj != nil {
			fs = storage.NewFaultFS(storage.OSFS, inj)
		}
		var info storage.RecoverInfo
		eng, store, info, err = storage.Recover(*dataDir, dsE, dsI, engCfg, storage.Options{
			FsyncInterval:     *fsyncInterval,
			SnapshotEveryRuns: *snapshotEvery,
			SnapshotBytes:     *snapshotBytes,
			Logger:            logger,
			Registry:          registry,
			FS:                fs,
			OnRelog: func(tag byte, recs []slim.Record) {
				e := engRef.Load()
				if e == nil {
					return
				}
				if tag == storage.TagE {
					e.BufferE(recs...)
				} else {
					e.BufferI(recs...)
				}
			},
		})
		if eng != nil {
			engRef.Store(eng)
		}
		if err != nil {
			fatal(logger, "recovering data directory", "dir", *dataDir, "error", err)
		}
		if info.Recovered {
			logger.Info("recovered data directory",
				"dir", *dataDir,
				"snapshot_seq", info.SnapshotSeq,
				"replayed_batches", info.ReplayedBatches,
				"replayed_records", info.ReplayedRecords,
				"seed_records", info.SeedRecords,
				"streamed_records", info.StreamedRecords)
			if *ePath != "" || *iPath != "" {
				logger.Info("seed flags ignored; data directory already holds persisted seeds", "dir", *dataDir)
			}
		} else {
			logger.Info("initialized data directory", "dir", *dataDir)
		}
	} else {
		eng, err = engine.New(dsE, dsI, engCfg)
		if err != nil {
			fatal(logger, "building engine", "error", err)
		}
	}
	eng.Start()
	plane := ingest.NewPlane(eng, ingest.Config{
		QueueDepth: *queueDepth,
		ShedAfter:  *shedAfter,
		Registry:   registry,
	})
	// One deferred shutdown so the order is explicit: drain the ingest
	// plane first (no acknowledgement may still be racing the close),
	// then the engine (waits out any in-flight relink), then the store,
	// whose final checkpoint captures the last published result.
	defer func() {
		drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := plane.Drain(drainCtx); err != nil {
			logger.Warn("ingest plane drain timed out; closing anyway", "error", err)
		}
		cancel()
		eng.Close()
		if store != nil {
			if err := store.Close(); err != nil {
				logger.Error("closing storage", "error", err)
			}
		}
	}()

	// Serve the recovered result when there is one (a clean shutdown's
	// checkpoint; the background scheduler refreshes it shortly after
	// boot). Otherwise link once at boot when there is anything to link:
	// seed datasets, or recovered state whose replayed WAL tail
	// invalidated the snapshot result.
	if res, _, ok := eng.Result(); ok {
		logger.Info("serving recovered linkage", "links", len(res.Links), "threshold", res.Threshold)
	} else if st := eng.Stats(); st.EntitiesE+st.EntitiesI > 0 || eng.Pending() > 0 {
		res := eng.Run()
		logger.Info("boot linkage",
			"links", len(res.Links),
			"matched", len(res.Matched),
			"threshold", res.Threshold,
			"elapsed", res.Elapsed)
	}

	srv := server.New(eng, logger,
		server.WithIngestPlane(plane),
		server.WithMaxIngestBody(*maxBody),
		server.WithRegistry(registry),
	)
	if store != nil {
		srv.AttachStore(store)
	}
	srv.SetReady()

	// Optional debug endpoint: pprof profiles plus expvar counters
	// (engine, candidate index, and — when durable — storage), so a live
	// service's candidate-index behavior is observable without touching
	// the serving address. Both packages register on the default mux.
	if *debugAddr != "" {
		expvar.Publish("slim_engine", expvar.Func(func() any { return eng.Stats() }))
		// slim_relink is the incremental-savings odometer: cumulative
		// pair-level delta counters (retained = scoring work avoided) plus
		// the short-circuited fully-clean relinks, kept as a small flat map
		// so dashboards can scrape it without digging through slim_engine.
		expvar.Publish("slim_relink", expvar.Func(func() any {
			st := eng.Stats()
			return map[string]uint64{
				"pairs_rescored_total":  st.EdgeRescoredTotal,
				"pairs_retained_total":  st.EdgeRetainedTotal,
				"pairs_dropped_total":   st.EdgeDroppedTotal,
				"runs_short_circuited":  st.RunsShortCircuited,
				"runs_total":            st.Runs,
				"dirty_shards_last_run": uint64(st.DirtyShardsLastRun),
			}
		}))
		// slim_ingest is the backpressure odometer: queue occupancy and
		// accept/shed counters for both ingest planes, flat for scraping.
		expvar.Publish("slim_ingest", expvar.Func(func() any {
			ist := plane.Stats()
			return map[string]any{
				"queue_depth":      ist.QueueDepth,
				"shed_after_ms":    float64(ist.ShedAfter.Microseconds()) / 1000,
				"inflight_records": ist.InflightRecords,
				"pending_records":  ist.PendingRecords,
				"oldest_wait_ms":   float64(ist.OldestWait.Microseconds()) / 1000,
				"accepted_batches": ist.AcceptedBatches,
				"accepted_records": ist.AcceptedRecords,
				"shed_requests":    ist.ShedRequests,
				"shed_records":     ist.ShedRecords,
				"shed_queue_depth": ist.ShedQueueDepth,
				"shed_latency":     ist.ShedLatency,
			}
		}))
		if store != nil {
			expvar.Publish("slim_storage", expvar.Func(func() any { return store.Stats() }))
		}
		// The Prometheus exposition rides the debug mux too, so operators
		// scraping only the debug port see the same registry as /metrics on
		// the serving address — and so do the provenance endpoints, so a
		// link can be explained without touching the serving port.
		http.DefaultServeMux.Handle("GET /metrics", registry.Handler())
		http.DefaultServeMux.Handle("GET /v1/explain", srv.ExplainHandler())
		http.DefaultServeMux.Handle("GET /v1/runs", srv.RunsHandler())
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(logger, "debug listen failed", "addr", *debugAddr, "error", err)
		}
		logger.Info("debug server listening", "addr", dln.Addr().String(),
			"endpoints", "/debug/pprof/ /debug/vars /metrics")
		go func() {
			dbg := &http.Server{
				Handler:           http.DefaultServeMux,
				ReadHeaderTimeout: 10 * time.Second,
				// Slow-client bounds: pprof profile captures stream for up
				// to their ?seconds=, so the write timeout stays generous.
				ReadTimeout:  30 * time.Second,
				WriteTimeout: 2 * time.Minute,
				IdleTimeout:  2 * time.Minute,
			}
			if err := dbg.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug server", "error", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(logger, "listen failed", "addr", *addr, "error", err)
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// Bound slow or stalled clients so a handful of dead connections
		// cannot pin goroutines and buffers forever. The write timeout
		// must cover a synchronous POST /v1/link on a large corpus, so it
		// is generous rather than tight.
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 2 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	logger.Info("listening",
		"addr", ln.Addr().String(),
		"shards", eng.NumShards(),
		"spatial_level", eng.SpatialLevel(),
		"debounce", *debounce)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(logger, "serve failed", "error", err)
		}
	case <-ctx.Done():
		logger.Info("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			logger.Error("shutdown", "error", err)
		}
	}
}

// readSeed loads an optional seed dataset; an empty path yields an empty
// dataset of the given name.
func readSeed(path, name string) (slim.Dataset, error) {
	if path == "" {
		return slim.Dataset{Name: name}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return slim.Dataset{}, err
	}
	defer f.Close()
	ds, err := slim.ReadDatasetCSV(f, name)
	if err != nil {
		return slim.Dataset{}, fmt.Errorf("reading %s: %w", path, err)
	}
	return ds, nil
}
