// Command slimd serves SLIM linkage as a long-running sharded HTTP
// service: records stream in over JSON, a debounced background scheduler
// re-links the dirty shards, and the current links are queryable at any
// time. See DESIGN.md for the API and curl examples.
//
// Usage:
//
//	slimd [-addr :8080] [-shards 4] [-debounce 2s] [-e seed.csv -i seed.csv] [flags]
//
// The service may start empty (stream everything over the API) or seeded
// with two CSV datasets (entity,lat,lng,unix), which are linked once at
// boot. Linkage flags mirror slim-link: -window, -level, -max-speed, -b,
// -min-records, -workers, -matcher, -threshold, and the -lsh family.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"slim"
	"slim/internal/engine"
	"slim/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		shards   = flag.Int("shards", 4, "number of linker shards")
		debounce = flag.Duration("debounce", 2*time.Second, "quiet period after ingest before a background relink")
		ePath    = flag.String("e", "", "optional seed CSV for the first dataset")
		iPath    = flag.String("i", "", "optional seed CSV for the second dataset")

		window       = flag.Float64("window", 15, "temporal window width in minutes")
		level        = flag.Int("level", 12, "spatial grid level (0 = auto-tune over the seed datasets)")
		maxSpeed     = flag.Float64("max-speed", 2, "maximum entity speed in km/min (runaway bound)")
		b            = flag.Float64("b", 0.5, "history-length normalization strength [0,1]")
		minRecords   = flag.Int("min-records", 5, "drop seed entities with <= this many records")
		workers      = flag.Int("workers", 0, "scoring goroutines per shard (0 = GOMAXPROCS)")
		matcher      = flag.String("matcher", "greedy", "matching algorithm: greedy | hungarian")
		thresholdM   = flag.String("threshold", "gmm", "stop threshold: gmm | otsu | 2means | none")
		useLSH       = flag.Bool("lsh", false, "enable the LSH candidate filter")
		lshThreshold = flag.Float64("lsh-threshold", 0.6, "LSH signature similarity threshold t")
		lshStep      = flag.Int("lsh-step", 48, "LSH query window size in temporal windows")
		lshLevel     = flag.Int("lsh-level", 16, "LSH dominating-cell spatial level")
		lshBuckets   = flag.Int("lsh-buckets", 4096, "LSH buckets per band")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "slimd: ", log.LstdFlags)

	cfg := slim.Config{
		WindowMinutes:    *window,
		SpatialLevel:     *level,
		MaxSpeedKmPerMin: *maxSpeed,
		B:                *b,
		MinRecords:       *minRecords,
		Workers:          *workers,
		Matcher:          slim.MatcherKind(*matcher),
		Threshold:        slim.ThresholdMethod(*thresholdM),
	}
	if *useLSH {
		cfg.LSH = &slim.LSHConfig{
			Threshold:    *lshThreshold,
			StepWindows:  *lshStep,
			SpatialLevel: *lshLevel,
			NumBuckets:   *lshBuckets,
		}
	}

	dsE, err := readSeed(*ePath, "E")
	if err != nil {
		logger.Fatal(err)
	}
	dsI, err := readSeed(*iPath, "I")
	if err != nil {
		logger.Fatal(err)
	}

	eng, err := engine.New(dsE, dsI, engine.Config{
		Shards:   *shards,
		Link:     cfg,
		Debounce: *debounce,
	})
	if err != nil {
		logger.Fatal(err)
	}
	eng.Start()
	defer eng.Close()

	if dsE.Len() > 0 || dsI.Len() > 0 {
		res := eng.Run()
		logger.Printf("seed linkage: %d links (of %d matched) at threshold %.4g in %v",
			len(res.Links), len(res.Matched), res.Threshold, res.Elapsed)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	httpSrv := &http.Server{
		Handler:           server.New(eng, logger).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	logger.Printf("listening on %s (%d shards, spatial level %d, debounce %v)",
		ln.Addr(), eng.NumShards(), eng.SpatialLevel(), *debounce)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Fatal(err)
		}
	case <-ctx.Done():
		logger.Print("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
	}
}

// readSeed loads an optional seed dataset; an empty path yields an empty
// dataset of the given name.
func readSeed(path, name string) (slim.Dataset, error) {
	if path == "" {
		return slim.Dataset{Name: name}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return slim.Dataset{}, err
	}
	defer f.Close()
	ds, err := slim.ReadDatasetCSV(f, name)
	if err != nil {
		return slim.Dataset{}, fmt.Errorf("reading %s: %w", path, err)
	}
	return ds, nil
}
