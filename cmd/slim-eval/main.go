// Command slim-eval grades a links CSV (u,v,score — the slim-link output)
// against a ground-truth CSV (e,i — the slim-gen -sample output), printing
// precision, recall and F1. It completes the CLI workflow:
//
//	slim-gen -kind cab -sample -dir wl
//	slim-link -e wl/E.csv -i wl/I.csv > links.csv
//	slim-eval -links links.csv -truth wl/truth.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"

	"slim"
	"slim/internal/eval"
	"slim/internal/model"
)

func main() {
	var (
		linksPath = flag.String("links", "", "links CSV (u,v[,score]) — required")
		truthPath = flag.String("truth", "", "truth CSV (e,i) — required")
	)
	flag.Parse()
	if *linksPath == "" || *truthPath == "" {
		fmt.Fprintln(os.Stderr, "slim-eval: both -links and -truth are required")
		flag.Usage()
		os.Exit(2)
	}
	links, err := readPairs(*linksPath, "u")
	if err != nil {
		fatal(err)
	}
	truthPairs, err := readPairs(*truthPath, "e")
	if err != nil {
		fatal(err)
	}
	truth := make(map[slim.EntityID]slim.EntityID, len(truthPairs))
	for _, p := range truthPairs {
		truth[p.U] = p.V
	}
	m := eval.Score(links, eval.Truth(truth))
	fmt.Printf("links:     %d\n", len(links))
	fmt.Printf("truth:     %d\n", len(truth))
	fmt.Printf("tp/fp/fn:  %d/%d/%d\n", m.TP, m.FP, m.FN)
	fmt.Printf("precision: %.4f\n", m.Precision)
	fmt.Printf("recall:    %.4f\n", m.Recall)
	fmt.Printf("f1:        %.4f\n", m.F1)
}

// readPairs parses two-or-more-column CSV rows into link pairs, skipping a
// header row whose first cell matches headerFirst.
func readPairs(path, headerFirst string) ([]eval.LinkPair, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr := csv.NewReader(f)
	cr.FieldsPerRecord = -1
	var out []eval.LinkPair
	line := 0
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("slim-eval: %s: %w", path, err)
		}
		line++
		if len(row) < 2 {
			return nil, fmt.Errorf("slim-eval: %s line %d: need at least 2 columns", path, line)
		}
		if line == 1 && row[0] == headerFirst {
			continue
		}
		out = append(out, eval.LinkPair{U: model.EntityID(row[0]), V: model.EntityID(row[1])})
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slim-eval:", err)
	os.Exit(1)
}
