// Command slim-link links the entities of two mobility-record CSV files
// (entity,lat,lng,unix) and prints the discovered links as CSV on stdout
// (u,v,score), with a run summary on stderr.
//
// Usage:
//
//	slim-link -e serviceA.csv -i serviceB.csv [flags]
//
// Useful flags: -window (minutes), -level (0 = auto-tune), -lsh,
// -lsh-threshold, -lsh-step, -lsh-level, -lsh-buckets, -matcher, -threshold.
package main

import (
	"flag"
	"fmt"
	"os"

	"slim"
)

func main() {
	var (
		ePath        = flag.String("e", "", "first dataset CSV (required)")
		iPath        = flag.String("i", "", "second dataset CSV (required)")
		window       = flag.Float64("window", 15, "temporal window width in minutes")
		level        = flag.Int("level", 12, "spatial grid level (0 = auto-tune)")
		maxSpeed     = flag.Float64("max-speed", 2, "maximum entity speed in km/min (runaway bound)")
		b            = flag.Float64("b", 0.5, "history-length normalization strength [0,1]")
		minRecords   = flag.Int("min-records", 5, "drop entities with <= this many records")
		workers      = flag.Int("workers", 0, "scoring goroutines (0 = GOMAXPROCS)")
		matcher      = flag.String("matcher", "greedy", "matching algorithm: greedy | hungarian")
		thresholdM   = flag.String("threshold", "gmm", "stop threshold: gmm | otsu | 2means | none")
		useLSH       = flag.Bool("lsh", false, "enable the LSH candidate filter")
		lshThreshold = flag.Float64("lsh-threshold", 0.6, "LSH signature similarity threshold t")
		lshStep      = flag.Int("lsh-step", 48, "LSH query window size in temporal windows")
		lshLevel     = flag.Int("lsh-level", 16, "LSH dominating-cell spatial level")
		lshBuckets   = flag.Int("lsh-buckets", 4096, "LSH buckets per band")
	)
	flag.Parse()
	if *ePath == "" || *iPath == "" {
		fmt.Fprintln(os.Stderr, "slim-link: both -e and -i are required")
		flag.Usage()
		os.Exit(2)
	}

	dsE, err := readDataset(*ePath, "E")
	if err != nil {
		fatal(err)
	}
	dsI, err := readDataset(*iPath, "I")
	if err != nil {
		fatal(err)
	}

	cfg := slim.Config{
		WindowMinutes:    *window,
		SpatialLevel:     *level,
		MaxSpeedKmPerMin: *maxSpeed,
		B:                *b,
		MinRecords:       *minRecords,
		Workers:          *workers,
		Matcher:          slim.MatcherKind(*matcher),
		Threshold:        slim.ThresholdMethod(*thresholdM),
	}
	if *useLSH {
		cfg.LSH = &slim.LSHConfig{
			Threshold:    *lshThreshold,
			StepWindows:  *lshStep,
			SpatialLevel: *lshLevel,
			NumBuckets:   *lshBuckets,
		}
	}

	res, err := slim.LinkDatasets(dsE, dsI, cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Println("u,v,score")
	for _, l := range res.Links {
		fmt.Printf("%s,%s,%g\n", l.U, l.V, l.Score)
	}

	fmt.Fprintf(os.Stderr, "slim-link: %d links (of %d matched) in %v\n",
		len(res.Links), len(res.Matched), res.Elapsed)
	fmt.Fprintf(os.Stderr, "  spatial level:     %d\n", res.SpatialLevel)
	fmt.Fprintf(os.Stderr, "  stop threshold:    %.6g (%s)\n", res.Threshold, res.ThresholdMethod)
	fmt.Fprintf(os.Stderr, "  candidate pairs:   %d\n", res.Stats.CandidatePairs)
	fmt.Fprintf(os.Stderr, "  record compares:   %d\n", res.Stats.RecordComparisons)
	fmt.Fprintf(os.Stderr, "  alibi bin pairs:   %d\n", res.Stats.AlibiBinPairs)
	if res.Stats.LSH != nil {
		fmt.Fprintf(os.Stderr, "  lsh: signature=%d bands=%d rows=%d candidates=%d\n",
			res.Stats.LSH.SignatureLen, res.Stats.LSH.Bands, res.Stats.LSH.Rows, res.Stats.LSH.Candidates)
	}
}

func readDataset(path, name string) (slim.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return slim.Dataset{}, err
	}
	defer f.Close()
	return slim.ReadDatasetCSV(f, name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slim-link:", err)
	os.Exit(1)
}
