// Command slim-experiments regenerates every table and figure of the SLIM
// paper's evaluation (Sec. 5) on the synthetic workloads. Each subcommand
// reproduces one figure; "all" runs everything. Results are printed as
// aligned-text tables; EXPERIMENTS.md records a paper-vs-measured digest.
//
// Usage:
//
//	slim-experiments [flags] <fig2|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|tuning|all>
//
// Scale flags: -cab-taxis, -cab-days, -sm-users, -sm-days, -seed, -workers,
// -tiny (smoke-test scale).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"slim/internal/eval"
	"slim/internal/experiments"
)

func main() {
	var (
		tiny     = flag.Bool("tiny", false, "use the smoke-test scale")
		cabTaxis = flag.Int("cab-taxis", 0, "override: ground-set taxis")
		cabDays  = flag.Int("cab-days", 0, "override: cab trace days")
		smUsers  = flag.Int("sm-users", 0, "override: ground-set SM users")
		smDays   = flag.Int("sm-days", 0, "override: SM trace days")
		seed     = flag.Int64("seed", 0, "override: workload seed")
		workers  = flag.Int("workers", 0, "override: scoring goroutines")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
	}

	sc := experiments.DefaultScale()
	if *tiny {
		sc = experiments.TinyScale()
	}
	if *cabTaxis > 0 {
		sc.CabTaxis = *cabTaxis
	}
	if *cabDays > 0 {
		sc.CabDays = *cabDays
	}
	if *smUsers > 0 {
		sc.SMUsers = *smUsers
	}
	if *smDays > 0 {
		sc.SMDays = *smDays
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *workers > 0 {
		sc.Workers = *workers
	}

	runners := map[string]func(experiments.Scale) error{
		"fig2":       runFig2,
		"fig4":       runFig4,
		"fig5":       runFig5,
		"fig6":       runFig6,
		"fig7":       runFig7,
		"fig8":       runFig8,
		"fig9":       runFig9,
		"fig10":      runFig10,
		"fig11":      runFig11,
		"tuning":     runTuning,
		"thresholds": runThresholds,
	}
	name := flag.Arg(0)
	if name == "all" {
		for _, n := range []string{"fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "tuning", "thresholds"} {
			if err := timed(n, runners[n], sc); err != nil {
				fatal(err)
			}
		}
		return
	}
	fn, ok := runners[name]
	if !ok {
		usage()
	}
	if err := timed(name, fn, sc); err != nil {
		fatal(err)
	}
}

func timed(name string, fn func(experiments.Scale) error, sc experiments.Scale) error {
	fmt.Printf("==== %s ====\n", name)
	start := time.Now()
	err := fn(sc)
	fmt.Printf("(%s finished in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	return err
}

func runFig2(sc experiments.Scale) error {
	r, err := experiments.Fig2GMMFit(sc)
	if err != nil {
		return err
	}
	printTables(r.Table())
	fmt.Printf("threshold separation accuracy: %.3f\n", r.ThresholdAccuracy())
	return nil
}

func runFig4(sc experiments.Scale) error {
	r, err := experiments.Fig4SpatioTemporalCab(sc, experiments.DefaultSpatioTemporalOptions())
	if err != nil {
		return err
	}
	printTables(r.Tables()...)
	return nil
}

func runFig5(sc experiments.Scale) error {
	r, err := experiments.Fig5SpatioTemporalSM(sc, experiments.DefaultSpatioTemporalOptions())
	if err != nil {
		return err
	}
	printTables(r.Tables()...)
	return nil
}

func runFig6(sc experiments.Scale) error {
	rs, err := experiments.Fig6ScoreHistograms(sc)
	if err != nil {
		return err
	}
	for _, r := range rs {
		printTables(r.Table())
		fmt.Printf("threshold separation accuracy @ level %d: %.3f\n\n", r.Level, r.ThresholdAccuracy())
	}
	return nil
}

func runFig7(sc experiments.Scale) error {
	cab, err := experiments.Fig7WorkloadCab(sc, experiments.DefaultWorkloadOptions())
	if err != nil {
		return err
	}
	printTables(cab.Tables()...)
	sm, err := experiments.Fig7WorkloadSM(sc, experiments.DefaultWorkloadOptions())
	if err != nil {
		return err
	}
	printTables(sm.Tables()...)
	return nil
}

func runFig8(sc experiments.Scale) error {
	opt := experiments.DefaultLSHLevelOptions()
	// The synthetic cab trace needs a more permissive threshold than the
	// paper's real trace (see EXPERIMENTS.md "LSH calibration").
	opt.Threshold = 0.2
	cab, err := experiments.Fig8LSHLevelsCab(sc, opt)
	if err != nil {
		return err
	}
	printTables(cab.Tables()...)
	optSM := experiments.DefaultLSHLevelOptions()
	sm, err := experiments.Fig8LSHLevelsSM(sc, optSM)
	if err != nil {
		return err
	}
	printTables(sm.Tables()...)
	return nil
}

func runFig9(sc experiments.Scale) error {
	opt := experiments.DefaultLSHBucketOptions()
	opt.SigLevel = 12
	opt.Thresholds = []float64{0.2, 0.4, 0.6}
	cab, err := experiments.Fig9LSHBucketsCab(sc, opt)
	if err != nil {
		return err
	}
	printTables(cab.Table())
	optSM := experiments.DefaultLSHBucketOptions()
	sm, err := experiments.Fig9LSHBucketsSM(sc, optSM)
	if err != nil {
		return err
	}
	printTables(sm.Table())
	return nil
}

func runFig10(sc experiments.Scale) error {
	spatial, err := experiments.Fig10AblationSpatial(sc, experiments.DefaultAblationOptions())
	if err != nil {
		return err
	}
	printTables(spatial.Table())
	window, err := experiments.Fig10AblationWindow(sc, experiments.DefaultAblationOptions())
	if err != nil {
		return err
	}
	printTables(window.Table())
	return nil
}

func runFig11(sc experiments.Scale) error {
	r, err := experiments.Fig11Comparison(sc, experiments.DefaultComparisonOptions())
	if err != nil {
		return err
	}
	printTables(r.Tables()...)
	return nil
}

func runTuning(sc experiments.Scale) error {
	cab, err := experiments.TuningCab(sc)
	if err != nil {
		return err
	}
	printTables(cab.Table())
	sm, err := experiments.TuningSM(sc)
	if err != nil {
		return err
	}
	printTables(sm.Table())
	return nil
}

func runThresholds(sc experiments.Scale) error {
	r, err := experiments.ThresholdMethods(sc)
	if err != nil {
		return err
	}
	printTables(r.Table())
	fmt.Printf("F1 spread across methods: cab=%.3f sm=%.3f\n", r.F1Spread("cab"), r.F1Spread("sm"))
	return nil
}

func printTables(tables ...eval.Table) {
	for _, t := range tables {
		fmt.Println(t.Render())
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: slim-experiments [flags] <fig2|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|tuning|thresholds|all>")
	flag.PrintDefaults()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slim-experiments:", err)
	os.Exit(1)
}
